// Quickstart: the whole public API in one tour.
//
//   ./quickstart [path/to/graph.{mtx,el,sbg}]
//
// Loads a graph (or generates an RMAT one), runs all three decompositions,
// then solves maximal matching, coloring, and MIS with the baseline and the
// paper's best decomposition-based algorithm for each problem, verifying
// every result.
#include <cstdio>

#include "coloring/coloring.hpp"
#include "core/bridge.hpp"
#include "core/degk.hpp"
#include "core/rand.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"
#include "parallel/thread_env.hpp"

int main(int argc, char** argv) {
  using namespace sbg;
  apply_thread_env();

  // 1. Get a graph: from a file, or a generated power-law instance.
  CsrGraph g;
  if (argc > 1) {
    std::printf("loading %s ...\n", argv[1]);
    g = load_graph(argv[1]);
  } else {
    std::printf("no input file given; generating an RMAT graph ...\n");
    g = build_graph(gen_rmat(1 << 15, 1 << 18, /*seed=*/42), /*connect=*/true);
  }
  const GraphStats s = graph_stats(g);
  std::printf("graph: %u vertices, %llu edges, avg degree %.2f, "
              "%.1f%% of vertices have degree <= 2\n\n",
              s.num_vertices, static_cast<unsigned long long>(s.num_edges),
              s.avg_degree, s.pct_deg2);

  // 2. Decompose it three ways (Section II of the paper).
  const BridgeDecomposition bd = decompose_bridge(g);
  std::printf("BRIDGE: %zu bridges, %u 2-edge-connected components "
              "(%.3fs)\n",
              bd.bridges.size(), bd.components.count, bd.decompose_seconds);
  const RandDecomposition rd = decompose_rand(g, rand_partition_heuristic(g));
  std::printf("RAND:   k=%u partitions, %llu intra / %llu cross edges "
              "(%.3fs)\n",
              rd.k, static_cast<unsigned long long>(rd.g_intra.num_edges()),
              static_cast<unsigned long long>(rd.g_cross.num_edges()),
              rd.decompose_seconds);
  const DegkDecomposition dd = decompose_degk(g, 2);
  std::printf("DEG2:   %u high-degree vertices, G_H has %llu edges "
              "(%.3fs)\n\n",
              dd.num_high,
              static_cast<unsigned long long>(dd.g_high.num_edges()),
              dd.decompose_seconds);

  std::string err;

  // 3. Maximal matching: GM baseline vs MM-Rand (the paper's winner).
  const MatchResult gm = mm_gm(g);
  const MatchResult mr = mm_rand(g);
  SBG_CHECK(verify_maximal_matching(g, gm.mate, &err), err.c_str());
  SBG_CHECK(verify_maximal_matching(g, mr.mate, &err), err.c_str());
  std::printf("MM:    GM %.3fs (%u iters, |M|=%llu)  vs  MM-Rand %.3fs "
              "(%u iters, |M|=%llu)  -> %.2fx\n",
              gm.total_seconds, gm.rounds,
              static_cast<unsigned long long>(gm.cardinality),
              mr.total_seconds, mr.rounds,
              static_cast<unsigned long long>(mr.cardinality),
              gm.total_seconds / mr.total_seconds);

  // 4. Coloring: VB baseline vs COLOR-Degk.
  const ColorResult vb = color_vb(g);
  const ColorResult cd = color_degk(g, 2);
  SBG_CHECK(verify_coloring(g, vb.color, &err), err.c_str());
  SBG_CHECK(verify_coloring(g, cd.color, &err), err.c_str());
  std::printf("COLOR: VB %.3fs (%u colors)  vs  COLOR-Deg2 %.3fs "
              "(%u colors)  -> %.2fx\n",
              vb.total_seconds, vb.num_colors, cd.total_seconds,
              cd.num_colors, vb.total_seconds / cd.total_seconds);

  // 5. MIS: Luby baseline vs MIS-Deg2.
  const MisResult lu = mis_luby(g);
  const MisResult md = mis_degk(g, 2);
  SBG_CHECK(verify_mis(g, lu.state, &err), err.c_str());
  SBG_CHECK(verify_mis(g, md.state, &err), err.c_str());
  std::printf("MIS:   Luby %.3fs (|I|=%zu)  vs  MIS-Deg2 %.3fs (|I|=%zu)  "
              "-> %.2fx\n",
              lu.total_seconds, lu.size, md.total_seconds, md.size,
              lu.total_seconds / md.total_seconds);

  std::printf("\nall results verified.\n");
  return 0;
}
