// sbg_fuzz — seeded differential fuzz harness for the whole solver zoo.
//
//   sbg_fuzz [--seed N] [--graphs N] [--max-n N] [--families a,b] [--quiet]
//   sbg_fuzz --list
//
// Draws `--graphs` random graphs from each generator family (basic / rgg /
// rmat / synth), runs every registered solver and decomposition composite
// on each (the extra "ingest" family instead differentially tests the
// text-ingestion pipeline and .sbgc cache against the sequential readers),
// and holds the results against the sbg::check oracles plus
// cross-variant agreement (see src/check/fuzz.hpp for the invariant list).
//
// Runs are pure functions of the flags: a failing campaign prints an exact
// replay command line, and any individual failure can be reproduced with
// `--graphs 1`-style narrowing since each graph's seed is printed with the
// failure. Exit code 0 = clean, 1 = failures (or bad usage).
//
// Meant to run under the sanitizer matrix: configure with
// `cmake -DSBG_SAN=address,undefined` (or `thread`) and re-run the same
// seed — see the "Verifying results" section of README.md.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/solvers.hpp"
#include "parallel/thread_env.hpp"

namespace {

using namespace sbg;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int list_registry() {
  std::printf("families:");
  for (const auto& f : check::fuzz_families()) std::printf(" %s", f.c_str());
  std::printf("\nmatching variants (%zu):", check::matching_variants().size());
  for (const auto& v : check::matching_variants()) {
    std::printf(" %s", v.name.c_str());
  }
  std::printf("\ncoloring variants (%zu):", check::coloring_variants().size());
  for (const auto& v : check::coloring_variants()) {
    std::printf(" %s", v.name.c_str());
  }
  std::printf("\nmis variants (%zu):", check::mis_variants().size());
  for (const auto& v : check::mis_variants()) {
    std::printf(" %s", v.name.c_str());
  }
  std::printf("\n");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: sbg_fuzz [--seed N] [--graphs N] [--max-n N] "
               "[--families a,b] [--quiet] | --list\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  sbg::apply_thread_env();
  check::FuzzOptions opt;
  opt.graphs_per_family = 200;
  opt.max_n = 512;
  opt.log = stderr;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const auto next = [&]() -> const char* {
        if (i + 1 >= argc) throw InputError("missing value for " + a);
        return argv[++i];
      };
      if (a == "--seed") {
        opt.seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
      } else if (a == "--graphs") {
        opt.graphs_per_family = std::atoi(next());
      } else if (a == "--max-n") {
        opt.max_n = static_cast<vid_t>(std::atoll(next()));
      } else if (a == "--families") {
        opt.families = split_csv(next());
      } else if (a == "--quiet") {
        opt.log = nullptr;
      } else if (a == "--list") {
        return list_registry();
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
        return usage();
      }
    }
    if (opt.graphs_per_family <= 0 || opt.max_n < 4) {
      std::fprintf(stderr, "need --graphs >= 1 and --max-n >= 4\n");
      return usage();
    }

    const check::FuzzSummary summary = check::run_fuzz(opt);
    std::printf("sbg_fuzz: seed=%" PRIu64 ", %d graphs, %d solver runs, "
                "%zu failure%s\n",
                opt.seed, summary.graphs, summary.solver_runs,
                summary.failures.size(),
                summary.failures.size() == 1 ? "" : "s");
    if (!summary.failures.empty()) {
      std::string families;
      for (const auto& f :
           (opt.families.empty() ? check::fuzz_families() : opt.families)) {
        families += (families.empty() ? "" : ",") + f;
      }
      std::printf("replay: sbg_fuzz --seed %" PRIu64 " --graphs %d --max-n %u "
                  "--families %s\n",
                  opt.seed, opt.graphs_per_family, opt.max_n,
                  families.c_str());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
