// sbg_serve — the resident graph-analytics daemon (src/serve/).
//
// Starts the HTTP service, optionally pre-warms graphs into the registry,
// and runs until SIGTERM/SIGINT, which drains in-flight jobs before exit.
//
//   sbg_serve [--port N] [--workers N] [--threads-per-job N] [--queue N]
//             [--mem-cap BYTES] [--deadline-ms D] [--warm GRAPH]...
//             [--once]
//
// Flags override the SBG_SERVE_* environment (see ENVIRONMENT.md). --warm
// loads a dataset name or graph file into the registry before serving, so
// the first request pays no ingest. --once exits after the first request
// completes (CI smoke harnesses use it with an external client).
//
//   SBG_SERVE_PORT=8080 sbg_serve --warm c-73
//   curl -s localhost:8080/v1/jobs -d '{"graph":"c-73","problem":"mm"}'
//   curl -s localhost:8080/metrics | grep sbg_serve_registry_hits
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "obs/export/sampler.hpp"
#include "parallel/thread_env.hpp"
#include "serve/server.hpp"

namespace {

sbg::serve::Server* g_server = nullptr;

// Only async-signal-safe work here: request_shutdown is an atomic store
// plus a self-pipe write; the drain itself runs on the server's threads.
void on_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

int usage() {
  std::fprintf(stderr,
               "usage: sbg_serve [--port N] [--workers N] "
               "[--threads-per-job N] [--queue N]\n"
               "                 [--mem-cap BYTES] [--deadline-ms D] "
               "[--warm GRAPH]... [--once]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  sbg::apply_thread_env();
  std::vector<std::string> warm;
  bool once = false;
  sbg::serve::ServerOptions opt;
  try {
    opt = sbg::serve::options_from_env();
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) throw sbg::InputError(a + " needs a value");
        return argv[++i];
      };
      if (a == "--port") opt.port = std::atoi(next());
      else if (a == "--workers") opt.workers = std::atoi(next());
      else if (a == "--threads-per-job") opt.per_job_threads = std::atoi(next());
      else if (a == "--queue") opt.queue_cap = std::atoi(next());
      else if (a == "--mem-cap") opt.mem_cap_bytes = std::strtoull(next(), nullptr, 10);
      else if (a == "--deadline-ms") opt.default_deadline_ms = std::atof(next());
      else if (a == "--warm") warm.emplace_back(next());
      else if (a == "--once") once = true;
      else return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sbg_serve: %s\n", e.what());
    return 2;
  }

  const auto sampler = sbg::obs::start_sampler_from_env();
  sbg::serve::Server server(opt);
  g_server = &server;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "sbg_serve: %s\n", err.c_str());
    return 1;
  }
  for (const std::string& name : warm) {
    std::string lerr;
    if (server.registry().acquire(name, &lerr) == nullptr) {
      std::fprintf(stderr, "sbg_serve: warm %s: %s\n", name.c_str(),
                   lerr.c_str());
      server.shutdown();
      return 1;
    }
    std::fprintf(stderr, "sbg_serve: warmed %s\n", name.c_str());
  }
  // The port line is the readiness signal scripts wait for (and the only
  // way to learn an ephemeral --port 0 binding).
  std::printf("sbg_serve: listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  while (!server.draining() && !(once && server.requests_served() > 0)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.shutdown();
  std::fprintf(stderr, "sbg_serve: drained, exiting\n");
  return 0;
}
