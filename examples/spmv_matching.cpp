// Domain example: row/column pairing for sparse-matrix kernels.
//
// The paper motivates maximal matching with sparse matrix computations
// [Vastenhouw & Bisseling]: pairing compatible rows/columns (here modeled
// as vertices of a numerical-simulation graph) lets a solver fuse work and
// halve synchronization. A maximal matching is the pairing; unmatched
// vertices run solo. This example runs GM vs MM-Rand on a c-73-like
// matrix graph and reports pairing quality and the vain-tendency gap.
#include <cstdio>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "matching/matching.hpp"
#include "parallel/thread_env.hpp"

int main(int argc, char** argv) {
  using namespace sbg;
  apply_thread_env();
  const vid_t n = argc > 1 ? static_cast<vid_t>(std::atoi(argv[1])) : 150'000;

  // A c-73-like numerical-simulation graph: banded core + pendant slack.
  const CsrGraph g = build_graph(
      gen_numerical(n, /*core_fraction=*/0.52, /*core_band_mean=*/5.6,
                    /*seed=*/3),
      /*connect=*/true);
  const GraphStats s = graph_stats(g);
  std::printf("matrix graph: %u rows, %llu structural pairs, avg degree "
              "%.2f\n\n",
              s.num_vertices, static_cast<unsigned long long>(s.num_edges),
              s.avg_degree);

  const MatchResult gm = mm_gm(g);
  const MatchResult rnd = mm_rand(g);
  std::string err;
  SBG_CHECK(verify_maximal_matching(g, gm.mate, &err), err.c_str());
  SBG_CHECK(verify_maximal_matching(g, rnd.mate, &err), err.c_str());

  const auto report = [&](const char* label, const MatchResult& r) {
    const double paired =
        200.0 * static_cast<double>(r.cardinality) /
        static_cast<double>(s.num_vertices);  // both endpoints count
    std::printf("%-8s: %.3fs, %u proposal rounds, %llu pairs "
                "(%.1f%% of rows paired)\n",
                label, r.total_seconds, r.rounds,
                static_cast<unsigned long long>(r.cardinality), paired);
  };
  report("GM", gm);
  report("MM-Rand", rnd);

  std::printf("\nMM-Rand speedup: %.2fx with the same pairing guarantee "
              "(both matchings are maximal;\ncardinalities differ by "
              "%.1f%% — any maximal matching is a 1/2-approximation).\n",
              gm.total_seconds / rnd.total_seconds,
              100.0 *
                  (static_cast<double>(gm.cardinality) -
                   static_cast<double>(rnd.cardinality)) /
                  static_cast<double>(gm.cardinality));
  return 0;
}
