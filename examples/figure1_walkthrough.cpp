// Figure 1 walkthrough: reproduces the paper's worked example on its
// 8-vertex graph — the BRIDGE, RAND, and DEG2 decompositions of the same
// input, printed side by side.
#include <cstdio>

#include "core/bridge.hpp"
#include "core/degk.hpp"
#include "core/rand.hpp"
#include "graph/builder.hpp"

namespace {

constexpr char kName[] = "abcdefgh";

sbg::CsrGraph figure1_graph() {
  using namespace sbg;
  EdgeList el;
  el.num_vertices = 8;
  const vid_t a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6, h = 7;
  el.add(a, b);
  el.add(b, c);
  el.add(c, a);
  el.add(c, d);
  el.add(d, e);
  el.add(e, f);
  el.add(f, d);
  el.add(b, g);
  el.add(g, h);
  return build_graph(std::move(el), /*connect=*/false);
}

void print_edges(const sbg::CsrGraph& g, const char* label) {
  std::printf("%s:", label);
  for (sbg::vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const sbg::vid_t v : g.neighbors(u)) {
      if (u < v) std::printf(" %c-%c", kName[u], kName[v]);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace sbg;
  const CsrGraph g = figure1_graph();
  std::printf("(a) input graph G, Figure 1 of the paper\n");
  print_edges(g, "    edges");

  // (b) BRIDGE decomposition: bridges b-g, g-h, c-d; two triangles remain.
  const BridgeDecomposition bd = decompose_bridge(g);
  std::printf("\n(b) BRIDGE decomposition\n    bridges:");
  for (const auto& [x, y] : bd.bridges) {
    std::printf(" %c-%c", kName[std::min(x, y)], kName[std::max(x, y)]);
  }
  std::printf("\n");
  print_edges(bd.g_components, "    G - B ");
  std::printf("    2-edge-connected components: %u\n", bd.components.count);

  // (c) RAND decomposition with 2 groups. The paper's example puts
  // {b, c, e, h, g} in group 1 and {a, d, f} in group 2; our seed-derived
  // split differs but has the same structure.
  const RandDecomposition rd = decompose_rand(g, 2, /*seed=*/42);
  std::printf("\n(c) RAND decomposition, k=2\n    group 1:");
  for (vid_t v = 0; v < 8; ++v) {
    if (rd.part[v] == 0) std::printf(" %c", kName[v]);
  }
  std::printf("\n    group 2:");
  for (vid_t v = 0; v < 8; ++v) {
    if (rd.part[v] == 1) std::printf(" %c", kName[v]);
  }
  std::printf("\n");
  print_edges(rd.g_intra, "    intra ");
  print_edges(rd.g_cross, "    cross ");

  // (d) DEG2 decomposition: V_H = {b, c, d}.
  const DegkDecomposition dd =
      decompose_degk(g, 2, kDegkHigh | kDegkLow | kDegkCross);
  std::printf("\n(d) DEG2 decomposition\n    V_H (degree > 2):");
  for (vid_t v = 0; v < 8; ++v) {
    if (dd.is_high[v]) std::printf(" %c", kName[v]);
  }
  std::printf("\n");
  print_edges(dd.g_high, "    G_H   ");
  print_edges(dd.g_low, "    G_L   ");
  print_edges(dd.g_cross, "    G_C   ");
  return 0;
}
