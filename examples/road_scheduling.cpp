// Domain example: conflict-free maintenance scheduling on a road network.
//
// Road segments that share a junction cannot be serviced in the same shift
// (crews would block each other). That is vertex coloring of the network's
// line-graph-like junction conflict structure — here modeled directly on
// junctions: adjacent junctions must land in different shifts. Road
// networks are exactly the graph class where the paper's COLOR-Degk shines
// (>80% of OSM vertices have degree <= 2), so this example contrasts VB
// with COLOR-Deg2 and turns the coloring into a shift roster.
#include <cstdio>
#include <vector>

#include "coloring/coloring.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "parallel/thread_env.hpp"

int main(int argc, char** argv) {
  using namespace sbg;
  apply_thread_env();
  const vid_t n = argc > 1 ? static_cast<vid_t>(std::atoi(argv[1])) : 200'000;

  // A germany-osm-like network: long degree-2 chains, dead-end spurs.
  const CsrGraph g =
      build_graph(gen_road(n, /*mean_subdiv=*/2.4, /*spur_fraction=*/0.35,
                           /*seed=*/7),
                  /*connect=*/true);
  const GraphStats s = graph_stats(g);
  std::printf("road network: %u junctions, %llu segments, %.1f%% of "
              "junctions are degree <= 2\n",
              s.num_vertices, static_cast<unsigned long long>(s.num_edges),
              s.pct_deg2);

  const ColorResult vb = color_vb(g);
  const ColorResult degk = color_degk(g, 2);
  std::string err;
  SBG_CHECK(verify_coloring(g, vb.color, &err), err.c_str());
  SBG_CHECK(verify_coloring(g, degk.color, &err), err.c_str());

  std::printf("\nscheduling with VB:         %u shifts, %.3fs\n",
              vb.num_colors, vb.total_seconds);
  std::printf("scheduling with COLOR-Deg2: %u shifts, %.3fs (%.2fx)\n",
              degk.num_colors, degk.total_seconds,
              vb.total_seconds / degk.total_seconds);

  // Roster: junctions per shift (crews want balanced shifts).
  std::vector<vid_t> shift_size(degk.num_colors, 0);
  for (const auto c : degk.color) ++shift_size[c];
  std::printf("\nshift roster (COLOR-Deg2):\n");
  for (std::uint32_t c = 0; c < degk.num_colors; ++c) {
    std::printf("  shift %2u: %8u junctions (%.1f%%)\n", c, shift_size[c],
                100.0 * static_cast<double>(shift_size[c]) /
                    static_cast<double>(s.num_vertices));
  }
  return 0;
}
