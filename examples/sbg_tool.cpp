// sbg_tool — command-line front end for the library.
//
//   sbg_tool gen <dataset|shape> <out.{sbg,sbgc,el,mtx}> [--scale S] [--n N]
//   sbg_tool load <graph> [--no-cache] [--threads T]
//   sbg_tool cache <graph.{mtx,el,txt}>
//   sbg_tool stats <graph>
//   sbg_tool convert <in> <out>
//   sbg_tool decompose <graph> <bridge|rand|degk> [--k K]
//   sbg_tool check <graph> [--k K]
//   sbg_tool mm <graph> [gm|lmax|ii|greedy|bridge|rand|degk]
//   sbg_tool color <graph> [vb|eb|jp|spec|bridge|rand|degk]
//   sbg_tool mis <graph> [luby|greedy|bridge|rand|degk]
//   sbg_tool batch <graphs,csv> [--jobs N] [--per-job-threads T]
//                  [--deadline-ms D] [--verify-sequential] [--inject-failure]
//                  [--auto]
//   sbg_tool auto <graph> [mm|color|mis]
//   sbg_tool metrics <graph> [mm|color|mis] [--variant V]
//   sbg_tool plan <graph> [rand|degk] [--mem-budget B] [--k K] [--levels L]
//
// `plan` classifies the graph once under the out-of-core piece scheduler
// (src/ooc/) and prints the resulting schedule + cost model as JSON:
// per-piece arcs, live vertices, spill segments, rebuilt-CSR bytes, and
// exact store bytes, plus the total working set vs the budget. The budget
// comes from --mem-budget (bytes, K/M/G suffix) or $SBG_MEM_BUDGET; with
// neither, the plan is the in-core reference shape. Run the plan through
// the registered "ooc-rand-gm"/"ooc-degk-gm" variants (`metrics`, `batch`,
// or sched) or bench_ooc.
//
// `auto` fingerprints the graph (avg degree, %deg<=2, %bridges — the
// Table II columns) and lets the sbg::tune selector pick the
// decomposition variant, partition count, and thread count per problem
// (all three when none is named). Each run goes through the sched engine,
// so it is oracle-gated and recorded into the telemetry store
// ($SBG_TUNE_PATH, or sbg_tune.json in $SBG_CACHE_DIR): re-running the
// same graph refines the pick toward the measured winner (DESIGN.md §10).
// --threads overrides the selector's thread suggestion.
//
// `batch` runs the full Table-I matrix (MM/COLOR/MIS × baseline/BRIDGE/
// RAND/DEGk) over every listed graph concurrently on N workers with T
// OpenMP threads each (src/sched/). --auto swaps the explicit matrix for
// one selector-resolved "auto" job per (graph, problem) — the JSON entry
// carries "resolved_variant". --verify-sequential replays each job
// in one thread and checks the result hashes agree (auto jobs replay
// pinned to the variant they resolved to); --inject-failure adds
// one deliberately failing job to demonstrate failure isolation. With
// --json the report is the aggregated batch document (sbg_batch_version
// schema), not the plain obs report.
//
// `load` exercises the ingestion pipeline (mmap chunk-parallel parse +
// binary CSR cache) and prints where the graph came from and what each
// phase cost; `cache` pre-warms the cache entry for a text file (see
// README.md "Loading graphs"). `--no-cache` (any command) bypasses the
// cache probe AND the cache write for this run.
//
// `metrics` runs one oracle-gated job through the batch engine (default
// mm/gm; pick another registered variant with --variant) and prints the
// Prometheus text exposition of the whole registry to stdout — counters,
// gauges, histogram buckets, and the hardware perf counters (or
// sbg_perf_available 0 when perf_event_open is unavailable). It is the
// smoke-testable version of what a scrape loop or the SBG_OBS_EXPORT
// sampler would see.
//
// Observability flags (any command):
//   --json <path>  write a machine-readable run report (counters, per-round
//                  telemetry series, trace spans; src/obs/report.hpp schema)
//   --trace        print the trace-span tree after the run
//   --trace-out=FILE (or --trace-out FILE) capture a Chrome-trace /
//                  Perfetto timeline (per-thread tracks, per-round counter
//                  tracks, cancellation instants) and write it to FILE
//
// Environment (any command): SBG_OBS_EXPORT=prom:/path.prom,jsonl:/path.jsonl
// starts a background sampler that re-renders the exposition and appends
// delta snapshots every SBG_OBS_PERIOD_MS (default 1000) while the run is
// in flight; the sampler flushes a final sample at exit.
//
// <graph> is a .mtx / .el / .txt / .sbg / .sbgc file, or a Table II dataset
// name (e.g. "germany-osm"), generated on the fly at --scale.
//
// Every solver run is gated by the src/check oracles; `check` runs the
// decomposition + solver oracles explicitly and prints each verdict
// (exit 1 if any fails). For randomized campaigns use sbg_fuzz.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "coloring/coloring.hpp"
#include "core/bridge.hpp"
#include "core/degk.hpp"
#include "core/rand.hpp"
#include "graph/builder.hpp"
#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "ingest/ingest.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"
#include "obs/export/chrome_trace.hpp"
#include "obs/export/prom.hpp"
#include "obs/export/sampler.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "ooc/ooc.hpp"
#include "parallel/thread_env.hpp"
#include "sched/sched.hpp"
#include "tune/tune.hpp"

namespace {

using namespace sbg;

struct Options {
  double scale = 1.0 / 32.0;
  vid_t n = 100'000;
  vid_t k = 0;
  std::uint64_t seed = 42;
  std::string json_out;  ///< --json <path>: write the obs run report here
  bool trace = false;    ///< --trace: dump the span tree after the run
  std::string trace_out; ///< --trace-out=FILE: write a Chrome-trace timeline
  std::string variant;   ///< --variant: solver variant for `metrics`
  bool no_cache = false; ///< --no-cache: bypass the .sbgc cache entirely
  int threads = 0;       ///< --threads: parser worker count (0 = OpenMP)

  // ooc planning flags (`plan`)
  std::uint64_t mem_budget = 0;  ///< --mem-budget: bytes, K/M/G suffix
  std::uint32_t levels = 0;      ///< --levels: co-partition levels (0 = auto)

  // batch-only flags
  int jobs = 4;                  ///< --jobs: concurrent batch workers
  int per_job_threads = 1;       ///< --per-job-threads: OpenMP team per job
  double deadline_ms = 0;        ///< --deadline-ms: per-job deadline
  bool verify_sequential = false;///< --verify-sequential: replay + compare
  bool inject_failure = false;   ///< --inject-failure: add one failing job
  bool auto_variants = false;    ///< --auto: one "auto" job per problem

  /// Ingestion options for file loads under the current flags.
  ingest::Options ingest_options() const {
    ingest::Options io;
    io.use_cache = !no_cache && ingest::cache_enabled_default();
    io.threads = threads;
    return io;
  }
};

/// "512M"-style byte count (powers of 1024), same grammar as
/// SBG_MEM_BUDGET / SBG_SERVE_MEM_CAP.
std::uint64_t parse_mem_bytes(const std::string& flag, const char* raw) {
  std::string s(raw);
  std::uint64_t mult = 1;
  if (!s.empty()) {
    switch (s.back()) {
      case 'k': case 'K': mult = 1ull << 10; s.pop_back(); break;
      case 'm': case 'M': mult = 1ull << 20; s.pop_back(); break;
      case 'g': case 'G': mult = 1ull << 30; s.pop_back(); break;
      default: break;
    }
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (s.empty() || end == s.c_str() || *end != '\0') {
    throw InputError(flag + ": expected bytes (optional K/M/G suffix), got '" +
                     raw + "'");
  }
  return std::uint64_t(v) * mult;
}

Options parse_flags(int argc, char** argv, int first) {
  Options o;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw InputError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--scale") {
      o.scale = std::atof(next());
    } else if (a == "--n") {
      o.n = static_cast<vid_t>(std::atoll(next()));
    } else if (a == "--k") {
      o.k = static_cast<vid_t>(std::atoll(next()));
    } else if (a == "--seed") {
      o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--json") {
      o.json_out = next();
    } else if (a == "--trace") {
      o.trace = true;
    } else if (a == "--trace-out") {
      o.trace_out = next();
    } else if (a.rfind("--trace-out=", 0) == 0) {
      o.trace_out = a.substr(std::string("--trace-out=").size());
      if (o.trace_out.empty()) throw InputError("missing value for " + a);
    } else if (a == "--variant") {
      o.variant = next();
    } else if (a == "--no-cache") {
      o.no_cache = true;
    } else if (a == "--threads") {
      o.threads = std::atoi(next());
    } else if (a == "--mem-budget") {
      o.mem_budget = parse_mem_bytes(a, next());
    } else if (a == "--levels") {
      o.levels = static_cast<std::uint32_t>(std::atoll(next()));
    } else if (a == "--jobs") {
      o.jobs = std::atoi(next());
    } else if (a == "--per-job-threads") {
      o.per_job_threads = std::atoi(next());
    } else if (a == "--deadline-ms") {
      o.deadline_ms = std::atof(next());
    } else if (a == "--verify-sequential") {
      o.verify_sequential = true;
    } else if (a == "--inject-failure") {
      o.inject_failure = true;
    } else if (a == "--auto") {
      o.auto_variants = true;
    }
  }
  return o;
}

bool is_dataset_name(const std::string& s) {
  for (const auto& name : dataset_names()) {
    if (name == s) return true;
  }
  return false;
}

CsrGraph load_or_generate(const std::string& spec, const Options& o) {
  if (is_dataset_name(spec)) return make_dataset(spec, o.scale, o.seed);
  if (spec == "path") return build_graph(gen_path(o.n), false);
  if (spec == "cycle") return build_graph(gen_cycle(o.n), false);
  if (spec == "grid") {
    const auto side = static_cast<vid_t>(std::sqrt(double(o.n)));
    return build_graph(gen_grid(side, side), false);
  }
  if (spec == "rmat") {
    return build_graph(gen_rmat(o.n, eid_t{8} * o.n, o.seed), true);
  }
  if (spec == "rgg") return build_graph(gen_rgg(o.n, 15.0, o.seed), true);
  if (spec == "road") return build_graph(gen_road(o.n, 2.0, 0.35, o.seed), true);
  return ingest::load(spec, o.ingest_options());
}

int cmd_load(const std::string& spec, const Options& o) {
  ingest::LoadReport rep;
  const CsrGraph g = ingest::load(spec, o.ingest_options(), &rep);
  std::printf("loaded %s: %u vertices, %llu edges (.%s)\n", spec.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              rep.format.c_str());
  if (rep.cache_hit) {
    std::printf("cache HIT  %s (%.4fs binary read)\n", rep.cache_path.c_str(),
                rep.cache_read_seconds);
  } else {
    std::printf("text parse %.4fs (%llu bytes), CSR build %.4fs\n",
                rep.parse_seconds,
                static_cast<unsigned long long>(rep.bytes_parsed),
                rep.build_seconds);
    if (!rep.cache_path.empty()) {
      std::printf("cache MISS -> wrote %s (%.4fs)\n", rep.cache_path.c_str(),
                  rep.cache_write_seconds);
    }
  }
  return 0;
}

int cmd_cache(const std::string& spec, const Options& o) {
  ingest::Options io = o.ingest_options();
  io.use_cache = true;  // warming with --no-cache would be a contradiction
  ingest::LoadReport rep;
  const std::string path = ingest::warm_cache(spec, io, &rep);
  if (rep.cache_hit) {
    std::printf("already warm: %s\n", path.c_str());
  } else {
    std::printf("parsed %s in %.4fs (+ %.4fs CSR build), wrote %s (%.4fs)\n",
                spec.c_str(), rep.parse_seconds, rep.build_seconds,
                path.c_str(), rep.cache_write_seconds);
  }
  return 0;
}

int cmd_gen(const std::string& spec, const std::string& out,
            const Options& o) {
  const CsrGraph g = load_or_generate(spec, o);
  save_graph(out, g);
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

int cmd_stats(const std::string& spec, const Options& o) {
  const CsrGraph g = load_or_generate(spec, o);
  const GraphStats s = graph_stats(g);
  const auto bridges = find_bridges(g, BridgeAlgo::kShortcutWalk);
  std::printf("vertices      %u\n", s.num_vertices);
  std::printf("edges         %llu\n",
              static_cast<unsigned long long>(s.num_edges));
  std::printf("avg degree    %.2f\n", s.avg_degree);
  std::printf("min/max deg   %u / %u\n", s.min_degree, s.max_degree);
  std::printf("%%deg<=2       %.2f\n", s.pct_deg2);
  std::printf("bridges       %zu (%.2f%% of edges)\n", bridges.size(),
              s.num_edges ? 100.0 * static_cast<double>(bridges.size()) /
                                static_cast<double>(s.num_edges)
                          : 0.0);
  return 0;
}

int cmd_decompose(const std::string& spec, const std::string& which,
                  const Options& o) {
  const CsrGraph g = load_or_generate(spec, o);
  if (which == "bridge") {
    const auto d = decompose_bridge(g);
    std::printf("bridges %zu, 2-edge-connected components %u (%.4fs)\n",
                d.bridges.size(), d.components.count, d.decompose_seconds);
  } else if (which == "rand") {
    const vid_t k = o.k ? o.k : rand_partition_heuristic(g);
    const auto d = decompose_rand(g, k, o.seed);
    std::printf("k=%u: intra %llu, cross %llu edges (%.4fs)\n", d.k,
                static_cast<unsigned long long>(d.g_intra.num_edges()),
                static_cast<unsigned long long>(d.g_cross.num_edges()),
                d.decompose_seconds);
  } else if (which == "degk") {
    const vid_t k = o.k ? o.k : 2;
    const auto d = decompose_degk(g, k, kDegkAll);
    std::printf("k=%u: |V_H|=%u, G_H %llu / G_L %llu / G_C %llu edges "
                "(%.4fs)\n",
                d.k, d.num_high,
                static_cast<unsigned long long>(d.g_high.num_edges()),
                static_cast<unsigned long long>(d.g_low.num_edges()),
                static_cast<unsigned long long>(d.g_cross.num_edges()),
                d.decompose_seconds);
  } else {
    throw InputError("unknown decomposition: " + which);
  }
  return 0;
}

int cmd_check(const std::string& spec, const Options& o) {
  const CsrGraph g = load_or_generate(spec, o);
  int bad = 0;
  const auto verdict = [&](const char* name, const check::CheckResult& r) {
    std::printf("%-12s %s\n", name, r.message().c_str());
    if (!r.ok) ++bad;
  };
  verdict("bridge", check::check_decomposition(g, decompose_bridge(g)));
  verdict("rand",
          check::check_decomposition(
              g, decompose_rand(g, o.k ? o.k : 4, o.seed)));
  verdict("degk", check::check_decomposition(
                      g, decompose_degk(g, o.k ? o.k : 2, kDegkAll),
                      kDegkAll));
  verdict("mm/gm", check::check_matching(g, mm_gm(g).mate).result);
  verdict("color/vb", check::check_coloring(g, color_vb(g).color).result);
  verdict("mis/luby",
          check::check_mis(g, mis_luby(g, o.seed).state).result);
  if (bad) std::printf("%d check(s) FAILED\n", bad);
  return bad ? 1 : 0;
}

int cmd_mm(const std::string& spec, const std::string& algo,
           const Options& o) {
  const CsrGraph g = load_or_generate(spec, o);
  MatchResult r;
  if (algo == "gm") r = mm_gm(g);
  else if (algo == "lmax") r = mm_lmax(g, o.seed);
  else if (algo == "ii") r = mm_ii(g, o.seed);
  else if (algo == "greedy") r = mm_greedy_seq(g);
  else if (algo == "bridge") r = mm_bridge(g);
  else if (algo == "rand") r = mm_rand(g, o.k);
  else if (algo == "degk") r = mm_degk(g, o.k ? o.k : 2);
  else throw InputError("unknown matching algorithm: " + algo);
  const check::MatchingReport rep = check::check_matching(g, r.mate);
  SBG_CHECK(rep.result.ok, rep.result.message().c_str());
  SBG_GAUGE_SET("result.rounds", r.rounds);
  SBG_GAUGE_SET("result.cardinality", r.cardinality);
  SBG_GAUGE_SET("result.total_seconds", r.total_seconds);
  SBG_GAUGE_SET("result.decompose_seconds", r.decompose_seconds);
  SBG_GAUGE_SET("result.solve_seconds", r.solve_seconds);
  std::printf("%s: |M|=%llu, %u rounds, %.4fs (decompose %.4fs)\n",
              algo.c_str(), static_cast<unsigned long long>(r.cardinality),
              r.rounds, r.total_seconds, r.decompose_seconds);
  return 0;
}

int cmd_color(const std::string& spec, const std::string& algo,
              const Options& o) {
  const CsrGraph g = load_or_generate(spec, o);
  ColorResult r;
  if (algo == "vb") r = color_vb(g);
  else if (algo == "eb") r = color_eb(g);
  else if (algo == "jp") r = color_jp(g);
  else if (algo == "spec") r = color_speculative(g);
  else if (algo == "bridge") r = color_bridge(g);
  else if (algo == "rand") r = color_rand(g, o.k ? o.k : 2);
  else if (algo == "degk") r = color_degk(g, o.k ? o.k : 2);
  else throw InputError("unknown coloring algorithm: " + algo);
  const check::ColoringReport rep = check::check_coloring(g, r.color);
  SBG_CHECK(rep.result.ok, rep.result.message().c_str());
  SBG_GAUGE_SET("result.rounds", r.rounds);
  SBG_GAUGE_SET("result.colors", r.num_colors);
  SBG_GAUGE_SET("result.conflicted_vertices", r.conflicted_vertices);
  SBG_GAUGE_SET("result.total_seconds", r.total_seconds);
  SBG_GAUGE_SET("result.decompose_seconds", r.decompose_seconds);
  SBG_GAUGE_SET("result.solve_seconds", r.solve_seconds);
  std::printf("%s: %u colors (%u distinct), %u rounds, %.4fs "
              "(decompose %.4fs)\n",
              algo.c_str(), r.num_colors, rep.distinct_colors, r.rounds,
              r.total_seconds, r.decompose_seconds);
  return 0;
}

int cmd_mis(const std::string& spec, const std::string& algo,
            const Options& o) {
  const CsrGraph g = load_or_generate(spec, o);
  MisResult r;
  if (algo == "luby") r = mis_luby(g, o.seed);
  else if (algo == "greedy") r = mis_greedy(g, o.seed);
  else if (algo == "bridge") r = mis_bridge(g, o.seed);
  else if (algo == "rand") r = mis_rand(g, o.k, o.seed);
  else if (algo == "degk") r = mis_degk(g, o.k ? o.k : 2, o.seed);
  else throw InputError("unknown MIS algorithm: " + algo);
  const check::MisReport rep = check::check_mis(g, r.state);
  SBG_CHECK(rep.result.ok, rep.result.message().c_str());
  SBG_GAUGE_SET("result.rounds", r.rounds);
  SBG_GAUGE_SET("result.mis_size", r.size);
  SBG_GAUGE_SET("result.total_seconds", r.total_seconds);
  SBG_GAUGE_SET("result.decompose_seconds", r.decompose_seconds);
  SBG_GAUGE_SET("result.solve_seconds", r.solve_seconds);
  std::printf("%s: |I|=%zu, %u rounds, %.4fs (decompose %.4fs)\n",
              algo.c_str(), r.size, r.rounds, r.total_seconds,
              r.decompose_seconds);
  return 0;
}

int cmd_batch(const std::string& graphs_csv, const Options& o) {
  // Load every graph once; jobs share them read-only via shared_ptr.
  std::vector<std::pair<std::string, std::shared_ptr<const CsrGraph>>> graphs;
  std::string item;
  for (std::size_t i = 0; i <= graphs_csv.size(); ++i) {
    if (i < graphs_csv.size() && graphs_csv[i] != ',') {
      item += graphs_csv[i];
      continue;
    }
    if (!item.empty()) {
      graphs.emplace_back(
          item, std::make_shared<const CsrGraph>(load_or_generate(item, o)));
      item.clear();
    }
  }
  if (graphs.empty()) throw InputError("batch: no graphs given");

  // --auto collapses the 12-job Table-I matrix per graph down to one
  // selector-resolved job per problem; the report's "resolved_variant"
  // records what each one ran as.
  std::vector<sched::JobSpec> specs;
  if (o.auto_variants) {
    for (const auto& [name, g] : graphs) {
      for (const sched::Problem p : {sched::Problem::kMM,
                                     sched::Problem::kColor,
                                     sched::Problem::kMis}) {
        sched::JobSpec spec;
        spec.graph_name = name;
        spec.graph = g;
        spec.problem = p;
        spec.variant = sched::kAutoVariant;
        spec.seed = o.seed;
        spec.name = name + "/" + to_string(p) + "/auto";
        specs.push_back(std::move(spec));
      }
    }
  } else {
    specs = sched::table1_matrix(graphs, o.seed);
  }
  if (o.inject_failure) {
    sched::JobSpec bad = specs.front();
    bad.name = "injected-failure";
    bad.inject_failure = true;
    specs.push_back(std::move(bad));
  }

  sched::BatchOptions bo;
  bo.jobs = o.jobs;
  bo.per_job_threads = o.per_job_threads;
  bo.deadline_ms = o.deadline_ms;
  const sched::BatchReport report = sched::run_batch(specs, bo);

  int unexpected = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    const auto& res = report.results[i];
    std::printf("%-32s %-9s w%-2d %8.4fs  rounds %-6u value %-10llu %s\n",
                spec.name.c_str(), to_string(res.status), res.worker,
                res.seconds, res.rounds,
                static_cast<unsigned long long>(res.value),
                res.error.c_str());
    const bool expected_failure =
        spec.inject_failure && res.status == sched::JobStatus::kFailed;
    const bool deadline_cancel = o.deadline_ms > 0 &&
                                 res.status == sched::JobStatus::kCancelled;
    if (res.status != sched::JobStatus::kOk && !expected_failure &&
        !deadline_cancel) {
      ++unexpected;
    }
  }
  std::printf("batch: %zu jobs on %d workers x %d threads, %.4fs wall "
              "(ok %d, failed %d, cancelled %d)\n",
              specs.size(), bo.jobs, bo.per_job_threads, report.wall_seconds,
              report.count(sched::JobStatus::kOk),
              report.count(sched::JobStatus::kFailed),
              report.count(sched::JobStatus::kCancelled));

  if (o.verify_sequential) {
    // Replay each completed job alone in this thread. Counter-based RNG
    // makes the seeded solvers byte-identical, so their hashes must match;
    // the speculative colorers are schedule-dependent by design, so for
    // them the replay only has to come back oracle-clean.
    int mismatches = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].inject_failure) continue;
      if (report.results[i].status != sched::JobStatus::kOk) continue;
      // Replay "auto" jobs as the variant they actually resolved to: a
      // fresh resolution could legitimately explore a different candidate,
      // which is selector progress, not a concurrency mismatch.
      sched::JobSpec replay = specs[i];
      replay.variant = report.results[i].resolved_variant;
      const bool hash_must_match =
          sched::schedule_deterministic(replay.problem, replay.variant);
      const sched::JobResult ref = sched::run_job(replay);
      if (ref.status != sched::JobStatus::kOk ||
          (hash_must_match &&
           ref.result_hash != report.results[i].result_hash)) {
        std::printf("MISMATCH %s: batch %016llx != sequential %016llx %s\n",
                    specs[i].name.c_str(),
                    static_cast<unsigned long long>(
                        report.results[i].result_hash),
                    static_cast<unsigned long long>(ref.result_hash),
                    ref.error.c_str());
        ++mismatches;
      }
    }
    std::printf("verify-sequential: %d mismatch%s\n", mismatches,
                mismatches == 1 ? "" : "es");
    unexpected += mismatches;
  }

  if (!o.json_out.empty()) {
    std::FILE* f = std::fopen(o.json_out.c_str(), "wb");
    if (f == nullptr) throw InputError("cannot open " + o.json_out);
    const std::string body = report.to_json();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", o.json_out.c_str());
  }
  return unexpected == 0 ? 0 : 1;
}

int cmd_auto(const std::string& spec, const std::string& problem,
             const Options& o) {
  const auto graph =
      std::make_shared<const CsrGraph>(load_or_generate(spec, o));
  const std::string key = tune::graph_key(spec, *graph);
  const tune::Fingerprint fp = tune::fingerprint_of(*graph);
  std::printf("fingerprint %s: %llu vertices, %llu arcs, avg degree %.2f, "
              "%%deg<=2 %.2f, %%bridges %.2f\n",
              spec.c_str(), static_cast<unsigned long long>(fp.num_vertices),
              static_cast<unsigned long long>(fp.num_arcs), fp.avg_degree,
              fp.pct_deg2, fp.pct_bridges);

  std::vector<sched::Problem> problems;
  if (problem.empty()) {
    problems = {sched::Problem::kMM, sched::Problem::kColor,
                sched::Problem::kMis};
  } else if (problem == "mm") {
    problems = {sched::Problem::kMM};
  } else if (problem == "color") {
    problems = {sched::Problem::kColor};
  } else if (problem == "mis") {
    problems = {sched::Problem::kMis};
  } else {
    throw InputError("auto: unknown problem " + problem +
                     " (expected mm, color, or mis)");
  }

  int bad = 0;
  for (const sched::Problem p : problems) {
    sched::JobSpec job;
    job.graph_name = spec;
    job.graph = graph;
    job.problem = p;
    job.variant = sched::kAutoVariant;
    job.seed = o.seed;
    job.name = spec + "/" + to_string(p) + "/auto";

    // prepare_job is read-only (recording happens after execution), so
    // this resolution and the one inside run_job below see the same store
    // state and agree; here it surfaces the selector's rationale.
    const sched::PreparedJob prep = sched::prepare_job(job);
    const tune::Choice choice = tune::choose_for_graph(*graph, p, key);
    const int threads = o.threads > 0 ? o.threads : choice.threads;
    std::printf("%-5s -> %-12s (%s; k=%u, partitions=%d, threads=%d)\n",
                to_string(p), prep.spec.variant.c_str(),
                prep.auto_reason.c_str(), choice.k, choice.partitions,
                threads);

    const ScopedThreads st(threads);
    const sched::JobResult res = sched::run_job(job);
    if (res.status != sched::JobStatus::kOk) {
      std::printf("%-5s FAILED: %s\n", to_string(p), res.error.c_str());
      ++bad;
      continue;
    }
#if SBG_OBS_ENABLED
    // Not the SBG_GAUGE_SET macro: it binds its handle statically per call
    // site, and this site runs once per problem with a different name.
    const std::string prefix = std::string("auto.") + to_string(p);
    obs::registry().gauge(prefix + ".seconds").set(res.seconds);
    obs::registry().gauge(prefix + ".rounds").set(res.rounds);
#endif
    std::printf("%-5s ran %-12s %.4fs, %u rounds, value %llu (oracle ok)\n",
                to_string(p), res.resolved_variant.c_str(), res.seconds,
                res.rounds, static_cast<unsigned long long>(res.value));
  }

  std::string err;
  if (!tune::save_global_store(&err)) {
    std::fprintf(stderr, "warning: telemetry not saved: %s\n", err.c_str());
  } else if (const std::string path = tune::default_store_path();
             !path.empty()) {
    std::printf("telemetry -> %s\n", path.c_str());
  }
  return bad ? 1 : 0;
}

int cmd_metrics(const std::string& spec, const std::string& problem,
                const Options& o) {
  sched::JobSpec job;
  job.graph_name = spec;
  job.graph =
      std::make_shared<const CsrGraph>(load_or_generate(spec, o));
  if (problem == "mm" || problem.empty()) {
    job.problem = sched::Problem::kMM;
    job.variant = o.variant.empty() ? "gm" : o.variant;
  } else if (problem == "color") {
    job.problem = sched::Problem::kColor;
    job.variant = o.variant.empty() ? "vb" : o.variant;
  } else if (problem == "mis") {
    job.problem = sched::Problem::kMis;
    job.variant = o.variant.empty() ? "luby" : o.variant;
  } else {
    throw InputError("metrics: unknown problem " + problem +
                     " (expected mm, color, or mis)");
  }
  job.seed = o.seed;
  job.name = spec + "/" + to_string(job.problem) + "/" + job.variant;

  // Through the batch engine so the run is oracle-gated and carries the
  // same spans/counters a scraped service job would.
  const sched::JobResult res = sched::run_job(job);
  if (res.status != sched::JobStatus::kOk) {
    std::fprintf(stderr, "error: %s: %s\n", job.name.c_str(),
                 res.error.c_str());
    return 1;
  }
  std::fputs(obs::prometheus_exposition().c_str(), stdout);
  return 0;
}

// ---- plan: out-of-core piece schedule + cost model -----------------------

int cmd_plan(const std::string& spec, const std::string& family,
             const Options& o) {
  ooc::PlanOptions po;
  if (family == "rand") {
    po.family = ooc::PieceFamily::kRand;
  } else if (family == "degk") {
    po.family = ooc::PieceFamily::kDegk;
  } else {
    std::fprintf(stderr, "error: unknown piece family '%s' (rand|degk)\n",
                 family.c_str());
    return 2;
  }
  po.seed = o.seed;
  po.k = o.k;
  po.levels = o.levels;
  po.mem_budget =
      o.mem_budget > 0 ? o.mem_budget : ooc::mem_budget_from_env();
  const CsrGraph g = load_or_generate(spec, o);
  const ooc::Plan plan = ooc::plan_ooc(ooc::CsrSource::from_graph(g), po);
  std::printf("%s\n", plan.to_json().c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: sbg_tool <gen|load|cache|stats|convert|decompose|check"
               "|mm|color|mis|batch|auto|metrics|plan> ...\n"
               "see the header comment of examples/sbg_tool.cpp\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  sbg::apply_thread_env();
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    const Options o = parse_flags(argc, argv, cmd == "decompose" ? 4 : 3);
    const std::string algo = argc > 3 && argv[3][0] != '-' ? argv[3] : "";
    // SBG_OBS_EXPORT sampler: runs for the whole command; the destructor
    // at the end of main performs the final flush.
    const std::unique_ptr<obs::Sampler> sampler = obs::start_sampler_from_env();
    if (!o.trace_out.empty()) obs::set_trace_capture(true);
    int rc = -1;
    if (cmd == "gen" && argc >= 4) {
      rc = cmd_gen(argv[2], argv[3], o);
    } else if (cmd == "load") {
      rc = cmd_load(argv[2], o);
    } else if (cmd == "cache") {
      rc = cmd_cache(argv[2], o);
    } else if (cmd == "stats") {
      rc = cmd_stats(argv[2], o);
    } else if (cmd == "convert" && argc >= 4) {
      sbg::save_graph(argv[3], sbg::load_graph(argv[2]));
      rc = 0;
    } else if (cmd == "decompose" && argc >= 4) {
      rc = cmd_decompose(argv[2], argv[3], o);
    } else if (cmd == "check") {
      rc = cmd_check(argv[2], o);
    } else if (cmd == "mm") {
      rc = cmd_mm(argv[2], algo.empty() ? "gm" : algo, o);
    } else if (cmd == "color") {
      rc = cmd_color(argv[2], algo.empty() ? "vb" : algo, o);
    } else if (cmd == "mis") {
      rc = cmd_mis(argv[2], algo.empty() ? "luby" : algo, o);
    } else if (cmd == "batch") {
      rc = cmd_batch(argv[2], o);
    } else if (cmd == "auto") {
      rc = cmd_auto(argv[2], algo, o);
    } else if (cmd == "metrics") {
      rc = cmd_metrics(argv[2], algo, o);
    } else if (cmd == "plan") {
      rc = cmd_plan(argv[2], algo.empty() ? "rand" : algo, o);
    }
    if (rc < 0) return usage();

    if (o.trace) obs::print_span_tree(stdout);
    if (!o.trace_out.empty()) {
      std::string error;
      if (!obs::write_chrome_trace(o.trace_out, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s (load in chrome://tracing or "
                   "ui.perfetto.dev)\n", o.trace_out.c_str());
    }
    // batch writes its own aggregated JSON (which embeds the obs report).
    if (!o.json_out.empty() && cmd != "batch") {
      std::string error;
      if (!obs::write_json_report(o.json_out,
                                  {{"tool", "sbg_tool"},
                                   {"command", cmd},
                                   {"input", argv[2]},
                                   {"algo", algo}},
                                  &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      std::printf("wrote %s\n", o.json_out.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
