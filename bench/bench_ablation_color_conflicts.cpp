// Ablation (Section IV-C/IV-D): COLOR-Rand stitch conflicts vs. partition
// count. The paper measures ~45% of vertices entering a color conflict
// with two partitions, and more partitions -> more cross edges -> more
// conflicts -> slower stitch phase.
#include "bench_common.hpp"

#include "coloring/coloring.hpp"

int main() {
  using namespace sbg;
  const double scale =
      bench::announce("Ablation: COLOR-Rand conflicts vs. partition count");

  const std::vector<vid_t> ks{2, 4, 10, 32};
  for (const char* name :
       {"coAuthorsCiteseer", "web-Google", "kron-g500-logn20"}) {
    const CsrGraph g = make_dataset(name, scale);
    const ColorResult base = color_vb(g);
    std::printf("%s (VB baseline: %.4fs, %u colors)\n", name,
                base.total_seconds, base.num_colors);
    std::printf("  %6s | %10s | %10s | %8s | %6s\n", "k", "total(s)",
                "conflicted", "%vert", "colors");
    for (const vid_t k : ks) {
      const ColorResult r = color_rand(g, k, ColorEngine::kVB);
      std::printf("  %6u | %10.4f | %10u | %7.1f%% | %6u\n", k,
                  r.total_seconds, r.conflicted_vertices,
                  100.0 * static_cast<double>(r.conflicted_vertices) /
                      static_cast<double>(g.num_vertices()),
                  r.num_colors);
    }
    std::printf("\n");
  }
  std::printf("Paper reference: ~45%% conflicted vertices at k=2, and the\n"
              "conflict fraction grows with the partition count.\n");
  return 0;
}
