// Figure 3(a) reproduction: maximal matching on the CPU path.
// Baseline GM vs. MM-Bridge / MM-Rand / MM-Degk; the number atop each bar
// in the paper is MM-Rand's speedup over GM. RAND uses 10 partitions
// (100 on the kron instances, per Section III-C); the average speedup
// excludes the two rgg instances (paper footnote 1; paper value: 3.5x).
#include "bench_common.hpp"

#include "matching/matching.hpp"

int main() {
  using namespace sbg;
  const double scale = bench::announce("Figure 3(a): maximal matching, CPU");

  std::printf("%-18s | %9s %10s %9s %9s | %8s | %7s %7s\n", "graph", "GM(s)",
              "Bridge(s)", "Rand(s)", "Degk(s)", "RandSpd", "GMiter",
              "Rnditer");
  bench::print_rule(100);

  bench::SpeedupAverager avg;
  for (const auto& name : bench::selected_graphs()) {
    const CsrGraph g = make_dataset(name, scale);
    const bool kron = name.rfind("kron", 0) == 0;
    const bool rgg = name.rfind("rgg", 0) == 0;
    const vid_t k = kron ? 100 : 10;

    const MatchResult gm = mm_gm(g);
    const MatchResult bridge = mm_bridge(g, MatchEngine::kGM);
    const MatchResult rand = mm_rand(g, k, MatchEngine::kGM);
    const MatchResult degk = mm_degk(g, 2, MatchEngine::kGM);

    const double speedup = gm.total_seconds / rand.total_seconds;
    avg.add(name, speedup, /*excluded=*/rgg);
    std::printf("%-18s | %9.4f %10.4f %9.4f %9.4f | %7.2fx | %7u %7u%s\n",
                name.c_str(), gm.total_seconds, bridge.total_seconds,
                rand.total_seconds, degk.total_seconds, speedup, gm.rounds,
                rand.rounds, rgg ? "  (excluded from avg)" : "");
  }
  std::printf("\nMM-Rand average speedup over GM (rgg excluded): %.2fx "
              "(paper: 3.5x)\n",
              avg.geomean());
  return 0;
}
