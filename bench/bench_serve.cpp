// Serving overhead: what the HTTP front end + hot registry add to a solve.
//
// Three measurements over the same (graph, problem, variant) job:
//   direct      — sched::run_job in-process, graph already in hand: the
//                 floor the service is judged against.
//   serve-cold  — one sbg_serve round-trip where the graph must be loaded
//                 into the registry first (registry miss).
//   serve-warm  — repeated round-trips against the resident graph
//                 (registry hits): steady-state service latency.
//
// The acceptance story: warm round-trip minus direct is the full serving
// tax (loopback TCP + HTTP framing + JSON + admission queue), and it must
// be small against even the smallest Table-I solves; cold minus warm is
// the ingest cost the registry amortizes away after request one.
//
// Environment: SBG_SCALE / SBG_GRAPHS / SBG_JSON_OUT as usual; the obs
// gauges serve_bench.{direct,warm,cold}_seconds feed the perf gate.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "parallel/timer.hpp"
#include "sched/sched.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace sbg;

constexpr int kWarmIters = 50;

double round_trip(int port, const std::string& body, bool* ok) {
  serve::ClientResponse res;
  std::string err;
  Timer t;
  if (!serve::http_request(port, "POST", "/v1/jobs", body, &res, &err) ||
      res.status != 200) {
    std::fprintf(stderr, "bench_serve: request failed: %s (status %d)\n",
                 err.c_str(), res.status);
    *ok = false;
    return 0;
  }
  return t.seconds();
}

}  // namespace

int main() {
  const double scale =
      bench::announce("Serving overhead: HTTP round-trip vs direct run_job");

  std::vector<std::string> names;
  if (std::getenv("SBG_GRAPHS") != nullptr) {
    names = bench::selected_graphs();
  } else {
    names = {"c-73", "lp1"};
  }

  std::printf("%-12s %-10s %12s %12s %12s %10s\n", "graph", "variant",
              "direct_ms", "warm_ms", "cold_ms", "tax");
  bool ok = true;
  for (const std::string& name : names) {
    const auto graph =
        std::make_shared<const CsrGraph>(make_dataset(name, scale));
    const std::string body =
        "{\"graph\":\"" + name + "\",\"problem\":\"mm\","
        "\"variant\":\"rand-gm\",\"seed\":42}";

    // Direct floor: same spec, no service in the way.
    sched::JobSpec spec;
    spec.name = name + "/mm/rand-gm";
    spec.graph_name = name;
    spec.graph = graph;
    spec.problem = sched::Problem::kMM;
    spec.variant = "rand-gm";
    spec.seed = 42;
    sched::run_job(spec);  // warm the code paths once
    Timer td;
    for (int i = 0; i < kWarmIters; ++i) sched::run_job(spec);
    const double direct = td.seconds() / kWarmIters;

    serve::ServerOptions opt;
    opt.workers = 2;
    opt.dataset_scale = scale;
    serve::Server server(opt);
    std::string err;
    if (!server.start(&err)) {
      std::fprintf(stderr, "bench_serve: %s\n", err.c_str());
      return 1;
    }
    // Cold: request one pays the registry load.
    const double cold = round_trip(server.port(), body, &ok);
    // Warm: the resident graph answers every later request.
    double warm_total = 0;
    for (int i = 0; i < kWarmIters; ++i) {
      warm_total += round_trip(server.port(), body, &ok);
    }
    const double warm = warm_total / kWarmIters;
    server.shutdown();

    // registry().gauge directly: the SBG_GAUGE_SET macro caches a static
    // handle, which is wrong for per-graph dynamic names in a loop.
    const std::string slug = bench::detail::slugify(name.c_str());
    obs::registry().gauge("serve_bench." + slug + ".direct_seconds").set(direct);
    obs::registry().gauge("serve_bench." + slug + ".warm_seconds").set(warm);
    obs::registry().gauge("serve_bench." + slug + ".cold_seconds").set(cold);
    std::printf("%-12s %-10s %12.3f %12.3f %12.3f %9.2fx\n", name.c_str(),
                "rand-gm", direct * 1e3, warm * 1e3, cold * 1e3,
                direct > 0 ? warm / direct : 0.0);
  }

  return ok ? 0 : 1;
}
