// Incremental repair vs from-scratch re-solve on streaming update batches.
//
// For every Table II graph this harness opens a dyn::Session (MM + coloring
// + MIS maintained together), streams R batches at each batch size — 0.1%
// and 1% of m, half inserts half deletes — and times the repair path
// against the alternative a static pipeline has: materialize the current
// graph and re-run all three solvers from scratch. The row metric is
//
//     speedup = resolve_seconds / repair_seconds     (totals over R reps)
//
// The run FAILS (exit 1) if any row at batch size <= 1% of m comes in
// under SBG_DYN_SPEEDUP (default 5.0, the ISSUE's bound) — unless the
// from-scratch re-solve itself is under an absolute 2 ms noise floor,
// where tiny scaled-down graphs measure timer jitter rather than repair
// quality. Repairs run with verify off (oracle passes are covered by
// tests and the dyn fuzz family; here they would bill an oracle sweep to
// the repair side).
//
// Environment: the common SBG_SCALE / SBG_THREADS / SBG_GRAPHS /
// SBG_JSON_OUT knobs, plus SBG_DYN_SPEEDUP (gate) and SBG_DYN_REPS
// (batches per row, default 5).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "coloring/coloring.hpp"
#include "dyn/session.hpp"
#include "graph/builder.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"
#include "obs/obs.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

namespace {

using namespace sbg;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const double x = std::atof(v);
  return x > 0 ? x : fallback;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

/// A half-inserts / half-deletes batch of `k` edge updates drawn against
/// the current materialized graph: deletes pick live edges (random vertex,
/// random incident arc), inserts pick uniform pairs. Duplicates, self
/// loops and already-present edges stay in — apply() canonicalizes, and
/// real update streams are not pre-deduplicated either.
dyn::UpdateBatch draw_batch(const CsrGraph& g, std::size_t k, Rng& rng) {
  dyn::UpdateBatch batch;
  const vid_t n = g.num_vertices();
  if (n < 2) return batch;
  for (std::size_t i = 0; i < k / 2; ++i) {
    const vid_t u = static_cast<vid_t>(rng.below(n));
    const vid_t v = static_cast<vid_t>(rng.below(n));
    if (u != v) batch.insert.push_back({u, v});
  }
  for (std::size_t i = 0; i + k / 2 < k; ++i) {
    const vid_t u = static_cast<vid_t>(rng.below(n));
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) continue;
    batch.remove.push_back(
        {u, nbrs[static_cast<std::size_t>(rng.below(nbrs.size()))]});
  }
  return batch;
}

/// One from-scratch re-solve of everything the session maintains, on the
/// graph as it stands now. Materialization is billed here on purpose: a
/// static pipeline that wants fresh solutions after a batch has to build
/// the CSR first too.
double resolve_from_scratch(dyn::Session& session, std::uint64_t seed) {
  Timer t;
  const CsrGraph g = session.materialized();
  const MatchResult mm = mm_gm(g);
  const ColorResult col = color_vb(g);
  const MisResult mis = mis_greedy(g, seed);
  const double s = t.seconds();
  // Keep the optimizer honest about all three solves.
  volatile std::size_t sink = mm.cardinality + col.num_colors + mis.size;
  (void)sink;
  return s;
}

}  // namespace

int main() {
  const double scale = bench::announce(
      "Dynamic updates: incremental repair vs from-scratch re-solve");
  const double bound = env_double("SBG_DYN_SPEEDUP", 5.0);
  const int reps = env_int("SBG_DYN_REPS", 5);
  const double slack_seconds = 2e-3;  // resolve times under this are noise

  const std::vector<std::string> names = bench::selected_graphs();
  const double fracs[] = {0.001, 0.01};
  std::printf("speedup gate %.1fx at batch <= 1%% of m (+%.0fms resolve "
              "floor), %d batches/row\n\n",
              bound, slack_seconds * 1e3, reps);
  std::printf("%-18s %10s %8s %7s  %11s %11s %8s\n", "graph", "m", "batch",
              "frac", "repair ms", "resolve ms", "speedup");

  int gate_violations = 0;
  double worst_speedup = 1e100;
  for (const std::string& name : names) {
    CsrGraph base = make_dataset(name, scale);
    const eid_t m = base.num_edges();
    Rng rng(mix64(0x9e3779b97f4a7c15ull ^ m));

    for (const double frac : fracs) {
      const std::size_t k =
          std::max<std::size_t>(2, static_cast<std::size_t>(frac * m));

      dyn::SessionOptions sopt;
      sopt.seed = 42;
      dyn::Session session(make_dataset(name, scale), sopt);

      // One unrecorded warm-up batch: the first update pays cold caches
      // and the first delta allocations.
      (void)session.update(draw_batch(base, k, rng), /*verify=*/false);

      double repair_seconds = 0.0;
      double resolve_seconds = 0.0;
      for (int r = 0; r < reps; ++r) {
        const CsrGraph snapshot = session.materialized();
        const dyn::UpdateBatch batch = draw_batch(snapshot, k, rng);
        const dyn::UpdateOutcome out = session.update(batch, /*verify=*/false);
        repair_seconds += out.seconds;
        resolve_seconds += resolve_from_scratch(session, 42 + r);
      }

      const double speedup =
          repair_seconds > 0 ? resolve_seconds / repair_seconds : 1e100;
      const bool gated = frac <= 0.01 + 1e-12 &&
                         resolve_seconds / reps > slack_seconds;
      const bool over = gated && speedup < bound;
      if (over) ++gate_violations;
      if (gated) worst_speedup = std::min(worst_speedup, speedup);
      std::printf("%-18s %10llu %8zu %6.2f%%  %11.3f %11.3f %7.1fx%s\n",
                  name.c_str(), static_cast<unsigned long long>(m), k,
                  frac * 100, repair_seconds * 1e3 / reps,
                  resolve_seconds * 1e3 / reps, speedup,
                  over ? "  UNDER" : (gated ? "" : "  (noise floor)"));

#if SBG_OBS_ENABLED
      const std::string prefix =
          "bench_dyn." + name + (frac < 0.005 ? ".b0_1pct" : ".b1pct");
      obs::registry().gauge(prefix + ".speedup").set(speedup);
      obs::registry()
          .gauge(prefix + ".repair_ms")
          .set(repair_seconds * 1e3 / reps);
      obs::registry()
          .gauge(prefix + ".resolve_ms")
          .set(resolve_seconds * 1e3 / reps);
#endif
    }
  }

  bench::print_rule(80);
  if (worst_speedup >= 1e100) {
    std::printf("every row under the %.0fms resolve floor at this scale: "
                "gate vacuously PASS (raise SBG_SCALE to exercise it)\n",
                slack_seconds * 1e3);
    SBG_GAUGE_SET("bench_dyn.worst_speedup", 0.0);
  } else {
    std::printf("worst gated speedup %.1fx against gate %.1fx: %s\n",
                worst_speedup, bound,
                gate_violations == 0 ? "PASS" : "FAIL");
    SBG_GAUGE_SET("bench_dyn.worst_speedup", worst_speedup);
  }
  SBG_GAUGE_SET("bench_dyn.gate", bound);
  SBG_GAUGE_SET("bench_dyn.violations", gate_violations);
  return gate_violations == 0 ? 0 : 1;
}
