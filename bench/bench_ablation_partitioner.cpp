// Ablation (Section II-D, Remark 1): why heavyweight partitioners lose.
// The paper excludes PMETIS because the best MM/COLOR/MIS implementations
// "in most cases finish faster than the time it takes to decompose the
// graph using PMETIS". We make the point with GROW, a BFS-growing
// partitioner that is far cheaper than METIS yet still often costs more
// than an entire baseline solve — a fortiori, METIS cannot pay off.
#include <algorithm>

#include "bench_common.hpp"

#include "coloring/coloring.hpp"
#include "core/degk.hpp"
#include "core/grow.hpp"
#include "core/rand.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"

int main() {
  using namespace sbg;
  const double scale =
      bench::announce("Ablation: partitioner cost vs. whole-solve cost");

  std::printf("%-18s | %9s %9s %9s | %9s %9s %9s | %s\n", "graph", "GROW(s)",
              "RAND(s)", "DEG2(s)", "GM(s)", "VB(s)", "Luby(s)",
              "GROW slower than a full solve?");
  bench::print_rule(120);

  for (const auto& name : bench::selected_graphs()) {
    const CsrGraph g = make_dataset(name, scale);
    const double grow = decompose_grow(g, 16).decompose_seconds;
    const double rand = decompose_rand(g, 10).decompose_seconds;
    const double deg2 = decompose_degk(g, 2).decompose_seconds;
    const double gm = mm_gm(g).total_seconds;
    const double vb = color_vb(g).total_seconds;
    const double luby = mis_luby(g).total_seconds;
    const double min_solve = std::min({gm, vb, luby});
    std::printf("%-18s | %9.4f %9.4f %9.4f | %9.4f %9.4f %9.4f | %s\n",
                name.c_str(), grow, rand, deg2, gm, vb, luby,
                grow > min_solve ? "yes" : "no");
  }
  std::printf("\n(GROW is a deliberately cheap stand-in; METIS-class "
              "partitioners cost orders of magnitude more. Remark 1 holds "
              "a fortiori.)\n");
  return 0;
}
