// Figure 3(b) reproduction: maximal matching on the GPU execution model.
// Baseline LMAX vs. the decomposition composites; RAND uses 4 partitions
// (Section III-D). Average MM-Rand speedup excludes the rgg instances
// (paper footnote 1; paper value: 2.53x). Times are the device-model
// simulated clock plus host decomposition time (DESIGN.md section 2).
#include "bench_common.hpp"

#include "gpusim/gpu_algorithms.hpp"

int main() {
  using namespace sbg;
  const double scale =
      bench::announce("Figure 3(b): maximal matching, GPU model");

  std::printf("%-18s | %9s %10s %9s %9s | %8s\n", "graph", "LMAX(s)",
              "Bridge(s)", "Rand(s)", "Degk(s)", "RandSpd");
  bench::print_rule(84);

  bench::SpeedupAverager avg;
  for (const auto& name : bench::selected_graphs()) {
    const CsrGraph g = make_dataset(name, scale);
    const bool rgg = name.rfind("rgg", 0) == 0;

    const MatchResult lmax = gpu::mm_lmax_gpu(g);
    const MatchResult bridge = gpu::mm_bridge_gpu(g);
    const MatchResult rand = gpu::mm_rand_gpu(g, 4);
    const MatchResult degk = gpu::mm_degk_gpu(g, 2);

    const double speedup = lmax.total_seconds / rand.total_seconds;
    avg.add(name, speedup, /*excluded=*/rgg);
    std::printf("%-18s | %9.4f %10.4f %9.4f %9.4f | %7.2fx%s\n", name.c_str(),
                lmax.total_seconds, bridge.total_seconds, rand.total_seconds,
                degk.total_seconds, speedup,
                rgg ? "  (excluded from avg)" : "");
  }
  std::printf("\nMM-Rand average speedup over LMAX (rgg excluded): %.2fx "
              "(paper: 2.53x)\n",
              avg.geomean());
  return 0;
}
