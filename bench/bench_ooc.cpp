// OOC: memory-budgeted piece scheduling — the ISSUE-9 acceptance harness.
//
// Builds an RMAT graph whose piece working set is several times larger
// than the fast-memory budget, parks it in a standalone .sbgc, and runs
// the out-of-core executor over the *file-backed* mapping three ways:
//
//   ref      in-core piece store, no budget      (the hash oracle)
//   stop     budgeted spill store, no overlap    (stop-and-fetch baseline)
//   overlap  budgeted spill store, prefetch thread
//
// Gates (exit 1 when any fails):
//   G1  plan working set >= 4x the budget (the run is genuinely out of core)
//   G2  all three result hashes identical, and the mate array passes the
//       check_matching oracle against the full graph
//   G3  budgeted peak resident bytes <= budget + kSlackBytes
//   G4  per-piece |predicted - actual| store bytes <= 25%, and the run's
//       aggregate actual_bytes_moved matches the obs counters
//       (ooc.bytes_spilled + ooc.bytes_fetched) within 25%
//   G5  overlap >= 1.30x faster than stop-and-fetch at the same budget —
//       enforced only with >= 2 hardware threads (a prefetch thread cannot
//       overlap anything on one core; the measurement still prints)
//
// Knobs: SBG_OOC_BENCH_N (vertices, default 60000), SBG_OOC_BENCH_DEG
// (directed arcs per vertex, default 16), SBG_OOC_BENCH_REPS (timing
// repetitions for G5, default 3). SBG_JSON_OUT drops the standard bench
// report whose gauges (bench_ooc.*) carry every gate input.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "check/check.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ingest/cache.hpp"
#include "obs/registry.hpp"
#include "ooc/ooc.hpp"

namespace {

using namespace sbg;

constexpr std::uint64_t kSlackBytes = 1ull << 20;  // G3 fixed slack

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

void gauge(const std::string& name, double v) {
  obs::registry().gauge("bench_ooc." + name).set(v);
}

double counter_value(const char* name) {
  return static_cast<double>(obs::registry().counter(name).value());
}

int fail(const char* gate, const std::string& detail) {
  std::printf("FAIL %s: %s\n", gate, detail.c_str());
  return 1;
}

}  // namespace

int main() {
  bench::announce("OOC: memory-budgeted piece scheduling");

  const vid_t n = static_cast<vid_t>(env_u64("SBG_OOC_BENCH_N", 60'000));
  const eid_t deg = env_u64("SBG_OOC_BENCH_DEG", 16);
  const int reps = static_cast<int>(env_u64("SBG_OOC_BENCH_REPS", 3));
  const std::uint64_t seed = 42;

  const CsrGraph g = build_graph(gen_rmat(n, deg * n / 2, seed), true);
  std::printf("graph: rmat n=%u arcs=%llu (%.1f MiB CSR)\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_arcs()),
              double(g.heap_bytes()) / double(1 << 20));

  // Park the CSR in a standalone .sbgc and stream over the *mapping* — the
  // shape a larger-than-memory ingest would use (page cache, not heap).
  namespace fs = std::filesystem;
  const char* tmp = std::getenv("TMPDIR");
  const std::string store_path =
      (fs::path(tmp != nullptr && *tmp != '\0' ? tmp : ".") /
       "bench_ooc_source.sbgc").string();
  ingest::write_cache_file(store_path, ingest::CacheKey{}, g);
  ingest::MappedCsr mapped;
  if (ingest::map_cache_file(store_path, &mapped) !=
      ingest::CacheStatus::kHit) {
    std::printf("FAIL setup: could not map %s\n", store_path.c_str());
    return 1;
  }
  const ooc::CsrSource src = ooc::CsrSource::from_mapped(mapped);

  // Fixed decomposition shape (k=8, 12 levels -> 97 pieces): per-piece
  // offsets arrays dominate, so the working set is many times the CSR and
  // the budget below is a genuine constraint.
  ooc::PlanOptions po;
  po.family = ooc::PieceFamily::kRand;
  po.engine = ooc::Engine::kGM;
  po.seed = seed;
  po.k = 8;
  po.levels = 12;
  const ooc::Plan plan_ref = ooc::plan_ooc(src, po);

  const std::uint64_t budget = plan_ref.total_working_set / 6;
  po.mem_budget = budget;
  const ooc::Plan plan_b = ooc::plan_ooc(src, po);

  std::printf("plan: %zu pieces, working set %.1f MiB, budget %.1f MiB "
              "(%.1fx)\n\n",
              plan_ref.pieces.size(),
              double(plan_ref.total_working_set) / double(1 << 20),
              double(budget) / double(1 << 20),
              double(plan_ref.total_working_set) / double(budget));

  int failures = 0;

  // ---- G1: genuinely out of core --------------------------------------
  if (plan_ref.total_working_set < 4 * budget) {
    failures += fail("G1", "working set < 4x budget");
  }

  // ---- the three runs -------------------------------------------------
  ooc::RunOptions ro_ref;     // in-core reference (plan has no budget)
  ooc::RunOptions ro_stop;    // budgeted, stop-and-fetch
  ro_stop.overlap = false;
  ooc::RunOptions ro_over;    // budgeted, prefetch overlap

  const ooc::OocResult ref = ooc::run_ooc(src, plan_ref, ro_ref);
  if (ref.status != ooc::RunStatus::kOk) {
    std::printf("FAIL setup: reference run: %s\n", ref.error.c_str());
    return 1;
  }

  const double spill0 = counter_value("ooc.bytes_spilled");
  const double fetch0 = counter_value("ooc.bytes_fetched");
  ooc::OocResult stop = ooc::run_ooc(src, plan_b, ro_stop);
  const double spilled = counter_value("ooc.bytes_spilled") - spill0;
  const double fetched = counter_value("ooc.bytes_fetched") - fetch0;
  ooc::OocResult over = ooc::run_ooc(src, plan_b, ro_over);
  for (const ooc::OocResult* r : {&stop, &over}) {
    if (r->status != ooc::RunStatus::kOk) {
      std::printf("FAIL setup: budgeted run: %s\n", r->error.c_str());
      return 1;
    }
  }

  // Best-of-reps timing for the G5 ratio (first runs above also warmed the
  // page cache, so the comparison is fetch-pipeline vs fetch-pipeline, not
  // cold cache vs warm).
  double stop_s = stop.total_seconds, over_s = over.total_seconds;
  for (int r = 1; r < reps; ++r) {
    stop_s = std::min(stop_s, ooc::run_ooc(src, plan_b, ro_stop).total_seconds);
    over_s = std::min(over_s, ooc::run_ooc(src, plan_b, ro_over).total_seconds);
  }

  std::printf("%-10s %10s %10s %12s %12s %9s %7s\n", "mode", "total_s",
              "solve_s", "peak_MiB", "moved_MiB", "hits", "evict");
  const auto row = [](const char* name, const ooc::OocResult& r) {
    std::printf("%-10s %10.4f %10.4f %12.2f %12.2f %9u %7u\n", name,
                r.total_seconds, r.solve_seconds,
                double(r.peak_resident_bytes) / double(1 << 20),
                double(r.actual_bytes_moved) / double(1 << 20),
                r.prefetch_hits, r.evictions);
  };
  row("ref", ref);
  row("stop", stop);
  row("overlap", over);

  // ---- G2: hash identity + oracle -------------------------------------
  if (stop.result_hash != ref.result_hash ||
      over.result_hash != ref.result_hash) {
    failures += fail("G2", "budgeted result hash differs from in-core");
  }
  const check::MatchingReport rep = check::check_matching(g, ref.mate);
  if (!rep.result.ok) {
    failures += fail("G2", "oracle: " + rep.result.violation);
  }
  if (stop.bytes_spilled == 0) {
    failures += fail("G2", "budgeted run spilled nothing — not out of core");
  }

  // ---- G3: bounded peak ------------------------------------------------
  for (const auto& [name, r] :
       {std::pair<const char*, const ooc::OocResult&>{"stop", stop},
        {"overlap", over}}) {
    if (r.peak_resident_bytes > budget + kSlackBytes) {
      failures += fail(
          "G3", std::string(name) + ": peak " +
                    std::to_string(r.peak_resident_bytes) + " > budget " +
                    std::to_string(budget) + " + slack");
    }
  }

  // ---- G4: cost model within 25% --------------------------------------
  double max_err = 0.0;
  for (const ooc::PieceStats& st : stop.pieces) {
    if (st.arcs == 0) continue;
    const double p = double(st.predicted_store_bytes);
    const double err = std::abs(double(st.actual_store_bytes) - p) /
                       std::max(p, 1.0);
    max_err = std::max(max_err, err);
  }
  if (max_err > 0.25) {
    failures += fail("G4", "per-piece model error " +
                               std::to_string(max_err * 100.0) + "% > 25%");
  }
  const double observed_moved = spilled + fetched;
  const double agg_err =
      std::abs(double(stop.actual_bytes_moved) - observed_moved) /
      std::max(observed_moved, 1.0);
  if (agg_err > 0.25) {
    failures += fail("G4", "aggregate vs obs counters off by " +
                               std::to_string(agg_err * 100.0) + "%");
  }

  // ---- G5: overlap wins ------------------------------------------------
  const double speedup = over_s > 0 ? stop_s / over_s : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\noverlap speedup: %.2fx (stop %.4fs vs overlap %.4fs, "
              "%u hw threads)\n", speedup, stop_s, over_s, cores);
  if (cores >= 2 && speedup < 1.30) {
    failures += fail("G5", "overlap speedup " + std::to_string(speedup) +
                               " < 1.30x");
  } else if (cores < 2) {
    std::printf("G5 informational only: <2 hardware threads, a prefetch "
                "thread cannot overlap anything\n");
  }

  gauge("working_set_bytes", double(plan_ref.total_working_set));
  gauge("budget_bytes", double(budget));
  gauge("peak_resident_bytes_stop", double(stop.peak_resident_bytes));
  gauge("peak_resident_bytes_overlap", double(over.peak_resident_bytes));
  gauge("bytes_spilled", double(stop.bytes_spilled));
  gauge("model_max_err_pct", max_err * 100.0);
  gauge("model_aggregate_err_pct", agg_err * 100.0);
  gauge("overlap_speedup", speedup);
  gauge("hash_identical",
        stop.result_hash == ref.result_hash &&
                over.result_hash == ref.result_hash
            ? 1.0
            : 0.0);
  gauge("oracle_ok", rep.result.ok ? 1.0 : 0.0);
  gauge("failures", double(failures));

  std::error_code ec;
  fs::remove(store_path, ec);
  std::printf("\n%s (%d gate failure%s)\n", failures == 0 ? "PASS" : "FAIL",
              failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
