// Shared scaffolding for the per-table / per-figure reproduction harnesses.
//
// Every harness prints the paper's row layout (one row per Table II graph)
// with our measured values, so EXPERIMENTS.md can record paper-vs-measured
// directly from bench output. Environment knobs:
//   SBG_SCALE    — dataset scale factor (default 1/32 of paper sizes)
//   SBG_THREADS  — OpenMP thread count
//   SBG_GRAPHS   — comma-separated subset of Table II names to run
//   SBG_JSON_OUT — directory to drop a machine-readable BENCH_<name>.json
//                  run report into at exit (counters, per-round series,
//                  trace spans; see src/obs/report.hpp for the schema)
//   SBG_DATASET_DIR — directory of real <name>.{sbgc,mtx,el,txt} Table II
//                  files; text files load through the sbg::ingest parallel
//                  parser and its transparent binary cache
//   SBG_CACHE    — set to 0/off/false to disable the .sbgc cache
//   SBG_CACHE_DIR — redirect .sbgc cache entries away from the dataset dir
//   SBG_OBS_EXPORT / SBG_OBS_PERIOD_MS — live telemetry sinks
//                  (prom:/path.prom,jsonl:/path.jsonl); a background
//                  sampler exports snapshots while the bench runs
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/dataset.hpp"
#include "obs/export/sampler.hpp"
#include "obs/report.hpp"
#include "parallel/thread_env.hpp"

namespace sbg::bench {

/// Graphs selected for this run (SBG_GRAPHS filter applied). Unrecognized
/// names are warned about loudly: a typo used to silently select *all*
/// graphs and burn a full bench run.
inline std::vector<std::string> selected_graphs() {
  const auto all = dataset_names();
  const char* env = std::getenv("SBG_GRAPHS");
  if (!env || !*env) return all;
  std::vector<std::string> picked;
  std::string token;
  for (const char* p = env;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) {
        bool known = false;
        for (const auto& name : all) {
          if (name == token) {
            picked.push_back(name);
            known = true;
          }
        }
        if (!known) {
          std::fprintf(stderr,
                       "warning: SBG_GRAPHS entry \"%s\" matches no Table II "
                       "graph (known:", token.c_str());
          for (const auto& name : all) std::fprintf(stderr, " %s", name.c_str());
          std::fprintf(stderr, ")\n");
        }
      }
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  if (picked.empty()) {
    std::fprintf(stderr,
                 "warning: SBG_GRAPHS selected nothing; running all %zu "
                 "graphs\n", all.size());
    return all;
  }
  return picked;
}

namespace detail {

/// "Figure 3(a): maximal matching, CPU" -> "figure_3_a_maximal_matching_cpu".
inline std::string slugify(const char* title) {
  std::string out;
  bool pending_sep = false;
  for (const char* p = title; *p; ++p) {
    const char c = *p;
    const bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9');
    if (alnum) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
    } else {
      pending_sep = true;
    }
  }
  return out;
}

inline std::string& json_report_path() {
  static std::string path;
  return path;
}

inline std::string& json_report_title() {
  static std::string title;
  return title;
}

inline void write_json_report_at_exit() {
  std::string error;
  if (!obs::write_json_report(json_report_path(),
                              {{"tool", "bench"},
                               {"title", json_report_title()}},
                              &error)) {
    std::fprintf(stderr, "warning: SBG_JSON_OUT report failed: %s\n",
                 error.c_str());
  } else {
    std::fprintf(stderr, "wrote %s\n", json_report_path().c_str());
  }
}

/// When SBG_JSON_OUT names a directory, arrange for a BENCH_<slug>.json run
/// report to be written there when the harness exits.
inline void register_json_report(const char* title) {
  const char* dir = std::getenv("SBG_JSON_OUT");
  if (!dir || !*dir) return;
  json_report_path() =
      std::string(dir) + "/BENCH_" + slugify(title) + ".json";
  json_report_title() = title;
  std::atexit(&write_json_report_at_exit);
}

}  // namespace detail

/// Standard harness prologue: apply thread env, print the run config, and
/// hook up the SBG_JSON_OUT run report.
inline double announce(const char* title) {
  const int threads = apply_thread_env();
  const double scale = bench_scale();
  detail::register_json_report(title);
  // SBG_OBS_EXPORT live sampler; the static's destructor at process exit
  // flushes the final sample (the registry outlives it by design).
  static const std::unique_ptr<obs::Sampler> sampler =
      obs::start_sampler_from_env();
  (void)sampler;
  std::printf("== %s ==\n", title);
  std::printf("scale=%.5f of paper |V| (SBG_SCALE), threads=%d (SBG_THREADS)\n\n",
              scale, threads);
  return scale;
}

/// Geometric mean of speedups, excluding the names the paper excludes.
class SpeedupAverager {
 public:
  void add(const std::string& graph, double speedup, bool excluded = false) {
    if (excluded || speedup <= 0) return;
    log_sum_ += std::log(speedup);
    ++count_;
  }

  double geomean() const {
    return count_ == 0 ? 0.0 : std::exp(log_sum_ / static_cast<double>(count_));
  }

  int count() const { return count_; }

 private:
  double log_sum_ = 0.0;
  int count_ = 0;
};

inline void print_rule(int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace sbg::bench
