// Shared scaffolding for the per-table / per-figure reproduction harnesses.
//
// Every harness prints the paper's row layout (one row per Table II graph)
// with our measured values, so EXPERIMENTS.md can record paper-vs-measured
// directly from bench output. Environment knobs:
//   SBG_SCALE   — dataset scale factor (default 1/32 of paper sizes)
//   SBG_THREADS — OpenMP thread count
//   SBG_GRAPHS  — comma-separated subset of Table II names to run
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/dataset.hpp"
#include "parallel/thread_env.hpp"

namespace sbg::bench {

/// Graphs selected for this run (SBG_GRAPHS filter applied).
inline std::vector<std::string> selected_graphs() {
  const auto all = dataset_names();
  const char* env = std::getenv("SBG_GRAPHS");
  if (!env || !*env) return all;
  std::vector<std::string> picked;
  std::string token;
  for (const char* p = env;; ++p) {
    if (*p == ',' || *p == '\0') {
      for (const auto& name : all) {
        if (name == token) picked.push_back(name);
      }
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return picked.empty() ? all : picked;
}

/// Standard harness prologue: apply thread env, print the run config.
inline double announce(const char* title) {
  const int threads = apply_thread_env();
  const double scale = bench_scale();
  std::printf("== %s ==\n", title);
  std::printf("scale=%.5f of paper |V| (SBG_SCALE), threads=%d (SBG_THREADS)\n\n",
              scale, threads);
  return scale;
}

/// Geometric mean of speedups, excluding the names the paper excludes.
class SpeedupAverager {
 public:
  void add(const std::string& graph, double speedup, bool excluded = false) {
    if (excluded || speedup <= 0) return;
    log_sum_ += std::log(speedup);
    ++count_;
  }

  double geomean() const {
    return count_ == 0 ? 0.0 : std::exp(log_sum_ / static_cast<double>(count_));
  }

  int count() const { return count_; }

 private:
  double log_sum_ = 0.0;
  int count_ = 0;
};

inline void print_rule(int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace sbg::bench
