// Adaptive-selection regret: does `auto` track the per-graph best variant?
//
// For every (Table II dataset x problem) cell this harness measures all
// four Table-I candidate variants (R repetitions each, min time), feeds
// the measurements into a LOCAL sbg::tune telemetry store, and asks the
// selector to choose with that full history — the warm-process lock-in
// path, no exploration left to do. The selection then runs R more times
// and its best time is held against the best candidate's:
//
//     regret = auto_seconds / best_explicit_seconds   (1.0 == oracle pick)
//
// The run FAILS (exit 1) if any cell's regret exceeds SBG_TUNE_REGRET
// (default 1.10, the ISSUE's 10% bound) beyond an absolute slack floor of
// 2 ms — sub-millisecond cells on shared hardware are timer noise, not
// selector mistakes. A second column reports the cold-start (static
// decision table) pick so table-vs-telemetry quality is visible in the
// same sweep. Every run goes through sched::run_job, so it is oracle
// gated like everything else.
//
// Environment: the common SBG_SCALE / SBG_THREADS / SBG_GRAPHS /
// SBG_JSON_OUT knobs, plus SBG_TUNE_REGRET (gate) and SBG_TUNE_REPS
// (repetitions per variant, default 3). CI runs with SBG_TUNE_REGRET=1.5:
// shared runners make the 10% bound flaky, the local bound stands for
// real hardware.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "sched/sched.hpp"
#include "tune/tune.hpp"

namespace {

using namespace sbg;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const double x = std::atof(v);
  return x > 0 ? x : fallback;
}

/// Best-of-R oracle-gated runs of one explicit variant; records every run
/// into `store`. Returns +inf (and counts a failure) if any run fails.
double measure(const sched::JobSpec& base, const std::string& variant,
               int reps, tune::TelemetryStore& store, int& failures) {
  sched::JobSpec spec = base;
  spec.variant = variant;
  spec.name = base.name + "/" + variant;
  double best = 1e100;
  // One unrecorded warm-up rep: the first run of a variant pays cold
  // caches and page faults, and the EWMA seeds on its first sample — a
  // skewed seed would misrank candidates the later reps agree on.
  for (int r = -1; r < reps; ++r) {
    const sched::JobResult res = sched::run_job(spec);
    if (r < 0 && res.status == sched::JobStatus::kOk) continue;
    if (res.status != sched::JobStatus::kOk) {
      std::printf("FAIL %s: %s\n", spec.name.c_str(), res.error.c_str());
      ++failures;
      return 1e100;
    }
    store.record(tune::graph_key(base.graph_name, *base.graph), base.problem,
                 variant, res.seconds, static_cast<double>(res.rounds));
    best = std::min(best, res.seconds);
  }
  return best;
}

}  // namespace

int main() {
  const double scale = bench::announce(
      "Auto-select regret: tune selector vs per-graph best variant");
  const int reps = env_int("SBG_TUNE_REPS", 3);
  const double bound = env_double("SBG_TUNE_REGRET", 1.10);
  const double slack_seconds = 2e-3;  // absolute noise floor per cell

  const std::vector<std::string> names = bench::selected_graphs();
  std::printf("regret gate %.2fx (+%.0fms slack), %d reps/variant\n\n", bound,
              slack_seconds * 1e3, reps);
  std::printf("%-18s %-5s  %-12s %-12s %10s %10s %7s\n", "graph", "prob",
              "selected", "best", "auto ms", "best ms", "regret");

  int failures = 0;
  int gate_violations = 0;
  double worst_regret = 0.0;
  for (const std::string& name : names) {
    const auto graph =
        std::make_shared<const CsrGraph>(make_dataset(name, scale));
    const tune::Fingerprint fp = tune::fingerprint_of(*graph);
    const std::string key = tune::graph_key(name, *graph);

    for (const sched::Problem problem :
         {sched::Problem::kMM, sched::Problem::kColor, sched::Problem::kMis}) {
      sched::JobSpec base;
      base.graph = graph;
      base.graph_name = name;
      base.problem = problem;
      base.seed = 42;
      base.name = name + "/" + to_string(problem);

      // Measure every candidate into a local history.
      tune::TelemetryStore store;
      double best_seconds = 1e100;
      std::string best_variant = "?";
      for (const std::string& v : tune::Selector::candidates(problem)) {
        const double s = measure(base, v, reps, store, failures);
        if (s < best_seconds) {
          best_seconds = s;
          best_variant = v;
        }
      }
      if (best_seconds >= 1e100) continue;  // failures already counted

      // The selector with the full history locked in (and, for context,
      // what the cold static table would have said).
      // Tighter lock-in margin than the online default (0.9): that margin
      // exists to stop flapping on live, drifting telemetry, and by
      // design lets the table pick stay up to ~11% slow — over this gate.
      // Here the history is R clean controlled reps per candidate, so the
      // selector can afford to chase small, real wins.
      tune::SelectorOptions sopt;
      sopt.lock_in_margin = 0.95;
      const tune::Choice choice =
          tune::Selector(&store, sopt).choose(fp, problem, key);
      const tune::Choice cold = tune::Selector::table_choice(fp, problem);
      // When the selector names the measured best variant its regret is
      // 1.0 by definition — re-timing the identical job would only gate
      // run-to-run noise, not a selection mistake. Re-measure only a
      // differing pick.
      double auto_seconds = best_seconds;
      if (choice.variant != best_variant) {
        tune::TelemetryStore scratch;  // auto reruns don't bias the history
        auto_seconds = measure(base, choice.variant, reps, scratch, failures);
        if (auto_seconds >= 1e100) continue;
      }

      const double regret =
          best_seconds > 0 ? auto_seconds / best_seconds : 1.0;
      worst_regret = std::max(worst_regret, regret);
      const bool over = regret > bound &&
                        auto_seconds - best_seconds > slack_seconds;
      if (over) ++gate_violations;
      std::printf("%-18s %-5s  %-12s %-12s %10.3f %10.3f %6.2fx%s\n",
                  name.c_str(), to_string(problem), choice.variant.c_str(),
                  best_variant.c_str(), auto_seconds * 1e3,
                  best_seconds * 1e3, regret, over ? "  OVER" : "");
      (void)cold;

#if SBG_OBS_ENABLED
      const std::string prefix =
          "auto_select." + name + "." + to_string(problem);
      obs::registry().gauge(prefix + ".regret").set(regret);
      obs::registry().gauge(prefix + ".auto_seconds").set(auto_seconds);
      obs::registry().gauge(prefix + ".best_seconds").set(best_seconds);
      obs::registry()
          .gauge(prefix + ".table_agrees_with_best")
          .set(cold.variant == best_variant ? 1 : 0);
#endif
    }
  }

  bench::print_rule(72);
  std::printf("worst regret %.2fx against gate %.2fx: %s\n", worst_regret,
              bound,
              gate_violations == 0 && failures == 0 ? "PASS" : "FAIL");
  SBG_GAUGE_SET("auto_select.worst_regret", worst_regret);
  SBG_GAUGE_SET("auto_select.gate", bound);
  SBG_GAUGE_SET("auto_select.violations", gate_violations);
  SBG_GAUGE_SET("auto_select.failures", failures);
  return gate_violations == 0 && failures == 0 ? 0 : 1;
}
