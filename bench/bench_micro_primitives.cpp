// google-benchmark microbenchmarks for the parallel and graph substrates:
// the building blocks every decomposition and solver leans on.
#include <benchmark/benchmark.h>

#include "bfs/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "parallel/bitset.hpp"
#include "parallel/compact.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace sbg;

void BM_PrefixSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> data(n, 3);
  for (auto _ : state) {
    std::vector<std::uint64_t> copy = data;
    benchmark::DoNotOptimize(exclusive_prefix_sum(std::span(copy)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_PrefixSum)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BitsetSet(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ConcurrentBitset bs(n);
    parallel_for(n, [&](std::size_t i) { bs.set(i); });
    benchmark::DoNotOptimize(bs.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_BitsetSet)->Arg(1 << 16)->Arg(1 << 20);

void BM_BuildCsr(benchmark::State& state) {
  EdgeList el = gen_erdos_renyi(1 << 14, 1 << 17, 5);
  normalize_edge_list(el);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_csr(el));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(el.size()) *
                          state.iterations());
}
BENCHMARK(BM_BuildCsr);

void BM_Bfs(benchmark::State& state) {
  const CsrGraph g = build_graph(gen_rgg(1 << 15, 12.0, 7), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs(g, 0).reached);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_arcs()) *
                          state.iterations());
}
BENCHMARK(BM_Bfs);

void BM_ConnectedComponents(benchmark::State& state) {
  const CsrGraph g =
      build_graph(gen_erdos_renyi(1 << 15, 1 << 16, 9), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(connected_components(g).count);
  }
}
BENCHMARK(BM_ConnectedComponents);

void BM_FilterEdges(benchmark::State& state) {
  const CsrGraph g = build_graph(gen_erdos_renyi(1 << 14, 1 << 17, 11), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter_edges(
        g, [](vid_t u, vid_t v) { return ((u ^ v) & 1u) == 0; }));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_arcs()) *
                          state.iterations());
}
BENCHMARK(BM_FilterEdges);

void BM_SplitEdges(benchmark::State& state) {
  // The fused k-way kernel vs k filter_edges sweeps (BM_FilterEdges above
  // gives the per-sweep baseline): cost should stay ~flat in k.
  const auto k = static_cast<unsigned>(state.range(0));
  const CsrGraph g = build_graph(gen_erdos_renyi(1 << 14, 1 << 17, 11), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(split_edges(
        g, [&](vid_t u, vid_t v) { return (u ^ v) % k; }, k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_arcs()) *
                          state.iterations());
}
BENCHMARK(BM_SplitEdges)->Arg(2)->Arg(4)->Arg(8);

void BM_SplitVsRepeatedFilter(benchmark::State& state) {
  // The code path split_edges replaced: one full filter sweep per class.
  const auto k = static_cast<unsigned>(state.range(0));
  const CsrGraph g = build_graph(gen_erdos_renyi(1 << 14, 1 << 17, 11), false);
  for (auto _ : state) {
    std::vector<CsrGraph> parts;
    for (unsigned c = 0; c < k; ++c) {
      parts.push_back(filter_edges(
          g, [&](vid_t u, vid_t v) { return (u ^ v) % k == c; }));
    }
    benchmark::DoNotOptimize(parts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(g.num_arcs()) *
                          state.iterations());
}
BENCHMARK(BM_SplitVsRepeatedFilter)->Arg(2)->Arg(4)->Arg(8);

void BM_PackIndex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> keep(n);
  for (std::size_t i = 0; i < n; ++i) keep[i] = (mix64(i) & 3) != 0;
  std::vector<vid_t> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack_index(
        n, [&](std::size_t i) { return keep[i] != 0; }, std::span(out)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_PackIndex)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_RandomStream(benchmark::State& state) {
  const RandomStream rs(42, 1);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 1024; ++i) acc ^= rs.bits(i);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(1024 * state.iterations());
}
BENCHMARK(BM_RandomStream);

}  // namespace

BENCHMARK_MAIN();
