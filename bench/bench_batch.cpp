// Batch throughput: the sched engine's concurrent Table-I matrix against a
// sequential sweep at MATCHED total thread count.
//
// Sequential sweep: one job at a time, each given all J*T OpenMP threads.
// Batch: J concurrent workers with T threads each (src/sched/). Same total
// thread budget, same jobs, same seeds — the comparison isolates what
// concurrency across jobs buys over parallelism inside one job. On the
// small Table-I graphs, per-job parallel efficiency is poor (rounds are
// short, barriers dominate), so running J jobs concurrently at T threads
// each is expected to beat one J*T-thread job at a time by well over the
// 1.5x acceptance bar — on multi-core hosts; a single-core host shows ~1x.
//
// Environment: SBG_JOBS (workers, default 4), SBG_THREADS_PER_JOB
// (default 1), plus the common SBG_SCALE / SBG_GRAPHS / SBG_JSON_OUT knobs.
// Default graph set is the two smallest Table II graphs (c-73, lp1); pass
// SBG_GRAPHS to widen.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "parallel/timer.hpp"
#include "sched/sched.hpp"

namespace {

using namespace sbg;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

}  // namespace

int main() {
  const double scale =
      bench::announce("Batch throughput: concurrent jobs vs sequential sweep");

  const int jobs = env_int("SBG_JOBS", 4);
  const int per_job = env_int("SBG_THREADS_PER_JOB", 1);
  const int total_threads = jobs * per_job;

  std::vector<std::string> names;
  if (std::getenv("SBG_GRAPHS") != nullptr) {
    names = bench::selected_graphs();
  } else {
    names = {"c-73", "lp1"};
  }

  std::vector<std::pair<std::string, std::shared_ptr<const CsrGraph>>> graphs;
  for (const auto& name : names) {
    graphs.emplace_back(
        name, std::make_shared<const CsrGraph>(make_dataset(name, scale)));
  }
  const std::vector<sched::JobSpec> specs = sched::table1_matrix(graphs);
  std::printf("%zu jobs (%zu graphs x 12 Table-I cells), budget %d threads\n\n",
              specs.size(), graphs.size(), total_threads);

  // Sequential sweep: the whole budget on one job at a time.
  Timer seq_timer;
  std::vector<sched::JobResult> seq;
  {
    ScopedThreads scoped(total_threads);
    for (const sched::JobSpec& s : specs) seq.push_back(sched::run_job(s));
  }
  const double seq_seconds = seq_timer.seconds();

  // Batch: J workers x T threads from the shared queue.
  sched::BatchOptions opt;
  opt.jobs = jobs;
  opt.per_job_threads = per_job;
  const sched::BatchReport report = sched::run_batch(specs, opt);

  // Both runs must be oracle-clean everywhere; hashes must agree for the
  // schedule-deterministic jobs (the speculative colorers race by design).
  int bad = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const bool hash_must_match =
        sched::schedule_deterministic(specs[i].problem, specs[i].variant);
    if (seq[i].status != sched::JobStatus::kOk ||
        report.results[i].status != sched::JobStatus::kOk ||
        (hash_must_match &&
         seq[i].result_hash != report.results[i].result_hash)) {
      std::printf("MISMATCH %s: seq %s/%016llx vs batch %s/%016llx\n",
                  specs[i].name.c_str(), to_string(seq[i].status),
                  static_cast<unsigned long long>(seq[i].result_hash),
                  to_string(report.results[i].status),
                  static_cast<unsigned long long>(
                      report.results[i].result_hash));
      ++bad;
    }
  }

  const double n = static_cast<double>(specs.size());
  const double seq_tput = seq_seconds > 0 ? n / seq_seconds : 0;
  const double batch_tput =
      report.wall_seconds > 0 ? n / report.wall_seconds : 0;
  const double speedup =
      report.wall_seconds > 0 ? seq_seconds / report.wall_seconds : 0;

  bench::print_rule(72);
  std::printf("sequential sweep: %8.4fs  (%6.2f jobs/s at 1 x %d threads)\n",
              seq_seconds, seq_tput, total_threads);
  std::printf("batch:            %8.4fs  (%6.2f jobs/s at %d x %d threads)\n",
              report.wall_seconds, batch_tput, jobs, per_job);
  std::printf("batch throughput speedup: %.2fx  (hash agreement: %s)\n",
              speedup, bad == 0 ? "clean" : "FAILED");

  SBG_GAUGE_SET("batch.jobs", n);
  SBG_GAUGE_SET("batch.workers", jobs);
  SBG_GAUGE_SET("batch.per_job_threads", per_job);
  SBG_GAUGE_SET("batch.seq_seconds", seq_seconds);
  SBG_GAUGE_SET("batch.batch_seconds", report.wall_seconds);
  SBG_GAUGE_SET("batch.throughput_speedup", speedup);
  SBG_GAUGE_SET("batch.hash_mismatches", bad);

  return bad == 0 ? 0 : 1;
}
