// Figure 5(b) reproduction: MIS on the GPU execution model.
// Baseline LubyMIS vs. the composites. Paper: MIS-Deg2 averages 2.16x
// (computed excluding c-73 and lp1, whose speedups are outliers of
// 50-150x; footnote 2); BRIDGE is non-competitive because decomposition
// costs as much as the whole solve.
#include "bench_common.hpp"

#include "gpusim/gpu_algorithms.hpp"

int main() {
  using namespace sbg;
  const double scale = bench::announce("Figure 5(b): MIS, GPU model");

  std::printf("%-18s | %9s %10s %9s %9s | %8s\n", "graph", "Luby(s)",
              "Bridge(s)", "Rand(s)", "Deg2(s)", "Deg2Spd");
  bench::print_rule(80);

  bench::SpeedupAverager avg;
  for (const auto& name : bench::selected_graphs()) {
    const CsrGraph g = make_dataset(name, scale);
    const bool excluded = name == "c-73" || name == "lp1";  // footnote 2

    const MisResult luby = gpu::mis_luby_gpu(g);
    const MisResult bridge = gpu::mis_bridge_gpu(g);
    const MisResult rand = gpu::mis_rand_gpu(g);
    const MisResult deg2 = gpu::mis_degk_gpu(g, 2);

    const double speedup = luby.total_seconds / deg2.total_seconds;
    avg.add(name, speedup, excluded);
    std::printf("%-18s | %9.4f %10.4f %9.4f %9.4f | %7.2fx%s\n", name.c_str(),
                luby.total_seconds, bridge.total_seconds, rand.total_seconds,
                deg2.total_seconds, speedup,
                excluded ? "  (excluded from avg)" : "");
  }
  std::printf("\nMIS-Deg2 average speedup over LubyMIS "
              "(c-73, lp1 excluded): %.2fx (paper: 2.16x)\n",
              avg.geomean());
  return 0;
}
