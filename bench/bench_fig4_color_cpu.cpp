// Figure 4(a) reproduction: coloring on the CPU path.
// Baseline VB (FORBIDDEN = average degree) vs. COLOR-Bridge / COLOR-Rand /
// COLOR-Degk; the paper's bar labels are COLOR-Degk's speedup over VB
// (average 1.27x). Also reports the Section IV-D color-count overheads.
#include "bench_common.hpp"

#include "coloring/coloring.hpp"

int main() {
  using namespace sbg;
  const double scale = bench::announce("Figure 4(a): coloring, CPU");

  std::printf("%-18s | %9s %10s %9s %9s | %8s | %6s %6s %6s %6s\n", "graph",
              "VB(s)", "Bridge(s)", "Rand(s)", "Degk(s)", "DegkSpd", "cVB",
              "cBrdg", "cRand", "cDegk");
  bench::print_rule(108);

  bench::SpeedupAverager avg;
  double over_rand = 0, over_degk = 0, over_bridge = 0;
  double base_colors = 0, extra_bridge = 0, extra_rand = 0, extra_degk = 0;
  int rows = 0;
  for (const auto& name : bench::selected_graphs()) {
    const CsrGraph g = make_dataset(name, scale);

    const ColorResult vb = color_vb(g);
    const ColorResult bridge = color_bridge(g, ColorEngine::kVB);
    const ColorResult rand = color_rand(g, 2, ColorEngine::kVB);
    const ColorResult degk = color_degk(g, 2, ColorEngine::kVB);

    const double speedup = vb.total_seconds / degk.total_seconds;
    avg.add(name, speedup);
    over_bridge += 100.0 * (static_cast<double>(bridge.num_colors) /
                                static_cast<double>(vb.num_colors) - 1.0);
    over_rand += 100.0 * (static_cast<double>(rand.num_colors) /
                              static_cast<double>(vb.num_colors) - 1.0);
    over_degk += 100.0 * (static_cast<double>(degk.num_colors) /
                              static_cast<double>(vb.num_colors) - 1.0);
    base_colors += vb.num_colors;
    extra_bridge += static_cast<double>(bridge.num_colors) - vb.num_colors;
    extra_rand += static_cast<double>(rand.num_colors) - vb.num_colors;
    extra_degk += static_cast<double>(degk.num_colors) - vb.num_colors;
    ++rows;
    std::printf("%-18s | %9.4f %10.4f %9.4f %9.4f | %7.2fx | %6u %6u %6u %6u\n",
                name.c_str(), vb.total_seconds, bridge.total_seconds,
                rand.total_seconds, degk.total_seconds, speedup,
                vb.num_colors, bridge.num_colors, rand.num_colors,
                degk.num_colors);
  }
  std::printf("\nCOLOR-Degk average speedup over VB: %.2fx (paper: 1.27x)\n",
              avg.geomean());
  std::printf("Extra colors vs VB, per-graph mean: Bridge %+.1f%%, "
              "Rand %+.1f%% (paper: +3.9%%), Degk %+.1f%% (paper: +3%%)\n",
              over_bridge / rows, over_rand / rows, over_degk / rows);
  std::printf("Extra colors vs VB, palette-weighted: Bridge %+.1f%%, "
              "Rand %+.1f%%, Degk %+.1f%% (small-chromatic road graphs "
              "dominate the unweighted mean)\n",
              100.0 * extra_bridge / base_colors,
              100.0 * extra_rand / base_colors,
              100.0 * extra_degk / base_colors);
  return 0;
}
