// Thread-scaling harness. The paper runs its CPU experiments at 80 threads
// on a 2x10-core machine; this sweeps the OpenMP thread count over the
// host's range for the three headline pairs (GM vs MM-Rand, VB vs
// COLOR-Degk, Luby vs MIS-Deg2) on one representative graph each, so the
// thread-sensitivity of the speedups is measurable on any host.
#include "bench_common.hpp"

#include "coloring/coloring.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"
#include "parallel/thread_env.hpp"

int main() {
  using namespace sbg;
  const double scale = bench::announce("Scaling: threads");

  const CsrGraph road = make_dataset("road-central", scale);
  const CsrGraph broom = make_dataset("lp1", scale);

  std::printf("%8s | %10s %10s %8s | %10s %10s %8s | %10s %10s %8s\n",
              "threads", "GM", "MM-Rand", "spd", "VB", "C-Degk", "spd",
              "Luby", "MIS-Deg2", "spd");
  bench::print_rule(104);

  for (int t = 1; t <= max_threads(); t *= 2) {
    ScopedThreads guard(t);
    const MatchResult gm = mm_gm(road);
    const MatchResult mr = mm_rand(road, 10);
    const ColorResult vb = color_vb(road);
    const ColorResult cd = color_degk(road, 2);
    const MisResult lu = mis_luby(broom);
    const MisResult md = mis_degk(broom, 2);
    std::printf("%8d | %10.4f %10.4f %7.2fx | %10.4f %10.4f %7.2fx | "
                "%10.4f %10.4f %7.2fx\n",
                t, gm.total_seconds, mr.total_seconds,
                gm.total_seconds / mr.total_seconds, vb.total_seconds,
                cd.total_seconds, vb.total_seconds / cd.total_seconds,
                lu.total_seconds, md.total_seconds,
                lu.total_seconds / md.total_seconds);
  }
  return 0;
}
