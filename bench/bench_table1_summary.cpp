// Table I reproduction: for each problem (MM, COLOR, MIS) and architecture
// (CPU, GPU model), the best decomposition strategy and its average speedup
// over the problem's baseline. Paper:
//     MM:    CPU RAND 3.5x,   GPU RAND 2.53x
//     COLOR: CPU DEGk 1.27x,  GPU RAND 1x
//     MIS:   CPU DEGk 3.39x,  GPU DEGk 2.16x
// Exclusions follow the paper's footnotes: rgg instances for MM averages;
// c-73 and lp1 for the MIS GPU average.
#include "bench_common.hpp"

#include <array>

#include "coloring/coloring.hpp"
#include "gpusim/gpu_algorithms.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"

namespace {

using sbg::bench::SpeedupAverager;

struct Cell {
  std::array<SpeedupAverager, 3> avg;  // BRIDGE, RAND, DEGk

  void report(const char* problem, const char* arch, double paper_speedup,
              const char* paper_best) {
    static constexpr std::array<const char*, 3> kNames{"BRIDGE", "RAND",
                                                       "DEGk"};
    int best = 0;
    for (int i = 1; i < 3; ++i) {
      if (avg[static_cast<std::size_t>(i)].geomean() >
          avg[static_cast<std::size_t>(best)].geomean()) {
        best = i;
      }
    }
    std::printf("%-6s | %-4s | %-7s %6.2fx | paper: %-7s %.2fx\n", problem,
                arch, kNames[static_cast<std::size_t>(best)],
                avg[static_cast<std::size_t>(best)].geomean(), paper_best,
                paper_speedup);
  }
};

}  // namespace

int main() {
  using namespace sbg;
  const double scale = bench::announce(
      "Table I: best decomposition + average speedup per problem/architecture");

  Cell mm_cpu, mm_gpu, color_cpu, color_gpu, mis_cpu, mis_gpu;

  for (const auto& name : bench::selected_graphs()) {
    const CsrGraph g = make_dataset(name, scale);
    const bool rgg = name.rfind("rgg", 0) == 0;
    const bool kron = name.rfind("kron", 0) == 0;
    const bool tiny_outlier = name == "c-73" || name == "lp1";
    std::printf("  ... %s (%u vertices, %llu edges)\n", name.c_str(),
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));
    std::fflush(stdout);

    // --- MM, CPU (baseline GM) and GPU model (baseline LMAX).
    {
      const double base = mm_gm(g).total_seconds;
      mm_cpu.avg[0].add(name, base / mm_bridge(g).total_seconds, rgg);
      mm_cpu.avg[1].add(
          name, base / mm_rand(g, kron ? 100 : 10).total_seconds, rgg);
      mm_cpu.avg[2].add(name, base / mm_degk(g, 2).total_seconds, rgg);

      const double gbase = gpu::mm_lmax_gpu(g).total_seconds;
      mm_gpu.avg[0].add(name, gbase / gpu::mm_bridge_gpu(g).total_seconds,
                        rgg);
      mm_gpu.avg[1].add(name, gbase / gpu::mm_rand_gpu(g, 4).total_seconds,
                        rgg);
      mm_gpu.avg[2].add(name, gbase / gpu::mm_degk_gpu(g, 2).total_seconds,
                        rgg);
    }
    // --- COLOR, CPU (baseline VB) and GPU model (baseline EB).
    {
      const double base = color_vb(g).total_seconds;
      color_cpu.avg[0].add(name, base / color_bridge(g).total_seconds);
      color_cpu.avg[1].add(name, base / color_rand(g, 2).total_seconds);
      color_cpu.avg[2].add(name, base / color_degk(g, 2).total_seconds);

      const double gbase = gpu::color_eb_gpu(g).total_seconds;
      color_gpu.avg[0].add(name, gbase / gpu::color_bridge_gpu(g).total_seconds);
      color_gpu.avg[1].add(name, gbase / gpu::color_rand_gpu(g, 2).total_seconds);
      color_gpu.avg[2].add(name, gbase / gpu::color_degk_gpu(g, 2).total_seconds);
    }
    // --- MIS, CPU and GPU model (baseline LubyMIS).
    {
      const double base = mis_luby(g).total_seconds;
      mis_cpu.avg[0].add(name, base / mis_bridge(g).total_seconds);
      mis_cpu.avg[1].add(name, base / mis_rand(g).total_seconds);
      mis_cpu.avg[2].add(name, base / mis_degk(g, 2).total_seconds);

      const double gbase = gpu::mis_luby_gpu(g).total_seconds;
      mis_gpu.avg[0].add(name, gbase / gpu::mis_bridge_gpu(g).total_seconds,
                         tiny_outlier);
      mis_gpu.avg[1].add(name, gbase / gpu::mis_rand_gpu(g).total_seconds,
                         tiny_outlier);
      mis_gpu.avg[2].add(name, gbase / gpu::mis_degk_gpu(g, 2).total_seconds,
                         tiny_outlier);
    }
  }

  std::printf("\n");
  bench::print_rule(60);
  mm_cpu.report("MM", "CPU", 3.5, "RAND");
  mm_gpu.report("MM", "GPU", 2.53, "RAND");
  color_cpu.report("COLOR", "CPU", 1.27, "DEGk");
  color_gpu.report("COLOR", "GPU", 1.0, "RAND");
  mis_cpu.report("MIS", "CPU", 3.39, "DEGk");
  mis_gpu.report("MIS", "GPU", 2.16, "DEGk");
  bench::print_rule(60);
  return 0;
}
