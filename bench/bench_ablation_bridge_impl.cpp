// Ablation: bridge-finding walk strategies. The paper implements
// Algorithm 1's LCA walk naively; our shortcut variant path-compresses
// over already-marked tree regions. Same bridges, very different work on
// graphs whose non-tree edges pile walks onto the same tree paths.
#include "bench_common.hpp"

#include "core/bridge.hpp"
#include "parallel/timer.hpp"

int main() {
  using namespace sbg;
  const double scale =
      bench::announce("Ablation: bridge walk, naive vs. shortcut");

  std::printf("%-18s | %10s %11s | %8s | %8s\n", "graph", "naive(s)",
              "shortcut(s)", "speedup", "bridges");
  bench::print_rule(70);

  for (const auto& name : bench::selected_graphs()) {
    const CsrGraph g = make_dataset(name, scale);
    Timer t1;
    const auto naive = find_bridges(g, BridgeAlgo::kNaiveWalk);
    const double naive_s = t1.seconds();
    Timer t2;
    const auto fast = find_bridges(g, BridgeAlgo::kShortcutWalk);
    const double fast_s = t2.seconds();
    if (naive.size() != fast.size()) {
      std::printf("MISMATCH on %s: %zu vs %zu bridges\n", name.c_str(),
                  naive.size(), fast.size());
      return 1;
    }
    std::printf("%-18s | %10.4f %11.4f | %7.2fx | %8zu\n", name.c_str(),
                naive_s, fast_s, naive_s / fast_s, naive.size());
  }
  return 0;
}
