// Ablation (Section III-C/III-D): MM-Rand vs. partition count.
// Expected shape: a sweet spot near the average degree; very large k makes
// the induced subgraphs too sparse (few intra matches, everything spills
// into the cross phase) and performance degrades. Dense kron-like graphs
// need k ~ 100 before the intra graphs get sparse enough to help.
#include "bench_common.hpp"

#include "core/rand.hpp"
#include "matching/matching.hpp"

int main() {
  using namespace sbg;
  const double scale =
      bench::announce("Ablation: MM-Rand partition-count sweep");

  const std::vector<vid_t> ks{2, 4, 10, 20, 50, 100, 200};
  for (const char* name : {"rgg-n-2-23-s0", "kron-g500-logn20",
                           "road-central"}) {
    const CsrGraph g = make_dataset(name, scale);
    const MatchResult base = mm_gm(g);
    std::printf("%s (GM baseline: %.4fs, %u iterations)\n", name,
                base.total_seconds, base.rounds);
    std::printf("  %6s | %10s | %8s | %8s | %s\n", "k", "total(s)", "speedup",
                "rounds", "intra-match share");
    for (const vid_t k : ks) {
      const MatchResult r = mm_rand(g, k);
      // How much of the matching the intra phase found: re-run phase 1
      // alone to measure its contribution.
      std::vector<vid_t> mate(g.num_vertices(), kNoVertex);
      const RandDecomposition d = decompose_rand(g, k);
      gm_extend(d.g_intra, mate);
      const double share =
          static_cast<double>(matching_cardinality(mate)) /
          static_cast<double>(r.cardinality);
      std::printf("  %6u | %10.4f | %7.2fx | %8u | %.0f%%\n", k,
                  r.total_seconds, base.total_seconds / r.total_seconds,
                  r.rounds, 100.0 * share);
    }
    std::printf("\n");
  }
  return 0;
}
