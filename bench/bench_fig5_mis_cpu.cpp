// Figure 5(a) reproduction: MIS on the CPU path.
// Baseline LubyMIS vs. MIS-Bridge / MIS-Rand / MIS-Deg2; the paper's bar
// labels are MIS-Deg2's speedup over LubyMIS (average 3.3x; lp1 peaks at
// ~10.5x; rgg loses; MIS-Bridge is slowest nearly everywhere).
#include "bench_common.hpp"

#include "mis/mis.hpp"

int main() {
  using namespace sbg;
  const double scale = bench::announce("Figure 5(a): MIS, CPU");

  std::printf("%-18s | %9s %10s %9s %9s | %8s\n", "graph", "Luby(s)",
              "Bridge(s)", "Rand(s)", "Deg2(s)", "Deg2Spd");
  bench::print_rule(80);

  bench::SpeedupAverager avg;
  int bridge_slowest = 0, rows = 0;
  for (const auto& name : bench::selected_graphs()) {
    const CsrGraph g = make_dataset(name, scale);

    const MisResult luby = mis_luby(g);
    const MisResult bridge = mis_bridge(g);
    const MisResult rand = mis_rand(g);
    const MisResult deg2 = mis_degk(g, 2);

    const double speedup = luby.total_seconds / deg2.total_seconds;
    avg.add(name, speedup);
    bridge_slowest +=
        bridge.total_seconds >= rand.total_seconds &&
        bridge.total_seconds >= deg2.total_seconds;
    ++rows;
    std::printf("%-18s | %9.4f %10.4f %9.4f %9.4f | %7.2fx\n", name.c_str(),
                luby.total_seconds, bridge.total_seconds, rand.total_seconds,
                deg2.total_seconds, speedup);
  }
  std::printf("\nMIS-Deg2 average speedup over LubyMIS: %.2fx (paper: 3.3x)\n",
              avg.geomean());
  std::printf("MIS-Bridge slowest composite on %d/%d graphs "
              "(paper: slowest in almost all cases).\n",
              bridge_slowest, rows);
  return 0;
}
