// Figure 4(b) reproduction: coloring on the GPU execution model.
// Baseline EB vs. the decomposition composites. The paper finds NO
// noticeable decomposition speedup on the GPU (Table I: RAND, 1x) — on
// c-73 and lp1 the EB baseline even finishes before the decomposition
// alone does. The harness reports that decomposition-vs-baseline race.
#include "bench_common.hpp"

#include "coloring/coloring.hpp"
#include "core/rand.hpp"
#include "gpusim/gpu_algorithms.hpp"

int main() {
  using namespace sbg;
  const double scale = bench::announce("Figure 4(b): coloring, GPU model");

  std::printf("%-18s | %9s %10s %9s %9s | %8s | %s\n", "graph", "EB(s)",
              "Bridge(s)", "Rand(s)", "Degk(s)", "RandSpd",
              "EB beats decomposition alone?");
  bench::print_rule(110);

  bench::SpeedupAverager avg;
  for (const auto& name : bench::selected_graphs()) {
    const CsrGraph g = make_dataset(name, scale);

    const ColorResult eb = gpu::color_eb_gpu(g);
    const ColorResult bridge = gpu::color_bridge_gpu(g);
    const ColorResult rand = gpu::color_rand_gpu(g, 2);
    const ColorResult degk = gpu::color_degk_gpu(g, 2);

    const double speedup = eb.total_seconds / rand.total_seconds;
    avg.add(name, speedup);
    const bool eb_wins_race = eb.total_seconds < rand.decompose_seconds;
    std::printf("%-18s | %9.4f %10.4f %9.4f %9.4f | %7.2fx | %s\n",
                name.c_str(), eb.total_seconds, bridge.total_seconds,
                rand.total_seconds, degk.total_seconds, speedup,
                eb_wins_race ? "yes" : "no");
  }
  std::printf("\nCOLOR-Rand average speedup over EB: %.2fx "
              "(paper: ~1x — no noticeable gain on the GPU)\n",
              avg.geomean());
  return 0;
}
