// Scaling study: GM's vain tendency vs. graph size. The paper observes
// ~14,000 GM iterations on the full-size rgg-n-2-24-s0 (16.8M vertices);
// this harness sweeps the rgg scale and shows the iteration count growing
// with size — extrapolating the miniature benches to the paper's numbers —
// while MM-Rand's round count stays nearly flat.
#include "bench_common.hpp"

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/matching.hpp"

int main() {
  using namespace sbg;
  bench::announce("Scaling: GM iterations vs. rgg size");

  std::printf("%10s | %10s | %10s %10s | %10s %10s\n", "vertices", "edges",
              "GM iters", "GM (s)", "Rand iters", "Rand (s)");
  bench::print_rule(72);

  for (vid_t n = 1 << 14; n <= (1 << 19); n <<= 1) {
    const CsrGraph g = build_graph(gen_rgg(n, 15.5, /*seed=*/9), true);
    const MatchResult gm = mm_gm(g);
    const MatchResult rnd = mm_rand(g, 10);
    std::printf("%10u | %10llu | %10u %10.4f | %10u %10.4f\n",
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()), gm.rounds,
                gm.total_seconds, rnd.rounds, rnd.total_seconds);
  }
  std::printf("\nPaper reference: 14,000 GM iterations at 16.8M vertices; "
              "~417 for MM-Rand.\n");
  return 0;
}
