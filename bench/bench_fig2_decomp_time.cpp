// Figure 2 reproduction: wall time of each decomposition technique per
// graph (paper: E5-2650, 80 threads; RAND decomposing into 10 subgraphs).
// Expected shape: DEG2 fastest, RAND second, BRIDGE slowest — worst on
// large-diameter road-class graphs where the BFS dominates.
#include "bench_common.hpp"

#include "core/bridge.hpp"
#include "core/degk.hpp"
#include "core/rand.hpp"

int main() {
  using namespace sbg;
  const double scale =
      bench::announce("Figure 2: decomposition times (CPU path)");

  std::printf("%-18s | %12s %12s %12s | %s\n", "graph", "BRIDGE(s)",
              "RAND10(s)", "DEG2(s)", "fastest");
  bench::print_rule(80);

  int deg2_fastest = 0, total = 0;
  for (const auto& name : bench::selected_graphs()) {
    const CsrGraph g = make_dataset(name, scale);
    const auto bridge = decompose_bridge(g, BridgeAlgo::kNaiveWalk);
    const auto rand10 = decompose_rand(g, 10);
    const auto deg2 = decompose_degk(g, 2);

    const double tb = bridge.decompose_seconds;
    const double tr = rand10.decompose_seconds;
    const double td = deg2.decompose_seconds;
    const char* fastest = td <= tr && td <= tb ? "DEG2"
                          : tr <= tb           ? "RAND"
                                               : "BRIDGE";
    deg2_fastest += (td <= tr && td <= tb);
    ++total;
    std::printf("%-18s | %12.4f %12.4f %12.4f | %s\n", name.c_str(), tb, tr,
                td, fastest);
  }
  std::printf("\nDEG2 fastest on %d/%d graphs "
              "(paper: DEG2 takes the least time on all graphs).\n",
              deg2_fastest, total);
  return 0;
}
