// Ablation: LMAX weight fabrication. The practical GPU matching codes
// derive edge weights from indices; on id-sorted graphs those weights form
// monotone chains where only the head is a local maximum — the GPU-side
// vain tendency that makes MM-Rand pay off in Figure 3(b). Fresh random
// weights remove the chains (O(log n) rounds) and with them most of the
// decomposition headroom. This ablation quantifies that modeling choice.
#include "bench_common.hpp"

#include "matching/matching.hpp"

int main() {
  using namespace sbg;
  const double scale = bench::announce("Ablation: LMAX weight policy");

  std::printf("%-18s | %10s %10s | %10s %10s | %s\n", "graph", "idx(s)",
              "idx iters", "rnd(s)", "rnd iters", "chain effect");
  bench::print_rule(90);

  for (const char* name : {"rgg-n-2-23-s0", "germany-osm", "road-central",
                           "kron-g500-logn20", "lp1", "webbase-1M"}) {
    const CsrGraph g = make_dataset(name, scale);
    const MatchResult idx = mm_lmax(g, 42, LmaxWeights::kIndex);
    const MatchResult rnd = mm_lmax(g, 42, LmaxWeights::kRandom);
    std::printf("%-18s | %10.4f %10u | %10.4f %10u | %.1fx more rounds with "
                "index weights\n",
                name, idx.total_seconds, idx.rounds, rnd.total_seconds,
                rnd.rounds,
                static_cast<double>(idx.rounds) /
                    static_cast<double>(std::max<vid_t>(1, rnd.rounds)));
  }
  return 0;
}
