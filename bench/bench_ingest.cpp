// Ingestion harness: parallel mmap parse vs the sequential istream readers,
// and warm .sbgc cache loads vs the best text parse.
//
// Targets (see DESIGN.md "On-disk formats" and README.md "Loading graphs"):
//   - chunk-parallel parse at 8 threads >= 4x the sequential istream path
//   - warm .sbgc cache load >= 10x faster than any text parse
//
// Both ratios land in the SBG_JSON_OUT run report as gauges
// (ingest.bench.speedup_parallel_8t / ingest.bench.speedup_cache) alongside
// the raw per-configuration timings. Knobs: SBG_INGEST_EDGES (default 1M),
// SBG_INGEST_REPS (default 3, best-of).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "ingest/ingest.hpp"
#include "ingest/mmap_file.hpp"
#include "ingest/text_parse.hpp"
#include "obs/obs.hpp"
#include "parallel/timer.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sbg;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end && *end == '\0' && parsed > 0) ? parsed : fallback;
}

/// Best-of-`reps` wall time of `fn`.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    const double s = t.seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  bench::announce("Ingestion: parallel parse + binary CSR cache");

  const eid_t edges = env_u64("SBG_INGEST_EDGES", 1'000'000);
  const int reps = static_cast<int>(env_u64("SBG_INGEST_REPS", 3));
  const vid_t n = static_cast<vid_t>(std::max<eid_t>(edges / 8, 16));

  const fs::path dir =
      fs::temp_directory_path() /
      ("sbg_bench_ingest." + std::to_string(static_cast<unsigned long long>(
                                 env_u64("SBG_INGEST_EDGES", 1'000'000))));
  fs::create_directories(dir);
  const std::string el_path = (dir / "rmat.el").string();

  // One fixed RMAT instance, written as a plain `u v` edge list.
  {
    EdgeList el = gen_rmat(n, edges, /*seed=*/42);
    std::ofstream out(el_path);
    write_edge_list(out, el);
  }
  std::error_code ec;
  const std::uint64_t bytes = fs::file_size(el_path, ec);
  std::printf("input: %s (%" PRIu64 " requested edges, %" PRIu64
              " bytes), best of %d reps\n\n",
              el_path.c_str(), static_cast<std::uint64_t>(edges), bytes, reps);

  // Sequential reference: the line-at-a-time istream reader.
  EdgeList seq_el;
  const double seq_s = best_of(reps, [&] {
    std::ifstream in(el_path);
    seq_el = read_edge_list(in);
  });
  SBG_GAUGE_SET("ingest.bench.seq_parse_seconds", seq_s);
  std::printf("%-28s %8.3fs  %7.1f MB/s\n", "sequential istream parse", seq_s,
              static_cast<double>(bytes) / 1e6 / seq_s);

  // Chunk-parallel mmap parse at increasing thread counts. On a single-core
  // host the t>1 rows measure chunking overhead, not speedup; the t=1 row
  // already isolates the mmap + from_chars win over the istream path.
  double par8_s = 0;
  double best_text_s = seq_s;
  for (int threads : {1, 2, 4, 8}) {
    EdgeList par_el;
    const double s = best_of(reps, [&] {
      ingest::MappedFile file(el_path);
      par_el = ingest::parse_edge_list(file.data(), file.size(), threads);
    });
    if (threads == 8) par8_s = s;
    best_text_s = std::min(best_text_s, s);
    // SBG_GAUGE_SET caches its handle per call site, so names must be
    // literals — one site per thread count.
    switch (threads) {
      case 1: SBG_GAUGE_SET("ingest.bench.par_parse_seconds.t1", s); break;
      case 2: SBG_GAUGE_SET("ingest.bench.par_parse_seconds.t2", s); break;
      case 4: SBG_GAUGE_SET("ingest.bench.par_parse_seconds.t4", s); break;
      case 8: SBG_GAUGE_SET("ingest.bench.par_parse_seconds.t8", s); break;
    }
    std::printf("parallel mmap parse, t=%-4d %8.3fs  %7.1f MB/s  (%.1fx seq)\n",
                threads, s, static_cast<double>(bytes) / 1e6 / s, seq_s / s);
    if (par_el.edges.size() != seq_el.edges.size() ||
        par_el.num_vertices != seq_el.num_vertices) {
      std::fprintf(stderr,
                   "FAIL: parallel parse (t=%d) disagrees with sequential "
                   "reader\n", threads);
      return 1;
    }
  }

  // Cache write (cold) + warm loads. The bench input lives in a temp dir, so
  // the sibling-.sbgc default placement is fine here.
  ingest::Options opt;
  opt.use_cache = true;
  ingest::LoadReport warm_report;
  const std::string cache_path = ingest::warm_cache(el_path, opt, &warm_report);
  const double warm_s = best_of(reps, [&] {
    ingest::LoadReport rep;
    CsrGraph g = ingest::load(el_path, opt, &rep);
    if (!rep.cache_hit) {
      std::fprintf(stderr, "FAIL: expected a cache hit from %s\n",
                   cache_path.c_str());
      std::exit(1);
    }
  });
  SBG_GAUGE_SET("ingest.bench.cache_warm_seconds", warm_s);
  std::printf("%-28s %8.3fs  (entry: %s)\n", "warm .sbgc cache load", warm_s,
              cache_path.c_str());

  const double speedup_par = seq_s / par8_s;
  const double speedup_cache = best_text_s / warm_s;
  SBG_GAUGE_SET("ingest.bench.speedup_parallel_8t", speedup_par);
  SBG_GAUGE_SET("ingest.bench.speedup_cache", speedup_cache);

  std::printf("\nparallel t=8 vs istream : %6.1fx  (target >= 4x)  %s\n",
              speedup_par, speedup_par >= 4.0 ? "met" : "BELOW TARGET");
  std::printf("warm cache vs best text : %6.1fx  (target >= 10x) %s\n",
              speedup_cache, speedup_cache >= 10.0 ? "met" : "BELOW TARGET");

  fs::remove_all(dir, ec);
  return 0;
}
