// google-benchmark microbenchmarks for the symmetry-breaking solvers on a
// fixed mid-size graph: per-solver costs without decomposition effects.
#include <benchmark/benchmark.h>

#include "coloring/coloring.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"

namespace {

using namespace sbg;

const CsrGraph& fixture() {
  static const CsrGraph g = build_graph(gen_rmat(1 << 14, 1 << 17, 3), true);
  return g;
}

void BM_MatchGM(benchmark::State& state) {
  const CsrGraph& g = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(mm_gm(g).cardinality);
}
BENCHMARK(BM_MatchGM);

void BM_MatchLMAX(benchmark::State& state) {
  const CsrGraph& g = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(mm_lmax(g).cardinality);
}
BENCHMARK(BM_MatchLMAX);

void BM_ColorVB(benchmark::State& state) {
  const CsrGraph& g = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(color_vb(g).num_colors);
}
BENCHMARK(BM_ColorVB);

void BM_ColorEB(benchmark::State& state) {
  const CsrGraph& g = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(color_eb(g).num_colors);
}
BENCHMARK(BM_ColorEB);

void BM_MisLuby(benchmark::State& state) {
  const CsrGraph& g = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(mis_luby(g).size);
}
BENCHMARK(BM_MisLuby);

void BM_MisOrientedOnPath(benchmark::State& state) {
  const CsrGraph g = build_graph(gen_path(1 << 16), false);
  for (auto _ : state) {
    std::vector<MisState> s(g.num_vertices(), MisState::kUndecided);
    benchmark::DoNotOptimize(oriented_extend(g, s));
  }
}
BENCHMARK(BM_MisOrientedOnPath);

void BM_MisLubyOnPath(benchmark::State& state) {
  const CsrGraph g = build_graph(gen_path(1 << 16), false);
  for (auto _ : state) {
    std::vector<MisState> s(g.num_vertices(), MisState::kUndecided);
    benchmark::DoNotOptimize(luby_extend(g, s, 42));
  }
}
BENCHMARK(BM_MisLubyOnPath);

}  // namespace

BENCHMARK_MAIN();
