// Ablation (Section III-C): the vain tendency, measured in iterations.
// The paper's headline anecdote: on rgg-n-2-24-s0, GM needs ~14,000
// iterations while MM-Rand matches ~70% of the induced-subgraph vertices
// within 17 iterations and finishes in ~400 more. This harness reproduces
// the iteration-count contrast (scaled) and the early-match profile.
#include "bench_common.hpp"

#include "core/rand.hpp"
#include "matching/matching.hpp"

int main() {
  using namespace sbg;
  const double scale = bench::announce("Ablation: GM vain tendency");

  std::printf("%-18s | %10s %10s | %8s | %s\n", "graph", "GM iters",
              "Rand iters", "ratio", "matched share in first 17 intra iters");
  bench::print_rule(110);

  for (const char* name : {"rgg-n-2-23-s0", "rgg-n-2-24-s0", "germany-osm",
                           "road-central", "web-Google"}) {
    const CsrGraph g = make_dataset(name, scale);
    const MatchResult gm = mm_gm(g);
    const MatchResult rand = mm_rand(g, 10);

    // Early-match profile: how much of the intra-phase matching lands in
    // its first 17 rounds (the paper's "70% within 17 iterations").
    const RandDecomposition d = decompose_rand(g, 10);
    std::vector<vid_t> mate(g.num_vertices(), kNoVertex);
    gm_extend(d.g_intra, mate, nullptr, /*max_rounds=*/17);
    const eid_t early = matching_cardinality(mate);
    const vid_t tail_rounds = gm_extend(d.g_intra, mate);  // run to the end
    const eid_t intra_total = matching_cardinality(mate);
    std::printf("%-18s | %10u %10u | %7.1fx | %.0f%% of intra matches in 17 "
                "iters; intra phase = %.0f%% of |M| (%u iters)\n",
                name, gm.rounds, rand.rounds,
                static_cast<double>(gm.rounds) /
                    static_cast<double>(std::max<vid_t>(1, rand.rounds)),
                100.0 * static_cast<double>(early) /
                    static_cast<double>(std::max<eid_t>(1, intra_total)),
                100.0 * static_cast<double>(intra_total) /
                    static_cast<double>(std::max<eid_t>(1, rand.cardinality)),
                17 + tail_rounds);
  }
  std::printf("\nPaper reference (full-scale rgg-n-2-24-s0): GM ~14,000 "
              "iterations vs ~417 for MM-Rand.\n");
  return 0;
}
