// Table II reproduction: dataset fingerprints, paper vs. synthetic stand-in.
// Columns: |V|, |E| (directed arc count, as the paper reports), %DEG2,
// %BRIDGES (bridges as a fraction of undirected edges), average degree.
#include "bench_common.hpp"

#include "core/bridge.hpp"
#include "graph/stats.hpp"

int main() {
  using namespace sbg;
  const double scale = bench::announce("Table II: dataset fingerprints");

  std::printf("%-18s | %11s %12s %7s %9s %7s | %11s %12s %7s %9s %7s\n",
              "graph", "paper|V|", "paper|E|", "p%DEG2", "p%BRIDGE", "pAvgD",
              "ours|V|", "ours|E|", "%DEG2", "%BRIDGE", "AvgD");
  bench::print_rule(126);

  for (const auto& name : bench::selected_graphs()) {
    const DatasetPaperRow& row = dataset_row(name);
    const CsrGraph g = make_dataset(name, scale);
    const GraphStats s = graph_stats(g);
    const auto bridges = find_bridges(g, BridgeAlgo::kShortcutWalk);
    const double pct_bridges =
        g.num_edges() == 0
            ? 0.0
            : 100.0 * static_cast<double>(bridges.size()) /
                  static_cast<double>(g.num_edges());
    std::printf(
        "%-18s | %11llu %12llu %7.2f %9.2f %7.2f | %11u %12llu %7.2f %9.2f "
        "%7.2f\n",
        name.c_str(), static_cast<unsigned long long>(row.num_vertices),
        static_cast<unsigned long long>(row.num_arcs), row.pct_deg2,
        row.pct_bridges, row.avg_degree, s.num_vertices,
        static_cast<unsigned long long>(g.num_arcs()), s.pct_deg2,
        pct_bridges, s.avg_degree);
  }
  std::printf(
      "\nNote: 'ours' columns are the calibrated synthetic stand-ins at the "
      "selected scale;\nsee DESIGN.md section 2 for the substitution "
      "rationale.\n");
  return 0;
}
