#!/usr/bin/env python3
"""Perf-regression gate: diff fresh BENCH_*.json against bench/baselines/.

Compares every JSON artifact present in both directories, extracts the
timing metrics each schema carries, and fails (exit 1) when any metric
regressed by more than the threshold:

  google-benchmark JSON ("context" + "benchmarks"): real_time of every
      per-iteration benchmark entry (aggregates are skipped)
  obs run reports ("sbg_report_version"): every gauge whose name contains
      "seconds", plus every top-level span's accumulated seconds
  batch reports ("sbg_batch_version"): wall_seconds and per-job seconds

Metrics faster than --min-seconds in the baseline are reported but never
gated: micro-timings under a millisecond are noise on shared runners.
Candidate artifacts with no committed baseline (including the case where
the two directories share no files at all) are reported as notes and pass:
a brand-new bench cannot regress against nothing.

Usage:
  bench_compare.py --baseline bench/baselines --candidate bench-json \\
                   [--threshold 1.5] [--min-seconds 1e-3]
  bench_compare.py --self-test

The threshold defaults to $SBG_PERF_THRESHOLD, then 1.5. --self-test
verifies the gate logic itself: an identical run passes and an injected
2x slowdown fails, deterministically, with no benchmarks run.

Exit codes: 0 ok, 1 regression detected, 2 usage/data error.
"""

import argparse
import copy
import json
import os
import sys
import tempfile

DEFAULT_THRESHOLD = 1.5
DEFAULT_MIN_SECONDS = 1e-3

TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def extract_metrics(doc):
    """Return {metric_name: seconds} for any supported schema."""
    metrics = {}
    if isinstance(doc, dict) and "benchmarks" in doc:
        for b in doc.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue
            unit = TIME_UNIT_SECONDS.get(b.get("time_unit", "ns"), 1e-9)
            if "real_time" in b:
                metrics[b["name"]] = float(b["real_time"]) * unit
        return metrics
    if isinstance(doc, dict) and "sbg_batch_version" in doc:
        metrics["wall_seconds"] = float(doc.get("wall_seconds", 0.0))
        for job in doc.get("jobs", []):
            if job.get("status") == "ok":
                metrics["job:" + job["name"]] = float(job.get("seconds", 0.0))
        return metrics
    if isinstance(doc, dict) and "sbg_report_version" in doc:
        for name, value in doc.get("gauges", {}).items():
            if "seconds" in name and isinstance(value, (int, float)):
                metrics["gauge:" + name] = float(value)
        for span in doc.get("spans", []):
            metrics["span:" + span["name"]] = float(span.get("seconds", 0.0))
        return metrics
    return metrics


def load_metrics(path):
    try:
        with open(path) as f:
            return extract_metrics(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def compare_dirs(baseline_dir, candidate_dir, threshold, min_seconds,
                 out=sys.stdout):
    """Print the per-metric table; return the number of regressions."""
    base_files = {f for f in os.listdir(baseline_dir) if f.endswith(".json")}
    cand_files = {f for f in os.listdir(candidate_dir) if f.endswith(".json")}
    common = sorted(base_files & cand_files)
    if not common:
        # A bench with no committed baseline is not a regression — the
        # first run of a new harness has nothing to regress against. Report
        # what exists on each side and pass; the gate arms itself once a
        # baseline is committed for the artifact.
        for only in sorted(base_files):
            print(f"note: {only} only in baseline (not produced this run)",
                  file=out)
        for only in sorted(cand_files):
            print(f"note: {only} only in candidate (no baseline committed)",
                  file=out)
        print("no common *.json to compare — informational pass "
              "(commit baselines under bench/baselines/ to arm the gate)",
              file=out)
        return 0
    for only in sorted(base_files - cand_files):
        print(f"note: {only} only in baseline (not produced this run)",
              file=out)
    for only in sorted(cand_files - base_files):
        print(f"note: {only} only in candidate (no baseline committed)",
              file=out)

    regressions = 0
    compared = 0
    header = (f"{'file':32} {'metric':44} {'baseline':>12} {'candidate':>12} "
              f"{'ratio':>7}  verdict")
    print(header, file=out)
    print("-" * len(header), file=out)
    for fname in common:
        base = load_metrics(os.path.join(baseline_dir, fname))
        cand = load_metrics(os.path.join(candidate_dir, fname))
        for metric in sorted(base):
            if metric not in cand:
                print(f"{fname:32} {metric:44} {'-':>12} {'-':>12} "
                      f"{'-':>7}  missing-in-candidate", file=out)
                continue
            b, c = base[metric], cand[metric]
            if b <= 0:
                continue
            ratio = c / b
            compared += 1
            if b < min_seconds:
                verdict = "below-floor (informational)"
            elif ratio > threshold:
                verdict = "REGRESSION"
                regressions += 1
            elif ratio < 1.0 / threshold:
                verdict = "improved"
            else:
                verdict = "ok"
            print(f"{fname:32} {metric:44} {b:12.6f} {c:12.6f} "
                  f"{ratio:7.2f}  {verdict}", file=out)
    if compared == 0:
        print("error: common files held no comparable metrics",
              file=sys.stderr)
        sys.exit(2)
    print(f"\ncompared {compared} metric(s) at threshold {threshold:.2f}x, "
          f"floor {min_seconds:g}s: {regressions} regression(s)", file=out)
    return regressions


SELF_TEST_BASELINE = {
    "BENCH_micro.json": {
        "context": {"executable": "bench_micro_primitives"},
        "benchmarks": [
            {"name": "BM_SplitEdges/k:2", "run_type": "iteration",
             "real_time": 4.0e6, "time_unit": "ns"},
            {"name": "BM_PackIndex", "run_type": "iteration",
             "real_time": 2.5e6, "time_unit": "ns"},
            {"name": "BM_SplitEdges/k:2_mean", "run_type": "aggregate",
             "real_time": 4.0e6, "time_unit": "ns"},
        ],
    },
    "BENCH_batch.json": {
        "sbg_report_version": 1,
        "gauges": {"batch.batch_seconds": 0.8, "batch.seq_seconds": 4.6,
                   "batch.throughput_speedup": 5.75},
        "spans": [{"name": "sched.batch", "seconds": 0.8, "count": 1,
                   "children": []}],
    },
}


def self_test():
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "baseline")
        same_dir = os.path.join(tmp, "same")
        slow_dir = os.path.join(tmp, "slow")
        for d in (base_dir, same_dir, slow_dir):
            os.mkdir(d)

        slow = copy.deepcopy(SELF_TEST_BASELINE)
        # The injected regression: one baselined benchmark 2x slower, with
        # ordinary jitter everywhere else.
        slow["BENCH_micro.json"]["benchmarks"][0]["real_time"] *= 2.0
        slow["BENCH_micro.json"]["benchmarks"][1]["real_time"] *= 1.07
        slow["BENCH_batch.json"]["gauges"]["batch.batch_seconds"] *= 0.96

        for d, content in ((base_dir, SELF_TEST_BASELINE),
                           (same_dir, SELF_TEST_BASELINE), (slow_dir, slow)):
            for fname, doc in content.items():
                with open(os.path.join(d, fname), "w") as f:
                    json.dump(doc, f)

        clean = compare_dirs(base_dir, same_dir, DEFAULT_THRESHOLD,
                             DEFAULT_MIN_SECONDS)
        if clean != 0:
            print("self-test FAILED: identical runs reported a regression",
                  file=sys.stderr)
            return 1
        print()
        slow_regressions = compare_dirs(base_dir, slow_dir, DEFAULT_THRESHOLD,
                                        DEFAULT_MIN_SECONDS)
        if slow_regressions != 1:
            print(f"self-test FAILED: injected 2x slowdown produced "
                  f"{slow_regressions} regressions (expected 1)",
                  file=sys.stderr)
            return 1
        print("\nself-test OK: clean run passes, injected 2x slowdown fails")
        return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff bench JSON artifacts against committed baselines.")
    parser.add_argument("--baseline", help="directory of baseline *.json")
    parser.add_argument("--candidate", help="directory of fresh *.json")
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("SBG_PERF_THRESHOLD", DEFAULT_THRESHOLD)),
        help="fail when candidate/baseline exceeds this ratio "
             "(default $SBG_PERF_THRESHOLD or %(default)s)")
    parser.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
        help="baseline metrics below this are informational only "
             "(default %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches an injected 2x slowdown")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.candidate:
        parser.error("--baseline and --candidate are required "
                     "(or use --self-test)")
    if args.threshold <= 1.0:
        parser.error(f"--threshold must be > 1.0, got {args.threshold}")
    regressions = compare_dirs(args.baseline, args.candidate, args.threshold,
                               args.min_seconds)
    sys.exit(1 if regressions else 0)


if __name__ == "__main__":
    main()
