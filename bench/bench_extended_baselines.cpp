// Extended baselines: the wider algorithm families the paper's related-work
// sections cite, measured side by side on a suite subset. Three tables:
//   MM:    greedy-seq, GM, LMAX(index), LMAX(random), Israeli-Itai, MM-Rand
//   COLOR: greedy-seq order (JP-LDF), VB, EB, JP-random, speculative, Degk
//   MIS:   greedy-seq, LubyMIS, greedy (Blelloch), MIS-Deg2
#include "bench_common.hpp"

#include "coloring/coloring.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"

namespace {
const char* kGraphs[] = {"c-73", "coAuthorsCiteseer", "road-central",
                         "kron-g500-logn20", "web-Google"};
}

int main() {
  using namespace sbg;
  const double scale = bench::announce("Extended baseline comparison");

  std::printf("--- maximal matching (seconds / rounds) ---\n");
  std::printf("%-18s | %12s %12s %12s %12s %12s %12s\n", "graph", "seq",
              "GM", "LMAXidx", "LMAXrnd", "II", "MM-Rand");
  for (const char* name : kGraphs) {
    const CsrGraph g = make_dataset(name, scale);
    const auto seq = mm_greedy_seq(g);
    const auto gm = mm_gm(g);
    const auto lmi = mm_lmax(g, 42, LmaxWeights::kIndex);
    const auto lmr = mm_lmax(g, 42, LmaxWeights::kRandom);
    const auto ii = mm_ii(g);
    const auto rnd = mm_rand(g);
    std::printf("%-18s | %8.4f/%-3u %8.4f/%-3u %8.4f/%-3u %8.4f/%-3u "
                "%8.4f/%-3u %8.4f/%-3u\n",
                name, seq.total_seconds, seq.rounds, gm.total_seconds,
                gm.rounds, lmi.total_seconds, lmi.rounds, lmr.total_seconds,
                lmr.rounds, ii.total_seconds, ii.rounds, rnd.total_seconds,
                rnd.rounds);
  }

  std::printf("\n--- coloring (seconds / colors) ---\n");
  std::printf("%-18s | %12s %12s %12s %12s %12s %12s\n", "graph", "JP-LDF",
              "VB", "EB", "JP-rnd", "specul", "Degk");
  for (const char* name : kGraphs) {
    const CsrGraph g = make_dataset(name, scale);
    const auto ldf = color_jp(g, JpOrder::kLargestDegreeFirst);
    const auto vb = color_vb(g);
    const auto eb = color_eb(g);
    const auto jpr = color_jp(g, JpOrder::kRandom);
    const auto sp = color_speculative(g);
    const auto dk = color_degk(g, 2);
    std::printf("%-18s | %8.4f/%-3u %8.4f/%-3u %8.4f/%-3u %8.4f/%-3u "
                "%8.4f/%-3u %8.4f/%-3u\n",
                name, ldf.total_seconds, ldf.num_colors, vb.total_seconds,
                vb.num_colors, eb.total_seconds, eb.num_colors,
                jpr.total_seconds, jpr.num_colors, sp.total_seconds,
                sp.num_colors, dk.total_seconds, dk.num_colors);
  }

  std::printf("\n--- MIS (seconds / |I|) ---\n");
  std::printf("%-18s | %16s %16s %16s %16s\n", "graph", "seq", "LubyMIS",
              "greedy[6]", "MIS-Deg2");
  for (const char* name : kGraphs) {
    const CsrGraph g = make_dataset(name, scale);
    const auto seq = mis_greedy_seq(g);
    const auto lu = mis_luby(g);
    const auto gr = mis_greedy(g);
    const auto dk = mis_degk(g, 2);
    std::printf("%-18s | %8.4f/%-7zu %8.4f/%-7zu %8.4f/%-7zu %8.4f/%-7zu\n",
                name, seq.total_seconds, seq.size, lu.total_seconds, lu.size,
                gr.total_seconds, gr.size, dk.total_seconds, dk.size);
  }
  return 0;
}
