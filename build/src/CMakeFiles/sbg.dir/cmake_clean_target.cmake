file(REMOVE_RECURSE
  "libsbg.a"
)
