
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bfs/bfs.cpp" "src/CMakeFiles/sbg.dir/bfs/bfs.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/bfs/bfs.cpp.o.d"
  "/root/repo/src/coloring/composites.cpp" "src/CMakeFiles/sbg.dir/coloring/composites.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/coloring/composites.cpp.o.d"
  "/root/repo/src/coloring/eb.cpp" "src/CMakeFiles/sbg.dir/coloring/eb.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/coloring/eb.cpp.o.d"
  "/root/repo/src/coloring/jones_plassmann.cpp" "src/CMakeFiles/sbg.dir/coloring/jones_plassmann.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/coloring/jones_plassmann.cpp.o.d"
  "/root/repo/src/coloring/small_palette.cpp" "src/CMakeFiles/sbg.dir/coloring/small_palette.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/coloring/small_palette.cpp.o.d"
  "/root/repo/src/coloring/speculative.cpp" "src/CMakeFiles/sbg.dir/coloring/speculative.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/coloring/speculative.cpp.o.d"
  "/root/repo/src/coloring/vb.cpp" "src/CMakeFiles/sbg.dir/coloring/vb.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/coloring/vb.cpp.o.d"
  "/root/repo/src/core/bridge.cpp" "src/CMakeFiles/sbg.dir/core/bridge.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/core/bridge.cpp.o.d"
  "/root/repo/src/core/degk.cpp" "src/CMakeFiles/sbg.dir/core/degk.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/core/degk.cpp.o.d"
  "/root/repo/src/core/grow.cpp" "src/CMakeFiles/sbg.dir/core/grow.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/core/grow.cpp.o.d"
  "/root/repo/src/core/rand.cpp" "src/CMakeFiles/sbg.dir/core/rand.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/core/rand.cpp.o.d"
  "/root/repo/src/gpusim/gpu_composites.cpp" "src/CMakeFiles/sbg.dir/gpusim/gpu_composites.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/gpusim/gpu_composites.cpp.o.d"
  "/root/repo/src/gpusim/gpu_decompose.cpp" "src/CMakeFiles/sbg.dir/gpusim/gpu_decompose.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/gpusim/gpu_decompose.cpp.o.d"
  "/root/repo/src/gpusim/gpu_extenders.cpp" "src/CMakeFiles/sbg.dir/gpusim/gpu_extenders.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/gpusim/gpu_extenders.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/sbg.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/CMakeFiles/sbg.dir/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/sbg.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/dataset.cpp" "src/CMakeFiles/sbg.dir/graph/dataset.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/graph/dataset.cpp.o.d"
  "/root/repo/src/graph/gen_basic.cpp" "src/CMakeFiles/sbg.dir/graph/gen_basic.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/graph/gen_basic.cpp.o.d"
  "/root/repo/src/graph/gen_rgg.cpp" "src/CMakeFiles/sbg.dir/graph/gen_rgg.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/graph/gen_rgg.cpp.o.d"
  "/root/repo/src/graph/gen_rmat.cpp" "src/CMakeFiles/sbg.dir/graph/gen_rmat.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/graph/gen_rmat.cpp.o.d"
  "/root/repo/src/graph/gen_synth.cpp" "src/CMakeFiles/sbg.dir/graph/gen_synth.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/graph/gen_synth.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/sbg.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/CMakeFiles/sbg.dir/graph/stats.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/graph/stats.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/CMakeFiles/sbg.dir/graph/subgraph.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/graph/subgraph.cpp.o.d"
  "/root/repo/src/matching/composites.cpp" "src/CMakeFiles/sbg.dir/matching/composites.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/matching/composites.cpp.o.d"
  "/root/repo/src/matching/gm.cpp" "src/CMakeFiles/sbg.dir/matching/gm.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/matching/gm.cpp.o.d"
  "/root/repo/src/matching/greedy_seq.cpp" "src/CMakeFiles/sbg.dir/matching/greedy_seq.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/matching/greedy_seq.cpp.o.d"
  "/root/repo/src/matching/israeli_itai.cpp" "src/CMakeFiles/sbg.dir/matching/israeli_itai.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/matching/israeli_itai.cpp.o.d"
  "/root/repo/src/matching/lmax.cpp" "src/CMakeFiles/sbg.dir/matching/lmax.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/matching/lmax.cpp.o.d"
  "/root/repo/src/mis/color_reduction.cpp" "src/CMakeFiles/sbg.dir/mis/color_reduction.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/mis/color_reduction.cpp.o.d"
  "/root/repo/src/mis/composites.cpp" "src/CMakeFiles/sbg.dir/mis/composites.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/mis/composites.cpp.o.d"
  "/root/repo/src/mis/greedy.cpp" "src/CMakeFiles/sbg.dir/mis/greedy.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/mis/greedy.cpp.o.d"
  "/root/repo/src/mis/luby.cpp" "src/CMakeFiles/sbg.dir/mis/luby.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/mis/luby.cpp.o.d"
  "/root/repo/src/mis/oriented.cpp" "src/CMakeFiles/sbg.dir/mis/oriented.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/mis/oriented.cpp.o.d"
  "/root/repo/src/parallel/bitset.cpp" "src/CMakeFiles/sbg.dir/parallel/bitset.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/parallel/bitset.cpp.o.d"
  "/root/repo/src/parallel/thread_env.cpp" "src/CMakeFiles/sbg.dir/parallel/thread_env.cpp.o" "gcc" "src/CMakeFiles/sbg.dir/parallel/thread_env.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
