# Empty compiler generated dependencies file for sbg.
# This may be replaced when dependencies are built.
