
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/sbg_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bfs.cpp" "tests/CMakeFiles/sbg_tests.dir/test_bfs.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_bfs.cpp.o.d"
  "/root/repo/tests/test_bridge.cpp" "tests/CMakeFiles/sbg_tests.dir/test_bridge.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_bridge.cpp.o.d"
  "/root/repo/tests/test_coloring.cpp" "tests/CMakeFiles/sbg_tests.dir/test_coloring.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_coloring.cpp.o.d"
  "/root/repo/tests/test_connectivity.cpp" "tests/CMakeFiles/sbg_tests.dir/test_connectivity.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_connectivity.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/sbg_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_degk_decomp.cpp" "tests/CMakeFiles/sbg_tests.dir/test_degk_decomp.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_degk_decomp.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/sbg_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/sbg_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_gpusim.cpp" "tests/CMakeFiles/sbg_tests.dir/test_gpusim.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_gpusim.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/sbg_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_grow.cpp" "tests/CMakeFiles/sbg_tests.dir/test_grow.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_grow.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/sbg_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/sbg_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_matching.cpp" "tests/CMakeFiles/sbg_tests.dir/test_matching.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_matching.cpp.o.d"
  "/root/repo/tests/test_mis.cpp" "tests/CMakeFiles/sbg_tests.dir/test_mis.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_mis.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/sbg_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/sbg_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rand_decomp.cpp" "tests/CMakeFiles/sbg_tests.dir/test_rand_decomp.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_rand_decomp.cpp.o.d"
  "/root/repo/tests/test_sort.cpp" "tests/CMakeFiles/sbg_tests.dir/test_sort.cpp.o" "gcc" "tests/CMakeFiles/sbg_tests.dir/test_sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sbg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
