# Empty compiler generated dependencies file for sbg_tests.
# This may be replaced when dependencies are built.
