file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_vain.dir/bench_scaling_vain.cpp.o"
  "CMakeFiles/bench_scaling_vain.dir/bench_scaling_vain.cpp.o.d"
  "bench_scaling_vain"
  "bench_scaling_vain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_vain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
