# Empty compiler generated dependencies file for bench_scaling_vain.
# This may be replaced when dependencies are built.
