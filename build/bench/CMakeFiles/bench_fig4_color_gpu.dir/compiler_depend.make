# Empty compiler generated dependencies file for bench_fig4_color_gpu.
# This may be replaced when dependencies are built.
