file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_color_cpu.dir/bench_fig4_color_cpu.cpp.o"
  "CMakeFiles/bench_fig4_color_cpu.dir/bench_fig4_color_cpu.cpp.o.d"
  "bench_fig4_color_cpu"
  "bench_fig4_color_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_color_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
