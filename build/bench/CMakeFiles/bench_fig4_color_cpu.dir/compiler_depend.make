# Empty compiler generated dependencies file for bench_fig4_color_cpu.
# This may be replaced when dependencies are built.
