file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_color_conflicts.dir/bench_ablation_color_conflicts.cpp.o"
  "CMakeFiles/bench_ablation_color_conflicts.dir/bench_ablation_color_conflicts.cpp.o.d"
  "bench_ablation_color_conflicts"
  "bench_ablation_color_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_color_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
