# Empty compiler generated dependencies file for bench_ablation_color_conflicts.
# This may be replaced when dependencies are built.
