file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mm_cpu.dir/bench_fig3_mm_cpu.cpp.o"
  "CMakeFiles/bench_fig3_mm_cpu.dir/bench_fig3_mm_cpu.cpp.o.d"
  "bench_fig3_mm_cpu"
  "bench_fig3_mm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
