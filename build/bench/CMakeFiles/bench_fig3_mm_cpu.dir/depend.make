# Empty dependencies file for bench_fig3_mm_cpu.
# This may be replaced when dependencies are built.
