# Empty compiler generated dependencies file for bench_fig2_decomp_time.
# This may be replaced when dependencies are built.
