# Empty dependencies file for bench_fig5_mis_cpu.
# This may be replaced when dependencies are built.
