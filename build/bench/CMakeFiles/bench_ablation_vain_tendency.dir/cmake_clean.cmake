file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vain_tendency.dir/bench_ablation_vain_tendency.cpp.o"
  "CMakeFiles/bench_ablation_vain_tendency.dir/bench_ablation_vain_tendency.cpp.o.d"
  "bench_ablation_vain_tendency"
  "bench_ablation_vain_tendency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vain_tendency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
