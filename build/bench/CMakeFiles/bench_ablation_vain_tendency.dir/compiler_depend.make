# Empty compiler generated dependencies file for bench_ablation_vain_tendency.
# This may be replaced when dependencies are built.
