# Empty dependencies file for bench_ablation_bridge_impl.
# This may be replaced when dependencies are built.
