file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bridge_impl.dir/bench_ablation_bridge_impl.cpp.o"
  "CMakeFiles/bench_ablation_bridge_impl.dir/bench_ablation_bridge_impl.cpp.o.d"
  "bench_ablation_bridge_impl"
  "bench_ablation_bridge_impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bridge_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
