# Empty compiler generated dependencies file for bench_fig5_mis_gpu.
# This may be replaced when dependencies are built.
