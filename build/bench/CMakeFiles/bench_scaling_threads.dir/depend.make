# Empty dependencies file for bench_scaling_threads.
# This may be replaced when dependencies are built.
