file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_threads.dir/bench_scaling_threads.cpp.o"
  "CMakeFiles/bench_scaling_threads.dir/bench_scaling_threads.cpp.o.d"
  "bench_scaling_threads"
  "bench_scaling_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
