# Empty dependencies file for bench_ablation_rand_partitions.
# This may be replaced when dependencies are built.
