# Empty compiler generated dependencies file for bench_fig3_mm_gpu.
# This may be replaced when dependencies are built.
