file(REMOVE_RECURSE
  "CMakeFiles/spmv_matching.dir/spmv_matching.cpp.o"
  "CMakeFiles/spmv_matching.dir/spmv_matching.cpp.o.d"
  "spmv_matching"
  "spmv_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
