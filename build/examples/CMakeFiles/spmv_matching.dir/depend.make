# Empty dependencies file for spmv_matching.
# This may be replaced when dependencies are built.
