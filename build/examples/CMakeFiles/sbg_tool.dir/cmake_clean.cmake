file(REMOVE_RECURSE
  "CMakeFiles/sbg_tool.dir/sbg_tool.cpp.o"
  "CMakeFiles/sbg_tool.dir/sbg_tool.cpp.o.d"
  "sbg_tool"
  "sbg_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbg_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
