# Empty compiler generated dependencies file for sbg_tool.
# This may be replaced when dependencies are built.
