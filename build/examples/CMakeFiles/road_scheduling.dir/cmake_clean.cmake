file(REMOVE_RECURSE
  "CMakeFiles/road_scheduling.dir/road_scheduling.cpp.o"
  "CMakeFiles/road_scheduling.dir/road_scheduling.cpp.o.d"
  "road_scheduling"
  "road_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
