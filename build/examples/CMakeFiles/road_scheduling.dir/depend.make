# Empty dependencies file for road_scheduling.
# This may be replaced when dependencies are built.
