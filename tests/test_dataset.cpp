#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/dataset.hpp"
#include "graph/stats.hpp"

namespace sbg {
namespace {

TEST(Dataset, TableHasTwelveRowsInPaperOrder) {
  const auto& rows = dataset_table();
  ASSERT_EQ(rows.size(), 12u);
  EXPECT_EQ(rows.front().name, "c-73");
  EXPECT_EQ(rows.back().name, "webbase-1M");
  EXPECT_EQ(dataset_row("germany-osm").pct_deg2, 82.27);
  EXPECT_THROW(dataset_row("no-such-graph"), InputError);
}

TEST(Dataset, MakeIsDeterministic) {
  const CsrGraph a = make_dataset("c-73", 1.0 / 64, 42);
  const CsrGraph b = make_dataset("c-73", 1.0 / 64, 42);
  EXPECT_TRUE(std::equal(a.adjacency().begin(), a.adjacency().end(),
                         b.adjacency().begin(), b.adjacency().end()));
  const CsrGraph c = make_dataset("c-73", 1.0 / 64, 43);
  EXPECT_FALSE(a.num_edges() == c.num_edges() &&
               std::equal(a.adjacency().begin(), a.adjacency().end(),
                          c.adjacency().begin(), c.adjacency().end()));
}

/// Every synthetic stand-in must be connected (the paper's preprocessing),
/// scale to roughly the requested |V|, and land near the Table II
/// avg-degree / %DEG2 fingerprints it was calibrated against.
class DatasetFingerprint : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetFingerprint, MatchesPaperShape) {
  const std::string name = GetParam();
  const DatasetPaperRow& row = dataset_row(name);
  const double scale = 1.0 / 64;
  const CsrGraph g = make_dataset(name, scale, 42);
  g.validate();
  EXPECT_TRUE(is_connected(g)) << name;

  const double expect_n = static_cast<double>(row.num_vertices) * scale;
  EXPECT_GT(g.num_vertices(), 0.5 * expect_n) << name;
  EXPECT_LT(g.num_vertices(), 1.6 * expect_n) << name;

  const GraphStats s = graph_stats(g);
  // Loose envelopes: the generators target the paper fingerprint but small
  // scales add noise. bench_table2_datasets reports the exact deltas.
  EXPECT_GT(s.avg_degree, 0.4 * row.avg_degree) << name;
  EXPECT_LT(s.avg_degree, 2.1 * row.avg_degree) << name;
  if (row.pct_deg2 >= 20.0) {
    EXPECT_GT(s.pct_deg2, row.pct_deg2 - 25.0) << name;
    EXPECT_LT(s.pct_deg2, std::min(100.0, row.pct_deg2 + 25.0)) << name;
  } else {
    EXPECT_LT(s.pct_deg2, 30.0) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, DatasetFingerprint,
                         ::testing::ValuesIn(dataset_names()),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (char& c : s) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return s;
                         });

}  // namespace
}  // namespace sbg
