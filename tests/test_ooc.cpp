// sbg::ooc — out-of-core piece scheduling: plan invariants, spill-store
// round trips and corruption handling, hash identity across memory/spill/
// eviction paths, mapped sources, cancellation, and the scratch-arena
// interaction of piece-local solves (ISSUE 9 satellites 1, 3, 4).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ingest/cache.hpp"
#include "ingest/ingest.hpp"
#include "matching/matching.hpp"
#include "ooc/ooc.hpp"
#include "ooc/spill.hpp"
#include "parallel/cancel.hpp"
#include "parallel/scratch.hpp"
#include "test_helpers.hpp"

namespace {

using namespace sbg;
namespace fs = std::filesystem;

ooc::PlanOptions small_options(std::uint64_t budget = 0,
                               ooc::PieceFamily family =
                                   ooc::PieceFamily::kRand) {
  ooc::PlanOptions po;
  po.family = family;
  po.engine = ooc::Engine::kGM;
  po.seed = 7;
  po.k = 4;
  po.levels = 3;
  po.mem_budget = budget;
  return po;
}

CsrGraph test_graph() {
  return build_graph(gen_rmat(2000, 16'000, 77), true);
}

/// Interleaved {vertex, count} runs + adjacency payload of a piece
/// sub-CSR, the exact shape SpillWriter::append consumes.
struct PiecePayload {
  std::vector<std::uint32_t> runs;
  std::vector<std::uint32_t> values;
};

PiecePayload payload_of(const CsrGraph& piece) {
  PiecePayload p;
  const std::span<const eid_t> off = piece.offsets();
  for (vid_t v = 0; v + 1 < off.size(); ++v) {
    const eid_t cnt = off[v + 1] - off[v];
    if (cnt == 0) continue;
    p.runs.push_back(v);
    p.runs.push_back(static_cast<std::uint32_t>(cnt));
  }
  const std::span<const vid_t> adj = piece.adjacency();
  p.values.assign(adj.begin(), adj.end());
  return p;
}

void expect_same_csr(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  const auto ao = a.offsets(), bo = b.offsets();
  for (std::size_t i = 0; i < ao.size(); ++i) ASSERT_EQ(ao[i], bo[i]);
  const auto aa = a.adjacency(), ba = b.adjacency();
  for (std::size_t i = 0; i < aa.size(); ++i) ASSERT_EQ(aa[i], ba[i]);
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

// ------------------------------------------------------------------ plan --

TEST(OocPlan, PartitionsEveryArcExactly) {
  const CsrGraph g = test_graph();
  const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
  const ooc::Plan plan = ooc::plan_ooc(src, small_options());

  ASSERT_EQ(plan.pieces.size(), std::size_t(4 * 3 + 1));
  eid_t arcs = 0;
  for (const ooc::PieceDesc& d : plan.pieces) {
    arcs += d.arcs;
    // store_bytes is exact: header per segment, 8B per live vertex (one
    // run per vertex — its arcs lie inside one extraction range), 4B/arc.
    EXPECT_EQ(d.store_bytes, std::uint64_t(d.segments) *
                                     ooc::kSegmentHeaderBytes +
                                 std::uint64_t(d.live) * 8 +
                                 std::uint64_t(d.arcs) * 4);
    if (d.arcs > 0) {
      EXPECT_GT(d.segments, 0u);
    } else {
      EXPECT_EQ(d.live, 0u);
    }
  }
  EXPECT_EQ(arcs, g.num_arcs());
  ASSERT_GE(plan.ranges.size(), 2u);
  EXPECT_EQ(plan.ranges.front(), 0u);
  EXPECT_EQ(plan.ranges.back(), g.num_vertices());
  for (std::size_t i = 0; i + 1 < plan.ranges.size(); ++i) {
    EXPECT_LT(plan.ranges[i], plan.ranges[i + 1]);
  }
}

TEST(OocPlan, PieceExtractionMatchesPlanCounts) {
  const CsrGraph g = test_graph();
  const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
  const ooc::Plan plan = ooc::plan_ooc(src, small_options());
  for (const ooc::PieceDesc& d : plan.pieces) {
    const CsrGraph piece = ooc::extract_single_piece(src, plan, d.id);
    EXPECT_EQ(piece.num_arcs(), d.arcs) << "piece " << d.id;
    vid_t live = 0;
    const auto off = piece.offsets();
    for (vid_t v = 0; v + 1 < off.size(); ++v) live += off[v + 1] > off[v];
    EXPECT_EQ(live, d.live) << "piece " << d.id;
  }
}

TEST(OocPlan, HashCoversShapeAndSeed) {
  const CsrGraph g = test_graph();
  const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
  const ooc::Plan a = ooc::plan_ooc(src, small_options());
  const ooc::Plan b = ooc::plan_ooc(src, small_options());
  EXPECT_EQ(a.plan_hash, b.plan_hash);

  ooc::PlanOptions other = small_options();
  other.seed = 8;
  EXPECT_NE(ooc::plan_ooc(src, other).plan_hash, a.plan_hash);

  // The budget is execution policy, not identity: a budgeted plan may
  // fetch from a store written by an unbudgeted one.
  EXPECT_EQ(ooc::plan_ooc(src, small_options(1 << 20)).plan_hash,
            a.plan_hash);
}

TEST(OocPlan, ClampsLevelsToPieceIdByteAndAutoSizes) {
  const CsrGraph g = test_graph();
  const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
  ooc::PlanOptions po = small_options();
  po.k = 64;
  po.levels = 24;  // 64 * 24 way over the uint8 piece-id ceiling
  const ooc::Plan plan = ooc::plan_ooc(src, po);
  EXPECT_LE(std::uint64_t(plan.options.k) * plan.options.levels, 255u);

  ooc::PlanOptions autod;
  autod.seed = 7;
  autod.mem_budget = 1 << 20;
  const ooc::Plan ap = ooc::plan_ooc(src, autod);
  EXPECT_GE(ap.options.k, 2u);
  EXPECT_GE(ap.options.levels, 1u);
  EXPECT_GT(ap.options.chunk_arcs, 0u);
}

TEST(OocPlan, EmptyAndTinyGraphs) {
  const CsrGraph empty;
  const ooc::Plan ep =
      ooc::plan_ooc(ooc::CsrSource::from_graph(empty), small_options());
  EXPECT_EQ(ep.arcs, 0u);
  const ooc::OocResult er =
      ooc::run_ooc(ooc::CsrSource::from_graph(empty), ep);
  EXPECT_EQ(er.status, ooc::RunStatus::kOk);
  EXPECT_EQ(er.cardinality, 0u);

  const CsrGraph star = build_graph(gen_star(16), false);
  const ooc::CsrSource src = ooc::CsrSource::from_graph(star);
  const ooc::Plan sp = ooc::plan_ooc(src, small_options());
  const ooc::OocResult sr = ooc::run_ooc(src, sp);
  ASSERT_EQ(sr.status, ooc::RunStatus::kOk);
  EXPECT_TRUE(test::IsMaximalMatching(star, sr.mate));
  EXPECT_EQ(sr.cardinality, 1u);  // a star has exactly one matched edge
}

// ----------------------------------------------------------- spill store --

class OocSpill : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = test_graph();
    src_ = ooc::CsrSource::from_graph(g_);
    plan_ = ooc::plan_ooc(src_, small_options());
    path_ = (fs::path(::testing::TempDir()) / "ooc_spill_test.sbgc").string();
    fs::remove(path_);

    ooc::SpillWriter writer(path_, g_.num_vertices(), plan_.pieces.size(),
                            plan_.plan_hash);
    dir_.resize(plan_.pieces.size());
    for (const ooc::PieceDesc& d : plan_.pieces) {
      pieces_.push_back(ooc::extract_single_piece(src_, plan_, d.id));
      const PiecePayload p = payload_of(pieces_.back());
      if (p.values.empty()) continue;
      dir_[d.id].push_back(
          writer.append(d.id, 0, g_.num_vertices(), p.runs, p.values));
    }
    writer.finish();
    ASSERT_EQ(ooc::SpillReader::open(path_, g_.num_vertices(),
                                     plan_.pieces.size(), plan_.plan_hash,
                                     &reader_),
              ingest::CacheStatus::kHit);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove(path_, ec);
  }

  CsrGraph g_;
  ooc::CsrSource src_;
  ooc::Plan plan_;
  std::string path_;
  std::vector<CsrGraph> pieces_;
  std::vector<std::vector<ooc::SegmentRef>> dir_;
  ooc::SpillReader reader_;
};

TEST_F(OocSpill, RoundTripsEveryPiece) {
  for (const ooc::PieceDesc& d : plan_.pieces) {
    if (d.arcs == 0) continue;
    CsrGraph rebuilt;
    std::uint64_t bytes = 0;
    ASSERT_EQ(reader_.read_piece(dir_[d.id], d.arcs, &rebuilt, &bytes),
              ingest::CacheStatus::kHit)
        << "piece " << d.id;
    expect_same_csr(rebuilt, pieces_[d.id]);
    EXPECT_GT(bytes, 0u);
  }
}

TEST_F(OocSpill, MultiSegmentConcatenationMatchesSingleSegment) {
  // Re-emit piece 0 as two range segments and check the concatenated
  // rebuild is byte-identical to the single-segment one.
  const CsrGraph& piece = pieces_[0];
  ASSERT_GT(piece.num_arcs(), 0u);
  const vid_t n = g_.num_vertices();
  const vid_t mid = n / 2;
  const std::span<const eid_t> off = piece.offsets();
  const std::span<const vid_t> adj = piece.adjacency();

  const std::string path2 =
      (fs::path(::testing::TempDir()) / "ooc_spill_two_seg.sbgc").string();
  ooc::SpillWriter writer(path2, n, plan_.pieces.size(), plan_.plan_hash);
  std::vector<ooc::SegmentRef> refs;
  const auto emit = [&](vid_t v0, vid_t v1) {
    PiecePayload p;
    for (vid_t v = v0; v < v1; ++v) {
      const eid_t cnt = off[v + 1] - off[v];
      if (cnt == 0) continue;
      p.runs.push_back(v);
      p.runs.push_back(static_cast<std::uint32_t>(cnt));
    }
    p.values.assign(adj.begin() + off[v0], adj.begin() + off[v1]);
    if (!p.values.empty()) {
      refs.push_back(writer.append(0, v0, v1, p.runs, p.values));
    }
  };
  emit(0, mid);
  emit(mid, n);
  writer.finish();

  ooc::SpillReader reader;
  ASSERT_EQ(ooc::SpillReader::open(path2, n, plan_.pieces.size(),
                                   plan_.plan_hash, &reader),
            ingest::CacheStatus::kHit);
  CsrGraph rebuilt;
  ASSERT_EQ(reader.read_piece(refs, piece.num_arcs(), &rebuilt, nullptr),
            ingest::CacheStatus::kHit);
  expect_same_csr(rebuilt, piece);
  fs::remove(path2);
}

TEST_F(OocSpill, ScanRebuildsTheDirectory) {
  std::vector<std::vector<ooc::SegmentRef>> scanned;
  ASSERT_EQ(reader_.scan(&scanned), ingest::CacheStatus::kHit);
  ASSERT_EQ(scanned.size(), dir_.size());
  for (std::size_t p = 0; p < dir_.size(); ++p) {
    ASSERT_EQ(scanned[p].size(), dir_[p].size()) << "piece " << p;
    for (std::size_t s = 0; s < dir_[p].size(); ++s) {
      EXPECT_EQ(scanned[p][s].offset, dir_[p][s].offset);
      EXPECT_EQ(scanned[p][s].runs, dir_[p][s].runs);
      EXPECT_EQ(scanned[p][s].arcs, dir_[p][s].arcs);
    }
  }
}

TEST_F(OocSpill, TruncatedStoreDegradesToCorruptNeverShortCsr) {
  // Chop the tail off the last nonempty piece's segment: its read must
  // come back kCorrupt (and re-extraction must still produce the piece),
  // while untouched earlier pieces keep reading clean.
  std::uint32_t last = 0, first = 0;
  bool seen = false;
  for (const ooc::PieceDesc& d : plan_.pieces) {
    if (d.arcs == 0) continue;
    if (!seen) first = d.id;
    seen = true;
    last = d.id;
  }
  ASSERT_TRUE(seen);
  ASSERT_NE(first, last);

  fs::resize_file(path_, fs::file_size(path_) - 9);
  CsrGraph rebuilt;
  EXPECT_EQ(reader_.read_piece(dir_[last], plan_.pieces[last].arcs, &rebuilt,
                               nullptr),
            ingest::CacheStatus::kCorrupt);
  EXPECT_EQ(rebuilt.num_arcs(), 0u);  // *out untouched, not a short CSR

  // The executor's recovery path: re-extract from the source.
  const CsrGraph recovered = ooc::extract_single_piece(src_, plan_, last);
  expect_same_csr(recovered, pieces_[last]);

  ASSERT_EQ(reader_.read_piece(dir_[first], plan_.pieces[first].arcs,
                               &rebuilt, nullptr),
            ingest::CacheStatus::kHit);
  expect_same_csr(rebuilt, pieces_[first]);

  // scan() keeps the clean prefix and reports the truncation.
  std::vector<std::vector<ooc::SegmentRef>> scanned;
  EXPECT_EQ(reader_.scan(&scanned), ingest::CacheStatus::kCorrupt);
  ASSERT_EQ(scanned.size(), plan_.pieces.size());
  EXPECT_EQ(scanned[first].size(), dir_[first].size());
}

TEST_F(OocSpill, PayloadCorruptionFailsTheChecksum) {
  std::uint32_t victim = 0;
  for (const ooc::PieceDesc& d : plan_.pieces) {
    if (d.arcs > 0) victim = d.id;
  }
  // Flip one adjacency byte in the victim's payload (header + runs skipped).
  const ooc::SegmentRef ref = dir_[victim][0];
  flip_byte(path_, ref.offset + ooc::kSegmentHeaderBytes +
                       std::uint64_t(ref.runs) * 8 + 2);
  CsrGraph rebuilt;
  EXPECT_EQ(reader_.read_piece(dir_[victim], plan_.pieces[victim].arcs,
                               &rebuilt, nullptr),
            ingest::CacheStatus::kCorrupt);
}

TEST_F(OocSpill, MismatchedPlanReadsStale) {
  ooc::SpillReader reader;
  EXPECT_EQ(ooc::SpillReader::open(path_, g_.num_vertices(),
                                   plan_.pieces.size(), plan_.plan_hash ^ 1,
                                   &reader),
            ingest::CacheStatus::kStale);
  // A v1 cache reader refuses the v2 container as stale, not corrupt.
  CsrGraph out;
  EXPECT_EQ(ingest::read_cache_file(path_, nullptr, &out),
            ingest::CacheStatus::kStale);
}

// ------------------------------------------------------------------ runs --

TEST(OocRun, HashIdenticalAcrossMemorySpillAndOverlapPaths) {
  const CsrGraph g = test_graph();
  const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
  const ooc::Plan plan_mem = ooc::plan_ooc(src, small_options());
  // Budget chosen well under the working set so the spill store, LRU
  // eviction, and refetch paths all genuinely run.
  const ooc::Plan plan_spill =
      ooc::plan_ooc(src, small_options(plan_mem.total_working_set / 4));

  ooc::RunOptions stop;
  stop.overlap = false;
  stop.spill_dir = ::testing::TempDir();
  ooc::RunOptions over;
  over.spill_dir = ::testing::TempDir();

  const ooc::OocResult mem = ooc::run_ooc(src, plan_mem);
  const ooc::OocResult spill = ooc::run_ooc(src, plan_spill, stop);
  const ooc::OocResult lap = ooc::run_ooc(src, plan_spill, over);

  ASSERT_EQ(mem.status, ooc::RunStatus::kOk) << mem.error;
  ASSERT_EQ(spill.status, ooc::RunStatus::kOk) << spill.error;
  ASSERT_EQ(lap.status, ooc::RunStatus::kOk) << lap.error;

  EXPECT_TRUE(test::IsMaximalMatching(g, mem.mate));
  EXPECT_EQ(mem.result_hash, spill.result_hash);
  EXPECT_EQ(mem.result_hash, lap.result_hash);
  EXPECT_EQ(mem.cardinality, spill.cardinality);
  EXPECT_EQ(mem.mate, spill.mate);
  EXPECT_EQ(mem.mate, lap.mate);

  EXPECT_GT(spill.bytes_spilled, 0u);
  EXPECT_EQ(spill.bytes_spilled, plan_spill.spill_bytes);
  EXPECT_EQ(mem.bytes_spilled, 0u);
}

TEST(OocRun, CostModelIsExactWithoutRefetches) {
  const CsrGraph g = test_graph();
  const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
  const ooc::Plan plan =
      ooc::plan_ooc(src, small_options(1ull << 22));  // roomy: no evictions
  ooc::RunOptions ro;
  ro.overlap = false;
  ro.spill_dir = ::testing::TempDir();
  const ooc::OocResult res = ooc::run_ooc(src, plan, ro);
  ASSERT_EQ(res.status, ooc::RunStatus::kOk) << res.error;
  ASSERT_EQ(res.evictions, 0u);
  for (const ooc::PieceStats& st : res.pieces) {
    if (st.arcs == 0) continue;
    EXPECT_EQ(st.actual_store_bytes, st.predicted_store_bytes)
        << "piece " << st.id;
  }
  EXPECT_EQ(res.actual_bytes_moved, res.predicted_bytes_moved);
  EXPECT_EQ(res.reextracts, 0u);
}

TEST(OocRun, PeakResidentStaysUnderBudgetPlusSlack) {
  const CsrGraph g = test_graph();
  const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
  const ooc::Plan ref = ooc::plan_ooc(src, small_options());
  const std::uint64_t budget = ref.total_working_set / 4;
  const ooc::Plan plan = ooc::plan_ooc(src, small_options(budget));
  for (const bool overlap : {false, true}) {
    ooc::RunOptions ro;
    ro.overlap = overlap;
    ro.spill_dir = ::testing::TempDir();
    const ooc::OocResult res = ooc::run_ooc(src, plan, ro);
    ASSERT_EQ(res.status, ooc::RunStatus::kOk) << res.error;
    EXPECT_LE(res.peak_resident_bytes, budget + (1u << 20))
        << "overlap=" << overlap;
  }
}

TEST(OocRun, MappedSourceMatchesHeapSource) {
  const CsrGraph g = test_graph();
  const std::string path =
      (fs::path(::testing::TempDir()) / "ooc_mapped_source.sbgc").string();
  ingest::write_cache_file(path, ingest::CacheKey{}, g);
  ingest::MappedCsr mapped;
  ASSERT_EQ(ingest::map_cache_file(path, &mapped), ingest::CacheStatus::kHit);
  ASSERT_TRUE(mapped.valid());
  EXPECT_EQ(mapped.num_vertices(), g.num_vertices());
  EXPECT_EQ(mapped.num_arcs(), g.num_arcs());

  const ooc::CsrSource heap_src = ooc::CsrSource::from_graph(g);
  const ooc::CsrSource map_src = ooc::CsrSource::from_mapped(mapped);
  const ooc::Plan heap_plan = ooc::plan_ooc(heap_src, small_options());
  const ooc::Plan map_plan = ooc::plan_ooc(map_src, small_options());
  EXPECT_EQ(heap_plan.plan_hash, map_plan.plan_hash);
  const ooc::OocResult a = ooc::run_ooc(heap_src, heap_plan);
  const ooc::OocResult b = ooc::run_ooc(map_src, map_plan);
  ASSERT_EQ(a.status, ooc::RunStatus::kOk);
  ASSERT_EQ(b.status, ooc::RunStatus::kOk);
  EXPECT_EQ(a.result_hash, b.result_hash);
  mapped.drop_pages();  // advisory, must be harmless
  EXPECT_EQ(map_src.offsets[0], 0u);

  // A truncated standalone .sbgc maps as corrupt, never a short view.
  fs::resize_file(path, fs::file_size(path) - 5);
  ingest::MappedCsr bad;
  EXPECT_EQ(ingest::map_cache_file(path, &bad),
            ingest::CacheStatus::kCorrupt);
  EXPECT_FALSE(bad.valid());
  fs::remove(path);
}

TEST(OocRun, ShapeSweepStaysOracleCleanUnderTinyBudget) {
  for (const test::GraphCase& c : test::shape_sweep()) {
    const CsrGraph g = c.make();
    const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
    for (const ooc::PieceFamily family :
         {ooc::PieceFamily::kRand, ooc::PieceFamily::kDegk}) {
      const ooc::Plan mem_plan =
          ooc::plan_ooc(src, small_options(0, family));
      const ooc::Plan spill_plan =
          ooc::plan_ooc(src, small_options(64 << 10, family));
      ooc::RunOptions ro;
      ro.spill_dir = ::testing::TempDir();
      const ooc::OocResult mem = ooc::run_ooc(src, mem_plan);
      const ooc::OocResult spill = ooc::run_ooc(src, spill_plan, ro);
      ASSERT_EQ(mem.status, ooc::RunStatus::kOk) << c.name << ": "
                                                 << mem.error;
      ASSERT_EQ(spill.status, ooc::RunStatus::kOk) << c.name << ": "
                                                   << spill.error;
      EXPECT_TRUE(test::IsMaximalMatching(g, mem.mate)) << c.name;
      EXPECT_EQ(mem.result_hash, spill.result_hash) << c.name;
    }
  }
}

TEST(OocRun, LmaxEngineIsOracleCleanAndBudgetStable) {
  const CsrGraph g = test_graph();
  const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
  ooc::PlanOptions po = small_options();
  po.engine = ooc::Engine::kLMAX;
  const ooc::Plan mem_plan = ooc::plan_ooc(src, po);
  po.mem_budget = mem_plan.total_working_set / 4;
  const ooc::Plan spill_plan = ooc::plan_ooc(src, po);
  ooc::RunOptions ro;
  ro.spill_dir = ::testing::TempDir();
  const ooc::OocResult mem = ooc::run_ooc(src, mem_plan);
  const ooc::OocResult spill = ooc::run_ooc(src, spill_plan, ro);
  ASSERT_EQ(mem.status, ooc::RunStatus::kOk) << mem.error;
  ASSERT_EQ(spill.status, ooc::RunStatus::kOk) << spill.error;
  EXPECT_TRUE(test::IsMaximalMatching(g, mem.mate));
  EXPECT_EQ(mem.result_hash, spill.result_hash);
}

TEST(OocRun, CancelTokenCancelsBothPhases) {
  const CsrGraph g = test_graph();
  const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
  const ooc::Plan plan = ooc::plan_ooc(src, small_options());
  CancelToken token;
  token.request_cancel();
  ooc::RunOptions ro;
  ro.cancel = &token;
  const ooc::OocResult res = ooc::run_ooc(src, plan, ro);
  EXPECT_EQ(res.status, ooc::RunStatus::kCancelled);
}

TEST(OocRun, NonMatchingWorkloadsAreRejected) {
  // MIS/coloring extenders are not composable over co-partition pieces
  // (DESIGN.md §12); the plan API only admits kMM and the enum has no
  // other member — assert the guard text survives refactors.
  const ooc::Plan plan = ooc::plan_ooc(
      ooc::CsrSource::from_graph(test_graph()), small_options());
  EXPECT_EQ(plan.options.workload, ooc::Workload::kMM);
}

// ---------------------------------------------- memory accounting (sat 1) --

TEST(OocAccounting, ResidentBytesCoversAllCsrArrays) {
  const CsrGraph g = test_graph();
  // heap_bytes charges capacities of every backing array; the old
  // size-based accounting is its floor.
  const std::uint64_t floor_bytes =
      (std::uint64_t(g.num_vertices()) + 1) * sizeof(eid_t) +
      std::uint64_t(g.num_arcs()) * sizeof(vid_t);
  EXPECT_GE(g.heap_bytes(), floor_bytes);
  EXPECT_EQ(ingest::resident_bytes(g), g.heap_bytes());
}

TEST(OocAccounting, EnvBudgetParsesSuffixes) {
  setenv("SBG_MEM_BUDGET", "64M", 1);
  EXPECT_EQ(ooc::mem_budget_from_env(), 64ull << 20);
  setenv("SBG_MEM_BUDGET", "2G", 1);
  EXPECT_EQ(ooc::mem_budget_from_env(), 2ull << 30);
  setenv("SBG_MEM_BUDGET", "512k", 1);
  EXPECT_EQ(ooc::mem_budget_from_env(), 512ull << 10);
  setenv("SBG_MEM_BUDGET", "1234", 1);
  EXPECT_EQ(ooc::mem_budget_from_env(), 1234u);
  setenv("SBG_MEM_BUDGET", "nonsense", 1);
  EXPECT_THROW(ooc::mem_budget_from_env(), InputError);
  unsetenv("SBG_MEM_BUDGET");
  EXPECT_EQ(ooc::mem_budget_from_env(), 0u);
}

// ------------------------------------------- scratch interaction (sat 4) --

/// Piece-local solves on t concurrent threads: each thread's arena obeys
/// SBG_SCRATCH_CAP after its solve's rewind-to-empty (largest-first
/// release), so the sum across concurrently resident piece solvers is
/// bounded by t * cap.
void run_scratch_cap_solves(int threads) {
  constexpr std::size_t kCap = 48 << 10;
  const CsrGraph g = test_graph();
  const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
  const ooc::Plan plan = ooc::plan_ooc(src, small_options());

  std::vector<std::thread> pool;
  std::vector<std::size_t> after(std::size_t(threads), 0);
  std::vector<int> solved(std::size_t(threads), 0);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      // Fresh thread => fresh thread-local arena, capped via the same
      // setter SBG_SCRATCH_CAP drives at construction.
      Scratch::local().set_capacity_cap(kCap);
      std::vector<vid_t> mate(g.num_vertices(), kNoVertex);
      for (std::size_t p = std::size_t(t); p < plan.pieces.size();
           p += std::size_t(threads)) {
        if (plan.pieces[p].arcs == 0) continue;
        const CsrGraph piece = ooc::extract_single_piece(src, plan,
                                                         plan.pieces[p].id);
        gm_extend(piece, mate);
        ++solved[std::size_t(t)];
        // Post-solve (rewind-to-empty) the arena must have trimmed
        // largest-first back under the cap — this bounds the sum of all
        // concurrently resident piece solvers at threads * cap.
        EXPECT_LE(Scratch::local().capacity_bytes(), kCap)
            << "thread " << t << " piece " << p;
      }
      after[std::size_t(t)] = Scratch::local().capacity_bytes();
    });
  }
  for (std::thread& th : pool) th.join();

  std::size_t sum = 0;
  int total_solved = 0;
  for (int t = 0; t < threads; ++t) {
    sum += after[std::size_t(t)];
    total_solved += solved[std::size_t(t)];
  }
  EXPECT_GT(total_solved, 0);
  EXPECT_LE(sum, kCap * std::size_t(threads));
}

TEST(OocScratch, CapBoundsConcurrentPieceSolvesT1) {
  run_scratch_cap_solves(1);
}
TEST(OocScratch, CapBoundsConcurrentPieceSolvesT2) {
  run_scratch_cap_solves(2);
}
TEST(OocScratch, CapBoundsConcurrentPieceSolvesT8) {
  run_scratch_cap_solves(8);
}

}  // namespace
