// Property-based sweeps: randomized instances (seed x density x partition
// count) checked against the invariants every algorithm must preserve —
// approximation bounds, palette bounds, conservation laws — rather than
// fixed expected values.
#include <gtest/gtest.h>

#include <tuple>

#include "coloring/coloring.hpp"
#include "core/bridge.hpp"
#include "core/degk.hpp"
#include "core/rand.hpp"
#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

using Params = std::tuple<std::uint64_t /*seed*/, eid_t /*edges*/>;

class RandomInstance : public ::testing::TestWithParam<Params> {
 protected:
  CsrGraph graph() const {
    const auto [seed, m] = GetParam();
    return test::random_graph(600, m, seed);
  }
};

TEST_P(RandomInstance, MatchingsSatisfyHalfApproximation) {
  const CsrGraph g = graph();
  // Every maximal matching is within factor 2 of every other (and of the
  // maximum); pairwise-check the whole family.
  const eid_t cards[] = {
      mm_gm(g).cardinality,         mm_lmax(g).cardinality,
      mm_ii(g).cardinality,         mm_greedy_seq(g).cardinality,
      mm_rand(g, 4).cardinality,    mm_degk(g, 2).cardinality,
      mm_bridge(g).cardinality,
  };
  for (const eid_t a : cards) {
    for (const eid_t b : cards) {
      EXPECT_LE(a, 2 * b);
    }
  }
}

TEST_P(RandomInstance, MatchedEdgesAreConservedUnderDecomposition) {
  const CsrGraph g = graph();
  // Conservation: a composite's matching only uses edges of G, and the
  // sum of matched vertices is exactly 2|M|.
  const MatchResult r = mm_rand(g, 6);
  std::size_t matched = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (r.mate[v] != kNoVertex) {
      ++matched;
      EXPECT_TRUE(g.has_edge(v, r.mate[v]));
    }
  }
  EXPECT_EQ(matched, 2 * r.cardinality);
}

TEST_P(RandomInstance, ColoringsRespectDegreeBounds) {
  const CsrGraph g = graph();
  const GraphStats s = graph_stats(g);
  // Greedy-flavored algorithms never exceed Δ+1; windowed ones (VB/EB)
  // may skip colors when a window saturates, but stay within 2(Δ+1).
  EXPECT_LE(color_jp(g).num_colors, s.max_degree + 1);
  EXPECT_LE(color_speculative(g).num_colors, s.max_degree + 1);
  EXPECT_LE(color_vb(g).num_colors, 2 * (s.max_degree + 1));
  EXPECT_LE(color_eb(g).num_colors, 2 * (s.max_degree + 1));
  // Lower bound: any edge forces 2 colors.
  if (g.num_edges() > 0) {
    EXPECT_GE(color_vb(g).num_colors, 2u);
  }
}

TEST_P(RandomInstance, MisSizesRespectDegreeBounds) {
  const CsrGraph g = graph();
  const GraphStats s = graph_stats(g);
  const std::size_t lower =
      g.num_vertices() / (static_cast<std::size_t>(s.max_degree) + 1);
  for (const auto& r : {mis_luby(g), mis_greedy(g), mis_degk(g, 2),
                        mis_rand(g, 4), mis_bridge(g)}) {
    EXPECT_GE(r.size, lower);      // any MIS covers n/(Δ+1) vertices
    EXPECT_LE(r.size, g.num_vertices());
  }
}

TEST_P(RandomInstance, DecompositionsPartitionEdgesExactly) {
  const CsrGraph g = graph();
  const auto [seed, m] = GetParam();
  for (vid_t k : {2u, 5u, 13u}) {
    const RandDecomposition d = decompose_rand(g, k, seed);
    ASSERT_EQ(d.g_intra.num_edges() + d.g_cross.num_edges(), g.num_edges());
  }
  const DegkDecomposition dd = decompose_degk(g, 3, kDegkAll);
  ASSERT_EQ(dd.g_high.num_edges() + dd.g_low.num_edges() +
                dd.g_cross.num_edges(),
            g.num_edges());
  ASSERT_EQ(dd.g_low.num_edges() + dd.g_cross.num_edges(),
            dd.g_low_cross.num_edges());
  const BridgeDecomposition bd = decompose_bridge(g);
  ASSERT_EQ(bd.g_components.num_edges() + bd.bridges.size(), g.num_edges());
}

TEST_P(RandomInstance, BridgeRemovalNeverDisconnectsTwoEdgeConnectedPairs) {
  const CsrGraph g = graph();
  const BridgeDecomposition d = decompose_bridge(g);
  // Endpoints of any NON-bridge edge stay in the same component of G - B.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const vid_t v : d.g_components.neighbors(u)) {
      ASSERT_EQ(d.components.label[u], d.components.label[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByDensity, RandomInstance,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(700, 1800, 5000)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------- composite phase counts --

TEST(Properties, CompositeRoundsAreSumOfPhases) {
  // Decomposition variants report the sum of their phase rounds — strictly
  // positive whenever the graph has edges.
  const CsrGraph g = test::random_graph(500, 2000, 9);
  EXPECT_GT(mm_rand(g, 4).rounds, 0u);
  EXPECT_GT(color_degk(g, 2).rounds, 0u);
  EXPECT_GT(mis_degk(g, 2).rounds, 0u);
}

TEST(Properties, TimingFieldsAreConsistent) {
  const CsrGraph g = test::random_graph(2000, 12'000, 11);
  for (const MatchResult& r : {mm_rand(g, 8), mm_bridge(g), mm_degk(g, 2)}) {
    EXPECT_GE(r.total_seconds, 0.0);
    EXPECT_GE(r.decompose_seconds, 0.0);
    EXPECT_NEAR(r.total_seconds, r.decompose_seconds + r.solve_seconds,
                1e-6 + 0.25 * r.total_seconds);
  }
}

}  // namespace
}  // namespace sbg
