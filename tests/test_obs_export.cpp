// sbg::obs::export — Prometheus text exposition (name charset, HELP/TYPE
// ordering, monotone cumulative buckets), histogram quantiles in the JSON
// report, series ring-buffer overflow accounting, Chrome trace structure
// vs the span tree, background sampler consistency under concurrent
// writers, SBG_OBS_EXPORT spec parsing, and perf-counter degradation.
//
// Like test_obs.cpp this TU pins SBG_OBS_ENABLED=1 so the macros are live
// even under -DSBG_OBS=OFF; the exported artifacts come straight from the
// library, which tolerates either build flavor.
#undef SBG_OBS_ENABLED
#define SBG_OBS_ENABLED 1

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export/chrome_trace.hpp"
#include "obs/export/prom.hpp"
#include "obs/export/sampler.hpp"
#include "obs/obs.hpp"
#include "obs/perf.hpp"
#include "obs/report.hpp"
#include "test_json.hpp"

namespace sbg {
namespace {

using test::Json;
using test::JsonParser;

// --------------------------------------------- exposition-format helpers --

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool ok = alpha || c == '_' || c == ':' ||
                    (i > 0 && c >= '0' && c <= '9');
    if (!ok) return false;
  }
  return true;
}

struct PromSample {
  std::string name;    ///< metric name without the label set
  std::string labels;  ///< raw text between { }, empty when unlabeled
  double value = 0.0;
};

/// Line-level parse of an exposition. Fails the calling test on structural
/// violations: bad name charset, a sample before its family's # TYPE line,
/// or a TYPE outside the known set.
std::vector<PromSample> parse_exposition(const std::string& text) {
  std::vector<PromSample> samples;
  std::map<std::string, std::string> family_type;  // name -> counter/gauge/...
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, family;
      ls >> hash >> kind >> family;
      EXPECT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      EXPECT_TRUE(valid_metric_name(family)) << line;
      if (kind == "TYPE") {
        std::string type;
        ls >> type;
        EXPECT_TRUE(type == "counter" || type == "gauge" ||
                    type == "histogram" || type == "summary" ||
                    type == "untyped")
            << line;
        // A family must be declared at most once per exposition.
        EXPECT_EQ(family_type.count(family), 0u) << "duplicate TYPE: " << line;
        family_type[family] = type;
      }
      continue;
    }
    PromSample s;
    const std::size_t brace = line.find('{');
    const std::size_t name_end =
        brace == std::string::npos ? line.find(' ') : brace;
    if (name_end == std::string::npos) {
      ADD_FAILURE() << "sample line without value: " << line;
      continue;
    }
    s.name = line.substr(0, name_end);
    EXPECT_TRUE(valid_metric_name(s.name)) << line;
    std::size_t value_pos;
    if (brace != std::string::npos) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos) {
        ADD_FAILURE() << "unterminated label set: " << line;
        continue;
      }
      s.labels = line.substr(brace + 1, close - brace - 1);
      value_pos = close + 1;
    } else {
      value_pos = name_end;
    }
    s.value = std::stod(line.substr(value_pos));
    // Histogram sample names carry the _bucket/_sum/_count suffix; the TYPE
    // line declares the bare family. Accept either form but require that
    // *some* declared family covers this sample — every sample must follow
    // its HELP/TYPE header.
    bool declared = family_type.count(s.name) != 0;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string sfx(suffix);
      if (!declared && s.name.size() > sfx.size() &&
          s.name.compare(s.name.size() - sfx.size(), sfx.size(), sfx) == 0) {
        declared =
            family_type.count(s.name.substr(0, s.name.size() - sfx.size())) !=
            0;
      }
    }
    EXPECT_TRUE(declared) << "sample before TYPE line: " << line;
    samples.push_back(std::move(s));
  }
  return samples;
}

const PromSample* find_sample(const std::vector<PromSample>& samples,
                              const std::string& name,
                              const std::string& labels = "") {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ------------------------------------------------------- name sanitizing --

TEST(ObsExport, PromMetricNameIsStableAndCharsetClean) {
  EXPECT_EQ(obs::prom_metric_name("gm.rounds"), "sbg_gm_rounds");
  EXPECT_EQ(obs::prom_metric_name("sched.job-retry count"),
            "sbg_sched_job_retry_count");
  EXPECT_EQ(obs::prom_metric_name("keep:colon_and_Case9"),
            "sbg_keep:colon_and_Case9");
  // Deterministic: the same raw name always maps to the same series.
  EXPECT_EQ(obs::prom_metric_name("a.b/c"), obs::prom_metric_name("a.b/c"));
  EXPECT_TRUE(valid_metric_name(obs::prom_metric_name("0starts.with.digit")));
}

// ----------------------------------------------------------- exposition --

TEST(ObsExport, ExpositionIsWellFormedAndTyped) {
  obs::reset_all();
  SBG_COUNTER_ADD("exp.counter", 12);
  SBG_GAUGE_SET("exp.gauge", -1.25);
  SBG_HIST_RECORD("exp.hist", 3);
  SBG_HIST_RECORD("exp.hist", 5);
  SBG_SERIES_APPEND("exp.series", 7.5);

  const std::string text = obs::prometheus_exposition();
  const auto samples = parse_exposition(text);

  const PromSample* counter = find_sample(samples, "sbg_exp_counter_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->value, 12.0);

  const PromSample* gauge = find_sample(samples, "sbg_exp_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, -1.25);

  const PromSample* last = find_sample(samples, "sbg_exp_series_last");
  ASSERT_NE(last, nullptr);
  EXPECT_DOUBLE_EQ(last->value, 7.5);
  const PromSample* rounds =
      find_sample(samples, "sbg_exp_series_rounds_total");
  ASSERT_NE(rounds, nullptr);
  EXPECT_DOUBLE_EQ(rounds->value, 1.0);

  // The availability marker is always present, whatever its value.
  EXPECT_NE(find_sample(samples, "sbg_perf_available"), nullptr);
}

TEST(ObsExport, HistogramBucketsAreCumulativeMonotoneEndingAtInf) {
  obs::reset_all();
  SBG_HIST_RECORD("exp.bhist", 0);   // bucket le="0"
  SBG_HIST_RECORD("exp.bhist", 3);   // bucket le="3"
  SBG_HIST_RECORD("exp.bhist", 5);   // bucket le="7"
  SBG_HIST_RECORD("exp.bhist", 5);

  const auto samples = parse_exposition(obs::prometheus_exposition());
  std::vector<const PromSample*> buckets;
  for (const auto& s : samples) {
    if (s.name == "sbg_exp_bhist_bucket") buckets.push_back(&s);
  }
  ASSERT_GE(buckets.size(), 2u);
  // Monotone non-decreasing cumulative counts, le bounds strictly rising,
  // the final bucket is +Inf and equals _count.
  double prev_count = -1.0;
  double prev_le = -1.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::string& labels = buckets[i]->labels;
    ASSERT_EQ(labels.rfind("le=\"", 0), 0u) << labels;
    const std::string le = labels.substr(4, labels.size() - 5);
    if (i + 1 == buckets.size()) {
      EXPECT_EQ(le, "+Inf");
    } else {
      const double bound = std::stod(le);
      EXPECT_GT(bound, prev_le);
      prev_le = bound;
    }
    EXPECT_GE(buckets[i]->value, prev_count);
    prev_count = buckets[i]->value;
  }
  EXPECT_DOUBLE_EQ(buckets.back()->value, 4.0);
  const PromSample* count = find_sample(samples, "sbg_exp_bhist_count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->value, 4.0);
  const PromSample* sum = find_sample(samples, "sbg_exp_bhist_sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ(sum->value, 13.0);
  // Spot-check the cumulative steps: le="0" saw 1 sample, le="3" saw 2.
  const PromSample* b0 = find_sample(samples, "sbg_exp_bhist_bucket",
                                     "le=\"0\"");
  ASSERT_NE(b0, nullptr);
  EXPECT_DOUBLE_EQ(b0->value, 1.0);
  const PromSample* b3 = find_sample(samples, "sbg_exp_bhist_bucket",
                                     "le=\"3\"");
  ASSERT_NE(b3, nullptr);
  EXPECT_DOUBLE_EQ(b3->value, 2.0);
}

TEST(ObsExport, CollidingSanitizedNamesEmitOneFamily) {
  obs::reset_all();
  // Both sanitize to sbg_col_a_b_total; emitting the family twice would be
  // invalid exposition, so exactly one must survive.
  obs::registry().counter("col.a.b").add(1);
  obs::registry().counter("col.a_b").add(2);
  const std::string text = obs::prometheus_exposition();
  std::size_t type_lines = 0;
  std::size_t pos = 0;
  const std::string needle = "# TYPE sbg_col_a_b_total counter";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++type_lines;
    pos += needle.size();
  }
  EXPECT_EQ(type_lines, 1u);
  // parse_exposition enforces the at-most-one-TYPE-per-family rule too.
  parse_exposition(text);
}

// ------------------------------------------------- histogram quantiles  --

TEST(ObsExport, HistogramQuantileExactWhenSingleValued) {
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.record(42);
  const auto snap = h.snapshot();
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(snap, 0.50), 42.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(snap, 0.99), 42.0);
}

TEST(ObsExport, HistogramQuantileMonotoneAndClampedToMinMax) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const auto snap = h.snapshot();
  const double p50 = obs::histogram_quantile(snap, 0.50);
  const double p95 = obs::histogram_quantile(snap, 0.95);
  const double p99 = obs::histogram_quantile(snap, 0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Pow2 buckets bound the error to the enclosing bucket: p50 of 1..1000
  // lies in (255, 1000], p99 in (512, 1000].
  EXPECT_GT(p50, 255.0);
  EXPECT_GT(p99, 512.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(obs::Histogram::Snapshot{}, 0.5),
                   0.0);
}

TEST(ObsExport, ReportJsonCarriesQuantilesAndDropped) {
  obs::reset_all();
  for (int i = 0; i < 64; ++i) SBG_HIST_RECORD("exp.qhist", 16);
  obs::Series& s = obs::registry().series("exp.dropseries");
  const std::uint64_t overflow = obs::Series::kDefaultCapacity + 37;
  for (std::uint64_t i = 0; i < overflow; ++i) {
    s.append(static_cast<double>(i));
  }
  const Json doc = JsonParser(obs::report_json({})).parse();
  const Json& hist = doc.at("histograms").at("exp.qhist");
  EXPECT_DOUBLE_EQ(hist.at("p50").number, 16.0);
  EXPECT_DOUBLE_EQ(hist.at("p95").number, 16.0);
  EXPECT_DOUBLE_EQ(hist.at("p99").number, 16.0);
  const Json& series = doc.at("series").at("exp.dropseries");
  EXPECT_DOUBLE_EQ(series.at("total").number, static_cast<double>(overflow));
  EXPECT_DOUBLE_EQ(series.at("dropped").number, 37.0);
  EXPECT_DOUBLE_EQ(series.at("dropped").number,
                   series.at("window_start").number);
}

TEST(ObsExport, SeriesOverflowSurfacesAsDroppedRoundsGauge) {
  obs::reset_all();
  obs::Series& s = obs::registry().series("exp.overflow");
  for (std::uint64_t i = 0; i < obs::Series::kDefaultCapacity + 5; ++i) {
    s.append(1.0);
  }
  const auto samples = parse_exposition(obs::prometheus_exposition());
  const PromSample* dropped =
      find_sample(samples, "sbg_exp_overflow_dropped_rounds");
  ASSERT_NE(dropped, nullptr);
  EXPECT_DOUBLE_EQ(dropped->value, 5.0);
  const PromSample* rounds =
      find_sample(samples, "sbg_exp_overflow_rounds_total");
  ASSERT_NE(rounds, nullptr);
  EXPECT_DOUBLE_EQ(rounds->value,
                   static_cast<double>(obs::Series::kDefaultCapacity + 5));
}

// ------------------------------------------------------------ chrome trace --

TEST(ObsExport, ChromeTraceNestingMatchesSpanTreeAndTracksAreSorted) {
  obs::set_trace_capture(true);  // clears any previous capture
  SBG_TRACE_THREAD_NAME("test-main");
  {
    SBG_SPAN("trace.outer");
    { SBG_SPAN("trace.inner"); }
    { SBG_SPAN("trace.inner"); }
    SBG_TRACE_INSTANT("trace.mark");
  }
  SBG_SERIES_APPEND("trace.series", 3.5);
  std::thread worker([] {
    SBG_TRACE_THREAD_NAME("test-worker");
    SBG_SPAN("trace.worker_span");
  });
  worker.join();
  const auto events = obs::trace_events();
  const auto names = obs::trace_thread_names();
  const std::string json = obs::chrome_trace_json();
  obs::set_trace_capture(false);

  // Two tracks, both named via metadata.
  std::set<std::uint32_t> tids;
  for (const auto& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 2u);
  std::set<std::string> track_names;
  for (const auto& [tid, name] : names) track_names.insert(name);
  EXPECT_EQ(track_names.count("test-main"), 1u);
  EXPECT_EQ(track_names.count("test-worker"), 1u);

  // Chronological within each track; X events have non-negative durations.
  std::map<std::uint32_t, std::int64_t> last_ts;
  std::map<std::string, int> by_name;
  for (const auto& e : events) {
    const auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts_us, it->second) << e.name;
    }
    last_ts[e.tid] = e.ts_us;
    EXPECT_GE(e.ts_us, 0);
    if (e.phase == 'X') {
      EXPECT_GE(e.dur_us, 0) << e.name;
    }
    by_name[e.name] += 1;
  }
  EXPECT_EQ(by_name["trace.outer"], 1);
  EXPECT_EQ(by_name["trace.inner"], 2);
  EXPECT_EQ(by_name["trace.mark"], 1);
  EXPECT_EQ(by_name["trace.series"], 1);
  EXPECT_EQ(by_name["trace.worker_span"], 1);

  // Interval containment mirrors the span tree: both inner spans and the
  // instant land inside [outer.ts, outer.ts + outer.dur] on the same track.
  const obs::TraceEvent* outer = nullptr;
  for (const auto& e : events) {
    if (e.name == "trace.outer") outer = &e;
  }
  ASSERT_NE(outer, nullptr);
  for (const auto& e : events) {
    if (e.name != "trace.inner" && e.name != "trace.mark") continue;
    EXPECT_EQ(e.tid, outer->tid);
    EXPECT_GE(e.ts_us, outer->ts_us) << e.name;
    EXPECT_LE(e.ts_us + (e.phase == 'X' ? e.dur_us : 0),
              outer->ts_us + outer->dur_us)
        << e.name;
  }

  // The JSON is parseable Trace Event Format with balanced metadata.
  const Json doc = JsonParser(json).parse();
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const auto& trace_events = doc.at("traceEvents").array;
  std::size_t x = 0, i_events = 0, c = 0, m = 0;
  for (const auto& e : trace_events) {
    const std::string& ph = e.at("ph").string;
    if (ph == "X") {
      ++x;
      EXPECT_GE(e.at("dur").number, 0.0);
    } else if (ph == "i") {
      ++i_events;
      EXPECT_EQ(e.at("s").string, "t");
    } else if (ph == "C") {
      ++c;
      EXPECT_TRUE(e.at("args").has("value"));
    } else if (ph == "M") {
      ++m;
      EXPECT_EQ(e.at("name").string, "thread_name");
      EXPECT_TRUE(e.at("args").has("name"));
    } else {
      ADD_FAILURE() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(x, 4u);         // outer + 2 inner + worker_span
  EXPECT_EQ(i_events, 1u);  // trace.mark
  EXPECT_EQ(c, 1u);         // trace.series counter sample
  EXPECT_EQ(m, 2u);         // two named tracks
}

TEST(ObsExport, TraceCaptureOffRecordsNothing) {
  obs::set_trace_capture(true);
  obs::set_trace_capture(false);
  { SBG_SPAN("trace.unwanted"); }
  SBG_TRACE_INSTANT("trace.unwanted_mark");
  EXPECT_TRUE(obs::trace_events().empty());
}

TEST(ObsExport, WriteChromeTraceCreatesLoadableFile) {
  obs::set_trace_capture(true);
  { SBG_SPAN("trace.file_span"); }
  const std::string path = testing::TempDir() + "/sbg_trace_test.json";
  std::string error;
  ASSERT_TRUE(obs::write_chrome_trace(path, &error)) << error;
  obs::set_trace_capture(false);
  const Json doc = JsonParser(read_file(path)).parse();
  ASSERT_FALSE(doc.at("traceEvents").array.empty());
  std::string bad_error;
  EXPECT_FALSE(obs::write_chrome_trace("/nonexistent-dir/x/y.json",
                                       &bad_error));
  EXPECT_FALSE(bad_error.empty());
}

// ---------------------------------------------------------------- sampler --

TEST(ObsExport, ParseExportSpecAcceptsSinksAndRejectsGarbage) {
  obs::SamplerOptions opt;
  std::string error;
  ASSERT_TRUE(obs::parse_export_spec("prom:/tmp/a.prom,jsonl:/tmp/b.jsonl",
                                     &opt, &error))
      << error;
  EXPECT_EQ(opt.prom_path, "/tmp/a.prom");
  EXPECT_EQ(opt.jsonl_path, "/tmp/b.jsonl");

  obs::SamplerOptions single;
  ASSERT_TRUE(obs::parse_export_spec("jsonl:rel/path.jsonl", &single, &error));
  EXPECT_TRUE(single.prom_path.empty());
  EXPECT_EQ(single.jsonl_path, "rel/path.jsonl");

  obs::SamplerOptions bad;
  EXPECT_FALSE(obs::parse_export_spec("csv:/tmp/a.csv", &bad, &error));
  EXPECT_NE(error.find("csv"), std::string::npos);
  EXPECT_FALSE(obs::parse_export_spec("prom:", &bad, &error));
  EXPECT_FALSE(obs::parse_export_spec("prom", &bad, &error));
  EXPECT_FALSE(obs::parse_export_spec("", &bad, &error));
  EXPECT_FALSE(obs::parse_export_spec(",,,", &bad, &error));
}

TEST(ObsExport, SamplerSnapshotsStayConsistentUnderConcurrentWriters) {
  obs::reset_all();
  const std::string prom_path = testing::TempDir() + "/sbg_sampler_test.prom";
  const std::string jsonl_path =
      testing::TempDir() + "/sbg_sampler_test.jsonl";
  std::remove(prom_path.c_str());
  std::remove(jsonl_path.c_str());

  obs::SamplerOptions opt;
  opt.prom_path = prom_path;
  opt.jsonl_path = jsonl_path;
  opt.period_ms = 10;

  constexpr int kThreads = 4;
  constexpr std::uint64_t kAddsPerThread = 40'000;
  {
    obs::Sampler sampler(opt);
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([] {
        for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
          SBG_COUNTER_ADD("sampler.writes", 1);
          if (i % 64 == 0) SBG_HIST_RECORD("sampler.sizes", i);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    for (auto& w : writers) w.join();
    sampler.stop();  // final flush after writers are quiescent
    EXPECT_GE(sampler.samples_taken(), 1u);
    sampler.stop();  // idempotent
  }

  // The final exposition reflects the exact post-join totals.
  const auto samples = parse_exposition(read_file(prom_path));
  const PromSample* writes =
      find_sample(samples, "sbg_sampler_writes_total");
  ASSERT_NE(writes, nullptr);
  EXPECT_DOUBLE_EQ(writes->value,
                   static_cast<double>(kThreads * kAddsPerThread));

  // Every JSONL line parses; deltas telescope to the final total.
  std::ifstream in(jsonl_path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t lines = 0;
  double delta_sum = 0.0;
  double last_total = 0.0;
  double prev_sample = 0.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const Json doc = JsonParser(line).parse();
    EXPECT_GT(doc.at("sample").number, prev_sample);
    prev_sample = doc.at("sample").number;
    const Json& counters = doc.at("counters");
    if (counters.has("sampler.writes")) {
      const double total = counters.at("sampler.writes").number;
      EXPECT_GE(total, last_total) << "counter went backwards";
      last_total = total;
    }
    const Json& deltas = doc.at("counter_deltas");
    if (deltas.has("sampler.writes")) {
      delta_sum += deltas.at("sampler.writes").number;
    }
    if (doc.at("histograms").has("sampler.sizes")) {
      const Json& h = doc.at("histograms").at("sampler.sizes");
      EXPECT_LE(h.at("p50").number, h.at("p95").number);
      EXPECT_LE(h.at("p95").number, h.at("p99").number);
    }
  }
  EXPECT_GE(lines, 1u);
  EXPECT_DOUBLE_EQ(last_total, static_cast<double>(kThreads * kAddsPerThread));
  EXPECT_DOUBLE_EQ(delta_sum, last_total);
}

TEST(ObsExport, StartSamplerFromEnvIgnoresMalformedSpec) {
  // Unset -> no sampler; malformed -> warn + no sampler (never a crash).
  ASSERT_EQ(unsetenv("SBG_OBS_EXPORT"), 0);
  EXPECT_EQ(obs::start_sampler_from_env(), nullptr);
  ASSERT_EQ(setenv("SBG_OBS_EXPORT", "bogus:/tmp/x", 1), 0);
  EXPECT_EQ(obs::start_sampler_from_env(), nullptr);
  ASSERT_EQ(unsetenv("SBG_OBS_EXPORT"), 0);
}

// ------------------------------------------------------------------- perf --

TEST(ObsExport, PerfDegradesGracefullyWhenUnavailable) {
  const bool avail = obs::perf::available();
  if (avail) {
    GTEST_SKIP() << "perf_event_open works here; degradation not exercised";
  }
  // Unavailable: a stable reason, zeroed reads, and no-op scopes.
  EXPECT_NE(std::string(obs::perf::unavailable_reason()), "");
  obs::perf::Values v;
  v.cycles = 123;
  EXPECT_FALSE(obs::perf::read_counters(&v));
  EXPECT_EQ(v.cycles, 0u);
  EXPECT_EQ(v.instructions, 0u);

  obs::reset_all();
  {
    SBG_SPAN_PERF("perf.test_scope");
  }
  EXPECT_EQ(obs::registry().counter("perf.perf.test_scope.cycles").value(),
            0u);
  const auto samples = parse_exposition(obs::prometheus_exposition());
  const PromSample* marker = find_sample(samples, "sbg_perf_available");
  ASSERT_NE(marker, nullptr);
  EXPECT_DOUBLE_EQ(marker->value, 0.0);
}

TEST(ObsExport, PerfCountsWorkWhenAvailable) {
  if (!obs::perf::available()) {
    GTEST_SKIP() << "perf unavailable: " << obs::perf::unavailable_reason();
  }
  EXPECT_EQ(std::string(obs::perf::unavailable_reason()), "");
  obs::reset_all();
  {
    SBG_SPAN_PERF("perf.busy");
    // Enough work that the cycle counter must advance.
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 2'000'000; ++i) sink = sink + i * i;
  }
  EXPECT_GT(obs::registry().counter("perf.perf.busy.cycles").value(), 0u);
  const auto samples = parse_exposition(obs::prometheus_exposition());
  const PromSample* marker = find_sample(samples, "sbg_perf_available");
  ASSERT_NE(marker, nullptr);
  EXPECT_DOUBLE_EQ(marker->value, 1.0);
}

}  // namespace
}  // namespace sbg
