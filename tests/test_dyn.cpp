// src/dyn — dynamic graphs: DynGraph toggle semantics (insert / delete /
// resurrect / no-op), the merged neighbor view against materialize(),
// compaction invariance, vertex growth, and Session's incremental
// MM/coloring/MIS repair checked through the standard oracles after every
// batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "dyn/dyn_graph.hpp"
#include "dyn/repair.hpp"
#include "dyn/session.hpp"
#include "parallel/rng.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

using dyn::DynGraph;
using dyn::Session;
using dyn::SessionOptions;
using dyn::UpdateBatch;

std::vector<vid_t> neighbor_list(const DynGraph& g, vid_t v) {
  std::vector<vid_t> out;
  g.for_neighbors(v, [&](vid_t w) { out.push_back(w); });
  return out;
}

TEST(DynGraph, InsertAndDeleteToggleEdges) {
  DynGraph g(test::make_path_200());
  ASSERT_TRUE(g.has_edge(3, 4));
  ASSERT_FALSE(g.has_edge(3, 5));

  UpdateBatch b;
  b.insert.push_back({3, 5});
  b.remove.push_back({3, 4});
  const dyn::EdgeDelta d = g.apply(b);
  EXPECT_EQ(d.inserted.size(), 1u);
  EXPECT_EQ(d.removed.size(), 1u);
  EXPECT_TRUE(g.has_edge(3, 5));
  EXPECT_TRUE(g.has_edge(5, 3));  // undirected
  EXPECT_FALSE(g.has_edge(3, 4));
  EXPECT_EQ(g.num_edges(), 199u);  // one in, one out
}

TEST(DynGraph, NoOpInsertsAndDeletesAreNotReported) {
  DynGraph g(test::make_path_200());
  UpdateBatch b;
  b.insert.push_back({3, 4});    // already present
  b.insert.push_back({7, 7});    // self-loop: dropped
  b.insert.push_back({9, 8});    // duplicate orientation of a present edge
  b.remove.push_back({50, 90});  // absent
  const dyn::EdgeDelta d = g.apply(b);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(g.num_edges(), 199u);
}

TEST(DynGraph, InsertThenRemoveInOneBatchNetsToAbsent) {
  DynGraph g(test::make_path_200());
  UpdateBatch b;
  b.insert.push_back({10, 100});
  b.remove.push_back({100, 10});  // removes win over inserts
  const dyn::EdgeDelta d = g.apply(b);
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(g.has_edge(10, 100));
}

TEST(DynGraph, ResurrectingATombstonedEdgeClearsTheTombstone) {
  DynGraph g(test::make_path_200());
  UpdateBatch del;
  del.remove.push_back({3, 4});
  g.apply(del);
  ASSERT_FALSE(g.has_edge(3, 4));
  EXPECT_EQ(g.delta_arcs(), 2u);

  UpdateBatch res;
  res.insert.push_back({3, 4});
  const dyn::EdgeDelta d = g.apply(res);
  EXPECT_EQ(d.inserted.size(), 1u);
  EXPECT_TRUE(g.has_edge(3, 4));
  // The pair cancelled out instead of living in both delta sets.
  EXPECT_EQ(g.delta_arcs(), 0u);
}

TEST(DynGraph, MergedNeighborViewMatchesMaterialize) {
  Rng rng(99);
  DynGraph g(test::make_er_sparse());
  for (int round = 0; round < 5; ++round) {
    UpdateBatch b;
    for (int i = 0; i < 30; ++i) {
      const vid_t u = vid_t(rng.below(g.num_vertices()));
      const vid_t v = vid_t(rng.below(g.num_vertices()));
      if (rng.below(2) == 0) {
        b.insert.push_back({u, v});
      } else {
        b.remove.push_back({u, v});
      }
    }
    g.apply(b);
    const CsrGraph m = g.materialize();
    ASSERT_EQ(m.num_vertices(), g.num_vertices());
    ASSERT_EQ(m.num_edges(), g.num_edges());
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      const auto span = m.neighbors(v);
      const std::vector<vid_t> want(span.begin(), span.end());
      ASSERT_EQ(neighbor_list(g, v), want) << "v=" << v;
      ASSERT_EQ(g.degree(v), m.degree(v)) << "v=" << v;
    }
  }
}

TEST(DynGraph, CompactionPreservesTheViewAndResetsDeltas) {
  DynGraph g(test::make_er_sparse(), /*compact_fraction=*/1e9);
  UpdateBatch b;
  b.insert.push_back({1, 5});
  b.insert.push_back({2, 9});
  b.remove.push_back({0, 1});
  g.apply(b);
  const CsrGraph before = g.materialize();
  ASSERT_GT(g.delta_arcs(), 0u);

  g.compact();
  EXPECT_EQ(g.delta_arcs(), 0u);
  EXPECT_EQ(g.compactions(), 1u);
  const CsrGraph after = g.materialize();
  EXPECT_EQ(dyn::hash_graph(before), dyn::hash_graph(after));
  // Idempotent with empty deltas.
  g.compact();
  EXPECT_EQ(g.compactions(), 1u);
}

TEST(DynGraph, AutoCompactionTriggersOnDeltaGrowth) {
  DynGraph g(test::make_path_200(), /*compact_fraction=*/0.01);
  UpdateBatch b;
  for (vid_t i = 0; i < 20; ++i) b.insert.push_back({i, vid_t(i + 50)});
  g.apply(b);
  EXPECT_GE(g.compactions(), 1u);
  EXPECT_EQ(g.delta_arcs(), 0u);
  EXPECT_EQ(g.num_edges(), 219u);
}

TEST(DynGraph, InsertsGrowTheVertexSpace) {
  DynGraph g(test::make_path_200());
  UpdateBatch b;
  b.insert.push_back({5, 205});
  const dyn::EdgeDelta d = g.apply(b);
  EXPECT_EQ(d.new_vertices, 6u);
  EXPECT_EQ(g.num_vertices(), 206u);
  EXPECT_TRUE(g.has_edge(5, 205));
  EXPECT_EQ(g.degree(203), 0u);  // fresh isolated slots
  EXPECT_EQ(g.core_hint(205), 0u);
  const CsrGraph m = g.materialize();
  EXPECT_EQ(m.num_vertices(), 206u);
}

TEST(DynGraph, CoreHintRefreshesOnCompaction) {
  // Base is a path (all core 1); densify a clique on 0..5, compact, and
  // the hints must reflect the new structure.
  DynGraph g(test::make_path_200(), /*compact_fraction=*/1e9);
  UpdateBatch b;
  for (vid_t u = 0; u < 6; ++u) {
    for (vid_t v = u + 1; v < 6; ++v) b.insert.push_back({u, v});
  }
  g.apply(b);
  EXPECT_EQ(g.core_hint(3), 1u);  // stale until compaction
  g.compact();
  EXPECT_EQ(g.core_hint(3), 5u);
  EXPECT_EQ(g.core_hint(150), 1u);
}

// ------------------------------------------------------------- session ----

void expect_session_valid(Session& s, const char* what) {
  const CsrGraph g = s.materialized();
  EXPECT_TRUE(test::IsMaximalMatching(g, s.mate())) << what;
  EXPECT_TRUE(test::IsProperColoring(g, s.color())) << what;
  EXPECT_TRUE(test::IsMaximalIndependentSet(g, s.mis_state())) << what;
}

TEST(DynSession, InitialSolutionsAreValid) {
  Session s(test::make_er_sparse());
  expect_session_valid(s, "initial");
}

TEST(DynSession, EmptyBatchIsValidAndCheap) {
  Session s(test::make_er_sparse());
  const dyn::UpdateOutcome out = s.update({}, /*verify=*/true);
  EXPECT_TRUE(out.oracle_error.empty()) << out.oracle_error;
  EXPECT_EQ(out.inserted, 0u);
  EXPECT_EQ(out.removed, 0u);
  EXPECT_EQ(out.mm.frontier, 0u);
  EXPECT_EQ(out.color.frontier, 0u);
  EXPECT_EQ(out.mis.frontier, 0u);
}

TEST(DynSession, RepairsStayOracleCleanAcrossRandomBatches) {
  Rng rng(4242);
  Session s(test::make_er_sparse());
  const vid_t n = s.num_vertices();
  for (int round = 0; round < 8; ++round) {
    UpdateBatch b;
    const int k = 1 + int(rng.below(12));
    for (int i = 0; i < k; ++i) {
      const vid_t u = vid_t(rng.below(n));
      const vid_t v = vid_t(rng.below(n));
      if (rng.below(3) == 0) {
        b.remove.push_back({u, v});
      } else {
        b.insert.push_back({u, v});
      }
    }
    const dyn::UpdateOutcome out = s.update(b, /*verify=*/true);
    EXPECT_TRUE(out.oracle_error.empty())
        << "round " << round << ": " << out.oracle_error;
    EXPECT_TRUE(out.verified);
  }
  expect_session_valid(s, "after batches");
}

TEST(DynSession, DeleteHeavyBatchesStayValid) {
  Session s(test::make_cycle_201());
  Rng rng(7);
  for (int round = 0; round < 5; ++round) {
    UpdateBatch b;
    for (int i = 0; i < 10; ++i) {
      const vid_t u = vid_t(rng.below(201));
      b.remove.push_back({u, vid_t((u + 1) % 201)});
    }
    const dyn::UpdateOutcome out = s.update(b, /*verify=*/true);
    EXPECT_TRUE(out.oracle_error.empty())
        << "round " << round << ": " << out.oracle_error;
  }
}

TEST(DynSession, GrowingVerticesRepairsNewcomers) {
  Session s(test::make_path_200());
  UpdateBatch b;
  b.insert.push_back({0, 200});
  b.insert.push_back({200, 201});
  b.insert.push_back({201, 202});
  const dyn::UpdateOutcome out = s.update(b, /*verify=*/true);
  EXPECT_TRUE(out.oracle_error.empty()) << out.oracle_error;
  EXPECT_EQ(out.new_vertices, 3u);
  EXPECT_EQ(out.num_vertices, 203u);
  // Newcomers must be colored and MIS-decided (the oracles above prove it
  // globally; spot-check the arrays grew).
  EXPECT_EQ(s.color().size(), 203u);
  EXPECT_EQ(s.mis_state().size(), 203u);
}

TEST(DynSession, RepairTouchesTheFrontierNotTheWholeGraph) {
  // One edge into a 400-vertex graph must not rewrite distant state.
  Session s(test::make_er_sparse());
  const std::vector<std::uint32_t> color_before = s.color();
  UpdateBatch b;
  b.insert.push_back({0, 1});
  const dyn::UpdateOutcome out = s.update(b, /*verify=*/true);
  EXPECT_TRUE(out.oracle_error.empty()) << out.oracle_error;
  const std::vector<std::uint32_t> color_after = s.color();
  std::size_t changed = 0;
  for (std::size_t v = 0; v < color_before.size(); ++v) {
    changed += color_before[v] != color_after[v];
  }
  // The repair may cascade a little, but it must stay local: strictly
  // fewer than 10% of vertices recolored for a single-edge batch.
  EXPECT_LT(changed, color_before.size() / 10);
  EXPECT_LE(out.color.repaired, out.color.frontier * 4 + 4);
}

TEST(DynSession, MaintainSubsetOnlyRepairsWhatItMaintains) {
  SessionOptions opt;
  opt.maintain_mm = false;
  opt.maintain_mis = false;
  Session s(test::make_er_sparse(), opt);
  UpdateBatch b;
  b.insert.push_back({0, 7});
  const dyn::UpdateOutcome out = s.update(b, /*verify=*/true);
  EXPECT_TRUE(out.oracle_error.empty()) << out.oracle_error;
  EXPECT_TRUE(s.mate().empty());
  EXPECT_TRUE(s.mis_state().empty());
  EXPECT_FALSE(s.color().empty());
  EXPECT_EQ(out.mm_hash, 0u);
}

TEST(DynSession, HashGraphAgreesWithGroundTruthBuild) {
  Session s(test::make_path_200());
  UpdateBatch b;
  b.insert.push_back({0, 2});
  b.remove.push_back({0, 1});
  const dyn::UpdateOutcome out = s.update(b, /*verify=*/true);
  ASSERT_TRUE(out.verified);

  EdgeList el;
  el.num_vertices = 200;
  el.add(0, 2);
  for (vid_t v = 1; v + 1 < 200; ++v) el.add(v, v + 1);
  const CsrGraph ref = build_graph(el, false);
  EXPECT_EQ(out.graph_hash, dyn::hash_graph(ref));
}

}  // namespace
}  // namespace sbg
