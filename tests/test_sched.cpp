// sbg::sched batch engine: failure isolation, cooperative deadlines, and
// the determinism contract under concurrency — a batch run's per-job
// results must be byte-identical to a sequential sweep with the same
// seeds, at any thread count, and independent jobs calling the seeded
// solvers concurrently must not perturb each other.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "coloring/coloring.hpp"
#include "core/rand.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"
#include "parallel/cancel.hpp"
#include "parallel/thread_env.hpp"
#include "sched/sched.hpp"
#include "test_helpers.hpp"

namespace sbg::test {
namespace {

constexpr int kThreadSweep[] = {1, 2, 8};

std::shared_ptr<const CsrGraph> shared_random_graph(vid_t n, eid_t m,
                                                    std::uint64_t seed) {
  return std::make_shared<const CsrGraph>(random_graph(n, m, seed));
}

TEST(Sched, TableOneMatrixBatchMatchesSequentialSweep) {
  const std::vector<std::pair<std::string, std::shared_ptr<const CsrGraph>>>
      graphs = {{"er300", shared_random_graph(300, 900, 7)},
                {"er500", shared_random_graph(500, 2000, 11)}};
  const std::vector<sched::JobSpec> specs = sched::table1_matrix(graphs, 42);
  ASSERT_EQ(specs.size(), 24u);  // 2 graphs x 12 Table-I cells

  sched::BatchOptions opt;
  opt.jobs = 4;
  opt.per_job_threads = 1;
  const sched::BatchReport report = sched::run_batch(specs, opt);
  ASSERT_EQ(report.results.size(), specs.size());
  EXPECT_EQ(report.count(sched::JobStatus::kOk),
            static_cast<int>(specs.size()));

  // Same spec, same seed, run alone: status, solution hash, value, and
  // round count must all agree with the concurrent run — for the
  // schedule-deterministic jobs. The vb-based coloring cells race by
  // design, so for them the replay only has to be oracle-clean (run_job
  // verifies by default).
  int hash_checked = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const sched::JobResult ref = sched::run_job(specs[i]);
    ASSERT_EQ(ref.status, sched::JobStatus::kOk) << specs[i].name;
    if (!sched::schedule_deterministic(specs[i].problem, specs[i].variant)) {
      continue;
    }
    ++hash_checked;
    EXPECT_EQ(report.results[i].result_hash, ref.result_hash)
        << specs[i].name;
    EXPECT_EQ(report.results[i].value, ref.value) << specs[i].name;
    EXPECT_EQ(report.results[i].rounds, ref.rounds) << specs[i].name;
  }
  EXPECT_EQ(hash_checked, 16);  // 2 graphs x (4 MM + 4 MIS) cells
}

TEST(Sched, ScheduleDeterminismClassifiesVariants) {
  using sched::Problem;
  using sched::schedule_deterministic;
  EXPECT_TRUE(schedule_deterministic(Problem::kMM, "gm"));
  EXPECT_TRUE(schedule_deterministic(Problem::kMM, "rand-gm"));
  EXPECT_TRUE(schedule_deterministic(Problem::kMis, "luby"));
  EXPECT_TRUE(schedule_deterministic(Problem::kMis, "degk2"));
  EXPECT_TRUE(schedule_deterministic(Problem::kColor, "jp-random"));
  EXPECT_TRUE(schedule_deterministic(Problem::kColor, "jp-ldf"));
  EXPECT_FALSE(schedule_deterministic(Problem::kColor, "vb"));
  EXPECT_FALSE(schedule_deterministic(Problem::kColor, "eb"));
  EXPECT_FALSE(schedule_deterministic(Problem::kColor, "spec"));
  EXPECT_FALSE(schedule_deterministic(Problem::kColor, "rand-vb"));
  EXPECT_FALSE(schedule_deterministic(Problem::kColor, "degk-eb"));
}

TEST(Sched, InjectedFailureIsIsolated) {
  const auto graph = shared_random_graph(200, 600, 3);
  std::vector<sched::JobSpec> specs;
  for (int j = 0; j < 6; ++j) {
    sched::JobSpec s;
    s.name = "mis/luby#" + std::to_string(j);
    s.graph_name = "er200";
    s.graph = graph;
    s.problem = sched::Problem::kMis;
    s.variant = "luby";
    s.seed = 42 + static_cast<std::uint64_t>(j);
    specs.push_back(std::move(s));
  }
  specs[2].inject_failure = true;
  specs[2].name = "injected";

  sched::BatchOptions opt;
  opt.jobs = 3;
  const sched::BatchReport report = sched::run_batch(specs, opt);
  EXPECT_EQ(report.results[2].status, sched::JobStatus::kFailed);
  EXPECT_NE(report.results[2].error.find("injected"), std::string::npos);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i == 2) continue;
    EXPECT_EQ(report.results[i].status, sched::JobStatus::kOk)
        << specs[i].name << ": " << report.results[i].error;
  }
}

TEST(Sched, UnknownVariantIsIsolatedFailure) {
  sched::JobSpec s;
  s.name = "bogus";
  s.graph = shared_random_graph(50, 120, 5);
  s.problem = sched::Problem::kColor;
  s.variant = "no-such-variant";
  const sched::JobResult res = sched::run_job(s);
  EXPECT_EQ(res.status, sched::JobStatus::kFailed);
  EXPECT_NE(res.error.find("unknown"), std::string::npos) << res.error;
}

TEST(Sched, ExpiredDeadlineCancelsCooperatively) {
  // run_job polls before the first round, so an already-expired deadline
  // cancels even jobs that would complete instantly — and a cancelled job
  // is kCancelled, never kFailed.
  const auto graph = shared_random_graph(5000, 20000, 17);
  for (const char* variant : {"luby", "gm", "vb", "spec"}) {
    sched::JobSpec s;
    s.name = variant;
    s.graph = graph;
    if (std::string(variant) == "gm") {
      s.problem = sched::Problem::kMM;
    } else if (std::string(variant) == "luby") {
      s.problem = sched::Problem::kMis;
    } else {
      s.problem = sched::Problem::kColor;
    }
    s.variant = variant;
    const sched::JobResult res =
        sched::run_job(s, /*deadline_ms=*/1e-6, /*verify=*/false);
    EXPECT_EQ(res.status, sched::JobStatus::kCancelled) << variant;
    EXPECT_FALSE(res.error.empty());
  }
}

TEST(Sched, BatchDeadlineLeavesNoFailures) {
  const std::vector<std::pair<std::string, std::shared_ptr<const CsrGraph>>>
      graphs = {{"er400", shared_random_graph(400, 1600, 23)}};
  const std::vector<sched::JobSpec> specs = sched::table1_matrix(graphs);
  sched::BatchOptions opt;
  opt.jobs = 4;
  opt.deadline_ms = 1e-6;
  opt.verify = false;
  const sched::BatchReport report = sched::run_batch(specs, opt);
  // Every job either finished before its first poll or was cancelled —
  // a deadline must never surface as kFailed.
  EXPECT_EQ(report.count(sched::JobStatus::kFailed), 0);
  EXPECT_GT(report.count(sched::JobStatus::kCancelled), 0);
}

TEST(Sched, CancelTokenRequestStopsAJob) {
  const auto graph = shared_random_graph(2000, 8000, 29);
  CancelToken token;
  token.request_cancel();
  ScopedCancel install(&token);
  EXPECT_THROW(mis_luby(*graph, 1), JobCancelled);
}

TEST(Sched, BatchReportJsonIsWellFormed) {
  const std::vector<std::pair<std::string, std::shared_ptr<const CsrGraph>>>
      graphs = {{"fig1", std::make_shared<const CsrGraph>(figure1_graph())}};
  const std::vector<sched::JobSpec> specs = sched::table1_matrix(graphs);
  sched::BatchOptions opt;
  opt.jobs = 2;
  const sched::BatchReport report = sched::run_batch(specs, opt);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"sbg_batch_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":["), std::string::npos);
  EXPECT_NE(json.find("\"result_hash\""), std::string::npos);
  // The per-job reports and the embedded global obs snapshot both close.
  EXPECT_NE(json.find("\"obs\":{\"sbg_report_version\":1"), std::string::npos);
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// ------------------------------------------------- determinism matrices --
// The seeded solvers and the RAND decomposition are pure functions of
// (graph, seed): byte-identical across thread counts AND when invoked from
// two concurrent caller threads (each its own OpenMP contention group).

struct SeededResults {
  std::vector<eid_t> rand_intra_offsets;
  std::vector<vid_t> rand_intra_adj;
  std::vector<MisState> luby_state;
  std::vector<std::uint32_t> jp_color;
  std::vector<vid_t> lmax_mate;

  static SeededResults compute(const CsrGraph& g, std::uint64_t seed) {
    SeededResults r;
    const RandDecomposition d = decompose_rand(g, 4, seed);
    r.rand_intra_offsets.assign(d.g_intra.offsets().begin(),
                                d.g_intra.offsets().end());
    r.rand_intra_adj.assign(d.g_intra.adjacency().begin(),
                            d.g_intra.adjacency().end());
    r.luby_state = mis_luby(g, seed).state;
    r.jp_color = color_jp(g, JpOrder::kRandom, seed).color;
    r.lmax_mate = mm_lmax(g, seed, LmaxWeights::kRandom).mate;
    return r;
  }

  bool operator==(const SeededResults& o) const = default;
};

TEST(Sched, SeededSolversByteIdenticalAcrossThreadsAndConcurrentCallers) {
  const CsrGraph g = random_graph(3000, 12000, 41);
  const std::uint64_t seed = 1234;
  const SeededResults reference = SeededResults::compute(g, seed);

  for (const int t : kThreadSweep) {
    {
      ScopedThreads threads(t);
      EXPECT_TRUE(SeededResults::compute(g, seed) == reference)
          << "single caller, threads=" << t;
    }
    // Two concurrent callers at this thread count. Each std::thread is its
    // own OpenMP contention group, so ScopedThreads inside only affects
    // that caller.
    std::atomic<int> mismatches{0};
    std::vector<std::thread> callers;
    for (int c = 0; c < 2; ++c) {
      callers.emplace_back([&] {
        ScopedThreads threads(t);
        for (int rep = 0; rep < 3; ++rep) {
          if (!(SeededResults::compute(g, seed) == reference)) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& th : callers) th.join();
    EXPECT_EQ(mismatches.load(), 0) << "concurrent callers, threads=" << t;
  }
}

TEST(Sched, RandDecompositionDeterministicUnderConcurrentJobs) {
  // Two different graphs decomposed concurrently, repeatedly: each job's
  // partition must match its own single-threaded reference — no cross-job
  // interference through shared state.
  const CsrGraph g1 = random_graph(2000, 8000, 51);
  const CsrGraph g2 = random_graph(1500, 9000, 52);
  const RandDecomposition ref1 = decompose_rand(g1, 4, 9);
  const RandDecomposition ref2 = decompose_rand(g2, 5, 9);

  std::atomic<int> mismatches{0};
  const auto check = [&](const CsrGraph& g, vid_t k,
                         const RandDecomposition& ref) {
    for (int rep = 0; rep < 4; ++rep) {
      const RandDecomposition d = decompose_rand(g, k, 9);
      const bool same =
          std::equal(d.g_intra.offsets().begin(), d.g_intra.offsets().end(),
                     ref.g_intra.offsets().begin(),
                     ref.g_intra.offsets().end()) &&
          std::equal(d.g_cross.adjacency().begin(),
                     d.g_cross.adjacency().end(),
                     ref.g_cross.adjacency().begin(),
                     ref.g_cross.adjacency().end());
      if (!same) mismatches.fetch_add(1);
    }
  };
  std::thread a([&] { check(g1, 4, ref1); });
  std::thread b([&] { check(g2, 5, ref2); });
  a.join();
  b.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace sbg::test
