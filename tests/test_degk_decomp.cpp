#include <gtest/gtest.h>

#include "core/degk.hpp"
#include "graph/builder.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

TEST(DegkDecomp, SplitsByDegreeThreshold) {
  const CsrGraph g = test::figure1_graph();
  const DegkDecomposition d = decompose_degk(g, 2, kDegkAll);
  // Figure 1(d): vertices of degree > 2 are b, c, d (ids 1, 2, 3).
  EXPECT_EQ(d.is_high, (std::vector<std::uint8_t>{0, 1, 1, 1, 0, 0, 0, 0}));
  EXPECT_EQ(d.num_high, 3u);
  // G_H: edges among {b, c, d}: b-c, c-d.
  EXPECT_EQ(d.g_high.num_edges(), 2u);
  // G_L: edges among low vertices: e-f, g-h.
  EXPECT_EQ(d.g_low.num_edges(), 2u);
  // Cross: a-b, a-c, d-e, d-f, b-g.
  EXPECT_EQ(d.g_cross.num_edges(), 5u);
  EXPECT_EQ(d.g_low_cross.num_edges(), 7u);
  EXPECT_EQ(d.g_high.num_edges() + d.g_low_cross.num_edges(), g.num_edges());
}

TEST(DegkDecomp, PiecesFlagControlsMaterialization) {
  const CsrGraph g = test::random_graph(300, 900, 5);
  const DegkDecomposition d = decompose_degk(g, 2, kDegkLow);
  EXPECT_EQ(d.g_high.num_vertices(), 0u);   // not materialized
  EXPECT_EQ(d.g_cross.num_vertices(), 0u);  // not materialized
  EXPECT_EQ(d.g_low.num_vertices(), g.num_vertices());
}

TEST(DegkDecomp, LowSubgraphIsPathsAndCycles) {
  for (const auto& c : test::shape_sweep()) {
    const CsrGraph g = c.make();
    const DegkDecomposition d = decompose_degk(g, 2, kDegkLow);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      // Induced degree can only shrink, so G_L has max degree <= 2.
      ASSERT_LE(d.g_low.degree(v), 2u) << c.name;
      if (d.is_high[v]) ASSERT_EQ(d.g_low.degree(v), 0u) << c.name;
    }
  }
}

TEST(DegkDecomp, ThresholdSweepIsMonotone) {
  const CsrGraph g = test::random_graph(1000, 5000, 7);
  vid_t prev_high = g.num_vertices();
  for (vid_t k = 1; k <= 16; k *= 2) {
    const DegkDecomposition d = decompose_degk(g, k, kDegkHigh);
    EXPECT_LE(d.num_high, prev_high) << "k=" << k;
    prev_high = d.num_high;
    // High vertices really have degree > k in G.
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(d.is_high[v] != 0, g.degree(v) > k);
    }
  }
}

TEST(DegkDecomp, AllLowWhenThresholdHuge) {
  const CsrGraph g = test::random_graph(200, 600, 9);
  const DegkDecomposition d = decompose_degk(g, 10'000, kDegkAll);
  EXPECT_EQ(d.num_high, 0u);
  EXPECT_EQ(d.g_low.num_edges(), g.num_edges());
  EXPECT_EQ(d.g_high.num_edges(), 0u);
  EXPECT_EQ(d.g_cross.num_edges(), 0u);
}

}  // namespace
}  // namespace sbg
