// src/core/env.hpp — the shared SBG_* knob parser. The strict helpers
// (bytes / get_long / get_double) throw InputError naming the variable;
// the soft helper (long_or_warn) warns on stderr and falls back. The
// regression anchors: the byte parser must REJECT suffix multiplications
// that overflow 64 bits (the old copies in serve and ooc silently
// wrapped), and the soft knobs (SBG_OBS_PERIOD_MS, SBG_THREADS) must
// diagnose garbage instead of silently treating it as zero via atoi.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "core/env.hpp"
#include "graph/csr.hpp"
#include "parallel/thread_env.hpp"

namespace sbg {
namespace {

constexpr const char* kVar = "SBG_TEST_ENV_VAR";

class EnvParsing : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv(kVar); }
  void TearDown() override { unsetenv(kVar); }

  void set(const char* value) { ASSERT_EQ(setenv(kVar, value, 1), 0); }
};

TEST_F(EnvParsing, BytesUnsetAndEmptyFallBack) {
  EXPECT_EQ(env::bytes(kVar, 123), 123u);
  set("");
  EXPECT_EQ(env::bytes(kVar, 123), 123u);
}

TEST_F(EnvParsing, BytesParsesPlainAndSuffixedValues) {
  set("1234");
  EXPECT_EQ(env::bytes(kVar, 0), 1234u);
  set("512K");
  EXPECT_EQ(env::bytes(kVar, 0), 512u * 1024);
  set("512k");
  EXPECT_EQ(env::bytes(kVar, 0), 512u * 1024);
  set("3M");
  EXPECT_EQ(env::bytes(kVar, 0), 3u * 1024 * 1024);
  set("2G");
  EXPECT_EQ(env::bytes(kVar, 0), 2ull * 1024 * 1024 * 1024);
  set("0");
  EXPECT_EQ(env::bytes(kVar, 7), 0u);
}

TEST_F(EnvParsing, BytesRejectsGarbage) {
  for (const char* bad : {"nonsense", "12Q", "1.5G", "G", "12 34", "0x10"}) {
    set(bad);
    EXPECT_THROW((void)env::bytes(kVar, 0), InputError) << bad;
  }
}

TEST_F(EnvParsing, BytesRejectsNegativeAndSigned) {
  set("-1");
  EXPECT_THROW((void)env::bytes(kVar, 0), InputError);
  set("-512M");
  EXPECT_THROW((void)env::bytes(kVar, 0), InputError);
  set("+1");
  EXPECT_THROW((void)env::bytes(kVar, 0), InputError);
}

TEST_F(EnvParsing, BytesRejectsOverflowInsteadOfWrapping) {
  // The historical bug: 99999999999999999G wrapped to a small number and
  // silently shrank the budget it configured. Now every suffixed value
  // whose multiplication cannot be represented must throw.
  set("99999999999999999G");
  EXPECT_THROW((void)env::bytes(kVar, 0), InputError);
  set("18446744073709551616");  // 2^64, overflows even unsuffixed
  EXPECT_THROW((void)env::bytes(kVar, 0), InputError);
  set("17179869184G");  // 2^34 * 2^30 = 2^64
  EXPECT_THROW((void)env::bytes(kVar, 0), InputError);
  // The largest representable suffixed values still parse.
  set("16777215G");
  EXPECT_EQ(env::bytes(kVar, 0), 16777215ull << 30);
}

TEST_F(EnvParsing, GetLongParsesAndBoundsChecks) {
  EXPECT_EQ(env::get_long(kVar, 5, 0, 100), 5);
  set("42");
  EXPECT_EQ(env::get_long(kVar, 5, 0, 100), 42);
  set("-3");
  EXPECT_EQ(env::get_long(kVar, 5, -10, 100), -3);
  set("101");
  EXPECT_THROW((void)env::get_long(kVar, 5, 0, 100), InputError);
  set("abc");
  EXPECT_THROW((void)env::get_long(kVar, 5, 0, 100), InputError);
  set("12abc");
  EXPECT_THROW((void)env::get_long(kVar, 5, 0, 100), InputError);
}

TEST_F(EnvParsing, GetDoubleParsesAndRejectsNegative) {
  EXPECT_DOUBLE_EQ(env::get_double(kVar, 0.25), 0.25);
  set("0.5");
  EXPECT_DOUBLE_EQ(env::get_double(kVar, 0.25), 0.5);
  set("-0.5");
  EXPECT_THROW((void)env::get_double(kVar, 0.25), InputError);
  set("half");
  EXPECT_THROW((void)env::get_double(kVar, 0.25), InputError);
}

TEST_F(EnvParsing, LongOrWarnFallsBackOnGarbageWithoutThrowing) {
  set("abc");
  EXPECT_EQ(env::long_or_warn(kVar, 17, 1, 100), 17);
  set("0");  // below min: warned, not accepted
  EXPECT_EQ(env::long_or_warn(kVar, 17, 1, 100), 17);
  set("99");
  EXPECT_EQ(env::long_or_warn(kVar, 17, 1, 100), 99);
  unsetenv(kVar);
  EXPECT_EQ(env::long_or_warn(kVar, 17, 1, 100), 17);
}

TEST_F(EnvParsing, LongOrWarnDiagnosesGarbageOnStderr) {
  set("abc");
  ::testing::internal::CaptureStderr();
  (void)env::long_or_warn(kVar, 17, 1, 100);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("warning:"), std::string::npos) << err;
  EXPECT_NE(err.find(kVar), std::string::npos) << err;
  EXPECT_NE(err.find("abc"), std::string::npos) << err;
}

TEST(ThreadEnv, GarbageThreadCountWarnsAndKeepsDefault) {
  // SBG_THREADS=abc used to atoi() to zero and be silently ignored; now it
  // must produce a diagnostic and leave the thread count untouched.
  const int before = num_threads();
  ASSERT_EQ(setenv("SBG_THREADS", "abc", 1), 0);
  ::testing::internal::CaptureStderr();
  const int after = apply_thread_env();
  const std::string err = ::testing::internal::GetCapturedStderr();
  unsetenv("SBG_THREADS");
  EXPECT_EQ(after, before);
  EXPECT_NE(err.find("warning:"), std::string::npos) << err;
  EXPECT_NE(err.find("SBG_THREADS"), std::string::npos) << err;
}

TEST(ThreadEnv, ValidThreadCountStillApplies) {
  const int before = num_threads();
  ASSERT_EQ(setenv("SBG_THREADS", "2", 1), 0);
  EXPECT_EQ(apply_thread_env(), 2);
  unsetenv("SBG_THREADS");
  set_num_threads(before);
}

}  // namespace
}  // namespace sbg
