// Minimal JSON parser shared by the observability tests — just enough JSON
// to round-trip the report/exposition schemas (objects, arrays, strings,
// numbers, bools, null). Throws std::runtime_error on malformed input, so
// tests double as structural validators for every JSON writer in src/obs.
#pragma once

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace sbg::test {

struct Json {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    ws();
    if (i_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at " + std::to_string(i_) +
                             ": " + why);
  }

  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) fail("unexpected end");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  bool eat(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (s_.compare(i_, len, lit) == 0) {
      i_ += len;
      return true;
    }
    return false;
  }

  std::string string_lit() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[i_++];
      if (c == '\\') {
        const char esc = s_[i_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': i_ += 4; out += '?'; break;  // tests never need these
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    ++i_;
    return out;
  }

  Json value() {
    ws();
    Json v;
    const char c = peek();
    if (c == '{') {
      v.type = Json::kObject;
      ++i_;
      ws();
      if (peek() == '}') { ++i_; return v; }
      while (true) {
        ws();
        std::string key = string_lit();
        ws();
        expect(':');
        v.object.emplace(std::move(key), value());
        ws();
        if (peek() == ',') { ++i_; continue; }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.type = Json::kArray;
      ++i_;
      ws();
      if (peek() == ']') { ++i_; return v; }
      while (true) {
        v.array.push_back(value());
        ws();
        if (peek() == ',') { ++i_; continue; }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = Json::kString;
      v.string = string_lit();
      return v;
    }
    if (eat("true")) { v.type = Json::kBool; v.boolean = true; return v; }
    if (eat("false")) { v.type = Json::kBool; v.boolean = false; return v; }
    if (eat("null")) { v.type = Json::kNull; return v; }
    // number
    std::size_t end = i_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == i_) fail("unexpected character");
    v.type = Json::kNumber;
    v.number = std::stod(s_.substr(i_, end - i_));
    i_ = end;
    return v;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace sbg::test
