#include <gtest/gtest.h>

#include "core/rand.hpp"
#include "graph/builder.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

TEST(RandDecomp, LabelsInRangeAndDeterministic) {
  const CsrGraph g = test::random_graph(1000, 3000, 5);
  const RandDecomposition a = decompose_rand(g, 10, 42);
  const RandDecomposition b = decompose_rand(g, 10, 42);
  EXPECT_EQ(a.part, b.part);
  for (const vid_t p : a.part) ASSERT_LT(p, 10u);
  const RandDecomposition c = decompose_rand(g, 10, 43);
  EXPECT_NE(a.part, c.part);
}

TEST(RandDecomp, IntraAndCrossPartitionEveryEdge) {
  const CsrGraph g = test::random_graph(500, 2000, 7);
  const RandDecomposition d = decompose_rand(g, 4, 1);
  EXPECT_EQ(d.g_intra.num_edges() + d.g_cross.num_edges(), g.num_edges());
  d.g_intra.validate();
  d.g_cross.validate();
  // Intra edges join same-partition endpoints; cross edges don't.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const vid_t v : d.g_intra.neighbors(u)) {
      ASSERT_EQ(d.part[u], d.part[v]);
    }
    for (const vid_t v : d.g_cross.neighbors(u)) {
      ASSERT_NE(d.part[u], d.part[v]);
    }
  }
}

TEST(RandDecomp, MorePartitionsMeansSparserIntra) {
  const CsrGraph g = test::random_graph(2000, 10'000, 9);
  const auto intra2 = decompose_rand(g, 2, 4).g_intra.num_edges();
  const auto intra10 = decompose_rand(g, 10, 4).g_intra.num_edges();
  const auto intra50 = decompose_rand(g, 50, 4).g_intra.num_edges();
  EXPECT_GT(intra2, intra10);
  EXPECT_GT(intra10, intra50);
  // Expectation: ~1/k of edges stay intra.
  EXPECT_NEAR(static_cast<double>(intra10) /
                  static_cast<double>(g.num_edges()),
              0.1, 0.05);
}

TEST(RandDecomp, SinglePartitionKeepsEverything) {
  const CsrGraph g = test::random_graph(300, 900, 3);
  const RandDecomposition d = decompose_rand(g, 1, 5);
  EXPECT_EQ(d.g_intra.num_edges(), g.num_edges());
  EXPECT_EQ(d.g_cross.num_edges(), 0u);
}

TEST(RandDecomp, HeuristicTracksAverageDegree) {
  const CsrGraph sparse = build_graph(gen_path(1000), false);   // avg ~2
  const CsrGraph dense = build_graph(gen_complete(80), false);  // avg 79
  EXPECT_EQ(rand_partition_heuristic(sparse), 2u);
  EXPECT_EQ(rand_partition_heuristic(dense), 100u);  // kron-class rule
  const CsrGraph mid = test::random_graph(1000, 5000, 2);       // avg ~10
  const vid_t k = rand_partition_heuristic(mid);
  EXPECT_GE(k, 8u);
  EXPECT_LE(k, 12u);
}

}  // namespace
}  // namespace sbg
