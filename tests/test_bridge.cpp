#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/bridge.hpp"
#include "graph/builder.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

using EdgeSet = std::set<std::pair<vid_t, vid_t>>;

EdgeSet canonical(const std::vector<std::pair<vid_t, vid_t>>& edges) {
  EdgeSet out;
  for (auto [a, b] : edges) {
    out.emplace(std::min(a, b), std::max(a, b));
  }
  return out;
}

class BothWalks : public ::testing::TestWithParam<BridgeAlgo> {};

TEST_P(BothWalks, PathIsAllBridges) {
  const CsrGraph g = build_graph(gen_path(100), false);
  EXPECT_EQ(find_bridges(g, GetParam()).size(), 99u);
}

TEST_P(BothWalks, CycleHasNone) {
  const CsrGraph g = build_graph(gen_cycle(100), false);
  EXPECT_TRUE(find_bridges(g, GetParam()).empty());
}

TEST_P(BothWalks, GridHasNone) {
  const CsrGraph g = build_graph(gen_grid(8, 8), false);
  EXPECT_TRUE(find_bridges(g, GetParam()).empty());
}

TEST_P(BothWalks, Figure1BridgesAreBGandGHandCD) {
  // Paper Figure 1(b): bridges b-g, g-h, c-d split G into the two
  // triangles plus singletons {g}, {h}.
  const CsrGraph g = test::figure1_graph();
  const EdgeSet found = canonical(find_bridges(g, GetParam()));
  const EdgeSet expect{{1, 6}, {6, 7}, {2, 3}};
  EXPECT_EQ(found, expect);
}

TEST_P(BothWalks, MatchesTarjanOnRandomSweep) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // Sparse graphs have many bridges; denser ones few.
    const eid_t m = 300 + 200 * seed;
    const CsrGraph g = test::random_graph(500, m, seed);
    const EdgeSet expect = canonical(bridges_reference(g));
    const EdgeSet found = canonical(find_bridges(g, GetParam()));
    EXPECT_EQ(found, expect) << "seed=" << seed;
  }
}

TEST_P(BothWalks, MatchesTarjanOnStructuredGraphs) {
  for (const auto& c : test::shape_sweep()) {
    const CsrGraph g = c.make();
    EXPECT_EQ(canonical(find_bridges(g, GetParam())),
              canonical(bridges_reference(g)))
        << c.name;
  }
}

TEST_P(BothWalks, HandlesDisconnectedInput) {
  EdgeList el;
  el.num_vertices = 9;
  el.add(0, 1);  // bridge in component 1
  el.add(2, 3);  // triangle: no bridges
  el.add(3, 4);
  el.add(4, 2);
  el.add(5, 6);  // path component: 2 bridges
  el.add(6, 7);
  const CsrGraph g = build_graph(std::move(el), /*connect=*/false);
  EXPECT_EQ(find_bridges(g, GetParam()).size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Walks, BothWalks,
                         ::testing::Values(BridgeAlgo::kNaiveWalk,
                                           BridgeAlgo::kShortcutWalk),
                         [](const auto& info) {
                           return info.param == BridgeAlgo::kNaiveWalk
                                      ? "naive"
                                      : "shortcut";
                         });

TEST(BridgeDecomposition, Figure1ComponentsMatchPaper) {
  const CsrGraph g = test::figure1_graph();
  const BridgeDecomposition d = decompose_bridge(g);
  EXPECT_EQ(d.bridges.size(), 3u);
  // G - B: triangles {a,b,c} and {d,e,f}; g and h isolated.
  EXPECT_EQ(d.g_components.num_edges(), 6u);
  EXPECT_EQ(d.components.count, 4u);
  EXPECT_EQ(d.components.label[0], d.components.label[1]);
  EXPECT_EQ(d.components.label[3], d.components.label[5]);
  EXPECT_NE(d.components.label[0], d.components.label[3]);
  // Bridge vertices: b, c, d, g, h.
  EXPECT_EQ(d.is_bridge_vertex,
            (std::vector<std::uint8_t>{0, 1, 1, 1, 0, 0, 1, 1}));
}

TEST(BridgeDecomposition, RemovingBridgesPreservesEdgeCount) {
  const CsrGraph g = test::random_graph(800, 1200, 33);
  const BridgeDecomposition d = decompose_bridge(g);
  EXPECT_EQ(d.g_components.num_edges() + d.bridges.size(), g.num_edges());
  d.g_components.validate();
  // No bridge survives in g_components.
  for (const auto& [a, b] : d.bridges) {
    EXPECT_FALSE(d.g_components.has_edge(a, b));
  }
}

TEST(BridgeDecomposition, TreeDecomposesToSingletons) {
  const CsrGraph g = build_graph(gen_random_tree(200, 3), false);
  const BridgeDecomposition d = decompose_bridge(g);
  EXPECT_EQ(d.bridges.size(), 199u);
  EXPECT_EQ(d.g_components.num_edges(), 0u);
  EXPECT_EQ(d.components.count, 200u);
}

}  // namespace
}  // namespace sbg
