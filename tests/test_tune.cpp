// sbg::tune — decision table pins, selector properties, online refinement,
// and telemetry persistence (ISSUE 7 satellite battery).
//
// The decision-table tests pin the selector's choice on every Table II
// fingerprint row: these are the paper's datasets, so a pick changing is a
// behavioural change someone must have intended. Boundary tests perturb
// fingerprints across each threshold so the rule edges are explicit.
// Refinement tests drive the measure -> tune -> lock-in loop with fake
// telemetry; persistence tests mirror the .sbgc degrade-to-reparse
// guarantee for the history JSON. Everything that touches graphs runs
// under the t in {1,2,8} sweep.
#include "tune/tune.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "parallel/thread_env.hpp"
#include "sched/sched.hpp"
#include "test_helpers.hpp"
#include "test_json.hpp"

namespace sbg {
namespace {

namespace fs = std::filesystem;
using tune::Choice;
using tune::Fingerprint;
using tune::Selector;
using tune::TelemetryStore;
using tune::VariantKind;

constexpr int kThreadSweep[] = {1, 2, 8};

constexpr sched::Problem kProblems[] = {
    sched::Problem::kMM, sched::Problem::kColor, sched::Problem::kMis};

/// RAII scratch dir per test (same shape as test_ingest's).
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const char* name) {
    path = fs::temp_directory_path() / name;
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// A fingerprint that hits the moderate rule for easy perturbation.
Fingerprint moderate_fp() {
  Fingerprint fp;
  fp.num_vertices = 100'000;
  fp.avg_degree = 8.0;
  fp.num_arcs = 800'000;
  fp.pct_deg2 = 10.0;
  fp.pct_bridges = 2.0;
  return fp;
}

void expect_valid(const Choice& c, sched::Problem p, const std::string& ctx) {
  bool registered = false;
  for (const std::string& v : Selector::candidates(p)) {
    registered |= v == c.variant;
  }
  EXPECT_TRUE(registered) << ctx << ": variant " << c.variant;
  EXPECT_GE(c.k, 2u) << ctx;
  EXPECT_GE(c.partitions, 1) << ctx;
  EXPECT_GE(c.threads, 1) << ctx;
  EXPECT_LE(c.threads, max_threads()) << ctx;
  EXPECT_FALSE(c.reason.empty()) << ctx;
}

// ------------------------------------------------------- decision table --

TEST(TuneTable, PinsEveryTableTwoRow) {
  // The expected decomposition family per Table II dataset, from the
  // DESIGN.md §10 rules. MM on the kron rows is the one problem-dependent
  // cell: RAND k=100 for matching (Section III-C), baselines for
  // COLOR/MIS where the dense graph converges in few rounds anyway.
  const struct {
    const char* name;
    VariantKind kind;    // for COLOR and MIS (and MM unless overridden)
    VariantKind mm_kind;
  } kExpected[] = {
      {"c-73", VariantKind::kRand, VariantKind::kRand},
      {"lp1", VariantKind::kBridge, VariantKind::kBridge},
      {"Cit-Patents", VariantKind::kRand, VariantKind::kRand},
      {"coAuthorsCiteseer", VariantKind::kRand, VariantKind::kRand},
      {"germany-osm", VariantKind::kDegk, VariantKind::kDegk},
      {"road-central", VariantKind::kDegk, VariantKind::kDegk},
      {"kron-g500-logn20", VariantKind::kBaseline, VariantKind::kRand},
      {"kron-g500-logn21", VariantKind::kBaseline, VariantKind::kRand},
      {"rgg-n-2-23-s0", VariantKind::kRand, VariantKind::kRand},
      {"rgg-n-2-24-s0", VariantKind::kRand, VariantKind::kRand},
      {"web-Google", VariantKind::kRand, VariantKind::kRand},
      {"webbase-1M", VariantKind::kBridge, VariantKind::kBridge},
  };
  ASSERT_EQ(std::size(kExpected), dataset_table().size());
  for (const auto& row : kExpected) {
    const Fingerprint fp = tune::fingerprint_of(dataset_row(row.name));
    for (const sched::Problem p : kProblems) {
      const Choice c = Selector::table_choice(fp, p);
      const VariantKind want =
          p == sched::Problem::kMM ? row.mm_kind : row.kind;
      EXPECT_EQ(tune::to_string(want), tune::to_string(c.kind))
          << row.name << "/" << to_string(p) << " -> " << c.variant << " ("
          << c.reason << ")";
      expect_valid(c, p, row.name);
    }
  }
}

TEST(TuneTable, ConcreteVariantNamesPerProblem) {
  // Kind pins above, exact registry names here for one row of each rule.
  const Fingerprint lp1 = tune::fingerprint_of(dataset_row("lp1"));
  EXPECT_EQ("bridge-gm",
            Selector::table_choice(lp1, sched::Problem::kMM).variant);
  EXPECT_EQ("bridge-vb",
            Selector::table_choice(lp1, sched::Problem::kColor).variant);
  EXPECT_EQ("bridge",
            Selector::table_choice(lp1, sched::Problem::kMis).variant);

  const Fingerprint osm = tune::fingerprint_of(dataset_row("germany-osm"));
  EXPECT_EQ("degk-gm",
            Selector::table_choice(osm, sched::Problem::kMM).variant);
  EXPECT_EQ("degk-vb",
            Selector::table_choice(osm, sched::Problem::kColor).variant);
  EXPECT_EQ("degk2",
            Selector::table_choice(osm, sched::Problem::kMis).variant);

  const Fingerprint kron =
      tune::fingerprint_of(dataset_row("kron-g500-logn20"));
  EXPECT_EQ("rand-gm",
            Selector::table_choice(kron, sched::Problem::kMM).variant);
  EXPECT_EQ("vb",
            Selector::table_choice(kron, sched::Problem::kColor).variant);
  EXPECT_EQ("luby",
            Selector::table_choice(kron, sched::Problem::kMis).variant);
}

TEST(TuneTable, RandPartitionsFollowThePaperHeuristic) {
  // Moderate density: k tracks the average degree (rgg rows: 15.1, 15.8).
  const Fingerprint rgg = tune::fingerprint_of(dataset_row("rgg-n-2-23-s0"));
  EXPECT_EQ(15, Selector::table_choice(rgg, sched::Problem::kMM).partitions);
  // kron density: the paper's k = 100 (Section III-C).
  const Fingerprint kron =
      tune::fingerprint_of(dataset_row("kron-g500-logn20"));
  EXPECT_EQ(100, Selector::table_choice(kron, sched::Problem::kMM).partitions);
}

TEST(TuneTable, BoundaryFingerprints) {
  for (const sched::Problem p : kProblems) {
    // %bridges threshold (30.0): at the line BRIDGE, just under falls
    // through to moderate RAND.
    Fingerprint fp = moderate_fp();
    fp.pct_bridges = 30.0;
    EXPECT_EQ(VariantKind::kBridge, Selector::table_choice(fp, p).kind);
    fp.pct_bridges = 29.99;
    EXPECT_EQ(VariantKind::kRand, Selector::table_choice(fp, p).kind);

    // Low-degree rule needs BOTH %deg<=2 >= 45 and avg degree <= 4.
    fp = moderate_fp();
    fp.pct_deg2 = 45.0;
    fp.avg_degree = 4.0;
    EXPECT_EQ(VariantKind::kDegk, Selector::table_choice(fp, p).kind);
    fp.avg_degree = 4.01;
    EXPECT_EQ(VariantKind::kRand, Selector::table_choice(fp, p).kind);
    fp.avg_degree = 4.0;
    fp.pct_deg2 = 44.99;
    EXPECT_EQ(VariantKind::kRand, Selector::table_choice(fp, p).kind);

    // Density threshold (32.0): dense is rand-gm for MM, baseline
    // otherwise; just under is moderate RAND for every problem.
    fp = moderate_fp();
    fp.avg_degree = 32.0;
    const Choice dense = Selector::table_choice(fp, p);
    if (p == sched::Problem::kMM) {
      EXPECT_EQ("rand-gm", dense.variant);
      EXPECT_EQ(100, dense.partitions);
    } else {
      EXPECT_EQ(VariantKind::kBaseline, dense.kind);
    }
    fp.avg_degree = 31.99;
    EXPECT_EQ(VariantKind::kRand, Selector::table_choice(fp, p).kind);

    // Tiny rule: below 256 vertices (or no arcs at all) -> baseline.
    fp = moderate_fp();
    fp.num_vertices = 255;
    EXPECT_EQ(VariantKind::kBaseline, Selector::table_choice(fp, p).kind);
    fp.num_vertices = 256;
    EXPECT_EQ(VariantKind::kRand, Selector::table_choice(fp, p).kind);
    fp = moderate_fp();
    fp.num_arcs = 0;
    EXPECT_EQ(VariantKind::kBaseline, Selector::table_choice(fp, p).kind);
  }
}

TEST(TuneTable, AnyFingerprintYieldsValidChoice) {
  // Property test: random (even implausible) fingerprints always resolve
  // to a registered variant with k>=2, partitions>=1, threads>=1 — with
  // and without a history store attached.
  std::mt19937_64 rng(20170529);
  std::uniform_real_distribution<double> pct(0.0, 100.0);
  std::uniform_real_distribution<double> deg(0.0, 90.0);
  TelemetryStore empty;
  for (int i = 0; i < 500; ++i) {
    Fingerprint fp;
    fp.num_vertices = rng() % 3'000'000;
    fp.avg_degree = deg(rng);
    fp.num_arcs = static_cast<std::uint64_t>(
        fp.avg_degree * static_cast<double>(fp.num_vertices));
    fp.pct_deg2 = pct(rng);
    fp.pct_bridges = pct(rng);
    for (const sched::Problem p : kProblems) {
      expect_valid(Selector::table_choice(fp, p), p, "table");
      expect_valid(Selector(&empty).choose(fp, p, "prop-key"), p, "stored");
    }
  }
}

// ---------------------------------------------------- online refinement --

TEST(TuneRefine, SwitchesToThreeTimesFasterVariantWithinNineRuns) {
  // The heuristic's pick costs 3 ms, one rival costs 1 ms: driving the
  // measure -> record loop must flip the selector to the rival within
  // candidates x min_runs + 1 = 9 runs, and keep it there.
  for (const sched::Problem p : kProblems) {
    const Fingerprint fp = moderate_fp();
    const std::string key = "refine-key";
    const Choice table = Selector::table_choice(fp, p);
    const std::string fast = Selector::candidates(p)[0] == table.variant
                                 ? Selector::candidates(p)[1]
                                 : Selector::candidates(p)[0];
    TelemetryStore store;
    const Selector sel(&store);
    int switched_at = -1;
    for (int run = 1; run <= 9; ++run) {
      const Choice c = sel.choose(fp, p, key);
      expect_valid(c, p, "refine");
      store.record(key, p, c.variant, c.variant == fast ? 1e-3 : 3e-3, 10.0);
      if (c.from_telemetry && c.variant == fast && switched_at < 0) {
        switched_at = run;
      }
    }
    EXPECT_GT(switched_at, 0) << to_string(p)
                              << ": never locked in the 3x-faster variant";
    // Once locked in, the choice is stable (no flapping on equal history).
    const Choice locked = sel.choose(fp, p, key);
    EXPECT_EQ(fast, locked.variant) << to_string(p);
    EXPECT_TRUE(locked.from_telemetry);
  }
}

TEST(TuneRefine, ExplorationVisitsEveryCandidateBeforeLockIn) {
  const Fingerprint fp = moderate_fp();
  const sched::Problem p = sched::Problem::kMM;
  TelemetryStore store;
  const Selector sel(&store);
  std::vector<std::string> visited;
  for (int run = 0; run < 8; ++run) {  // 4 candidates x min_runs=2
    const Choice c = sel.choose(fp, p, "explore-key");
    visited.push_back(c.variant);
    store.record("explore-key", p, c.variant, 1e-3, 5.0);
  }
  for (const std::string& v : Selector::candidates(p)) {
    EXPECT_EQ(2, std::count(visited.begin(), visited.end(), v)) << v;
  }
}

TEST(TuneRefine, MarginalWinStaysWithTheTablePick) {
  // 5% faster does not clear the 0.9 lock-in margin: the table pick holds
  // (anti-flapping), and the choice is marked telemetry-confirmed.
  const Fingerprint fp = moderate_fp();
  const sched::Problem p = sched::Problem::kColor;
  const Choice table = Selector::table_choice(fp, p);
  TelemetryStore store;
  for (const std::string& v : Selector::candidates(p)) {
    for (int r = 0; r < 2; ++r) {
      store.record("margin-key", p, v, v == table.variant ? 1.00 : 0.95, 5.0);
    }
  }
  const Choice c = Selector(&store).choose(fp, p, "margin-key");
  EXPECT_EQ(table.variant, c.variant);
  EXPECT_FALSE(c.from_telemetry);
}

TEST(TuneRefine, EwmaMathAndThreadSafety) {
  TelemetryStore store;
  store.record("k", sched::Problem::kMM, "gm", 1.0, 10.0);
  store.record("k", sched::Problem::kMM, "gm", 2.0, 20.0);
  const auto s = store.stats("k", sched::Problem::kMM, "gm");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(2u, s->runs);
  // First sample seeds; second moves by alpha = 0.3.
  EXPECT_DOUBLE_EQ(1.0 + 0.3 * (2.0 - 1.0), s->ewma_seconds);
  EXPECT_DOUBLE_EQ(10.0 + 0.3 * (20.0 - 10.0), s->ewma_rounds);
  // Non-finite and negative samples are dropped, not recorded.
  store.record("k", sched::Problem::kMM, "gm",
               std::numeric_limits<double>::quiet_NaN(), 1.0);
  store.record("k", sched::Problem::kMM, "gm", -1.0, 1.0);
  EXPECT_EQ(2u, store.stats("k", sched::Problem::kMM, "gm")->runs);

#pragma omp parallel for
  for (int i = 0; i < 64; ++i) {
    store.record("mt", sched::Problem::kMis, "luby", 1e-3, 1.0);
  }
  EXPECT_EQ(64u, store.stats("mt", sched::Problem::kMis, "luby")->runs);
}

// -------------------------------------------------- persistence + decay --

TEST(TuneStore, JsonRoundTripPreservesEntries) {
  TelemetryStore store;
  store.record("g|100|200", sched::Problem::kMM, "gm", 0.5, 12.0);
  store.record("g|100|200", sched::Problem::kMM, "gm", 0.7, 14.0);
  store.record("weird\"key\n|1|2", sched::Problem::kColor, "vb", 0.25, 3.0);

  const std::string body = store.to_json();
  // Structurally valid JSON with the documented schema.
  const test::Json doc = test::JsonParser(body).parse();
  EXPECT_EQ(1.0, doc.at("sbg_tune_version").number);
  EXPECT_EQ(2u, doc.at("entries").array.size());

  TelemetryStore copy;
  ASSERT_TRUE(copy.from_json(body));
  EXPECT_EQ(2u, copy.size());
  const auto s = copy.stats("g|100|200", sched::Problem::kMM, "gm");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(2u, s->runs);
  EXPECT_DOUBLE_EQ(0.5 + 0.3 * (0.7 - 0.5), s->ewma_seconds);
  const auto w =
      copy.stats("weird\"key\n|1|2", sched::Problem::kColor, "vb");
  ASSERT_TRUE(w.has_value()) << "escaped keys must round-trip";
}

TEST(TuneStore, SaveLoadRoundTripOnDisk) {
  ScratchDir dir("sbg_tune_roundtrip");
  const std::string path = (dir.path / "sbg_tune.json").string();
  TelemetryStore store;
  store.record("g|10|20", sched::Problem::kMis, "rand", 0.125, 7.0);
  EXPECT_TRUE(store.dirty());
  store.save(path);
  EXPECT_FALSE(store.dirty());

  TelemetryStore loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(1u, loaded.size());
  EXPECT_EQ(0.125,
            loaded.stats("g|10|20", sched::Problem::kMis, "rand")->ewma_seconds);
  // No stray temp files left behind by the atomic write.
  int files = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir.path)) {
    ++files;
  }
  EXPECT_EQ(1, files);
}

TEST(TuneStore, CorruptHistoryDegradesToStaticTable) {
  // Mirror of the .sbgc degrade-to-reparse tests: any malformed history
  // leaves the store empty (selector falls back to the table) — never a
  // throw, never a partial load.
  TelemetryStore good;
  good.record("g|1|2", sched::Problem::kMM, "gm", 1.0, 1.0);
  const std::string valid = good.to_json();

  const std::vector<std::string> kCorrupt = {
      "",
      "not json at all",
      "{}",
      "[1,2,3]",
      valid.substr(0, valid.size() / 2),             // truncated mid-entry
      valid + "trailing garbage",
      "{\"sbg_tune_version\":2,\"entries\":[]}",     // future version
      "{\"sbg_tune_version\":1,\"entries\":{}}",     // wrong container
      "{\"sbg_tune_version\":1,\"entries\":[{\"key\":\"k\",\"runs\":-3,"
      "\"ewma_seconds\":1,\"ewma_rounds\":1}]}",     // negative runs
      "{\"sbg_tune_version\":1,\"entries\":[{\"key\":\"k\",\"runs\":1,"
      "\"ewma_seconds\":null,\"ewma_rounds\":1}]}",  // poisoned ewma
  };
  for (const std::string& text : kCorrupt) {
    TelemetryStore store;
    store.record("preexisting", sched::Problem::kMM, "gm", 1.0, 1.0);
    EXPECT_FALSE(store.from_json(text))
        << "accepted: " << text.substr(0, 60);
    EXPECT_EQ(0u, store.size()) << "partial load from: " << text.substr(0, 60);
    // A selector over the degraded store answers exactly like the table.
    const Fingerprint fp = moderate_fp();
    for (const sched::Problem p : kProblems) {
      const Choice c = Selector(&store).choose(fp, p, "any-key");
      EXPECT_EQ(Selector::table_choice(fp, p).variant, c.variant);
      EXPECT_FALSE(c.from_telemetry);
    }
  }

  // Same via load(): a corrupt file on disk and a missing file both
  // degrade to empty and report false.
  ScratchDir dir("sbg_tune_corrupt");
  const std::string path = (dir.path / "sbg_tune.json").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << valid.substr(0, valid.size() - 5);
  }
  TelemetryStore store;
  EXPECT_FALSE(store.load(path));
  EXPECT_EQ(0u, store.size());
  EXPECT_FALSE(store.load((dir.path / "does_not_exist.json").string()));
}

TEST(TuneStore, DefaultStorePathFollowsEnv) {
  const char* old_tune = std::getenv("SBG_TUNE_PATH");
  const std::string saved_tune = old_tune ? old_tune : "";
  setenv("SBG_TUNE_PATH", "/tmp/explicit_tune.json", 1);
  EXPECT_EQ("/tmp/explicit_tune.json", tune::default_store_path());
  unsetenv("SBG_TUNE_PATH");
  // Falls back to SBG_CACHE_DIR/sbg_tune.json, mirroring the .sbgc cache.
  const char* old_cache = std::getenv("SBG_CACHE_DIR");
  const std::string saved_cache = old_cache ? old_cache : "";
  setenv("SBG_CACHE_DIR", "/tmp/tunecache", 1);
  EXPECT_EQ(std::string("/tmp/tunecache") + "/sbg_tune.json",
            tune::default_store_path());
  if (old_cache) setenv("SBG_CACHE_DIR", saved_cache.c_str(), 1);
  else unsetenv("SBG_CACHE_DIR");
  if (old_tune) setenv("SBG_TUNE_PATH", saved_tune.c_str(), 1);
}

// --------------------------------------------- fingerprints over graphs --

TEST(TuneFingerprint, MatchesGraphStructureAcrossThreadCounts) {
  const CsrGraph path = build_graph(gen_path(600), false);
  const CsrGraph cycle = build_graph(gen_cycle(600), false);
  Fingerprint base;
  for (int t = 0; t < 2; ++t) {
    for (const int threads : kThreadSweep) {
      const ScopedThreads st(threads);
      const Fingerprint fp = tune::fingerprint_of(path);
      EXPECT_EQ(600u, fp.num_vertices);
      EXPECT_EQ(2u * 599u, fp.num_arcs);
      EXPECT_DOUBLE_EQ(100.0, fp.pct_deg2);
      EXPECT_DOUBLE_EQ(100.0, fp.pct_bridges);  // every path edge a bridge
      const Fingerprint fc = tune::fingerprint_of(cycle);
      EXPECT_DOUBLE_EQ(0.0, fc.pct_bridges);    // no cycle edge is
      EXPECT_DOUBLE_EQ(2.0, fc.avg_degree);
      if (threads == 1) base = fp;
      EXPECT_EQ(base.num_arcs, fp.num_arcs);
      EXPECT_DOUBLE_EQ(base.pct_deg2, fp.pct_deg2);
    }
  }
}

TEST(TuneFingerprint, GraphKeyFormat) {
  const CsrGraph g = build_graph(gen_path(10), false);
  EXPECT_EQ("road|10|18", tune::graph_key("road", g));
  EXPECT_EQ("g|10|18", tune::graph_key("", g));  // unnamed graphs bucket
}

TEST(TuneFingerprint, SinglePassStatsAgreeWithReferenceCounts) {
  // The fused graph_stats pass must agree with the one-quantity helpers
  // (and report isolated vertices, new in this pass) at every thread count.
  CsrGraph g = test::random_graph(800, 1500, 99);
  for (const int threads : kThreadSweep) {
    const ScopedThreads st(threads);
    const GraphStats s = graph_stats(g, 5);
    EXPECT_DOUBLE_EQ(pct_degree_at_most(g, 2), s.pct_deg2);
    EXPECT_DOUBLE_EQ(pct_degree_at_most(g, 5), s.pct_degk);
    vid_t mind = kNoVertex, maxd = 0, iso = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      mind = std::min(mind, g.degree(v));
      maxd = std::max(maxd, g.degree(v));
      iso += g.degree(v) == 0 ? 1 : 0;
    }
    EXPECT_EQ(mind, s.min_degree);
    EXPECT_EQ(maxd, s.max_degree);
    EXPECT_EQ(iso, s.num_isolated);
  }
}

TEST(TuneFingerprint, VariantKindClassifiesTheWholeRegistry) {
  EXPECT_EQ(VariantKind::kBaseline, tune::variant_kind("gm"));
  EXPECT_EQ(VariantKind::kBaseline, tune::variant_kind("luby"));
  EXPECT_EQ(VariantKind::kBridge, tune::variant_kind("bridge-vb"));
  EXPECT_EQ(VariantKind::kBridge, tune::variant_kind("bridge"));
  EXPECT_EQ(VariantKind::kRand, tune::variant_kind("rand-gm"));
  EXPECT_EQ(VariantKind::kDegk, tune::variant_kind("degk2"));
  EXPECT_EQ(VariantKind::kDegk, tune::variant_kind("degk-vb"));
}

// ----------------------------------------------------- sched integration --

TEST(TuneSched, AutoJobMatchesExplicitRerunAtEveryThreadCount) {
  // Store-state independent by construction: whatever the process-global
  // history says, the auto run must name a Table-I candidate and be
  // byte-identical to an explicit run of that candidate (deterministic
  // solvers). This is the unit-test twin of the "auto" fuzz family.
  const auto graph =
      std::make_shared<const CsrGraph>(test::random_graph(400, 1200, 21));
  for (const int threads : kThreadSweep) {
    const ScopedThreads st(threads);
    for (const sched::Problem p : kProblems) {
      sched::JobSpec spec;
      spec.graph = graph;
      spec.graph_name = "tune-sched-er400";
      spec.problem = p;
      spec.variant = sched::kAutoVariant;
      spec.seed = 5;
      spec.name = std::string("auto/") + to_string(p);
      const sched::JobResult res = sched::run_job(spec);
      ASSERT_EQ(sched::JobStatus::kOk, res.status) << res.error;
      bool candidate = false;
      for (const std::string& v : Selector::candidates(p)) {
        candidate |= v == res.resolved_variant;
      }
      EXPECT_TRUE(candidate) << res.resolved_variant;

      sched::JobSpec explicit_spec = spec;
      explicit_spec.variant = res.resolved_variant;
      const sched::JobResult ref = sched::run_job(explicit_spec);
      ASSERT_EQ(sched::JobStatus::kOk, ref.status) << ref.error;
      EXPECT_EQ(res.resolved_variant, ref.resolved_variant);
      if (sched::schedule_deterministic(p, res.resolved_variant)) {
        EXPECT_EQ(ref.result_hash, res.result_hash) << to_string(p);
        EXPECT_EQ(ref.value, res.value);
        EXPECT_EQ(ref.rounds, res.rounds);
      }
    }
  }
}

TEST(TuneSched, PrepareExecuteVerifyStages) {
  const auto graph =
      std::make_shared<const CsrGraph>(test::random_graph(300, 900, 31));
  sched::JobSpec spec;
  spec.graph = graph;
  spec.graph_name = "stages";
  spec.problem = sched::Problem::kMM;
  spec.variant = "gm";
  spec.name = "stages/mm/gm";

  // Explicit variants pass through prepare untouched.
  const sched::PreparedJob prep = sched::prepare_job(spec);
  EXPECT_FALSE(prep.auto_resolved);
  EXPECT_EQ("gm", prep.spec.variant);

  // Auto resolves to a concrete candidate and says why.
  sched::JobSpec auto_spec = spec;
  auto_spec.variant = sched::kAutoVariant;
  const sched::PreparedJob auto_prep = sched::prepare_job(auto_spec);
  EXPECT_TRUE(auto_prep.auto_resolved);
  EXPECT_NE(sched::kAutoVariant, auto_prep.spec.variant);
  EXPECT_FALSE(auto_prep.auto_reason.empty());

  // An auto job with no graph is a prepare-time error; run_job absorbs it
  // into a failed result instead of throwing.
  sched::JobSpec no_graph = auto_spec;
  no_graph.graph = nullptr;
  EXPECT_THROW(sched::prepare_job(no_graph), InputError);
  const sched::JobResult failed = sched::run_job(no_graph);
  EXPECT_EQ(sched::JobStatus::kFailed, failed.status);

  // execute then verify, staged by hand, agrees with run_job end-to-end.
  sched::JobSolution sol;
  const sched::JobResult exec = sched::execute_job(prep, sol);
  ASSERT_EQ(sched::JobStatus::kOk, exec.status) << exec.error;
  EXPECT_EQ("gm", exec.resolved_variant);
  EXPECT_EQ("", sched::verify_job(prep, sol));
  const sched::JobResult whole = sched::run_job(spec);
  EXPECT_EQ(exec.result_hash, whole.result_hash);

  // A corrupted solution is caught by the verify stage.
  if (!sol.mm.mate.empty()) {
    sched::JobSolution bad = sol;
    bad.mm.mate[0] = bad.mm.mate[0] == 1 ? 2 : 1;  // break symmetry
    EXPECT_NE("", sched::verify_job(prep, bad));
  }
}

TEST(TuneSched, SuccessfulRunsLandInTheGlobalStore) {
  // run_job records (graph_key, problem, resolved variant) EWMAs; injected
  // failures must not. Unique graph name isolates this test's rows.
  const auto graph =
      std::make_shared<const CsrGraph>(test::random_graph(256, 700, 41));
  const std::string name =
      "tune-store-" + std::to_string(::testing::UnitTest::GetInstance()
                                         ->random_seed());
  sched::JobSpec spec;
  spec.graph = graph;
  spec.graph_name = name;
  spec.problem = sched::Problem::kMis;
  spec.variant = "luby";
  spec.name = name + "/mis/luby";
  const std::string key = tune::graph_key(name, *graph);

  const auto before =
      tune::global_store().stats(key, spec.problem, "luby");
  const std::uint64_t runs_before = before ? before->runs : 0;
  ASSERT_EQ(sched::JobStatus::kOk, sched::run_job(spec).status);
  const auto after = tune::global_store().stats(key, spec.problem, "luby");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(runs_before + 1, after->runs);

  sched::JobSpec failing = spec;
  failing.inject_failure = true;
  ASSERT_EQ(sched::JobStatus::kFailed, sched::run_job(failing).status);
  EXPECT_EQ(runs_before + 1,
            tune::global_store().stats(key, spec.problem, "luby")->runs);
}

}  // namespace
}  // namespace sbg
