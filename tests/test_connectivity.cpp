#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/subgraph.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

TEST(Connectivity, SingleComponentShapes) {
  EXPECT_TRUE(is_connected(build_graph(gen_path(100), false)));
  EXPECT_TRUE(is_connected(build_graph(gen_cycle(100), false)));
  EXPECT_TRUE(is_connected(build_graph(gen_grid(10, 10), false)));
  EXPECT_TRUE(is_connected(test::figure1_graph()));
}

TEST(Connectivity, CountsDisjointPieces) {
  EdgeList el;
  el.num_vertices = 10;
  el.add(0, 1);
  el.add(1, 2);
  el.add(4, 5);
  // 3, 6, 7, 8, 9 isolated
  const CsrGraph g = build_graph(std::move(el), /*connect=*/false);
  const Components cc = connected_components(g);
  EXPECT_EQ(cc.count, 7u);
  EXPECT_EQ(cc.label[0], cc.label[2]);
  EXPECT_EQ(cc.label[4], cc.label[5]);
  EXPECT_NE(cc.label[0], cc.label[4]);
  // Canonical labels: the minimum vertex id of the component.
  EXPECT_EQ(cc.label[2], 0u);
  EXPECT_EQ(cc.label[5], 4u);
  EXPECT_EQ(cc.label[9], 9u);
}

TEST(Connectivity, AgreesWithFilterSplit) {
  // Cutting a path in the middle doubles the component count.
  const CsrGraph g = build_graph(gen_path(1000), false);
  const CsrGraph cut = filter_edges(
      g, [](vid_t u, vid_t v) { return !(u == 499 && v == 500) &&
                                        !(u == 500 && v == 499); });
  EXPECT_EQ(connected_components(cut).count, 2u);
}

TEST(Connectivity, EmptyGraph) {
  const CsrGraph g;
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(connected_components(g).count, 0u);
}

TEST(Connectivity, LargeRandomMatchesUnionFindReference) {
  const CsrGraph g =
      build_graph(gen_erdos_renyi(5000, 4000, 31), /*connect=*/false);
  const Components cc = connected_components(g);
  // Sequential reference via repeated BFS-like flood from builder's
  // union-find is implicit in make_connected; here check the label
  // consistency invariant instead: every edge joins equal labels.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const vid_t v : g.neighbors(u)) {
      ASSERT_EQ(cc.label[u], cc.label[v]);
    }
  }
  // And distinct labels really are disconnected: count equals the number
  // of self-labeled representatives.
  vid_t reps = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (cc.label[v] == v) ++reps;
  }
  EXPECT_EQ(reps, cc.count);
}

}  // namespace
}  // namespace sbg
