#include <gtest/gtest.h>

#include "matching/matching.hpp"
#include "graph/builder.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

// ------------------------------------------------------------ baselines --

TEST(GM, PathShowsVainTendency) {
  // Ascending-id path: lowest-id proposals form one long chain; GM matches
  // roughly one edge at the head per round — the paper's vain tendency.
  const CsrGraph g = build_graph(gen_path(200), false);
  const MatchResult r = mm_gm(g);
  EXPECT_TRUE(test::IsMaximalMatching(g, r.mate));
  EXPECT_GE(r.rounds, 50u);  // pathological round count, by design
}

TEST(LMAX, IndexWeightsShowChainBehaviourOnPaths) {
  // Default (paper-faithful) index weights: on an ascending-id path the
  // edge weights are monotone, so only the chain head is a local maximum
  // each round — the GPU-side analogue of GM's vain tendency.
  const CsrGraph g = build_graph(gen_path(200), false);
  const MatchResult r = mm_lmax(g);
  EXPECT_TRUE(test::IsMaximalMatching(g, r.mate));
  EXPECT_GE(r.rounds, 50u);
}

TEST(LMAX, RandomWeightsFinishInFewRounds) {
  const CsrGraph g = build_graph(gen_path(200), false);
  const MatchResult r = mm_lmax(g, 42, LmaxWeights::kRandom);
  EXPECT_TRUE(test::IsMaximalMatching(g, r.mate));
  EXPECT_LE(r.rounds, 32u);  // ~log n with random local maxima
}

TEST(GM, CompleteGraphMatchesPerfectly) {
  const CsrGraph g = build_graph(gen_complete(24), false);
  const MatchResult r = mm_gm(g);
  EXPECT_TRUE(test::IsMaximalMatching(g, r.mate));
  EXPECT_EQ(r.cardinality, 12u);
}

TEST(GM, StarMatchesExactlyOneEdge) {
  const CsrGraph g = build_graph(gen_star(40), false);
  const MatchResult r = mm_gm(g);
  EXPECT_EQ(r.cardinality, 1u);
  EXPECT_TRUE(test::IsMaximalMatching(g, r.mate));
}

TEST(LMAX, DeterministicInSeed) {
  const CsrGraph g = test::random_graph(500, 2000, 3);
  // Index weights ignore the seed entirely.
  EXPECT_EQ(mm_lmax(g, 7).mate, mm_lmax(g, 8).mate);
  // Random weights depend on it (and are reproducible for a fixed one).
  EXPECT_EQ(mm_lmax(g, 7, LmaxWeights::kRandom).mate,
            mm_lmax(g, 7, LmaxWeights::kRandom).mate);
  EXPECT_NE(mm_lmax(g, 7, LmaxWeights::kRandom).mate,
            mm_lmax(g, 8, LmaxWeights::kRandom).mate);
}

TEST(Extenders, RespectPreMatchedVertices) {
  const CsrGraph g = build_graph(gen_complete(6), false);
  std::vector<vid_t> mate(6, kNoVertex);
  mate[0] = 1;
  mate[1] = 0;
  gm_extend(g, mate);
  EXPECT_EQ(mate[0], 1u);  // untouched
  EXPECT_TRUE(test::IsMaximalMatching(g, mate));
}

TEST(Extenders, ActiveMaskRestrictsParticipation) {
  const CsrGraph g = build_graph(gen_complete(8), false);
  std::vector<vid_t> mate(8, kNoVertex);
  std::vector<std::uint8_t> active(8, 0);
  active[2] = active[3] = 1;
  gm_extend(g, mate, &active);
  EXPECT_EQ(mate[2], 3u);
  EXPECT_EQ(mate[3], 2u);
  for (vid_t v : {0u, 1u, 4u, 5u, 6u, 7u}) EXPECT_EQ(mate[v], kNoVertex);
}

TEST(Verify, CatchesBrokenMatchings) {
  // The oracle reports the first (lowest-id) violation; see test_check.cpp
  // for the full per-violation coverage of check::check_matching.
  const CsrGraph g = build_graph(gen_path(6), false);
  std::vector<vid_t> mate(6, kNoVertex);
  std::string err;
  // Not maximal: edge 0-1 live.
  EXPECT_FALSE(verify_maximal_matching(g, mate, &err));
  EXPECT_EQ(err, "matching not maximal: both endpoints unmatched (edge 0-1)");
  // Non-involution.
  mate.assign(6, kNoVertex);
  mate[0] = 1;
  EXPECT_FALSE(verify_maximal_matching(g, mate, &err));
  EXPECT_EQ(err, "mate array is not an involution (edge 0-1)");
  // Non-edge "match".
  mate.assign(6, kNoVertex);
  mate[0] = 3;
  mate[3] = 0;
  EXPECT_FALSE(verify_maximal_matching(g, mate, &err));
  EXPECT_EQ(err, "matched pair is not an edge of G (edge 0-3)");
}

// ------------------------------------------------ composites, all shapes --

struct MmCase {
  test::GraphCase graph;
  MatchEngine engine;
};

class MatchingComposites : public ::testing::TestWithParam<MmCase> {};

TEST_P(MatchingComposites, AllThreeProduceMaximalMatchings) {
  const CsrGraph g = GetParam().graph.make();
  const MatchEngine e = GetParam().engine;
  std::string err;

  const MatchResult b = mm_bridge(g, e);
  EXPECT_TRUE(verify_maximal_matching(g, b.mate, &err)) << "bridge: " << err;

  const MatchResult r = mm_rand(g, 4, e);
  EXPECT_TRUE(verify_maximal_matching(g, r.mate, &err)) << "rand: " << err;

  const MatchResult d = mm_degk(g, 2, e);
  EXPECT_TRUE(verify_maximal_matching(g, d.mate, &err)) << "degk: " << err;
}

std::vector<MmCase> matching_cases() {
  std::vector<MmCase> cases;
  for (const auto& gc : test::shape_sweep()) {
    cases.push_back({gc, MatchEngine::kGM});
    cases.push_back({gc, MatchEngine::kLMAX});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatchingComposites, ::testing::ValuesIn(matching_cases()),
    [](const auto& info) {
      return info.param.graph.name +
             (info.param.engine == MatchEngine::kGM ? "_gm" : "_lmax");
    });

TEST(MatchingComposites, RandPartitionSweepStaysValid) {
  const CsrGraph g = test::random_graph(600, 2400, 11);
  for (vid_t k : {1u, 2u, 4u, 10u, 50u, 200u}) {
    const MatchResult r = mm_rand(g, k);
    EXPECT_TRUE(verify_maximal_matching(g, r.mate)) << "k=" << k;
  }
}

TEST(MatchingComposites, DegkThresholdSweepStaysValid) {
  const CsrGraph g = test::random_graph(600, 2400, 13);
  for (vid_t k : {1u, 2u, 3u, 8u, 64u}) {
    const MatchResult r = mm_degk(g, k);
    EXPECT_TRUE(verify_maximal_matching(g, r.mate)) << "k=" << k;
  }
}

TEST(MatchingComposites, BridgeWalkVariantsAgreeOnValidity) {
  const CsrGraph g = test::make_road_small();
  const MatchResult naive =
      mm_bridge(g, MatchEngine::kGM, 42, BridgeAlgo::kNaiveWalk);
  const MatchResult fast =
      mm_bridge(g, MatchEngine::kGM, 42, BridgeAlgo::kShortcutWalk);
  EXPECT_TRUE(verify_maximal_matching(g, naive.mate));
  EXPECT_TRUE(verify_maximal_matching(g, fast.mate));
  // Same bridges -> same phase structure -> identical matching.
  EXPECT_EQ(naive.mate, fast.mate);
}

TEST(MatchingComposites, CardinalityIsAtLeastHalfOptimalOnPath) {
  // Any maximal matching is a 1/2-approximation; on a path of 2k vertices
  // the optimum is k, so cardinality must be >= k/2.
  const CsrGraph g = build_graph(gen_path(400), false);
  for (const MatchResult& r :
       {mm_gm(g), mm_rand(g, 4), mm_degk(g, 2), mm_bridge(g)}) {
    EXPECT_GE(r.cardinality, 100u);
  }
}

TEST(MatchingComposites, VainTendencyAblation) {
  // The Section III-C story at miniature scale: on a spatially-ordered
  // rgg-like graph, MM-Rand needs far fewer GM rounds than plain GM.
  const CsrGraph g = build_graph(gen_rgg(4000, 14.0, 3), true);
  const MatchResult base = mm_gm(g);
  const MatchResult rand10 = mm_rand(g, 10);
  EXPECT_TRUE(verify_maximal_matching(g, base.mate));
  EXPECT_TRUE(verify_maximal_matching(g, rand10.mate));
  EXPECT_LT(rand10.rounds, base.rounds);
}

}  // namespace
}  // namespace sbg
