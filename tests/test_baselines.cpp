// Extended baselines: Israeli-Itai matching, Jones-Plassmann and
// speculative coloring, greedy MIS, coloring-reduction MIS, and the
// sequential oracles — validity plus cross-algorithm agreement.
#include <gtest/gtest.h>

#include "coloring/coloring.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"
#include "graph/builder.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

// ----------------------------------------------------- Israeli-Itai (MM) --

class IiSweep : public ::testing::TestWithParam<test::GraphCase> {};

TEST_P(IiSweep, ProducesMaximalMatching) {
  const CsrGraph g = GetParam().make();
  const MatchResult r = mm_ii(g);
  std::string err;
  EXPECT_TRUE(verify_maximal_matching(g, r.mate, &err)) << err;
}

INSTANTIATE_TEST_SUITE_P(Shapes, IiSweep,
                         ::testing::ValuesIn(test::shape_sweep()),
                         test::case_name);

TEST(IsraeliItai, FewRoundsOnPaths) {
  // No lowest-id chains: random invitations finish a path quickly where
  // GM needs ~n/2 rounds.
  const CsrGraph g = build_graph(gen_path(2000), false);
  const MatchResult ii = mm_ii(g);
  const MatchResult gm = mm_gm(g);
  EXPECT_TRUE(verify_maximal_matching(g, ii.mate));
  EXPECT_LT(ii.rounds, gm.rounds / 4);
}

TEST(IsraeliItai, DeterministicInSeed) {
  const CsrGraph g = test::random_graph(600, 2400, 3);
  EXPECT_EQ(mm_ii(g, 9).mate, mm_ii(g, 9).mate);
}

TEST(GreedySeqMatching, OracleAgreesWithParallelOnCardinalityBounds) {
  // All maximal matchings are within a factor 2 of each other.
  for (const auto& c : test::shape_sweep()) {
    const CsrGraph g = c.make();
    const auto seq = mm_greedy_seq(g);
    EXPECT_TRUE(verify_maximal_matching(g, seq.mate)) << c.name;
    for (const auto& par : {mm_gm(g), mm_lmax(g), mm_ii(g)}) {
      EXPECT_LE(seq.cardinality, 2 * par.cardinality) << c.name;
      EXPECT_LE(par.cardinality, 2 * seq.cardinality) << c.name;
    }
  }
}

// ------------------------------------------------------- JP / speculative --

class JpSweep : public ::testing::TestWithParam<test::GraphCase> {};

TEST_P(JpSweep, AllOrderingsColorProperly) {
  const CsrGraph g = GetParam().make();
  std::string err;
  for (const JpOrder order :
       {JpOrder::kRandom, JpOrder::kLargestDegreeFirst,
        JpOrder::kSmallestDegreeFirst}) {
    const ColorResult r = color_jp(g, order);
    EXPECT_TRUE(verify_coloring(g, r.color, &err)) << err;
    // JP is greedy first-fit along a permutation: never more than
    // max-degree + 1 colors.
    std::uint32_t max_deg = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      max_deg = std::max(max_deg, g.degree(v));
    }
    EXPECT_LE(r.num_colors, max_deg + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, JpSweep,
                         ::testing::ValuesIn(test::shape_sweep()),
                         test::case_name);

TEST(JonesPlassmann, LdfUsesFewColorsOnSkewedGraphs) {
  const CsrGraph g = build_graph(gen_rmat(2048, 16'000, 5), true);
  const ColorResult ldf = color_jp(g, JpOrder::kLargestDegreeFirst);
  const ColorResult rnd = color_jp(g, JpOrder::kRandom);
  EXPECT_TRUE(verify_coloring(g, ldf.color));
  // Hasenplaugh et al.: LF ordering does not use more colors than a random
  // order on power-law graphs (allow parity).
  EXPECT_LE(ldf.num_colors, rnd.num_colors + 1);
}

TEST(Speculative, ColorsShapesProperly) {
  std::string err;
  for (const auto& c : test::shape_sweep()) {
    const CsrGraph g = c.make();
    const ColorResult r = color_speculative(g);
    EXPECT_TRUE(verify_coloring(g, r.color, &err)) << c.name << ": " << err;
    std::uint32_t max_deg = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      max_deg = std::max(max_deg, g.degree(v));
    }
    EXPECT_LE(r.num_colors, max_deg + 1) << c.name;
  }
}

// ------------------------------------------------------------ greedy MIS --

class GreedyMisSweep : public ::testing::TestWithParam<test::GraphCase> {};

TEST_P(GreedyMisSweep, ValidAndDeterministic) {
  const CsrGraph g = GetParam().make();
  const MisResult a = mis_greedy(g, 11);
  const MisResult b = mis_greedy(g, 11);
  std::string err;
  EXPECT_TRUE(verify_mis(g, a.state, &err)) << err;
  EXPECT_EQ(a.state, b.state);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GreedyMisSweep,
                         ::testing::ValuesIn(test::shape_sweep()),
                         test::case_name);

TEST(GreedyMis, MatchesSequentialOracleForIdPermutation) {
  // greedy_extend with the identity-ordered permutation is exactly the
  // lexicographically-first MIS. oriented_extend's priorities are hashed,
  // so compare the *sequential* oracle against a permutation-free check:
  // the oracle's output must be a valid fixed point of the greedy rule.
  const CsrGraph g = test::random_graph(400, 1200, 7);
  const MisResult seq = mis_greedy_seq(g);
  EXPECT_TRUE(verify_mis(g, seq.state));
  // Lexicographic property: v is kIn iff no smaller kIn neighbor exists.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    bool smaller_in = false;
    for (const vid_t w : g.neighbors(v)) {
      if (w < v && seq.state[w] == MisState::kIn) smaller_in = true;
    }
    if (seq.state[v] == MisState::kIn) {
      EXPECT_FALSE(smaller_in) << v;
    }
  }
}

TEST(GreedyMis, FewerRoundsThanLubyOnAverage) {
  // Fixed priorities decide in one pass what Luby re-randomizes per round.
  const CsrGraph g = test::random_graph(5000, 20'000, 13);
  const MisResult gr = mis_greedy(g);
  const MisResult lu = mis_luby(g);
  EXPECT_TRUE(verify_mis(g, gr.state));
  EXPECT_LE(gr.rounds, lu.rounds + 8);
}

// ----------------------------------------------- coloring-reduction MIS --

TEST(ColorClassMis, SolvesPathsCyclesAndLowSubgraphs) {
  std::string err;
  for (const auto make : {test::make_path_200, test::make_cycle_201}) {
    const CsrGraph g = make();
    std::vector<MisState> state(g.num_vertices(), MisState::kUndecided);
    std::vector<std::uint8_t> active(g.num_vertices(), 1);
    color_class_extend(g, state, active);
    EXPECT_TRUE(verify_mis(g, state, &err)) << err;
  }
}

TEST(ColorClassMis, AgreesWithOrientedOnDeg2Subgraph) {
  // Both must produce a valid MIS of the same degree <= 2 induced
  // subgraph of a road-like graph (the MIS-Deg2 phase-1 role).
  const CsrGraph g = test::make_road_small();
  std::vector<std::uint8_t> low(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) low[v] = g.degree(v) <= 2;

  std::vector<MisState> s1(g.num_vertices(), MisState::kUndecided);
  color_class_extend(g, s1, low);
  std::vector<MisState> s2(g.num_vertices(), MisState::kUndecided);
  oriented_extend(g, s2, &low);

  // Validity on the induced subgraph: no adjacent kIn pair among low
  // vertices; every undecided-low has a kIn low neighbor... the extenders
  // leave non-low untouched, so check the invariants manually.
  for (const auto& s : {s1, s2}) {
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (!low[v]) {
        ASSERT_EQ(s[v], MisState::kUndecided);
        continue;
      }
      ASSERT_NE(s[v], MisState::kUndecided);
      if (s[v] == MisState::kIn) {
        for (const vid_t w : g.neighbors(v)) {
          if (low[w]) ASSERT_NE(s[w], MisState::kIn);
        }
      } else {
        bool has_in = false;
        for (const vid_t w : g.neighbors(v)) {
          if (low[w] && s[w] == MisState::kIn) has_in = true;
        }
        ASSERT_TRUE(has_in) << v;
      }
    }
  }
}

TEST(MisSizes, AllAlgorithmsWithinFactorOfOracle) {
  // Any MIS is at least (n / (Δ+1)) and all are maximal independent sets;
  // sizes across algorithms stay within a constant factor in practice.
  const CsrGraph g = test::random_graph(3000, 12'000, 21);
  const auto seq = mis_greedy_seq(g);
  for (const auto& r : {mis_luby(g), mis_greedy(g), mis_degk(g, 2)}) {
    EXPECT_GT(r.size, seq.size / 2);
    EXPECT_LT(r.size, seq.size * 2);
  }
}

}  // namespace
}  // namespace sbg
