// Guard that SBG_OBS_ENABLED=0 compiles the obs macros to true no-ops.
//
// This TU force-disables the macros regardless of how the library was
// configured, then proves (a) macro arguments are never evaluated, and
// (b) nothing is materialized in the process-wide registry or span tree.
#undef SBG_OBS_ENABLED
#define SBG_OBS_ENABLED 0

#include <gtest/gtest.h>

#include <string>

#include "obs/obs.hpp"

namespace sbg {
namespace {

// SBG_OBS_ONLY must discard its tokens entirely when disabled: this call
// would be a compile error if the macro expanded its arguments.
#if SBG_OBS_ENABLED == 0
SBG_OBS_ONLY(static_assert(false, "SBG_OBS_ONLY leaked tokens into a "
                                  "disabled build");)
#endif

int evaluations = 0;

[[maybe_unused]] int touch() {
  ++evaluations;
  return 1;
}

TEST(ObsDisabled, MacroArgumentsAreNeverEvaluated) {
  SBG_COUNTER_ADD("disabled.counter", touch());
  SBG_GAUGE_SET("disabled.gauge", touch());
  SBG_HIST_RECORD("disabled.hist", touch());
  SBG_SERIES_APPEND("disabled.series", touch());
  SBG_SPAN("disabled.span");
  SBG_OBS_ONLY(touch();)
  EXPECT_EQ(evaluations, 0);
}

TEST(ObsDisabled, NothingMaterializesInRegistryOrSpanTree) {
  SBG_COUNTER_ADD("disabled.ghost", 1);
  {
    SBG_SPAN("disabled.ghost_span");
  }
  const auto snap = obs::registry().snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(name.rfind("disabled.", 0), 0u) << name << "=" << value;
  }
  const auto root = obs::span_tree().snapshot();
  for (const auto& child : root->children) {
    EXPECT_NE(child->name, "disabled.ghost_span");
  }
}

}  // namespace
}  // namespace sbg
