#include <gtest/gtest.h>

#include "mis/mis.hpp"
#include "graph/builder.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

TEST(Luby, ShapesSweepProducesValidMis) {
  for (const auto& c : test::shape_sweep()) {
    const CsrGraph g = c.make();
    const MisResult r = mis_luby(g);
    EXPECT_TRUE(test::IsMaximalIndependentSet(g, r.state)) << c.name;
  }
}

TEST(Luby, StarPicksLeavesOrHub) {
  const CsrGraph g = build_graph(gen_star(50), false);
  const MisResult r = mis_luby(g);
  EXPECT_TRUE(test::IsMaximalIndependentSet(g, r.state));
  // Either the hub alone, or all 49 leaves.
  EXPECT_TRUE(r.size == 1 || r.size == 49) << r.size;
}

TEST(Luby, CompleteGraphPicksExactlyOne) {
  const CsrGraph g = build_graph(gen_complete(30), false);
  const MisResult r = mis_luby(g);
  EXPECT_TRUE(test::IsMaximalIndependentSet(g, r.state));
  EXPECT_EQ(r.size, 1u);
}

TEST(Luby, PathMisIsBetweenThirdAndHalf) {
  const CsrGraph g = build_graph(gen_path(300), false);
  const MisResult r = mis_luby(g);
  EXPECT_TRUE(test::IsMaximalIndependentSet(g, r.state));
  EXPECT_GE(r.size, 100u);  // any MIS of a path covers >= n/3
  EXPECT_LE(r.size, 150u);  // and at most ceil(n/2)
}

TEST(Luby, DeterministicInSeed) {
  const CsrGraph g = test::random_graph(800, 3000, 3);
  EXPECT_EQ(mis_luby(g, 5).state, mis_luby(g, 5).state);
}

TEST(Luby, FewRoundsOnRandomGraphs) {
  const CsrGraph g = test::random_graph(5000, 20'000, 7);
  const MisResult r = mis_luby(g);
  EXPECT_TRUE(test::IsMaximalIndependentSet(g, r.state));
  EXPECT_LE(r.rounds, 40u);  // expected O(log n)
}

TEST(Oriented, PathAndCycleAreFastAndValid) {
  for (const auto make : {test::make_path_200, test::make_cycle_201}) {
    const CsrGraph g = make();
    std::vector<MisState> state(g.num_vertices(), MisState::kUndecided);
    const vid_t rounds = oriented_extend(g, state);
    EXPECT_TRUE(test::IsMaximalIndependentSet(g, state));
    EXPECT_LE(rounds, 24u);  // fixed priorities: ~log of longest chain
  }
}

TEST(Oriented, RespectsActiveMaskAndPriorState) {
  const CsrGraph g = build_graph(gen_path(10), false);
  std::vector<MisState> state(10, MisState::kUndecided);
  state[0] = MisState::kIn;
  state[1] = MisState::kOut;
  std::vector<std::uint8_t> active(10, 1);
  active[9] = 0;
  oriented_extend(g, state, &active);
  EXPECT_EQ(state[0], MisState::kIn);
  EXPECT_EQ(state[1], MisState::kOut);
  EXPECT_EQ(state[9], MisState::kUndecided);  // inactive, untouched
  // Everything else decided consistently on the subpath 2..8.
  for (vid_t v = 2; v <= 8; ++v) {
    EXPECT_NE(state[v], MisState::kUndecided) << v;
  }
}

TEST(Verify, CatchesBrokenMis) {
  // The oracle names the first violating vertex; see test_check.cpp for the
  // full per-violation coverage of check::check_mis.
  const CsrGraph g = build_graph(gen_path(4), false);
  std::string err;
  std::vector<MisState> state(4, MisState::kUndecided);
  EXPECT_FALSE(verify_mis(g, state, &err));
  EXPECT_EQ(err, "undecided vertex (vertex 0)");
  // Adjacent kIn pair.
  state = {MisState::kIn, MisState::kIn, MisState::kOut, MisState::kIn};
  EXPECT_FALSE(verify_mis(g, state, &err));
  // kOut with no kIn neighbor (vertex 3's only neighbor is kOut).
  state = {MisState::kIn, MisState::kOut, MisState::kOut, MisState::kOut};
  EXPECT_FALSE(verify_mis(g, state, &err));
  // A correct one.
  state = {MisState::kIn, MisState::kOut, MisState::kIn, MisState::kOut};
  EXPECT_TRUE(verify_mis(g, state, &err)) << err;
}

// ------------------------------------------------ composites, all shapes --

class MisComposites : public ::testing::TestWithParam<test::GraphCase> {};

TEST_P(MisComposites, AllThreeProduceValidMis) {
  const CsrGraph g = GetParam().make();

  const MisResult b = mis_bridge(g);
  EXPECT_TRUE(test::IsMaximalIndependentSet(g, b.state)) << "bridge";

  const MisResult r = mis_rand(g, 4);
  EXPECT_TRUE(test::IsMaximalIndependentSet(g, r.state)) << "rand";

  const MisResult d = mis_degk(g, 2);
  EXPECT_TRUE(test::IsMaximalIndependentSet(g, d.state)) << "degk";
}

INSTANTIATE_TEST_SUITE_P(Sweep, MisComposites,
                         ::testing::ValuesIn(test::shape_sweep()),
                         test::case_name);

TEST(MisComposites, RandPartitionSweepStaysValid) {
  const CsrGraph g = test::random_graph(700, 2800, 23);
  for (vid_t k : {1u, 2u, 4u, 16u, 100u}) {
    const MisResult r = mis_rand(g, k);
    EXPECT_TRUE(test::IsMaximalIndependentSet(g, r.state)) << "k=" << k;
  }
}

TEST(MisComposites, DegkHandlesAllLowAndAllHighExtremes) {
  // All-low: a path (the whole graph is the oriented phase).
  const CsrGraph path = build_graph(gen_path(300), false);
  EXPECT_TRUE(test::IsMaximalIndependentSet(path, mis_degk(path, 2).state));
  // All-high: a complete graph (the oriented phase is empty).
  const CsrGraph comp = build_graph(gen_complete(20), false);
  const MisResult r = mis_degk(comp, 2);
  EXPECT_TRUE(test::IsMaximalIndependentSet(comp, r.state));
  EXPECT_EQ(r.size, 1u);
}

TEST(MisComposites, Deg2WinsRoundsOnBroomGraphs)  {
  // The Section V story: on lp1-like graphs almost everything is degree
  // <= 2, so MIS-Deg2 decides nearly the whole graph in the cheap oriented
  // phase and the Luby tail is tiny.
  const CsrGraph g = build_graph(gen_broom(20'000, 5), true);
  const MisResult deg2 = mis_degk(g, 2);
  const MisResult luby = mis_luby(g);
  EXPECT_TRUE(test::IsMaximalIndependentSet(g, deg2.state));
  EXPECT_TRUE(test::IsMaximalIndependentSet(g, luby.state));
  EXPECT_GT(deg2.size, 0u);
}

}  // namespace
}  // namespace sbg
