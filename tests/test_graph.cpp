#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/stats.hpp"
#include "graph/subgraph.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

TEST(Builder, NormalizeDropsLoopsDuplicatesAndOrients) {
  EdgeList el;
  el.num_vertices = 4;
  el.add(1, 0);
  el.add(0, 1);  // duplicate in reverse orientation
  el.add(2, 2);  // self loop
  el.add(0, 1);  // exact duplicate
  el.add(3, 1);
  normalize_edge_list(el);
  EXPECT_EQ(el.edges, (std::vector<Edge>{{0, 1}, {1, 3}}));
}

TEST(Builder, NormalizeRejectsOutOfRange) {
  EdgeList el;
  el.num_vertices = 2;
  el.add(0, 5);
  EXPECT_THROW(normalize_edge_list(el), std::logic_error);
}

TEST(Builder, MakeConnectedChainsComponents) {
  EdgeList el;
  el.num_vertices = 6;
  el.add(0, 1);
  el.add(2, 3);  // second component
  // 4, 5 isolated
  normalize_edge_list(el);
  const std::size_t added = make_connected(el);
  EXPECT_EQ(added, 3u);  // 4 components -> 3 extra edges
  const CsrGraph g = build_csr(el);
  g.validate();
}

TEST(Builder, BuildCsrShapesAndInvariants) {
  const CsrGraph g = test::figure1_graph();
  g.validate();
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.num_arcs(), 18u);
  EXPECT_EQ(g.degree(1), 3u);  // b: a, c, g
  EXPECT_EQ(g.degree(7), 1u);  // h: g
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 7));
  // Adjacency sorted ascending.
  const auto nb = g.neighbors(1);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(Builder, EmptyAndSingletonGraphs) {
  EdgeList empty;
  const CsrGraph g0 = build_graph(empty, true);
  EXPECT_EQ(g0.num_vertices(), 0u);
  EXPECT_EQ(g0.num_edges(), 0u);

  EdgeList one;
  one.num_vertices = 1;
  const CsrGraph g1 = build_graph(one, true);
  EXPECT_EQ(g1.num_vertices(), 1u);
  EXPECT_EQ(g1.degree(0), 0u);
  EXPECT_EQ(g1.average_degree(), 0.0);
}

TEST(Csr, ValidateCatchesAsymmetry) {
  // Hand-build a broken CSR: arc 0->1 without 1->0.
  EidBuffer offsets{0, 1, 1};
  VidBuffer adj{1};
  const CsrGraph g(std::move(offsets), std::move(adj));
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(Csr, ConstructorRejectsInconsistentArrays) {
  EXPECT_THROW(CsrGraph({}, {}), std::logic_error);           // no offsets
  EXPECT_THROW(CsrGraph({0, 2}, {1}), std::logic_error);      // bad back()
}

// ------------------------------------------------------------ subgraphs --

TEST(Subgraph, FilterEdgesKeepsPredicatedArcs) {
  const CsrGraph g = test::figure1_graph();
  // Keep only edges inside the a-b-c triangle.
  const CsrGraph tri = filter_edges(g, [](vid_t u, vid_t v) {
    return u <= 2 && v <= 2;
  });
  tri.validate();
  EXPECT_EQ(tri.num_vertices(), g.num_vertices());
  EXPECT_EQ(tri.num_edges(), 3u);
  EXPECT_EQ(tri.degree(3), 0u);
}

TEST(Subgraph, InducedSubgraphByMask) {
  const CsrGraph g = test::figure1_graph();
  std::vector<std::uint8_t> mask(8, 0);
  mask[3] = mask[4] = mask[5] = 1;  // the d-e-f triangle
  const CsrGraph sub = induced_subgraph(g, mask);
  sub.validate();
  EXPECT_EQ(sub.num_edges(), 3u);
  EXPECT_EQ(sub.degree(0), 0u);
  EXPECT_EQ(sub.degree(4), 2u);
}

TEST(Subgraph, ArcFlagFilterMatchesPredicateFilter) {
  const CsrGraph g = test::random_graph(200, 600, 5);
  // Drop every edge with u+v odd, via both APIs; results must agree.
  const auto keep = [](vid_t u, vid_t v) { return ((u + v) & 1u) == 0; };
  const CsrGraph by_pred = filter_edges(g, keep);
  std::vector<std::uint8_t> flags(g.num_arcs());
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (eid_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      flags[a] = keep(u, g.arc_head(a));
    }
  }
  const CsrGraph by_flag = filter_edges_by_arc_flag(g, flags);
  EXPECT_EQ(by_pred.offsets().size(), by_flag.offsets().size());
  EXPECT_TRUE(std::equal(by_pred.adjacency().begin(),
                         by_pred.adjacency().end(),
                         by_flag.adjacency().begin(),
                         by_flag.adjacency().end()));
}

TEST(Subgraph, ComplementaryFiltersPartitionEdges) {
  const CsrGraph g = test::random_graph(300, 900, 6);
  const auto pred = [](vid_t u, vid_t v) { return (u % 3) == (v % 3); };
  const CsrGraph in = filter_edges(g, pred);
  const CsrGraph out =
      filter_edges(g, [&](vid_t u, vid_t v) { return !pred(u, v); });
  EXPECT_EQ(in.num_edges() + out.num_edges(), g.num_edges());
}

// ---------------------------------------------------------------- stats --

TEST(Stats, PathFingerprint) {
  const CsrGraph g = build_graph(gen_path(100), false);
  const GraphStats s = graph_stats(g);
  EXPECT_EQ(s.num_vertices, 100u);
  EXPECT_EQ(s.num_edges, 99u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.pct_deg2, 100.0);
}

TEST(Stats, StarFingerprint) {
  const CsrGraph g = build_graph(gen_star(50), false);
  const GraphStats s = graph_stats(g);
  EXPECT_EQ(s.max_degree, 49u);
  EXPECT_NEAR(s.pct_deg2, 98.0, 0.01);  // all but the hub
  EXPECT_NEAR(s.avg_degree, 2.0 * 49 / 50, 1e-9);
}

TEST(Stats, DegreeHistogramCapsAndCounts) {
  const CsrGraph g = build_graph(gen_star(50), false);
  const auto hist = degree_histogram(g, 4);
  EXPECT_EQ(hist[1], 49u);
  EXPECT_EQ(hist[4], 1u);  // hub accumulated into the cap bucket
  EXPECT_EQ(hist[0] + hist[1] + hist[2] + hist[3] + hist[4], 50u);
}

TEST(Stats, PctDegreeAtMostVariesWithK) {
  const CsrGraph g = test::figure1_graph();
  EXPECT_GT(pct_degree_at_most(g, 3), pct_degree_at_most(g, 1));
  EXPECT_DOUBLE_EQ(pct_degree_at_most(g, 100), 100.0);
}

}  // namespace
}  // namespace sbg
