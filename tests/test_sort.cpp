#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "parallel/rng.hpp"
#include "parallel/sort.hpp"

namespace sbg {
namespace {

class SortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSizes, MatchesStdSort) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<std::uint64_t> data(n), expect;
  for (auto& x : data) x = rng.below(1000);  // plenty of duplicates
  expect = data;
  std::sort(expect.begin(), expect.end());
  parallel_sort(data);
  EXPECT_EQ(data, expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SortSizes,
                         ::testing::Values(0, 1, 2, 100, (1 << 14) - 1,
                                           1 << 14, (1 << 16) + 7,
                                           (1 << 18) + 1));

TEST(ParallelSort, CustomComparatorDescending) {
  Rng rng(7);
  std::vector<std::uint32_t> data(100'000);
  for (auto& x : data) x = static_cast<std::uint32_t>(rng.next());
  parallel_sort(data, std::greater<>{});
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end(), std::greater<>{}));
}

TEST(ParallelSort, AlreadySortedAndReversed) {
  std::vector<std::uint64_t> asc(1 << 16), desc(1 << 16);
  for (std::size_t i = 0; i < asc.size(); ++i) {
    asc[i] = i;
    desc[i] = asc.size() - i;
  }
  parallel_sort(asc);
  parallel_sort(desc);
  EXPECT_TRUE(std::is_sorted(asc.begin(), asc.end()));
  EXPECT_TRUE(std::is_sorted(desc.begin(), desc.end()));
}

TEST(ParallelSort, SortsStructsByCompositeKey) {
  struct Pair {
    std::uint32_t a, b;
    bool operator<(const Pair& o) const {
      return a != o.a ? a < o.a : b < o.b;
    }
    bool operator==(const Pair& o) const = default;
  };
  Rng rng(13);
  std::vector<Pair> data(200'000);
  for (auto& p : data) {
    p = {static_cast<std::uint32_t>(rng.below(500)),
         static_cast<std::uint32_t>(rng.below(500))};
  }
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  parallel_sort(data);
  EXPECT_EQ(data, expect);
}

}  // namespace
}  // namespace sbg
