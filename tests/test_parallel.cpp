#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/bitset.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/reduce.hpp"
#include "parallel/rng.hpp"
#include "parallel/thread_env.hpp"

namespace sbg {
namespace {

// ---------------------------------------------------------- prefix sums --

class PrefixSumSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefixSumSizes, MatchesSequentialReference) {
  const std::size_t n = GetParam();
  std::vector<std::uint64_t> data(n), expect(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = (i * 2654435761u) % 97;
  std::uint64_t run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = run;
    run += data[i];
  }
  const std::uint64_t total = exclusive_prefix_sum(std::span(data));
  EXPECT_EQ(total, run);
  EXPECT_EQ(data, expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrefixSumSizes,
                         ::testing::Values(0, 1, 2, 100, 1 << 14, (1 << 16) + 3,
                                           (1 << 18) + 17));

TEST(PrefixSum, OffsetsFromCounts) {
  const std::vector<std::uint32_t> counts{3, 0, 5, 1};
  const auto offsets = offsets_from_counts<std::uint64_t>(counts);
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, 3, 3, 8, 9}));
}

// ----------------------------------------------------------- reductions --

TEST(Reduce, SumCountMaxAny) {
  const std::size_t n = 100'000;
  EXPECT_EQ(parallel_sum<std::uint64_t>(n, [](std::size_t i) { return i; }),
            n * (n - 1) / 2);
  EXPECT_EQ(parallel_count(n, [](std::size_t i) { return i % 3 == 0; }),
            (n + 2) / 3);
  EXPECT_EQ(parallel_max<std::uint64_t>(
                n, [](std::size_t i) { return i * 7 % 1003; }, 0),
            1002u);  // gcd(7, 1003) == 1, so the full residue range appears
  EXPECT_TRUE(parallel_any(n, [](std::size_t i) { return i == n - 1; }));
  EXPECT_FALSE(parallel_any(n, [](std::size_t) { return false; }));
  EXPECT_FALSE(parallel_any(0, [](std::size_t) { return true; }));
}

// -------------------------------------------------------------- atomics --

TEST(Atomics, FetchMinMaxClaim) {
  std::uint32_t x = 10;
  EXPECT_TRUE(fetch_min(&x, 5u));
  EXPECT_EQ(x, 5u);
  EXPECT_FALSE(fetch_min(&x, 7u));
  EXPECT_TRUE(fetch_max(&x, 9u));
  EXPECT_FALSE(fetch_max(&x, 3u));
  EXPECT_EQ(x, 9u);

  std::uint32_t slot = 0;
  EXPECT_TRUE(claim(&slot, 0u, 42u));
  EXPECT_FALSE(claim(&slot, 0u, 43u));
  EXPECT_EQ(slot, 42u);
}

TEST(Atomics, ConcurrentFetchAddCountsExactly) {
  std::uint64_t counter = 0;
  const std::size_t n = 200'000;
  parallel_for(n, [&](std::size_t) { fetch_add(&counter, std::uint64_t{1}); });
  EXPECT_EQ(counter, n);
}

TEST(Atomics, ConcurrentFetchMinFindsGlobalMin) {
  std::uint64_t best = ~0ull;
  const std::size_t n = 100'000;
  parallel_for(n, [&](std::size_t i) {
    fetch_min(&best, mix64(i) | 1);  // never zero
  });
  std::uint64_t expect = ~0ull;
  for (std::size_t i = 0; i < n; ++i) expect = std::min(expect, mix64(i) | 1);
  EXPECT_EQ(best, expect);
}

// --------------------------------------------------------------- bitset --

TEST(Bitset, SetResetTestCount) {
  ConcurrentBitset bs(1000);
  EXPECT_EQ(bs.count(), 0u);
  EXPECT_TRUE(bs.set(3));
  EXPECT_FALSE(bs.set(3));  // second setter loses
  EXPECT_TRUE(bs.test(3));
  EXPECT_TRUE(bs.set(999));
  EXPECT_EQ(bs.count(), 2u);
  EXPECT_TRUE(bs.reset(3));
  EXPECT_FALSE(bs.reset(3));
  EXPECT_FALSE(bs.test(3));
  bs.clear();
  EXPECT_EQ(bs.count(), 0u);
  EXPECT_FALSE(bs.test(999));
}

TEST(Bitset, ConcurrentSetsAreExactlyOnce) {
  const std::size_t n = 1 << 18;
  ConcurrentBitset bs(n);
  std::uint64_t winners = 0;
  // Every bit set by two logical writers; exactly one must win each.
  parallel_for(2 * n, [&](std::size_t i) {
    if (bs.set(i / 2)) fetch_add(&winners, std::uint64_t{1});
  });
  EXPECT_EQ(winners, n);
  EXPECT_EQ(bs.count(), n);
}

// ------------------------------------------------------------------ rng --

TEST(Rng, StreamsAreDeterministicAndIndexAddressable) {
  const RandomStream a(42, 7), b(42, 7), c(42, 8);
  EXPECT_EQ(a.bits(123), b.bits(123));
  EXPECT_NE(a.bits(123), c.bits(123));
  EXPECT_NE(a.bits(123), a.bits(124));
}

TEST(Rng, BelowStaysInRangeAndCoversIt) {
  const RandomStream rs(1, 2);
  std::vector<int> seen(10, 0);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const auto v = rs.below(i, 10);
    ASSERT_LT(v, 10u);
    ++seen[v];
  }
  for (int s : seen) EXPECT_GT(s, 500);  // roughly uniform
}

TEST(Rng, UniformIsInUnitInterval) {
  const RandomStream rs(3, 4);
  double sum = 0;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const double u = rs.uniform(i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

// ------------------------------------------------------------- threads --

TEST(ThreadEnv, ScopedThreadsRestores) {
  const int before = num_threads();
  {
    ScopedThreads guard(1);
    EXPECT_EQ(num_threads(), 1);
  }
  EXPECT_EQ(num_threads(), before);
}

TEST(ParallelFor, BlocksCoverRangeDisjointly) {
  const std::size_t n = 100'003;
  std::vector<std::uint8_t> hit(n, 0);
  parallel_blocks(n, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) ++hit[i];
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hit[i], 1) << i;
}

}  // namespace
}  // namespace sbg
