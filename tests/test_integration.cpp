// End-to-end integration: run the paper's full algorithm matrix (3 problems
// x {baseline, BRIDGE, RAND, DEGk} x {CPU, gpusim}) on miniature versions
// of the Table II datasets and verify every output.
#include <gtest/gtest.h>

#include "coloring/coloring.hpp"
#include "core/rand.hpp"
#include "gpusim/gpu_algorithms.hpp"
#include "graph/dataset.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"

namespace sbg {
namespace {

constexpr double kTinyScale = 1.0 / 512.0;

class DatasetMatrix : public ::testing::TestWithParam<std::string> {
 protected:
  CsrGraph graph() const { return make_dataset(GetParam(), kTinyScale, 42); }
};

TEST_P(DatasetMatrix, MatchingMatrixCpu) {
  const CsrGraph g = graph();
  std::string err;
  for (const auto& r :
       {mm_gm(g), mm_bridge(g), mm_rand(g), mm_degk(g)}) {
    EXPECT_TRUE(verify_maximal_matching(g, r.mate, &err))
        << GetParam() << ": " << err;
    EXPECT_GT(r.cardinality, 0u);
  }
}

TEST_P(DatasetMatrix, MatchingMatrixGpu) {
  const CsrGraph g = graph();
  std::string err;
  for (const auto& r : {gpu::mm_lmax_gpu(g), gpu::mm_bridge_gpu(g),
                        gpu::mm_rand_gpu(g), gpu::mm_degk_gpu(g)}) {
    EXPECT_TRUE(verify_maximal_matching(g, r.mate, &err))
        << GetParam() << ": " << err;
  }
}

TEST_P(DatasetMatrix, ColoringMatrixCpu) {
  const CsrGraph g = graph();
  std::string err;
  for (const auto& r :
       {color_vb(g), color_bridge(g), color_rand(g), color_degk(g)}) {
    EXPECT_TRUE(verify_coloring(g, r.color, &err))
        << GetParam() << ": " << err;
    EXPECT_GT(r.num_colors, 1u);
  }
}

TEST_P(DatasetMatrix, ColoringMatrixGpu) {
  const CsrGraph g = graph();
  std::string err;
  for (const auto& r : {gpu::color_eb_gpu(g), gpu::color_bridge_gpu(g),
                        gpu::color_rand_gpu(g), gpu::color_degk_gpu(g)}) {
    EXPECT_TRUE(verify_coloring(g, r.color, &err))
        << GetParam() << ": " << err;
  }
}

TEST_P(DatasetMatrix, MisMatrixCpu) {
  const CsrGraph g = graph();
  std::string err;
  for (const auto& r : {mis_luby(g), mis_bridge(g), mis_rand(g), mis_degk(g)}) {
    EXPECT_TRUE(verify_mis(g, r.state, &err)) << GetParam() << ": " << err;
    EXPECT_GT(r.size, 0u);
  }
}

TEST_P(DatasetMatrix, MisMatrixGpu) {
  const CsrGraph g = graph();
  std::string err;
  for (const auto& r : {gpu::mis_luby_gpu(g), gpu::mis_bridge_gpu(g),
                        gpu::mis_rand_gpu(g), gpu::mis_degk_gpu(g)}) {
    EXPECT_TRUE(verify_mis(g, r.state, &err)) << GetParam() << ": " << err;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetMatrix,
                         ::testing::ValuesIn(dataset_names()),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (char& c : s) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return s;
                         });

TEST(IntegrationStory, Deg2PhaseDecidesMostOfBroomGraphs) {
  // lp1's headline behaviour: >90% of vertices have degree <= 2, so the
  // cheap oriented phase of MIS-Deg2 decides nearly everything.
  const CsrGraph g = make_dataset("lp1", 1.0 / 128, 42);
  const auto d = decompose_rand(g, 2, 1);  // touch RAND too, for coverage
  EXPECT_GT(d.g_intra.num_edges(), 0u);
  const MisResult r = mis_degk(g, 2);
  EXPECT_TRUE(verify_mis(g, r.state));
  // An MIS of a broom graph is large: pendant chains contribute heavily.
  EXPECT_GT(r.size, g.num_vertices() / 3);
}

}  // namespace
}  // namespace sbg
