// Equivalence tests for the one-pass split kernel, parallel compaction,
// and the scratch arena.
//
// The contract under test is BYTE IDENTITY: split_edges must produce, for
// every class and at every thread count, exactly the offsets/adjacency
// arrays that a per-class filter_edges call produces; pack_index/pack must
// produce exactly the output of the serial compaction loop. The sweeps run
// the DegenerateZoo shapes (which sit below the sequential grain) plus
// larger generated graphs that force the parallel code paths.
#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/bridge.hpp"
#include "core/degk.hpp"
#include "graph/subgraph.hpp"
#include "parallel/compact.hpp"
#include "parallel/rng.hpp"
#include "parallel/scratch.hpp"
#include "parallel/thread_env.hpp"
#include "test_helpers.hpp"

namespace sbg::test {
namespace {

constexpr int kThreadSweep[] = {1, 2, 8};

::testing::AssertionResult SameCsr(const CsrGraph& a, const CsrGraph& b) {
  if (a.num_vertices() != b.num_vertices()) {
    return ::testing::AssertionFailure()
           << "vertex counts differ: " << a.num_vertices() << " vs "
           << b.num_vertices();
  }
  const auto ao = a.offsets(), bo = b.offsets();
  for (std::size_t i = 0; i < ao.size(); ++i) {
    if (ao[i] != bo[i]) {
      return ::testing::AssertionFailure()
             << "offsets differ at " << i << ": " << ao[i] << " vs " << bo[i];
    }
  }
  const auto aa = a.adjacency(), ba = b.adjacency();
  for (std::size_t i = 0; i < aa.size(); ++i) {
    if (aa[i] != ba[i]) {
      return ::testing::AssertionFailure()
             << "adjacency differs at " << i << ": " << aa[i] << " vs "
             << ba[i];
    }
  }
  return ::testing::AssertionSuccess();
}

/// Zoo shapes plus graphs large enough to exercise the parallel paths
/// (the zoo sits entirely below kSequentialGrain).
std::vector<std::pair<std::string, CsrGraph>> split_sweep_graphs() {
  std::vector<std::pair<std::string, CsrGraph>> out;
  for (const GraphCase& c : shape_sweep()) out.emplace_back(c.name, c.make());
  out.emplace_back("rmat8k", build_graph(gen_rmat(1 << 13, 60000, 31), true));
  out.emplace_back("er30k", random_graph(30000, 90000, 37));
  return out;
}

/// A deterministic symmetric k-way arc classifier (hash of the unordered
/// endpoint pair).
std::uint8_t edge_class(vid_t u, vid_t v, unsigned k) {
  const vid_t lo = u < v ? u : v;
  const vid_t hi = u < v ? v : u;
  return static_cast<std::uint8_t>(
      mix64((static_cast<std::uint64_t>(lo) << 32) | hi) % k);
}

TEST(SplitEdges, MatchesPerClassFilterAtEveryThreadCount) {
  for (auto& [name, g] : split_sweep_graphs()) {
    for (unsigned k : {1u, 2u, 3u, 5u}) {
      // Reference: k serial-equivalent filter_edges calls (filter_edges is
      // itself thread-invariant; run it at default threads).
      std::vector<CsrGraph> expect;
      for (unsigned c = 0; c < k; ++c) {
        expect.push_back(filter_edges(g, [&, c](vid_t u, vid_t v) {
          return edge_class(u, v, k) == c;
        }));
      }
      for (const int t : kThreadSweep) {
        ScopedThreads threads(t);
        const std::vector<CsrGraph> parts = split_edges(
            g, [&](vid_t u, vid_t v) { return edge_class(u, v, k); }, k);
        ASSERT_EQ(parts.size(), k);
        for (unsigned c = 0; c < k; ++c) {
          EXPECT_TRUE(SameCsr(parts[c], expect[c]))
              << name << " k=" << k << " class=" << c << " threads=" << t;
        }
      }
    }
  }
}

TEST(SplitEdges, DroppedClassAppearsInNoOutput) {
  for (auto& [name, g] : split_sweep_graphs()) {
    // Classify 3 ways but only keep classes 0 and 1; class 2 must vanish.
    const CsrGraph keep0 = filter_edges(
        g, [&](vid_t u, vid_t v) { return edge_class(u, v, 3) == 0; });
    const CsrGraph keep1 = filter_edges(
        g, [&](vid_t u, vid_t v) { return edge_class(u, v, 3) == 1; });
    const std::vector<CsrGraph> parts = split_edges(
        g, [&](vid_t u, vid_t v) { return edge_class(u, v, 3); }, 2);
    EXPECT_TRUE(SameCsr(parts[0], keep0)) << name;
    EXPECT_TRUE(SameCsr(parts[1], keep1)) << name;
  }
}

TEST(SplitEdges, PrecomputedArcClassMatchesFusedPath) {
  for (auto& [name, g] : split_sweep_graphs()) {
    constexpr unsigned k = 4;
    std::vector<std::uint8_t> arc_class(g.num_arcs());
    for (vid_t u = 0; u < g.num_vertices(); ++u) {
      for (eid_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
        arc_class[a] = edge_class(u, g.arc_head(a), k);
      }
    }
    const std::vector<CsrGraph> fused = split_edges(
        g, [&](vid_t u, vid_t v) { return edge_class(u, v, k); }, k);
    for (const int t : kThreadSweep) {
      ScopedThreads threads(t);
      const std::vector<CsrGraph> precomputed =
          split_edges_by_arc_class(g, arc_class, k);
      for (unsigned c = 0; c < k; ++c) {
        EXPECT_TRUE(SameCsr(precomputed[c], fused[c]))
            << name << " class=" << c << " threads=" << t;
      }
    }
  }
}

TEST(SplitEdges, MergeEdgeDisjointMatchesUnionFilter) {
  for (auto& [name, g] : split_sweep_graphs()) {
    const std::vector<CsrGraph> parts = split_edges(
        g, [&](vid_t u, vid_t v) { return edge_class(u, v, 3); }, 3);
    const CsrGraph direct = filter_edges(
        g, [&](vid_t u, vid_t v) { return edge_class(u, v, 3) != 0; });
    for (const int t : kThreadSweep) {
      ScopedThreads threads(t);
      EXPECT_TRUE(SameCsr(merge_edge_disjoint(parts[1], parts[2]), direct))
          << name << " threads=" << t;
    }
  }
}

TEST(SplitEdges, DegkPiecesMatchDirectFilters) {
  for (auto& [name, g] : split_sweep_graphs()) {
    const vid_t k = static_cast<vid_t>(g.average_degree()) + 1;
    const DegkDecomposition ref = [&] {
      // Reference pieces straight from filter_edges on the classification.
      DegkDecomposition d;
      d.is_high.assign(g.num_vertices(), 0);
      for (vid_t v = 0; v < g.num_vertices(); ++v) {
        d.is_high[v] = g.degree(v) > k ? 1 : 0;
      }
      const auto& hi = d.is_high;
      d.g_high =
          filter_edges(g, [&](vid_t u, vid_t v) { return hi[u] && hi[v]; });
      d.g_low =
          filter_edges(g, [&](vid_t u, vid_t v) { return !hi[u] && !hi[v]; });
      d.g_cross =
          filter_edges(g, [&](vid_t u, vid_t v) { return hi[u] != hi[v]; });
      d.g_low_cross =
          filter_edges(g, [&](vid_t u, vid_t v) { return !(hi[u] && hi[v]); });
      return d;
    }();
    for (const int t : kThreadSweep) {
      ScopedThreads threads(t);
      // kDegkAll takes the 3-way-split + merge path; the default piece set
      // takes the fused 2-way path. Both must equal the direct filters.
      const DegkDecomposition all = decompose_degk(g, k, kDegkAll);
      EXPECT_TRUE(SameCsr(all.g_high, ref.g_high)) << name << " t=" << t;
      EXPECT_TRUE(SameCsr(all.g_low, ref.g_low)) << name << " t=" << t;
      EXPECT_TRUE(SameCsr(all.g_cross, ref.g_cross)) << name << " t=" << t;
      EXPECT_TRUE(SameCsr(all.g_low_cross, ref.g_low_cross))
          << name << " t=" << t;
      const DegkDecomposition def =
          decompose_degk(g, k, kDegkHigh | kDegkLowCross);
      EXPECT_TRUE(SameCsr(def.g_high, ref.g_high)) << name << " t=" << t;
      EXPECT_TRUE(SameCsr(def.g_low_cross, ref.g_low_cross))
          << name << " t=" << t;
    }
  }
}

TEST(SplitEdges, BridgePiecesPartitionTheGraph) {
  for (auto& [name, g] : split_sweep_graphs()) {
    for (const int t : kThreadSweep) {
      ScopedThreads threads(t);
      const BridgeDecomposition d = decompose_bridge(g);
      // The two pieces are complementary: every arc of G lands in exactly
      // one, and g_bridges holds exactly the reported bridge edges.
      ASSERT_EQ(d.g_components.num_arcs() + d.g_bridges.num_arcs(),
                g.num_arcs())
          << name << " t=" << t;
      EXPECT_EQ(d.g_bridges.num_edges(), d.bridges.size())
          << name << " t=" << t;
      for (const auto& [child, parent] : d.bridges) {
        EXPECT_TRUE(d.g_bridges.has_edge(child, parent))
            << name << " t=" << t;
        EXPECT_FALSE(d.g_components.has_edge(child, parent))
            << name << " t=" << t;
      }
      EXPECT_TRUE(SameCsr(d.g_components,
                          merge_edge_disjoint(d.g_components, CsrGraph(
                              EidBuffer(g.num_vertices() + 1, 0), {}))))
          << name << " t=" << t;
    }
  }
}

TEST(PackIndex, MatchesSerialCompactionAtEveryThreadCount) {
  // Sizes straddle kSequentialGrain; predicates include empty, full, and
  // hash-sparse survivor sets.
  const std::size_t sizes[] = {0, 1, 10, 2047, 2048, 5000, 100000};
  const auto preds = std::vector<std::pair<std::string,
                                           bool (*)(std::size_t)>>{
      {"none", [](std::size_t) { return false; }},
      {"all", [](std::size_t) { return true; }},
      {"third", [](std::size_t i) { return i % 3 == 0; }},
      {"hash", [](std::size_t i) { return (mix64(i) & 7) == 0; }},
  };
  for (const std::size_t n : sizes) {
    for (const auto& [pname, pred] : preds) {
      std::vector<vid_t> expect;
      for (std::size_t i = 0; i < n; ++i) {
        if (pred(i)) expect.push_back(static_cast<vid_t>(i));
      }
      for (const int t : kThreadSweep) {
        ScopedThreads threads(t);
        const std::vector<vid_t> got = pack_index(n, pred);
        EXPECT_EQ(got, expect) << pname << " n=" << n << " threads=" << t;

        std::vector<vid_t> buf(n);
        const std::size_t cnt = pack_index(n, pred, std::span(buf));
        ASSERT_EQ(cnt, expect.size())
            << pname << " n=" << n << " threads=" << t;
        for (std::size_t i = 0; i < cnt; ++i) {
          ASSERT_EQ(buf[i], expect[i])
              << pname << " n=" << n << " threads=" << t << " i=" << i;
        }
      }
    }
  }
}

TEST(Pack, ValueCompactionPreservesOrder) {
  const std::size_t n = 50000;
  std::vector<vid_t> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = static_cast<vid_t>(mix64(i) & 0xffff);
  }
  const auto pred = [](vid_t v) { return (v & 1) == 0; };
  std::vector<vid_t> expect;
  for (const vid_t v : in) {
    if (pred(v)) expect.push_back(v);
  }
  for (const int t : kThreadSweep) {
    ScopedThreads threads(t);
    std::vector<vid_t> out(n);
    const std::size_t cnt = pack(std::span<const vid_t>(in), pred,
                                 std::span(out));
    ASSERT_EQ(cnt, expect.size()) << "threads=" << t;
    for (std::size_t i = 0; i < cnt; ++i) {
      ASSERT_EQ(out[i], expect[i]) << "threads=" << t << " i=" << i;
    }
  }
}

TEST(PackIndex, NestedParallelRegionMatchesSerialAndDistributesWork) {
  // Regression: pack used to size block_sums from omp_get_max_threads()
  // outside the region, which need not match the team delivered to an
  // inner region under nested parallelism. Called from inside an active
  // parallel region (as a batch worker or nested kernel would), it must
  // still be byte-identical to the serial scan AND actually distribute
  // the scan across the inner team.
  ScopedThreads restore(num_threads());
  const int prev_levels = omp_get_max_active_levels();
  omp_set_max_active_levels(2);

  const std::size_t n = 100000;
  const auto pred = [](std::size_t i) { return (mix64(i) & 3) == 0; };
  std::vector<vid_t> expect;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred(i)) expect.push_back(static_cast<vid_t>(i));
  }

  constexpr int kOuter = 2;
  std::vector<int> ok(kOuter, 0);
  std::vector<unsigned> inner_threads_seen(kOuter, 0);
#pragma omp parallel num_threads(kOuter)
  {
    const int outer = omp_get_thread_num();
    // Request a 2-thread inner team regardless of core count (this host
    // may report one processor; oversubscription is fine for a test).
    omp_set_num_threads(2);
    std::atomic<unsigned> mask{0};
    const auto counting_pred = [&](std::size_t i) {
      mask.fetch_or(1u << (omp_get_thread_num() & 31),
                    std::memory_order_relaxed);
      return pred(i);
    };
    const std::vector<vid_t> got = pack_index(n, counting_pred);
    ok[outer] = got == expect ? 1 : 0;
    inner_threads_seen[outer] = mask.load();
  }
  omp_set_max_active_levels(prev_levels);

  for (int o = 0; o < kOuter; ++o) {
    EXPECT_EQ(ok[o], 1) << "outer thread " << o << " result differs";
    // Work distributed: more than one inner thread evaluated the
    // predicate (bitmask has >= 2 bits set).
    EXPECT_GE(std::popcount(inner_threads_seen[o]), 2)
        << "outer thread " << o << " ran its inner scan serially";
  }
}

TEST(Pack, NestedParallelRegionPreservesByteIdentity) {
  ScopedThreads restore(num_threads());
  const int prev_levels = omp_get_max_active_levels();
  omp_set_max_active_levels(2);

  const std::size_t n = 60000;
  std::vector<vid_t> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = static_cast<vid_t>(mix64(i) & 0xffff);
  }
  const auto pred = [](vid_t v) { return (v & 3) != 0; };
  std::vector<vid_t> expect;
  for (const vid_t v : in) {
    if (pred(v)) expect.push_back(v);
  }

  std::vector<int> ok(2, 0);
#pragma omp parallel num_threads(2)
  {
    const int outer = omp_get_thread_num();
    omp_set_num_threads(2);
    std::vector<vid_t> out(n);
    const std::size_t cnt =
        pack(std::span<const vid_t>(in), pred, std::span(out));
    out.resize(cnt);
    ok[outer] = out == expect ? 1 : 0;
  }
  omp_set_max_active_levels(prev_levels);
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(ok[1], 1);
}

TEST(Scratch, SpansAreAlignedAndDisjoint) {
  Scratch& s = Scratch::local();
  Scratch::Region region(s);
  const std::span<std::uint8_t> a = s.take<std::uint8_t>(100);
  const std::span<std::uint8_t> b = s.take<std::uint8_t>(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u);
  // Disjoint even though both takes fit one cache-line-rounded block.
  EXPECT_GE(b.data(), a.data() + 128);
}

TEST(Scratch, RegionRewindReusesBytesWithoutGrowth) {
  Scratch& s = Scratch::local();
  Scratch::Region outer(s);
  {
    // Force a block into existence, then unwind so the loop takes below
    // can land on the same bytes.
    Scratch::Region prime(s);
    s.take<vid_t>(1 << 14);
  }
  const std::size_t cap = s.capacity_bytes();
  void* first = nullptr;
  for (int iter = 0; iter < 50; ++iter) {
    Scratch::Region region(s);
    const std::span<vid_t> v = s.take<vid_t>(1 << 14);
    if (first == nullptr) first = v.data();
    // Same bytes every iteration, and no new blocks allocated.
    EXPECT_EQ(v.data(), first);
    EXPECT_EQ(s.capacity_bytes(), cap);
  }
}

TEST(Scratch, NestedRegionsRestoreStackDiscipline) {
  Scratch& s = Scratch::local();
  Scratch::Region outer(s);
  const std::span<vid_t> a = s.take<vid_t>(1000);
  void* inner_ptr = nullptr;
  {
    Scratch::Region inner(s);
    inner_ptr = s.take<vid_t>(1000).data();
    EXPECT_NE(inner_ptr, static_cast<void*>(a.data()));
  }
  // After the inner region unwinds, the next take reuses its bytes.
  EXPECT_EQ(s.take<vid_t>(1000).data(), inner_ptr);
}

TEST(Scratch, TakeZeroAndFillInitialize) {
  Scratch& s = Scratch::local();
  Scratch::Region region(s);
  // Dirty the arena first so zero/fill actually have something to clear.
  const std::span<vid_t> dirty = s.take_fill<vid_t>(4096, vid_t{0xabcd});
  EXPECT_EQ(dirty[0], 0xabcdu);
  EXPECT_EQ(dirty[4095], 0xabcdu);
  {
    Scratch::Region inner(s);
    (void)inner;
  }
  Scratch::Region again(s);
  const std::span<vid_t> zeroed = s.take_zero<vid_t>(4096);
  for (const vid_t v : zeroed.first(16)) EXPECT_EQ(v, 0u);
  const std::span<vid_t> filled = s.take_fill<vid_t>(4096, kNoVertex);
  for (const vid_t v : filled.first(16)) EXPECT_EQ(v, kNoVertex);
}

// The cap tests build their own Scratch instance rather than touching the
// thread-local arena: trimming Scratch::local() here would perturb the
// capacity expectations of the region tests above when gtest shuffles.

TEST(Scratch, CapacityCapReleasesBlocksOnRewindToEmpty) {
  Scratch s;
  s.set_capacity_cap(1 << 16);  // 64 KiB retention cap
  {
    Scratch::Region region(s);
    s.take<std::uint8_t>(1 << 20);  // 1 MiB take exceeds the cap but succeeds
    EXPECT_GE(s.capacity_bytes(), std::size_t{1} << 20);
  }
  // Rewind-to-empty trims largest-first until under the cap.
  EXPECT_LE(s.capacity_bytes(), std::size_t{1} << 16);
}

TEST(Scratch, CapIsNotEnforcedWhileRegionsAreLive) {
  Scratch s;
  s.set_capacity_cap(1 << 12);
  Scratch::Region outer(s);
  const std::span<std::uint8_t> a = s.take<std::uint8_t>(1 << 16);
  {
    Scratch::Region inner(s);
    s.take<std::uint8_t>(1 << 16);
  }
  // The inner rewind is not a rewind-to-empty: a's block must survive and
  // a's bytes stay valid.
  a[0] = 0x5a;
  EXPECT_EQ(a[0], 0x5a);
  EXPECT_GE(s.capacity_bytes(), std::size_t{1} << 16);
}

TEST(Scratch, ZeroCapReleasesEverythingOnRewindToEmpty) {
  Scratch s;
  s.set_capacity_cap(0);
  {
    Scratch::Region region(s);
    s.take<vid_t>(1 << 12);
  }
  EXPECT_EQ(s.capacity_bytes(), 0u);
}

TEST(Scratch, ResetDropsAllBlocks) {
  Scratch s;
  {
    Scratch::Region region(s);
    s.take<vid_t>(1 << 14);
  }
  EXPECT_GT(s.capacity_bytes(), 0u);
  s.reset();
  EXPECT_EQ(s.capacity_bytes(), 0u);
  // The arena is usable again after reset.
  Scratch::Region region(s);
  const std::span<vid_t> v = s.take_fill<vid_t>(64, vid_t{7});
  EXPECT_EQ(v[63], 7u);
}

TEST(Scratch, RetainedBlocksAreReusedAfterTrim) {
  Scratch s;
  s.set_capacity_cap(1 << 20);
  for (int iter = 0; iter < 8; ++iter) {
    Scratch::Region region(s);
    s.take<std::uint8_t>(1 << 22);  // 4 MiB, over the 1 MiB cap
  }
  // Repeated over-cap jobs never accumulate capacity past one job's need
  // plus the retained remainder: after the final rewind we are under cap.
  EXPECT_LE(s.capacity_bytes(), std::size_t{1} << 20);
}

}  // namespace
}  // namespace sbg::test
