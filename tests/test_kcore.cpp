// KCORE decomposition (src/core/kcore.*): core numbers against hand-derived
// values on the canonical shapes, the parallel peel against the sequential
// Matula–Beck reference, the degeneracy-ordering property of the peel
// order, and the high/low/cross piece split through the shared
// check_decomposition oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/kcore.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

using test::figure1_graph;
using test::random_graph;

TEST(Kcore, PathIsAllCoreOne) {
  const CsrGraph g = test::make_path_200();
  const KcoreDecomposition d = decompose_kcore(g);
  EXPECT_EQ(d.degeneracy, 1u);
  for (vid_t v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(d.core[v], 1u);
}

TEST(Kcore, CycleIsAllCoreTwo) {
  const CsrGraph g = test::make_cycle_201();
  const KcoreDecomposition d = decompose_kcore(g);
  EXPECT_EQ(d.degeneracy, 2u);
  for (vid_t v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(d.core[v], 2u);
}

TEST(Kcore, StarCenterIsCoreOneDespiteItsDegree) {
  // The shape that separates KCORE from DEGk: the hub has degree 63 but
  // core number 1, so a core split keeps the whole star together.
  const CsrGraph g = test::make_star_64();
  const KcoreDecomposition d = decompose_kcore(g);
  EXPECT_EQ(d.degeneracy, 1u);
  for (vid_t v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(d.core[v], 1u);
  EXPECT_EQ(d.num_high, 0u);
}

TEST(Kcore, CompleteGraphIsOneCore) {
  const CsrGraph g = test::make_complete_24();
  const KcoreDecomposition d = decompose_kcore(g);
  EXPECT_EQ(d.degeneracy, 23u);
  for (vid_t v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(d.core[v], 23u);
  EXPECT_EQ(d.num_high, g.num_vertices());
}

TEST(Kcore, Figure1TrianglesAreCoreTwoBridgesCoreOne) {
  const CsrGraph g = figure1_graph();
  const KcoreDecomposition d = decompose_kcore(g);
  // a,b,c and d,e,f sit on triangles; g,h hang off bridges.
  const std::vector<vid_t> want = {2, 2, 2, 2, 2, 2, 1, 1};
  ASSERT_EQ(d.core.size(), want.size());
  for (vid_t v = 0; v < 8; ++v) EXPECT_EQ(d.core[v], want[v]) << "v=" << v;
  EXPECT_EQ(d.degeneracy, 2u);
}

TEST(Kcore, EmptyAndEdgelessGraphs) {
  const KcoreDecomposition empty = decompose_kcore(CsrGraph());
  EXPECT_EQ(empty.degeneracy, 0u);
  EXPECT_TRUE(empty.order.empty());

  EdgeList el;
  el.num_vertices = 5;  // isolated vertices only
  const KcoreDecomposition iso = decompose_kcore(build_csr(el));
  EXPECT_EQ(iso.degeneracy, 0u);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(iso.core[v], 0u);
}

TEST(Kcore, ParallelPeelMatchesSequentialReference) {
  for (const auto& c : test::shape_sweep()) {
    const CsrGraph graph = c.make();
    const KcoreDecomposition d = decompose_kcore(graph, 2, 0);
    const std::vector<vid_t> ref = kcore_reference(graph);
    ASSERT_EQ(d.core.size(), ref.size()) << c.name;
    for (vid_t v = 0; v < graph.num_vertices(); ++v) {
      ASSERT_EQ(d.core[v], ref[v]) << c.name << " v=" << v;
    }
  }
}

TEST(Kcore, OrderIsADegeneracyOrdering) {
  const CsrGraph g = random_graph(300, 900, 17);
  const KcoreDecomposition d = decompose_kcore(g);
  ASSERT_EQ(d.order.size(), g.num_vertices());

  // Permutation, core-nondecreasing along the order.
  std::vector<char> seen(g.num_vertices(), 0);
  vid_t prev_core = 0;
  for (const vid_t v : d.order) {
    ASSERT_LT(v, g.num_vertices());
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
    EXPECT_GE(d.core[v], prev_core);
    prev_core = d.core[v];
  }

  // Degeneracy ordering: every vertex has <= degeneracy neighbors later
  // in the order.
  std::vector<vid_t> pos(g.num_vertices());
  for (std::size_t i = 0; i < d.order.size(); ++i) {
    pos[d.order[i]] = static_cast<vid_t>(i);
  }
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    vid_t later = 0;
    for (const vid_t w : g.neighbors(v)) {
      if (pos[w] > pos[v]) ++later;
    }
    EXPECT_LE(later, d.degeneracy) << "v=" << v;
  }
}

TEST(Kcore, DecompositionOracleAcceptsEveryShape) {
  for (const auto& c : test::shape_sweep()) {
    const CsrGraph graph = c.make();
    for (const vid_t k : {vid_t(1), vid_t(2), vid_t(3)}) {
      const KcoreDecomposition d = decompose_kcore(graph, k, kKcoreAll);
      const check::CheckResult res =
          check::check_decomposition(graph, d, kKcoreAll);
      EXPECT_TRUE(res.ok) << c.name << " k=" << k << ": " << res.message();
    }
  }
}

TEST(Kcore, PieceSplitCoversEveryEdgeExactlyOnce) {
  const CsrGraph g = random_graph(200, 800, 23);
  const KcoreDecomposition d = decompose_kcore(g, 2, kKcoreAll);
  EXPECT_EQ(d.g_high.num_edges() + d.g_low.num_edges() +
                d.g_cross.num_edges(),
            g.num_edges());
}

TEST(Kcore, IsDeterministicAcrossRuns) {
  const CsrGraph g = random_graph(250, 1000, 29);
  const KcoreDecomposition a = decompose_kcore(g);
  const KcoreDecomposition b = decompose_kcore(g);
  EXPECT_EQ(a.core, b.core);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.degeneracy, b.degeneracy);
}

}  // namespace
}  // namespace sbg
