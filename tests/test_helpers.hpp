// Shared fixtures and graph factories for the sbg test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/solvers.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace sbg::test {

// ---------------------------------------------------------------- oracles --
// src/check/ is the single source of truth for result validity. The
// contract: every oracle inspects ONLY (graph, result array), never the
// solver that produced it; a failure names the first (lowest-id) violating
// vertex or edge, so the same input always produces the same message
// regardless of thread count or schedule. Tests should assert through
// these wrappers instead of re-deriving validity by hand — a solver result
// is "correct" exactly when its oracle passes.

/// check_matching as a gtest assertion: valid + maximal + symmetric.
inline ::testing::AssertionResult IsMaximalMatching(
    const CsrGraph& g, const std::vector<vid_t>& mate) {
  const check::MatchingReport rep = check::check_matching(g, mate);
  if (rep.result.ok) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << rep.result.message();
}

/// check_coloring as a gtest assertion: every vertex colored, no
/// monochromatic edge.
inline ::testing::AssertionResult IsProperColoring(
    const CsrGraph& g, const std::vector<std::uint32_t>& color) {
  const check::ColoringReport rep = check::check_coloring(g, color);
  if (rep.result.ok) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << rep.result.message();
}

/// check_mis as a gtest assertion: independent + maximal, no undecided.
inline ::testing::AssertionResult IsMaximalIndependentSet(
    const CsrGraph& g, const std::vector<MisState>& state) {
  const check::MisReport rep = check::check_mis(g, state);
  if (rep.result.ok) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << rep.result.message();
}

/// The paper's Figure 1 example graph: 8 vertices a..h (0..7).
/// Edges: a-b, b-c, c-a (triangle), c-d (bridge), d-e, e-f, f-d (triangle),
/// b-g (bridge), g-h (bridge).
inline CsrGraph figure1_graph() {
  EdgeList el;
  el.num_vertices = 8;
  const vid_t a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6, h = 7;
  el.add(a, b);
  el.add(b, c);
  el.add(c, a);
  el.add(c, d);
  el.add(d, e);
  el.add(e, f);
  el.add(f, d);
  el.add(b, g);
  el.add(g, h);
  return build_graph(std::move(el), /*connect=*/false);
}

/// Small connected random graph for property sweeps.
inline CsrGraph random_graph(vid_t n, eid_t m, std::uint64_t seed,
                             bool connect = true) {
  return build_graph(gen_erdos_renyi(n, m, seed), connect);
}

/// Descriptor for parameterized sweeps over mixed graph shapes.
struct GraphCase {
  std::string name;
  CsrGraph (*make)();
};

inline CsrGraph make_path_200() { return build_graph(gen_path(200), false); }
inline CsrGraph make_cycle_201() { return build_graph(gen_cycle(201), false); }
inline CsrGraph make_grid_16x12() {
  return build_graph(gen_grid(16, 12), false);
}
inline CsrGraph make_star_64() { return build_graph(gen_star(64), false); }
inline CsrGraph make_complete_24() {
  return build_graph(gen_complete(24), false);
}
inline CsrGraph make_tree_300() {
  return build_graph(gen_random_tree(300, 7), false);
}
inline CsrGraph make_er_sparse() { return random_graph(400, 700, 11); }
inline CsrGraph make_er_dense() { return random_graph(150, 3000, 13); }
inline CsrGraph make_rmat_small() {
  return build_graph(gen_rmat(512, 4000, 17), true);
}
inline CsrGraph make_rgg_small() {
  return build_graph(gen_rgg(600, 8.0, 19), true);
}
inline CsrGraph make_road_small() {
  return build_graph(gen_road(800, 1.5, 0.3, 23), true);
}
inline CsrGraph make_broom_small() {
  return build_graph(gen_broom(700, 29), true);
}
inline CsrGraph make_figure1() { return figure1_graph(); }

/// The standard shape sweep used by matching/coloring/MIS property tests.
inline std::vector<GraphCase> shape_sweep() {
  return {
      {"path200", &make_path_200},    {"cycle201", &make_cycle_201},
      {"grid16x12", &make_grid_16x12}, {"star64", &make_star_64},
      {"complete24", &make_complete_24}, {"tree300", &make_tree_300},
      {"er_sparse", &make_er_sparse}, {"er_dense", &make_er_dense},
      {"rmat", &make_rmat_small},     {"rgg", &make_rgg_small},
      {"road", &make_road_small},     {"broom", &make_broom_small},
      {"figure1", &make_figure1},
  };
}

inline std::string case_name(
    const ::testing::TestParamInfo<GraphCase>& info) {
  return info.param.name;
}

}  // namespace sbg::test
