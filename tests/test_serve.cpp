// sbg::serve: JSON parsing, HTTP framing, the hot-graph registry's LRU
// byte-budget contract, and the live daemon end-to-end — job round-trips
// that match direct run_job, registry hits on the second identical
// request, deadline 504s, admission 429s, and a drain that finishes
// queued work.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ingest/ingest.hpp"
#include "obs/obs.hpp"
#include "sched/sched.hpp"
#include "serve/client.hpp"
#include "serve/http.hpp"
#include "serve/minijson.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "test_helpers.hpp"

namespace sbg::test {
namespace {

using serve::JsonValue;
using serve::parse_json;

// ---------------------------------------------------------- minijson ------

TEST(MiniJson, ParsesScalarsAndStructure) {
  const auto doc = parse_json(
      R"({"s":"hi\n\u0041","n":-2.5e2,"b":true,"z":null,"a":[1,2,3],"o":{"k":7}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->get("s")->as_string(), "hi\nA");
  EXPECT_DOUBLE_EQ(doc->get("n")->as_number(), -250.0);
  EXPECT_TRUE(doc->get("b")->as_bool());
  EXPECT_TRUE(doc->get("z")->is_null());
  ASSERT_EQ(doc->get("a")->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc->get("o")->get("k")->as_number(), 7.0);
}

TEST(MiniJson, TypedGettersReportTypeErrors) {
  const auto doc = parse_json(R"({"seed":"forty-two","ok":1})");
  ASSERT_TRUE(doc.has_value());
  bool type_error = false;
  EXPECT_DOUBLE_EQ(doc->get_number("seed", 5, &type_error), 5.0);
  EXPECT_TRUE(type_error);
  type_error = false;
  EXPECT_DOUBLE_EQ(doc->get_number("missing", 9, &type_error), 9.0);
  EXPECT_FALSE(type_error);  // absent is a fallback, not a type error
}

TEST(MiniJson, RejectsMalformedInput) {
  const char* bad[] = {
      "",          "{",         "[1,]",      "{\"a\":}",   "nul",
      "01",        "1.",        "\"\\x\"",   "{\"a\":1}x", "\"\\ud800\"",
      "[1 2]",     "{\"a\" 1}", "+1",        "\"unterminated",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(parse_json(text).has_value()) << "accepted: " << text;
  }
}

TEST(MiniJson, DepthCapStopsNesting) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  for (int i = 0; i < 64; ++i) deep += "]";
  EXPECT_FALSE(parse_json(deep, 32).has_value());
  EXPECT_TRUE(parse_json(deep, 128).has_value());
}

TEST(MiniJson, RoundTripsServerReports) {
  // The server's own JSON (obs reports, job bodies) must parse — the fuzz
  // family and the differential check rely on this.
  sched::JobSpec spec;
  spec.name = "t";
  spec.graph_name = "er";
  spec.graph = std::make_shared<const CsrGraph>(random_graph(200, 600, 3));
  spec.problem = sched::Problem::kMM;
  spec.variant = "gm";
  const sched::BatchReport rep = sched::run_batch({spec});
  EXPECT_TRUE(parse_json(rep.to_json()).has_value());
}

// ---------------------------------------------------------- registry ------

std::shared_ptr<const CsrGraph> shared_er(vid_t n, eid_t m, std::uint64_t s) {
  return std::make_shared<const CsrGraph>(random_graph(n, m, s));
}

TEST(GraphRegistry, SecondAcquireIsAHit) {
  serve::GraphRegistry reg;
  std::string err;
  const auto first = reg.acquire("c-73", &err);
  ASSERT_NE(first, nullptr) << err;
  const auto second = reg.acquire("c-73", &err);
  EXPECT_EQ(first.get(), second.get());  // same resident CSR, no re-ingest
  const auto rows = reg.list();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].hits, 1u);  // the first acquire was the load, not a hit
  EXPECT_EQ(rows[0].source, "dataset:c-73");
}

TEST(GraphRegistry, UnknownNameFailsWithError) {
  serve::GraphRegistry reg;
  std::string err;
  EXPECT_EQ(reg.acquire("/no/such/file.mtx", &err), nullptr);
  EXPECT_NE(err.find("/no/such/file.mtx"), std::string::npos);
}

TEST(GraphRegistry, LruEvictionUnderByteCap) {
  const auto g1 = shared_er(400, 1200, 1);
  const auto g2 = shared_er(400, 1200, 2);
  const auto g3 = shared_er(400, 1200, 3);
  serve::RegistryOptions opt;
  // Budget for exactly two resident graphs of this size.
  const std::uint64_t one = ingest::resident_bytes(*g1);
  opt.mem_cap_bytes = 2 * one + one / 2;
  serve::GraphRegistry reg(opt);
  reg.put("a", g1, "posted");
  reg.put("b", g2, "posted");
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_NE(reg.get("a"), nullptr);  // bump a: b is now LRU
  reg.put("c", g3, "posted");
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.get("b"), nullptr);  // b evicted
  EXPECT_NE(reg.get("a"), nullptr);
  EXPECT_NE(reg.get("c"), nullptr);
  EXPECT_LE(reg.resident_bytes(), opt.mem_cap_bytes);
}

TEST(GraphRegistry, NewestEntrySurvivesEvenAloneOverCap) {
  serve::RegistryOptions opt;
  opt.mem_cap_bytes = 1;  // absurd: everything is over budget
  serve::GraphRegistry reg(opt);
  reg.put("big", shared_er(500, 2000, 5), "posted");
  EXPECT_EQ(reg.size(), 1u);  // the graph being asked for is never rejected
}

TEST(GraphRegistry, EvictionKeepsInFlightHoldersAlive) {
  serve::RegistryOptions opt;
  opt.mem_cap_bytes = 1;
  serve::GraphRegistry reg(opt);
  reg.put("a", shared_er(300, 900, 7), "posted");
  const auto held = reg.get("a");
  reg.put("b", shared_er(300, 900, 8), "posted");  // evicts a
  EXPECT_EQ(reg.get("a"), nullptr);
  ASSERT_NE(held, nullptr);  // our ref outlives the registry entry
  EXPECT_EQ(held->num_vertices(), 300u);
}

// -------------------------------------------------------------- http ------

TEST(Http, ErrorBodyEscapes) {
  EXPECT_EQ(serve::error_body("a\"b"), "{\"error\":\"a\\\"b\"}");
}

TEST(Http, StatusTextCoversServedCodes) {
  EXPECT_STREQ(serve::status_text(429), "Too Many Requests");
  EXPECT_STREQ(serve::status_text(504), "Gateway Timeout");
  EXPECT_STREQ(serve::status_text(999), "Unknown");
}

// ---------------------------------------------------------- end to end ----

class ServeEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::ServerOptions opt;
    opt.workers = 3;
    opt.queue_cap = 4;
    server_ = std::make_unique<serve::Server>(opt);
    std::string err;
    ASSERT_TRUE(server_->start(&err)) << err;
  }

  serve::ClientResponse post(const std::string& target,
                             const std::string& body) {
    serve::ClientResponse res;
    std::string err;
    EXPECT_TRUE(serve::http_request(server_->port(), "POST", target, body,
                                    &res, &err))
        << err;
    return res;
  }

  serve::ClientResponse get(const std::string& target) {
    serve::ClientResponse res;
    std::string err;
    EXPECT_TRUE(
        serve::http_request(server_->port(), "GET", target, "", &res, &err))
        << err;
    return res;
  }

  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeEndToEnd, HealthzAnswers) {
  const auto res = get("/healthz");
  EXPECT_EQ(res.status, 200);
  const auto doc = parse_json(res.body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("status", ""), "ok");
  EXPECT_FALSE(doc->get_bool("draining", true));
}

TEST_F(ServeEndToEnd, JobRoundTripMatchesDirectRunJob) {
  const auto res =
      post("/v1/jobs",
           R"({"graph":"c-73","problem":"mm","variant":"rand-gm","seed":9})");
  ASSERT_EQ(res.status, 200) << res.body;
  const auto doc = parse_json(res.body);
  ASSERT_TRUE(doc.has_value()) << res.body;
  EXPECT_EQ(doc->get_string("status", ""), "ok");
  EXPECT_EQ(doc->get_string("resolved_variant", ""), "rand-gm");
  ASSERT_TRUE(doc->get("obs") != nullptr && doc->get("obs")->is_object());

  // Differential: the served result must equal a direct run_job on the
  // same spec — rand-gm is schedule-deterministic, so hashes compare.
  sched::JobSpec spec;
  spec.name = "direct";
  spec.graph_name = "c-73";
  spec.graph = server_->registry().get("c-73");
  ASSERT_NE(spec.graph, nullptr);  // the job left the graph resident
  spec.problem = sched::Problem::kMM;
  spec.variant = "rand-gm";
  spec.seed = 9;
  const sched::JobResult direct = sched::run_job(spec);
  ASSERT_EQ(direct.status, sched::JobStatus::kOk);
  EXPECT_EQ(doc->get_string("result_hash", ""),
            std::to_string(direct.result_hash));
  EXPECT_EQ(std::uint64_t(doc->get_number("value", 0)), direct.value);
}

TEST_F(ServeEndToEnd, SecondIdenticalJobHitsRegistry) {
  const std::string body = R"({"graph":"c-73","problem":"mis","seed":3})";
  ASSERT_EQ(post("/v1/jobs", body).status, 200);
  ASSERT_EQ(post("/v1/jobs", body).status, 200);
  const auto rows = server_->registry().list();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GE(rows[0].hits, 1u);  // second request re-used the resident CSR
  // And the acceptance-criterion counter is visible in /metrics.
  const auto metrics = get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("sbg_serve_registry_hits_total"),
            std::string::npos);
}

TEST_F(ServeEndToEnd, GraphsEndpointListsAndWarms) {
  ASSERT_EQ(post("/v1/graphs", R"({"name":"c-73"})").status, 200);
  const auto res = get("/v1/graphs");
  ASSERT_EQ(res.status, 200);
  const auto doc = parse_json(res.body);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->get("graphs")->is_array());
  ASSERT_EQ(doc->get("graphs")->as_array().size(), 1u);
  EXPECT_EQ(doc->get("graphs")->as_array()[0].get_string("name", ""), "c-73");

  // Posting a dataset under an alias registers it by that alias.
  ASSERT_EQ(
      post("/v1/graphs", R"({"name":"tiny","dataset":"c-73","scale":0.01})")
          .status,
      200);
  EXPECT_NE(server_->registry().get("tiny"), nullptr);
}

TEST_F(ServeEndToEnd, ExpiredDeadlineIs504Cancelled) {
  const auto res = post(
      "/v1/jobs",
      R"({"graph":"c-73","problem":"color","deadline_ms":0.000001})");
  EXPECT_EQ(res.status, 504);
  const auto doc = parse_json(res.body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("status", ""), "cancelled");
}

TEST_F(ServeEndToEnd, BadRequestsGetFourHundreds) {
  EXPECT_EQ(post("/v1/jobs", "not json").status, 400);
  EXPECT_EQ(post("/v1/jobs", R"({"problem":"mm"})").status, 400);  // no graph
  EXPECT_EQ(post("/v1/jobs", R"({"graph":"c-73","problem":"tsp"})").status,
            422);
  EXPECT_EQ(post("/v1/jobs", R"({"graph":"c-73","variant":"nope"})").status,
            422);
  EXPECT_EQ(post("/v1/jobs", R"({"graph":"ghost-graph"})").status, 404);
  EXPECT_EQ(post("/v1/jobs", R"({"graph":"c-73","seed":"x"})").status, 400);
  EXPECT_EQ(get("/v1/nowhere").status, 404);
  EXPECT_EQ(post("/healthz", "").status, 405);
}

TEST_F(ServeEndToEnd, OversizedBodyIs413) {
  serve::ServerOptions opt;
  opt.limits.max_body_bytes = 64;
  serve::Server small(opt);
  std::string err;
  ASSERT_TRUE(small.start(&err)) << err;
  serve::ClientResponse res;
  ASSERT_TRUE(serve::http_request(small.port(), "POST", "/v1/jobs",
                                  std::string(1000, 'x'), &res, &err))
      << err;
  EXPECT_EQ(res.status, 413);
  small.shutdown();
}

TEST_F(ServeEndToEnd, MalformedRequestLineIs400) {
  std::string raw;
  std::string err;
  ASSERT_TRUE(serve::http_raw(server_->port(), "GARBAGE\r\n\r\n", &raw, &err))
      << err;
  EXPECT_NE(raw.find("400"), std::string::npos);
}

TEST_F(ServeEndToEnd, ChunkedTransferIs501) {
  std::string raw;
  std::string err;
  ASSERT_TRUE(serve::http_raw(server_->port(),
                              "POST /v1/jobs HTTP/1.1\r\n"
                              "Transfer-Encoding: chunked\r\n\r\n",
                              &raw, &err))
      << err;
  EXPECT_NE(raw.find("501"), std::string::npos);
}

TEST_F(ServeEndToEnd, OverloadGets429) {
  // 3 workers sleeping + a queue of 4: the 8th+ concurrent request must be
  // turned away. Fire a burst and count refusals.
  const std::string slow =
      R"({"graph":"c-73","problem":"mm","sleep_ms":400})";
  std::atomic<int> rejected{0};
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(16);
  for (int i = 0; i < 16; ++i) {
    clients.emplace_back([&] {
      serve::ClientResponse res;
      std::string err;
      if (!serve::http_request(server_->port(), "POST", "/v1/jobs", slow,
                               &res, &err, 30.0)) {
        return;  // connect raced the burst; ignore
      }
      if (res.status == 429) rejected.fetch_add(1);
      if (res.status == 200) ok.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_GT(rejected.load(), 0) << "admission control never engaged";
  EXPECT_GT(ok.load(), 0) << "admitted requests should still succeed";
}

TEST(HttpClient, TruncatedStatusLineIsAStructuredError) {
  // Regression: "HTTP/1.1 20" followed by headers used to be parsed by
  // scanning the WHOLE response for a space + 3 digits, so a later header
  // like "X: 2000" could donate the status code. The status line must be
  // judged alone, and a truncated one must fail with a message.
  serve::ClientResponse res;
  std::string err;
  EXPECT_FALSE(
      serve::parse_http_response("HTTP/1.1 20\r\nX: 2000\r\n\r\n", &res, &err));
  EXPECT_FALSE(err.empty());

  err.clear();
  EXPECT_FALSE(serve::parse_http_response("HTTP/1.1 20", &res, &err));
  EXPECT_NE(err.find("status line"), std::string::npos) << err;

  for (const char* bad :
       {"", "\r\n\r\n", "HTTP/1.1\r\n\r\n", "HTTP/1.1 abc OK\r\n\r\n"}) {
    err.clear();
    EXPECT_FALSE(serve::parse_http_response(bad, &res, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(HttpClient, WellFormedResponseStillParses) {
  serve::ClientResponse res;
  std::string err;
  ASSERT_TRUE(serve::parse_http_response(
      "HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\n"
      "Content-Length: 2\r\n\r\n{}",
      &res, &err))
      << err;
  EXPECT_EQ(res.status, 404);
  EXPECT_EQ(res.body, "{}");
}

TEST_F(ServeEndToEnd, UpdatesEndpointAppliesBatchAndRepairs) {
  // Warm a named graph, then stream two update batches at it.
  ASSERT_EQ(post("/v1/graphs", R"({"name":"dynG","dataset":"c-73"})").status,
            200);
  const auto res = post("/v1/graphs/dynG/updates",
                        R"({"insert":[[0,1],[2,5],[7,9]],)"
                        R"("delete":[[0,1]],"verify":true})");
  ASSERT_EQ(res.status, 200) << res.body;
  const auto doc = parse_json(res.body);
  ASSERT_TRUE(doc.has_value()) << res.body;
  EXPECT_EQ(doc->get_string("status", ""), "ok");
  EXPECT_TRUE(doc->get_string("error", "x").empty());
  EXPECT_TRUE(doc->get_bool("verified", false));
  EXPECT_EQ(doc->get_number("batches", 0), 1.0);
  ASSERT_TRUE(doc->get("repair") != nullptr && doc->get("repair")->is_object());

  // Second batch reuses the session: batches counter advances and the
  // graph keeps its accumulated state.
  const auto res2 = post("/v1/graphs/dynG/updates",
                         R"({"insert":[[3,11]],"verify":true})");
  ASSERT_EQ(res2.status, 200) << res2.body;
  const auto doc2 = parse_json(res2.body);
  ASSERT_TRUE(doc2.has_value());
  EXPECT_EQ(doc2->get_number("batches", 0), 2.0);
}

TEST_F(ServeEndToEnd, UpdatesEndpointValidatesItsInput) {
  ASSERT_EQ(post("/v1/graphs", R"({"name":"dynV","dataset":"c-73"})").status,
            200);
  // Unknown graph -> 404.
  EXPECT_EQ(post("/v1/graphs/no-such-graph/updates", "{}").status, 404);
  // Malformed JSON -> 400.
  EXPECT_EQ(post("/v1/graphs/dynV/updates", "{nope").status, 400);
  // Non-pair entries -> 400.
  EXPECT_EQ(post("/v1/graphs/dynV/updates", R"({"insert":[[1]]})").status,
            400);
  EXPECT_EQ(
      post("/v1/graphs/dynV/updates", R"({"insert":[["a","b"]]})").status,
      400);
  // Fractional / out-of-range endpoints -> 400.
  EXPECT_EQ(
      post("/v1/graphs/dynV/updates", R"({"insert":[[0.5,1]]})").status, 400);
  // Endpoint past the growth cap -> 422.
  EXPECT_EQ(
      post("/v1/graphs/dynV/updates", R"({"insert":[[0,99999999]]})").status,
      422);
  // Unknown repair problem -> 422 (fresh name so creation-time parsing
  // runs).
  ASSERT_EQ(post("/v1/graphs", R"({"name":"dynW","dataset":"c-73"})").status,
            200);
  EXPECT_EQ(post("/v1/graphs/dynW/updates",
                 R"({"repair":["mm","nope"]})")
                .status,
            422);
  // GET -> 405.
  EXPECT_EQ(get("/v1/graphs/dynV/updates").status, 405);
}

TEST_F(ServeEndToEnd, ConcurrentUpdatesSerializePerSession) {
  ASSERT_EQ(post("/v1/graphs", R"({"name":"dynC","dataset":"c-73"})").status,
            200);
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < 3; ++r) {
        const int base = 16 * c + r;
        const std::string body =
            "{\"verify\":true,\"insert\":[[" + std::to_string(base) + "," +
            std::to_string(base + 5) + "]],\"delete\":[[" +
            std::to_string(base) + "," + std::to_string(base + 1) + "]]}";
        serve::ClientResponse res;
        std::string err;
        if (serve::http_request(server_->port(), "POST",
                                "/v1/graphs/dynC/updates", body, &res,
                                &err) &&
            res.status == 200) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  // Every batch must have been admitted, serialized, and oracle-clean.
  EXPECT_EQ(ok.load(), 12);
}

TEST_F(ServeEndToEnd, DrainFinishesQueuedWorkThenRefuses) {
  // A slow job in flight, then shutdown from another thread: the in-flight
  // response must still arrive complete, and new connections must fail.
  std::thread client([&] {
    serve::ClientResponse res;
    std::string err;
    ASSERT_TRUE(serve::http_request(
        server_->port(), "POST", "/v1/jobs",
        R"({"graph":"c-73","problem":"mm","sleep_ms":300})", &res, &err));
    EXPECT_EQ(res.status, 200) << res.body;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int port = server_->port();
  server_->shutdown();  // blocks until the in-flight job finished
  client.join();
  serve::ClientResponse res;
  std::string err;
  EXPECT_FALSE(serve::http_request(port, "GET", "/healthz", "", &res, &err));
}

}  // namespace
}  // namespace sbg::test
