#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

TEST(MatrixMarket, ParsesSymmetricPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "4 4 3\n"
      "2 1\n"
      "3 2\n"
      "4 4\n");  // self loop, dropped by normalize
  EdgeList el = read_matrix_market(in);
  EXPECT_EQ(el.num_vertices, 4u);
  EXPECT_EQ(el.size(), 3u);
  const CsrGraph g = build_graph(std::move(el), false);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(MatrixMarket, ParsesRealValuesIgnoringWeights) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 2\n"
      "1 2 0.5\n"
      "3 1 -2.25\n");
  EdgeList el = read_matrix_market(in);
  EXPECT_EQ(el.size(), 2u);
  EXPECT_EQ(el.edges[0], (Edge{0, 1}));
}

TEST(MatrixMarket, RejectsGarbage) {
  std::istringstream no_banner("3 3 1\n1 2\n");
  EXPECT_THROW(read_matrix_market(no_banner), InputError);

  std::istringstream bad_index(
      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n5 1\n");
  EXPECT_THROW(read_matrix_market(bad_index), InputError);

  std::istringstream truncated(
      "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 2\n");
  EXPECT_THROW(read_matrix_market(truncated), InputError);
}

TEST(EdgeListIo, RoundTrips) {
  EdgeList el;
  el.num_vertices = 5;
  el.add(0, 1);
  el.add(1, 4);
  el.add(2, 3);
  normalize_edge_list(el);

  std::stringstream buf;
  write_edge_list(buf, el);
  EdgeList back = read_edge_list(buf);
  EXPECT_EQ(back.num_vertices, 5u);
  EXPECT_EQ(back.edges, el.edges);
}

TEST(EdgeListIo, SkipsCommentsAndRejectsJunk) {
  std::istringstream good("# header\n0 1\n\n2 3\n");
  EXPECT_EQ(read_edge_list(good).size(), 2u);

  std::istringstream bad("0 x\n");
  EXPECT_THROW(read_edge_list(bad), InputError);
}

TEST(EdgeListIo, AcceptsWeightedLinesAndPercentComments) {
  // SNAP/DIMACS-style inputs: `u v w` rows (weight ignored) and both
  // `#` and `%` comment leaders.
  std::istringstream in(
      "% percent header\n"
      "# hash header\n"
      "0 1 3\n"
      "1 2\n"
      "2 3 0.75\n");
  EdgeList el = read_edge_list(in);
  ASSERT_EQ(el.size(), 3u);
  EXPECT_EQ(el.edges[0], (Edge{0, 1}));
  EXPECT_EQ(el.edges[2], (Edge{2, 3}));

  // Four or more fields is malformed, not a wider weight.
  std::istringstream wide("0 1 2 3\n");
  EXPECT_THROW(read_edge_list(wide), InputError);
}

TEST(EdgeListIo, ErrorsCarryOneBasedLineNumbers) {
  std::istringstream bad("0 1\n# c\n\n2 zzz\n");
  try {
    read_edge_list(bad);
    FAIL() << "expected InputError";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }

  std::istringstream mm(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "1 2\n"
      "oops\n");
  try {
    read_matrix_market(mm);
    FAIL() << "expected InputError";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(BinaryIo, RoundTripsExactly) {
  const CsrGraph g = test::random_graph(300, 800, 3);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  const CsrGraph back = read_binary(buf);
  EXPECT_TRUE(std::equal(g.offsets().begin(), g.offsets().end(),
                         back.offsets().begin(), back.offsets().end()));
  EXPECT_TRUE(std::equal(g.adjacency().begin(), g.adjacency().end(),
                         back.adjacency().begin(), back.adjacency().end()));
}

TEST(BinaryIo, RejectsWrongMagicAndTruncation) {
  std::stringstream junk;
  junk << "NOTSBG00 trailing";
  EXPECT_THROW(read_binary(junk), InputError);

  const CsrGraph g = test::random_graph(50, 100, 4);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);
  std::istringstream cut(bytes, std::ios::binary);
  EXPECT_THROW(read_binary(cut), InputError);
}

TEST(FileIo, SaveAndLoadByExtension) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "sbg_io_test";
  fs::create_directories(dir);
  const CsrGraph g = test::figure1_graph();

  const auto sbg_path = (dir / "g.sbg").string();
  save_graph(sbg_path, g);
  const CsrGraph g1 = load_graph(sbg_path);
  EXPECT_EQ(g1.num_edges(), g.num_edges());

  const auto el_path = (dir / "g.el").string();
  save_graph(el_path, g);
  const CsrGraph g2 = load_graph(el_path);
  EXPECT_EQ(g2.num_edges(), g.num_edges());

  EXPECT_THROW(load_graph((dir / "missing.el").string()), InputError);
  EXPECT_THROW(load_graph((dir / "g.xyz").string()), InputError);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sbg
