#include <gtest/gtest.h>

#include "gpusim/gpu_algorithms.hpp"
#include "graph/builder.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

using gpu::Device;
using gpu::DeviceConfig;

TEST(Device, CountsLaunchesThreadsAndOverhead) {
  DeviceConfig cfg;
  cfg.launch_overhead_seconds = 1.0;  // exaggerated for observability
  cfg.throughput_factor = 0.0;        // isolate the launch tax
  Device dev(cfg);
  std::vector<int> data(1000, 0);
  dev.launch(1000, [&](std::size_t i) { data[i] = 1; });
  dev.launch(500, [&](std::size_t) {});
  EXPECT_EQ(dev.kernels_launched(), 2u);
  EXPECT_EQ(dev.threads_launched(), 1500u);
  EXPECT_DOUBLE_EQ(dev.simulated_seconds(), 2.0);
  EXPECT_EQ(std::count(data.begin(), data.end(), 1), 1000);
  dev.reset();
  EXPECT_EQ(dev.kernels_launched(), 0u);
  EXPECT_DOUBLE_EQ(dev.simulated_seconds(), 0.0);
}

TEST(Device, SimulatedClockChargesPerRound) {
  // A round-heavy algorithm must accumulate proportionally more simulated
  // time than a round-light one on the same graph.
  const CsrGraph g = build_graph(gen_path(3000), false);
  Device few, many;
  std::vector<MisState> s1(g.num_vertices(), MisState::kUndecided);
  gpu::oriented_extend_gpu(few, g, s1);
  std::vector<vid_t> mate(g.num_vertices(), kNoVertex);
  // GM-style vain tendency does not exist in LMAX; use it as the baseline
  // and compare kernel counts instead of wall time (wall time on a 1-core
  // host is noisy).
  gpu::lmax_extend_gpu(many, g, mate, 1);
  EXPECT_GT(few.kernels_launched(), 0u);
  EXPECT_GT(many.kernels_launched(), 0u);
}

TEST(GpuExtenders, LmaxMatchesCpuExactly) {
  // Same deterministic weights, same algorithm -> identical matching.
  const CsrGraph g = test::random_graph(800, 3200, 5);
  std::vector<vid_t> cpu_mate(g.num_vertices(), kNoVertex);
  const vid_t cpu_rounds = lmax_extend(g, cpu_mate, 9);
  Device dev;
  std::vector<vid_t> gpu_mate(g.num_vertices(), kNoVertex);
  const vid_t gpu_rounds = gpu::lmax_extend_gpu(dev, g, gpu_mate, 9);
  EXPECT_EQ(cpu_mate, gpu_mate);
  EXPECT_EQ(cpu_rounds, gpu_rounds);
}

TEST(GpuExtenders, LubyMatchesCpuExactly) {
  const CsrGraph g = test::random_graph(800, 3200, 7);
  std::vector<MisState> cpu_state(g.num_vertices(), MisState::kUndecided);
  luby_extend(g, cpu_state, 11);
  Device dev;
  std::vector<MisState> gpu_state(g.num_vertices(), MisState::kUndecided);
  gpu::luby_extend_gpu(dev, g, gpu_state, 11);
  EXPECT_EQ(cpu_state, gpu_state);
}

TEST(GpuExtenders, EbProducesProperColorings) {
  for (const auto& c : test::shape_sweep()) {
    const CsrGraph g = c.make();
    Device dev;
    std::vector<std::uint32_t> color(g.num_vertices(), kNoColor);
    gpu::eb_extend_gpu(dev, g, color);
    std::string err;
    EXPECT_TRUE(verify_coloring(g, color, &err)) << c.name << ": " << err;
  }
}

class GpuPipelines : public ::testing::TestWithParam<test::GraphCase> {};

TEST_P(GpuPipelines, MatchingCompositesAreMaximal) {
  const CsrGraph g = GetParam().make();
  std::string err;
  EXPECT_TRUE(verify_maximal_matching(g, gpu::mm_lmax_gpu(g).mate, &err))
      << err;
  EXPECT_TRUE(verify_maximal_matching(g, gpu::mm_bridge_gpu(g).mate, &err))
      << err;
  EXPECT_TRUE(verify_maximal_matching(g, gpu::mm_rand_gpu(g).mate, &err))
      << err;
  EXPECT_TRUE(verify_maximal_matching(g, gpu::mm_degk_gpu(g).mate, &err))
      << err;
}

TEST_P(GpuPipelines, ColoringCompositesAreProper) {
  const CsrGraph g = GetParam().make();
  std::string err;
  EXPECT_TRUE(verify_coloring(g, gpu::color_eb_gpu(g).color, &err)) << err;
  EXPECT_TRUE(verify_coloring(g, gpu::color_bridge_gpu(g).color, &err)) << err;
  EXPECT_TRUE(verify_coloring(g, gpu::color_rand_gpu(g).color, &err)) << err;
  EXPECT_TRUE(verify_coloring(g, gpu::color_degk_gpu(g).color, &err)) << err;
}

TEST_P(GpuPipelines, MisCompositesAreValid) {
  const CsrGraph g = GetParam().make();
  std::string err;
  EXPECT_TRUE(verify_mis(g, gpu::mis_luby_gpu(g).state, &err)) << err;
  EXPECT_TRUE(verify_mis(g, gpu::mis_bridge_gpu(g).state, &err)) << err;
  EXPECT_TRUE(verify_mis(g, gpu::mis_rand_gpu(g).state, &err)) << err;
  EXPECT_TRUE(verify_mis(g, gpu::mis_degk_gpu(g).state, &err)) << err;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GpuPipelines,
                         ::testing::ValuesIn(test::shape_sweep()),
                         test::case_name);

TEST(GpuPipelines, SimulatedTimeIncludesLaunchTax) {
  const CsrGraph g = build_graph(gen_path(2000), false);
  DeviceConfig cfg;
  cfg.launch_overhead_seconds = 1e-3;
  Device dev(cfg);
  const MatchResult r = gpu::mm_lmax_gpu(g, 42, &dev);
  EXPECT_GE(r.total_seconds, 1e-3 * static_cast<double>(dev.kernels_launched()));
  EXPECT_GT(dev.kernels_launched(), 3u);
}

}  // namespace
}  // namespace sbg
