#include <gtest/gtest.h>

#include "coloring/coloring.hpp"
#include "graph/builder.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

// ------------------------------------------------------------ baselines --

TEST(VB, ColorsShapesProperly) {
  for (const auto& c : test::shape_sweep()) {
    const CsrGraph g = c.make();
    const ColorResult r = color_vb(g);
    EXPECT_TRUE(test::IsProperColoring(g, r.color)) << c.name;
    EXPECT_GE(r.num_colors, g.num_edges() > 0 ? 2u : 0u) << c.name;
  }
}

TEST(EB, ColorsShapesProperly) {
  for (const auto& c : test::shape_sweep()) {
    const CsrGraph g = c.make();
    const ColorResult r = color_eb(g);
    EXPECT_TRUE(test::IsProperColoring(g, r.color)) << c.name;
  }
}

TEST(VB, CompleteGraphNeedsExactlyNColors) {
  const CsrGraph g = build_graph(gen_complete(16), false);
  EXPECT_EQ(color_vb(g).num_colors, 16u);
  EXPECT_EQ(color_eb(g).num_colors, 16u);
}

TEST(VB, PathStaysNearTwoColors) {
  const CsrGraph g = build_graph(gen_path(500), false);
  const ColorResult r = color_vb(g);
  EXPECT_TRUE(test::IsProperColoring(g, r.color));
  EXPECT_LE(r.num_colors, 3u);  // speculative coloring may spend one extra
}

TEST(VB, TinyForbiddenWindowStillTerminates) {
  const CsrGraph g = build_graph(gen_complete(10), false);
  std::vector<std::uint32_t> color(10, kNoColor);
  vb_extend(g, color, /*forbidden_size=*/1);  // worst case: 1-slot window
  EXPECT_TRUE(test::IsProperColoring(g, color));
}

TEST(Extenders, RespectPreColoredVertices) {
  const CsrGraph g = build_graph(gen_path(6), false);
  std::vector<std::uint32_t> color(6, kNoColor);
  color[2] = 7;  // pinned exotic color
  vb_extend(g, color, 4);
  EXPECT_EQ(color[2], 7u);
  EXPECT_TRUE(test::IsProperColoring(g, color));
}

TEST(Extenders, ActiveMaskLeavesOthersUncolored) {
  const CsrGraph g = build_graph(gen_complete(8), false);
  std::vector<std::uint32_t> color(8, kNoColor);
  std::vector<std::uint8_t> active(8, 0);
  active[1] = active[5] = 1;
  eb_extend(g, color, 0, &active);
  EXPECT_NE(color[1], kNoColor);
  EXPECT_NE(color[5], kNoColor);
  EXPECT_NE(color[1], color[5]);
  EXPECT_EQ(color[0], kNoColor);
}

TEST(SmallPalette, ThreeColorsSufficeOnPathsAndCycles) {
  for (const auto make : {test::make_path_200, test::make_cycle_201}) {
    const CsrGraph g = make();
    std::vector<std::uint32_t> color(g.num_vertices(), kNoColor);
    std::vector<std::uint8_t> active(g.num_vertices(), 1);
    small_palette_extend(g, color, /*base=*/10, /*palette=*/3, active);
    EXPECT_TRUE(test::IsProperColoring(g, color));
    for (const auto c : color) {
      EXPECT_GE(c, 10u);
      EXPECT_LT(c, 13u);
    }
  }
}

TEST(Verify, CatchesBrokenColorings) {
  // The oracle names the first violating vertex/edge; see test_check.cpp
  // for the full per-violation coverage of check::check_coloring.
  const CsrGraph g = build_graph(gen_path(4), false);
  std::string err;
  std::vector<std::uint32_t> color(4, kNoColor);
  EXPECT_FALSE(verify_coloring(g, color, &err));
  EXPECT_EQ(err, "uncolored vertex (vertex 0)");
  color = {0, 0, 1, 0};  // edge 0-1 monochromatic
  EXPECT_FALSE(verify_coloring(g, color, &err));
  EXPECT_EQ(err, "monochromatic edge (edge 0-1)");
  color = {0, 1, 0, 1};
  EXPECT_TRUE(verify_coloring(g, color, &err));
}

// ------------------------------------------------ composites, all shapes --

struct ColorCase {
  test::GraphCase graph;
  ColorEngine engine;
};

class ColoringComposites : public ::testing::TestWithParam<ColorCase> {};

TEST_P(ColoringComposites, AllThreeProduceProperColorings) {
  const CsrGraph g = GetParam().graph.make();
  const ColorEngine e = GetParam().engine;

  const ColorResult b = color_bridge(g, e);
  EXPECT_TRUE(test::IsProperColoring(g, b.color)) << "bridge";

  const ColorResult r = color_rand(g, 2, e);
  EXPECT_TRUE(test::IsProperColoring(g, r.color)) << "rand";

  const ColorResult d = color_degk(g, 2, e);
  EXPECT_TRUE(test::IsProperColoring(g, d.color)) << "degk";
}

std::vector<ColorCase> coloring_cases() {
  std::vector<ColorCase> cases;
  for (const auto& gc : test::shape_sweep()) {
    cases.push_back({gc, ColorEngine::kVB});
    cases.push_back({gc, ColorEngine::kEB});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColoringComposites, ::testing::ValuesIn(coloring_cases()),
    [](const auto& info) {
      return info.param.graph.name +
             (info.param.engine == ColorEngine::kVB ? "_vb" : "_eb");
    });

TEST(ColoringComposites, DegkUsesDisjointLowPalette) {
  const CsrGraph g = test::make_broom_small();
  const ColorResult r = color_degk(g, 2);
  EXPECT_TRUE(test::IsProperColoring(g, r.color));
  // Low vertices use at most k+1 = 3 colors above the high palette, so
  // the total is bounded by colors(G_H) + 3.
  const ColorResult high_only = color_vb(g);  // upper bound sanity
  EXPECT_LE(r.num_colors, high_only.num_colors + 3);
}

TEST(ColoringComposites, RandConflictFractionGrowsWithPartitions) {
  const CsrGraph g = test::random_graph(3000, 12'000, 17);
  const ColorResult k2 = color_rand(g, 2);
  const ColorResult k8 = color_rand(g, 8);
  EXPECT_TRUE(test::IsProperColoring(g, k2.color));
  EXPECT_TRUE(test::IsProperColoring(g, k8.color));
  // More partitions -> more cross edges -> more stitch conflicts
  // (Section IV-C/IV-D).
  EXPECT_GT(k8.conflicted_vertices, k2.conflicted_vertices);
}

TEST(ColoringComposites, ColorCountOverheadStaysSmall) {
  // Section IV-D: decomposition variants cost only a few percent extra
  // colors. Allow a loose envelope at test scale.
  const CsrGraph g = test::random_graph(2000, 10'000, 19);
  const auto base = color_vb(g).num_colors;
  EXPECT_LE(color_rand(g, 2).num_colors, base + base / 2 + 3);
  EXPECT_LE(color_degk(g, 2).num_colors, base + base / 2 + 3);
  EXPECT_LE(color_bridge(g).num_colors, base + base / 2 + 3);
}

}  // namespace
}  // namespace sbg
