#include <gtest/gtest.h>

#include "core/grow.hpp"
#include "core/rand.hpp"
#include "graph/builder.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

TEST(GrowDecomp, LabelsCoverEveryVertex) {
  const CsrGraph g = test::random_graph(1000, 3000, 3);
  const GrowDecomposition d = decompose_grow(g, 8, 42);
  for (const vid_t p : d.part) ASSERT_LT(p, 8u);
  EXPECT_EQ(d.g_intra.num_edges() + d.g_cross.num_edges(), g.num_edges());
  EXPECT_EQ(d.cut_edges, d.g_cross.num_edges());
}

TEST(GrowDecomp, LocalityBeatsRandomCut) {
  // On a locality-friendly graph, BFS growth must cut far fewer edges
  // than a uniform random partition with the same k.
  const CsrGraph g = build_graph(gen_grid(40, 40), false);
  const GrowDecomposition grow = decompose_grow(g, 8, 7);
  const RandDecomposition rnd = decompose_rand(g, 8, 7);
  EXPECT_LT(grow.cut_edges, rnd.g_cross.num_edges() / 2);
}

TEST(GrowDecomp, DeterministicInSeed) {
  const CsrGraph g = test::random_graph(500, 1500, 5);
  EXPECT_EQ(decompose_grow(g, 4, 9).part, decompose_grow(g, 4, 9).part);
}

TEST(GrowDecomp, HandlesDisconnectedLeftovers) {
  EdgeList el;
  el.num_vertices = 20;
  el.add(0, 1);  // tiny component; 18 isolated vertices
  const CsrGraph g = build_graph(std::move(el), /*connect=*/false);
  const GrowDecomposition d = decompose_grow(g, 3, 1);
  for (const vid_t p : d.part) ASSERT_LT(p, 3u);
}

}  // namespace
}  // namespace sbg
