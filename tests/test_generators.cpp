#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

TEST(BasicShapes, PathCycleStarGridCompleteSizes) {
  EXPECT_EQ(build_graph(gen_path(10), false).num_edges(), 9u);
  EXPECT_EQ(build_graph(gen_cycle(10), false).num_edges(), 10u);
  EXPECT_EQ(build_graph(gen_star(10), false).num_edges(), 9u);
  EXPECT_EQ(build_graph(gen_grid(3, 4), false).num_edges(),
            3u * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(build_graph(gen_complete(7), false).num_edges(), 21u);
}

TEST(BasicShapes, DegenerateSizes) {
  EXPECT_EQ(build_graph(gen_path(0), false).num_vertices(), 0u);
  EXPECT_EQ(build_graph(gen_path(1), false).num_edges(), 0u);
  EXPECT_EQ(build_graph(gen_cycle(2), false).num_edges(), 1u);  // no 2-cycle
  EXPECT_EQ(build_graph(gen_complete(1), false).num_edges(), 0u);
}

TEST(RandomTree, IsATree) {
  const CsrGraph g = build_graph(gen_random_tree(500, 9), false);
  EXPECT_EQ(g.num_edges(), 499u);
  EXPECT_TRUE(is_connected(g));
}

TEST(ErdosRenyi, DeterministicAndNearTargetSize) {
  EdgeList a = gen_erdos_renyi(1000, 3000, 7);
  EdgeList b = gen_erdos_renyi(1000, 3000, 7);
  EXPECT_EQ(a.edges, b.edges);
  const CsrGraph g = build_graph(std::move(a), false);
  // Dedup loses a few percent at this density.
  EXPECT_GT(g.num_edges(), 2800u);
  EXPECT_LE(g.num_edges(), 3000u);
}

TEST(Rmat, SkewedDegreesAndDeterminism) {
  EdgeList a = gen_rmat(1 << 12, 40'000, 3);
  EdgeList b = gen_rmat(1 << 12, 40'000, 3);
  EXPECT_EQ(a.edges, b.edges);
  const CsrGraph g = build_graph(std::move(a), true);
  const GraphStats s = graph_stats(g);
  // Power-law signature: max degree far above average.
  EXPECT_GT(s.max_degree, static_cast<vid_t>(10 * s.avg_degree));
}

TEST(Rgg, HitsTargetDegreeAndIsLocal) {
  const CsrGraph g = build_graph(gen_rgg(20'000, 12.0, 5), false);
  const GraphStats s = graph_stats(g);
  // Border effects pull the average slightly below target.
  EXPECT_GT(s.avg_degree, 8.0);
  EXPECT_LT(s.avg_degree, 14.0);
  // Spatially sorted ids: the rgg fingerprint in Table II has ~0% deg<=2.
  EXPECT_LT(s.pct_deg2, 5.0);
}

TEST(Road, SubdivisionDrivesDeg2Fraction) {
  const CsrGraph heavy = build_graph(gen_road(30'000, 2.4, 0.35, 11), true);
  const CsrGraph light = build_graph(gen_road(30'000, 0.4, 0.35, 11), true);
  EXPECT_GT(pct_degree_at_most(heavy, 2), pct_degree_at_most(light, 2));
  EXPECT_GT(pct_degree_at_most(heavy, 2), 60.0);
  EXPECT_LT(graph_stats(heavy).avg_degree, 3.0);
}

TEST(Broom, IsAlmostAllDegreeTwo) {
  const CsrGraph g = build_graph(gen_broom(40'000, 13), true);
  const GraphStats s = graph_stats(g);
  EXPECT_GT(s.pct_deg2, 85.0);
  EXPECT_LT(s.avg_degree, 3.0);
}

TEST(Numerical, CorePlusPendantsFingerprint) {
  const CsrGraph g = build_graph(gen_numerical(30'000, 0.52, 5.6, 17), true);
  const GraphStats s = graph_stats(g);
  EXPECT_GT(s.pct_deg2, 30.0);
  EXPECT_LT(s.pct_deg2, 65.0);
  EXPECT_GT(s.avg_degree, 4.0);
}

TEST(Collab, NearTargetDegree) {
  const CsrGraph g = build_graph(gen_collab(20'000, 7.2, 40, 19), true);
  const GraphStats s = graph_stats(g);
  EXPECT_GT(s.avg_degree, 4.5);
  EXPECT_LT(s.avg_degree, 9.5);
}

TEST(Web, ChainFractionDrivesDeg2) {
  const CsrGraph leafy = build_graph(gen_web(30'000, 0.16, 4.2, 2.6, 23), true);
  const CsrGraph dense = build_graph(gen_web(30'000, 0.72, 11.2, 1.4, 23), true);
  EXPECT_GT(pct_degree_at_most(leafy, 2), pct_degree_at_most(dense, 2));
  EXPECT_GT(pct_degree_at_most(leafy, 2), 60.0);
}

class AllGenerators : public ::testing::TestWithParam<test::GraphCase> {};

TEST_P(AllGenerators, ProducesValidCsr) {
  const CsrGraph g = GetParam().make();
  g.validate();
  EXPECT_GT(g.num_vertices(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllGenerators,
                         ::testing::ValuesIn(test::shape_sweep()),
                         test::case_name);

}  // namespace
}  // namespace sbg
