// The differential fuzz harness, at test scale: a miniature campaign over
// every generator family must come back clean, replay deterministically
// from its seed, and exercise every registered solver variant. CI runs the
// full-size campaign through the sbg_fuzz executable under ASan/UBSan/TSan;
// this file keeps the harness itself honest in the plain test suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "graph/builder.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

int runs_per_graph() {
  // Every registered variant plus the seven decomposition checks
  // (bridge, rand, grow, degk x2 engines, degk-0, kcore).
  return static_cast<int>(check::matching_variants().size() +
                          check::coloring_variants().size() +
                          check::mis_variants().size()) +
         7;
}

/// The families that draw generator graphs for the solver zoo. "ingest"
/// instead runs the ingestion differential, "batch" runs concurrent job
/// batches over internally-rotated graphs, "auto" runs the selector
/// differential, "serve" runs concurrent clients against an in-process
/// daemon, and "dyn" streams update batches through a dyn::Session; all
/// five count runs their own way and are exercised by dedicated campaigns
/// below.
std::vector<std::string> generator_families() {
  std::vector<std::string> fams = check::fuzz_families();
  std::erase(fams, "ingest");
  std::erase(fams, "batch");
  std::erase(fams, "auto");
  std::erase(fams, "serve");
  std::erase(fams, "dyn");
  return fams;
}

TEST(FuzzDifferential, SmallCampaignAcrossAllFamiliesIsClean) {
  check::FuzzOptions opt;
  opt.seed = 2026;
  opt.graphs_per_family = 5;
  opt.max_n = 72;
  opt.families = generator_families();
  const check::FuzzSummary s = check::run_fuzz(opt);
  EXPECT_EQ(s.graphs, 5 * static_cast<int>(opt.families.size()));
  EXPECT_EQ(s.solver_runs, s.graphs * runs_per_graph());
  for (const auto& f : s.failures) {
    ADD_FAILURE() << f.family << " graph_seed=" << f.graph_seed << " ("
                  << f.shape << "): " << f.what;
  }
}

TEST(FuzzDifferential, SmallIngestCampaignIsClean) {
  check::FuzzOptions opt;
  opt.seed = 2026;
  opt.graphs_per_family = 5;
  opt.max_n = 72;
  opt.families = {"ingest"};
  const check::FuzzSummary s = check::run_fuzz(opt);
  EXPECT_EQ(s.graphs, 5);
  // Parser/loader executions vary per iteration (dialect + corruption
  // draws), but every iteration runs at least one.
  EXPECT_GE(s.solver_runs, s.graphs);
  for (const auto& f : s.failures) {
    ADD_FAILURE() << f.family << " graph_seed=" << f.graph_seed << " ("
                  << f.shape << "): " << f.what;
  }
}

TEST(FuzzDifferential, SmallBatchCampaignIsClean) {
  check::FuzzOptions opt;
  opt.seed = 2026;
  opt.graphs_per_family = 4;
  opt.max_n = 72;
  opt.families = {"batch"};
  const check::FuzzSummary s = check::run_fuzz(opt);
  EXPECT_EQ(s.graphs, 4);
  // Each iteration runs a 4-8 job batch plus per-job sequential replays;
  // the exact count varies with the drawn job mix.
  EXPECT_GE(s.solver_runs, s.graphs * 4);
  for (const auto& f : s.failures) {
    ADD_FAILURE() << f.family << " graph_seed=" << f.graph_seed << " ("
                  << f.shape << "): " << f.what;
  }
}

TEST(FuzzDifferential, SmallAutoCampaignIsClean) {
  check::FuzzOptions opt;
  opt.seed = 2026;
  opt.graphs_per_family = 4;
  opt.max_n = 72;
  opt.families = {"auto"};
  const check::FuzzSummary s = check::run_fuzz(opt);
  EXPECT_EQ(s.graphs, 4);
  // Each iteration runs one auto job plus an explicit rerun per problem;
  // injected-failure draws add more.
  EXPECT_GE(s.solver_runs, s.graphs * 6);
  for (const auto& f : s.failures) {
    ADD_FAILURE() << f.family << " graph_seed=" << f.graph_seed << " ("
                  << f.shape << "): " << f.what;
  }
}

TEST(FuzzDifferential, SmallServeCampaignIsClean) {
  check::FuzzOptions opt;
  opt.seed = 2026;
  opt.graphs_per_family = 3;
  opt.max_n = 72;
  opt.families = {"serve"};
  const check::FuzzSummary s = check::run_fuzz(opt);
  EXPECT_EQ(s.graphs, 3);
  // Each iteration serves 2-4 client scripts; only the well-formed jobs
  // (and their differential replays) count as solver runs, so the floor
  // is just "the campaign did real work".
  EXPECT_GE(s.solver_runs, s.graphs);
  for (const auto& f : s.failures) {
    ADD_FAILURE() << f.family << " graph_seed=" << f.graph_seed << " ("
                  << f.shape << "): " << f.what;
  }
}

TEST(FuzzDifferential, SmallDynCampaignIsClean) {
  check::FuzzOptions opt;
  opt.seed = 2026;
  opt.graphs_per_family = 4;
  opt.max_n = 72;
  opt.families = {"dyn"};
  const check::FuzzSummary s = check::run_fuzz(opt);
  EXPECT_EQ(s.graphs, 4);
  // Each iteration runs the initial three solves plus three repairs and
  // one fresh differential solve per batch (3-8 batches).
  EXPECT_GE(s.solver_runs, s.graphs * (3 + 3 * 3 + 3));
  for (const auto& f : s.failures) {
    ADD_FAILURE() << f.family << " graph_seed=" << f.graph_seed << " ("
                  << f.shape << "): " << f.what;
  }
}

TEST(FuzzDifferential, CampaignIsDeterministicInItsOptions) {
  check::FuzzOptions opt;
  opt.seed = 7;
  opt.graphs_per_family = 3;
  opt.max_n = 64;
  opt.families = {"basic", "synth"};
  const check::FuzzSummary a = check::run_fuzz(opt);
  const check::FuzzSummary b = check::run_fuzz(opt);
  EXPECT_EQ(a.graphs, b.graphs);
  EXPECT_EQ(a.solver_runs, b.solver_runs);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].graph_seed, b.failures[i].graph_seed);
    EXPECT_EQ(a.failures[i].what, b.failures[i].what);
  }
}

TEST(FuzzDifferential, GraphGenerationReplaysExactlyFromSeed) {
  for (const auto& family : generator_families()) {
    std::string shape_a, shape_b;
    const CsrGraph a = check::fuzz_graph(family, 12345, 128, &shape_a);
    const CsrGraph b = check::fuzz_graph(family, 12345, 128, &shape_b);
    EXPECT_EQ(shape_a, shape_b);
    ASSERT_EQ(a.num_vertices(), b.num_vertices()) << family;
    ASSERT_EQ(a.num_edges(), b.num_edges()) << family;
    for (vid_t v = 0; v < a.num_vertices(); ++v) {
      const auto na = a.neighbors(v);
      const auto nb = b.neighbors(v);
      ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
          << family << " vertex " << v;
    }
    EXPECT_FALSE(shape_a.empty());
  }
}

TEST(FuzzDifferential, DifferentSeedsVaryTheShapes) {
  // Not a tautology (two seeds can collide on one draw), so sample a few:
  // at least one of five seeds must change the generated shape.
  int distinct = 0;
  std::string prev;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    std::string shape;
    (void)check::fuzz_graph("basic", seed, 128, &shape);
    if (shape != prev) ++distinct;
    prev = shape;
  }
  EXPECT_GE(distinct, 2);
}

TEST(FuzzDifferential, UnknownFamilyIsRejected) {
  EXPECT_THROW((void)check::fuzz_graph("quantum", 1, 64), InputError);
  check::FuzzOptions opt;
  opt.families = {"quantum"};
  EXPECT_THROW((void)check::run_fuzz(opt), InputError);
}

TEST(FuzzDifferential, DegenerateGraphsPassEveryVariant) {
  // The corners the 1-in-16 degenerate draw is meant to keep hitting, run
  // through the whole zoo explicitly.
  EdgeList empty;
  EdgeList singleton;
  singleton.num_vertices = 1;
  EdgeList two_islands;
  two_islands.num_vertices = 4;
  two_islands.add(0, 1);
  two_islands.add(2, 3);
  for (EdgeList* el : {&empty, &singleton, &two_islands}) {
    const CsrGraph g = build_graph(std::move(*el), false);
    int runs = 0;
    const std::vector<std::string> fails = check::fuzz_check_graph(g, 9, &runs);
    for (const auto& f : fails) {
      ADD_FAILURE() << "n=" << g.num_vertices() << ": " << f;
    }
    EXPECT_EQ(runs, runs_per_graph());
  }
}

}  // namespace
}  // namespace sbg
