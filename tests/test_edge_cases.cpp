// Degenerate inputs and failure-injection: empty graphs, singletons,
// isolated vertices, self-loop-only inputs, and device-side decomposition
// equivalence — every public algorithm must cope.
#include <gtest/gtest.h>

#include "coloring/coloring.hpp"
#include "core/bridge.hpp"
#include "core/degk.hpp"
#include "core/grow.hpp"
#include "core/rand.hpp"
#include "gpusim/gpu_algorithms.hpp"
#include "gpusim/gpu_decompose.hpp"
#include "graph/builder.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"
#include "parallel/thread_env.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

CsrGraph empty_graph() { return CsrGraph{}; }

CsrGraph isolated_vertices(vid_t n) {
  EdgeList el;
  el.num_vertices = n;
  return build_graph(std::move(el), /*connect=*/false);
}

TEST(EdgeCases, EmptyGraphThroughEverything) {
  const CsrGraph g = empty_graph();
  EXPECT_EQ(mm_gm(g).cardinality, 0u);
  EXPECT_EQ(mm_lmax(g).cardinality, 0u);
  EXPECT_EQ(mm_ii(g).cardinality, 0u);
  EXPECT_EQ(mm_rand(g, 4).cardinality, 0u);
  EXPECT_EQ(mm_degk(g).cardinality, 0u);
  EXPECT_EQ(mm_bridge(g).cardinality, 0u);
  EXPECT_EQ(color_vb(g).num_colors, 0u);
  EXPECT_EQ(color_eb(g).num_colors, 0u);
  EXPECT_EQ(color_degk(g).num_colors, 0u);
  EXPECT_EQ(mis_luby(g).size, 0u);
  EXPECT_EQ(mis_degk(g).size, 0u);
  EXPECT_EQ(decompose_bridge(g).bridges.size(), 0u);
  EXPECT_EQ(decompose_rand(g, 3).g_intra.num_edges(), 0u);
}

TEST(EdgeCases, IsolatedVerticesAreHandledEverywhere) {
  const CsrGraph g = isolated_vertices(100);
  EXPECT_EQ(mm_gm(g).cardinality, 0u);
  EXPECT_TRUE(verify_maximal_matching(g, mm_rand(g, 4).mate));

  const ColorResult c = color_vb(g);
  EXPECT_TRUE(verify_coloring(g, c.color));
  EXPECT_EQ(c.num_colors, 1u);  // everything color 0

  const MisResult m = mis_luby(g);
  EXPECT_TRUE(verify_mis(g, m.state));
  EXPECT_EQ(m.size, 100u);  // all isolated vertices join

  const MisResult md = mis_degk(g, 2);
  EXPECT_TRUE(verify_mis(g, md.state));
  EXPECT_EQ(md.size, 100u);
}

TEST(EdgeCases, SingleEdgeGraph) {
  EdgeList el;
  el.num_vertices = 2;
  el.add(0, 1);
  const CsrGraph g = build_graph(std::move(el), false);
  EXPECT_EQ(mm_gm(g).cardinality, 1u);
  EXPECT_EQ(color_vb(g).num_colors, 2u);
  EXPECT_EQ(mis_luby(g).size, 1u);
  EXPECT_EQ(decompose_bridge(g).bridges.size(), 1u);
}

TEST(EdgeCases, SelfLoopOnlyInputCollapses) {
  EdgeList el;
  el.num_vertices = 3;
  el.add(0, 0);
  el.add(1, 1);
  const CsrGraph g = build_graph(std::move(el), /*connect=*/false);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(EdgeCases, RandWithMorePartitionsThanVertices) {
  const CsrGraph g = test::random_graph(20, 40, 3);
  const RandDecomposition d = decompose_rand(g, 1000, 1);
  EXPECT_EQ(d.g_intra.num_edges() + d.g_cross.num_edges(), g.num_edges());
  EXPECT_TRUE(verify_maximal_matching(g, mm_rand(g, 1000).mate));
}

TEST(EdgeCases, GrowWithMoreSeedsThanVertices) {
  const CsrGraph g = test::random_graph(10, 20, 5);
  const GrowDecomposition d = decompose_grow(g, 50, 1);
  for (const vid_t p : d.part) ASSERT_LT(p, 50u);
}

// ------------------------------------------ whole-zoo degenerate regress --
// Every registered solver/composite variant (src/check/solvers.hpp), through
// the shapes that historically break decomposition code: nothing to
// decompose, nothing but isolated vertices, pieces that are entirely
// cross-edges, and hub-and-spoke graphs where one side of every split is
// empty. Oracles from src/check/ gate each result.

CsrGraph self_loop_mix() {
  // Self-loops are dropped at build time; the survivors form a path 0-1-2.
  EdgeList el;
  el.num_vertices = 4;
  el.add(0, 0);
  el.add(0, 1);
  el.add(1, 2);
  el.add(3, 3);
  return build_graph(std::move(el), /*connect=*/false);
}

std::vector<test::GraphCase> degenerate_sweep() {
  return {
      {"empty", []() { return CsrGraph{}; }},
      {"single_vertex", []() { return isolated_vertices(1); }},
      {"isolated5", []() { return isolated_vertices(5); }},
      {"self_loop_mix", &self_loop_mix},
      {"two_islands",
       []() {
         EdgeList el;
         el.num_vertices = 7;  // two components + an isolated vertex
         el.add(0, 1);
         el.add(1, 2);
         el.add(4, 5);
         el.add(5, 6);
         return build_graph(std::move(el), false);
       }},
      {"star33", []() { return build_graph(gen_star(33), false); }},
  };
}

class DegenerateZoo : public ::testing::TestWithParam<test::GraphCase> {};

TEST_P(DegenerateZoo, EveryRegisteredVariantSurvivesAndVerifies) {
  const CsrGraph g = GetParam().make();
  for (const auto& v : check::matching_variants()) {
    const MatchResult r = v.run(g, 42);
    EXPECT_TRUE(test::IsMaximalMatching(g, r.mate)) << "mm/" << v.name;
  }
  for (const auto& v : check::coloring_variants()) {
    const ColorResult r = v.run(g, 42);
    EXPECT_TRUE(test::IsProperColoring(g, r.color)) << "color/" << v.name;
  }
  for (const auto& v : check::mis_variants()) {
    const MisResult r = v.run(g, 42);
    EXPECT_TRUE(test::IsMaximalIndependentSet(g, r.state))
        << "mis/" << v.name;
  }
}

TEST_P(DegenerateZoo, EveryDecompositionPartitionsTheEdgesExactlyOnce) {
  const CsrGraph g = GetParam().make();
  check::CheckResult r = check::check_decomposition(g, decompose_bridge(g));
  EXPECT_TRUE(r.ok) << "bridge: " << r.message();
  r = check::check_decomposition(g, decompose_rand(g, 3, 7));
  EXPECT_TRUE(r.ok) << "rand: " << r.message();
  r = check::check_decomposition(g, decompose_grow(g, 3, 7));
  EXPECT_TRUE(r.ok) << "grow: " << r.message();
  r = check::check_decomposition(g, decompose_degk(g, 2, kDegkAll), kDegkAll);
  EXPECT_TRUE(r.ok) << "degk: " << r.message();
}

INSTANTIATE_TEST_SUITE_P(Sweep, DegenerateZoo,
                         ::testing::ValuesIn(degenerate_sweep()),
                         test::case_name);

TEST(EdgeCases, SelfLoopsNeverSurviveIntoTheCsr) {
  const CsrGraph g = self_loop_mix();
  EXPECT_EQ(g.num_edges(), 2u);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FALSE(g.has_edge(v, v)) << v;
  }
}

// ------------------------------------ device-side decomposition equality --

TEST(GpuDecompose, RandMatchesHostExactly) {
  const CsrGraph g = test::random_graph(500, 1500, 7);
  const RandDecomposition host = decompose_rand(g, 6, 99);
  gpu::Device dev;
  const RandDecomposition device = gpu::decompose_rand_gpu(dev, g, 6, 99);
  EXPECT_EQ(host.part, device.part);
  EXPECT_TRUE(std::equal(host.g_intra.adjacency().begin(),
                         host.g_intra.adjacency().end(),
                         device.g_intra.adjacency().begin(),
                         device.g_intra.adjacency().end()));
  EXPECT_TRUE(std::equal(host.g_cross.adjacency().begin(),
                         host.g_cross.adjacency().end(),
                         device.g_cross.adjacency().begin(),
                         device.g_cross.adjacency().end()));
  EXPECT_GT(dev.kernels_launched(), 0u);
  EXPECT_GT(device.decompose_seconds, 0.0);
}

TEST(GpuDecompose, DegkMatchesHostExactly) {
  const CsrGraph g = test::make_road_small();
  const DegkDecomposition host = decompose_degk(g, 2, kDegkAll);
  gpu::Device dev;
  const DegkDecomposition device =
      gpu::decompose_degk_gpu(dev, g, 2, kDegkAll);
  EXPECT_EQ(host.is_high, device.is_high);
  EXPECT_EQ(host.num_high, device.num_high);
  EXPECT_EQ(host.g_high.num_edges(), device.g_high.num_edges());
  EXPECT_EQ(host.g_low.num_edges(), device.g_low.num_edges());
  EXPECT_EQ(host.g_cross.num_edges(), device.g_cross.num_edges());
  EXPECT_EQ(host.g_low_cross.num_edges(), device.g_low_cross.num_edges());
}

// -------------------------------------------------- schedule independence --

TEST(Determinism, DeterministicSolversAgreeAcrossThreadCounts) {
  const CsrGraph g = test::random_graph(2000, 8000, 31);
  std::vector<vid_t> gm1, gm2, lm1, lm2;
  std::vector<MisState> lu1, lu2, or1, or2;
  {
    ScopedThreads guard(1);
    gm1 = mm_gm(g).mate;
    lm1 = mm_lmax(g, 5).mate;
    lu1 = mis_luby(g, 5).state;
    or1.assign(g.num_vertices(), MisState::kUndecided);
    oriented_extend(g, or1);
  }
  {
    ScopedThreads guard(4);
    gm2 = mm_gm(g).mate;
    lm2 = mm_lmax(g, 5).mate;
    lu2 = mis_luby(g, 5).state;
    or2.assign(g.num_vertices(), MisState::kUndecided);
    oriented_extend(g, or2);
  }
  EXPECT_EQ(gm1, gm2);
  EXPECT_EQ(lm1, lm2);
  EXPECT_EQ(lu1, lu2);
  EXPECT_EQ(or1, or2);
}

TEST(Determinism, RandPartitionIsThreadScheduleIndependent) {
  const CsrGraph g = test::random_graph(3000, 9000, 17);
  std::vector<vid_t> p1, p2;
  {
    ScopedThreads guard(1);
    p1 = decompose_rand(g, 8, 3).part;
  }
  {
    ScopedThreads guard(4);
    p2 = decompose_rand(g, 8, 3).part;
  }
  EXPECT_EQ(p1, p2);
}

}  // namespace
}  // namespace sbg
