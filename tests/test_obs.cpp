// sbg::obs — counters/histograms across OpenMP threads, span-tree nesting,
// series ring buffers, registry reset semantics, PhaseTimer misuse fixes,
// and a JSON schema round-trip through a minimal parser.
//
// This TU pins SBG_OBS_ENABLED=1 so the macro-level expectations hold even
// if the build was configured with -DSBG_OBS=OFF; the solver-integration
// tests additionally gate on obs::enabled_in_library().
#undef SBG_OBS_ENABLED
#define SBG_OBS_ENABLED 1

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "matching/matching.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/timer.hpp"
#include "test_helpers.hpp"
#include "test_json.hpp"

namespace sbg {
namespace {

using test::Json;
using test::JsonParser;

const obs::SpanNode* find_child(const obs::SpanNode& parent,
                                const std::string& name) {
  for (const auto& c : parent.children) {
    if (c->name == name) return c.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------- metrics --

TEST(Obs, CounterAggregatesAcrossOmpThreads) {
  obs::Counter& c = obs::registry().counter("test.counter.parallel");
  c.reset();
  constexpr std::size_t kIters = 100'000;
  parallel_for(kIters, [&](std::size_t) { c.add(1); });
  EXPECT_EQ(c.value(), kIters);
  c.add(5);
  EXPECT_EQ(c.value(), kIters + 5);
}

TEST(Obs, CounterIsExactUnderConcurrentStdThreadWriters) {
  // The shards are indexed by OpenMP thread id, so plain std::threads (id 0
  // outside any parallel region) all collide on one shard — the fetch_add
  // must still make the total exact, not just approximately sharded.
  obs::Counter& c = obs::registry().counter("test.counter.threads");
  c.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, t]() {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        c.add(1 + static_cast<std::uint64_t>(t % 2));  // mixed deltas
      }
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected += kAddsPerThread * (1 + static_cast<std::uint64_t>(t % 2));
  }
  EXPECT_EQ(c.value(), expected);
}

TEST(Obs, DistinctCountersDoNotBleedUnderConcurrency) {
  obs::Counter& a = obs::registry().counter("test.counter.bleed_a");
  obs::Counter& b = obs::registry().counter("test.counter.bleed_b");
  a.reset();
  b.reset();
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&a, &b, t]() {
      obs::Counter& mine = (t % 2 == 0) ? a : b;
      for (int i = 0; i < 10'000; ++i) mine.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(a.value(), 30'000u);
  EXPECT_EQ(b.value(), 30'000u);
}

TEST(Obs, HistogramIsExactUnderConcurrentStdThreadWriters) {
  obs::Histogram& h = obs::registry().histogram("test.hist.threads");
  h.reset();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h]() {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(i);
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.sum, kThreads * (kPerThread * (kPerThread - 1) / 2));
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, kPerThread - 1);
}

TEST(Obs, CheckOracleRunCountersAreExactUnderConcurrency) {
  if (!obs::enabled_in_library()) GTEST_SKIP() << "library built without obs";
  // The check oracles are themselves OpenMP-parallel; hammering one from
  // several host threads must still count every run exactly once.
  obs::registry().counter("check.matching.runs").reset();
  const CsrGraph g = test::random_graph(200, 600, 3);
  const std::vector<vid_t> mate = mm_greedy_seq(g).mate;
  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&]() {
      for (int i = 0; i < kRunsPerThread; ++i) {
        ASSERT_TRUE(check::check_matching(g, mate).result.ok);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(obs::registry().counter("check.matching.runs").value(),
            static_cast<std::uint64_t>(kThreads * kRunsPerThread));
}

TEST(Obs, RegistryResetZeroesButKeepsHandles) {
  obs::Counter& c = obs::registry().counter("test.counter.reset");
  c.add(41);
  obs::registry().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // handle still valid after reset
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(&c, &obs::registry().counter("test.counter.reset"));
}

TEST(Obs, GaugeLastWriteWins) {
  obs::Gauge& g = obs::registry().gauge("test.gauge");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(Obs, HistogramAggregatesAcrossOmpThreads) {
  obs::Histogram& h = obs::registry().histogram("test.hist.parallel");
  h.reset();
  constexpr std::size_t kIters = 10'000;
  parallel_for(kIters, [&](std::size_t i) { h.record(i); });
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kIters);
  EXPECT_EQ(snap.sum, kIters * (kIters - 1) / 2);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, kIters - 1);
  std::uint64_t bucket_total = 0;
  for (const auto b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kIters);
  // Power-of-two buckets: bucket 1 holds exactly {1}, bucket 2 holds {2,3}.
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
}

TEST(Obs, SeriesRingBufferKeepsTailAndTrueTotal) {
  obs::Series s(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) s.append(i);
  EXPECT_EQ(s.total(), 10u);
  EXPECT_EQ(s.window_start(), 6u);
  const auto w = s.window();
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 6.0);
  EXPECT_DOUBLE_EQ(w[3], 9.0);
  s.reset();
  EXPECT_EQ(s.total(), 0u);
  EXPECT_TRUE(s.window().empty());
}

TEST(Obs, SeriesBelowCapacityKeepsEverything) {
  obs::Series& s = obs::registry().series("test.series.small");
  s.reset();
  s.append(2.0);
  s.append(4.0);
  EXPECT_EQ(s.total(), 2u);
  EXPECT_EQ(s.window_start(), 0u);
  const auto w = s.window();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 4.0);
}

// ------------------------------------------------------------------ spans --

TEST(Obs, SpanTreeNestsAndMergesRepeats) {
  obs::span_tree().reset();
  {
    SBG_SPAN("outer");
    { SBG_SPAN("inner"); }
    { SBG_SPAN("inner"); }
    { SBG_SPAN("other"); }
  }
  { SBG_SPAN("outer"); }  // re-entering merges into the same node

  const auto root = obs::span_tree().snapshot();
  ASSERT_EQ(root->children.size(), 1u);
  const obs::SpanNode* outer = find_child(*root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);
  EXPECT_GE(outer->seconds, 0.0);
  ASSERT_EQ(outer->children.size(), 2u);
  const obs::SpanNode* inner = find_child(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_NE(find_child(*outer, "other"), nullptr);
  // Nesting restored after the inner spans closed: a fresh span attaches
  // at top level, not under "outer".
  { SBG_SPAN("after"); }
  const auto root2 = obs::span_tree().snapshot();
  EXPECT_NE(find_child(*root2, "after"), nullptr);
  EXPECT_EQ(find_child(*find_child(*root2, "outer"), "after"), nullptr);
}

// ------------------------------------------------------------ PhaseTimer --

TEST(Obs, PhaseTimerStopWithoutStartIsNoOp) {
  PhaseTimer pt;
  pt.stop();  // previously recorded a bogus empty-named phase
  EXPECT_TRUE(pt.phases().empty());
}

TEST(Obs, PhaseTimerDoubleStartAutoClosesInFlightPhase) {
  PhaseTimer pt;
  pt.start("a");
  pt.start("b");  // previously dropped phase "a" silently
  pt.stop();
  ASSERT_EQ(pt.phases().size(), 2u);
  EXPECT_EQ(pt.phases()[0].first, "a");
  EXPECT_EQ(pt.phases()[1].first, "b");
  EXPECT_FALSE(pt.running());
}

TEST(Obs, ScopedPhaseRecordsOnScopeExit) {
  PhaseTimer pt;
  {
    ScopedPhase phase(pt, "scoped");
    EXPECT_TRUE(pt.running());
  }
  ASSERT_EQ(pt.phases().size(), 1u);
  EXPECT_EQ(pt.phases()[0].first, "scoped");
  EXPECT_GE(pt.phases()[0].second, 0.0);
}

// ----------------------------------------------------------- JSON report --

TEST(Obs, JsonReportRoundTrip) {
  obs::reset_all();
  SBG_COUNTER_ADD("rt.counter", 7);
  SBG_GAUGE_SET("rt.gauge", 2.5);
  SBG_HIST_RECORD("rt.hist", 3);
  SBG_HIST_RECORD("rt.hist", 5);
  SBG_SERIES_APPEND("rt.series", 1.0);
  SBG_SERIES_APPEND("rt.series", 2.0);
  {
    SBG_SPAN("rt.outer");
    SBG_SPAN("rt.inner");
  }

  const std::string text =
      obs::report_json({{"tool", "test"}, {"quote", "a\"b"}});
  const Json doc = JsonParser(text).parse();

  EXPECT_DOUBLE_EQ(doc.at("sbg_report_version").number, 1.0);
  EXPECT_EQ(doc.at("meta").at("tool").string, "test");
  EXPECT_EQ(doc.at("meta").at("quote").string, "a\"b");
  EXPECT_DOUBLE_EQ(doc.at("counters").at("rt.counter").number, 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("rt.gauge").number, 2.5);

  const Json& hist = doc.at("histograms").at("rt.hist");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 8.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 5.0);
  // 3 lands in the (1,3] bucket, 5 in the (3,7] bucket.
  EXPECT_DOUBLE_EQ(hist.at("buckets").at("3").number, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").at("7").number, 1.0);

  const Json& series = doc.at("series").at("rt.series");
  EXPECT_DOUBLE_EQ(series.at("total").number, 2.0);
  EXPECT_DOUBLE_EQ(series.at("window_start").number, 0.0);
  ASSERT_EQ(series.at("values").array.size(), 2u);
  EXPECT_DOUBLE_EQ(series.at("values").array[1].number, 2.0);

  ASSERT_EQ(doc.at("spans").array.size(), 1u);
  const Json& outer = doc.at("spans").array[0];
  EXPECT_EQ(outer.at("name").string, "rt.outer");
  ASSERT_EQ(outer.at("children").array.size(), 1u);
  EXPECT_EQ(outer.at("children").array[0].at("name").string, "rt.inner");
}

TEST(Obs, WriteJsonReportCreatesParseableFile) {
  obs::reset_all();
  SBG_COUNTER_ADD("rt.file_counter", 1);
  const std::string path =
      testing::TempDir() + "/sbg_obs_report_test.json";
  std::string error;
  ASSERT_TRUE(obs::write_json_report(path, {{"k", "v"}}, &error)) << error;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  const Json doc = JsonParser(text).parse();
  EXPECT_EQ(doc.at("meta").at("k").string, "v");
  EXPECT_TRUE(doc.at("counters").has("rt.file_counter"));
}

// ------------------------------------------------- solver instrumentation --

TEST(Obs, GmExtendRecordsRoundTelemetry) {
  if (!obs::enabled_in_library()) GTEST_SKIP() << "library built without obs";
  obs::reset_all();
  const CsrGraph g = test::random_graph(600, 2400, 3);
  const MatchResult r = mm_gm(g);
  ASSERT_GT(r.rounds, 0u);
  // One frontier/matched sample per round, and the round counter agrees
  // with the solver's own return value.
  EXPECT_EQ(obs::registry().counter("gm.rounds").value(), r.rounds);
  EXPECT_EQ(obs::registry().series("gm.frontier").total(), r.rounds);
  EXPECT_EQ(obs::registry().series("gm.matched").total(), r.rounds);
  // Matched-vertex totals equal twice the cardinality.
  EXPECT_EQ(obs::registry().counter("gm.matched_vertices").value(),
            2 * r.cardinality);
}

TEST(Obs, CompositeEmitsDecomposeSolveStitchSpans) {
  if (!obs::enabled_in_library()) GTEST_SKIP() << "library built without obs";
  obs::reset_all();
  const CsrGraph g = test::random_graph(500, 2000, 5);
  (void)mm_rand(g, 4);
  const auto root = obs::span_tree().snapshot();
  const obs::SpanNode* mm = find_child(*root, "mm_rand");
  ASSERT_NE(mm, nullptr);
  EXPECT_NE(find_child(*mm, "decompose.rand"), nullptr);
  const obs::SpanNode* solve = find_child(*mm, "solve");
  const obs::SpanNode* stitch = find_child(*mm, "stitch");
  ASSERT_NE(solve, nullptr);
  ASSERT_NE(stitch, nullptr);
  // The engine's extender nests under both phases.
  EXPECT_NE(find_child(*solve, "gm_extend"), nullptr);
  EXPECT_NE(find_child(*stitch, "gm_extend"), nullptr);
}

}  // namespace
}  // namespace sbg
