#include <gtest/gtest.h>

#include "bfs/bfs.hpp"
#include "graph/builder.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

TEST(Bfs, PathLevelsAreDistances) {
  const CsrGraph g = build_graph(gen_path(50), false);
  const BfsTree t = bfs(g, 0);
  EXPECT_TRUE(validate_bfs_tree(g, t));
  EXPECT_EQ(t.reached, 50u);
  EXPECT_EQ(t.rounds, 50u);  // eccentricity 49 + the empty final expansion
  for (vid_t v = 0; v < 50; ++v) EXPECT_EQ(t.level[v], v);
  EXPECT_EQ(t.parent[0], kNoVertex);
  EXPECT_EQ(t.parent[10], 9u);
}

TEST(Bfs, GridDistancesAreManhattan) {
  const CsrGraph g = build_graph(gen_grid(7, 9), false);
  const BfsTree t = bfs(g, 0);
  EXPECT_TRUE(validate_bfs_tree(g, t));
  for (vid_t r = 0; r < 7; ++r) {
    for (vid_t c = 0; c < 9; ++c) {
      EXPECT_EQ(t.level[r * 9 + c], r + c);
    }
  }
}

TEST(Bfs, NonZeroRootAndStar) {
  const CsrGraph g = build_graph(gen_star(30), false);
  const BfsTree t = bfs(g, 5);
  EXPECT_TRUE(validate_bfs_tree(g, t));
  EXPECT_EQ(t.level[5], 0u);
  EXPECT_EQ(t.level[0], 1u);
  EXPECT_EQ(t.level[20], 2u);
}

TEST(Bfs, RandomGraphTreeIsValid) {
  const CsrGraph g = test::random_graph(2000, 6000, 21);
  const BfsTree t = bfs(g, 17);
  EXPECT_TRUE(validate_bfs_tree(g, t));
  EXPECT_EQ(t.reached, g.num_vertices());  // builder connected it
}

TEST(Bfs, ValidatorCatchesCorruption) {
  const CsrGraph g = build_graph(gen_path(20), false);
  BfsTree t = bfs(g, 0);
  ASSERT_TRUE(validate_bfs_tree(g, t));
  t.level[10] = 3;  // wrong distance
  EXPECT_FALSE(validate_bfs_tree(g, t));
}

TEST(Bfs, EmptyGraph) {
  const CsrGraph g;
  const BfsTree t = bfs(g, 0);
  EXPECT_EQ(t.reached, 0u);
  EXPECT_TRUE(validate_bfs_tree(g, t));
}

}  // namespace
}  // namespace sbg
