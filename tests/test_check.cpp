// Unit tests for the sbg::check verification oracles: each oracle accepts
// genuine solver output, rejects every planted violation with the right
// stable phrase, and pins the *first* (lowest-id) offending vertex/edge.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/check.hpp"
#include "check/solvers.hpp"
#include "coloring/coloring.hpp"
#include "core/bridge.hpp"
#include "core/degk.hpp"
#include "core/grow.hpp"
#include "core/rand.hpp"
#include "graph/builder.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"
#include "obs/obs.hpp"
#include "test_helpers.hpp"

namespace sbg {
namespace {

// ------------------------------------------------------------ CheckResult --

TEST(CheckResult, MessageFormatsByWhatIsPinned) {
  EXPECT_EQ(check::CheckResult::pass().message(), "ok");
  EXPECT_EQ(check::CheckResult::fail("broken").message(), "broken");
  EXPECT_EQ(check::CheckResult::fail("broken", 5).message(),
            "broken (vertex 5)");
  EXPECT_EQ(check::CheckResult::fail("broken", 5, 7).message(),
            "broken (edge 5-7)");
  EXPECT_TRUE(static_cast<bool>(check::CheckResult::pass()));
  EXPECT_FALSE(static_cast<bool>(check::CheckResult::fail("broken")));
}

TEST(CheckResult, FailuresCountThroughObs) {
  if (!obs::enabled_in_library()) GTEST_SKIP() << "library built without obs";
  auto& counter = obs::registry().counter("check.violations");
  const std::uint64_t before = counter.value();
  (void)check::CheckResult::fail("planted");
  EXPECT_EQ(counter.value(), before + 1);
}

// --------------------------------------------------------- check_matching --

TEST(CheckMatching, AcceptsRealSolverOutput) {
  const CsrGraph g = test::figure1_graph();
  const MatchResult r = mm_greedy_seq(g);
  const check::MatchingReport rep = check::check_matching(g, r.mate);
  EXPECT_TRUE(rep.result.ok) << rep.result.message();
  EXPECT_EQ(rep.cardinality, r.cardinality);
  EXPECT_EQ(rep.matched_vertices, 2 * r.cardinality);
}

TEST(CheckMatching, RejectsEveryPlantedViolation) {
  const CsrGraph g = build_graph(gen_path(6), false);
  const auto fail = [&](std::vector<vid_t> mate) {
    return check::check_matching(g, mate).result;
  };

  EXPECT_EQ(fail(std::vector<vid_t>(5, kNoVertex)).violation,
            "mate array size != num_vertices");

  std::vector<vid_t> mate(6, kNoVertex);
  mate[2] = 77;
  check::CheckResult r = fail(mate);
  EXPECT_EQ(r.violation, "mate id out of range");
  EXPECT_EQ(r.vertex, 2u);

  mate.assign(6, kNoVertex);
  mate[3] = 3;
  r = fail(mate);
  EXPECT_EQ(r.violation, "vertex matched to itself");
  EXPECT_EQ(r.vertex, 3u);

  mate.assign(6, kNoVertex);
  mate[1] = 2;  // but mate[2] stays kNoVertex
  r = fail(mate);
  EXPECT_EQ(r.violation, "mate array is not an involution");
  EXPECT_EQ(r.vertex, 1u);
  EXPECT_EQ(r.other, 2u);

  mate.assign(6, kNoVertex);
  mate[0] = 4;  // 0-4 is not a path edge
  mate[4] = 0;
  r = fail(mate);
  EXPECT_EQ(r.violation, "matched pair is not an edge of G");
  EXPECT_EQ(r.vertex, 0u);
  EXPECT_EQ(r.other, 4u);

  mate.assign(6, kNoVertex);
  mate[0] = 1;
  mate[1] = 0;  // edges 2-3, 3-4, 4-5 all still live
  r = fail(mate);
  EXPECT_EQ(r.violation, "matching not maximal: both endpoints unmatched");
  EXPECT_EQ(r.vertex, 2u);
  EXPECT_EQ(r.other, 3u);
}

TEST(CheckMatching, ReportsLowestIdViolationFirst) {
  // Two independent violations; the oracle must name the lower vertex id
  // regardless of OpenMP schedule.
  const CsrGraph g = build_graph(gen_complete(10), false);
  std::vector<vid_t> mate(10, kNoVertex);
  mate[3] = 3;  // self-match at 3
  mate[8] = 8;  // self-match at 8
  const check::CheckResult r = check::check_matching(g, mate).result;
  EXPECT_EQ(r.violation, "vertex matched to itself");
  EXPECT_EQ(r.vertex, 3u);
}

TEST(CheckMatching, EmptyGraphPassesTrivially) {
  const CsrGraph g = build_graph(EdgeList{}, false);
  const check::MatchingReport rep = check::check_matching(g, {});
  EXPECT_TRUE(rep.result.ok);
  EXPECT_EQ(rep.cardinality, 0u);
}

// --------------------------------------------------------- check_coloring --

TEST(CheckColoring, AcceptsRealSolverOutputAndReportsPalette) {
  const CsrGraph g = build_graph(gen_path(8), false);
  const std::vector<std::uint32_t> color = {0, 1, 0, 1, 0, 1, 0, 1};
  const check::ColoringReport rep = check::check_coloring(g, color);
  EXPECT_TRUE(rep.result.ok) << rep.result.message();
  EXPECT_EQ(rep.num_colors, 2u);
  EXPECT_EQ(rep.distinct_colors, 2u);
  EXPECT_EQ(rep.largest_class, 4u);
}

TEST(CheckColoring, DistinctColorsSeesPaletteHoles) {
  // COLOR-Degk-style stacked palettes leave holes: span 11, 3 used.
  const CsrGraph g = build_graph(gen_path(3), false);
  const check::ColoringReport rep = check::check_coloring(g, {0, 10, 5});
  EXPECT_TRUE(rep.result.ok);
  EXPECT_EQ(rep.num_colors, 11u);
  EXPECT_EQ(rep.distinct_colors, 3u);
  EXPECT_EQ(rep.largest_class, 1u);
}

TEST(CheckColoring, RejectsEveryPlantedViolation) {
  const CsrGraph g = build_graph(gen_path(4), false);

  check::CheckResult r =
      check::check_coloring(g, std::vector<std::uint32_t>(3, 0)).result;
  EXPECT_EQ(r.violation, "color array size != num_vertices");

  r = check::check_coloring(g, {0, 1, kNoColor, 0}).result;
  EXPECT_EQ(r.violation, "uncolored vertex");
  EXPECT_EQ(r.vertex, 2u);

  r = check::check_coloring(g, {0, 1, 1, 0}).result;
  EXPECT_EQ(r.violation, "monochromatic edge");
  EXPECT_EQ(r.vertex, 1u);
  EXPECT_EQ(r.other, 2u);
}

// -------------------------------------------------------------- check_mis --

TEST(CheckMis, AcceptsRealSolverOutput) {
  const CsrGraph g = test::make_grid_16x12();
  const MisResult r = mis_greedy_seq(g);
  const check::MisReport rep = check::check_mis(g, r.state);
  EXPECT_TRUE(rep.result.ok) << rep.result.message();
  EXPECT_EQ(rep.size, r.size);
}

TEST(CheckMis, RejectsEveryPlantedViolation) {
  const CsrGraph g = build_graph(gen_path(4), false);
  using S = MisState;

  check::CheckResult r =
      check::check_mis(g, std::vector<S>(3, S::kIn)).result;
  EXPECT_EQ(r.violation, "state array size != num_vertices");

  r = check::check_mis(g, {S::kIn, S::kOut, S::kUndecided, S::kIn}).result;
  EXPECT_EQ(r.violation, "undecided vertex");
  EXPECT_EQ(r.vertex, 2u);

  std::vector<S> corrupt = {S::kIn, S::kOut, S::kIn, S::kOut};
  corrupt[3] = static_cast<S>(7);  // stray in-bounds write
  r = check::check_mis(g, corrupt).result;
  EXPECT_EQ(r.violation, "invalid state value");
  EXPECT_EQ(r.vertex, 3u);

  r = check::check_mis(g, {S::kIn, S::kIn, S::kOut, S::kIn}).result;
  EXPECT_EQ(r.violation, "two adjacent vertices in the set");
  EXPECT_EQ(r.vertex, 0u);
  EXPECT_EQ(r.other, 1u);

  r = check::check_mis(g, {S::kIn, S::kOut, S::kOut, S::kOut}).result;
  EXPECT_EQ(r.violation, "excluded vertex has no neighbor in the set");
  EXPECT_EQ(r.vertex, 2u);
}

// ---------------------------------------------------- check_decomposition --

TEST(CheckDecomposition, AcceptsBothBridgeWalks) {
  for (const auto& c : {test::make_figure1, test::make_road_small}) {
    const CsrGraph g = c();
    for (const BridgeAlgo algo :
         {BridgeAlgo::kNaiveWalk, BridgeAlgo::kShortcutWalk}) {
      const BridgeDecomposition d = decompose_bridge(g, algo);
      const check::CheckResult r = check::check_decomposition(g, d);
      EXPECT_TRUE(r.ok) << r.message();
    }
  }
}

TEST(CheckDecomposition, RejectsTamperedBridgeOutput) {
  const CsrGraph g = test::figure1_graph();

  // Claiming a non-edge as a bridge.
  BridgeDecomposition d = decompose_bridge(g);
  d.bridges.emplace_back(0, 4);  // a-e is not an edge
  check::CheckResult r = check::check_decomposition(g, d);
  EXPECT_EQ(r.violation, "listed bridge is not an edge of G");

  // Listing the same bridge twice.
  d = decompose_bridge(g);
  ASSERT_FALSE(d.bridges.empty());
  d.bridges.push_back(d.bridges.front());
  EXPECT_EQ(check::check_decomposition(g, d).violation,
            "bridge listed more than once");

  // Flag on a vertex that touches no bridge (vertex 0 = a, triangle-only).
  d = decompose_bridge(g);
  ASSERT_EQ(d.is_bridge_vertex[0], 0);
  d.is_bridge_vertex[0] = 1;
  r = check::check_decomposition(g, d);
  EXPECT_EQ(r.violation, "is_bridge_vertex inconsistent with bridge list");
  EXPECT_EQ(r.vertex, 0u);

  // Splitting a 2-edge-connected component (vertex 0 sits in the a-b-c
  // triangle, so its label must match across surviving edges).
  d = decompose_bridge(g);
  d.components.label[0] = d.components.label[0] + 1;
  r = check::check_decomposition(g, d);
  EXPECT_EQ(r.violation, "component label changes across a non-bridge edge");
}

TEST(CheckDecomposition, AcceptsAndRejectsRand) {
  const CsrGraph g = test::random_graph(300, 900, 5);
  RandDecomposition d = decompose_rand(g, 3);
  EXPECT_TRUE(check::check_decomposition(g, d).ok);

  RandDecomposition bad = decompose_rand(g, 3);
  bad.part[7] = 3;  // == k, out of range
  check::CheckResult r = check::check_decomposition(g, bad);
  EXPECT_EQ(r.violation, "partition label out of range [0, k)");
  EXPECT_EQ(r.vertex, 7u);

  // Relabeling a vertex without rebuilding the pieces breaks the filter law
  // at that vertex (it is connected, so it has at least one edge).
  bad = decompose_rand(g, 3);
  bad.part[7] = (bad.part[7] + 1) % 3;
  r = check::check_decomposition(g, bad);
  EXPECT_FALSE(r.ok);
}

TEST(CheckDecomposition, AcceptsAndRejectsGrow) {
  const CsrGraph g = test::random_graph(300, 900, 9);
  const GrowDecomposition d = decompose_grow(g, 4);
  EXPECT_TRUE(check::check_decomposition(g, d).ok);

  GrowDecomposition bad = decompose_grow(g, 4);
  bad.cut_edges += 1;
  EXPECT_EQ(check::check_decomposition(g, bad).violation,
            "cut_edges != edge count of g_cross");
}

TEST(CheckDecomposition, AcceptsAndRejectsDegk) {
  const CsrGraph g = test::make_broom_small();
  const DegkDecomposition d = decompose_degk(g, 2, kDegkAll);
  const check::CheckResult ok = check::check_decomposition(g, d, kDegkAll);
  EXPECT_TRUE(ok.ok) << ok.message();

  DegkDecomposition bad = decompose_degk(g, 2, kDegkAll);
  bad.is_high[0] = bad.is_high[0] ? 0 : 1;
  EXPECT_EQ(check::check_decomposition(g, bad, kDegkAll).violation,
            "is_high disagrees with the degree threshold");

  bad = decompose_degk(g, 2, kDegkAll);
  bad.num_high += 1;
  EXPECT_EQ(check::check_decomposition(g, bad, kDegkAll).violation,
            "num_high != population count of is_high");
}

// -------------------------------------------------------- solver registry --

TEST(SolverRegistry, EveryVariantPassesItsOracleOnFigure1) {
  const CsrGraph g = test::figure1_graph();
  for (const auto& v : check::matching_variants()) {
    const MatchResult r = v.run(g, 42);
    EXPECT_TRUE(test::IsMaximalMatching(g, r.mate)) << v.name;
  }
  for (const auto& v : check::coloring_variants()) {
    const ColorResult r = v.run(g, 42);
    EXPECT_TRUE(test::IsProperColoring(g, r.color)) << v.name;
  }
  for (const auto& v : check::mis_variants()) {
    const MisResult r = v.run(g, 42);
    EXPECT_TRUE(test::IsMaximalIndependentSet(g, r.state)) << v.name;
  }
}

TEST(SolverRegistry, NamesAreUniquePerRegistryAndNonEmpty) {
  // Names are reported with an mm/ color/ mis/ prefix, so uniqueness is a
  // per-registry contract ("gpu/rand" exists in all three, legitimately).
  const auto check_names = [](std::vector<std::string> names) {
    std::sort(names.begin(), names.end());
    EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
    for (const auto& n : names) EXPECT_FALSE(n.empty());
  };
  std::vector<std::string> mm, color, mis;
  for (const auto& v : check::matching_variants()) mm.push_back(v.name);
  for (const auto& v : check::coloring_variants()) color.push_back(v.name);
  for (const auto& v : check::mis_variants()) mis.push_back(v.name);
  check_names(std::move(mm));
  check_names(std::move(color));
  check_names(std::move(mis));
}

}  // namespace
}  // namespace sbg
