// Jones-Plassmann coloring [18] with the vertex orderings studied by
// Hasenplaugh et al. [14] — the multicore lineage the paper's Section IV-A
// reviews. Every vertex gets a priority; a vertex colors itself (greedy
// first-fit against already-colored neighbors) in the round where every
// higher-priority neighbor is already colored. Deterministic given the
// ordering; never produces conflicts, at the cost of priority-chain depth
// many rounds.
#include <algorithm>

#include "coloring/coloring.hpp"
#include "parallel/atomics.hpp"
#include "parallel/cancel.hpp"
#include "parallel/compact.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/scratch.hpp"
#include "parallel/timer.hpp"

namespace sbg {

namespace {

std::uint64_t jp_priority(const CsrGraph& g, JpOrder order, std::uint64_t seed,
                          vid_t v) {
  // Priorities are (key, id) packed so comparisons are single u64 ops and
  // strict (no ties).
  switch (order) {
    case JpOrder::kRandom:
      return (mix64(seed ^ v) & ~0xffffffffull) | v;
    case JpOrder::kLargestDegreeFirst:
      return (static_cast<std::uint64_t>(g.degree(v)) << 32) | v;
    case JpOrder::kSmallestDegreeFirst:
      return (static_cast<std::uint64_t>(kNoVertex - g.degree(v)) << 32) | v;
  }
  return v;
}

}  // namespace

ColorResult color_jp(const CsrGraph& g, JpOrder order, std::uint64_t seed) {
  Timer timer;
  ColorResult r;
  const vid_t n = g.num_vertices();
  r.color.assign(n, kNoColor);
  const std::uint64_t base = mix64(seed ^ 0x39a55a93ull);

  Scratch& scratch = Scratch::local();
  Scratch::Region region(scratch);
  std::span<vid_t> worklist = scratch.take<vid_t>(n);
  std::span<vid_t> next = scratch.take<vid_t>(n);
  parallel_for(n, [&](std::size_t i) {
    if (g.degree(static_cast<vid_t>(i)) == 0) r.color[i] = 0;
  });
  std::size_t work_count = pack_index(
      n, [&](std::size_t v) { return g.degree(static_cast<vid_t>(v)) > 0; },
      worklist);

  while (work_count > 0) {
    poll_cancellation();
    ++r.rounds;
#pragma omp parallel
    {
      std::vector<std::uint32_t> forbidden;
#pragma omp for schedule(dynamic, 128)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(work_count);
           ++i) {
        const vid_t v = worklist[static_cast<std::size_t>(i)];
        const std::uint64_t pv = jp_priority(g, order, base, v);
        bool ready = true;
        forbidden.clear();
        for (const vid_t w : g.neighbors(v)) {
          const std::uint32_t c = atomic_read(&r.color[w]);
          if (c != kNoColor) {
            forbidden.push_back(c);
          } else if (jp_priority(g, order, base, w) > pv) {
            ready = false;
            break;
          }
        }
        if (!ready) continue;
        // Greedy first-fit over the collected neighbor colors.
        std::sort(forbidden.begin(), forbidden.end());
        std::uint32_t c = 0;
        for (const std::uint32_t f : forbidden) {
          if (f == c) {
            ++c;
          } else if (f > c) {
            break;
          }
        }
        atomic_write(&r.color[v], c);
      }
    }
    const std::size_t next_count =
        pack(worklist.first(work_count),
             [&](vid_t v) { return r.color[v] == kNoColor; }, next);
    SBG_CHECK(next_count < work_count, "JP made no progress");
    std::swap(worklist, next);
    work_count = next_count;
  }
  r.num_colors = count_colors(r.color);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
