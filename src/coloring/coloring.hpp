// Vertex coloring: baselines and decomposition-based composites
// (paper Section IV).
//
// Solvers are extenders over a shared, global, n-sized color array
// (kNoColor = uncolored): already-colored vertices are fixed and their
// colors are respected; an optional active mask restricts which vertices
// may be (re)colored. The composites (Algorithms 7-9) chain extend calls
// plus conflict-detection steps over one color array.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bridge.hpp"
#include "graph/csr.hpp"

namespace sbg {

/// Which base solver the composites use: VB on the CPU path, EB on the GPU
/// path (the paper's Section IV-B choice).
enum class ColorEngine { kVB, kEB };

struct ColorResult {
  /// color[v] in [0, num_colors) for every vertex.
  std::vector<std::uint32_t> color;
  std::uint32_t num_colors = 0;
  /// Total solver rounds across all phases.
  vid_t rounds = 0;
  /// Vertices that entered a color conflict in the stitch step of a
  /// decomposition variant (the Section IV-C "45% of vertices" metric).
  vid_t conflicted_vertices = 0;
  double total_seconds = 0.0;
  double decompose_seconds = 0.0;  ///< 0 for the baselines
  double solve_seconds = 0.0;
};

// ------------------------------------------------------------- extenders --
/// Algorithm VB [Deveci et al.]: speculative coloring with a fixed-size
/// FORBIDDEN array. Each round uncolored vertices scan neighbor colors in
/// the window [offset, offset + forbidden_size), take the smallest free
/// color (bumping their private offset when the window is saturated), then
/// conflicts (equal-colored neighbors) are resolved by uncoloring the
/// higher id. Colors start at `palette_base`. Returns rounds executed.
vid_t vb_extend(const CsrGraph& g, std::vector<std::uint32_t>& color,
                std::uint32_t forbidden_size, std::uint32_t palette_base = 0,
                const std::vector<std::uint8_t>* active = nullptr);

/// Algorithm EB [Deveci et al.]: edge-based speculative coloring for SIMD
/// machines. Availability is a 32-bit word per vertex; conflicts are
/// detected per edge and reset the LOWER id endpoint (the paper's rule).
vid_t eb_extend(const CsrGraph& g, std::vector<std::uint32_t>& color,
                std::uint32_t palette_base = 0,
                const std::vector<std::uint8_t>* active = nullptr);

/// The COLOR-Degk small-palette pass (Algorithm 9 step 6): color the
/// degree <= k vertices of `g` with the (k+1)-color palette
/// [palette_base, palette_base + k + 1), using a (k+1)-sized FORBIDDEN
/// array. All active vertices are first initialized to palette_base;
/// conflicted vertices (higher id yields) then rescan until stable.
vid_t small_palette_extend(const CsrGraph& g,
                           std::vector<std::uint32_t>& color,
                           std::uint32_t palette_base, std::uint32_t palette,
                           const std::vector<std::uint8_t>& active);

// ------------------------------------------------------------- baselines --
/// VB with FORBIDDEN size = average degree (the paper's CPU setting).
ColorResult color_vb(const CsrGraph& g);
ColorResult color_eb(const CsrGraph& g);

/// Vertex orderings for Jones-Plassmann [18], per Hasenplaugh et al. [14].
enum class JpOrder { kRandom, kLargestDegreeFirst, kSmallestDegreeFirst };

/// Jones-Plassmann: priority-DAG greedy coloring; conflict-free by
/// construction (a vertex colors only after all higher-priority
/// neighbors). An extended baseline from the paper's Section IV-A lineage.
ColorResult color_jp(const CsrGraph& g, JpOrder order = JpOrder::kRandom,
                     std::uint64_t seed = 42);

/// Gebremedhin-Manne / Catalyurek speculative coloring [12], [7]: greedy
/// first-fit over the unbounded palette for every uncolored vertex, then
/// uncolor one endpoint per conflict; repeat. The pre-Deveci baseline that
/// VB improves on with its fixed FORBIDDEN window.
ColorResult color_speculative(const CsrGraph& g);

// ------------------------------------------------- decomposition variants --
/// Algorithm 7 (COLOR-Bridge): color G - B with a shared palette, uncolor
/// the conflicted bridge endpoints, recolor them against all of G.
ColorResult color_bridge(const CsrGraph& g,
                         ColorEngine engine = ColorEngine::kVB,
                         BridgeAlgo bridge_algo = BridgeAlgo::kNaiveWalk);

/// Algorithm 8 (COLOR-Rand): color the induced subgraphs with an identical
/// palette, uncolor cross-edge conflicts, recolor against all of G.
/// k = 0 selects the paper's setting (Section IV-C uses few partitions).
ColorResult color_rand(const CsrGraph& g, vid_t k = 2,
                       ColorEngine engine = ColorEngine::kVB,
                       std::uint64_t seed = 42);

/// Algorithm 9 (COLOR-Degk): color G_H, then give G_L the k+1 extra colors
/// max(C_H)+1 .. max(C_H)+k+1 via the small-palette pass — no recoloring
/// against G_H is ever needed.
ColorResult color_degk(const CsrGraph& g, vid_t k = 2,
                       ColorEngine engine = ColorEngine::kVB);

// ----------------------------------------------------------- verification --
/// Boolean convenience wrapper over check::check_coloring (src/check/ is
/// the single source of truth for validity). `error` (if non-null) receives
/// the structured first-violation message.
bool verify_coloring(const CsrGraph& g, const std::vector<std::uint32_t>& color,
                     std::string* error = nullptr);

/// Number of distinct colors used (max + 1 over colored vertices).
std::uint32_t count_colors(const std::vector<std::uint32_t>& color);

}  // namespace sbg
