// Algorithm VB [Deveci et al. 2016]: vertex-based speculative coloring with
// a fixed-size FORBIDDEN array and per-vertex OFFSET escalation.
#include <omp.h>

#include <algorithm>
#include <cmath>

#include "coloring/coloring.hpp"
#include "obs/obs.hpp"
#include "parallel/atomics.hpp"
#include "parallel/cancel.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/timer.hpp"

namespace sbg {

vid_t vb_extend(const CsrGraph& g, std::vector<std::uint32_t>& color,
                std::uint32_t forbidden_size, std::uint32_t palette_base,
                const std::vector<std::uint8_t>* active) {
  SBG_SPAN("vb_extend");
  const vid_t n = g.num_vertices();
  SBG_CHECK(color.size() == n, "color array size mismatch");
  const std::uint32_t s = std::max<std::uint32_t>(1, forbidden_size);

  std::vector<std::uint32_t> offset(n, palette_base);
  std::vector<vid_t> worklist;
  for (vid_t v = 0; v < n; ++v) {
    if (color[v] == kNoColor && (!active || (*active)[v])) {
      worklist.push_back(v);
    }
  }

  vid_t rounds = 0;
  std::vector<vid_t> next;
  while (!worklist.empty()) {
    poll_cancellation();
    ++rounds;
    SBG_COUNTER_ADD("vb.rounds", 1);
    SBG_SERIES_APPEND("vb.frontier", worklist.size());
    // Per-round tallies: escalations track palette-window growth pressure,
    // conflicts the speculation failure rate (Section IV-C's "% vertices in
    // color conflict"). Both live on rare branches of the hot loops.
    SBG_OBS_ONLY(std::atomic<vid_t> obs_escalated{0};
                 std::atomic<vid_t> obs_conflicts{0};)
    // Speculative coloring: smallest free color in the FORBIDDEN window
    // [offset, offset + s); saturated windows escalate the offset and
    // retry next round.
#pragma omp parallel
    {
      std::vector<std::uint8_t> forbidden(s);
#pragma omp for schedule(dynamic, 128)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(worklist.size());
           ++i) {
        const vid_t v = worklist[static_cast<std::size_t>(i)];
        const std::uint32_t off = offset[v];
        std::fill(forbidden.begin(), forbidden.end(), 0);
        for (const vid_t w : g.neighbors(v)) {
          // Concurrent speculators race on the color array by design;
          // atomic relaxed reads keep the (benign) race well-defined.
          const std::uint32_t c = atomic_read(&color[w]);
          if (c != kNoColor && c >= off && c - off < s) forbidden[c - off] = 1;
        }
        std::uint32_t slot = 0;
        while (slot < s && forbidden[slot]) ++slot;
        if (slot < s) {
          atomic_write(&color[v], off + slot);
        } else {
          offset[v] = off + s;
          SBG_OBS_ONLY(obs_escalated.fetch_add(1, std::memory_order_relaxed);)
        }
      }
    }
    // Conflict resolution: among same-round speculators, the higher id
    // yields. (A speculator can never conflict with a previously fixed
    // vertex: fixed colors were visible during its window scan.)
    parallel_for_dynamic(worklist.size(), [&](std::size_t i) {
      const vid_t v = worklist[i];
      const std::uint32_t c = color[v];
      if (c == kNoColor) return;
      for (const vid_t w : g.neighbors(v)) {
        if (w < v && atomic_read(&color[w]) == c) {
          atomic_write(&color[v], kNoColor);
          SBG_OBS_ONLY(obs_conflicts.fetch_add(1, std::memory_order_relaxed);)
          return;
        }
      }
    });
    next.clear();
    for (const vid_t v : worklist) {
      if (color[v] == kNoColor) next.push_back(v);
    }
    SBG_OBS_ONLY({
      SBG_SERIES_APPEND("vb.conflicts", obs_conflicts.load());
      SBG_SERIES_APPEND("vb.window_escalations", obs_escalated.load());
      SBG_SERIES_APPEND("vb.colored", worklist.size() - next.size());
      SBG_COUNTER_ADD("vb.conflicts", obs_conflicts.load());
      SBG_COUNTER_ADD("vb.window_escalations", obs_escalated.load());
    })
    worklist.swap(next);
  }
  return rounds;
}

ColorResult color_vb(const CsrGraph& g) {
  Timer timer;
  ColorResult r;
  r.color.assign(g.num_vertices(), kNoColor);
  // The paper keeps "the size of the FORBIDDEN array ... the average degree
  // of the graph being colored" on the CPU.
  const auto s = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(g.average_degree())));
  r.rounds = vb_extend(g, r.color, s);
  r.num_colors = count_colors(r.color);
  SBG_GAUGE_SET("vb.palette", r.num_colors);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
