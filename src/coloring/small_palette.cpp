// The COLOR-Degk small-palette pass (paper Algorithm 9, step 6).
//
// For k = 2 the active vertices (V_L) have degree <= k inside the graph
// they are colored against, so k+1 palette colors always suffice and the
// FORBIDDEN array shrinks to k+1 slots — "using a small sized FORBIDDEN
// array improves the performance of Algorithm COLOR-Degk".
//
// All active vertices are initialized to palette_base; each round every
// vertex in conflict with a LOWER-id neighbor rescans its (k+1)-slot window
// and moves to the smallest free color. Vertices whose ids are local minima
// never move, so stabilization sweeps inward from them; real-world degree-2
// chains are short, keeping round counts small.
#include "coloring/coloring.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"

namespace sbg {

vid_t small_palette_extend(const CsrGraph& g,
                           std::vector<std::uint32_t>& color,
                           std::uint32_t palette_base, std::uint32_t palette,
                           const std::vector<std::uint8_t>& active) {
  const vid_t n = g.num_vertices();
  SBG_CHECK(color.size() == n, "color array size mismatch");
  SBG_CHECK(active.size() == n, "active mask size mismatch");
  SBG_CHECK(palette >= 1 && palette <= 32, "palette must fit one word");

  std::vector<vid_t> worklist;
  for (vid_t v = 0; v < n; ++v) {
    if (active[v]) {
      color[v] = palette_base;
      worklist.push_back(v);
    }
  }

  vid_t rounds = 0;
  bool any_conflict = !worklist.empty();
  while (any_conflict) {
    ++rounds;
    any_conflict = false;
    int changed = 0;
#pragma omp parallel for schedule(dynamic, 256) reduction(| : changed)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(worklist.size());
         ++i) {
      const vid_t v = worklist[static_cast<std::size_t>(i)];
      const std::uint32_t c = color[v];
      bool conflicted = false;
      std::uint32_t used = 0;
      for (const vid_t w : g.neighbors(v)) {
        const std::uint32_t cw = atomic_read(&color[w]);
        if (cw == c && w < v) conflicted = true;
        if (cw >= palette_base && cw - palette_base < palette) {
          used |= 1u << (cw - palette_base);
        }
      }
      if (conflicted) {
        // Degree within the palette's user set is <= palette-1, so a free
        // slot always exists.
        std::uint32_t slot = 0;
        while (slot < palette && (used >> slot & 1u)) ++slot;
        SBG_CHECK(slot < palette, "small palette saturated");
        atomic_write(&color[v], palette_base + slot);
        changed = 1;
      }
    }
    any_conflict = changed != 0;
  }
  return rounds;
}

}  // namespace sbg
