// Decomposition-based coloring (paper Algorithms 7, 8, 9).
//
// COLOR-Bridge / COLOR-Rand: color the decomposition's inner graph with a
// shared palette, detect the stitch conflicts G introduces (bridge / cross
// edges), uncolor one endpoint per conflict, and recolor those vertices
// against the FULL graph so the fix is final.
// COLOR-Degk: color G_H, then hand G_L a disjoint (k+1)-color palette — by
// construction no stitch conflicts exist at all.
#include <algorithm>
#include <cmath>

#include "coloring/coloring.hpp"
#include "check/check.hpp"
#include "core/degk.hpp"
#include "graph/subgraph.hpp"
#include "core/rand.hpp"
#include "obs/obs.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/timer.hpp"

namespace sbg {

namespace {

std::uint32_t forbidden_size_for(const CsrGraph& g) {
  return static_cast<std::uint32_t>(std::max(1.0, std::ceil(g.average_degree())));
}

vid_t extend(ColorEngine engine, const CsrGraph& g,
             std::vector<std::uint32_t>& color, std::uint32_t forbidden_size,
             std::uint32_t base = 0,
             const std::vector<std::uint8_t>* active = nullptr) {
  return engine == ColorEngine::kVB
             ? vb_extend(g, color, forbidden_size, base, active)
             : eb_extend(g, color, base, active);
}

/// Uncolor the higher endpoint of every monochromatic edge of `stitch`
/// (the edges the phase-1 coloring never saw). Returns the number of
/// vertices uncolored — the paper's "% vertices in color conflict" metric.
vid_t uncolor_stitch_conflicts(const CsrGraph& stitch,
                               std::vector<std::uint32_t>& color) {
  const vid_t n = stitch.num_vertices();
  std::vector<std::uint8_t> conflicted(n, 0);
  parallel_for_dynamic(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    const std::uint32_t c = color[v];
    if (c == kNoColor) return;
    for (const vid_t w : stitch.neighbors(v)) {
      if (w < v && color[w] == c) {
        conflicted[v] = 1;
        return;
      }
    }
  });
  vid_t count = 0;
#pragma omp parallel for schedule(static) reduction(+ : count)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    if (conflicted[static_cast<std::size_t>(i)]) {
      color[static_cast<std::size_t>(i)] = kNoColor;
      ++count;
    }
  }
  return count;
}

}  // namespace

ColorResult color_bridge(const CsrGraph& g, ColorEngine engine,
                         BridgeAlgo bridge_algo) {
  SBG_SPAN("color_bridge");
  Timer timer;
  PhaseTimer phases;
  ColorResult r;
  r.color.assign(g.num_vertices(), kNoColor);

  const BridgeDecomposition d = decompose_bridge(g, bridge_algo);
  r.decompose_seconds = d.decompose_seconds;
  const std::uint32_t s = forbidden_size_for(g);

  {
    // Color the 2-edge-connected components with one shared palette; the
    // pieces are vertex-disjoint so this is the "independently in parallel"
    // step. Bridge edges are invisible here, so only they can conflict.
    SBG_SPAN("solve");
    ScopedPhase phase(phases, "solve");
    r.rounds += extend(engine, d.g_components, r.color, s);
  }
  {
    // Stitch: uncolor the conflicted bridge endpoints, recolor against G.
    SBG_SPAN("stitch");
    ScopedPhase phase(phases, "stitch");
    // d.g_bridges is exactly the complement of g_components — the set this
    // used to re-filter from G (both-endpoints-bridge-vertex and not in a
    // component) — already materialized by the decomposition's split.
    r.conflicted_vertices = uncolor_stitch_conflicts(d.g_bridges, r.color);
    r.rounds += extend(engine, g, r.color, s);
  }
  SBG_COUNTER_ADD("color.stitch_conflicts", r.conflicted_vertices);

  r.num_colors = count_colors(r.color);
  r.total_seconds = timer.seconds();
  r.solve_seconds = phases.total_seconds();
  return r;
}

ColorResult color_rand(const CsrGraph& g, vid_t k, ColorEngine engine,
                       std::uint64_t seed) {
  SBG_SPAN("color_rand");
  Timer timer;
  PhaseTimer phases;
  ColorResult r;
  r.color.assign(g.num_vertices(), kNoColor);
  if (k == 0) k = 2;

  const RandDecomposition d = decompose_rand(g, k, seed);
  r.decompose_seconds = d.decompose_seconds;
  const std::uint32_t s = forbidden_size_for(g);

  {
    // Identical palette across all induced subgraphs (they are colored
    // together on g_intra; components never span partitions).
    SBG_SPAN("solve");
    ScopedPhase phase(phases, "solve");
    r.rounds += extend(engine, d.g_intra, r.color, s);
  }
  {
    // Cross edges are the only possible conflicts; uncolor and recolor
    // against the full graph.
    SBG_SPAN("stitch");
    ScopedPhase phase(phases, "stitch");
    r.conflicted_vertices = uncolor_stitch_conflicts(d.g_cross, r.color);
    r.rounds += extend(engine, g, r.color, s);
  }
  SBG_COUNTER_ADD("color.stitch_conflicts", r.conflicted_vertices);

  r.num_colors = count_colors(r.color);
  r.total_seconds = timer.seconds();
  r.solve_seconds = phases.total_seconds();
  return r;
}

ColorResult color_degk(const CsrGraph& g, vid_t k, ColorEngine engine) {
  SBG_SPAN("color_degk");
  Timer timer;
  PhaseTimer phases;
  ColorResult r;
  const vid_t n = g.num_vertices();
  r.color.assign(n, kNoColor);

  // DEGk stays a "simple computation": classification only, no subgraph
  // materialization. Both phases run on G itself with vertex masks —
  // phase 1 sees only G_H edges (low endpoints are uncolored and masked
  // out), phase 2's low vertices read high neighbors' colors but those
  // sit below the disjoint palette and never collide.
  const DegkDecomposition d = decompose_degk(g, k, /*pieces=*/0);
  r.decompose_seconds = d.decompose_seconds;

  {
    // Phase 1: color G_H. Only one endpoint of any cross edge is colored
    // here, so no stitch conflicts can ever appear (paper Section IV-B3).
    SBG_SPAN("solve");
    ScopedPhase phase(phases, "solve");
    const auto s_high = static_cast<std::uint32_t>(
        std::max(1.0, std::ceil(g.average_degree())));
    r.rounds += extend(engine, g, r.color, s_high, 0, &d.is_high);
  }
  {
    // Phase 2: G_L gets the disjoint palette max(C_H)+1 .. max(C_H)+k+1
    // with a (k+1)-sized FORBIDDEN array.
    SBG_SPAN("stitch");
    ScopedPhase phase(phases, "stitch");
    const std::uint32_t base = count_colors(r.color);
    std::vector<std::uint8_t> low(n);
    parallel_for(n, [&](std::size_t v) { low[v] = !d.is_high[v]; });
    r.rounds += small_palette_extend(g, r.color, base, k + 1, low);
  }

  r.num_colors = count_colors(r.color);
  r.total_seconds = timer.seconds();
  r.solve_seconds = phases.total_seconds();
  return r;
}

bool verify_coloring(const CsrGraph& g, const std::vector<std::uint32_t>& color,
                     std::string* error) {
  const check::ColoringReport rep = check::check_coloring(g, color);
  if (!rep.result && error) *error = rep.result.message();
  return rep.result.ok;
}

std::uint32_t count_colors(const std::vector<std::uint32_t>& color) {
  std::uint32_t best = 0;
#pragma omp parallel for schedule(static) reduction(max : best)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(color.size()); ++i) {
    const std::uint32_t c = color[static_cast<std::size_t>(i)];
    if (c != kNoColor && c + 1 > best) best = c + 1;
  }
  return best;
}

}  // namespace sbg
