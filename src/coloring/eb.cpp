// Algorithm EB [Deveci et al. 2016]: edge-based speculative coloring for
// SIMD architectures. Availability is one 32-bit word per vertex (instead
// of a FORBIDDEN array); conflicts are found by scanning edges and reset
// the LOWER-id endpoint. This is the paper's GPU baseline; the gpusim
// variant runs the identical kernels on the device model.
#include <bit>

#include "coloring/coloring.hpp"
#include "obs/obs.hpp"
#include "parallel/atomics.hpp"
#include "parallel/cancel.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/timer.hpp"

namespace sbg {

vid_t eb_extend(const CsrGraph& g, std::vector<std::uint32_t>& color,
                std::uint32_t palette_base,
                const std::vector<std::uint8_t>* active) {
  SBG_SPAN("eb_extend");
  const vid_t n = g.num_vertices();
  SBG_CHECK(color.size() == n, "color array size mismatch");

  std::vector<std::uint32_t> offset(n, palette_base);
  std::vector<vid_t> worklist;
  for (vid_t v = 0; v < n; ++v) {
    if (color[v] == kNoColor && (!active || (*active)[v])) {
      worklist.push_back(v);
    }
  }

  vid_t rounds = 0;
  std::vector<vid_t> next;
  while (!worklist.empty()) {
    poll_cancellation();
    ++rounds;
    SBG_COUNTER_ADD("eb.rounds", 1);
    SBG_SERIES_APPEND("eb.frontier", worklist.size());
    SBG_OBS_ONLY(std::atomic<vid_t> obs_escalated{0};
                 std::atomic<vid_t> obs_conflicts{0};)
    // Tentative assignment: smallest color whose bit is clear in the
    // 32-color availability window.
    parallel_for_dynamic(worklist.size(), [&](std::size_t i) {
      const vid_t v = worklist[i];
      const std::uint32_t off = offset[v];
      std::uint32_t used = 0;
      for (const vid_t w : g.neighbors(v)) {
        const std::uint32_t c = atomic_read(&color[w]);
        if (c != kNoColor && c >= off && c - off < 32) {
          used |= 1u << (c - off);
        }
      }
      if (used != 0xffffffffu) {
        atomic_write(&color[v],
                     off + static_cast<std::uint32_t>(std::countr_one(used)));
      } else {
        offset[v] = off + 32;
        SBG_OBS_ONLY(obs_escalated.fetch_add(1, std::memory_order_relaxed);)
      }
    });
    // Edge-based conflict detection: equal endpoint colors reset the
    // lower id (the paper's rule). Only same-round speculators can
    // conflict, so scanning the speculators' edges covers every conflict.
    parallel_for_dynamic(worklist.size(), [&](std::size_t i) {
      const vid_t v = worklist[i];
      const std::uint32_t c = color[v];
      if (c == kNoColor) return;
      for (const vid_t w : g.neighbors(v)) {
        if (w > v && atomic_read(&color[w]) == c) {
          atomic_write(&color[v], kNoColor);
          SBG_OBS_ONLY(obs_conflicts.fetch_add(1, std::memory_order_relaxed);)
          return;
        }
      }
    });
    next.clear();
    for (const vid_t v : worklist) {
      if (color[v] == kNoColor) next.push_back(v);
    }
    SBG_OBS_ONLY({
      SBG_SERIES_APPEND("eb.conflicts", obs_conflicts.load());
      SBG_SERIES_APPEND("eb.window_escalations", obs_escalated.load());
      SBG_SERIES_APPEND("eb.colored", worklist.size() - next.size());
      SBG_COUNTER_ADD("eb.conflicts", obs_conflicts.load());
      SBG_COUNTER_ADD("eb.window_escalations", obs_escalated.load());
    })
    worklist.swap(next);
  }
  return rounds;
}

ColorResult color_eb(const CsrGraph& g) {
  Timer timer;
  ColorResult r;
  r.color.assign(g.num_vertices(), kNoColor);
  r.rounds = eb_extend(g, r.color);
  r.num_colors = count_colors(r.color);
  SBG_GAUGE_SET("eb.palette", r.num_colors);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
