// Gebremedhin-Manne / Catalyurek et al. speculative coloring — the
// pre-Deveci multicore baseline (Section IV-A): every uncolored vertex
// greedily takes the smallest color not used by any neighbor (unbounded
// palette, so the FORBIDDEN scratch is degree-sized, rebuilt per vertex),
// conflicts between same-round speculators uncolor the higher id, repeat.
// Deveci et al.'s VB replaces the unbounded palette with a fixed window —
// bench_extended_baselines shows what that buys.
#include <omp.h>

#include <algorithm>

#include "coloring/coloring.hpp"
#include "parallel/atomics.hpp"
#include "parallel/cancel.hpp"
#include "parallel/compact.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scratch.hpp"
#include "parallel/timer.hpp"

namespace sbg {

ColorResult color_speculative(const CsrGraph& g) {
  Timer timer;
  ColorResult r;
  const vid_t n = g.num_vertices();
  r.color.assign(n, kNoColor);

  Scratch& scratch = Scratch::local();
  Scratch::Region region(scratch);
  std::span<vid_t> worklist = scratch.take<vid_t>(n);
  std::span<vid_t> next = scratch.take<vid_t>(n);
  parallel_for(n, [&](std::size_t i) { worklist[i] = static_cast<vid_t>(i); });
  std::size_t work_count = n;

  while (work_count > 0) {
    poll_cancellation();
    ++r.rounds;
#pragma omp parallel
    {
      std::vector<std::uint32_t> nbr_colors;
#pragma omp for schedule(dynamic, 128)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(work_count);
           ++i) {
        const vid_t v = worklist[static_cast<std::size_t>(i)];
        nbr_colors.clear();
        for (const vid_t w : g.neighbors(v)) {
          const std::uint32_t c = atomic_read(&r.color[w]);
          if (c != kNoColor) nbr_colors.push_back(c);
        }
        std::sort(nbr_colors.begin(), nbr_colors.end());
        std::uint32_t c = 0;
        for (const std::uint32_t f : nbr_colors) {
          if (f == c) {
            ++c;
          } else if (f > c) {
            break;
          }
        }
        atomic_write(&r.color[v], c);
      }
    }
    // Conflict detection: higher id yields (keeps the lowest-id speculator
    // stable, guaranteeing progress).
    parallel_for_dynamic(work_count, [&](std::size_t i) {
      const vid_t v = worklist[i];
      const std::uint32_t c = r.color[v];
      for (const vid_t w : g.neighbors(v)) {
        if (w < v && atomic_read(&r.color[w]) == c) {
          atomic_write(&r.color[v], kNoColor);
          return;
        }
      }
    });
    const std::size_t next_count =
        pack(worklist.first(work_count),
             [&](vid_t v) { return r.color[v] == kNoColor; }, next);
    std::swap(worklist, next);
    work_count = next_count;
  }
  r.num_colors = count_colors(r.color);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
