// Gebremedhin-Manne / Catalyurek et al. speculative coloring — the
// pre-Deveci multicore baseline (Section IV-A): every uncolored vertex
// greedily takes the smallest color not used by any neighbor (unbounded
// palette, so the FORBIDDEN scratch is degree-sized, rebuilt per vertex),
// conflicts between same-round speculators uncolor the higher id, repeat.
// Deveci et al.'s VB replaces the unbounded palette with a fixed window —
// bench_extended_baselines shows what that buys.
#include <omp.h>

#include <algorithm>

#include "coloring/coloring.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/timer.hpp"

namespace sbg {

ColorResult color_speculative(const CsrGraph& g) {
  Timer timer;
  ColorResult r;
  const vid_t n = g.num_vertices();
  r.color.assign(n, kNoColor);

  std::vector<vid_t> worklist;
  worklist.reserve(n);
  for (vid_t v = 0; v < n; ++v) worklist.push_back(v);

  std::vector<vid_t> next;
  while (!worklist.empty()) {
    ++r.rounds;
#pragma omp parallel
    {
      std::vector<std::uint32_t> nbr_colors;
#pragma omp for schedule(dynamic, 128)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(worklist.size());
           ++i) {
        const vid_t v = worklist[static_cast<std::size_t>(i)];
        nbr_colors.clear();
        for (const vid_t w : g.neighbors(v)) {
          const std::uint32_t c = atomic_read(&r.color[w]);
          if (c != kNoColor) nbr_colors.push_back(c);
        }
        std::sort(nbr_colors.begin(), nbr_colors.end());
        std::uint32_t c = 0;
        for (const std::uint32_t f : nbr_colors) {
          if (f == c) {
            ++c;
          } else if (f > c) {
            break;
          }
        }
        atomic_write(&r.color[v], c);
      }
    }
    // Conflict detection: higher id yields (keeps the lowest-id speculator
    // stable, guaranteeing progress).
    parallel_for_dynamic(worklist.size(), [&](std::size_t i) {
      const vid_t v = worklist[i];
      const std::uint32_t c = r.color[v];
      for (const vid_t w : g.neighbors(v)) {
        if (w < v && atomic_read(&r.color[w]) == c) {
          atomic_write(&r.color[v], kNoColor);
          return;
        }
      }
    });
    next.clear();
    for (const vid_t v : worklist) {
      if (r.color[v] == kNoColor) next.push_back(v);
    }
    worklist.swap(next);
  }
  r.num_colors = count_colors(r.color);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
