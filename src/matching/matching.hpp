// Maximal matching: baselines and decomposition-based composites
// (paper Section III).
//
// All solvers are *extenders*: they grow a shared, global, n-sized mate
// array (kNoVertex = unmatched) to a maximal matching of the graph they are
// handed, skipping vertices that are already matched. Because decomposition
// subgraphs live in the global id space, the composite algorithms
// (Algorithms 4-6) are just sequences of extend calls on different
// sub-CSRs over one mate array.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bridge.hpp"
#include "graph/csr.hpp"

namespace sbg {

/// Which base solver the composites use: GM on the CPU path (the paper's
/// multicore baseline), LMAX on the GPU path.
enum class MatchEngine { kGM, kLMAX };

struct MatchResult {
  /// mate[v] == partner, or kNoVertex if v is unmatched.
  std::vector<vid_t> mate;
  /// |M|.
  eid_t cardinality = 0;
  /// Total solver rounds across all phases — the paper's "iterations"
  /// (the vain-tendency metric of Section III-C).
  vid_t rounds = 0;
  double total_seconds = 0.0;
  double decompose_seconds = 0.0;  ///< 0 for the baselines
  double solve_seconds = 0.0;
};

// ------------------------------------------------------------- extenders --
/// Algorithm GM [Blelloch et al.]: each round every unmatched vertex
/// proposes to its lowest-id unmatched neighbor; mutual proposals match.
/// Deliberately reproduces the paper's "vain tendency" (long proposal
/// chains yielding one match per round). Returns rounds executed.
/// `active`: optional n-sized mask; 0-vertices are treated as absent.
/// `max_rounds`: stop (possibly before maximality) after this many rounds;
/// 0 means run to maximality. Used by the vain-tendency ablation to sample
/// the early-match profile.
vid_t gm_extend(const CsrGraph& g, std::vector<vid_t>& mate,
                const std::vector<std::uint8_t>* active = nullptr,
                vid_t max_rounds = 0);

/// Weight policy for LMAX. The practical GPU matching codes the paper
/// baselines against fabricate weights for unweighted graphs from vertex /
/// edge indices (kIndex). That choice is load-bearing: on graphs whose ids
/// run along geometric structure (rgg, road chains) index weights form
/// long monotone chains where only the chain head is a local maximum —
/// the GPU-side analogue of GM's vain tendency, and the reason the paper
/// sees "a similar trend" for MM-Rand on the CPU and the GPU. kRandom
/// (seed-hashed weights) converges in O(log n) rounds and is available
/// for the ablation benches.
enum class LmaxWeights { kIndex, kRandom };

/// Algorithm LMAX [Birn et al.]: each round every unmatched vertex points
/// at its heaviest live incident edge; locally-maximal edges (mutual
/// pointers) join the matching.
vid_t lmax_extend(const CsrGraph& g, std::vector<vid_t>& mate,
                  std::uint64_t seed,
                  const std::vector<std::uint8_t>* active = nullptr,
                  LmaxWeights weights = LmaxWeights::kIndex);

namespace detail {

/// LMAX weight machinery, shared by the CPU solver and the gpusim kernels.
/// `base` == 0 selects index weights (lexicographic in (hi, lo)); any other
/// base hashes with it.
inline std::uint64_t lmax_edge_weight(vid_t u, vid_t v, std::uint64_t base) {
  const vid_t lo = u < v ? u : v;
  const vid_t hi = u < v ? v : u;
  const std::uint64_t packed = static_cast<std::uint64_t>(hi) << 32 | lo;
  if (base == 0) return packed;
  // splitmix64 finalizer, inlined to keep this header light.
  std::uint64_t x = base ^ packed;
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline std::uint64_t lmax_weight_base(std::uint64_t seed, LmaxWeights weights) {
  if (weights == LmaxWeights::kIndex) return 0;
  std::uint64_t x = seed ^ 0x16a40000u;
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;  // 0 is the kIndex sentinel
}

}  // namespace detail

/// Israeli-Itai randomized matching [17]: random invitations, hash-min
/// acceptance, accepted-arc resolution. O(log n) expected rounds with no
/// proposal chains — an extended-baseline contrast to GM's vain tendency.
vid_t ii_extend(const CsrGraph& g, std::vector<vid_t>& mate,
                std::uint64_t seed,
                const std::vector<std::uint8_t>* active = nullptr);

// ------------------------------------------------------------- baselines --
MatchResult mm_gm(const CsrGraph& g);
MatchResult mm_lmax(const CsrGraph& g, std::uint64_t seed = 42,
                    LmaxWeights weights = LmaxWeights::kIndex);
MatchResult mm_ii(const CsrGraph& g, std::uint64_t seed = 42);

/// Sequential greedy matching (edges scanned in CSR order): the test
/// oracle and a single-thread reference point for the benches.
MatchResult mm_greedy_seq(const CsrGraph& g);

// ------------------------------------------------- decomposition variants --
/// Algorithm 4 (MM-Bridge): match the 2-edge-connected components, then
/// extend across the still-unmatched bridge endpoints.
MatchResult mm_bridge(const CsrGraph& g, MatchEngine engine = MatchEngine::kGM,
                      std::uint64_t seed = 42,
                      BridgeAlgo bridge_algo = BridgeAlgo::kNaiveWalk);

/// Algorithm 5 (MM-Rand): match the k intra-partition induced subgraphs,
/// then extend over the cross edges. k = 0 selects the paper's heuristic
/// (~average degree; 10 on CPU / 4 on GPU in the experiments).
MatchResult mm_rand(const CsrGraph& g, vid_t k = 0,
                    MatchEngine engine = MatchEngine::kGM,
                    std::uint64_t seed = 42);

/// Algorithm 6 (MM-Degk): match G_H, then extend over G_L ∪ G_C.
MatchResult mm_degk(const CsrGraph& g, vid_t k = 2,
                    MatchEngine engine = MatchEngine::kGM,
                    std::uint64_t seed = 42);

// ----------------------------------------------------------- verification --
/// Boolean convenience wrapper over check::check_matching (src/check/ is
/// the single source of truth for validity). `error` (if non-null) receives
/// the structured first-violation message.
bool verify_maximal_matching(const CsrGraph& g, const std::vector<vid_t>& mate,
                             std::string* error = nullptr);

/// Matched-pair count of a mate array.
eid_t matching_cardinality(const std::vector<vid_t>& mate);

}  // namespace sbg
