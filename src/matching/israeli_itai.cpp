// Israeli-Itai randomized matching [17] — the classic two-phase proposal
// algorithm the paper cites among existing approaches: every live vertex
// invites a uniformly random live neighbor; invited vertices accept one
// inviter (the one with the winning hash); accepted pairs match. A constant
// fraction of live edges disappears per round in expectation, so rounds are
// O(log n) — and unlike GM's lowest-id rule it cannot form proposal chains,
// which makes it a useful contrast in the extended-baseline benches.
#include "matching/matching.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

namespace sbg {

vid_t ii_extend(const CsrGraph& g, std::vector<vid_t>& mate,
                std::uint64_t seed,
                const std::vector<std::uint8_t>* active) {
  const vid_t n = g.num_vertices();
  SBG_CHECK(mate.size() == n, "mate array size mismatch");
  const RandomStream rs(seed, /*stream=*/0x11a1);

  const auto is_live = [&](vid_t v) {
    return mate[v] == kNoVertex && (!active || (*active)[v]);
  };

  std::vector<vid_t> invite(n, kNoVertex);
  std::vector<vid_t> accept(n, kNoVertex);
  std::vector<vid_t> live;
  live.reserve(n);
  for (vid_t v = 0; v < n; ++v) {
    if (is_live(v) && g.degree(v) > 0) live.push_back(v);
  }

  vid_t rounds = 0;
  std::vector<vid_t> next_live;
  while (!live.empty()) {
    ++rounds;
    // Invite: a uniformly random live neighbor (rejection-free: pick a
    // random arc, fall back to a scan when it is dead).
    parallel_for_dynamic(live.size(), [&](std::size_t i) {
      const vid_t v = live[i];
      accept[v] = kNoVertex;
      const vid_t deg = g.degree(v);
      const eid_t arc =
          g.arc_begin(v) + rs.below(static_cast<std::uint64_t>(rounds) * n + v,
                                    deg);
      vid_t pick = g.arc_head(arc);
      if (!is_live(pick)) {
        pick = kNoVertex;
        for (const vid_t w : g.neighbors(v)) {
          if (is_live(w)) {
            pick = w;
            break;
          }
        }
      }
      invite[v] = pick;
    });
    // Accept: each invited vertex takes the inviter with the smallest
    // per-round hash (deterministic given the seed).
    parallel_for_dynamic(live.size(), [&](std::size_t i) {
      const vid_t v = live[i];
      const vid_t w = invite[v];
      if (w == kNoVertex) return;
      const std::uint64_t key =
          mix64(rs.bits(static_cast<std::uint64_t>(rounds) * n + v) ^ v);
      // accept[w] holds the winning inviter id; resolve races by hash-min
      // with id tie-break encoded in the key's low bits.
      vid_t cur = atomic_read(&accept[w]);
      while (true) {
        const bool wins =
            cur == kNoVertex ||
            key < mix64(rs.bits(static_cast<std::uint64_t>(rounds) * n + cur) ^
                        cur) ||
            (key == mix64(rs.bits(static_cast<std::uint64_t>(rounds) * n +
                                  cur) ^
                          cur) &&
             v < cur);
        if (!wins) break;
        if (claim(&accept[w], cur, v)) break;
        cur = atomic_read(&accept[w]);
      }
    });
    // Match. Accepted arcs v->w (accept[w] == v) have out-degree <= 1
    // (v invites once) and in-degree <= 1 (w accepts once), so they form
    // paths and cycles. Matching the arcs whose HEAD has no accepted
    // outgoing arc picks a set of vertex-disjoint edges (on a path, the
    // arc at the tail; longer chains resolve next round; accepted cycles
    // re-randomize next round). The predicate only reads invite/accept,
    // and accept[w] == v holds for at most one v, so the pair (v, w) is
    // written by exactly one iteration.
    parallel_for(live.size(), [&](std::size_t i) {
      const vid_t v = live[i];
      const vid_t w = invite[v];
      if (w == kNoVertex || accept[w] != v) return;
      const vid_t wx = invite[w];
      const bool w_accepted_elsewhere =
          wx != kNoVertex && wx != v && accept[wx] == w;
      if (w_accepted_elsewhere) return;
      // Mutual invitation: both arcs qualify; only the lower id writes.
      if (wx == v && accept[v] == w && v > w) return;
      mate[v] = w;
      mate[w] = v;
    });
    next_live.clear();
    for (const vid_t v : live) {
      if (mate[v] == kNoVertex && invite[v] != kNoVertex) {
        next_live.push_back(v);
      }
    }
    live.swap(next_live);
  }
  return rounds;
}

MatchResult mm_ii(const CsrGraph& g, std::uint64_t seed) {
  Timer timer;
  MatchResult r;
  r.mate.assign(g.num_vertices(), kNoVertex);
  r.rounds = ii_extend(g, r.mate, seed);
  r.cardinality = matching_cardinality(r.mate);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
