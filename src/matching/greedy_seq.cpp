// Sequential greedy maximal matching: scan vertices in id order, match each
// unmatched vertex to its lowest-id unmatched neighbor. This is the
// lexicographically-first maximal matching — a deterministic oracle for
// tests and the single-thread reference the parallel solvers are compared
// against in bench_extended_baselines.
#include "matching/matching.hpp"
#include "parallel/timer.hpp"

namespace sbg {

MatchResult mm_greedy_seq(const CsrGraph& g) {
  Timer timer;
  MatchResult r;
  const vid_t n = g.num_vertices();
  r.mate.assign(n, kNoVertex);
  for (vid_t v = 0; v < n; ++v) {
    if (r.mate[v] != kNoVertex) continue;
    for (const vid_t w : g.neighbors(v)) {
      if (r.mate[w] == kNoVertex) {
        r.mate[v] = w;
        r.mate[w] = v;
        break;
      }
    }
  }
  r.rounds = 1;
  r.cardinality = matching_cardinality(r.mate);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
