// Algorithm GM: handshaking with lowest-id mate proposals.
//
// The paper's description (Section III-C): "for every vertex its neighbor
// with lowest id is the potential mate"; mutual proposals match. Long
// proposal chains produce one match per round ("vain tendency") — the round
// count this returns is exactly the iteration count the paper contrasts
// between GM and MM-Rand (14,000 vs ~417 on rgg-n-2-24-s0).
//
// Work bound: adjacency lists are sorted, so "lowest-id live neighbor" is
// maintained with a monotone per-vertex cursor — matched prefixes are
// skipped once and never rescanned, giving O(m) total cursor work plus
// O(live set) per round.
#include <omp.h>

#include "matching/matching.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/timer.hpp"

namespace sbg {

vid_t gm_extend(const CsrGraph& g, std::vector<vid_t>& mate,
                const std::vector<std::uint8_t>* active, vid_t max_rounds) {
  SBG_SPAN("gm_extend");
  const vid_t n = g.num_vertices();
  SBG_CHECK(mate.size() == n, "mate array size mismatch");

  const auto is_live = [&](vid_t v) {
    return mate[v] == kNoVertex && (!active || (*active)[v]);
  };

  std::vector<eid_t> cursor(n);
  std::vector<vid_t> proposal(n, kNoVertex);
  std::vector<vid_t> live;
  live.reserve(n);
  for (vid_t v = 0; v < n; ++v) {
    cursor[v] = g.arc_begin(v);
    if (is_live(v) && g.degree(v) > 0) live.push_back(v);
  }

  vid_t rounds = 0;
  std::vector<vid_t> next_live;
  while (!live.empty() && (max_rounds == 0 || rounds < max_rounds)) {
    ++rounds;
    SBG_COUNTER_ADD("gm.rounds", 1);
    SBG_COUNTER_ADD("gm.proposals", live.size());
    SBG_SERIES_APPEND("gm.frontier", live.size());
    // Propose: lowest-id live neighbor (advance the monotone cursor past
    // dead prefixes; cursors only ever move forward).
    parallel_for_dynamic(live.size(), [&](std::size_t i) {
      const vid_t v = live[i];
      eid_t c = cursor[v];
      const eid_t end = g.arc_end(v);
      while (c < end && !is_live(g.arc_head(c))) ++c;
      cursor[v] = c;
      proposal[v] = c < end ? g.arc_head(c) : kNoVertex;
    });
    // Match mutual proposals. The pair (v, w) is written by v's iteration
    // only (v < w), so writes never race.
    parallel_for(live.size(), [&](std::size_t i) {
      const vid_t v = live[i];
      const vid_t w = proposal[v];
      if (w != kNoVertex && v < w && proposal[w] == v) {
        mate[v] = w;
        mate[w] = v;
      }
    });
    // Survivors: still unmatched and still have a live neighbor candidate.
    // (A vertex whose proposal was kNoVertex can never match again: live
    // sets only shrink.) The obs tallies ride the existing scan: matched =
    // vertices paired this round, in-vain = proposals that went unmatched —
    // the per-round shape of the paper's "vain tendency".
    next_live.clear();
    SBG_OBS_ONLY(vid_t obs_matched = 0; vid_t obs_exhausted = 0;)
    for (const vid_t v : live) {
      if (mate[v] != kNoVertex) {
        SBG_OBS_ONLY(++obs_matched;)
        continue;
      }
      if (proposal[v] != kNoVertex) {
        next_live.push_back(v);
      } else {
        SBG_OBS_ONLY(++obs_exhausted;)
      }
    }
    SBG_OBS_ONLY({
      SBG_SERIES_APPEND("gm.matched", obs_matched);
      SBG_SERIES_APPEND("gm.in_vain",
                        live.size() - obs_matched - obs_exhausted);
      SBG_COUNTER_ADD("gm.matched_vertices", obs_matched);
      if (obs_matched <= 2 && live.size() > 8) {
        // A round that matched at most one pair on a non-trivial frontier:
        // the signature of one long proposal chain draining.
        SBG_COUNTER_ADD("gm.vain_rounds", 1);
      }
    })
    live.swap(next_live);
  }
  return rounds;
}

MatchResult mm_gm(const CsrGraph& g) {
  Timer timer;
  MatchResult r;
  r.mate.assign(g.num_vertices(), kNoVertex);
  r.rounds = gm_extend(g, r.mate);
  r.cardinality = matching_cardinality(r.mate);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
