// Algorithm GM: handshaking with lowest-id mate proposals.
//
// The paper's description (Section III-C): "for every vertex its neighbor
// with lowest id is the potential mate"; mutual proposals match. Long
// proposal chains produce one match per round ("vain tendency") — the round
// count this returns is exactly the iteration count the paper contrasts
// between GM and MM-Rand (14,000 vs ~417 on rgg-n-2-24-s0).
//
// Work bound: adjacency lists are sorted, so "lowest-id live neighbor" is
// maintained with a monotone per-vertex cursor — matched prefixes are
// skipped once and never rescanned, giving O(m) total cursor work plus
// O(live set) per round.
#include <omp.h>

#include "matching/matching.hpp"
#include "obs/obs.hpp"
#include "parallel/cancel.hpp"
#include "parallel/compact.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scratch.hpp"
#include "parallel/timer.hpp"

namespace sbg {

vid_t gm_extend(const CsrGraph& g, std::vector<vid_t>& mate,
                const std::vector<std::uint8_t>* active, vid_t max_rounds) {
  SBG_SPAN("gm_extend");
  const vid_t n = g.num_vertices();
  SBG_CHECK(mate.size() == n, "mate array size mismatch");

  const auto is_live = [&](vid_t v) {
    return mate[v] == kNoVertex && (!active || (*active)[v]);
  };

  Scratch& scratch = Scratch::local();
  Scratch::Region region(scratch);
  std::span<eid_t> cursor = scratch.take<eid_t>(n);
  std::span<vid_t> proposal = scratch.take_fill<vid_t>(n, kNoVertex);
  std::span<vid_t> live = scratch.take<vid_t>(n);
  std::span<vid_t> next_live = scratch.take<vid_t>(n);
  parallel_for(n, [&](std::size_t v) {
    cursor[v] = g.arc_begin(static_cast<vid_t>(v));
  });
  std::size_t live_count = pack_index(
      n,
      [&](std::size_t i) {
        const vid_t v = static_cast<vid_t>(i);
        return is_live(v) && g.degree(v) > 0;
      },
      live);

  vid_t rounds = 0;
  while (live_count > 0 && (max_rounds == 0 || rounds < max_rounds)) {
    poll_cancellation();
    ++rounds;
    SBG_COUNTER_ADD("gm.rounds", 1);
    SBG_COUNTER_ADD("gm.proposals", live_count);
    SBG_SERIES_APPEND("gm.frontier", live_count);
    // Propose: lowest-id live neighbor (advance the monotone cursor past
    // dead prefixes; cursors only ever move forward).
    parallel_for_dynamic(live_count, [&](std::size_t i) {
      const vid_t v = live[i];
      eid_t c = cursor[v];
      const eid_t end = g.arc_end(v);
      while (c < end && !is_live(g.arc_head(c))) ++c;
      cursor[v] = c;
      proposal[v] = c < end ? g.arc_head(c) : kNoVertex;
    });
    // Match mutual proposals. The pair (v, w) is written by v's iteration
    // only (v < w), so writes never race.
    parallel_for(live_count, [&](std::size_t i) {
      const vid_t v = live[i];
      const vid_t w = proposal[v];
      if (w != kNoVertex && v < w && proposal[w] == v) {
        mate[v] = w;
        mate[w] = v;
      }
    });
    // Survivors: still unmatched and still have a live neighbor candidate.
    // (A vertex whose proposal was kNoVertex can never match again: live
    // sets only shrink.) Survivors are exactly the in-vain proposers, so
    // the obs tallies need just one extra count: matched = vertices paired
    // this round — the per-round shape of the paper's "vain tendency".
    const std::size_t next_count = pack(
        live.first(live_count),
        [&](vid_t v) { return mate[v] == kNoVertex && proposal[v] != kNoVertex; },
        next_live);
    SBG_OBS_ONLY({
      const std::size_t obs_matched =
          parallel_count(live_count, [&](std::size_t i) {
            return mate[live[i]] != kNoVertex;
          });
      SBG_SERIES_APPEND("gm.matched", obs_matched);
      SBG_SERIES_APPEND("gm.in_vain", next_count);
      SBG_COUNTER_ADD("gm.matched_vertices", obs_matched);
      if (obs_matched <= 2 && live_count > 8) {
        // A round that matched at most one pair on a non-trivial frontier:
        // the signature of one long proposal chain draining.
        SBG_COUNTER_ADD("gm.vain_rounds", 1);
      }
    })
    std::swap(live, next_live);
    live_count = next_count;
  }
  return rounds;
}

MatchResult mm_gm(const CsrGraph& g) {
  Timer timer;
  MatchResult r;
  r.mate.assign(g.num_vertices(), kNoVertex);
  r.rounds = gm_extend(g, r.mate);
  r.cardinality = matching_cardinality(r.mate);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
