// Decomposition-based maximal matching (paper Algorithms 4, 5, 6).
//
// Each composite is two extend phases over one global mate array:
//   phase 1: solve the decomposition's "inner" subgraph(s);
//   phase 2: extend over the leftover structure restricted (implicitly,
//            via the mate array) to still-unmatched vertices.
// Maximality of the union follows because every edge of G lives in one of
// the two phase graphs.
#include "matching/matching.hpp"

#include "check/check.hpp"
#include "core/degk.hpp"
#include "core/rand.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/timer.hpp"

namespace sbg {

namespace {

vid_t extend(MatchEngine engine, const CsrGraph& g, std::vector<vid_t>& mate,
             std::uint64_t seed,
             const std::vector<std::uint8_t>* active = nullptr) {
  return engine == MatchEngine::kGM ? gm_extend(g, mate, active)
                                    : lmax_extend(g, mate, seed, active);
}

}  // namespace

MatchResult mm_bridge(const CsrGraph& g, MatchEngine engine,
                      std::uint64_t seed, BridgeAlgo bridge_algo) {
  SBG_SPAN("mm_bridge");
  Timer timer;
  PhaseTimer phases;
  MatchResult r;
  r.mate.assign(g.num_vertices(), kNoVertex);

  const BridgeDecomposition d = decompose_bridge(g, bridge_algo);
  r.decompose_seconds = d.decompose_seconds;

  {
    // Phase 1: M_c on the 2-edge-connected components (G - B).
    SBG_SPAN("solve");
    ScopedPhase phase(phases, "solve");
    r.rounds += extend(engine, d.g_components, r.mate, seed);
  }
  {
    // Phase 2: M_b on the bridges among still-unmatched endpoints. (By
    // maximality of M_c, no other G-edge can join unmatched vertices; see
    // the header note.) The bridge sub-CSR comes straight out of the
    // decomposition's one-pass split — no edge-list rebuild.
    SBG_SPAN("stitch");
    ScopedPhase phase(phases, "stitch");
    r.rounds += extend(engine, d.g_bridges, r.mate, seed + 1);
  }

  r.cardinality = matching_cardinality(r.mate);
  r.total_seconds = timer.seconds();
  r.solve_seconds = phases.total_seconds();
  return r;
}

MatchResult mm_rand(const CsrGraph& g, vid_t k, MatchEngine engine,
                    std::uint64_t seed) {
  SBG_SPAN("mm_rand");
  Timer timer;
  PhaseTimer phases;
  MatchResult r;
  r.mate.assign(g.num_vertices(), kNoVertex);
  if (k == 0) k = rand_partition_heuristic(g);

  const RandDecomposition d = decompose_rand(g, k, seed);
  r.decompose_seconds = d.decompose_seconds;

  {
    // Phase 1: M_IS on the union of induced subgraphs G_1..G_k. Components
    // of g_intra never span partitions, so this IS the "solve all G_i in
    // parallel" step.
    SBG_SPAN("solve");
    ScopedPhase phase(phases, "solve");
    r.rounds += extend(engine, d.g_intra, r.mate, seed);
  }
  {
    // Phase 2: M_{k+1} on the cross edges among unmatched vertices.
    SBG_SPAN("stitch");
    ScopedPhase phase(phases, "stitch");
    r.rounds += extend(engine, d.g_cross, r.mate, seed + 1);
  }

  r.cardinality = matching_cardinality(r.mate);
  r.total_seconds = timer.seconds();
  r.solve_seconds = phases.total_seconds();
  return r;
}

MatchResult mm_degk(const CsrGraph& g, vid_t k, MatchEngine engine,
                    std::uint64_t seed) {
  SBG_SPAN("mm_degk");
  Timer timer;
  PhaseTimer phases;
  MatchResult r;
  r.mate.assign(g.num_vertices(), kNoVertex);

  // DEGk is "a simple computation" (paper Section II-D): just the degree
  // classification — no subgraph is ever materialized. Phase 1 matches
  // G_H by masking the solver to V_H (edges to low vertices are skipped by
  // the mask). Phase 2 can then run on ALL of G: phase 1 was maximal on
  // G_H, so no two unmatched high vertices remain adjacent, and the edges
  // phase 2 can still match are exactly those of G_L ∪ G_C.
  const DegkDecomposition d = decompose_degk(g, k, /*pieces=*/0);
  r.decompose_seconds = d.decompose_seconds;

  {
    SBG_SPAN("solve");
    ScopedPhase phase(phases, "solve");
    r.rounds += extend(engine, g, r.mate, seed, &d.is_high);
  }
  {
    SBG_SPAN("stitch");
    ScopedPhase phase(phases, "stitch");
    r.rounds += extend(engine, g, r.mate, seed + 1);
  }

  r.cardinality = matching_cardinality(r.mate);
  r.total_seconds = timer.seconds();
  r.solve_seconds = phases.total_seconds();
  return r;
}

bool verify_maximal_matching(const CsrGraph& g, const std::vector<vid_t>& mate,
                             std::string* error) {
  const check::MatchingReport rep = check::check_matching(g, mate);
  if (!rep.result && error) *error = rep.result.message();
  return rep.result.ok;
}

eid_t matching_cardinality(const std::vector<vid_t>& mate) {
  return parallel_sum<eid_t>(mate.size(), [&](std::size_t v) {
           return mate[v] != kNoVertex ? eid_t{1} : eid_t{0};
         }) /
         2;
}

}  // namespace sbg
