// Algorithm LMAX [Birn et al.]: local-max matching on random edge weights.
//
// Each round every live vertex points at its heaviest incident live edge;
// an edge whose two endpoints point at each other is a local maximum and
// joins the matching. Expected O(log n) rounds — this is the paper's GPU
// baseline (we also run it on the CPU in tests and ablations).
//
// Edge weights are a deterministic hash of (canonical endpoints, seed), so
// both endpoints agree on every weight without storing per-edge state, and
// ties are impossible (the hash of distinct edges collides with negligible
// probability; the canonical pair breaks any residual tie).
#include "matching/matching.hpp"
#include "obs/obs.hpp"
#include "parallel/cancel.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

namespace sbg {

vid_t lmax_extend(const CsrGraph& g, std::vector<vid_t>& mate,
                  std::uint64_t seed,
                  const std::vector<std::uint8_t>* active,
                  LmaxWeights weights) {
  SBG_SPAN("lmax_extend");
  const vid_t n = g.num_vertices();
  SBG_CHECK(mate.size() == n, "mate array size mismatch");
  const std::uint64_t base = detail::lmax_weight_base(seed, weights);

  const auto is_live = [&](vid_t v) {
    return mate[v] == kNoVertex && (!active || (*active)[v]);
  };

  std::vector<vid_t> candidate(n, kNoVertex);
  std::vector<vid_t> live;
  live.reserve(n);
  for (vid_t v = 0; v < n; ++v) {
    if (is_live(v) && g.degree(v) > 0) live.push_back(v);
  }

  vid_t rounds = 0;
  std::vector<vid_t> next_live;
  while (!live.empty()) {
    poll_cancellation();
    ++rounds;
    SBG_COUNTER_ADD("lmax.rounds", 1);
    SBG_SERIES_APPEND("lmax.frontier", live.size());
    // Point at the heaviest live incident edge.
    parallel_for_dynamic(live.size(), [&](std::size_t i) {
      const vid_t v = live[i];
      vid_t best = kNoVertex;
      std::uint64_t best_w = 0;
      for (const vid_t w : g.neighbors(v)) {
        if (!is_live(w)) continue;
        const std::uint64_t wt = detail::lmax_edge_weight(v, w, base);
        if (best == kNoVertex || wt > best_w ||
            (wt == best_w && w < best)) {
          best = w;
          best_w = wt;
        }
      }
      candidate[v] = best;
    });
    // Locally-maximal edges match (written by the lower endpoint).
    parallel_for(live.size(), [&](std::size_t i) {
      const vid_t v = live[i];
      const vid_t w = candidate[v];
      if (w != kNoVertex && v < w && candidate[w] == v) {
        mate[v] = w;
        mate[w] = v;
      }
    });
    next_live.clear();
    SBG_OBS_ONLY(vid_t obs_matched = 0;)
    for (const vid_t v : live) {
      if (mate[v] != kNoVertex) {
        SBG_OBS_ONLY(++obs_matched;)
        continue;
      }
      if (candidate[v] != kNoVertex) next_live.push_back(v);
    }
    SBG_OBS_ONLY({
      SBG_SERIES_APPEND("lmax.matched", obs_matched);
      SBG_COUNTER_ADD("lmax.matched_vertices", obs_matched);
    })
    live.swap(next_live);
  }
  return rounds;
}

MatchResult mm_lmax(const CsrGraph& g, std::uint64_t seed,
                    LmaxWeights weights) {
  Timer timer;
  MatchResult r;
  r.mate.assign(g.num_vertices(), kNoVertex);
  r.rounds = lmax_extend(g, r.mate, seed, nullptr, weights);
  r.cardinality = matching_cardinality(r.mate);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
