#include "obs/registry.hpp"

#include <omp.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "obs/obs.hpp"

namespace sbg::obs {

bool enabled_in_library() { return SBG_OBS_ENABLED != 0; }

namespace detail {

unsigned thread_shard() {
  return static_cast<unsigned>(omp_get_thread_num());
}

}  // namespace detail

// ---------------------------------------------------------------- Counter --

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) sum += s.value.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() {
  for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- Histogram --

namespace {

inline unsigned bucket_of(std::uint64_t v) {
  return static_cast<unsigned>(std::bit_width(v));  // 0 for v == 0
}

inline void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(std::uint64_t sample) {
  HistShard& s = shards_[detail::thread_shard() % detail::kHistogramShards];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(sample, std::memory_order_relaxed);
  atomic_min(s.min, sample);
  atomic_max(s.max, sample);
  s.buckets[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  std::uint64_t min = ~0ull;
  for (const auto& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    for (unsigned b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  out.min = out.count ? min : 0;
  return out;
}

void Histogram::reset() {
  for (auto& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(~0ull, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

double histogram_quantile(const Histogram::Snapshot& snap, double q) {
  if (snap.count == 0) return 0.0;
  q = q < 0.0 ? 0.0 : q > 1.0 ? 1.0 : q;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * double(snap.count))));
  std::uint64_t cum = 0;
  for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
    if (snap.buckets[b] == 0) continue;
    if (cum + snap.buckets[b] < rank) {
      cum += snap.buckets[b];
      continue;
    }
    // Rank lands in bucket b, which covers [lo, hi]; interpolate by the
    // rank's position among this bucket's samples.
    const double lo = b == 0 ? 0.0 : double(Histogram::bucket_bound(b - 1)) + 1;
    const double hi = double(Histogram::bucket_bound(b));
    const double frac =
        double(rank - cum) / double(snap.buckets[b]);
    double v = lo + frac * (hi - lo);
    v = std::max(v, double(snap.min));
    v = std::min(v, double(snap.max));
    return v;
  }
  return double(snap.max);
}

// ----------------------------------------------------------------- Series --

Series::Series(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.resize(capacity_, 0.0);
}

void Series::append(double v) {
  // fetch_add reserves a unique slot, so concurrent appenders never write
  // the same index; the acquire/release pairing with readers keeps the
  // window contents coherent for fully-published slots.
  const std::uint64_t i = total_.fetch_add(1, std::memory_order_acq_rel);
  ring_[static_cast<std::size_t>(i % capacity_)] = v;
}

std::uint64_t Series::window_start() const {
  const std::uint64_t t = total();
  return t > capacity_ ? t - capacity_ : 0;
}

std::vector<double> Series::window() const {
  const std::uint64_t t = total();
  const std::uint64_t begin = window_start();
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(t - begin));
  for (std::uint64_t i = begin; i < t; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i % capacity_)]);
  }
  return out;
}

void Series::reset() {
  total_.store(0, std::memory_order_release);
  std::fill(ring_.begin(), ring_.end(), 0.0);
}

// --------------------------------------------------------------- Registry --

struct Registry::Impl {
  mutable std::mutex mu;
  // deques give address stability; the maps only index into them.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::deque<Series> series;
  std::unordered_map<std::string, Counter*> counter_by_name;
  std::unordered_map<std::string, Gauge*> gauge_by_name;
  std::unordered_map<std::string, Histogram*> histogram_by_name;
  std::unordered_map<std::string, Series*> series_by_name;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

namespace {

template <class T, class Deque, class Map>
T& find_or_create(std::mutex& mu, Deque& storage, Map& index,
                  std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  const auto it = index.find(std::string(name));
  if (it != index.end()) return *it->second;
  T& slot = storage.emplace_back();
  index.emplace(std::string(name), &slot);
  return slot;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create<Counter>(impl_->mu, impl_->counters,
                                 impl_->counter_by_name, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create<Gauge>(impl_->mu, impl_->gauges, impl_->gauge_by_name,
                               name);
}

Histogram& Registry::histogram(std::string_view name) {
  return find_or_create<Histogram>(impl_->mu, impl_->histograms,
                                   impl_->histogram_by_name, name);
}

Series& Registry::series(std::string_view name) {
  return find_or_create<Series>(impl_->mu, impl_->series,
                                impl_->series_by_name, name);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& c : impl_->counters) c.reset();
  for (auto& g : impl_->gauges) g.reset();
  for (auto& h : impl_->histograms) h.reset();
  for (auto& s : impl_->series) s.reset();
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  RegistrySnapshot out;
  for (const auto& [name, c] : impl_->counter_by_name) {
    out.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : impl_->gauge_by_name) {
    out.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : impl_->histogram_by_name) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  for (const auto& [name, s] : impl_->series_by_name) {
    RegistrySnapshot::SeriesSnapshot ss;
    ss.name = name;
    ss.total = s->total();
    ss.window_start = s->window_start();
    ss.values = s->window();
    out.series.push_back(std::move(ss));
  }
  const auto by_first = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_first);
  std::sort(out.gauges.begin(), out.gauges.end(), by_first);
  std::sort(out.histograms.begin(), out.histograms.end(), by_first);
  std::sort(out.series.begin(), out.series.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return out;
}

Registry& registry() {
  // Deliberately leaked: atexit report writers (bench_common.hpp) may run
  // after static destructors, so the registry must outlive them.
  static Registry* r = new Registry;
  return *r;
}

}  // namespace sbg::obs
