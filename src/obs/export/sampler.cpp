#include "obs/export/sampler.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "core/env.hpp"
#include "obs/export/prom.hpp"
#include "obs/perf.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"

namespace sbg::obs {

namespace {

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

bool write_file_atomically(const std::string& path, const std::string& body,
                           std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot open " + tmp;
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error) *error = "cannot write " + path;
    return false;
  }
  return true;
}

}  // namespace

bool parse_export_spec(const std::string& spec, SamplerOptions* out,
                       std::string* error) {
  std::string item;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i < spec.size() && spec[i] != ',') {
      item += spec[i];
      continue;
    }
    if (!item.empty()) {
      const std::size_t colon = item.find(':');
      const std::string kind = colon == std::string::npos
                                   ? item
                                   : item.substr(0, colon);
      const std::string path =
          colon == std::string::npos ? "" : item.substr(colon + 1);
      if (path.empty()) {
        if (error) *error = "export sink \"" + item + "\" has no path";
        return false;
      }
      if (kind == "prom") {
        out->prom_path = path;
      } else if (kind == "jsonl") {
        out->jsonl_path = path;
      } else {
        if (error) {
          *error = "unknown export sink \"" + kind +
                   "\" (expected prom:<path> or jsonl:<path>)";
        }
        return false;
      }
      item.clear();
    }
  }
  if (out->prom_path.empty() && out->jsonl_path.empty()) {
    if (error) *error = "export spec selects no sink";
    return false;
  }
  return true;
}

struct Sampler::Impl {
  SamplerOptions opt;
  std::mutex mu;
  std::condition_variable cv;
  bool stopping = false;
  bool joined = false;
  std::atomic<std::uint64_t> samples{0};
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  /// Counter values at the previous sample, for JSONL deltas.
  std::map<std::string, std::uint64_t> prev_counters;
  std::thread worker;

  void sample_once() {
    // One snapshot per tick: both sinks render the same consistent view.
    perf::available();  // keep the perf.available gauge fresh
    const RegistrySnapshot snap = registry().snapshot();
    const std::uint64_t n = samples.fetch_add(1) + 1;

    if (!opt.prom_path.empty()) {
      std::string error;
      if (!write_file_atomically(opt.prom_path, prometheus_exposition(snap),
                                 &error)) {
        std::fprintf(stderr, "warning: obs sampler: %s\n", error.c_str());
      }
    }

    if (!opt.jsonl_path.empty()) {
      append_jsonl_line(snap, n);
    }
  }

  void append_jsonl_line(const RegistrySnapshot& snap, std::uint64_t n) {
    const auto uptime_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::string out;
    out.reserve(2048);
    out += "{\"sample\":";
    append_uint(out, n);
    out += ",\"uptime_ms\":";
    append_uint(out, static_cast<std::uint64_t>(uptime_ms < 0 ? 0 : uptime_ms));
    out += ",\"counters\":{";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      if (i) out += ',';
      append_json_string(out, snap.counters[i].first);
      out += ':';
      append_uint(out, snap.counters[i].second);
    }
    out += "},\"counter_deltas\":{";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
      const auto it = prev_counters.find(name);
      const std::uint64_t prev = it == prev_counters.end() ? 0 : it->second;
      const std::uint64_t delta = value >= prev ? value - prev : 0;
      if (delta == 0) continue;
      if (!first) out += ',';
      first = false;
      append_json_string(out, name);
      out += ':';
      append_uint(out, delta);
    }
    out += "},\"gauges\":{";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
      if (i) out += ',';
      append_json_string(out, snap.gauges[i].first);
      out += ':';
      append_json_number(out, snap.gauges[i].second);
    }
    out += "},\"histograms\":{";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      if (i) out += ',';
      const auto& [name, h] = snap.histograms[i];
      append_json_string(out, name);
      out += ":{\"count\":";
      append_uint(out, h.count);
      out += ",\"sum\":";
      append_uint(out, h.sum);
      out += ",\"p50\":";
      append_json_number(out, histogram_quantile(h, 0.50));
      out += ",\"p95\":";
      append_json_number(out, histogram_quantile(h, 0.95));
      out += ",\"p99\":";
      append_json_number(out, histogram_quantile(h, 0.99));
      out += '}';
    }
    out += "},\"series\":{";
    for (std::size_t i = 0; i < snap.series.size(); ++i) {
      if (i) out += ',';
      const auto& s = snap.series[i];
      append_json_string(out, s.name);
      out += ":{\"total\":";
      append_uint(out, s.total);
      out += ",\"dropped\":";
      append_uint(out, s.window_start);
      out += ",\"last\":";
      append_json_number(out, s.values.empty() ? 0.0 : s.values.back());
      out += '}';
    }
    out += "}}\n";

    std::FILE* f = std::fopen(opt.jsonl_path.c_str(), "ab");
    if (!f) {
      std::fprintf(stderr, "warning: obs sampler: cannot append %s\n",
                   opt.jsonl_path.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);

    prev_counters.clear();
    for (const auto& [name, value] : snap.counters) {
      prev_counters.emplace(name, value);
    }
  }

  void run() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait_for(lock, std::chrono::milliseconds(opt.period_ms),
                  [&] { return stopping; });
      if (stopping) return;  // stop() writes the final sample itself
      lock.unlock();
      sample_once();
      lock.lock();
    }
  }
};

Sampler::Sampler(SamplerOptions opt) : impl_(new Impl) {
  impl_->opt = std::move(opt);
  if (impl_->opt.period_ms < 10) impl_->opt.period_ms = 10;
  impl_->worker = std::thread([this] { impl_->run(); });
}

Sampler::~Sampler() { stop(); }

void Sampler::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->joined) return;
    impl_->joined = true;
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  impl_->worker.join();
  impl_->sample_once();  // final flush: short runs still export end state
}

std::uint64_t Sampler::samples_taken() const {
  return impl_->samples.load(std::memory_order_relaxed);
}

std::unique_ptr<Sampler> start_sampler_from_env() {
  const char* spec = std::getenv("SBG_OBS_EXPORT");
  if (!spec || !*spec) return nullptr;
  SamplerOptions opt;
  std::string error;
  if (!parse_export_spec(spec, &opt, &error)) {
    std::fprintf(stderr, "warning: SBG_OBS_EXPORT ignored: %s\n",
                 error.c_str());
    return nullptr;
  }
  // Soft knob: "SBG_OBS_PERIOD_MS=abc" used to silently atoi() to the
  // default — now it warns once (same style as the SBG_OBS_EXPORT warning
  // above) and keeps the default.
  opt.period_ms = int(
      env::long_or_warn("SBG_OBS_PERIOD_MS", opt.period_ms, 1, 86400000));
  return std::make_unique<Sampler>(opt);
}

}  // namespace sbg::obs
