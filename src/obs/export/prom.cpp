#include "obs/export/prom.hpp"

#include <cinttypes>
#include <cstdio>
#include <unordered_set>

#include "obs/perf.hpp"

namespace sbg::obs {

namespace {

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  // Prometheus accepts full float syntax; non-finite values are legal as
  // +Inf/-Inf/NaN but our metrics never produce them via this path.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Tracks emitted family names so colliding sanitized names are skipped
/// rather than emitted twice (which would be invalid exposition).
struct FamilyGuard {
  std::unordered_set<std::string> seen;

  bool claim(const std::string& name) { return seen.insert(name).second; }
};

void append_header(std::string& out, const std::string& family,
                   const std::string& raw, const char* type) {
  out += "# HELP " + family + " sbg metric " + raw + "\n";
  out += "# TYPE " + family + " ";
  out += type;
  out += '\n';
}

}  // namespace

std::string prom_metric_name(std::string_view name) {
  std::string out = "sbg_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_exposition(const RegistrySnapshot& snap) {
  std::string out;
  out.reserve(4096);
  FamilyGuard guard;

  for (const auto& [raw, value] : snap.counters) {
    const std::string family = prom_metric_name(raw) + "_total";
    if (!guard.claim(family)) continue;
    append_header(out, family, raw, "counter");
    out += family + " ";
    append_uint(out, value);
    out += '\n';
  }

  for (const auto& [raw, value] : snap.gauges) {
    const std::string family = prom_metric_name(raw);
    if (!guard.claim(family)) continue;
    append_header(out, family, raw, "gauge");
    out += family + " ";
    append_double(out, value);
    out += '\n';
  }

  for (const auto& [raw, h] : snap.histograms) {
    const std::string family = prom_metric_name(raw);
    if (!guard.claim(family)) continue;
    append_header(out, family, raw, "histogram");
    // Cumulative counts over the pow2 upper bounds. Empty buckets beyond
    // the last occupied one collapse into "+Inf" to keep scrapes small.
    unsigned last = 0;
    for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[b]) last = b;
    }
    std::uint64_t cum = 0;
    for (unsigned b = 0; b <= last && b < 64; ++b) {
      cum += h.buckets[b];
      out += family + "_bucket{le=\"";
      append_uint(out, Histogram::bucket_bound(b));
      out += "\"} ";
      append_uint(out, cum);
      out += '\n';
    }
    out += family + "_bucket{le=\"+Inf\"} ";
    append_uint(out, h.count);
    out += '\n';
    out += family + "_sum ";
    append_uint(out, h.sum);
    out += '\n';
    out += family + "_count ";
    append_uint(out, h.count);
    out += '\n';
  }

  for (const auto& s : snap.series) {
    const std::string base = prom_metric_name(s.name);
    const std::string last_family = base + "_last";
    const std::string total_family = base + "_rounds_total";
    const std::string dropped_family = base + "_dropped_rounds";
    if (!guard.claim(last_family) || !guard.claim(total_family) ||
        !guard.claim(dropped_family)) {
      continue;
    }
    append_header(out, last_family, s.name, "gauge");
    out += last_family + " ";
    append_double(out, s.values.empty() ? 0.0 : s.values.back());
    out += '\n';
    append_header(out, total_family, s.name, "counter");
    out += total_family + " ";
    append_uint(out, s.total);
    out += '\n';
    append_header(out, dropped_family, s.name, "gauge");
    out += dropped_family + " ";
    append_uint(out, s.window_start);
    out += '\n';
  }

  return out;
}

std::string prometheus_exposition() {
  // Refresh the availability gauge before snapshotting so the exposition
  // always carries an explicit sbg_perf_available 0/1.
  perf::available();
  return prometheus_exposition(registry().snapshot());
}

}  // namespace sbg::obs
