// Chrome trace-event / Perfetto-compatible timeline export.
//
// The span tree (obs/span.hpp) aggregates by (parent, name) for the
// profiler-style report; this module keeps the *timeline* view: when
// capture is on (set_trace_capture(true), or sbg_tool --trace-out=FILE),
// each closing SBG_SPAN records a complete "X" event with microsecond
// timestamps on its thread's track, SBG_SERIES_APPEND values become "C"
// counter tracks, and cancellation/deadline observations become instant
// "i" events. chrome_trace_json() renders everything as the Trace Event
// Format JSON that chrome://tracing and https://ui.perfetto.dev load
// directly: one track per thread (sched batch workers name theirs
// "sched-worker-N"), events sorted by timestamp within each track.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace sbg::obs {

/// One captured timeline event, in capture order.
struct TraceEvent {
  std::string name;
  char phase = 'X';         ///< 'X' complete, 'i' instant, 'C' counter
  std::uint32_t tid = 0;    ///< dense per-thread track id (first event = 0)
  std::int64_t ts_us = 0;   ///< microseconds since capture was enabled
  std::int64_t dur_us = 0;  ///< 'X' only
  double value = 0.0;       ///< 'C' only
};

/// Copy of the captured events, sorted by (tid, ts_us, -dur_us) so each
/// track is chronological and a parent span sorts before the children it
/// encloses that share its start timestamp.
std::vector<TraceEvent> trace_events();

/// Names assigned via set_trace_thread_name(), keyed by track id.
std::vector<std::pair<std::uint32_t, std::string>> trace_thread_names();

/// The capture rendered as Trace Event Format JSON:
///   {"traceEvents":[...],"displayTimeUnit":"ms"}
/// with one thread_name metadata event per named track.
std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`. Returns false (and fills *error if
/// non-null) when the file cannot be written.
bool write_chrome_trace(const std::string& path, std::string* error = nullptr);

}  // namespace sbg::obs
