// Background telemetry sampler: periodic consistent registry snapshots
// exported while the process runs, instead of only at exit.
//
// A Sampler owns one thread that wakes every `period_ms`, takes a single
// registry snapshot, and renders it to the configured sinks:
//
//   prom:<path>   rewrite <path> with the Prometheus text exposition of the
//                 snapshot, atomically (tmp + rename) so a scraper or
//                 node_exporter textfile collector never reads a torn file
//   jsonl:<path>  append one JSON line per sample: cumulative counters plus
//                 per-sample counter deltas, gauges, histogram summaries
//                 (count/sum/p50/p95/p99), and series totals/dropped counts
//
// Environment wiring (sbg_tool and every bench harness):
//   SBG_OBS_EXPORT=prom:/run/sbg.prom,jsonl:/tmp/sbg.jsonl
//   SBG_OBS_PERIOD_MS=250        (default 1000, clamped to >= 10)
//
// stop() (and the destructor) takes one final sample before joining, so
// short runs still export a complete end-state even when they finish
// inside the first period.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace sbg::obs {

struct SamplerOptions {
  std::string prom_path;   ///< empty = no exposition sink
  std::string jsonl_path;  ///< empty = no JSONL sink
  int period_ms = 1000;
};

/// Parse an SBG_OBS_EXPORT spec ("prom:/a.prom,jsonl:/b.jsonl") into
/// `out` (sink fields only). Returns false and fills *error on an unknown
/// sink kind or an empty path.
bool parse_export_spec(const std::string& spec, SamplerOptions* out,
                       std::string* error);

class Sampler {
 public:
  /// Starts the sampling thread immediately.
  explicit Sampler(SamplerOptions opt);

  /// Stops and joins (final flush included).
  ~Sampler();

  /// Take a final sample, then stop the thread. Idempotent.
  void stop();

  /// Samples written so far (periodic + final).
  std::uint64_t samples_taken() const;

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Start a sampler according to SBG_OBS_EXPORT / SBG_OBS_PERIOD_MS.
/// Returns nullptr when SBG_OBS_EXPORT is unset; warns to stderr and
/// returns nullptr when it is set but malformed. Callers keep the returned
/// sampler alive for the run (its destructor performs the final flush).
std::unique_ptr<Sampler> start_sampler_from_env();

}  // namespace sbg::obs
