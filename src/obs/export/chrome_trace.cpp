#include "obs/export/chrome_trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "obs/report.hpp"

namespace sbg::obs {

namespace detail {
std::atomic<bool> g_trace_capture{false};
}  // namespace detail

namespace {

struct Capture {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
  trace_clock::time_point epoch = trace_clock::now();
  std::uint32_t next_tid = 0;
};

Capture& capture() {
  // Leaked like the registry/span tree: atexit exporters may run after
  // static destructors.
  static Capture* c = new Capture;
  return *c;
}

/// Dense track id for the calling thread, assigned on first use. Stable for
/// the thread's lifetime even across capture restarts, so restarting a
/// capture never splices two threads onto one track.
std::uint32_t this_thread_tid() {
  thread_local std::uint32_t tid = [] {
    Capture& c = capture();
    std::lock_guard<std::mutex> lock(c.mu);
    return c.next_tid++;
  }();
  return tid;
}

std::int64_t us_since(trace_clock::time_point epoch,
                      trace_clock::time_point t) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(t - epoch).count();
  return us < 0 ? 0 : us;
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

}  // namespace

void set_trace_capture(bool enabled) {
  Capture& c = capture();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    if (enabled) {
      c.events.clear();
      c.thread_names.clear();
      c.epoch = trace_clock::now();
    }
  }
  detail::g_trace_capture.store(enabled, std::memory_order_relaxed);
}

void trace_record_complete(std::string_view name, trace_clock::time_point begin,
                           trace_clock::time_point end) {
  const std::uint32_t tid = this_thread_tid();
  Capture& c = capture();
  std::lock_guard<std::mutex> lock(c.mu);
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 'X';
  e.tid = tid;
  // Spans that opened before capture was enabled clamp to the epoch; their
  // duration keeps the true end timestamp.
  e.ts_us = us_since(c.epoch, begin);
  e.dur_us = us_since(c.epoch, end) - e.ts_us;
  c.events.push_back(std::move(e));
}

void trace_instant(std::string_view name) {
  if (!trace_capture_enabled()) return;
  const std::uint32_t tid = this_thread_tid();
  Capture& c = capture();
  std::lock_guard<std::mutex> lock(c.mu);
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 'i';
  e.tid = tid;
  e.ts_us = us_since(c.epoch, trace_clock::now());
  c.events.push_back(std::move(e));
}

void trace_counter(std::string_view name, double value) {
  if (!trace_capture_enabled()) return;
  const std::uint32_t tid = this_thread_tid();
  Capture& c = capture();
  std::lock_guard<std::mutex> lock(c.mu);
  TraceEvent e;
  e.name = std::string(name);
  e.phase = 'C';
  e.tid = tid;
  e.ts_us = us_since(c.epoch, trace_clock::now());
  e.value = value;
  c.events.push_back(std::move(e));
}

void set_trace_thread_name(std::string_view name) {
  if (!trace_capture_enabled()) return;
  const std::uint32_t tid = this_thread_tid();
  Capture& c = capture();
  std::lock_guard<std::mutex> lock(c.mu);
  for (auto& [t, n] : c.thread_names) {
    if (t == tid) {
      n = std::string(name);
      return;
    }
  }
  c.thread_names.emplace_back(tid, std::string(name));
}

std::vector<TraceEvent> trace_events() {
  Capture& c = capture();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    out = c.events;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;  // enclosing span first
                   });
  return out;
}

std::vector<std::pair<std::uint32_t, std::string>> trace_thread_names() {
  Capture& c = capture();
  std::lock_guard<std::mutex> lock(c.mu);
  auto out = c.thread_names;
  std::sort(out.begin(), out.end());
  return out;
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = trace_events();
  const auto names = trace_thread_names();

  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : names) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    append_int(out, tid);
    out += ",\"args\":{\"name\":";
    append_json_string(out, name);
    out += "}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, e.name);
    out += ",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":";
    append_int(out, e.tid);
    out += ",\"ts\":";
    append_int(out, e.ts_us);
    switch (e.phase) {
      case 'X':
        out += ",\"dur\":";
        append_int(out, e.dur_us);
        break;
      case 'i':
        out += ",\"s\":\"t\"";  // thread-scoped instant
        break;
      case 'C':
        out += ",\"args\":{\"value\":";
        append_json_number(out, e.value);
        out += '}';
        break;
      default: break;
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_chrome_trace(const std::string& path, std::string* error) {
  const std::string body = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok && error) *error = "short write to " + path;
  return ok;
}

}  // namespace sbg::obs
