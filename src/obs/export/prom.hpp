// Prometheus text-exposition rendering of a registry snapshot.
//
// Every metric name is sanitized into the Prometheus charset with the
// stable mapping prom_metric_name() ("gm.rounds" -> "sbg_gm_rounds") and
// rendered with # HELP / # TYPE lines:
//
//   counters   -> "<name>_total" counter
//   gauges     -> "<name>" gauge
//   histograms -> "<name>" histogram: cumulative "_bucket{le=...}" samples
//                 over the pow2 bucket bounds (0, 1, 3, 7, ... , "+Inf"),
//                 plus "_sum" and "_count"
//   series     -> "<name>_last" gauge (latest sample), "<name>_rounds_total"
//                 counter (true appended count), and
//                 "<name>_dropped_rounds" gauge (rounds the ring buffer
//                 overwrote — non-zero marks a truncated series)
//
// The exposition always carries "sbg_perf_available" (0/1) so scrapers can
// tell missing hardware counters apart from a broken perf setup.
#pragma once

#include <string>
#include <string_view>

#include "obs/registry.hpp"

namespace sbg::obs {

/// "gm.rounds" -> "sbg_gm_rounds": prefix "sbg_", every character outside
/// [a-zA-Z0-9_:] becomes '_'. Deterministic, so scrape series stay stable
/// across runs.
std::string prom_metric_name(std::string_view name);

/// Render `snap` as Prometheus text exposition format (version 0.0.4).
/// When two raw names sanitize to the same metric name, the first (in
/// snapshot order, i.e. lexicographic) wins and later ones are skipped —
/// duplicate metric families would make the exposition unparseable.
std::string prometheus_exposition(const RegistrySnapshot& snap);

/// Exposition of the live registry (takes a consistent snapshot first and
/// refreshes the perf.available gauge).
std::string prometheus_exposition();

}  // namespace sbg::obs
