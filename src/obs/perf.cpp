#include "obs/perf.hpp"

#include <atomic>
#include <string>

#include "obs/obs.hpp"
#include "obs/registry.hpp"

#if SBG_OBS_ENABLED && defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SBG_PERF_IMPL 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#else
#define SBG_PERF_IMPL 0
#endif

namespace sbg::obs::perf {

namespace {

// 0 = unprobed, 1 = available, 2 = unavailable.
std::atomic<int> g_state{0};
const char* g_reason = "";

void publish_gauge(bool ok) {
  registry().gauge("perf.available").set(ok ? 1.0 : 0.0);
}

#if SBG_PERF_IMPL

constexpr int kEvents = 4;

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

// Order matches the Values fields.
constexpr EventSpec kSpecs[kEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

const char* errno_name(int err) {
  switch (err) {
    case EACCES: return "EACCES";
    case EPERM: return "EPERM";
    case ENOSYS: return "ENOSYS";
    case ENOENT: return "ENOENT";
    case ENODEV: return "ENODEV";
    case EOPNOTSUPP: return "EOPNOTSUPP";
    default: return "errno";
  }
}

int open_event(const EventSpec& spec) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // works under perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.inherit = 0;
  return static_cast<int>(syscall(__NR_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL));
}

/// Per-thread counter fds, opened lazily, closed at thread exit. Events
/// that fail individually (e.g. LLC misses on VMs) stay at -1; only a
/// failure of the cycles counter marks perf unavailable process-wide.
struct ThreadCounters {
  int fd[kEvents] = {-1, -1, -1, -1};
  bool opened = false;

  ~ThreadCounters() {
    for (int& f : fd) {
      if (f >= 0) close(f);
      f = -1;
    }
  }

  bool open_all() {
    if (opened) return fd[0] >= 0;
    opened = true;
    fd[0] = open_event(kSpecs[0]);
    if (fd[0] < 0) {
      const int err = errno;
      int expected = 0;
      if (g_state.compare_exchange_strong(expected, 2)) {
        g_reason = errno_name(err);
        publish_gauge(false);
      }
      return false;
    }
    for (int i = 1; i < kEvents; ++i) fd[i] = open_event(kSpecs[i]);
    int expected = 0;
    if (g_state.compare_exchange_strong(expected, 1)) publish_gauge(true);
    return true;
  }

  bool read_all(Values* out) {
    if (!open_all() || g_state.load(std::memory_order_relaxed) != 1) {
      return false;
    }
    std::uint64_t v[kEvents] = {};
    for (int i = 0; i < kEvents; ++i) {
      if (fd[i] < 0) continue;
      if (::read(fd[i], &v[i], sizeof v[i]) != sizeof v[i]) v[i] = 0;
    }
    out->cycles = v[0];
    out->instructions = v[1];
    out->llc_misses = v[2];
    out->stalled_cycles = v[3];
    return true;
  }
};

ThreadCounters& thread_counters() {
  thread_local ThreadCounters tc;
  return tc;
}

#endif  // SBG_PERF_IMPL

}  // namespace

bool available() {
#if SBG_PERF_IMPL
  if (g_state.load(std::memory_order_relaxed) == 0) {
    thread_counters().open_all();  // probe (sets g_state + gauge)
  }
  const bool ok = g_state.load(std::memory_order_relaxed) == 1;
  publish_gauge(ok);
  return ok;
#else
  g_state.store(2, std::memory_order_relaxed);
  g_reason = SBG_OBS_ENABLED ? "unsupported-platform" : "compiled-out";
  publish_gauge(false);
  return false;
#endif
}

const char* unavailable_reason() {
  available();
  return g_state.load(std::memory_order_relaxed) == 1 ? "" : g_reason;
}

bool read_counters(Values* out) {
  *out = Values{};
#if SBG_PERF_IMPL
  return thread_counters().read_all(out);
#else
  return false;
#endif
}

PerfScope::PerfScope(const char* label) : label_(label) {
  active_ = read_counters(&begin_);
}

PerfScope::~PerfScope() {
#if SBG_PERF_IMPL
  if (!active_) return;
  Values end;
  if (!read_counters(&end)) return;
  const std::string prefix = std::string("perf.") + label_;
  auto& reg = registry();
  const auto add = [&](const char* metric, std::uint64_t b, std::uint64_t e) {
    if (e > b) reg.counter(prefix + metric).add(e - b);
  };
  add(".cycles", begin_.cycles, end.cycles);
  add(".instructions", begin_.instructions, end.instructions);
  add(".llc_misses", begin_.llc_misses, end.llc_misses);
  add(".stalled_cycles", begin_.stalled_cycles, end.stalled_cycles);
#endif
}

}  // namespace sbg::obs::perf
