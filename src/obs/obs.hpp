// sbg::obs — observability macros: counters, gauges, histograms, per-round
// telemetry series, and RAII trace spans.
//
// All instrumentation goes through these macros so a translation unit (or
// the whole build, via -DSBG_OBS_ENABLED=0 / cmake -DSBG_OBS=OFF) can
// compile it out to literally nothing — no registry lookup, no argument
// evaluation, no code-gen in hot loops. With obs enabled, each call site
// resolves its metric handle once (function-local static) and then pays one
// relaxed atomic update on a thread-sharded slot.
//
//   SBG_COUNTER_ADD("gm.proposals", live.size());   // monotonic counter
//   SBG_GAUGE_SET("result.rounds", r.rounds);       // last-write-wins value
//   SBG_HIST_RECORD("rand.part_size", sz);          // pow2-bucket histogram
//   SBG_SERIES_APPEND("gm.matched", matched);       // per-round ring buffer
//   SBG_SPAN("decompose.bridge");                   // RAII span for scope
//   SBG_SPAN_PERF("solve");                         // span + hw perf counters
//   SBG_TRACE_INSTANT("cancel.deadline");           // timeline instant mark
//   SBG_TRACE_THREAD_NAME("sched-worker-0");        // name this trace track
//   SBG_OBS_ONLY(vid_t obs_matched = 0;)            // obs-only statements
//
// Statements that exist purely to feed a metric (per-round tallies in the
// serial inter-phase sections) belong inside SBG_OBS_ONLY(...) so they
// vanish with the rest.
#pragma once

#ifndef SBG_OBS_ENABLED
#define SBG_OBS_ENABLED 1
#endif

#include "obs/perf.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

#define SBG_OBS_CONCAT_(a, b) a##b
#define SBG_OBS_CONCAT(a, b) SBG_OBS_CONCAT_(a, b)

#if SBG_OBS_ENABLED

#define SBG_OBS_ONLY(...) __VA_ARGS__

#define SBG_COUNTER_ADD(name, delta)                                       \
  do {                                                                     \
    static ::sbg::obs::Counter& SBG_OBS_CONCAT(sbg_obs_h_, __LINE__) =     \
        ::sbg::obs::registry().counter(name);                              \
    SBG_OBS_CONCAT(sbg_obs_h_, __LINE__)                                   \
        .add(static_cast<std::uint64_t>(delta));                           \
  } while (0)

#define SBG_GAUGE_SET(name, value)                                         \
  do {                                                                     \
    static ::sbg::obs::Gauge& SBG_OBS_CONCAT(sbg_obs_h_, __LINE__) =       \
        ::sbg::obs::registry().gauge(name);                                \
    SBG_OBS_CONCAT(sbg_obs_h_, __LINE__)                                   \
        .set(static_cast<double>(value));                                  \
  } while (0)

#define SBG_HIST_RECORD(name, value)                                       \
  do {                                                                     \
    static ::sbg::obs::Histogram& SBG_OBS_CONCAT(sbg_obs_h_, __LINE__) =   \
        ::sbg::obs::registry().histogram(name);                            \
    SBG_OBS_CONCAT(sbg_obs_h_, __LINE__)                                   \
        .record(static_cast<std::uint64_t>(value));                        \
  } while (0)

#define SBG_SERIES_APPEND(name, value)                                     \
  do {                                                                     \
    static ::sbg::obs::Series& SBG_OBS_CONCAT(sbg_obs_h_, __LINE__) =      \
        ::sbg::obs::registry().series(name);                               \
    const double SBG_OBS_CONCAT(sbg_obs_v_, __LINE__) =                    \
        static_cast<double>(value);                                        \
    SBG_OBS_CONCAT(sbg_obs_h_, __LINE__)                                   \
        .append(SBG_OBS_CONCAT(sbg_obs_v_, __LINE__));                     \
    if (::sbg::obs::trace_capture_enabled()) {                             \
      ::sbg::obs::trace_counter(name, SBG_OBS_CONCAT(sbg_obs_v_, __LINE__));\
    }                                                                      \
  } while (0)

#define SBG_SPAN(name) \
  ::sbg::obs::Span SBG_OBS_CONCAT(sbg_obs_span_, __LINE__)(name)

/// SBG_SPAN plus a hardware-perf-counter scope: cycle/instruction/LLC/stall
/// deltas over this scope accumulate into the "perf.<name>." counters
/// (no-op when perf_event_open is unavailable; see obs/perf.hpp).
#define SBG_SPAN_PERF(name)                                                \
  SBG_SPAN(name);                                                          \
  ::sbg::obs::perf::PerfScope SBG_OBS_CONCAT(sbg_obs_perf_, __LINE__)(name)

/// Mark an instant (cancellation, deadline, failure) on this thread's
/// timeline track. Cheap no-op unless trace capture is on.
#define SBG_TRACE_INSTANT(name) ::sbg::obs::trace_instant(name)

/// Name this thread's track in exported timelines.
#define SBG_TRACE_THREAD_NAME(name) ::sbg::obs::set_trace_thread_name(name)

#else  // SBG_OBS_ENABLED == 0: every macro is a no-op that never evaluates
       // its arguments, so instrumented hot loops generate identical code
       // to uninstrumented ones.

#define SBG_OBS_ONLY(...)
#define SBG_COUNTER_ADD(name, delta) do {} while (0)
#define SBG_GAUGE_SET(name, value) do {} while (0)
#define SBG_HIST_RECORD(name, value) do {} while (0)
#define SBG_SERIES_APPEND(name, value) do {} while (0)
#define SBG_SPAN(name) do {} while (0)
#define SBG_SPAN_PERF(name) do {} while (0)
#define SBG_TRACE_INSTANT(name) do {} while (0)
#define SBG_TRACE_THREAD_NAME(name) do {} while (0)

#endif  // SBG_OBS_ENABLED
