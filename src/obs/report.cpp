#include "obs/report.hpp"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace sbg::obs {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  append_json_string(out, s);
}

void append_number(std::string& out, double v) {
  append_json_number(out, v);
}

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_span(std::string& out, const SpanNode& n) {
  out += "{\"name\":";
  append_escaped(out, n.name);
  out += ",\"seconds\":";
  append_number(out, n.seconds);
  out += ",\"count\":";
  append_uint(out, n.count);
  out += ",\"children\":[";
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    if (i) out += ',';
    append_span(out, *n.children[i]);
  }
  out += "]}";
}

}  // namespace

std::string report_json(const MetaList& meta) {
  const RegistrySnapshot snap = registry().snapshot();
  const auto spans = span_tree().snapshot();

  std::string out;
  out.reserve(4096);
  out += "{\"sbg_report_version\":1,\"meta\":{";
  for (std::size_t i = 0; i < meta.size(); ++i) {
    if (i) out += ',';
    append_escaped(out, meta[i].first);
    out += ':';
    append_escaped(out, meta[i].second);
  }
  out += "},\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) out += ',';
    append_escaped(out, snap.counters[i].first);
    out += ':';
    append_uint(out, snap.counters[i].second);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) out += ',';
    append_escaped(out, snap.gauges[i].first);
    out += ':';
    append_number(out, snap.gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i) out += ',';
    const auto& [name, h] = snap.histograms[i];
    append_escaped(out, name);
    out += ":{\"count\":";
    append_uint(out, h.count);
    out += ",\"sum\":";
    append_uint(out, h.sum);
    out += ",\"min\":";
    append_uint(out, h.min);
    out += ",\"max\":";
    append_uint(out, h.max);
    // Approximate quantiles from the pow2 buckets, so consumers (exposition
    // scrapers, bench_compare, batch reports) stop re-deriving them.
    out += ",\"p50\":";
    append_number(out, histogram_quantile(h, 0.50));
    out += ",\"p95\":";
    append_number(out, histogram_quantile(h, 0.95));
    out += ",\"p99\":";
    append_number(out, histogram_quantile(h, 0.99));
    out += ",\"buckets\":{";
    bool first = true;
    for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
      if (!h.buckets[b]) continue;
      if (!first) out += ',';
      first = false;
      // Key = inclusive upper bound of the power-of-two bucket.
      out += '"';
      append_uint(out, Histogram::bucket_bound(b));
      out += "\":";
      append_uint(out, h.buckets[b]);
    }
    out += "}}";
  }
  out += "},\"series\":{";
  for (std::size_t i = 0; i < snap.series.size(); ++i) {
    if (i) out += ',';
    const auto& s = snap.series[i];
    append_escaped(out, s.name);
    out += ":{\"total\":";
    append_uint(out, s.total);
    out += ",\"window_start\":";
    append_uint(out, s.window_start);
    // Rounds overwritten by the ring buffer — non-zero marks a truncated
    // series, so consumers never mistake the window for the full history.
    out += ",\"dropped\":";
    append_uint(out, s.window_start);
    out += ",\"values\":[";
    for (std::size_t j = 0; j < s.values.size(); ++j) {
      if (j) out += ',';
      append_number(out, s.values[j]);
    }
    out += "]}";
  }
  out += "},\"spans\":[";
  for (std::size_t i = 0; i < spans->children.size(); ++i) {
    if (i) out += ',';
    append_span(out, *spans->children[i]);
  }
  out += "]}";
  return out;
}

bool write_json_report(const std::string& path, const MetaList& meta,
                       std::string* error) {
  const std::string body = report_json(meta);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok && error) *error = "short write to " + path;
  return ok;
}

void reset_all() {
  registry().reset();
  span_tree().reset();
}

}  // namespace sbg::obs
