// RAII trace spans building a process-global nested span tree.
//
// SBG_SPAN("mm_rand") opens a span for the enclosing scope; spans opened
// while it is alive become its children. Re-entering a (parent, name) pair
// merges into the existing node — seconds accumulate and `count` increments —
// so a bench harness looping 12 graphs produces a bounded, profiler-style
// call tree instead of 12 copies of it. The current parent is tracked
// per-thread; spans opened from OpenMP worker threads attach under the root.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sbg::obs {

// ---------------------------------------------------------- trace capture --
// Timeline capture for the Chrome trace exporter (src/obs/export/
// chrome_trace.cpp). Off by default: the only cost a Span pays then is one
// relaxed atomic load in its destructor. When enabled, every closing span
// additionally records a complete ("X") trace event with wall-clock
// timestamps on the calling thread's track, and SBG_SERIES_APPEND values
// become counter tracks.

using trace_clock = std::chrono::steady_clock;

namespace detail {
extern std::atomic<bool> g_trace_capture;
}  // namespace detail

inline bool trace_capture_enabled() {
  return detail::g_trace_capture.load(std::memory_order_relaxed);
}

/// Enable/disable timeline capture. Enabling clears previously captured
/// events and restarts the timestamp epoch.
void set_trace_capture(bool enabled);

/// Record a complete event covering [begin, end] on this thread's track.
void trace_record_complete(std::string_view name, trace_clock::time_point begin,
                           trace_clock::time_point end);

/// Record an instant event (cancellation, deadline, injected failure).
void trace_instant(std::string_view name);

/// Record a counter-track sample (per-round series values).
void trace_counter(std::string_view name, double value);

/// Name this thread's track in the exported timeline (e.g. "sched-worker-0").
void set_trace_thread_name(std::string_view name);

struct SpanNode {
  std::string name;
  double seconds = 0.0;       ///< accumulated wall time of completed visits
  std::uint64_t count = 0;    ///< completed visits
  std::vector<std::unique_ptr<SpanNode>> children;
};

class SpanTree {
 public:
  /// Child of the current thread-parent named `name` (created or merged);
  /// becomes the current parent until the matching end_span.
  SpanNode* begin_span(std::string_view name);

  /// Close `node`, accumulating `seconds`; restores the parent.
  void end_span(SpanNode* node, double seconds);

  /// Deep copy of the tree (root is an unnamed container node).
  std::unique_ptr<SpanNode> snapshot() const;

  /// Drop all nodes. Must not run while spans are open.
  void reset();

  SpanTree();
  ~SpanTree();
  SpanTree(const SpanTree&) = delete;
  SpanTree& operator=(const SpanTree&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-global span tree the SBG_SPAN macro feeds.
SpanTree& span_tree();

/// RAII handle: opens on construction, closes (recording wall time) on
/// destruction. Use via SBG_SPAN so it compiles out with the macros.
class Span {
 public:
  explicit Span(std::string_view name)
      : node_(span_tree().begin_span(name)), start_(clock::now()) {}

  ~Span() {
    const clock::time_point end = clock::now();
    span_tree().end_span(node_,
                         std::chrono::duration<double>(end - start_).count());
    if (trace_capture_enabled()) {
      trace_record_complete(node_->name, start_, end);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  using clock = std::chrono::steady_clock;
  SpanNode* node_;
  clock::time_point start_;
};

/// Human-readable indented dump (the sbg_tool --trace output).
void print_span_tree(std::FILE* out);

}  // namespace sbg::obs
