// RAII trace spans building a process-global nested span tree.
//
// SBG_SPAN("mm_rand") opens a span for the enclosing scope; spans opened
// while it is alive become its children. Re-entering a (parent, name) pair
// merges into the existing node — seconds accumulate and `count` increments —
// so a bench harness looping 12 graphs produces a bounded, profiler-style
// call tree instead of 12 copies of it. The current parent is tracked
// per-thread; spans opened from OpenMP worker threads attach under the root.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sbg::obs {

struct SpanNode {
  std::string name;
  double seconds = 0.0;       ///< accumulated wall time of completed visits
  std::uint64_t count = 0;    ///< completed visits
  std::vector<std::unique_ptr<SpanNode>> children;
};

class SpanTree {
 public:
  /// Child of the current thread-parent named `name` (created or merged);
  /// becomes the current parent until the matching end_span.
  SpanNode* begin_span(std::string_view name);

  /// Close `node`, accumulating `seconds`; restores the parent.
  void end_span(SpanNode* node, double seconds);

  /// Deep copy of the tree (root is an unnamed container node).
  std::unique_ptr<SpanNode> snapshot() const;

  /// Drop all nodes. Must not run while spans are open.
  void reset();

  SpanTree();
  ~SpanTree();
  SpanTree(const SpanTree&) = delete;
  SpanTree& operator=(const SpanTree&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-global span tree the SBG_SPAN macro feeds.
SpanTree& span_tree();

/// RAII handle: opens on construction, closes (recording wall time) on
/// destruction. Use via SBG_SPAN so it compiles out with the macros.
class Span {
 public:
  explicit Span(std::string_view name)
      : node_(span_tree().begin_span(name)), start_(clock::now()) {}

  ~Span() {
    span_tree().end_span(
        node_, std::chrono::duration<double>(clock::now() - start_).count());
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  using clock = std::chrono::steady_clock;
  SpanNode* node_;
  clock::time_point start_;
};

/// Human-readable indented dump (the sbg_tool --trace output).
void print_span_tree(std::FILE* out);

}  // namespace sbg::obs
