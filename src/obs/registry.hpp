// Low-overhead metrics registry: counters, gauges, and histograms.
//
// Counters and histograms are sharded across cache-line-padded slots indexed
// by the OpenMP thread id, so concurrent updates from a parallel region never
// contend on one line; values are aggregated only when read (report time).
// Handles returned by the registry are address-stable for the life of the
// process — reset() zeroes values but never invalidates a handle — so the
// SBG_* macros in obs.hpp can cache the lookup in a function-local static
// and pay the name hash exactly once per call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sbg::obs {

/// True when the sbg library itself was compiled with SBG_OBS_ENABLED=1
/// (i.e. the solvers carry instrumentation). TUs can disable their own
/// macros independently; this reports the library's state.
bool enabled_in_library();

namespace detail {

/// One padded slot; alignment keeps neighboring shards off the same line.
struct alignas(64) Shard {
  std::atomic<std::uint64_t> value{0};
};

/// Shard index for the calling thread (OpenMP thread id modulo kShards;
/// collisions are harmless because updates are relaxed atomics).
unsigned thread_shard();

inline constexpr unsigned kCounterShards = 64;
inline constexpr unsigned kHistogramShards = 16;

}  // namespace detail

/// Monotonic counter, per-thread sharded.
class Counter {
 public:
  void add(std::uint64_t delta) {
    shards_[detail::thread_shard() % detail::kCounterShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over shards (racy against writers by design; exact when quiescent).
  std::uint64_t value() const;

  void reset();

 private:
  detail::Shard shards_[detail::kCounterShards];
};

/// Last-write-wins numeric gauge.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two-bucketed histogram of unsigned samples, per-thread sharded.
/// Bucket b holds samples with bit_width(value) == b (bucket 0 = zeros), so
/// bucket upper bounds are 0, 1, 3, 7, ..., 2^63 - 1.
class Histogram {
 public:
  static constexpr unsigned kBuckets = 65;  ///< bit widths 0..64

  void record(std::uint64_t sample);

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< 0 when count == 0
    std::uint64_t max = 0;
    std::uint64_t buckets[kBuckets] = {};
  };
  Snapshot snapshot() const;

  /// Inclusive upper bound of bucket `b`: 0, 1, 3, 7, ..., 2^63-1, ~0.
  static std::uint64_t bucket_bound(unsigned b) {
    return b == 0 ? 0 : b >= 64 ? ~0ull : (1ull << b) - 1;
  }

  void reset();

 private:
  struct alignas(64) HistShard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~0ull};
    std::atomic<std::uint64_t> max{0};
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
  };
  HistShard shards_[detail::kHistogramShards];
};

/// Approximate quantile (`q` in [0, 1]) of a histogram snapshot, derived
/// from the pow2 buckets: walk the cumulative distribution to the bucket
/// holding rank ceil(q * count), linearly interpolate inside it, and clamp
/// to the exact [min, max] the shards tracked. Within a factor of 2 of the
/// true quantile by construction of the buckets; exact when all samples
/// share one value. Returns 0 for an empty histogram.
double histogram_quantile(const Histogram::Snapshot& snap, double q);

/// Fixed-capacity ring buffer of per-round samples. Appends past the
/// capacity overwrite the oldest entries but `total()` keeps counting, so a
/// 14,000-round GM run stays bounded in memory while the report still shows
/// the true round count and the tail of the series.
class Series {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit Series(std::size_t capacity = kDefaultCapacity);

  /// Record the next sample. Safe to call concurrently, but samples are
  /// expected once per solver round from the serial inter-phase section.
  void append(double v);

  /// Samples ever appended (>= window size).
  std::uint64_t total() const {
    return total_.load(std::memory_order_acquire);
  }

  /// Index of the first retained sample (total - window size).
  std::uint64_t window_start() const;

  /// Retained samples, oldest first.
  std::vector<double> window() const;

  void reset();

 private:
  std::size_t capacity_;
  std::vector<double> ring_;
  std::atomic<std::uint64_t> total_{0};
};

/// Named snapshot of every metric, for the report writer and tests.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  struct SeriesSnapshot {
    std::string name;
    std::uint64_t total = 0;
    std::uint64_t window_start = 0;
    std::vector<double> values;
  };
  std::vector<SeriesSnapshot> series;
};

/// Process-global metric registry. Lookup is mutex-protected (macros cache
/// the handle); updates through handles are lock-free.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  Series& series(std::string_view name);

  /// Zero every metric; existing handles stay valid.
  void reset();

  /// Aggregated copy of everything, names sorted.
  RegistrySnapshot snapshot() const;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-global registry the SBG_* macros talk to.
Registry& registry();

}  // namespace sbg::obs
