// Machine-readable run reports: everything the registry and span tree hold,
// serialized as one JSON document so runs become diffable artifacts.
//
// Schema (version 1):
//   {
//     "sbg_report_version": 1,
//     "meta":       { "<key>": "<string>", ... },
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <number>, ... },
//     "histograms": { "<name>": { "count", "sum", "min", "max",
//                                 "p50", "p95", "p99",
//                                 "buckets": { "<upper bound>": <uint> } } },
//     "series":     { "<name>": { "total", "window_start", "dropped",
//                                 "values": [<number>, ...] } },
//     "spans":      [ { "name", "seconds", "count", "children": [...] } ]
//   }
// Series are ring-buffered: `values` holds the last N samples and
// `window_start` their index origin; `total` is the true sample count and
// `dropped` (== window_start) how many old rounds the ring overwrote.
// Histogram p50/p95/p99 are approximate, derived from the pow2 buckets
// (registry.hpp histogram_quantile).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace sbg::obs {

using MetaList = std::vector<std::pair<std::string, std::string>>;

/// Append `s` to `out` as a quoted, escaped JSON string literal. Shared by
/// the run report and any layer that embeds one (e.g. the batch report).
void append_json_string(std::string& out, const std::string& s);

/// Append `v` as a JSON number (non-finite values become null).
void append_json_number(std::string& out, double v);

/// The full report as a JSON string (snapshot of registry + span tree).
std::string report_json(const MetaList& meta = {});

/// Write report_json(meta) to `path`. Returns false (and fills *error if
/// non-null) when the file cannot be written.
bool write_json_report(const std::string& path, const MetaList& meta = {},
                       std::string* error = nullptr);

/// Zero all metrics and drop the span tree — fresh slate for the next run.
void reset_all();

}  // namespace sbg::obs
