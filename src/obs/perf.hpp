// Hardware performance counters attached to trace spans.
//
// SBG_SPAN_PERF("solve") opens the usual RAII span *plus* a PerfScope that
// snapshots this thread's perf_event_open counter group (cycles,
// instructions, LLC misses, stalled cycles) on entry and exit, and adds the
// deltas to obs counters:
//
//   perf.<label>.cycles / .instructions / .llc_misses / .stalled_cycles
//
// Degradation is graceful and silent-by-default: the first failed
// perf_event_open (EACCES under perf_event_paranoid, ENOSYS in containers
// and non-Linux builds) marks the subsystem unavailable process-wide,
// every later PerfScope is a no-op, and the "perf.available" gauge (the
// sbg_perf_available exposition metric) reports 0 with the reason kept for
// diagnostics. Under SBG_OBS=OFF the implementation compiles out entirely;
// only the no-op stubs remain.
#pragma once

#include <cstdint>

namespace sbg::obs::perf {

/// Counter values/deltas; a field is meaningful only when its event opened.
struct Values {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t stalled_cycles = 0;
};

/// True when perf_event_open works for this process (probed on first use).
/// Also refreshes the "perf.available" gauge so exposition always carries
/// an explicit 0/1.
bool available();

/// Short reason when unavailable ("EACCES", "ENOSYS", "compiled-out", ...);
/// empty string while available.
const char* unavailable_reason();

/// Read the calling thread's current counter totals. Returns false (and
/// leaves *out zeroed) when unavailable.
bool read_counters(Values* out);

/// RAII: counter deltas over the scope's lifetime land in the
/// "perf.<label>." obs counters. `label` must outlive the scope (string
/// literals; the SBG_SPAN_PERF macro guarantees this).
class PerfScope {
 public:
  explicit PerfScope(const char* label);
  ~PerfScope();
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  const char* label_;
  bool active_ = false;
  Values begin_;
};

}  // namespace sbg::obs::perf
