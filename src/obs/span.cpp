#include "obs/span.hpp"

#include <mutex>
#include <unordered_map>

namespace sbg::obs {

struct SpanTree::Impl {
  std::mutex mu;
  SpanNode root;  // unnamed container; children are the top-level spans
  std::unordered_map<const SpanNode*, SpanNode*> parent_of;
};

namespace {

// Current innermost open span of this thread; null means "attach to root".
thread_local SpanNode* t_current = nullptr;

SpanNode* find_or_add_child(SpanNode* parent, std::string_view name) {
  for (const auto& c : parent->children) {
    if (c->name == name) return c.get();
  }
  parent->children.push_back(std::make_unique<SpanNode>());
  SpanNode* node = parent->children.back().get();
  node->name = std::string(name);
  return node;
}

std::unique_ptr<SpanNode> clone(const SpanNode& n) {
  auto out = std::make_unique<SpanNode>();
  out->name = n.name;
  out->seconds = n.seconds;
  out->count = n.count;
  out->children.reserve(n.children.size());
  for (const auto& c : n.children) out->children.push_back(clone(*c));
  return out;
}

void print_node(std::FILE* f, const SpanNode& n, int depth) {
  const int pad = 40 - 2 * depth > 0 ? 40 - 2 * depth : 1;
  std::fprintf(f, "%*s%-*s %10.4fs", 2 * depth, "", pad, n.name.c_str(),
               n.seconds);
  if (n.count > 1) std::fprintf(f, "  x%llu", (unsigned long long)n.count);
  std::fputc('\n', f);
  for (const auto& c : n.children) print_node(f, *c, depth + 1);
}

}  // namespace

SpanTree::SpanTree() : impl_(new Impl) {}
SpanTree::~SpanTree() { delete impl_; }

SpanNode* SpanTree::begin_span(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  SpanNode* parent = t_current ? t_current : &impl_->root;
  SpanNode* node = find_or_add_child(parent, name);
  impl_->parent_of[node] = parent;
  t_current = node;
  return node;
}

void SpanTree::end_span(SpanNode* node, double seconds) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  node->seconds += seconds;
  node->count += 1;
  // Spans are scoped objects, so per thread they close in LIFO order; the
  // node's recorded parent becomes the thread's current span again.
  SpanNode* parent = impl_->parent_of[node];
  t_current = parent == &impl_->root ? nullptr : parent;
}

std::unique_ptr<SpanNode> SpanTree::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return clone(impl_->root);
}

void SpanTree::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->root.children.clear();
  impl_->root.seconds = 0.0;
  impl_->root.count = 0;
  impl_->parent_of.clear();
  t_current = nullptr;
}

SpanTree& span_tree() {
  // Deliberately leaked: atexit report writers (bench_common.hpp) may run
  // after static destructors, so the tree must outlive them.
  static SpanTree* t = new SpanTree;
  return *t;
}

void print_span_tree(std::FILE* out) {
  const auto root = span_tree().snapshot();
  std::fprintf(out, "-- trace spans ------------------------------\n");
  for (const auto& c : root->children) print_node(out, *c, 0);
}

}  // namespace sbg::obs
