// GPU-path baselines and decomposition composites (paper Figures 3b/4b/5b).
//
// Structure mirrors the CPU composites, with two accounting rules:
//  * solver phases run on the device model; their cost is the device's
//    simulated clock;
//  * decompositions run on the host and contribute their measured wall
//    time (the paper reports "a similar trend ... also on GPUs" for
//    decomposition costs, so host-measured decomposition time is the
//    faithful stand-in).
#include "gpusim/gpu_algorithms.hpp"

#include <algorithm>

#include "parallel/atomics.hpp"
#include "core/degk.hpp"
#include "core/rand.hpp"
#include "gpusim/gpu_decompose.hpp"
#include "graph/builder.hpp"
#include "graph/subgraph.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/timer.hpp"

namespace sbg::gpu {

namespace {

/// Uncolor the higher endpoint of every monochromatic stitch edge
/// (device-side kernels; two passes so resets don't race detection).
vid_t uncolor_stitch_conflicts_gpu(Device& dev, const CsrGraph& stitch,
                                   std::vector<std::uint32_t>& color) {
  const vid_t n = stitch.num_vertices();
  std::vector<std::uint8_t> conflicted(n, 0);
  dev.launch(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    const std::uint32_t c = color[v];
    if (c == kNoColor) return;
    for (const vid_t w : stitch.neighbors(v)) {
      if (w < v && color[w] == c) {
        conflicted[v] = 1;
        return;
      }
    }
  });
  vid_t count = 0;
  dev.launch(n, [&](std::size_t i) {
    if (conflicted[i]) {
      color[i] = kNoColor;
      fetch_add(&count, vid_t{1});
    }
  });
  return count;
}

void eliminate_closed_neighborhood_gpu(Device& dev, const CsrGraph& g,
                                       std::vector<MisState>& state) {
  dev.launch(g.num_vertices(), [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    if (state[v] != MisState::kUndecided) return;
    for (const vid_t w : g.neighbors(v)) {
      if (state[w] == MisState::kIn) {
        state[v] = MisState::kOut;
        return;
      }
    }
  });
}

}  // namespace

// ----------------------------------------------------------------- MM ----

MatchResult mm_lmax_gpu(const CsrGraph& g, std::uint64_t seed, Device* dev) {
  Device local;
  Device& d = dev ? *dev : local;
  MatchResult r;
  r.mate.assign(g.num_vertices(), kNoVertex);
  r.rounds = lmax_extend_gpu(d, g, r.mate, seed);
  r.cardinality = matching_cardinality(r.mate);
  r.solve_seconds = r.total_seconds = d.simulated_seconds();
  return r;
}

MatchResult mm_bridge_gpu(const CsrGraph& g, std::uint64_t seed,
                          BridgeAlgo bridge_algo, Device* dev) {
  Device local;
  Device& device = dev ? *dev : local;
  MatchResult r;
  r.mate.assign(g.num_vertices(), kNoVertex);

  const BridgeDecomposition d = decompose_bridge(g, bridge_algo);
  r.decompose_seconds = d.decompose_seconds;
  const double solve_start = device.simulated_seconds();

  r.rounds += lmax_extend_gpu(device, d.g_components, r.mate, seed);
  r.rounds += lmax_extend_gpu(device, d.g_bridges, r.mate, seed + 1);

  r.cardinality = matching_cardinality(r.mate);
  r.solve_seconds = device.simulated_seconds() - solve_start;
  r.total_seconds = r.solve_seconds + r.decompose_seconds;
  return r;
}

MatchResult mm_rand_gpu(const CsrGraph& g, vid_t k, std::uint64_t seed,
                        Device* dev) {
  Device local;
  Device& device = dev ? *dev : local;
  MatchResult r;
  r.mate.assign(g.num_vertices(), kNoVertex);
  if (k == 0) k = 4;  // the paper's GPU partition count (Section III-D)

  const RandDecomposition d = decompose_rand_gpu(device, g, k, seed);
  r.decompose_seconds = d.decompose_seconds;
  const double solve_start = device.simulated_seconds();

  r.rounds += lmax_extend_gpu(device, d.g_intra, r.mate, seed);
  r.rounds += lmax_extend_gpu(device, d.g_cross, r.mate, seed + 1);

  r.cardinality = matching_cardinality(r.mate);
  r.solve_seconds = device.simulated_seconds() - solve_start;
  r.total_seconds = r.solve_seconds + r.decompose_seconds;
  return r;
}

MatchResult mm_degk_gpu(const CsrGraph& g, vid_t k, std::uint64_t seed,
                        Device* dev) {
  Device local;
  Device& device = dev ? *dev : local;
  MatchResult r;
  r.mate.assign(g.num_vertices(), kNoVertex);

  // Classification only (no materialization): phase 1 masks to V_H; after
  // its maximality on G_H, phase 2 on all of G matches exactly G_L ∪ G_C.
  const DegkDecomposition d = decompose_degk_gpu(device, g, k, /*pieces=*/0);
  r.decompose_seconds = d.decompose_seconds;
  const double solve_start = device.simulated_seconds();

  r.rounds += lmax_extend_gpu(device, g, r.mate, seed, &d.is_high);
  r.rounds += lmax_extend_gpu(device, g, r.mate, seed + 1);

  r.cardinality = matching_cardinality(r.mate);
  r.solve_seconds = device.simulated_seconds() - solve_start;
  r.total_seconds = r.solve_seconds + r.decompose_seconds;
  return r;
}

// -------------------------------------------------------------- COLOR ----

ColorResult color_eb_gpu(const CsrGraph& g, Device* dev) {
  Device local;
  Device& device = dev ? *dev : local;
  ColorResult r;
  r.color.assign(g.num_vertices(), kNoColor);
  r.rounds = eb_extend_gpu(device, g, r.color);
  r.num_colors = count_colors(r.color);
  r.solve_seconds = r.total_seconds = device.simulated_seconds();
  return r;
}

ColorResult color_bridge_gpu(const CsrGraph& g, BridgeAlgo bridge_algo,
                             Device* dev) {
  Device local;
  Device& device = dev ? *dev : local;
  ColorResult r;
  r.color.assign(g.num_vertices(), kNoColor);

  const BridgeDecomposition d = decompose_bridge(g, bridge_algo);
  r.decompose_seconds = d.decompose_seconds;
  const double solve_start = device.simulated_seconds();

  r.rounds += eb_extend_gpu(device, d.g_components, r.color);
  r.conflicted_vertices =
      uncolor_stitch_conflicts_gpu(device, d.g_bridges, r.color);
  r.rounds += eb_extend_gpu(device, g, r.color);

  r.num_colors = count_colors(r.color);
  r.solve_seconds = device.simulated_seconds() - solve_start;
  r.total_seconds = r.solve_seconds + r.decompose_seconds;
  return r;
}

ColorResult color_rand_gpu(const CsrGraph& g, vid_t k, std::uint64_t seed,
                           Device* dev) {
  Device local;
  Device& device = dev ? *dev : local;
  ColorResult r;
  r.color.assign(g.num_vertices(), kNoColor);
  if (k == 0) k = 2;

  const RandDecomposition d = decompose_rand_gpu(device, g, k, seed);
  r.decompose_seconds = d.decompose_seconds;
  const double solve_start = device.simulated_seconds();

  r.rounds += eb_extend_gpu(device, d.g_intra, r.color);
  r.conflicted_vertices =
      uncolor_stitch_conflicts_gpu(device, d.g_cross, r.color);
  r.rounds += eb_extend_gpu(device, g, r.color);

  r.num_colors = count_colors(r.color);
  r.solve_seconds = device.simulated_seconds() - solve_start;
  r.total_seconds = r.solve_seconds + r.decompose_seconds;
  return r;
}

ColorResult color_degk_gpu(const CsrGraph& g, vid_t k, Device* dev) {
  Device local;
  Device& device = dev ? *dev : local;
  const vid_t n = g.num_vertices();
  ColorResult r;
  r.color.assign(n, kNoColor);

  // Classification only (no materialization); masks on G, as on the CPU.
  const DegkDecomposition d = decompose_degk_gpu(device, g, k, /*pieces=*/0);
  r.decompose_seconds = d.decompose_seconds;
  const double solve_start = device.simulated_seconds();

  r.rounds += eb_extend_gpu(device, g, r.color, 0, &d.is_high);
  const std::uint32_t base = count_colors(r.color);
  std::vector<std::uint8_t> low(n);
  parallel_for(n, [&](std::size_t v) { low[v] = !d.is_high[v]; });
  r.rounds += small_palette_extend_gpu(device, g, r.color, base, k + 1, low);

  r.num_colors = count_colors(r.color);
  r.solve_seconds = device.simulated_seconds() - solve_start;
  r.total_seconds = r.solve_seconds + r.decompose_seconds;
  return r;
}

// ---------------------------------------------------------------- MIS ----

MisResult mis_luby_gpu(const CsrGraph& g, std::uint64_t seed, Device* dev) {
  Device local;
  Device& device = dev ? *dev : local;
  MisResult r;
  r.state.assign(g.num_vertices(), MisState::kUndecided);
  r.rounds = luby_extend_gpu(device, g, r.state, seed);
  r.size = mis_size(r.state);
  r.solve_seconds = r.total_seconds = device.simulated_seconds();
  return r;
}

namespace {

MisResult two_phase_gpu(Device& device, const CsrGraph& g,
                        const CsrGraph& side_graph,
                        const std::vector<std::uint8_t>& side,
                        double decompose_seconds, std::uint64_t seed) {
  MisResult r;
  r.decompose_seconds = decompose_seconds;
  const double solve_start = device.simulated_seconds();
  r.state.assign(g.num_vertices(), MisState::kUndecided);

  r.rounds += luby_extend_gpu(device, side_graph, r.state, seed, &side);
  eliminate_closed_neighborhood_gpu(device, g, r.state);
  r.rounds += luby_extend_gpu(device, g, r.state, seed + 1);

  r.size = mis_size(r.state);
  r.solve_seconds = device.simulated_seconds() - solve_start;
  r.total_seconds = r.solve_seconds + r.decompose_seconds;
  return r;
}

}  // namespace

MisResult mis_bridge_gpu(const CsrGraph& g, std::uint64_t seed,
                         BridgeAlgo bridge_algo, Device* dev) {
  Device local;
  Device& device = dev ? *dev : local;
  const vid_t n = g.num_vertices();
  const BridgeDecomposition d = decompose_bridge(g, bridge_algo);

  std::vector<std::uint8_t> interior(n), endpoints(n);
  parallel_for(n, [&](std::size_t v) {
    endpoints[v] = d.is_bridge_vertex[v];
    interior[v] = !d.is_bridge_vertex[v];
  });
  const std::size_t n_end =
      parallel_count(n, [&](std::size_t v) { return endpoints[v] != 0; });
  const double deg_interior =
      static_cast<double>(d.g_components.num_arcs()) /
      std::max<double>(1.0, static_cast<double>(n - n_end));
  const double deg_endpoints =
      2.0 * static_cast<double>(d.bridges.size()) /
      std::max<double>(1.0, static_cast<double>(n_end));

  if (deg_interior <= deg_endpoints) {
    return two_phase_gpu(device, g, d.g_components, interior,
                         d.decompose_seconds, seed);
  }
  return two_phase_gpu(device, g, g, endpoints, d.decompose_seconds, seed);
}

MisResult mis_rand_gpu(const CsrGraph& g, vid_t k, std::uint64_t seed,
                       Device* dev) {
  Device local;
  Device& device = dev ? *dev : local;
  if (k == 0) k = 4;
  const RandDecomposition d = decompose_rand_gpu(device, g, k, seed);
  const vid_t n = g.num_vertices();

  std::vector<std::uint8_t> intra_only(n), cross_touched(n);
  parallel_for(n, [&](std::size_t v) {
    const bool touched = d.g_cross.degree(static_cast<vid_t>(v)) > 0;
    cross_touched[v] = touched;
    intra_only[v] = !touched;
  });

  if (d.g_intra.num_edges() <= d.g_cross.num_edges()) {
    return two_phase_gpu(device, g, d.g_intra, intra_only,
                         d.decompose_seconds, seed);
  }
  return two_phase_gpu(device, g, g, cross_touched, d.decompose_seconds, seed);
}

MisResult mis_degk_gpu(const CsrGraph& g, vid_t k, std::uint64_t seed,
                       Device* dev) {
  Device local;
  Device& device = dev ? *dev : local;
  const DegkDecomposition d = decompose_degk_gpu(device, g, k, /*pieces=*/0);
  const vid_t n = g.num_vertices();

  MisResult r;
  r.decompose_seconds = d.decompose_seconds;
  const double solve_start = device.simulated_seconds();
  r.state.assign(n, MisState::kUndecided);

  std::vector<std::uint8_t> low(n);
  parallel_for(n, [&](std::size_t v) { low[v] = !d.is_high[v]; });

  r.rounds += oriented_extend_gpu(device, g, r.state, &low);
  eliminate_closed_neighborhood_gpu(device, g, r.state);
  r.rounds += luby_extend_gpu(device, g, r.state, seed);

  r.size = mis_size(r.state);
  r.solve_seconds = device.simulated_seconds() - solve_start;
  r.total_seconds = r.solve_seconds + r.decompose_seconds;
  return r;
}

}  // namespace sbg::gpu
