// Kernel-style ports of the extend solvers, written the way the era's GPU
// matching/coloring/MIS codes were written [Auer-Bisseling; Birn et al.;
// Deveci et al.]: DENSE per-round kernels over the full vertex range with
// the liveness check inside the kernel — no host-side frontier compaction.
// That density is load-bearing for the Figure 3b/4b/5b shapes: a GPU pays
// for every round with a full sweep, which is exactly why reducing rounds
// (or edges scanned per round) via decomposition pays off there.
//
// Algorithmic decisions (who matches/joins/what color) are identical to
// the CPU solvers given the same seeds.
#include "gpusim/gpu_algorithms.hpp"

#include <bit>

#include "parallel/atomics.hpp"
#include "parallel/rng.hpp"

namespace sbg::gpu {

namespace {

inline std::uint64_t fixed_priority(vid_t v) {
  return (mix64(0x0123456789abcdefull ^ v) & ~0xffffffffull) | v;
}

}  // namespace

vid_t lmax_extend_gpu(Device& dev, const CsrGraph& g, std::vector<vid_t>& mate,
                      std::uint64_t seed,
                      const std::vector<std::uint8_t>* active,
                      LmaxWeights weights) {
  const vid_t n = g.num_vertices();
  SBG_CHECK(mate.size() == n, "mate array size mismatch");
  const std::uint64_t base = detail::lmax_weight_base(seed, weights);

  const auto is_live = [&](vid_t v) {
    return mate[v] == kNoVertex && (!active || (*active)[v]);
  };

  std::vector<vid_t> candidate(n, kNoVertex);
  vid_t rounds = 0;
  vid_t remaining = 1;  // forces the first sweep
  while (remaining > 0) {
    ++rounds;
    dev.launch(n, [&](std::size_t i) {  // point at heaviest live edge
      const vid_t v = static_cast<vid_t>(i);
      if (!is_live(v)) {
        candidate[v] = kNoVertex;
        return;
      }
      vid_t best = kNoVertex;
      std::uint64_t best_w = 0;
      for (const vid_t w : g.neighbors(v)) {
        if (!is_live(w)) continue;
        const std::uint64_t wt = detail::lmax_edge_weight(v, w, base);
        if (best == kNoVertex || wt > best_w || (wt == best_w && w < best)) {
          best = w;
          best_w = wt;
        }
      }
      candidate[v] = best;
    });
    remaining = 0;
    dev.launch(n, [&](std::size_t i) {  // match local maxima, count work left
      const vid_t v = static_cast<vid_t>(i);
      const vid_t w = candidate[v];
      if (w == kNoVertex) return;
      if (v < w && candidate[w] == v) {
        mate[v] = w;
        mate[w] = v;
        return;
      }
      // Still unmatched with a live proposal target: another round needed.
      if (!(w < v && candidate[w] == v)) fetch_add(&remaining, vid_t{1});
    });
  }
  return rounds;
}

vid_t eb_extend_gpu(Device& dev, const CsrGraph& g,
                    std::vector<std::uint32_t>& color,
                    std::uint32_t palette_base,
                    const std::vector<std::uint8_t>* active) {
  const vid_t n = g.num_vertices();
  SBG_CHECK(color.size() == n, "color array size mismatch");

  std::vector<std::uint32_t> offset(n, palette_base);
  const auto participates = [&](vid_t v) {
    return (!active || (*active)[v]);
  };

  vid_t rounds = 0;
  vid_t remaining = 1;
  while (remaining > 0) {
    ++rounds;
    dev.launch(n, [&](std::size_t i) {  // speculate
      const vid_t v = static_cast<vid_t>(i);
      if (color[v] != kNoColor || !participates(v)) return;
      const std::uint32_t off = offset[v];
      std::uint32_t used = 0;
      for (const vid_t w : g.neighbors(v)) {
        const std::uint32_t c = atomic_read(&color[w]);
        if (c != kNoColor && c >= off && c - off < 32) {
          used |= 1u << (c - off);
        }
      }
      if (used != 0xffffffffu) {
        atomic_write(&color[v],
                     off + static_cast<std::uint32_t>(std::countr_one(used)));
      } else {
        offset[v] = off + 32;
      }
    });
    remaining = 0;
    dev.launch(n, [&](std::size_t i) {  // edge conflicts: lower id resets
      const vid_t v = static_cast<vid_t>(i);
      if (!participates(v)) return;
      const std::uint32_t c = color[v];
      if (c == kNoColor) {
        fetch_add(&remaining, vid_t{1});
        return;
      }
      for (const vid_t w : g.neighbors(v)) {
        if (w > v && atomic_read(&color[w]) == c) {
          atomic_write(&color[v], kNoColor);
          fetch_add(&remaining, vid_t{1});
          return;
        }
      }
    });
  }
  return rounds;
}

vid_t small_palette_extend_gpu(Device& dev, const CsrGraph& g,
                               std::vector<std::uint32_t>& color,
                               std::uint32_t palette_base,
                               std::uint32_t palette,
                               const std::vector<std::uint8_t>& active) {
  const vid_t n = g.num_vertices();
  SBG_CHECK(color.size() == n, "color array size mismatch");
  SBG_CHECK(palette >= 1 && palette <= 32, "palette must fit one word");

  dev.launch(n, [&](std::size_t v) {
    if (active[v]) color[v] = palette_base;
  });

  vid_t rounds = 0;
  bool any = true;
  while (any) {
    ++rounds;
    int changed = 0;
    dev.launch(n, [&](std::size_t i) {
      const vid_t v = static_cast<vid_t>(i);
      if (!active[v]) return;
      const std::uint32_t c = color[v];
      bool conflicted = false;
      std::uint32_t used = 0;
      for (const vid_t w : g.neighbors(v)) {
        const std::uint32_t cw = atomic_read(&color[w]);
        if (cw == c && w < v) conflicted = true;
        if (cw >= palette_base && cw - palette_base < palette) {
          used |= 1u << (cw - palette_base);
        }
      }
      if (conflicted) {
        std::uint32_t slot = 0;
        while (slot < palette && (used >> slot & 1u)) ++slot;
        SBG_CHECK(slot < palette, "small palette saturated");
        atomic_write(&color[v], palette_base + slot);
        atomic_write(&changed, 1);
      }
    });
    any = changed != 0;
  }
  return rounds;
}

vid_t luby_extend_gpu(Device& dev, const CsrGraph& g,
                      std::vector<MisState>& state, std::uint64_t seed,
                      const std::vector<std::uint8_t>* active) {
  // Faithful LubyMIS [22] as dense kernels: coin-flip marking with
  // probability 1/(2 d_live), lower-degree unmarking, join, knockout.
  const vid_t n = g.num_vertices();
  SBG_CHECK(state.size() == n, "state array size mismatch");
  const RandomStream coins(seed, /*stream=*/0x3a15b7);

  const auto participates = [&](vid_t v) {
    return state[v] == MisState::kUndecided && (!active || (*active)[v]);
  };

  std::vector<vid_t> live_degree(n, 0);
  std::vector<std::uint8_t> marked(n, 0), survivor(n, 0);

  vid_t rounds = 0;
  vid_t remaining = 1;
  while (remaining > 0) {
    ++rounds;
    dev.launch(n, [&](std::size_t i) {  // live degrees (pure read pass)
      const vid_t v = static_cast<vid_t>(i);
      if (!participates(v)) return;
      vid_t d = 0;
      for (const vid_t w : g.neighbors(v)) {
        if (participates(w)) ++d;
      }
      live_degree[v] = d;
    });
    dev.launch(n, [&](std::size_t i) {  // coin flips
      const vid_t v = static_cast<vid_t>(i);
      if (!participates(v)) {
        marked[v] = 0;
        return;
      }
      const vid_t d = live_degree[v];
      if (d == 0) {
        state[v] = MisState::kIn;
        marked[v] = 0;
        return;
      }
      const std::uint64_t idx = static_cast<std::uint64_t>(rounds) * n + v;
      marked[v] = coins.bits(idx) < (~0ull / 2) / d ? 1 : 0;
    });
    dev.launch(n, [&](std::size_t i) {  // lower degree loses (read-only)
      const vid_t v = static_cast<vid_t>(i);
      survivor[v] = 0;
      if (!marked[v]) return;
      const vid_t dv = live_degree[v];
      for (const vid_t w : g.neighbors(v)) {
        if (!participates(w) || !marked[w]) continue;
        const vid_t dw = live_degree[w];
        if (dw > dv || (dw == dv && w > v)) return;
      }
      survivor[v] = 1;
    });
    dev.launch(n, [&](std::size_t i) {  // join
      const vid_t v = static_cast<vid_t>(i);
      if (survivor[v]) state[v] = MisState::kIn;
    });
    remaining = 0;
    dev.launch(n, [&](std::size_t i) {  // knockout + count
      const vid_t v = static_cast<vid_t>(i);
      if (state[v] != MisState::kUndecided || (active && !(*active)[v])) {
        return;
      }
      for (const vid_t w : g.neighbors(v)) {
        if (state[w] == MisState::kIn) {
          state[v] = MisState::kOut;
          return;
        }
      }
      fetch_add(&remaining, vid_t{1});
    });
  }
  return rounds;
}

vid_t oriented_extend_gpu(Device& dev, const CsrGraph& g,
                          std::vector<MisState>& state,
                          const std::vector<std::uint8_t>* active) {
  const vid_t n = g.num_vertices();
  SBG_CHECK(state.size() == n, "state array size mismatch");

  const auto participates = [&](vid_t v) {
    return state[v] == MisState::kUndecided && (!active || (*active)[v]);
  };

  vid_t rounds = 0;
  vid_t remaining = 1;
  while (remaining > 0) {
    ++rounds;
    dev.launch(n, [&](std::size_t i) {
      const vid_t v = static_cast<vid_t>(i);
      if (!participates(v)) return;
      const std::uint64_t pv = fixed_priority(v);
      for (const vid_t w : g.neighbors(v)) {
        const bool competed = (!active || (*active)[w]) &&
                              atomic_read(&state[w]) != MisState::kOut;
        if (competed && fixed_priority(w) < pv) return;
      }
      atomic_write(&state[v], MisState::kIn);
    });
    remaining = 0;
    dev.launch(n, [&](std::size_t i) {
      const vid_t v = static_cast<vid_t>(i);
      if (state[v] != MisState::kUndecided || (active && !(*active)[v])) {
        return;
      }
      for (const vid_t w : g.neighbors(v)) {
        if (state[w] == MisState::kIn) {
          state[v] = MisState::kOut;
          return;
        }
      }
      fetch_add(&remaining, vid_t{1});
    });
  }
  return rounds;
}

}  // namespace sbg::gpu
