#include "gpusim/gpu_decompose.hpp"

#include "parallel/atomics.hpp"
#include "parallel/rng.hpp"

namespace sbg::gpu {

RandDecomposition decompose_rand_gpu(Device& dev, const CsrGraph& g, vid_t k,
                                     std::uint64_t seed) {
  SBG_CHECK(k >= 1, "RAND needs k >= 1 partitions");
  const double start = dev.simulated_seconds();
  RandDecomposition d;
  d.k = k;
  const vid_t n = g.num_vertices();
  d.part.resize(n);

  const RandomStream rs(seed, /*stream=*/0x9a2d);
  dev.launch(n, [&](std::size_t v) {
    d.part[v] = static_cast<vid_t>(rs.below(v, k));
  });
  d.g_intra = filter_edges_gpu(
      dev, g, [&](vid_t u, vid_t v) { return d.part[u] == d.part[v]; });
  d.g_cross = filter_edges_gpu(
      dev, g, [&](vid_t u, vid_t v) { return d.part[u] != d.part[v]; });
  d.decompose_seconds = dev.simulated_seconds() - start;
  return d;
}

DegkDecomposition decompose_degk_gpu(Device& dev, const CsrGraph& g, vid_t k,
                                     unsigned pieces) {
  const double start = dev.simulated_seconds();
  DegkDecomposition d;
  d.k = k;
  const vid_t n = g.num_vertices();
  d.is_high.assign(n, 0);
  vid_t num_high = 0;
  dev.launch(n, [&](std::size_t v) {
    if (g.degree(static_cast<vid_t>(v)) > k) {
      d.is_high[v] = 1;
      fetch_add(&num_high, vid_t{1});
    }
  });
  d.num_high = num_high;

  const auto& high = d.is_high;
  if (pieces & kDegkHigh) {
    d.g_high = filter_edges_gpu(
        dev, g, [&](vid_t u, vid_t v) { return high[u] && high[v]; });
  }
  if (pieces & kDegkLow) {
    d.g_low = filter_edges_gpu(
        dev, g, [&](vid_t u, vid_t v) { return !high[u] && !high[v]; });
  }
  if (pieces & kDegkCross) {
    d.g_cross = filter_edges_gpu(
        dev, g, [&](vid_t u, vid_t v) { return high[u] != high[v]; });
  }
  if (pieces & kDegkLowCross) {
    d.g_low_cross = filter_edges_gpu(
        dev, g, [&](vid_t u, vid_t v) { return !(high[u] && high[v]); });
  }
  d.decompose_seconds = dev.simulated_seconds() - start;
  return d;
}

}  // namespace sbg::gpu
