// GPU execution-model simulator.
//
// The paper's GPU results (Tesla K40c) are driven by algorithmic structure:
// how many bulk-synchronous kernel launches an algorithm needs, and how
// much data-parallel work each launch does. This substrate models exactly
// that: a Device executes `launch(n, kernel)` steps — every kernel instance
// sees the same pre-launch memory state conceptually (algorithms written
// against it use only the atomics-and-barriers style a real CUDA port
// would), and the device accounts
//
//     simulated_seconds = launches * launch_overhead
//                       + measured_kernel_work * throughput_factor
//
// so round-heavy algorithms pay the same launch-latency tax they pay on a
// real GPU. Within-architecture speedups (composite vs. baseline on the
// same device) are what the paper reports, and those survive this model;
// absolute times do not, and we never claim them.
#pragma once

#include <cstdint>
#include <omp.h>

#include "parallel/parallel_for.hpp"
#include "parallel/timer.hpp"

namespace sbg::gpu {

struct DeviceConfig {
  /// Per-launch fixed cost (launch + implicit sync), seconds. ~10us is a
  /// typical CUDA launch/sync latency on Kepler-class hardware.
  double launch_overhead_seconds = 10e-6;
  /// Multiplier from measured host work time to simulated device work time.
  /// 1.0 by default: shapes, not absolute times, are the deliverable.
  double throughput_factor = 1.0;
};

/// One simulated accelerator. Not thread-safe: one Device per experiment.
class Device {
 public:
  explicit Device(DeviceConfig cfg = {}) : cfg_(cfg) {}

  /// BSP step: run kernel(i) for i in [0, n); returns only after every
  /// instance finished (the implicit barrier of a CUDA sync).
  template <typename F>
  void launch(std::size_t n, F&& kernel) {
    Timer t;
    parallel_for(n, kernel);
    work_seconds_ += t.seconds();
    ++kernels_;
    threads_ += n;
  }

  std::uint64_t kernels_launched() const { return kernels_; }
  std::uint64_t threads_launched() const { return threads_; }
  double work_seconds() const { return work_seconds_; }

  /// The device-model clock (see file header).
  double simulated_seconds() const {
    return static_cast<double>(kernels_) * cfg_.launch_overhead_seconds +
           work_seconds_ * cfg_.throughput_factor;
  }

  void reset() {
    kernels_ = 0;
    threads_ = 0;
    work_seconds_ = 0.0;
  }

  const DeviceConfig& config() const { return cfg_; }

 private:
  DeviceConfig cfg_;
  std::uint64_t kernels_ = 0;
  std::uint64_t threads_ = 0;
  double work_seconds_ = 0.0;
};

}  // namespace sbg::gpu
