// Device-side decompositions.
//
// On the GPU path the paper decomposes on the GPU too; charging the
// composites host wall time for decomposition while the solvers run on the
// simulated device clock would skew every Figure 3b/4b/5b ratio. RAND and
// DEGk are simple data-parallel passes, so they are expressed as device
// launches here (label/classify kernel, count kernel, scan, fill kernel)
// and their decompose_seconds come from the same simulated clock as the
// solve phases. BRIDGE is deliberately left on the host: its BFS + LCA
// walks are the reason the paper finds it non-competitive on GPUs, and
// charging it host time only understates that penalty.
#pragma once

#include "core/degk.hpp"
#include "core/rand.hpp"
#include "gpusim/device.hpp"

namespace sbg::gpu {

/// filter_edges expressed as device launches (count, scan, fill).
template <typename KeepFn>
CsrGraph filter_edges_gpu(Device& dev, const CsrGraph& g, KeepFn&& keep) {
  const vid_t n = g.num_vertices();
  EidBuffer offsets(static_cast<std::size_t>(n) + 1, 0);
  dev.launch(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t cnt = 0;
    for (const vid_t v : g.neighbors(u)) {
      if (keep(u, v)) ++cnt;
    }
    offsets[i + 1] = cnt;
  });
  // Device scan (thrust-style exclusive_scan counts as one launch).
  dev.launch(1, [&](std::size_t) {
    for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];
  });
  VidBuffer adj(offsets.back());
  dev.launch(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t out = offsets[i];
    for (const vid_t v : g.neighbors(u)) {
      if (keep(u, v)) adj[out++] = v;
    }
  });
  return CsrGraph(std::move(offsets), std::move(adj));
}

/// RAND decomposition on the device; decompose_seconds is the simulated
/// clock consumed by its kernels.
RandDecomposition decompose_rand_gpu(Device& dev, const CsrGraph& g, vid_t k,
                                     std::uint64_t seed = 42);

/// DEGk decomposition on the device.
DegkDecomposition decompose_degk_gpu(Device& dev, const CsrGraph& g, vid_t k,
                                     unsigned pieces);

}  // namespace sbg::gpu
