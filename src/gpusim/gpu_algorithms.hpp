// Kernel-style algorithm variants for the GPU execution model.
//
// These mirror the CPU-side API (matching / coloring / mis) but express
// every phase as Device::launch steps — per-vertex kernels communicating
// through atomics on shared arrays, frontier compaction via atomic queue
// append — i.e. the way the same algorithms are written in CUDA. Timings
// reported in the result structs are the device-model's simulated clock
// plus the (host-measured) decomposition time.
#pragma once

#include "coloring/coloring.hpp"
#include "core/bridge.hpp"
#include "gpusim/device.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"

namespace sbg::gpu {

// ------------------------------------------------------------- extenders --
vid_t lmax_extend_gpu(Device& dev, const CsrGraph& g, std::vector<vid_t>& mate,
                      std::uint64_t seed,
                      const std::vector<std::uint8_t>* active = nullptr,
                      LmaxWeights weights = LmaxWeights::kIndex);

vid_t eb_extend_gpu(Device& dev, const CsrGraph& g,
                    std::vector<std::uint32_t>& color,
                    std::uint32_t palette_base = 0,
                    const std::vector<std::uint8_t>* active = nullptr);

vid_t small_palette_extend_gpu(Device& dev, const CsrGraph& g,
                               std::vector<std::uint32_t>& color,
                               std::uint32_t palette_base,
                               std::uint32_t palette,
                               const std::vector<std::uint8_t>& active);

vid_t luby_extend_gpu(Device& dev, const CsrGraph& g,
                      std::vector<MisState>& state, std::uint64_t seed,
                      const std::vector<std::uint8_t>* active = nullptr);

vid_t oriented_extend_gpu(Device& dev, const CsrGraph& g,
                          std::vector<MisState>& state,
                          const std::vector<std::uint8_t>* active = nullptr);

// ------------------------------------- maximal matching (paper Fig. 3b) --
MatchResult mm_lmax_gpu(const CsrGraph& g, std::uint64_t seed = 42,
                        Device* dev = nullptr);
MatchResult mm_bridge_gpu(const CsrGraph& g, std::uint64_t seed = 42,
                          BridgeAlgo bridge_algo = BridgeAlgo::kNaiveWalk,
                          Device* dev = nullptr);
/// k = 0 selects the paper's GPU setting (4 partitions).
MatchResult mm_rand_gpu(const CsrGraph& g, vid_t k = 0,
                        std::uint64_t seed = 42, Device* dev = nullptr);
MatchResult mm_degk_gpu(const CsrGraph& g, vid_t k = 2,
                        std::uint64_t seed = 42, Device* dev = nullptr);

// ---------------------------------------------- coloring (paper Fig. 4b) --
ColorResult color_eb_gpu(const CsrGraph& g, Device* dev = nullptr);
ColorResult color_bridge_gpu(const CsrGraph& g,
                             BridgeAlgo bridge_algo = BridgeAlgo::kNaiveWalk,
                             Device* dev = nullptr);
ColorResult color_rand_gpu(const CsrGraph& g, vid_t k = 2,
                           std::uint64_t seed = 42, Device* dev = nullptr);
ColorResult color_degk_gpu(const CsrGraph& g, vid_t k = 2,
                           Device* dev = nullptr);

// --------------------------------------------------- MIS (paper Fig. 5b) --
MisResult mis_luby_gpu(const CsrGraph& g, std::uint64_t seed = 42,
                       Device* dev = nullptr);
MisResult mis_bridge_gpu(const CsrGraph& g, std::uint64_t seed = 42,
                         BridgeAlgo bridge_algo = BridgeAlgo::kNaiveWalk,
                         Device* dev = nullptr);
MisResult mis_rand_gpu(const CsrGraph& g, vid_t k = 0,
                       std::uint64_t seed = 42, Device* dev = nullptr);
MisResult mis_degk_gpu(const CsrGraph& g, vid_t k = 2,
                       std::uint64_t seed = 42, Device* dev = nullptr);

}  // namespace sbg::gpu
