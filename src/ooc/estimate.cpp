#include "ooc/estimate.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace sbg::ooc {

bool ScratchModel::calibrate(vid_t n, std::uint64_t observed) {
  if (observed <= bytes(n)) return false;
  if (n == 0) {
    fixed_bytes = std::max(fixed_bytes, observed);
  } else {
    // Attribute the overshoot to the slope: the fixed term is small by
    // construction and per-vertex arrays are what actually grow.
    bytes_per_vertex =
        static_cast<double>(observed - fixed_bytes) / static_cast<double>(n);
  }
  SBG_COUNTER_ADD("ooc.estimator_recalibrations", 1);
  SBG_GAUGE_SET("ooc.scratch_model_bytes_per_vertex", bytes_per_vertex);
  return true;
}

ScratchModel default_scratch_model(Workload w) {
  ScratchModel m;
  switch (w) {
    case Workload::kMM:
      // gm_extend: cursor (8B) + proposal + live + next_live (4B each),
      // all n-sized, plus per-thread pack block sums (~KBs).
      m.bytes_per_vertex = 20.0;
      m.fixed_bytes = 64 << 10;
      break;
  }
  return m;
}

}  // namespace sbg::ooc
