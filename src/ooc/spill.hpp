// Piece-granular spill store: .sbgc format version 2.
//
// The out-of-core executor extracts decomposition pieces in one streaming
// pass over the source and parks the cold ones on disk. The container
// extends the versioned .sbgc family: same magic, bumped version (a v1
// reader sees kStale and degrades gracefully), same checksum machinery
// (ingest::hash_bytes with a header-folded seed), same atomic temp+rename
// install (ingest::unique_temp_path) so a crashed extraction never leaves a
// half-written store that a later fetch would trust.
//
// File layout (little-endian):
//
//   offset  size  field
//   0       8     magic "SBGCACHE"
//   8       4     format version (kSpillFormatVersion = 2)
//   12      4     endianness tag 0x01020304, written natively
//   16      8     n      (global vertex count every piece shares)
//   24      8     pieces (piece count of the emitting plan)
//   32      8     plan identity hash (family/k/levels/threshold/seed fold)
//   40      8     segment count
//   48      16    reserved, zero
//   64      …     segments, back to back
//
// Each segment covers one (piece, vertex-range) cell of the extraction
// sweep:
//
//   offset  size  field
//   0       8     segment magic "SBGCSEG1"
//   8       4     piece id
//   12      4     run count   (vertices of the range with arcs in piece)
//   16      8     v_begin     \  vertex range the sweep emitted
//   24      8     v_end       /
//   32      8     arc count
//   40      8     payload checksum (seeded with piece/range/runs/arcs/n)
//   48      16    reserved, zero
//   64      runs*8   {u32 vertex, u32 count} pairs, vertex ascending
//   …       arcs*4   adjacency values, global CSR order
//
// Ranges ascend across a piece's segments and vertices ascend within one,
// so concatenating a piece's payloads reproduces its sub-CSR arrays in
// canonical order: rebuild is zero-fill + run scatter + prefix sum + one
// memcpy per segment, byte-identical to an in-memory extraction of the
// same piece.
//
// Failure contract: every read path (mapping, directory scan, per-segment
// fetch) bounds-checks against the live file size and verifies the segment
// checksum before any byte is trusted, so truncation or mid-file corruption
// degrades to CacheStatus::kCorrupt — the executor then re-extracts the
// piece from the source. No read throws for bad bytes and none can return
// a silently short CSR.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "ingest/cache.hpp"

namespace sbg::ooc {

/// Version written into the shared .sbgc header by spill stores.
inline constexpr std::uint32_t kSpillFormatVersion = 2;

/// Fixed header sizes (the layouts above).
inline constexpr std::size_t kSpillHeaderBytes = 64;
inline constexpr std::size_t kSegmentHeaderBytes = 64;

/// Where one segment lives inside the store. Writers hand the directory to
/// readers in-process; readers can also rebuild it by scanning the file.
struct SegmentRef {
  std::uint64_t offset = 0;  ///< file offset of the segment header
  std::uint32_t piece = 0;
  std::uint32_t runs = 0;
  std::uint64_t arcs = 0;
};

/// Exact container bytes one segment occupies (header + runs + values).
inline std::uint64_t segment_bytes(std::uint32_t runs, std::uint64_t arcs) {
  return kSegmentHeaderBytes + std::uint64_t(runs) * 8 + arcs * 4;
}

/// Streams segments into a temp file; finish() installs the store with an
/// atomic rename. The destructor of an unfinished writer removes the temp
/// file, so abandoned extractions leave nothing behind.
class SpillWriter {
 public:
  /// Throws InputError when the temp file cannot be created.
  SpillWriter(std::string path, vid_t n, std::uint64_t piece_count,
              std::uint64_t plan_hash);
  ~SpillWriter();
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Append one (piece, range) segment. `runs` holds interleaved
  /// {vertex, count} u32 pairs; `values` the adjacency payload. Returns the
  /// segment's directory entry. Throws InputError on IO failure.
  SegmentRef append(std::uint32_t piece, vid_t v_begin, vid_t v_end,
                    std::span<const std::uint32_t> runs,
                    std::span<const std::uint32_t> values);

  /// Flush + atomically rename the temp file into place. Throws InputError
  /// on IO failure. No append may follow.
  void finish();

  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t segments() const { return segments_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string tmp_;
  std::ofstream out_;
  vid_t n_ = 0;
  std::uint64_t piece_count_ = 0;
  std::uint64_t plan_hash_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t segments_ = 0;
  bool finished_ = false;
};

/// Fetches pieces back out of a finished store. Every read_piece call
/// re-maps the file via ingest::MappedFile (so evicted stores cost nothing
/// between fetches) and re-validates everything it touches against the
/// mapped length — a store truncated after finish() yields kCorrupt, not a
/// crash.
class SpillReader {
 public:
  /// Validate the store header. n/piece_count/plan_hash must match the plan
  /// that wrote the store (a mismatched store is kStale). Never throws.
  static ingest::CacheStatus open(const std::string& path, vid_t n,
                                  std::uint64_t piece_count,
                                  std::uint64_t plan_hash, SpillReader* out);

  /// Assemble one piece from its segments (the writer's directory entries,
  /// range-ascending). On kHit *out holds the piece sub-CSR over the global
  /// vertex space and *bytes_read the container bytes consumed. Any header,
  /// bounds, checksum, or shape violation returns kCorrupt with *out
  /// untouched.
  ingest::CacheStatus read_piece(std::span<const SegmentRef> segments,
                                 eid_t expect_arcs, CsrGraph* out,
                                 std::uint64_t* bytes_read) const;

  /// Walk the file front to back and rebuild a per-piece directory,
  /// stopping at the first malformed segment. Returns kHit when every
  /// declared segment scanned clean, kCorrupt otherwise (with *dir holding
  /// the clean prefix — recovery can fetch those pieces and re-extract the
  /// rest).
  ingest::CacheStatus scan(
      std::vector<std::vector<SegmentRef>>* dir) const;

  vid_t num_vertices() const { return n_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  vid_t n_ = 0;
  std::uint64_t piece_count_ = 0;
  std::uint64_t declared_segments_ = 0;
};

/// Rebuild a piece sub-CSR from ordered payload chunks (the shared tail of
/// the disk and in-memory fetch paths). `runs_chunks[i]`/`value_chunks[i]`
/// are one segment's payload views, range-ascending. Returns false (leaving
/// *out untouched) when the chunks are internally inconsistent: counts not
/// summing to `expect_arcs`, vertices out of range or out of order, value
/// counts disagreeing with run counts.
bool assemble_piece(vid_t n, eid_t expect_arcs,
                    std::span<const std::span<const std::uint32_t>> runs_chunks,
                    std::span<const std::span<const std::uint32_t>> value_chunks,
                    CsrGraph* out);

}  // namespace sbg::ooc
