#include "ooc/spill.hpp"

#include <array>
#include <cstring>
#include <filesystem>

#include "common.hpp"
#include "ingest/mmap_file.hpp"
#include "obs/obs.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/rng.hpp"

namespace sbg::ooc {

namespace {

namespace fs = std::filesystem;

constexpr std::array<char, 8> kMagic = {'S', 'B', 'G', 'C', 'A', 'C', 'H', 'E'};
constexpr std::array<char, 8> kSegMagic = {'S', 'B', 'G', 'C',
                                           'S', 'E', 'G', '1'};
constexpr std::uint32_t kEndianTag = 0x01020304u;

struct FileHeader {
  std::array<char, 8> magic = kMagic;
  std::uint32_t version = kSpillFormatVersion;
  std::uint32_t endian = kEndianTag;
  std::uint64_t n = 0;
  std::uint64_t pieces = 0;
  std::uint64_t plan_hash = 0;
  std::uint64_t segments = 0;
  std::uint64_t reserved[2] = {0, 0};
};
static_assert(sizeof(FileHeader) == kSpillHeaderBytes,
              "spill header layout drifted");

struct SegHeader {
  std::array<char, 8> magic = kSegMagic;
  std::uint32_t piece = 0;
  std::uint32_t runs = 0;
  std::uint64_t v_begin = 0;
  std::uint64_t v_end = 0;
  std::uint64_t arcs = 0;
  std::uint64_t checksum = 0;
  std::uint64_t reserved[2] = {0, 0};
};
static_assert(sizeof(SegHeader) == kSegmentHeaderBytes,
              "spill segment header layout drifted");

/// Folds every field that determines the payload's shape, so a header edit
/// that moves bytes between the runs and values blobs (or between adjacent
/// segments) fails verification even when the payload is untouched. Same
/// discipline as the v1 checksum_seed.
std::uint64_t seg_checksum_seed(const SegHeader& h, std::uint64_t n) {
  std::uint64_t s = mix64(h.piece);
  s = mix64(s ^ h.runs);
  s = mix64(s ^ h.v_begin);
  s = mix64(s ^ h.v_end);
  s = mix64(s ^ h.arcs);
  return mix64(s ^ n);
}

std::uint64_t seg_payload_checksum(const SegHeader& h, std::uint64_t n,
                                   std::span<const std::uint32_t> runs,
                                   std::span<const std::uint32_t> values) {
  std::uint64_t c = ingest::hash_bytes(runs.data(), runs.size_bytes(),
                                       seg_checksum_seed(h, n));
  return ingest::hash_bytes(values.data(), values.size_bytes(), c);
}

}  // namespace

SpillWriter::SpillWriter(std::string path, vid_t n, std::uint64_t piece_count,
                         std::uint64_t plan_hash)
    : path_(std::move(path)),
      tmp_(ingest::unique_temp_path(path_)),
      n_(n),
      piece_count_(piece_count),
      plan_hash_(plan_hash) {
  {
    std::error_code ec;
    const fs::path parent = fs::path(path_).parent_path();
    if (!parent.empty()) fs::create_directories(parent, ec);
  }
  out_.open(tmp_, std::ios::binary | std::ios::trunc);
  if (!out_) throw InputError("cannot create spill temp " + tmp_);
  // Header placeholder; finish() rewrites it with the final segment count.
  FileHeader h;
  h.n = n_;
  h.pieces = piece_count_;
  h.plan_hash = plan_hash_;
  out_.write(reinterpret_cast<const char*>(&h), sizeof(h));
  bytes_written_ = kSpillHeaderBytes;
}

SpillWriter::~SpillWriter() {
  if (finished_) return;
  out_.close();
  std::error_code ec;
  fs::remove(tmp_, ec);
}

SegmentRef SpillWriter::append(std::uint32_t piece, vid_t v_begin, vid_t v_end,
                               std::span<const std::uint32_t> runs,
                               std::span<const std::uint32_t> values) {
  SBG_CHECK(!finished_, "append after finish");
  SBG_CHECK(runs.size() % 2 == 0, "runs must be {vertex, count} pairs");
  SegHeader h;
  h.piece = piece;
  h.runs = static_cast<std::uint32_t>(runs.size() / 2);
  h.v_begin = v_begin;
  h.v_end = v_end;
  h.arcs = values.size();
  h.checksum = seg_payload_checksum(h, n_, runs, values);

  SegmentRef ref;
  ref.offset = bytes_written_;
  ref.piece = piece;
  ref.runs = h.runs;
  ref.arcs = h.arcs;

  out_.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out_.write(reinterpret_cast<const char*>(runs.data()),
             static_cast<std::streamsize>(runs.size_bytes()));
  out_.write(reinterpret_cast<const char*>(values.data()),
             static_cast<std::streamsize>(values.size_bytes()));
  if (!out_) throw InputError("cannot write spill segment to " + tmp_);
  bytes_written_ += segment_bytes(h.runs, h.arcs);
  ++segments_;
  SBG_COUNTER_ADD("ooc.segments_written", 1);
  SBG_COUNTER_ADD("ooc.bytes_spilled", segment_bytes(h.runs, h.arcs));
  return ref;
}

void SpillWriter::finish() {
  SBG_CHECK(!finished_, "finish called twice");
  // Backpatch the header's segment count, then install atomically: readers
  // see either no store or the complete one.
  FileHeader h;
  h.n = n_;
  h.pieces = piece_count_;
  h.plan_hash = plan_hash_;
  h.segments = segments_;
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out_.flush();
  if (!out_) {
    out_.close();
    std::error_code ec;
    fs::remove(tmp_, ec);
    throw InputError("cannot finalize spill store " + tmp_);
  }
  out_.close();
  std::error_code ec;
  fs::rename(tmp_, path_, ec);
  if (ec) {
    fs::remove(tmp_, ec);
    throw InputError("cannot move spill store into place at " + path_);
  }
  finished_ = true;
}

ingest::CacheStatus SpillReader::open(const std::string& path, vid_t n,
                                      std::uint64_t piece_count,
                                      std::uint64_t plan_hash,
                                      SpillReader* out) {
  using ingest::CacheStatus;
  FileHeader h;
  try {
    ingest::MappedFile file(path);
    if (file.size() < kSpillHeaderBytes) return CacheStatus::kCorrupt;
    std::memcpy(&h, file.data(), sizeof(h));
  } catch (const InputError&) {
    return CacheStatus::kMissing;
  }
  if (h.magic != kMagic) return CacheStatus::kCorrupt;
  if (h.version != kSpillFormatVersion || h.endian != kEndianTag) {
    return CacheStatus::kStale;
  }
  if (h.n != n || h.pieces != piece_count || h.plan_hash != plan_hash) {
    return CacheStatus::kStale;
  }
  out->path_ = path;
  out->n_ = n;
  out->piece_count_ = piece_count;
  out->declared_segments_ = h.segments;
  return CacheStatus::kHit;
}

ingest::CacheStatus SpillReader::read_piece(
    std::span<const SegmentRef> segments, eid_t expect_arcs, CsrGraph* out,
    std::uint64_t* bytes_read) const {
  using ingest::CacheStatus;
  // Re-map on demand: between fetches the store costs nothing but disk.
  std::unique_ptr<ingest::MappedFile> file;
  try {
    file = std::make_unique<ingest::MappedFile>(path_);
  } catch (const InputError&) {
    return CacheStatus::kMissing;
  }
  const char* base = file->data();
  const std::uint64_t size = file->size();

  std::vector<std::span<const std::uint32_t>> runs_chunks;
  std::vector<std::span<const std::uint32_t>> value_chunks;
  runs_chunks.reserve(segments.size());
  value_chunks.reserve(segments.size());
  std::uint64_t consumed = 0;

  for (const SegmentRef& ref : segments) {
    // Bounds first — every arithmetic step checked against the *live* file
    // size, so a store truncated behind our back cannot fault the mapping.
    if (ref.offset > size || size - ref.offset < kSegmentHeaderBytes) {
      return CacheStatus::kCorrupt;
    }
    SegHeader h;
    std::memcpy(&h, base + ref.offset, sizeof(h));
    if (h.magic != kSegMagic || h.piece != ref.piece || h.runs != ref.runs ||
        h.arcs != ref.arcs) {
      return CacheStatus::kCorrupt;
    }
    const std::uint64_t payload =
        std::uint64_t(h.runs) * 8 + h.arcs * 4;
    if (size - ref.offset - kSegmentHeaderBytes < payload) {
      return CacheStatus::kCorrupt;
    }
    const char* runs_bytes = base + ref.offset + kSegmentHeaderBytes;
    const char* value_bytes = runs_bytes + std::uint64_t(h.runs) * 8;
    const auto* runs_u32 = reinterpret_cast<const std::uint32_t*>(runs_bytes);
    const auto* values_u32 =
        reinterpret_cast<const std::uint32_t*>(value_bytes);
    const std::span<const std::uint32_t> runs{runs_u32,
                                              std::size_t(h.runs) * 2};
    const std::span<const std::uint32_t> values{values_u32,
                                                std::size_t(h.arcs)};
    if (seg_payload_checksum(h, n_, runs, values) != h.checksum) {
      return CacheStatus::kCorrupt;
    }
    runs_chunks.push_back(runs);
    value_chunks.push_back(values);
    consumed += segment_bytes(h.runs, h.arcs);
  }

  if (!assemble_piece(n_, expect_arcs, runs_chunks, value_chunks, out)) {
    return CacheStatus::kCorrupt;
  }
  if (bytes_read != nullptr) *bytes_read = consumed;
  SBG_COUNTER_ADD("ooc.bytes_fetched", consumed);
  return CacheStatus::kHit;
}

ingest::CacheStatus SpillReader::scan(
    std::vector<std::vector<SegmentRef>>* dir) const {
  using ingest::CacheStatus;
  dir->assign(piece_count_, {});
  std::unique_ptr<ingest::MappedFile> file;
  try {
    file = std::make_unique<ingest::MappedFile>(path_);
  } catch (const InputError&) {
    return CacheStatus::kMissing;
  }
  const char* base = file->data();
  const std::uint64_t size = file->size();
  std::uint64_t off = kSpillHeaderBytes;
  std::uint64_t seen = 0;
  while (seen < declared_segments_) {
    if (off > size || size - off < kSegmentHeaderBytes) {
      return CacheStatus::kCorrupt;
    }
    SegHeader h;
    std::memcpy(&h, base + off, sizeof(h));
    if (h.magic != kSegMagic || h.piece >= piece_count_) {
      return CacheStatus::kCorrupt;
    }
    const std::uint64_t payload = std::uint64_t(h.runs) * 8 + h.arcs * 4;
    if (size - off - kSegmentHeaderBytes < payload) {
      return CacheStatus::kCorrupt;
    }
    const char* runs_bytes = base + off + kSegmentHeaderBytes;
    const std::span<const std::uint32_t> runs{
        reinterpret_cast<const std::uint32_t*>(runs_bytes),
        std::size_t(h.runs) * 2};
    const std::span<const std::uint32_t> values{
        reinterpret_cast<const std::uint32_t*>(runs_bytes +
                                               std::uint64_t(h.runs) * 8),
        std::size_t(h.arcs)};
    if (seg_payload_checksum(h, n_, runs, values) != h.checksum) {
      return CacheStatus::kCorrupt;
    }
    SegmentRef ref;
    ref.offset = off;
    ref.piece = h.piece;
    ref.runs = h.runs;
    ref.arcs = h.arcs;
    (*dir)[h.piece].push_back(ref);
    off += kSegmentHeaderBytes + payload;
    ++seen;
  }
  return off == size ? CacheStatus::kHit : CacheStatus::kCorrupt;
}

bool assemble_piece(
    vid_t n, eid_t expect_arcs,
    std::span<const std::span<const std::uint32_t>> runs_chunks,
    std::span<const std::span<const std::uint32_t>> value_chunks,
    CsrGraph* out) {
  if (runs_chunks.size() != value_chunks.size()) return false;

  // Pass 1: scatter run counts into a zeroed degree array, checking order
  // and ranges. Vertices ascend across the concatenated chunks, so the
  // payloads are already in canonical CSR order.
  EidBuffer offsets(std::size_t(n) + 1);
  std::memset(offsets.data(), 0, offsets.size() * sizeof(eid_t));
  std::uint64_t total_arcs = 0;
  std::int64_t prev_vertex = -1;
  for (std::size_t c = 0; c < runs_chunks.size(); ++c) {
    const auto runs = runs_chunks[c];
    if (runs.size() % 2 != 0) return false;
    std::uint64_t chunk_arcs = 0;
    for (std::size_t i = 0; i < runs.size(); i += 2) {
      const std::uint32_t v = runs[i];
      const std::uint32_t cnt = runs[i + 1];
      if (v >= n || cnt == 0) return false;
      if (std::int64_t(v) <= prev_vertex) return false;
      prev_vertex = v;
      offsets[std::size_t(v)] = cnt;
      chunk_arcs += cnt;
    }
    if (chunk_arcs != value_chunks[c].size()) return false;
    total_arcs += chunk_arcs;
  }
  if (total_arcs != expect_arcs) return false;

  // Counts live at offsets[v] with offsets[n] == 0; the exclusive prefix
  // turns that directly into the final offsets array (offsets[n] = total).
  (void)exclusive_prefix_sum(std::span<eid_t>(offsets));

  VidBuffer adj(total_arcs);
  std::size_t cursor = 0;
  for (const auto values : value_chunks) {
    std::memcpy(adj.data() + cursor, values.data(), values.size_bytes());
    cursor += values.size();
  }

  try {
    *out = CsrGraph(std::move(offsets), std::move(adj));
  } catch (const std::logic_error&) {
    return false;
  }
  return true;
}

}  // namespace sbg::ooc
