// sbg::ooc — memory-budgeted out-of-core piece scheduling.
//
// Treats one decomposition run as a sequence of subgraph-piece jobs with
// estimated working sets and executes it under an explicit fast-memory
// budget (SBG_MEM_BUDGET): pieces are extracted in a single streaming pass
// over the source, parked in a piece-granular spill store (spill.hpp), and
// rebuilt on demand by a prefetch thread that overlaps the fetch of piece
// N+1 with the solve of piece N. The source itself may be file-backed
// (ingest::MappedCsr), so neither the input CSR nor the piece set ever has
// to fit on the heap at once.
//
// Decomposition: recursive co-partition leveling. Level ℓ hashes every
// vertex into k classes with a per-level salt; an arc belongs to the first
// level where its endpoints land in the same class (that class is its
// piece), and arcs that separate at every level form one residual piece.
// Expected residual mass shrinks geometrically, (1-1/k)^levels of the
// arcs, so the piece working sets can be driven under any budget by adding
// levels. The DEGk family additionally requires both endpoints to have
// degree <= threshold at level 0 — the paper's DEGk gate applied to the
// leveling.
//
// Correctness: pieces partition the arc set, every piece lives in the
// global vertex-id space, and pieces are solved strictly in schedule order
// against one shared mate array. Each extend call is maximal on its piece
// among still-unmatched vertices, so the union is maximal on G; and
// because gm/lmax extends are component-local and deterministic, the
// result is a pure function of the plan — byte-identical whether pieces
// came from memory, from the spill store, or through eviction/refetch
// cycles. That is the property the bench verifies by hashing.
//
// Only maximal matching is offered: MIS and coloring extenders are NOT
// composable over co-partition pieces (a vertex isolated in its piece
// joins the independent set unconditionally and conflicts with a later
// piece's arcs), see DESIGN.md §12.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "ingest/cache.hpp"
#include "ooc/estimate.hpp"
#include "parallel/cancel.hpp"

namespace sbg::ooc {

/// Which co-partition family drives the leveling (RAND: hash only; DEGk:
/// hash + degree gate at level 0).
enum class PieceFamily { kRand, kDegk };

/// Which extender solves the pieces.
enum class Engine { kGM, kLMAX };

/// A borrowed view of the source CSR arrays. The ooc pipeline only ever
/// streams over these spans, so the backing storage can be a resident
/// CsrGraph or a mapped .sbgc payload — the caller keeps it alive.
struct CsrSource {
  std::span<const eid_t> offsets;
  std::span<const vid_t> adjacency;

  vid_t num_vertices() const {
    return static_cast<vid_t>(offsets.empty() ? 0 : offsets.size() - 1);
  }
  eid_t num_arcs() const { return adjacency.size(); }

  static CsrSource from_graph(const CsrGraph& g) {
    return {g.offsets(), g.adjacency()};
  }
  static CsrSource from_mapped(const ingest::MappedCsr& m) {
    return {m.offsets(), m.adjacency()};
  }
};

struct PlanOptions {
  Workload workload = Workload::kMM;
  PieceFamily family = PieceFamily::kRand;
  Engine engine = Engine::kGM;
  std::uint64_t seed = 1;
  /// Fast-memory budget in bytes; 0 = unlimited (in-core reference mode).
  std::uint64_t mem_budget = 0;
  /// Classes per level; 0 = auto from the budget. Clamped to [2, 64].
  vid_t k = 0;
  /// Co-partition levels; 0 = auto from the budget. Clamped so that
  /// k * levels <= 255 (piece ids must fit the extraction memo byte).
  std::uint32_t levels = 0;
  /// DEGk level-0 degree gate.
  vid_t degk_threshold = 8;
  /// Arcs per extraction range; 0 = auto (bounds the sweep's staging
  /// memory: one classification byte plus ~12 staged bytes per range arc).
  eid_t chunk_arcs = 0;
};

/// One scheduled piece. `id` is also its schedule position: level-major,
/// slot-ascending, residual last.
struct PieceDesc {
  std::uint32_t id = 0;
  std::uint32_t level = 0;     ///< == plan levels for the residual piece
  std::uint32_t slot = 0;      ///< 0 for the residual piece
  vid_t live = 0;              ///< vertices with >= 1 arc in the piece
  eid_t arcs = 0;
  std::uint32_t segments = 0;  ///< spill segments the extractor will emit
  std::uint64_t csr_bytes = 0;    ///< rebuilt sub-CSR footprint
  std::uint64_t store_bytes = 0;  ///< exact spill container bytes
};

/// The cost model + schedule one classify pass produces. Every count is
/// exact (measured on the source, not estimated), so run_ooc's observed
/// traffic must match store_bytes modulo refetches — the invariant the
/// bench checks at 25%.
struct Plan {
  PlanOptions options;  ///< resolved: k/levels/chunk_arcs filled in
  vid_t n = 0;
  eid_t arcs = 0;
  std::vector<PieceDesc> pieces;
  /// Extraction range boundaries (vertex ids, ranges.front()==0,
  /// ranges.back()==n). Shared by the plan's segment counts and the
  /// executor's sweep, so predictions line up with emissions.
  std::vector<vid_t> ranges;
  std::uint64_t solution_bytes = 0;      ///< shared mate array
  std::uint64_t scratch_bytes = 0;       ///< solver scratch model
  std::uint64_t total_working_set = 0;   ///< sum piece CSRs + shared arrays
  std::uint64_t max_piece_bytes = 0;
  std::uint64_t spill_bytes = 0;         ///< total store bytes (write == read)
  /// Identity of (family, k, levels, threshold, seed, n): what a spill
  /// store must have been written under to be fetched against this plan.
  std::uint64_t plan_hash = 0;

  std::string to_json() const;
};

/// Classify the source once and build the schedule + cost model. Resolves
/// k/levels/chunk_arcs from the budget when left 0. Throws InputError for
/// non-MM workloads or unsatisfiable shapes (k*levels > 255 after
/// clamping).
Plan plan_ooc(const CsrSource& src, const PlanOptions& opt);

enum class RunStatus { kOk, kCancelled, kFailed };

struct RunOptions {
  /// Overlap the fetch of piece N+1 with the solve of piece N on a
  /// dedicated prefetch thread. Off = stop-and-fetch (the bench baseline).
  bool overlap = true;
  /// Ready pieces the prefetcher may hold beyond the one being solved.
  std::uint32_t prefetch_depth = 1;
  /// Directory for the spill store ("" = $SBG_OOC_DIR, then $TMPDIR, then
  /// "."). Budgeted runs only; in-core runs keep pieces in memory.
  std::string spill_dir;
  /// Keep the spill store after the run (debugging; default deletes it).
  bool keep_spill = false;
  /// Observed by the prefetch thread and polled between pieces; the solve
  /// itself polls the calling thread's installed token per round as usual.
  CancelToken* cancel = nullptr;
};

/// Per-piece execution record, paired with the plan's prediction so the
/// cost model can be validated piece by piece.
struct PieceStats {
  std::uint32_t id = 0;
  eid_t arcs = 0;
  vid_t rounds = 0;
  std::uint64_t predicted_store_bytes = 0;  ///< plan's write+read prediction
  std::uint64_t actual_store_bytes = 0;     ///< measured write+read traffic
  double fetch_seconds = 0.0;
  double solve_seconds = 0.0;
  std::uint32_t fetches = 0;     ///< rebuilds (1 + refetches after eviction)
  std::uint32_t reextracts = 0;  ///< corrupt-store recoveries from source
  bool prefetched = false;       ///< piece was ready when the solver arrived
};

struct OocResult {
  RunStatus status = RunStatus::kOk;
  std::string error;
  std::vector<vid_t> mate;
  eid_t cardinality = 0;
  vid_t rounds = 0;
  std::uint64_t result_hash = 0;  ///< hash of the mate bytes, seed-seeded
  double total_seconds = 0.0;
  double extract_seconds = 0.0;
  double solve_seconds = 0.0;
  double fetch_stall_seconds = 0.0;  ///< solver time spent waiting on pieces
  std::uint64_t budget_bytes = 0;
  std::uint64_t peak_resident_bytes = 0;  ///< pieces + shared arrays + scratch
  std::uint64_t bytes_spilled = 0;
  std::uint64_t bytes_fetched = 0;
  std::uint64_t predicted_bytes_moved = 0;
  std::uint64_t actual_bytes_moved = 0;
  std::uint32_t evictions = 0;
  std::uint32_t reextracts = 0;
  std::uint32_t prefetch_hits = 0;
  std::uint32_t prefetch_stalls = 0;
  std::vector<PieceStats> pieces;

  std::string to_json() const;
};

/// Execute `plan` against `src`: extract (spilling when budgeted), then
/// solve pieces in schedule order under the plan's budget with LRU
/// eviction and optional prefetch overlap. Returns kCancelled when the
/// installed CancelToken (or `opt.cancel`) fires, kFailed on IO errors;
/// never throws for those. JobCancelled raised by a caller-installed token
/// is re-thrown after cleanup so sched's batch engine records it normally.
OocResult run_ooc(const CsrSource& src, const Plan& plan,
                  const RunOptions& opt = {});

/// Extract one piece directly from the source (two-pass count + scatter
/// over the whole arc set). The recovery path for corrupt spill segments,
/// and the oracle the spill tests compare rebuilt pieces against.
CsrGraph extract_single_piece(const CsrSource& src, const Plan& plan,
                              std::uint32_t piece);

/// The byte budget the process should run under: SBG_MEM_BUDGET with an
/// optional K/M/G suffix, 0 (unlimited) when unset or empty.
std::uint64_t mem_budget_from_env();

}  // namespace sbg::ooc
