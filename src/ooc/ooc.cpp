#include "ooc/ooc.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "core/env.hpp"
#include "matching/matching.hpp"
#include "obs/obs.hpp"
#include "ooc/spill.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/rng.hpp"
#include "parallel/scratch.hpp"
#include "parallel/timer.hpp"

namespace sbg::ooc {

namespace {

namespace fs = std::filesystem;

/// Piece ids must fit the extraction memo byte (uint8 per arc), so
/// k * levels is capped at 255 (residual id == k * levels).
constexpr std::uint32_t kMaxPieceId = 255;
constexpr vid_t kMaxK = 64;
constexpr std::uint32_t kMaxLevels = 24;

/// The leveling hash: class of vertex v at `level`, a pure function of
/// (seed, level, v) — deterministic in thread count like every sbg draw.
struct Classifier {
  PieceFamily family = PieceFamily::kRand;
  vid_t k = 2;
  std::uint32_t levels = 1;
  vid_t degk_threshold = 8;
  std::uint64_t seed = 1;
  std::span<const eid_t> offsets;

  std::uint32_t residual() const { return levels * k; }
  std::uint32_t pieces() const { return residual() + 1; }

  vid_t part(std::uint32_t level, vid_t v) const {
    return static_cast<vid_t>(
        RandomStream(seed, 0xC0DECA11u + level).below(v, k));
  }

  vid_t degree(vid_t v) const {
    return static_cast<vid_t>(offsets[v + 1] - offsets[v]);
  }

  /// Piece of arc (u, v): first level whose classes agree (and, for DEGk
  /// at level 0, whose endpoint degrees pass the gate); residual when the
  /// endpoints separate everywhere. Symmetric in (u, v), so both copies of
  /// an undirected edge land in one piece.
  std::uint32_t classify(vid_t u, vid_t v) const {
    for (std::uint32_t l = 0; l < levels; ++l) {
      const vid_t pu = part(l, u);
      if (pu != part(l, v)) continue;
      if (family == PieceFamily::kDegk && l == 0 &&
          (degree(u) > degk_threshold || degree(v) > degk_threshold)) {
        continue;
      }
      return l * k + pu;
    }
    return residual();
  }
};

Classifier make_classifier(const Plan& plan, const CsrSource& src) {
  Classifier c;
  c.family = plan.options.family;
  c.k = plan.options.k;
  c.levels = plan.options.levels;
  c.degk_threshold = plan.options.degk_threshold;
  c.seed = plan.options.seed;
  c.offsets = src.offsets;  // the DEGk gate reads degrees from here
  return c;
}

std::uint64_t fold_plan_hash(const PlanOptions& o, vid_t n, eid_t arcs) {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(o.family) ^
                          (static_cast<std::uint64_t>(o.engine) << 8));
  h = mix64(h ^ o.seed);
  h = mix64(h ^ o.k);
  h = mix64(h ^ o.levels);
  h = mix64(h ^ o.degk_threshold);
  h = mix64(h ^ n);
  return mix64(h ^ arcs);
}

/// Extend the shared mate array over one piece. Seeded per level so the
/// LMAX engine draws fresh weights per phase, like mm_rand's two phases.
vid_t extend_piece(Engine engine, const CsrGraph& piece,
                   std::vector<vid_t>& mate, std::uint64_t seed) {
  return engine == Engine::kGM ? gm_extend(piece, mate)
                               : lmax_extend(piece, mate, seed);
}

std::uint64_t parse_bytes_env(const char* name) {
  // Shared strict parser: K/M/G suffixes, throws InputError on garbage or
  // 64-bit overflow instead of silently wrapping the budget.
  return env::bytes(name, 0);
}

// ----------------------------------------------------------- piece store --

/// Where extracted pieces wait between the sweep and their solve. The two
/// implementations share the segment payloads and the assemble path, so a
/// piece's rebuilt bytes are identical whether it waited on disk or on the
/// heap — the hash-identity the bench checks rides on this.
class PieceStore {
 public:
  virtual ~PieceStore() = default;
  virtual void append(std::uint32_t piece, vid_t v_begin, vid_t v_end,
                      std::span<const std::uint32_t> runs,
                      std::span<const std::uint32_t> values) = 0;
  /// Extraction done; fetches may begin.
  virtual void seal() = 0;
  virtual ingest::CacheStatus fetch(std::uint32_t piece, eid_t expect_arcs,
                                    CsrGraph* out,
                                    std::uint64_t* bytes_read) = 0;
  virtual std::uint64_t bytes_spilled() const = 0;
  /// Container bytes one piece occupies in the store (the write-side
  /// traffic, measured from what was actually emitted).
  virtual std::uint64_t piece_bytes(std::uint32_t piece) const = 0;
  /// Resident heap bytes the store itself holds (0 for the disk store).
  virtual std::uint64_t heap_bytes() const = 0;
};

class MemoryStore final : public PieceStore {
 public:
  MemoryStore(vid_t n, std::uint32_t pieces)
      : n_(n), runs_(pieces), values_(pieces), piece_bytes_(pieces, 0) {}

  void append(std::uint32_t piece, vid_t, vid_t,
              std::span<const std::uint32_t> runs,
              std::span<const std::uint32_t> values) override {
    runs_[piece].emplace_back(runs.begin(), runs.end());
    values_[piece].emplace_back(values.begin(), values.end());
    heap_bytes_ += (runs.size() + values.size()) * 4;
    piece_bytes_[piece] += (runs.size() + values.size()) * 4;
  }

  void seal() override {}

  ingest::CacheStatus fetch(std::uint32_t piece, eid_t expect_arcs,
                            CsrGraph* out,
                            std::uint64_t* bytes_read) override {
    std::vector<std::span<const std::uint32_t>> rc, vc;
    std::uint64_t moved = 0;
    for (const auto& r : runs_[piece]) rc.emplace_back(r);
    for (const auto& v : values_[piece]) {
      vc.emplace_back(v);
      moved += v.size() * 4;
    }
    for (const auto& r : runs_[piece]) moved += r.size() * 4;
    if (!assemble_piece(n_, expect_arcs, rc, vc, out)) {
      return ingest::CacheStatus::kCorrupt;
    }
    if (bytes_read != nullptr) *bytes_read = moved;
    return ingest::CacheStatus::kHit;
  }

  std::uint64_t bytes_spilled() const override { return 0; }
  std::uint64_t piece_bytes(std::uint32_t piece) const override {
    return piece < piece_bytes_.size() ? piece_bytes_[piece] : 0;
  }
  std::uint64_t heap_bytes() const override { return heap_bytes_; }

 private:
  vid_t n_;
  std::vector<std::vector<std::vector<std::uint32_t>>> runs_;
  std::vector<std::vector<std::vector<std::uint32_t>>> values_;
  std::vector<std::uint64_t> piece_bytes_;
  std::uint64_t heap_bytes_ = 0;
};

class SpillStore final : public PieceStore {
 public:
  SpillStore(std::string path, vid_t n, std::uint32_t pieces,
             std::uint64_t plan_hash, bool keep)
      : n_(n),
        pieces_(pieces),
        plan_hash_(plan_hash),
        keep_(keep),
        writer_(std::make_unique<SpillWriter>(std::move(path), n, pieces,
                                              plan_hash)),
        dir_(pieces) {}

  ~SpillStore() override {
    if (keep_ || path_.empty()) return;
    std::error_code ec;
    fs::remove(path_, ec);
  }

  void append(std::uint32_t piece, vid_t v_begin, vid_t v_end,
              std::span<const std::uint32_t> runs,
              std::span<const std::uint32_t> values) override {
    dir_[piece].push_back(writer_->append(piece, v_begin, v_end, runs,
                                          values));
  }

  void seal() override {
    bytes_spilled_ = writer_->bytes_written() - kSpillHeaderBytes;
    path_ = writer_->path();
    writer_->finish();
    writer_.reset();
    const ingest::CacheStatus st =
        SpillReader::open(path_, n_, pieces_, plan_hash_, &reader_);
    if (st != ingest::CacheStatus::kHit) {
      throw InputError("spill store failed validation after install: " +
                       path_);
    }
  }

  ingest::CacheStatus fetch(std::uint32_t piece, eid_t expect_arcs,
                            CsrGraph* out,
                            std::uint64_t* bytes_read) override {
    return reader_.read_piece(dir_[piece], expect_arcs, out, bytes_read);
  }

  std::uint64_t bytes_spilled() const override { return bytes_spilled_; }
  std::uint64_t piece_bytes(std::uint32_t piece) const override {
    std::uint64_t b = 0;
    for (const SegmentRef& ref : dir_[piece]) {
      b += segment_bytes(ref.runs, ref.arcs);
    }
    return b;
  }
  std::uint64_t heap_bytes() const override { return 0; }

 private:
  vid_t n_;
  std::uint32_t pieces_;
  std::uint64_t plan_hash_;
  bool keep_;
  std::unique_ptr<SpillWriter> writer_;
  SpillReader reader_;
  std::string path_;
  std::vector<std::vector<SegmentRef>> dir_;
  std::uint64_t bytes_spilled_ = 0;
};

std::string spill_store_path(const std::string& dir_opt) {
  std::string dir = dir_opt;
  if (dir.empty()) {
    const char* env = std::getenv("SBG_OOC_DIR");
    if (env != nullptr && *env != '\0') dir = env;
  }
  if (dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    dir = (tmp != nullptr && *tmp != '\0') ? tmp : ".";
  }
  // The unique temp suffix already separates writers; the final name only
  // needs to be collision-free per run, which the same tag machinery gives.
  const std::string base = (fs::path(dir) / "sbg_ooc_spill.sbgc").string();
  const std::string tagged = ingest::unique_temp_path(base);
  // unique_temp_path appends ".tmp.<pid>.<hex>"; keep the uniqueness but
  // restore the .sbgc suffix so the artifact is recognizable.
  return tagged + ".sbgc";
}

// ----------------------------------------------------------- piece cache --

/// Ready pieces, keyed by schedule position, under a byte budget. The
/// prefetch thread puts, the solver takes/erases; eviction drops the
/// least-recently-staged unpinned piece (it can be re-fetched from the
/// store). All methods are thread-safe.
class PieceCache {
 public:
  /// `max_staged` bounds how many pieces the prefetcher may have resident
  /// at once (the piece being solved + prefetch_depth ahead); the byte
  /// budget bounds their total size. The solver's inline fetches bypass
  /// both — forward progress always wins over the soft budget.
  PieceCache(std::uint64_t budget, std::size_t max_staged)
      : budget_(budget), max_staged_(max_staged) {}

  /// Block until `bytes` more would fit and a staging slot is free (or the
  /// cache is empty — a piece larger than the whole budget must still make
  /// progress, alone) or `stop` goes true. Returns false on stop.
  bool wait_admit(std::uint64_t bytes, const std::atomic<bool>& stop) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return stop.load(std::memory_order_relaxed) ||
             (resident_ + bytes <= budget_ &&
              entries_.size() < max_staged_) ||
             entries_.empty();
    });
    return !stop.load(std::memory_order_relaxed);
  }

  /// Exactly one thread may build a given piece at a time (they would race
  /// on its stats record otherwise), so both fetchers must win the claim
  /// first. Eviction releases the claim — an evicted piece is claimable
  /// again for its refetch.
  bool try_claim(std::uint32_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    return claimed_.insert(id).second;
  }

  /// The prefetcher's claim: atomically wins the piece AND marks it
  /// in flight, so the solver's await() can distinguish "coming, wait"
  /// from "nobody has it, fetch inline".
  bool begin_prefetch(std::uint32_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!claimed_.insert(id).second) return false;
    fetching_ = static_cast<std::int64_t>(id);
    return true;
  }

  void put(std::uint32_t id, CsrGraph g, bool pinned = false) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry e;
    e.bytes = g.heap_bytes();
    e.graph = std::make_shared<CsrGraph>(std::move(g));
    e.stamp = ++clock_;
    e.pinned = pinned;
    resident_ += e.bytes;
    entries_[id] = std::move(e);
    if (fetching_ == static_cast<std::int64_t>(id)) fetching_ = -1;
    evict_locked(id);
    peak_ = std::max(peak_, resident_);
    SBG_GAUGE_SET("ooc.resident_piece_bytes", resident_);
    cv_.notify_all();
  }

  /// Block while the prefetcher has `id` in flight; returns the entry if
  /// it lands (pinning it), null when the caller must fetch inline.
  std::shared_ptr<const CsrGraph> await(std::uint32_t id,
                                        const std::atomic<bool>& stop) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return stop.load(std::memory_order_relaxed) ||
             entries_.count(id) != 0 ||
             fetching_ != static_cast<std::int64_t>(id);
    });
    auto it = entries_.find(id);
    if (it == entries_.end()) return nullptr;
    it->second.pinned = true;
    it->second.stamp = ++clock_;
    return it->second.graph;
  }

  /// The solver's lookup. Pins the entry (eviction skips it) and reports
  /// whether the prefetcher had it staged.
  std::shared_ptr<const CsrGraph> take(std::uint32_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return nullptr;
    it->second.pinned = true;
    it->second.stamp = ++clock_;
    return it->second.graph;
  }

  /// Solved pieces leave for good.
  void erase(std::uint32_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return;
    resident_ -= it->second.bytes;
    entries_.erase(it);
    SBG_GAUGE_SET("ooc.resident_piece_bytes", resident_);
    cv_.notify_all();
  }

  void wake() { cv_.notify_all(); }

  /// Tighten (or relax) the admission budget mid-run — the estimator's
  /// one-shot scratch calibration lands here.
  void set_budget(std::uint64_t budget) {
    std::lock_guard<std::mutex> lock(mu_);
    budget_ = budget;
    cv_.notify_all();
  }

  std::uint64_t peak_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }
  std::uint32_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

 private:
  struct Entry {
    std::shared_ptr<CsrGraph> graph;
    std::uint64_t bytes = 0;
    std::uint64_t stamp = 0;
    bool pinned = false;
  };

  /// Drop least-recently-staged unpinned entries (sparing `keep`) until the
  /// budget holds or nothing evictable remains.
  void evict_locked(std::uint32_t keep) {
    while (resident_ > budget_) {
      auto victim = entries_.end();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.pinned || it->first == keep) continue;
        if (victim == entries_.end() ||
            it->second.stamp < victim->second.stamp) {
          victim = it;
        }
      }
      if (victim == entries_.end()) return;
      resident_ -= victim->second.bytes;
      claimed_.erase(victim->first);  // refetchable again
      entries_.erase(victim);
      ++evictions_;
      SBG_COUNTER_ADD("ooc.evictions", 1);
      SBG_TRACE_INSTANT("ooc.evict");
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint32_t, Entry> entries_;
  std::set<std::uint32_t> claimed_;
  std::int64_t fetching_ = -1;
  std::uint64_t budget_;
  std::size_t max_staged_;
  std::uint64_t resident_ = 0;
  std::uint64_t peak_ = 0;
  std::uint64_t clock_ = 0;
  std::uint32_t evictions_ = 0;
};

/// Extraction sweep staging for one range: a classification memo byte per
/// arc plus per-piece run/value buffers. Reused across ranges.
struct SweepBuffers {
  std::vector<std::uint8_t> memo;
  std::vector<std::vector<std::uint32_t>> runs;
  std::vector<std::vector<std::uint32_t>> values;
  std::uint64_t peak_bytes = 0;

  void note_peak() {
    std::uint64_t b = memo.capacity();
    for (const auto& r : runs) b += r.capacity() * 4;
    for (const auto& v : values) b += v.capacity() * 4;
    peak_bytes = std::max(peak_bytes, b);
  }
};

/// Sentinel for a run_ooc-internal cancellation (opt.cancel fired with no
/// thread-local token installed): becomes status kCancelled, not a throw.
struct LocalCancel {};

/// One streaming pass: classify each range's arcs in parallel, then a
/// serial bucket sweep emits every piece's (vertex, count) runs + values
/// for that range into the store. Vertex ranges ascend, so each piece's
/// segments concatenate into canonical CSR order.
void extract_all(const CsrSource& src, const Plan& plan, const Classifier& c,
                 PieceStore& store, const CancelToken* cancel,
                 SweepBuffers& buf) {
  const std::uint32_t P = c.pieces();
  buf.runs.assign(P, {});
  buf.values.assign(P, {});
  const std::span<const eid_t> offsets = src.offsets;
  const std::span<const vid_t> adj = src.adjacency;

  for (std::size_t r = 0; r + 1 < plan.ranges.size(); ++r) {
    poll_cancellation();
    if (cancel != nullptr && cancel->cancel_requested()) {
      throw LocalCancel{};
    }
    const vid_t v0 = plan.ranges[r];
    const vid_t v1 = plan.ranges[r + 1];
    const eid_t a0 = offsets[v0];
    const eid_t a1 = offsets[v1];
    buf.memo.resize(a1 - a0);

    parallel_for(v1 - v0, [&](std::size_t i) {
      const vid_t u = v0 + static_cast<vid_t>(i);
      for (eid_t a = offsets[u]; a < offsets[u + 1]; ++a) {
        buf.memo[a - a0] = static_cast<std::uint8_t>(c.classify(u, adj[a]));
      }
    });

    for (vid_t u = v0; u < v1; ++u) {
      for (eid_t a = offsets[u]; a < offsets[u + 1]; ++a) {
        const std::uint8_t p = buf.memo[a - a0];
        auto& runs = buf.runs[p];
        if (runs.size() < 2 || runs[runs.size() - 2] != u) {
          runs.push_back(u);
          runs.push_back(1);
        } else {
          ++runs.back();
        }
        buf.values[p].push_back(adj[a]);
      }
    }

    buf.note_peak();
    for (std::uint32_t p = 0; p < P; ++p) {
      if (buf.values[p].empty()) continue;
      store.append(p, v0, v1, buf.runs[p], buf.values[p]);
      buf.runs[p].clear();
      buf.values[p].clear();
    }
    SBG_COUNTER_ADD("ooc.bytes_scanned", (a1 - a0) * sizeof(vid_t));
    SBG_COUNTER_ADD("ooc.pieces_ranges_swept", 1);
  }
}

}  // namespace

std::uint64_t mem_budget_from_env() {
  return parse_bytes_env("SBG_MEM_BUDGET");
}

// ------------------------------------------------------------------ plan --

Plan plan_ooc(const CsrSource& src, const PlanOptions& opt) {
  SBG_SPAN("ooc.plan");
  if (opt.workload != Workload::kMM) {
    throw InputError(
        "ooc: only the MM workload is piece-correct (see DESIGN.md §12)");
  }
  Plan plan;
  plan.options = opt;
  plan.n = src.num_vertices();
  plan.arcs = src.num_arcs();
  const vid_t n = plan.n;
  const eid_t m = plan.arcs;
  const std::uint64_t offsets_bytes = (std::uint64_t(n) + 1) * sizeof(eid_t);

  // ---- resolve k / levels from the budget ----
  PlanOptions& o = plan.options;
  // A piece should leave room for the shared arrays and a prefetched
  // sibling: target ~1/6 of the budget each.
  const std::uint64_t target =
      o.mem_budget > 0 ? std::max<std::uint64_t>(o.mem_budget / 6, 1u << 20)
                       : 0;
  if (o.k == 0) {
    if (target == 0) {
      o.k = 4;
    } else {
      // Level-0 piece ≈ offsets + 4m/k² arc bytes; solve for k.
      const double arc_room = target > offsets_bytes
                                  ? double(target - offsets_bytes)
                                  : double(1u << 20);
      o.k = static_cast<vid_t>(
          std::ceil(std::sqrt(4.0 * double(m) / arc_room)));
    }
    o.k = std::clamp<vid_t>(o.k, 2, kMaxK);
  }
  o.k = std::clamp<vid_t>(o.k, 2, kMaxK);
  if (o.levels == 0) {
    if (target == 0) {
      o.levels = 3;
    } else {
      // Smallest L whose expected residual (m(1-1/k)^L arcs) fits.
      const double shrink = 1.0 - 1.0 / double(o.k);
      double resid = 4.0 * double(m);
      std::uint32_t L = 1;
      resid *= shrink;
      while (L < kMaxLevels &&
             resid + double(offsets_bytes) > double(target)) {
        resid *= shrink;
        ++L;
      }
      o.levels = L;
    }
  }
  o.levels = std::clamp<std::uint32_t>(o.levels, 1, kMaxLevels);
  while (std::uint64_t(o.k) * o.levels > kMaxPieceId && o.levels > 1) {
    --o.levels;
  }
  if (std::uint64_t(o.k) * o.levels > kMaxPieceId) {
    throw InputError("ooc: k * levels must be <= 255");
  }
  if (o.chunk_arcs == 0) {
    // The sweep stages ~13 bytes per range arc (memo + runs + values);
    // keep that around a quarter of the budget.
    o.chunk_arcs =
        o.mem_budget > 0
            ? std::clamp<eid_t>(o.mem_budget / 52, 1u << 16, 1u << 28)
            : std::max<eid_t>(m, 1u << 16);
  }

  // ---- extraction ranges: contiguous vertex intervals of ~chunk_arcs ----
  plan.ranges.push_back(0);
  {
    vid_t v = 0;
    while (v < n) {
      const eid_t limit = src.offsets[v] + o.chunk_arcs;
      vid_t hi = v + 1;  // always advance, even past a super-heavy vertex
      while (hi < n && src.offsets[hi + 1] <= limit) ++hi;
      plan.ranges.push_back(hi);
      v = hi;
    }
  }
  const std::size_t R = plan.ranges.size() - 1;

  // ---- the classify pass: exact per-piece arcs / live / segments ----
  const Classifier c = make_classifier(plan, src);
  const std::uint32_t P = c.pieces();
  std::vector<std::uint64_t> arcs_per(P, 0), live_per(P, 0);
  std::vector<std::uint8_t> seg_presence(std::size_t(P) * R, 0);

  // Range index per vertex via the boundaries (monotone scan per block).
  std::mutex merge_mu;
  parallel_blocks(n, [&](std::size_t lo, std::size_t hi, std::size_t) {
    if (lo >= hi) return;
    std::vector<std::uint64_t> l_arcs(P, 0), l_live(P, 0);
    std::vector<std::uint8_t> l_seg(std::size_t(P) * R, 0);
    // Locate the range of the first vertex, then walk forward.
    std::size_t r = std::size_t(
        std::upper_bound(plan.ranges.begin(), plan.ranges.end(), vid_t(lo)) -
        plan.ranges.begin() - 1);
    std::uint64_t touched[4];
    for (vid_t u = vid_t(lo); u < vid_t(hi); ++u) {
      while (plan.ranges[r + 1] <= u) ++r;
      touched[0] = touched[1] = touched[2] = touched[3] = 0;
      for (eid_t a = src.offsets[u]; a < src.offsets[u + 1]; ++a) {
        const std::uint32_t p = c.classify(u, src.adjacency[a]);
        ++l_arcs[p];
        touched[p >> 6] |= 1ull << (p & 63);
      }
      for (std::uint32_t w = 0; w < 4; ++w) {
        std::uint64_t bits = touched[w];
        while (bits != 0) {
          const std::uint32_t p = w * 64 + std::uint32_t(std::countr_zero(bits));
          bits &= bits - 1;
          ++l_live[p];
          l_seg[std::size_t(p) * R + r] = 1;
        }
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    for (std::uint32_t p = 0; p < P; ++p) {
      arcs_per[p] += l_arcs[p];
      live_per[p] += l_live[p];
    }
    for (std::size_t i = 0; i < l_seg.size(); ++i) {
      seg_presence[i] |= l_seg[i];
    }
  });

  // ---- assemble descriptors in schedule order ----
  plan.plan_hash = fold_plan_hash(o, n, m);
  plan.solution_bytes = solution_bytes(n);
  plan.scratch_bytes = default_scratch_model(o.workload).bytes(n);
  plan.pieces.resize(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    PieceDesc& d = plan.pieces[p];
    d.id = p;
    d.level = p / o.k;  // residual (p == k*levels) lands on level == levels
    d.slot = p == c.residual() ? 0 : p % o.k;
    d.arcs = arcs_per[p];
    d.live = static_cast<vid_t>(live_per[p]);
    std::uint32_t segs = 0;
    for (std::size_t r = 0; r < R; ++r) {
      segs += seg_presence[std::size_t(p) * R + r];
    }
    d.segments = segs;
    d.csr_bytes = piece_csr_bytes(n, d.arcs);
    d.store_bytes = std::uint64_t(segs) * kSegmentHeaderBytes +
                    std::uint64_t(d.live) * 8 + std::uint64_t(d.arcs) * 4;
    plan.total_working_set += d.csr_bytes;
    plan.max_piece_bytes = std::max(plan.max_piece_bytes, d.csr_bytes);
    plan.spill_bytes += d.store_bytes;
  }
  plan.total_working_set += plan.solution_bytes + plan.scratch_bytes;
  SBG_COUNTER_ADD("ooc.plans", 1);
  SBG_GAUGE_SET("ooc.plan_pieces", P);
  SBG_GAUGE_SET("ooc.plan_working_set_bytes", plan.total_working_set);
  return plan;
}

CsrGraph extract_single_piece(const CsrSource& src, const Plan& plan,
                              std::uint32_t piece) {
  const Classifier c = make_classifier(plan, src);
  const vid_t n = src.num_vertices();
  EidBuffer counts(std::size_t(n) + 1);
  std::memset(counts.data(), 0, counts.size() * sizeof(eid_t));
  parallel_for(n, [&](std::size_t u) {
    eid_t cnt = 0;
    for (eid_t a = src.offsets[u]; a < src.offsets[u + 1]; ++a) {
      cnt += c.classify(vid_t(u), src.adjacency[a]) == piece;
    }
    counts[u] = cnt;
  });
  const eid_t total = exclusive_prefix_sum(std::span<eid_t>(counts));
  VidBuffer adj(total);
  // counts now holds per-vertex piece offsets; scatter in a second pass.
  parallel_for(n, [&](std::size_t u) {
    eid_t cursor = counts[u];
    for (eid_t a = src.offsets[u]; a < src.offsets[u + 1]; ++a) {
      const vid_t v = src.adjacency[a];
      if (c.classify(vid_t(u), v) == piece) adj[cursor++] = v;
    }
  });
  SBG_COUNTER_ADD("ooc.bytes_scanned", src.adjacency.size_bytes());
  return CsrGraph(std::move(counts), std::move(adj));
}

// ------------------------------------------------------------------- run --

OocResult run_ooc(const CsrSource& src, const Plan& plan,
                  const RunOptions& opt) {
  SBG_SPAN("ooc.run");
  Timer total;
  OocResult res;
  res.budget_bytes = plan.options.mem_budget;
  const vid_t n = plan.n;
  const std::uint32_t P = static_cast<std::uint32_t>(plan.pieces.size());
  const bool budgeted = plan.options.mem_budget > 0;
  const Classifier cls = make_classifier(plan, src);
  SBG_GAUGE_SET("ooc.budget_bytes", res.budget_bytes);

  // Predictions come straight from the plan: the store is written once and
  // read once, so predicted traffic is 2x container bytes (the in-memory
  // store moves payload but no headers).
  res.pieces.resize(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    const PieceDesc& d = plan.pieces[p];
    res.pieces[p].id = p;
    res.pieces[p].arcs = d.arcs;
    const std::uint64_t container =
        budgeted ? d.store_bytes
                 : std::uint64_t(d.live) * 8 + std::uint64_t(d.arcs) * 4;
    res.pieces[p].predicted_store_bytes = 2 * container;
    res.predicted_bytes_moved += 2 * container;
  }

  ScratchModel scratch_model = default_scratch_model(plan.options.workload);
  std::unique_ptr<PieceStore> store;
  SweepBuffers sweep;
  try {
    if (budgeted) {
      store = std::make_unique<SpillStore>(spill_store_path(opt.spill_dir), n,
                                           P, plan.plan_hash, opt.keep_spill);
    } else {
      store = std::make_unique<MemoryStore>(n, P);
    }

    {
      SBG_SPAN("ooc.extract");
      Timer t;
      extract_all(src, plan, cls, *store, opt.cancel, sweep);
      store->seal();
      res.extract_seconds = t.seconds();
    }
    res.bytes_spilled = store->bytes_spilled();
    // Write-side traffic, measured from what the store actually emitted.
    for (std::uint32_t p = 0; p < P; ++p) {
      res.pieces[p].actual_store_bytes = store->piece_bytes(p);
    }

    // ---- solve phase ----
    res.mate.assign(n, kNoVertex);
    const std::uint64_t shared =
        plan.solution_bytes + scratch_model.bytes(n);
    const std::uint64_t piece_budget =
        !budgeted ? std::numeric_limits<std::uint64_t>::max()
        : plan.options.mem_budget > shared
            ? plan.options.mem_budget - shared
            : 0;
    if (budgeted && plan.max_piece_bytes > piece_budget) {
      // Soft budget: an oversized piece still runs (alone); flag it.
      SBG_GAUGE_SET("ooc.budget_overrun_bytes",
                    plan.max_piece_bytes - piece_budget);
    }
    PieceCache cache(piece_budget,
                     std::size_t(1) + std::max<std::uint32_t>(
                                          opt.prefetch_depth, 1));
    std::atomic<bool> stop{false};
    std::string prefetch_error;
    std::mutex prefetch_error_mu;

    // Fetch with corrupt-store recovery: a bad segment degrades to a
    // re-extraction from the source, never a crash or a short CSR.
    const auto fetch_piece = [&](std::uint32_t p, PieceStats& st) {
      SBG_SPAN("ooc.fetch");
      CsrGraph g;
      std::uint64_t bytes = 0;
      const ingest::CacheStatus s =
          store->fetch(p, plan.pieces[p].arcs, &g, &bytes);
      if (s != ingest::CacheStatus::kHit) {
        SBG_COUNTER_ADD("ooc.reextracts", 1);
        ++st.reextracts;
        g = extract_single_piece(src, plan, p);
        bytes = src.adjacency.size_bytes();
      }
      ++st.fetches;
      st.actual_store_bytes += bytes;
      return g;
    };

    {
      std::thread prefetcher;
      if (opt.overlap && P > 0) {
        prefetcher = std::thread([&] {
          SBG_TRACE_THREAD_NAME("ooc-prefetch");
          try {
            for (std::uint32_t p = 0; p < P; ++p) {
              if (plan.pieces[p].arcs == 0) continue;
              if (!cache.wait_admit(plan.pieces[p].csr_bytes, stop)) return;
              if (opt.cancel != nullptr && opt.cancel->cancel_requested()) {
                return;
              }
              // The solver got there first (inline fetch): nothing to do.
              if (!cache.begin_prefetch(p)) continue;
              cache.put(p, fetch_piece(p, res.pieces[p]));
            }
          } catch (const std::exception& e) {
            std::lock_guard<std::mutex> lock(prefetch_error_mu);
            prefetch_error = e.what();
            stop.store(true, std::memory_order_relaxed);
            cache.wake();
          }
        });
      }
      // Joins the prefetcher on every exit path (including throws below).
      struct Joiner {
        std::thread& t;
        std::atomic<bool>& stop;
        PieceCache& cache;
        ~Joiner() {
          stop.store(true, std::memory_order_relaxed);
          cache.wake();
          if (t.joinable()) t.join();
        }
      } joiner{prefetcher, stop, cache};

      SBG_SPAN("ooc.solve");
      Timer solve_t;
      bool calibrated = false;
      for (std::uint32_t p = 0; p < P; ++p) {
        if (plan.pieces[p].arcs == 0) continue;
        poll_cancellation();
        if (opt.cancel != nullptr && opt.cancel->cancel_requested()) {
          throw LocalCancel{};
        }
        {
          std::lock_guard<std::mutex> lock(prefetch_error_mu);
          if (!prefetch_error.empty()) {
            throw InputError("ooc prefetch failed: " + prefetch_error);
          }
        }
        PieceStats& st = res.pieces[p];
        Timer fetch_t;
        std::shared_ptr<const CsrGraph> piece = cache.take(p);
        if (piece != nullptr) {
          st.prefetched = true;
          ++res.prefetch_hits;
          SBG_COUNTER_ADD("ooc.prefetch_hits", 1);
        } else {
          // Not staged: the stall the overlap mode is built to hide.
          // Either win the claim and fetch inline (pinned, so a concurrent
          // prefetch put cannot evict it before the solve), or the
          // prefetcher has it in flight — wait rather than fetch twice.
          ++res.prefetch_stalls;
          SBG_COUNTER_ADD("ooc.prefetch_stalls", 1);
          while (piece == nullptr) {
            {
              std::lock_guard<std::mutex> lock(prefetch_error_mu);
              if (!prefetch_error.empty()) {
                throw InputError("ooc prefetch failed: " + prefetch_error);
              }
            }
            if (cache.try_claim(p)) {
              cache.put(p, fetch_piece(p, st), /*pinned=*/true);
              piece = cache.take(p);
              SBG_CHECK(piece != nullptr, "inline-fetched piece evicted");
            } else {
              piece = cache.await(p, stop);
            }
          }
        }
        st.fetch_seconds = fetch_t.seconds();
        res.fetch_stall_seconds += st.fetch_seconds;

        Timer solve_piece_t;
        {
          SBG_SPAN("ooc.solve_piece");
          const std::uint64_t piece_seed =
              plan.options.seed + plan.pieces[p].level;
          st.rounds = extend_piece(plan.options.engine, *piece, res.mate,
                                   piece_seed);
          res.rounds += st.rounds;
        }
        st.solve_seconds = solve_piece_t.seconds();
        piece.reset();
        cache.erase(p);

        if (!calibrated) {
          // One-shot calibration against the live arena: if the solver's
          // high water beat the model, widen it and re-derive the piece
          // admission budget so later pieces stop under-reserving.
          calibrated = true;
          const std::uint64_t observed = Scratch::local().capacity_bytes();
          SBG_GAUGE_SET("ooc.scratch_observed_bytes", observed);
          if (scratch_model.calibrate(n, observed) && budgeted) {
            const std::uint64_t reserve =
                plan.solution_bytes + scratch_model.bytes(n);
            cache.set_budget(plan.options.mem_budget > reserve
                                 ? plan.options.mem_budget - reserve
                                 : 0);
          }
        }
      }
      res.solve_seconds = solve_t.seconds();
    }  // prefetcher joined here

    for (std::uint32_t p = 0; p < P; ++p) {
      const PieceStats& st = res.pieces[p];
      res.actual_bytes_moved += st.actual_store_bytes;
      res.reextracts += st.reextracts;
      const std::uint64_t written = store->piece_bytes(p);
      if (budgeted && st.actual_store_bytes > written) {
        res.bytes_fetched += st.actual_store_bytes - written;
      }
    }
    res.evictions = cache.evictions();
    res.cardinality = matching_cardinality(res.mate);
    res.result_hash =
        ingest::hash_bytes(res.mate.data(), res.mate.size() * sizeof(vid_t),
                           plan.options.seed);
    const std::uint64_t solve_peak = plan.solution_bytes +
                                     scratch_model.bytes(n) +
                                     cache.peak_bytes() + store->heap_bytes();
    const std::uint64_t extract_peak =
        sweep.peak_bytes + store->heap_bytes();
    res.peak_resident_bytes = std::max(solve_peak, extract_peak);
  } catch (const LocalCancel&) {
    res.status = RunStatus::kCancelled;
    res.error = "cancelled";
  } catch (const JobCancelled&) {
    // A caller-installed token fired inside a solver round: re-throw after
    // cleanup (the Joiner above already ran) so sched records kCancelled.
    throw;
  } catch (const std::exception& e) {
    res.status = RunStatus::kFailed;
    res.error = e.what();
  }

  res.total_seconds = total.seconds();
  SBG_GAUGE_SET("ooc.peak_resident_bytes", res.peak_resident_bytes);
  SBG_GAUGE_SET("ooc.extract_seconds", res.extract_seconds);
  SBG_GAUGE_SET("ooc.solve_seconds", res.solve_seconds);
  SBG_GAUGE_SET("ooc.fetch_stall_seconds", res.fetch_stall_seconds);
  SBG_COUNTER_ADD("ooc.runs", 1);
  return res;
}

// ------------------------------------------------------------------ json --

namespace {

void json_kv(std::string& s, const char* key, std::uint64_t v, bool comma) {
  s += '"';
  s += key;
  s += "\":";
  s += std::to_string(v);
  if (comma) s += ',';
}

void json_kv(std::string& s, const char* key, double v, bool comma) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  s += '"';
  s += key;
  s += "\":";
  s += buf;
  if (comma) s += ',';
}

const char* family_name(PieceFamily f) {
  return f == PieceFamily::kRand ? "rand" : "degk";
}

const char* engine_name(Engine e) { return e == Engine::kGM ? "gm" : "lmax"; }

}  // namespace

std::string Plan::to_json() const {
  std::string s = "{";
  s += "\"family\":\"";
  s += family_name(options.family);
  s += "\",\"engine\":\"";
  s += engine_name(options.engine);
  s += "\",";
  json_kv(s, "seed", options.seed, true);
  json_kv(s, "mem_budget", options.mem_budget, true);
  json_kv(s, "k", std::uint64_t(options.k), true);
  json_kv(s, "levels", std::uint64_t(options.levels), true);
  json_kv(s, "degk_threshold", std::uint64_t(options.degk_threshold), true);
  json_kv(s, "chunk_arcs", options.chunk_arcs, true);
  json_kv(s, "n", std::uint64_t(n), true);
  json_kv(s, "arcs", arcs, true);
  json_kv(s, "ranges", std::uint64_t(ranges.size() - (ranges.empty() ? 0 : 1)),
          true);
  json_kv(s, "solution_bytes", solution_bytes, true);
  json_kv(s, "scratch_bytes", scratch_bytes, true);
  json_kv(s, "total_working_set", total_working_set, true);
  json_kv(s, "max_piece_bytes", max_piece_bytes, true);
  json_kv(s, "spill_bytes", spill_bytes, true);
  json_kv(s, "plan_hash", plan_hash, true);
  s += "\"pieces\":[";
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const PieceDesc& d = pieces[i];
    if (i != 0) s += ',';
    s += '{';
    json_kv(s, "id", std::uint64_t(d.id), true);
    json_kv(s, "level", std::uint64_t(d.level), true);
    json_kv(s, "slot", std::uint64_t(d.slot), true);
    json_kv(s, "live", std::uint64_t(d.live), true);
    json_kv(s, "arcs", d.arcs, true);
    json_kv(s, "segments", std::uint64_t(d.segments), true);
    json_kv(s, "csr_bytes", d.csr_bytes, true);
    json_kv(s, "store_bytes", d.store_bytes, false);
    s += '}';
  }
  s += "]}";
  return s;
}

std::string OocResult::to_json() const {
  std::string s = "{";
  s += "\"status\":\"";
  s += status == RunStatus::kOk ? "ok"
       : status == RunStatus::kCancelled ? "cancelled"
                                         : "failed";
  s += "\",";
  json_kv(s, "cardinality", cardinality, true);
  json_kv(s, "rounds", std::uint64_t(rounds), true);
  json_kv(s, "result_hash", result_hash, true);
  json_kv(s, "total_seconds", total_seconds, true);
  json_kv(s, "extract_seconds", extract_seconds, true);
  json_kv(s, "solve_seconds", solve_seconds, true);
  json_kv(s, "fetch_stall_seconds", fetch_stall_seconds, true);
  json_kv(s, "budget_bytes", budget_bytes, true);
  json_kv(s, "peak_resident_bytes", peak_resident_bytes, true);
  json_kv(s, "bytes_spilled", bytes_spilled, true);
  json_kv(s, "bytes_fetched", bytes_fetched, true);
  json_kv(s, "predicted_bytes_moved", predicted_bytes_moved, true);
  json_kv(s, "actual_bytes_moved", actual_bytes_moved, true);
  json_kv(s, "evictions", std::uint64_t(evictions), true);
  json_kv(s, "reextracts", std::uint64_t(reextracts), true);
  json_kv(s, "prefetch_hits", std::uint64_t(prefetch_hits), true);
  json_kv(s, "prefetch_stalls", std::uint64_t(prefetch_stalls), true);
  s += "\"pieces\":[";
  bool first = true;
  for (const PieceStats& st : pieces) {
    if (st.arcs == 0) continue;  // empty pieces never execute
    if (!first) s += ',';
    first = false;
    s += '{';
    json_kv(s, "id", std::uint64_t(st.id), true);
    json_kv(s, "arcs", st.arcs, true);
    json_kv(s, "rounds", std::uint64_t(st.rounds), true);
    json_kv(s, "predicted_store_bytes", st.predicted_store_bytes, true);
    json_kv(s, "actual_store_bytes", st.actual_store_bytes, true);
    json_kv(s, "fetch_seconds", st.fetch_seconds, true);
    json_kv(s, "solve_seconds", st.solve_seconds, true);
    json_kv(s, "fetches", std::uint64_t(st.fetches), true);
    json_kv(s, "reextracts", std::uint64_t(st.reextracts), true);
    s += "\"prefetched\":";
    s += st.prefetched ? "true" : "false";
    s += '}';
  }
  s += "]}";
  return s;
}

}  // namespace sbg::ooc
