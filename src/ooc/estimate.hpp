// Working-set estimation for out-of-core piece scheduling.
//
// Admission under SBG_MEM_BUDGET needs to know, before a piece is resident,
// how many fast-memory bytes solving it will pin: the rebuilt sub-CSR, the
// shared solution array, and the solver's scratch-arena high water. CSR
// bytes are exact arithmetic; scratch is a model (bytes-per-vertex slope +
// fixed intercept, derived from the solver's documented temporaries) that
// the executor calibrates once against the live arena's `scratch.*` gauges
// after the first piece solves — a model that under-predicts would let the
// admission test overshoot the budget for every later piece.
#pragma once

#include <cstdint>

#include "common.hpp"

namespace sbg::ooc {

/// What the executor is solving. Only maximal matching is piece-correct
/// today (see DESIGN.md §12 for why MIS/coloring cannot be composed from
/// co-partition pieces), but the estimator keys on the workload so the
/// scratch models stay separable.
enum class Workload { kMM };

/// Linear scratch model: bytes ≈ slope * n + fixed. n is the *global*
/// vertex count — pieces live in the global id space, so every per-vertex
/// solver temporary is full-length no matter how few arcs the piece has.
struct ScratchModel {
  double bytes_per_vertex = 0.0;
  std::uint64_t fixed_bytes = 0;

  std::uint64_t bytes(vid_t n) const {
    return static_cast<std::uint64_t>(bytes_per_vertex *
                                      static_cast<double>(n)) +
           fixed_bytes;
  }

  /// Widen the model so it would have predicted `observed` for `n` (called
  /// with the arena high-water after the first solve). Never narrows:
  /// calibration exists to stop under-prediction, not to chase noise down.
  bool calibrate(vid_t n, std::uint64_t observed);
};

/// A-priori model for one workload's extend call. GM keeps four n-sized
/// round arrays (cursor: 8B, proposal/live/next_live: 4B each) plus small
/// per-thread pack blocks; LMAX is shaped the same.
ScratchModel default_scratch_model(Workload w);

/// Heap bytes of a rebuilt piece sub-CSR: (n+1) offsets + arc values.
inline std::uint64_t piece_csr_bytes(vid_t n, eid_t arcs) {
  return (static_cast<std::uint64_t>(n) + 1) * sizeof(eid_t) +
         arcs * sizeof(vid_t);
}

/// Heap bytes of the shared solution array (mate / color / in-set).
inline std::uint64_t solution_bytes(vid_t n) {
  return static_cast<std::uint64_t>(n) * sizeof(vid_t);
}

}  // namespace sbg::ooc
