// Seeded differential fuzzing over the whole solver zoo.
//
// One fuzz iteration draws a random graph from a generator family, runs
// every registered solver/composite variant (solvers.hpp) on it, and holds
// the results against the sbg::check oracles plus cross-variant agreement:
//
//   * every matching maximal, and any two maximal matchings of the same
//     graph within a factor 2 in cardinality (the classic bound);
//   * every MIS independent + maximal, with |I| >= n / (maxdeg + 1);
//   * every coloring proper, >= 2 distinct colors when an edge exists, and
//     palette span inside a loose 2*(maxdeg+1) + slack explosion envelope;
//   * BRIDGE / RAND / GROW / DEGk decompositions pass their structural
//     oracles, and both bridge walks agree edge-for-edge with the
//     sequential Tarjan reference.
//
// Everything is a pure function of (family, seed), so a failing run is
// replayed exactly from the seed the harness prints. Exposed as a library
// so tests (tests/test_fuzz_differential.cpp) and the sbg_fuzz executable
// share one implementation.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace sbg::check {

/// Fuzz families: the generator families the solver zoo draws from —
/// "basic" (paths/cycles/stars/cliques/grids/trees/Erdős–Rényi), "rgg",
/// "rmat", "synth" (road, broom, numerical, collab, web) — plus "ingest",
/// which skips the solver zoo and differentially tests the text-ingestion
/// pipeline instead (see fuzz_check_ingest), "batch", which runs 2-4
/// concurrent sched jobs and replays them sequentially for hash agreement
/// (see fuzz_check_batch), "auto", which solves through the sbg::tune
/// adaptive-selection path and replays the resolved variant explicitly
/// (see fuzz_check_auto), "serve", which fires concurrent clients —
/// adversarial HTTP included — at a live in-process sbg_serve daemon
/// (see fuzz_check_serve), and "dyn", which streams random update batches
/// through a DynGraph with incremental repair and differences the result
/// against from-scratch solves (see fuzz_check_dyn).
const std::vector<std::string>& fuzz_families();

/// Deterministic random graph for (family, seed): shape and size are drawn
/// from `seed`, vertex count <= roughly max_n. `shape` (optional) receives a
/// human-readable description ("basic/er n=137 m=412").
CsrGraph fuzz_graph(const std::string& family, std::uint64_t seed, vid_t max_n,
                    std::string* shape = nullptr);

/// Run every registered variant on g and apply all oracles and agreement
/// checks. Returns one string per failure (empty == clean); a thrown solver
/// exception is a failure, not a harness abort. `solver_runs` (optional)
/// accumulates the number of variant executions.
std::vector<std::string> fuzz_check_graph(const CsrGraph& g,
                                          std::uint64_t seed,
                                          int* solver_runs = nullptr);

/// One "ingest" family iteration: render a random graph to a scratch file
/// in a seed-chosen text dialect (edge list / MatrixMarket, LF / CRLF,
/// trailing-newline or not, comments, weights, ragged spacing), then hold
/// the chunk-parallel parsers against the sequential istream readers, the
/// .sbgc cache round-trip against build_graph, and cache corruption against
/// the degrade-to-reparse guarantee. Error-injection iterations assert both
/// readers reject the file with a line number. Returns one string per
/// failure; `parser_runs` counts parser/loader executions like solver_runs.
std::vector<std::string> fuzz_check_ingest(std::uint64_t seed,
                                           std::string* shape = nullptr,
                                           int* parser_runs = nullptr);

/// One "batch" family iteration: a small graph, a 2-4-worker sched batch
/// over a seed-chosen slice of the solver zoo, then a sequential replay of
/// every job — concurrent and sequential result hashes must agree, an
/// injected failing job must be isolated, and a pre-expired deadline must
/// cancel cooperatively. Run under TSan this is the data-race gate for the
/// whole batch path. Returns one string per failure.
std::vector<std::string> fuzz_check_batch(std::uint64_t seed, vid_t max_n,
                                          std::string* shape = nullptr,
                                          int* solver_runs = nullptr);

/// One "auto" family iteration: a random graph solved per problem through
/// sched's "auto" variant (sbg::tune selector, oracle-gated), differenced
/// against an explicit run of the variant the selector resolved to
/// (hash/value/rounds identical for the schedule-deterministic solvers),
/// plus selector-in-isolation property checks: random fingerprints always
/// yield a valid (variant, k>=2, partitions>=1, threads>=1) choice, a
/// local history where a non-table candidate is 3x faster flips the
/// selector to it, and injected failures never enter the telemetry store.
/// Returns one string per failure.
std::vector<std::string> fuzz_check_auto(std::uint64_t seed, vid_t max_n,
                                         std::string* shape = nullptr,
                                         int* solver_runs = nullptr);

/// One "serve" family iteration: an in-process sbg_serve daemon on an
/// ephemeral loopback port under 2-4 concurrent fuzz clients mixing valid
/// job requests (differentially checked against direct sched::run_job)
/// with malformed JSON, raw garbage, oversized bodies, expired deadlines
/// (must 504), and unknown names (404/422); some iterations drain the
/// server mid-request and require the in-flight response to complete and
/// later connects to be refused. Returns one string per failure.
std::vector<std::string> fuzz_check_serve(std::uint64_t seed, vid_t max_n,
                                          std::string* shape = nullptr,
                                          int* solver_runs = nullptr);

/// One "dyn" family iteration: a base graph plus a seed-chosen sequence of
/// update batches (insert-heavy, delete-heavy, mixed, sometimes empty)
/// applied to a dyn::DynGraph with incremental MM/MIS/coloring repair after
/// every batch. After each batch the materialized graph must hash-agree
/// byte-for-byte with a from-scratch build of the ground-truth edge set,
/// every repaired solution must pass its oracle on the materialized graph,
/// and cardinalities must stay inside the cross-solution agreement bounds
/// (|M| within 2x of a fresh solve, |I| >= n/(maxdeg+1), palette inside the
/// explosion envelope). Compaction is forced on some iterations to cover
/// the delta-to-CSR rebuild. Returns one string per failure.
std::vector<std::string> fuzz_check_dyn(std::uint64_t seed, vid_t max_n,
                                        std::string* shape = nullptr,
                                        int* solver_runs = nullptr);

struct FuzzOptions {
  std::uint64_t seed = 1;
  int graphs_per_family = 200;
  vid_t max_n = 512;
  /// Subset of fuzz_families() to run; empty selects all.
  std::vector<std::string> families;
  /// Progress/failure log (e.g. stderr); nullptr silences the run.
  std::FILE* log = nullptr;
};

struct FuzzFailure {
  std::string family;
  std::uint64_t graph_seed = 0;  ///< replay: fuzz_graph(family, graph_seed, …)
  std::string shape;
  std::string what;
};

struct FuzzSummary {
  int graphs = 0;
  int solver_runs = 0;
  std::vector<FuzzFailure> failures;
};

/// The full campaign: graphs_per_family graphs from each selected family.
/// Deterministic in FuzzOptions (modulo log output timing).
FuzzSummary run_fuzz(const FuzzOptions& opt);

}  // namespace sbg::check
