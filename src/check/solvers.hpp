// Registry of every solver and decomposition composite the library ships,
// under stable names, with one uniform (graph, seed) signature per problem.
//
// This is the work list for the differential fuzz harness (every variant
// runs on every fuzzed graph and must satisfy the sbg::check oracles plus
// cross-variant agreement) and for "through every composite" test sweeps.
// When you add a solver or composite, register it here — the fuzz harness,
// tests, and sbg_fuzz pick it up automatically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coloring/coloring.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"

namespace sbg::check {

struct MatchingVariant {
  std::string name;
  MatchResult (*run)(const CsrGraph& g, std::uint64_t seed);
};

struct ColoringVariant {
  std::string name;
  ColorResult (*run)(const CsrGraph& g, std::uint64_t seed);
};

struct MisVariant {
  std::string name;
  MisResult (*run)(const CsrGraph& g, std::uint64_t seed);
};

/// CPU baselines + BRIDGE/RAND/DEGk composites under both engines, plus the
/// gpusim execution-model variants (prefixed "gpu/"). Deterministic solvers
/// ignore the seed.
const std::vector<MatchingVariant>& matching_variants();
const std::vector<ColoringVariant>& coloring_variants();
const std::vector<MisVariant>& mis_variants();

}  // namespace sbg::check
