#include "check/check.hpp"

#include "obs/obs.hpp"

namespace sbg::check {

CheckResult CheckResult::fail(std::string violation, vid_t vertex,
                              vid_t other) {
  SBG_COUNTER_ADD("check.violations", 1);
  CheckResult r;
  r.ok = false;
  r.violation = std::move(violation);
  r.vertex = vertex;
  r.other = other;
  return r;
}

std::string CheckResult::message() const {
  if (ok) return "ok";
  std::string m = violation;
  if (vertex != kNoVertex && other != kNoVertex) {
    m += " (edge " + std::to_string(vertex) + "-" + std::to_string(other) + ")";
  } else if (vertex != kNoVertex) {
    m += " (vertex " + std::to_string(vertex) + ")";
  }
  return m;
}

}  // namespace sbg::check
