#include "check/check.hpp"
#include "obs/obs.hpp"
#include "parallel/reduce.hpp"

namespace sbg::check {

MatchingReport check_matching(const CsrGraph& g,
                              const std::vector<vid_t>& mate) {
  SBG_COUNTER_ADD("check.matching.runs", 1);
  const vid_t n = g.num_vertices();
  MatchingReport rep;
  if (mate.size() != n) {
    rep.result = CheckResult::fail("mate array size != num_vertices");
    return rep;
  }

  // Pair validity: in-range, no self-match, involution, real edge. The
  // predicate only dereferences mate[w] once w is known to be in range.
  const std::size_t bad_pair = parallel_first(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    const vid_t w = mate[v];
    if (w == kNoVertex) return false;
    if (w >= n || w == v) return true;
    return mate[w] != v || !g.has_edge(v, w);
  });
  if (bad_pair < n) {
    const vid_t v = static_cast<vid_t>(bad_pair);
    const vid_t w = mate[v];
    if (w >= n && w != kNoVertex) {
      rep.result = CheckResult::fail("mate id out of range", v);
    } else if (w == v) {
      rep.result = CheckResult::fail("vertex matched to itself", v);
    } else if (mate[w] != v) {
      rep.result = CheckResult::fail("mate array is not an involution", v, w);
    } else {
      rep.result = CheckResult::fail("matched pair is not an edge of G", v, w);
    }
    return rep;
  }

  // Maximality: no edge may have both endpoints unmatched.
  const std::size_t live = parallel_first(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    if (mate[v] != kNoVertex) return false;
    for (const vid_t w : g.neighbors(v)) {
      if (mate[w] == kNoVertex) return true;
    }
    return false;
  });
  if (live < n) {
    const vid_t v = static_cast<vid_t>(live);
    vid_t partner = kNoVertex;
    for (const vid_t w : g.neighbors(v)) {
      if (mate[w] == kNoVertex) {
        partner = w;
        break;
      }
    }
    rep.result = CheckResult::fail(
        "matching not maximal: both endpoints unmatched", v, partner);
    return rep;
  }

  rep.matched_vertices = static_cast<vid_t>(parallel_count(
      n, [&](std::size_t v) { return mate[v] != kNoVertex; }));
  rep.cardinality = rep.matched_vertices / 2;
  return rep;
}

}  // namespace sbg::check
