// The "dyn" fuzz family: differential fuzzing for the dynamic-graph path.
//
// One iteration draws a base graph, opens a dyn::Session over it, and
// streams a seed-chosen sequence of update batches through it — insert-
// heavy, delete-heavy, mixed, and deliberately empty ones, with occasional
// vertex growth past the current n and duplicate / self-loop / no-op
// entries left in to exercise canonicalization. A plain std::set of
// canonical edges is maintained alongside as ground truth with the same
// inserts-then-removes semantics. After every batch:
//
//  * the session's materialized CSR must hash-agree byte-for-byte with a
//    from-scratch build of the ground-truth edge set (offsets + adjacency),
//  * every repaired solution must pass its oracle on that graph (the
//    session verifies internally; oracle_error must stay empty),
//  * the repaired matching must agree with a from-scratch solve on the
//    materialized graph within the maximal-matching 2x bound.
//
// A quarter of iterations shrink the compaction threshold so nearly every
// batch folds the deltas back into a fresh base CSR, covering the
// compact/re-peel path; repair correctness must be oblivious to when
// compaction happens.
#include "check/fuzz.hpp"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dyn/session.hpp"
#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "matching/matching.hpp"
#include "obs/obs.hpp"
#include "parallel/rng.hpp"

namespace sbg::check {

std::vector<std::string> fuzz_check_dyn(std::uint64_t seed, vid_t max_n,
                                        std::string* shape,
                                        int* solver_runs) {
  SBG_COUNTER_ADD("fuzz.dyn_iterations", 1);
  std::vector<std::string> fails;
  Rng rng(mix64(seed ^ 0xd1f0));

  static const char* kGraphFamilies[] = {"basic", "rgg", "rmat", "synth"};
  const std::string family = kGraphFamilies[rng.below(4)];
  std::string graph_shape;
  CsrGraph base = fuzz_graph(family, rng.next(), max_n, &graph_shape);

  // Ground truth: the canonical (u < v) edge set of the evolving graph.
  std::set<std::pair<vid_t, vid_t>> truth;
  for (vid_t v = 0; v < base.num_vertices(); ++v) {
    for (const vid_t w : base.neighbors(v)) {
      if (v < w) truth.insert({v, w});
    }
  }
  vid_t truth_n = base.num_vertices();

  dyn::SessionOptions sopt;
  sopt.seed = rng.next();
  // A quarter of iterations compact after nearly every batch.
  const bool force_compact = rng.below(4) == 0;
  if (force_compact) sopt.compact_fraction = 1e-6;

  dyn::Session session(std::move(base), sopt);
  if (solver_runs) *solver_runs += 3;  // the initial MM / color / MIS solves

  const int batches = 3 + static_cast<int>(rng.below(6));
  for (int b = 0; b < batches; ++b) {
    const std::string tag =
        "dyn/" + graph_shape + " batch#" + std::to_string(b);

    // Batch profile: empty / insert-heavy / delete-heavy / mixed.
    dyn::UpdateBatch batch;
    std::size_t n_ins = 0, n_rem = 0;
    const std::size_t scale = 1 + rng.below(16);
    switch (rng.below(8)) {
      case 0: break;  // deliberately empty
      case 1:
      case 2: n_ins = scale; break;
      case 3:
      case 4: n_rem = scale; break;
      default: n_ins = scale; n_rem = scale; break;
    }
    for (std::size_t i = 0; i < n_ins; ++i) {
      // Occasionally name endpoints past the current n (vertex growth,
      // sometimes far past it so the grown range contains isolated ids on
      // no inserted edge); duplicates, self-loops and already-present
      // edges stay in.
      const vid_t span = truth_n == 0
                             ? 4
                             : truth_n + (rng.below(8) == 0
                                              ? 1 + vid_t(rng.below(12))
                                              : 0);
      batch.insert.push_back(
          {vid_t(rng.below(span)), vid_t(rng.below(span))});
    }
    for (std::size_t i = 0; i < n_rem; ++i) {
      if (!truth.empty() && rng.below(4) != 0) {
        auto it = truth.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.below(truth.size())));
        batch.remove.push_back({it->first, it->second});
      } else if (truth_n > 0) {
        // Mostly-absent edge: deleting a non-edge must be a no-op.
        batch.remove.push_back(
            {vid_t(rng.below(truth_n)), vid_t(rng.below(truth_n))});
      }
    }

    // Mirror apply()'s semantics on the ground truth: canonicalize both
    // lists, drop inserts that the same batch also removes (removes win),
    // then union the inserts and subtract the removes. Vertex growth comes
    // only from surviving insert endpoints.
    std::set<std::pair<vid_t, vid_t>> ins, rem;
    for (Edge e : batch.remove) {
      if (e.u == e.v) continue;
      if (e.u > e.v) std::swap(e.u, e.v);
      rem.insert({e.u, e.v});
    }
    for (Edge e : batch.insert) {
      if (e.u == e.v) continue;
      if (e.u > e.v) std::swap(e.u, e.v);
      if (rem.count({e.u, e.v})) continue;
      ins.insert({e.u, e.v});
    }
    for (const auto& e : ins) {
      truth.insert(e);
      truth_n = std::max(truth_n, static_cast<vid_t>(e.second + 1));
    }
    for (const auto& e : rem) truth.erase(e);

    const dyn::UpdateOutcome out = session.update(batch, /*verify=*/true);
    if (solver_runs) *solver_runs += 3;

    // 1) The session's own oracle pass (repairs checked against the
    //    materialized graph) must be clean.
    if (!out.oracle_error.empty()) {
      fails.push_back(tag + ": oracle: " + out.oracle_error);
    }

    // 2) Differential anchor: materialize must hash-agree with a
    //    from-scratch build of the ground truth.
    EdgeList el;
    el.num_vertices = truth_n;
    el.edges.reserve(truth.size());
    for (const auto& e : truth) el.edges.push_back({e.first, e.second});
    const CsrGraph ref = build_csr(el);  // set order is already normalized
    if (dyn::hash_graph(ref) != out.graph_hash) {
      fails.push_back(tag + ": materialized graph hash " +
                      std::to_string(out.graph_hash) +
                      " != ground-truth build " +
                      std::to_string(dyn::hash_graph(ref)));
    }
    if (out.num_vertices != truth_n ||
        out.num_edges != static_cast<eid_t>(truth.size())) {
      fails.push_back(tag + ": size n=" + std::to_string(out.num_vertices) +
                      " m=" + std::to_string(out.num_edges) +
                      " != truth n=" + std::to_string(truth_n) +
                      " m=" + std::to_string(truth.size()));
    }

    // 3) Cross-solution agreement: two maximal matchings of the same graph
    //    are within 2x of each other.
    const MatchResult fresh = mm_gm(ref);
    if (solver_runs) ++*solver_runs;
    if (2 * out.mm_cardinality < fresh.cardinality ||
        2 * fresh.cardinality < out.mm_cardinality) {
      fails.push_back(tag + ": repaired |M|=" +
                      std::to_string(out.mm_cardinality) +
                      " vs fresh |M|=" + std::to_string(fresh.cardinality) +
                      " breaks the maximal-matching 2x bound");
    }
  }

  if (shape) {
    *shape = graph_shape + " batches=" + std::to_string(batches) +
             (force_compact ? " compact-heavy" : "");
  }
  SBG_COUNTER_ADD("fuzz.failures", fails.size());
  return fails;
}

}  // namespace sbg::check
