#include <algorithm>
#include <utility>

#include "check/check.hpp"
#include "obs/obs.hpp"
#include "parallel/reduce.hpp"

namespace sbg::check {
namespace {

/// Verifies sub.neighbors(v) == { w in g.neighbors(v) : keep(v, w) } for
/// every v — i.e. the piece holds exactly the edges its filter selects, no
/// extras, no omissions, no duplicates (both adjacencies are sorted).
template <typename Keep>
CheckResult check_filtered_piece(const CsrGraph& g, const CsrGraph& sub,
                                 const std::string& piece, Keep&& keep) {
  const vid_t n = g.num_vertices();
  if (sub.num_vertices() != n) {
    return CheckResult::fail(piece + " vertex count != num_vertices");
  }
  const std::size_t bad = parallel_first(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    const auto got = sub.neighbors(v);
    std::size_t j = 0;
    for (const vid_t w : g.neighbors(v)) {
      if (!keep(v, w)) continue;
      if (j >= got.size() || got[j] != w) return true;
      ++j;
    }
    return j != got.size();
  });
  if (bad < n) {
    return CheckResult::fail(
        piece + " adjacency does not match its partition filter",
        static_cast<vid_t>(bad));
  }
  return CheckResult::pass();
}

/// Shared partition law for vertex-labeled decompositions (RAND and GROW):
/// labels in range, g_intra exactly same-label edges, g_cross exactly
/// cross-label edges.
CheckResult check_labeled_partition(const CsrGraph& g, vid_t k,
                                    const std::vector<vid_t>& part,
                                    const CsrGraph& g_intra,
                                    const CsrGraph& g_cross) {
  const vid_t n = g.num_vertices();
  if (k == 0) return CheckResult::fail("partition count k == 0");
  if (part.size() != n) {
    return CheckResult::fail("part array size != num_vertices");
  }
  const std::size_t bad_label =
      parallel_first(n, [&](std::size_t v) { return part[v] >= k; });
  if (bad_label < n) {
    return CheckResult::fail("partition label out of range [0, k)",
                             static_cast<vid_t>(bad_label));
  }
  if (const CheckResult r = check_filtered_piece(
          g, g_intra, "g_intra",
          [&](vid_t v, vid_t w) { return part[v] == part[w]; });
      !r) {
    return r;
  }
  return check_filtered_piece(
      g, g_cross, "g_cross",
      [&](vid_t v, vid_t w) { return part[v] != part[w]; });
}

}  // namespace

CheckResult check_decomposition(const CsrGraph& g,
                                const BridgeDecomposition& d) {
  SBG_COUNTER_ADD("check.decomposition.runs", 1);
  const vid_t n = g.num_vertices();
  if (d.is_bridge_vertex.size() != n) {
    return CheckResult::fail("is_bridge_vertex size != num_vertices");
  }
  if (d.components.label.size() != n) {
    return CheckResult::fail("component label size != num_vertices");
  }

  // Canonical directed arc list of the claimed bridges, for O(log b) edge
  // membership tests below.
  std::vector<std::pair<vid_t, vid_t>> arcs;
  arcs.reserve(2 * d.bridges.size());
  for (const auto& [c, p] : d.bridges) {
    if (c >= n || p >= n) {
      return CheckResult::fail("bridge endpoint out of range", c < n ? c : p);
    }
    if (!g.has_edge(c, p)) {
      return CheckResult::fail("listed bridge is not an edge of G", c, p);
    }
    arcs.emplace_back(c, p);
    arcs.emplace_back(p, c);
  }
  std::sort(arcs.begin(), arcs.end());
  if (std::adjacent_find(arcs.begin(), arcs.end()) != arcs.end()) {
    return CheckResult::fail("bridge listed more than once");
  }
  const auto is_bridge_arc = [&](vid_t u, vid_t w) {
    return std::binary_search(arcs.begin(), arcs.end(), std::make_pair(u, w));
  };

  const std::size_t bad_flag = parallel_first(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    const auto lo = std::lower_bound(arcs.begin(), arcs.end(),
                                     std::make_pair(v, vid_t{0}));
    const bool touches = lo != arcs.end() && lo->first == v;
    return (d.is_bridge_vertex[v] != 0) != touches;
  });
  if (bad_flag < n) {
    return CheckResult::fail("is_bridge_vertex inconsistent with bridge list",
                             static_cast<vid_t>(bad_flag));
  }

  // G - B holds exactly the non-bridge edges; together with the bridge list
  // that covers every edge of G exactly once.
  if (const CheckResult r = check_filtered_piece(
          g, d.g_components, "g_components",
          [&](vid_t v, vid_t w) { return !is_bridge_arc(v, w); });
      !r) {
    return r;
  }

  // 2-edge-connected component labels: constant across surviving edges,
  // different across each bridge (removing all bridges separates its
  // endpoints — the defining property).
  const std::size_t split = parallel_first(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    for (const vid_t w : d.g_components.neighbors(v)) {
      if (d.components.label[v] != d.components.label[w]) return true;
    }
    return false;
  });
  if (split < n) {
    return CheckResult::fail("component label changes across a non-bridge edge",
                             static_cast<vid_t>(split));
  }
  for (const auto& [c, p] : d.bridges) {
    if (d.components.label[c] == d.components.label[p]) {
      return CheckResult::fail(
          "bridge endpoints share a 2-edge-connected component", c, p);
    }
  }
  return CheckResult::pass();
}

CheckResult check_decomposition(const CsrGraph& g, const RandDecomposition& d) {
  SBG_COUNTER_ADD("check.decomposition.runs", 1);
  return check_labeled_partition(g, d.k, d.part, d.g_intra, d.g_cross);
}

CheckResult check_decomposition(const CsrGraph& g, const GrowDecomposition& d) {
  SBG_COUNTER_ADD("check.decomposition.runs", 1);
  if (const CheckResult r =
          check_labeled_partition(g, d.k, d.part, d.g_intra, d.g_cross);
      !r) {
    return r;
  }
  if (d.cut_edges != d.g_cross.num_edges()) {
    return CheckResult::fail("cut_edges != edge count of g_cross");
  }
  return CheckResult::pass();
}

CheckResult check_decomposition(const CsrGraph& g, const DegkDecomposition& d,
                                unsigned pieces) {
  SBG_COUNTER_ADD("check.decomposition.runs", 1);
  const vid_t n = g.num_vertices();
  if (d.is_high.size() != n) {
    return CheckResult::fail("is_high size != num_vertices");
  }
  const std::size_t bad_side = parallel_first(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    return (d.is_high[v] != 0) != (g.degree(v) > d.k);
  });
  if (bad_side < n) {
    return CheckResult::fail("is_high disagrees with the degree threshold",
                             static_cast<vid_t>(bad_side));
  }
  const vid_t num_high = static_cast<vid_t>(
      parallel_count(n, [&](std::size_t v) { return d.is_high[v] != 0; }));
  if (num_high != d.num_high) {
    return CheckResult::fail("num_high != population count of is_high");
  }

  const auto high = [&](vid_t v) { return d.is_high[v] != 0; };
  if (pieces & kDegkHigh) {
    if (const CheckResult r = check_filtered_piece(
            g, d.g_high, "g_high",
            [&](vid_t v, vid_t w) { return high(v) && high(w); });
        !r) {
      return r;
    }
  }
  if (pieces & kDegkLow) {
    if (const CheckResult r = check_filtered_piece(
            g, d.g_low, "g_low",
            [&](vid_t v, vid_t w) { return !high(v) && !high(w); });
        !r) {
      return r;
    }
  }
  if (pieces & kDegkCross) {
    if (const CheckResult r = check_filtered_piece(
            g, d.g_cross, "g_cross",
            [&](vid_t v, vid_t w) { return high(v) != high(w); });
        !r) {
      return r;
    }
  }
  if (pieces & kDegkLowCross) {
    if (const CheckResult r = check_filtered_piece(
            g, d.g_low_cross, "g_low_cross",
            [&](vid_t v, vid_t w) { return !(high(v) && high(w)); });
        !r) {
      return r;
    }
  }
  return CheckResult::pass();
}

CheckResult check_decomposition(const CsrGraph& g, const KcoreDecomposition& d,
                                unsigned pieces) {
  SBG_COUNTER_ADD("check.decomposition.runs", 1);
  const vid_t n = g.num_vertices();
  if (d.core.size() != n) {
    return CheckResult::fail("core array size != num_vertices");
  }
  // Differential: the parallel bucketed peel must agree vertex-for-vertex
  // with the sequential Matula–Beck reference.
  const std::vector<vid_t> ref = kcore_reference(g);
  const std::size_t bad_core =
      parallel_first(n, [&](std::size_t v) { return d.core[v] != ref[v]; });
  if (bad_core < n) {
    return CheckResult::fail("core number disagrees with sequential peeling",
                             static_cast<vid_t>(bad_core));
  }
  const vid_t degeneracy = static_cast<vid_t>(parallel_max<std::size_t>(
      n, [&](std::size_t v) { return d.core[v]; }, 0));
  if (d.degeneracy != degeneracy) {
    return CheckResult::fail("degeneracy != max core number");
  }

  if (d.order.size() != n) {
    return CheckResult::fail("peeling order size != num_vertices");
  }
  std::vector<std::uint8_t> seen(n, 0);
  for (std::size_t i = 0; i < d.order.size(); ++i) {
    const vid_t v = d.order[i];
    if (v >= n || seen[v]) {
      return CheckResult::fail("peeling order is not a permutation",
                               v < n ? v : kNoVertex);
    }
    seen[v] = 1;
    if (i > 0 && d.core[d.order[i - 1]] > d.core[v]) {
      return CheckResult::fail("peeling order not core-nondecreasing", v);
    }
  }

  if (d.is_high.size() != n) {
    return CheckResult::fail("is_high size != num_vertices");
  }
  const std::size_t bad_side = parallel_first(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    return (d.is_high[v] != 0) != (d.core[v] > d.k);
  });
  if (bad_side < n) {
    return CheckResult::fail("is_high disagrees with the core threshold",
                             static_cast<vid_t>(bad_side));
  }
  const vid_t num_high = static_cast<vid_t>(
      parallel_count(n, [&](std::size_t v) { return d.is_high[v] != 0; }));
  if (num_high != d.num_high) {
    return CheckResult::fail("num_high != population count of is_high");
  }

  const auto high = [&](vid_t v) { return d.is_high[v] != 0; };
  if (pieces & kKcoreHigh) {
    if (const CheckResult r = check_filtered_piece(
            g, d.g_high, "g_high",
            [&](vid_t v, vid_t w) { return high(v) && high(w); });
        !r) {
      return r;
    }
  }
  if (pieces & kKcoreLow) {
    if (const CheckResult r = check_filtered_piece(
            g, d.g_low, "g_low",
            [&](vid_t v, vid_t w) { return !high(v) && !high(w); });
        !r) {
      return r;
    }
  }
  if (pieces & kKcoreCross) {
    if (const CheckResult r = check_filtered_piece(
            g, d.g_cross, "g_cross",
            [&](vid_t v, vid_t w) { return high(v) != high(w); });
        !r) {
      return r;
    }
  }
  return CheckResult::pass();
}

}  // namespace sbg::check
