// The "ingest" fuzz family: differential testing of the chunk-parallel
// text parsers, the sequential istream readers, and the .sbgc cache.
//
// One iteration draws a random graph, renders it to disk in a randomly
// chosen text dialect (edge list or MatrixMarket; LF or CRLF; with or
// without a trailing newline; comments, weights, ragged spacing, shuffled
// and duplicated edges), then checks:
//
//   * the mmap parser returns the same EdgeList as the istream reader,
//     byte-for-byte, at several thread counts;
//   * a cold ingest::load writes a cache entry and a second load hits it
//     with an identical CSR;
//   * corrupting the entry (truncation, byte flip, version/key tampering)
//     degrades the next load to a correct reparse, never a wrong graph;
//   * on error-injection iterations, BOTH parsers reject the file with a
//     1-based line number in the message.
//
// Everything is a pure function of the iteration seed, so failures replay
// exactly. The scratch dir lives under the system temp dir and is removed
// when the iteration ends.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "graph/io.hpp"
#include "ingest/ingest.hpp"
#include "ingest/cache.hpp"
#include "ingest/mmap_file.hpp"
#include "ingest/text_parse.hpp"
#include "parallel/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sbg::check {
namespace {

namespace fs = std::filesystem;

unsigned long process_id() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<unsigned long>(::getpid());
#else
  return 0;
#endif
}

/// Scratch directory for one iteration; removed on destruction.
struct TempDir {
  fs::path path;

  explicit TempDir(std::uint64_t seed) {
    char name[64];
    std::snprintf(name, sizeof(name), "sbg_fuzz_ingest.%lu.%016llx",
                  process_id(), static_cast<unsigned long long>(seed));
    path = fs::temp_directory_path() / name;
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// How one iteration renders its graph to text.
struct Dialect {
  bool mtx = false;        ///< MatrixMarket vs edge list
  bool crlf = false;       ///< "\r\n" line ends
  bool trailing_nl = true; ///< newline after the last line
  bool weights = false;    ///< third column (el) / value column (mtx)
  bool comments = false;   ///< sprinkle comment lines through the body
  bool ragged = false;     ///< vary inter-token spacing
};

Dialect draw_dialect(Rng& rng) {
  Dialect d;
  d.mtx = rng.below(3) == 0;
  d.crlf = rng.below(4) == 0;
  d.trailing_nl = rng.below(8) != 0;
  d.weights = rng.below(3) == 0;
  d.comments = rng.below(3) == 0;
  d.ragged = rng.below(3) == 0;
  return d;
}

const char* sep(const Dialect& d, Rng& rng) {
  if (!d.ragged) return " ";
  switch (rng.below(4)) {
    case 0: return "\t";
    case 1: return "  ";
    case 2: return " \t ";
    default: return " ";
  }
}

/// Directed arc bag to render: every CSR edge once, random orientation,
/// some duplicates, shuffled. Parsers must preserve file order verbatim,
/// so the reference for comparison is the istream reader, not this bag.
std::vector<Edge> render_order(const CsrGraph& g, Rng& rng) {
  std::vector<Edge> arcs;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const vid_t v : g.neighbors(u)) {
      if (v < u) continue;
      arcs.push_back(rng.below(2) == 0 ? Edge{u, v} : Edge{v, u});
      if (rng.below(16) == 0) arcs.push_back({v, u});  // duplicate
    }
  }
  for (std::size_t i = arcs.size(); i > 1; --i) {
    std::swap(arcs[i - 1], arcs[rng.below(i)]);
  }
  return arcs;
}

std::string render_file(const CsrGraph& g, const Dialect& d, Rng& rng,
                        std::vector<std::string>* lines_out) {
  const std::vector<Edge> arcs = render_order(g, rng);
  std::vector<std::string> lines;
  const auto comment = [&](const char* lead) {
    if (d.comments && rng.below(4) == 0) {
      lines.push_back(std::string(lead) + " fuzz comment " +
                      std::to_string(rng.below(1000)));
    }
  };
  if (d.mtx) {
    lines.push_back(d.weights
                        ? "%%MatrixMarket matrix coordinate real symmetric"
                        : "%%MatrixMarket matrix coordinate pattern symmetric");
    comment("%");
    const vid_t n = g.num_vertices();
    lines.push_back(std::to_string(n) + " " + std::to_string(n) + " " +
                    std::to_string(arcs.size()));
    for (const Edge& e : arcs) {
      comment("%");
      std::string line = std::to_string(e.u + 1);
      line += sep(d, rng);
      line += std::to_string(e.v + 1);
      if (d.weights) {
        line += sep(d, rng);
        line += std::to_string(1 + rng.below(99));
        line += ".5";
      }
      lines.push_back(std::move(line));
    }
    comment("%");
  } else {
    comment(rng.below(2) == 0 ? "#" : "%");
    for (const Edge& e : arcs) {
      comment(rng.below(2) == 0 ? "#" : "%");
      std::string line = std::to_string(e.u);
      line += sep(d, rng);
      line += std::to_string(e.v);
      if (d.weights && rng.below(2) == 0) {
        line += sep(d, rng);
        line += std::to_string(rng.below(100));
      }
      lines.push_back(std::move(line));
    }
    comment("#");
    if (d.comments && rng.below(4) == 0) lines.push_back("");  // blank line
  }
  if (lines_out) *lines_out = lines;

  const char* eol = d.crlf ? "\r\n" : "\n";
  std::string text;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    text += lines[i];
    if (i + 1 < lines.size() || d.trailing_nl) text += eol;
  }
  return text;
}

void write_text(const fs::path& p, const std::string& text) {
  std::ofstream out(p, std::ios::binary);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

EdgeList parse_sequential(const fs::path& p, bool mtx) {
  std::ifstream in(p);
  return mtx ? read_matrix_market(in) : read_edge_list(in);
}

EdgeList parse_parallel(const fs::path& p, bool mtx, int threads) {
  ingest::MappedFile file(p.string());
  return mtx ? ingest::parse_matrix_market(file.data(), file.size(), threads)
             : ingest::parse_edge_list(file.data(), file.size(), threads);
}

bool same_edge_list(const EdgeList& a, const EdgeList& b) {
  return a.num_vertices == b.num_vertices && a.edges == b.edges;
}

bool same_graph(const CsrGraph& a, const CsrGraph& b) {
  return std::ranges::equal(a.offsets(), b.offsets()) &&
         std::ranges::equal(a.adjacency(), b.adjacency());
}

/// Valid-input iteration: parser equivalence + cache round-trip/corruption.
void check_valid(const fs::path& file, const Dialect& d, Rng& rng,
                 int* runs, std::vector<std::string>& fails) {
  EdgeList seq;
  try {
    if (runs) ++*runs;
    seq = parse_sequential(file, d.mtx);
  } catch (const std::exception& e) {
    fails.push_back(std::string("sequential reader rejected valid input: ") +
                    e.what());
    return;
  }
  for (const int threads : {1, 2, static_cast<int>(3 + rng.below(6))}) {
    try {
      if (runs) ++*runs;
      const EdgeList par = parse_parallel(file, d.mtx, threads);
      if (!same_edge_list(par, seq)) {
        fails.push_back("parallel parse (t=" + std::to_string(threads) +
                        ") differs from sequential reader: " +
                        std::to_string(par.edges.size()) + " vs " +
                        std::to_string(seq.edges.size()) + " edges, n=" +
                        std::to_string(par.num_vertices) + " vs " +
                        std::to_string(seq.num_vertices));
      }
    } catch (const std::exception& e) {
      fails.push_back("parallel parse (t=" + std::to_string(threads) +
                      ") rejected valid input: " + e.what());
    }
  }

  // Cache round-trip through the public entry point: cold load writes the
  // sibling entry, warm load must hit it and agree exactly.
  ingest::Options opt;
  opt.use_cache = true;
  opt.connect = rng.below(2) == 0;
  const CsrGraph reference = build_graph(EdgeList(seq), opt.connect);
  try {
    if (runs) ++*runs;
    ingest::LoadReport cold;
    const CsrGraph g1 = ingest::load(file.string(), opt, &cold);
    if (!same_graph(g1, reference)) {
      fails.push_back("cold ingest::load CSR differs from build_graph "
                      "reference");
    }
    ingest::LoadReport warm;
    const CsrGraph g2 = ingest::load(file.string(), opt, &warm);
    if (!warm.cache_hit) {
      fails.push_back("second ingest::load missed the cache entry at " +
                      warm.cache_path);
    }
    if (!same_graph(g2, reference)) {
      fails.push_back("warm ingest::load CSR differs from build_graph "
                      "reference");
    }

    // Corrupt the entry; the next load must fall back to a correct reparse.
    const fs::path entry = warm.cache_path;
    std::error_code ec;
    const std::uint64_t len = fs::file_size(entry, ec);
    if (ec || len == 0) {
      fails.push_back("cache entry missing after warm load: " +
                      entry.string());
      return;
    }
    const char* mode = "?";
    switch (rng.below(3)) {
      case 0: {
        mode = "truncate";
        fs::resize_file(entry, len - std::min<std::uint64_t>(len, 1 + rng.below(64)), ec);
        break;
      }
      case 1: {
        mode = "byte flip";
        std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
        const std::uint64_t at = rng.below(len);
        f.seekg(static_cast<std::streamoff>(at));
        char b = 0;
        f.get(b);
        b = static_cast<char>(b ^ static_cast<char>(1 + rng.below(255)));
        f.seekp(static_cast<std::streamoff>(at));
        f.put(b);
        break;
      }
      default: {
        mode = "version bump";
        std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(8);  // format-version field
        const char v = static_cast<char>(2 + rng.below(250));
        f.put(v);
        break;
      }
    }
    ingest::LoadReport after;
    const CsrGraph g3 = ingest::load(file.string(), opt, &after);
    if (after.cache_hit) {
      fails.push_back(std::string("load hit a cache entry corrupted by ") +
                      mode);
    }
    if (!same_graph(g3, reference)) {
      fails.push_back(std::string("reparse after cache ") + mode +
                      " produced a different graph");
    }
  } catch (const std::exception& e) {
    fails.push_back(std::string("ingest::load threw on valid input: ") +
                    e.what());
  }
}

/// Error-injection iteration: both readers must reject the file with a
/// line number in the message.
void check_invalid(const fs::path& dir, const std::string& text,
                   const Dialect& d, Rng& rng, int* runs,
                   std::vector<std::string>& fails) {
  static const char* kElGarbage[] = {"1 2 3 4", "a b", "1 x", "-1 2",
                                     "99999999999999999999 2"};
  static const char* kMtxGarbage[] = {"a b", "7", "0 1"};
  const char* bad = d.mtx ? kMtxGarbage[rng.below(3)] : kElGarbage[rng.below(5)];

  // Splice the garbage line in at a random line boundary past the MM
  // header/size lines (offset otherwise lands mid-structure).
  std::vector<std::size_t> breaks;
  std::size_t scan = 0;
  std::size_t skip = d.mtx ? 2 : 0;  // banner + size line
  while (scan < text.size()) {
    const std::size_t nl = text.find('\n', scan);
    if (nl == std::string::npos) break;
    if (skip > 0) {
      --skip;
    } else {
      breaks.push_back(nl + 1);
    }
    scan = nl + 1;
  }
  const std::size_t at =
      breaks.empty() ? text.size() : breaks[rng.below(breaks.size())];
  std::string broken = text.substr(0, at) + bad +
                       (d.crlf ? "\r\n" : "\n") + text.substr(at);
  const fs::path file = dir / (d.mtx ? "broken.mtx" : "broken.el");
  write_text(file, broken);

  const auto expect_throw = [&](const char* which, auto&& parse) {
    if (runs) ++*runs;
    try {
      parse();
      fails.push_back(std::string(which) + " accepted garbage line \"" +
                      bad + "\"");
    } catch (const InputError& e) {
      if (std::string(e.what()).find("line ") == std::string::npos) {
        fails.push_back(std::string(which) +
                        " error lacks a line number: " + e.what());
      }
    } catch (const std::exception& e) {
      fails.push_back(std::string(which) + " threw a non-InputError: " +
                      e.what());
    }
  };
  expect_throw("sequential reader",
               [&] { parse_sequential(file, d.mtx); });
  const int threads = 1 + static_cast<int>(rng.below(8));
  expect_throw("parallel parser",
               [&] { parse_parallel(file, d.mtx, threads); });
}

}  // namespace

std::vector<std::string> fuzz_check_ingest(std::uint64_t seed,
                                           std::string* shape,
                                           int* parser_runs) {
  Rng rng(seed);
  std::vector<std::string> fails;

  // Base graph from a rotating generator family (small: every iteration
  // pays file IO).
  static const char* kBase[] = {"basic", "rgg", "rmat", "synth"};
  const std::string base = kBase[rng.below(4)];
  std::string base_shape;
  CsrGraph g = fuzz_graph(base, rng.next(), /*max_n=*/192, &base_shape);

  Rng dialect_rng(rng.next());
  const Dialect d = draw_dialect(dialect_rng);
  const bool inject_error = rng.below(5) == 0;
  if (shape) {
    *shape = std::string("ingest/") + (d.mtx ? "mtx" : "el") +
             (d.crlf ? "+crlf" : "") + (d.trailing_nl ? "" : "+noeofnl") +
             (d.weights ? "+w" : "") + (d.comments ? "+c" : "") +
             (inject_error ? "+inject" : "") + " over " + base_shape;
  }

  try {
    TempDir tmp(seed);
    const std::string text = render_file(g, d, dialect_rng, nullptr);
    if (inject_error) {
      check_invalid(tmp.path, text, d, dialect_rng, parser_runs, fails);
    } else {
      const fs::path file = tmp.path / (d.mtx ? "graph.mtx" : "graph.el");
      write_text(file, text);
      check_valid(file, d, dialect_rng, parser_runs, fails);
    }
  } catch (const std::exception& e) {
    fails.push_back(std::string("ingest harness: exception: ") + e.what());
  }
  return fails;
}

}  // namespace sbg::check
