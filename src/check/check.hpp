// sbg::check — the verification oracle library.
//
// One shared definition of "valid" for every problem the library solves,
// usable from tests, benches, sbg_tool, and the differential fuzz harness:
//
//   * check_matching       — mate array is a symmetric involution over real
//                            edges and the matching is maximal;
//   * check_coloring       — every vertex colored, no monochromatic edge,
//                            plus a palette-size report;
//   * check_mis            — independent, maximal, consistent kIn/kOut states;
//   * check_decomposition  — BRIDGE / RAND / GROW / DEGk outputs partition
//                            the edges of G exactly once and every
//                            materialized sub-CSR matches its filter.
//
// Every oracle returns a structured CheckResult carrying the *first*
// (lowest-id) violating vertex or edge, so a failed fuzz run or test names
// the exact place to look instead of a bare boolean. Violation phrases are
// stable strings; runs and failures are counted through sbg::obs
// ("check.<problem>.runs" / "check.violations").
//
// All oracles are parallel (OpenMP) but deterministic: the reported first
// violation is the minimum over all violations regardless of schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bridge.hpp"
#include "core/degk.hpp"
#include "core/grow.hpp"
#include "core/kcore.hpp"
#include "core/rand.hpp"
#include "graph/csr.hpp"
#include "mis/mis.hpp"

namespace sbg::check {

/// Outcome of one oracle run. `ok` means every invariant held. On failure,
/// `violation` is a stable human-readable phrase; `vertex` pins the first
/// offending vertex (lowest id) and `other` the second endpoint for
/// edge-level violations (kNoVertex when the violation is vertex-level or
/// structural).
struct CheckResult {
  bool ok = true;
  std::string violation;
  vid_t vertex = kNoVertex;
  vid_t other = kNoVertex;

  explicit operator bool() const { return ok; }

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string violation, vid_t vertex = kNoVertex,
                          vid_t other = kNoVertex);

  /// "ok", or "<violation>", "<violation> (vertex 5)",
  /// "<violation> (edge 5-7)" depending on what is pinned.
  std::string message() const;
};

// ---------------------------------------------------------------- matching --

struct MatchingReport {
  CheckResult result;
  eid_t cardinality = 0;       ///< |M|
  vid_t matched_vertices = 0;  ///< 2|M|
};

/// Valid + maximal matching oracle. Checks, in order: array size, mate ids
/// in range, no self-matches, involution (mate[mate[v]] == v), every matched
/// pair is an edge of g, and maximality (no edge with both endpoints
/// unmatched). Stats are filled only when the result is ok.
MatchingReport check_matching(const CsrGraph& g,
                              const std::vector<vid_t>& mate);

// ---------------------------------------------------------------- coloring --

struct ColoringReport {
  CheckResult result;
  /// Palette span: max color + 1. Composites that stack palettes (COLOR-Degk)
  /// report their full span here.
  std::uint32_t num_colors = 0;
  /// Colors actually used (<= num_colors; the span can have holes).
  std::uint32_t distinct_colors = 0;
  /// Size of the biggest color class (every class is an independent set).
  vid_t largest_class = 0;
};

/// Proper-coloring oracle: every vertex colored (!= kNoColor), no
/// monochromatic edge. Stats are filled only when the result is ok.
ColoringReport check_coloring(const CsrGraph& g,
                              const std::vector<std::uint32_t>& color);

// --------------------------------------------------------------------- MIS --

struct MisReport {
  CheckResult result;
  std::size_t size = 0;  ///< |I|
};

/// MIS oracle: every state decided and a legal enum value, no two adjacent
/// kIn vertices (independence), every kOut vertex has a kIn neighbor
/// (maximality). Stats are filled only when the result is ok.
MisReport check_mis(const CsrGraph& g, const std::vector<MisState>& state);

// ------------------------------------------------------------ decomposition --

/// BRIDGE oracle: every listed bridge is a real edge, listed once; bridge
/// vertices flagged iff they touch a listed bridge; g_components is exactly
/// G minus the bridge edges (so components + bridges cover every edge of G
/// exactly once); component labels are constant across surviving edges and
/// differ across each bridge (a bridge separates its endpoints in G - B).
/// Note: a *missing* bridge is indistinguishable from a denser component
/// here — cross-check against bridges_reference() for full differential
/// coverage (the fuzz harness does).
CheckResult check_decomposition(const CsrGraph& g,
                                const BridgeDecomposition& d);

/// RAND oracle: k >= 1, every vertex labeled in [0, k), g_intra holds
/// exactly the same-label edges and g_cross exactly the cross-label edges —
/// together every edge of G exactly once.
CheckResult check_decomposition(const CsrGraph& g, const RandDecomposition& d);

/// GROW oracle: same partition laws as RAND, plus cut_edges == |E(g_cross)|.
CheckResult check_decomposition(const CsrGraph& g, const GrowDecomposition& d);

/// DEGk oracle: is_high[v] == (deg(v) > k), num_high consistent, and each
/// *materialized* piece (select with `pieces`, as passed to decompose_degk)
/// holds exactly its filter: G_H both-high, G_L both-low, G_C mixed,
/// G_L∪G_C not-both-high. G_H + G_L + G_C cover every edge exactly once.
CheckResult check_decomposition(const CsrGraph& g, const DegkDecomposition& d,
                                unsigned pieces);

/// KCORE oracle: core numbers match the sequential Matula–Beck reference
/// (full differential check), degeneracy is their max, the peeling order is
/// a core-nondecreasing permutation, is_high/num_high agree with the
/// threshold, and each materialized piece holds exactly its filter.
CheckResult check_decomposition(const CsrGraph& g, const KcoreDecomposition& d,
                                unsigned pieces);

}  // namespace sbg::check
