#include "check/fuzz.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <exception>
#include <utility>

#include "check/check.hpp"
#include "check/solvers.hpp"
#include "core/grow.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "parallel/reduce.hpp"
#include "parallel/rng.hpp"

namespace sbg::check {
namespace {

/// Palette-explosion envelope: the speculative solvers are first-fit-like
/// (final color <= degree + window), the EB family skips in 32-color words,
/// and COLOR-Degk stacks k+1 low colors on top of the high palette. Twice
/// the greedy bound plus those offsets is comfortably loose while still
/// catching a runaway palette.
constexpr std::uint32_t kPaletteSlack = 40;

std::string fmt(const char* prefix, const std::string& name,
                const std::string& detail) {
  return std::string(prefix) + name + ": " + detail;
}

vid_t max_degree(const CsrGraph& g) {
  return parallel_max<vid_t>(
      g.num_vertices(), [&](std::size_t v) { return g.degree(static_cast<vid_t>(v)); },
      vid_t{0});
}

std::vector<std::pair<vid_t, vid_t>> canonical_bridges(
    std::vector<std::pair<vid_t, vid_t>> bridges) {
  for (auto& [a, b] : bridges) {
    if (a > b) std::swap(a, b);
  }
  std::sort(bridges.begin(), bridges.end());
  return bridges;
}

void check_matchings(const CsrGraph& g, std::uint64_t seed, int* runs,
                     std::vector<std::string>& fails) {
  eid_t min_card = 0, max_card = 0;
  std::string min_name, max_name;
  bool have_card = false;
  for (const auto& variant : matching_variants()) {
    if (runs) ++*runs;
    try {
      const MatchResult r = variant.run(g, seed);
      const MatchingReport rep = check_matching(g, r.mate);
      if (!rep.result) {
        fails.push_back(fmt("mm/", variant.name, rep.result.message()));
        continue;
      }
      if (rep.cardinality != r.cardinality) {
        fails.push_back(fmt("mm/", variant.name,
                            "reported cardinality " +
                                std::to_string(r.cardinality) +
                                " != mate array cardinality " +
                                std::to_string(rep.cardinality)));
      }
      if (!have_card || rep.cardinality < min_card) {
        min_card = rep.cardinality;
        min_name = variant.name;
      }
      if (!have_card || rep.cardinality > max_card) {
        max_card = rep.cardinality;
        max_name = variant.name;
      }
      have_card = true;
    } catch (const std::exception& e) {
      fails.push_back(fmt("mm/", variant.name,
                          std::string("exception: ") + e.what()));
    }
  }
  // Any two maximal matchings of one graph are within a factor 2 of each
  // other (each is at least half a maximum matching).
  if (have_card && max_card > 2 * min_card) {
    fails.push_back("mm agreement: |M(" + max_name + ")| = " +
                    std::to_string(max_card) + " > 2 * |M(" + min_name +
                    ")| = 2 * " + std::to_string(min_card));
  }
}

void check_colorings(const CsrGraph& g, std::uint64_t seed, vid_t maxdeg,
                     int* runs, std::vector<std::string>& fails) {
  const std::uint32_t envelope = 2 * (maxdeg + 1) + kPaletteSlack;
  for (const auto& variant : coloring_variants()) {
    if (runs) ++*runs;
    try {
      const ColorResult r = variant.run(g, seed);
      const ColoringReport rep = check_coloring(g, r.color);
      if (!rep.result) {
        fails.push_back(fmt("color/", variant.name, rep.result.message()));
        continue;
      }
      if (rep.num_colors != r.num_colors) {
        fails.push_back(fmt("color/", variant.name,
                            "reported num_colors " +
                                std::to_string(r.num_colors) +
                                " != palette span " +
                                std::to_string(rep.num_colors)));
      }
      if (g.num_edges() > 0 && rep.distinct_colors < 2) {
        fails.push_back(fmt("color/", variant.name,
                            "one distinct color on a graph with edges"));
      }
      if (rep.num_colors > envelope) {
        fails.push_back(fmt("color/", variant.name,
                            "palette span " + std::to_string(rep.num_colors) +
                                " blows the 2*(maxdeg+1)+" +
                                std::to_string(kPaletteSlack) + " = " +
                                std::to_string(envelope) + " envelope"));
      }
    } catch (const std::exception& e) {
      fails.push_back(fmt("color/", variant.name,
                          std::string("exception: ") + e.what()));
    }
  }
}

void check_mis_variants(const CsrGraph& g, std::uint64_t seed, vid_t maxdeg,
                        int* runs, std::vector<std::string>& fails) {
  const vid_t n = g.num_vertices();
  // Any maximal independent set dominates the graph, so it has at least
  // n / (maxdeg + 1) vertices.
  const std::size_t floor_size =
      n == 0 ? 0 : (static_cast<std::size_t>(n) + maxdeg) / (maxdeg + 1);
  for (const auto& variant : mis_variants()) {
    if (runs) ++*runs;
    try {
      const MisResult r = variant.run(g, seed);
      const MisReport rep = check_mis(g, r.state);
      if (!rep.result) {
        fails.push_back(fmt("mis/", variant.name, rep.result.message()));
        continue;
      }
      if (rep.size != r.size) {
        fails.push_back(fmt("mis/", variant.name,
                            "reported size " + std::to_string(r.size) +
                                " != state array size " +
                                std::to_string(rep.size)));
      }
      if (rep.size < floor_size) {
        fails.push_back(fmt("mis/", variant.name,
                            "|I| = " + std::to_string(rep.size) +
                                " below the n/(maxdeg+1) floor of " +
                                std::to_string(floor_size)));
      }
    } catch (const std::exception& e) {
      fails.push_back(fmt("mis/", variant.name,
                          std::string("exception: ") + e.what()));
    }
  }
}

void check_decompositions(const CsrGraph& g, std::uint64_t seed, int* runs,
                          std::vector<std::string>& fails) {
  const auto push = [&](const char* name, const CheckResult& r) {
    if (!r) fails.push_back(fmt("decompose/", name, r.message()));
  };
  if (runs) *runs += 7;
  try {
    const BridgeDecomposition naive =
        decompose_bridge(g, BridgeAlgo::kNaiveWalk);
    push("bridge-naive", check_decomposition(g, naive));
    const BridgeDecomposition fast =
        decompose_bridge(g, BridgeAlgo::kShortcutWalk);
    push("bridge-shortcut", check_decomposition(g, fast));
    // Differential: both walks against the sequential Tarjan reference.
    const auto ref = canonical_bridges(bridges_reference(g));
    for (const auto& [name, got] :
         {std::pair{"bridge-naive", canonical_bridges(naive.bridges)},
          std::pair{"bridge-shortcut", canonical_bridges(fast.bridges)}}) {
      if (got != ref) {
        fails.push_back(fmt("decompose/", name,
                            "bridge set (" + std::to_string(got.size()) +
                                ") differs from Tarjan reference (" +
                                std::to_string(ref.size()) + ")"));
      }
    }
  } catch (const std::exception& e) {
    fails.push_back(fmt("decompose/", "bridge",
                        std::string("exception: ") + e.what()));
  }
  try {
    push("rand-heuristic",
         check_decomposition(
             g, decompose_rand(g, rand_partition_heuristic(g), seed)));
    push("rand-k3", check_decomposition(g, decompose_rand(g, 3, seed)));
  } catch (const std::exception& e) {
    fails.push_back(fmt("decompose/", "rand",
                        std::string("exception: ") + e.what()));
  }
  try {
    push("grow-k4", check_decomposition(g, decompose_grow(g, 4, seed)));
  } catch (const std::exception& e) {
    fails.push_back(fmt("decompose/", "grow",
                        std::string("exception: ") + e.what()));
  }
  try {
    push("degk-2",
         check_decomposition(g, decompose_degk(g, 2, kDegkAll), kDegkAll));
  } catch (const std::exception& e) {
    fails.push_back(fmt("decompose/", "degk",
                        std::string("exception: ") + e.what()));
  }
  try {
    push("kcore-2",
         check_decomposition(g, decompose_kcore(g, 2, kKcoreAll), kKcoreAll));
  } catch (const std::exception& e) {
    fails.push_back(fmt("decompose/", "kcore",
                        std::string("exception: ") + e.what()));
  }
}

}  // namespace

const std::vector<std::string>& fuzz_families() {
  static const std::vector<std::string> kFamilies = {
      "basic", "rgg", "rmat", "synth", "ingest", "batch", "auto", "serve",
      "dyn"};
  return kFamilies;
}

CsrGraph fuzz_graph(const std::string& family, std::uint64_t seed, vid_t max_n,
                    std::string* shape) {
  Rng rng(seed);
  const auto describe = [&](const std::string& s, const CsrGraph& g) {
    if (shape) {
      *shape = family + "/" + s + " n=" + std::to_string(g.num_vertices()) +
               " m=" + std::to_string(g.num_edges());
    }
  };
  // One graph in 16 is degenerate-tiny (n in [0, 4]) so the zoo keeps
  // hitting the empty/singleton/disconnected corners.
  const vid_t span = max_n < 8 ? 8 : max_n;
  vid_t n = rng.below(16) == 0
                ? static_cast<vid_t>(rng.below(5))
                : static_cast<vid_t>(2 + rng.below(span - 2));
  const bool connect = rng.below(2) == 0;
  const std::uint64_t gseed = rng.next();

  if (family == "basic") {
    switch (rng.below(7)) {
      case 0: {
        CsrGraph g = build_graph(gen_path(n), false);
        describe("path", g);
        return g;
      }
      case 1: {
        CsrGraph g = build_graph(gen_cycle(n), false);
        describe("cycle", g);
        return g;
      }
      case 2: {
        CsrGraph g = build_graph(gen_star(n), false);
        describe("star", g);
        return g;
      }
      case 3: {
        n = std::min<vid_t>(n, 48);  // cliques are O(n^2) edges
        CsrGraph g = build_graph(gen_complete(n), false);
        describe("complete", g);
        return g;
      }
      case 4: {
        const vid_t rows = 1 + static_cast<vid_t>(std::sqrt(double(n)));
        CsrGraph g = build_graph(gen_grid(rows, (n / rows) + 1), false);
        describe("grid", g);
        return g;
      }
      case 5: {
        CsrGraph g = build_graph(gen_random_tree(n, gseed), false);
        describe("tree", g);
        return g;
      }
      default: {
        const eid_t m = static_cast<eid_t>(n) * (1 + rng.below(4));
        CsrGraph g = build_graph(gen_erdos_renyi(n, m, gseed), connect);
        describe("er", g);
        return g;
      }
    }
  }
  if (family == "rgg") {
    const double deg = 2.0 + static_cast<double>(rng.below(11));
    CsrGraph g = build_graph(gen_rgg(n, deg, gseed), connect);
    describe("rgg", g);
    return g;
  }
  if (family == "rmat") {
    const eid_t m = static_cast<eid_t>(n) * (2 + rng.below(7));
    CsrGraph g = build_graph(gen_rmat(n, m, gseed), connect);
    describe("rmat", g);
    return g;
  }
  if (family == "synth") {
    switch (rng.below(5)) {
      case 0: {
        CsrGraph g = build_graph(
            gen_road(n, 1.0 + rng.uniform() * 2.0, rng.uniform() * 0.5, gseed,
                     rng.below(2) == 1),
            connect);
        describe("road", g);
        return g;
      }
      case 1: {
        CsrGraph g = build_graph(gen_broom(n, gseed), connect);
        describe("broom", g);
        return g;
      }
      case 2: {
        CsrGraph g = build_graph(
            gen_numerical(n, 0.3 + rng.uniform() * 0.5,
                          2.0 + rng.uniform() * 6.0, gseed),
            connect);
        describe("numerical", g);
        return g;
      }
      case 3: {
        CsrGraph g = build_graph(
            gen_collab(n, 3.0 + rng.uniform() * 6.0,
                       static_cast<vid_t>(4 + rng.below(12)), gseed),
            connect);
        describe("collab", g);
        return g;
      }
      default: {
        CsrGraph g = build_graph(
            gen_web(n, 0.2 + rng.uniform() * 0.4, 4.0 + rng.uniform() * 6.0,
                    1.0 + rng.uniform() * 3.0, gseed,
                    static_cast<int>(rng.below(3))),
            connect);
        describe("web", g);
        return g;
      }
    }
  }
  throw InputError("unknown fuzz family: " + family);
}

std::vector<std::string> fuzz_check_graph(const CsrGraph& g,
                                          std::uint64_t seed,
                                          int* solver_runs) {
  SBG_COUNTER_ADD("fuzz.graphs", 1);
  std::vector<std::string> fails;
  const vid_t maxdeg = max_degree(g);
  check_matchings(g, seed, solver_runs, fails);
  check_colorings(g, seed, maxdeg, solver_runs, fails);
  check_mis_variants(g, seed, maxdeg, solver_runs, fails);
  check_decompositions(g, seed, solver_runs, fails);
  SBG_COUNTER_ADD("fuzz.failures", fails.size());
  return fails;
}

FuzzSummary run_fuzz(const FuzzOptions& opt) {
  SBG_SPAN("fuzz.run");
  FuzzSummary summary;
  const auto& all = fuzz_families();
  std::vector<std::string> families =
      opt.families.empty() ? all : opt.families;
  for (const auto& family : families) {
    if (std::find(all.begin(), all.end(), family) == all.end()) {
      throw InputError("unknown fuzz family: " + family);
    }
  }
  for (std::size_t f = 0; f < families.size(); ++f) {
    const std::string& family = families[f];
    int family_failures = 0;
    for (int i = 0; i < opt.graphs_per_family; ++i) {
      // Pure function of (seed, family name, iteration) so a subset of
      // families replays the same graphs the full run saw.
      std::uint64_t graph_seed = mix64(opt.seed);
      for (const char c : family) {
        graph_seed = mix64(graph_seed ^ static_cast<std::uint64_t>(c));
      }
      graph_seed = mix64(graph_seed ^ static_cast<std::uint64_t>(i));

      std::string shape;
      std::vector<std::string> fails;
      try {
        if (family == "ingest") {
          // Not a generator family: one differential ingestion iteration
          // (text render -> parse -> cache) instead of the solver zoo.
          fails = fuzz_check_ingest(graph_seed, &shape, &summary.solver_runs);
        } else if (family == "batch") {
          // Concurrency fuzz: a sched::run_batch over 2-4 workers, replayed
          // sequentially for hash agreement (see fuzz_batch.cpp).
          fails = fuzz_check_batch(graph_seed, opt.max_n, &shape,
                                   &summary.solver_runs);
        } else if (family == "auto") {
          // Adaptive-selection fuzz: the sched "auto" path differenced
          // against explicit runs + selector property checks
          // (see fuzz_auto.cpp).
          fails = fuzz_check_auto(graph_seed, opt.max_n, &shape,
                                  &summary.solver_runs);
        } else if (family == "serve") {
          // Service fuzz: concurrent clients against a live in-process
          // daemon, adversarial HTTP included (see fuzz_serve.cpp).
          fails = fuzz_check_serve(graph_seed, opt.max_n, &shape,
                                   &summary.solver_runs);
        } else if (family == "dyn") {
          // Dynamic-graph fuzz: random update batches applied to a DynGraph
          // with incremental repair, differenced against from-scratch solves
          // on the materialized graph (see fuzz_dyn.cpp).
          fails = fuzz_check_dyn(graph_seed, opt.max_n, &shape,
                                 &summary.solver_runs);
        } else {
          const CsrGraph g = fuzz_graph(family, graph_seed, opt.max_n, &shape);
          fails = fuzz_check_graph(g, graph_seed, &summary.solver_runs);
        }
      } catch (const std::exception& e) {
        fails.push_back(std::string("graph generation: exception: ") +
                        e.what());
      }
      ++summary.graphs;
      for (auto& what : fails) {
        ++family_failures;
        if (opt.log) {
          std::fprintf(opt.log,
                       "FAIL %s graph_seed=%" PRIu64 " (%s): %s\n",
                       family.c_str(), graph_seed, shape.c_str(),
                       what.c_str());
        }
        summary.failures.push_back(
            {family, graph_seed, shape, std::move(what)});
      }
    }
    if (opt.log) {
      std::fprintf(opt.log, "family %-5s: %d graphs, %d failure%s\n",
                   family.c_str(), opt.graphs_per_family, family_failures,
                   family_failures == 1 ? "" : "s");
    }
  }
  return summary;
}

}  // namespace sbg::check
