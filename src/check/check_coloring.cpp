#include <algorithm>

#include "check/check.hpp"
#include "obs/obs.hpp"
#include "parallel/reduce.hpp"

namespace sbg::check {

ColoringReport check_coloring(const CsrGraph& g,
                              const std::vector<std::uint32_t>& color) {
  SBG_COUNTER_ADD("check.coloring.runs", 1);
  const vid_t n = g.num_vertices();
  ColoringReport rep;
  if (color.size() != n) {
    rep.result = CheckResult::fail("color array size != num_vertices");
    return rep;
  }

  const std::size_t uncolored = parallel_first(
      n, [&](std::size_t v) { return color[v] == kNoColor; });
  if (uncolored < n) {
    rep.result =
        CheckResult::fail("uncolored vertex", static_cast<vid_t>(uncolored));
    return rep;
  }

  const std::size_t mono = parallel_first(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    for (const vid_t w : g.neighbors(v)) {
      if (color[w] == color[v]) return true;
    }
    return false;
  });
  if (mono < n) {
    const vid_t v = static_cast<vid_t>(mono);
    vid_t partner = kNoVertex;
    for (const vid_t w : g.neighbors(v)) {
      if (color[w] == color[v]) {
        partner = w;
        break;
      }
    }
    rep.result = CheckResult::fail("monochromatic edge", v, partner);
    return rep;
  }

  // Palette report. num_colors is the span (max + 1); class sizes come from
  // a counting pass when the span is dense enough, a sort-unique pass when a
  // solver returned exotic sparse color ids (keeps memory O(n) either way).
  rep.num_colors =
      n == 0 ? 0
             : parallel_max<std::uint32_t>(
                   n, [&](std::size_t v) { return color[v] + 1; }, 0u);
  if (rep.num_colors == 0) return rep;
  if (rep.num_colors <= 4 * static_cast<std::uint64_t>(n) + 64) {
    std::vector<vid_t> class_size(rep.num_colors, 0);
    for (vid_t v = 0; v < n; ++v) ++class_size[color[v]];
    for (const vid_t s : class_size) {
      if (s > 0) ++rep.distinct_colors;
      rep.largest_class = std::max(rep.largest_class, s);
    }
  } else {
    std::vector<std::uint32_t> sorted(color);
    std::sort(sorted.begin(), sorted.end());
    vid_t run = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      run = (i > 0 && sorted[i] == sorted[i - 1]) ? run + 1 : 1;
      if (run == 1) ++rep.distinct_colors;
      rep.largest_class = std::max(rep.largest_class, run);
    }
  }
  return rep;
}

}  // namespace sbg::check
