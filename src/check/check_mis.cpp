#include "check/check.hpp"
#include "obs/obs.hpp"
#include "parallel/reduce.hpp"

namespace sbg::check {

MisReport check_mis(const CsrGraph& g, const std::vector<MisState>& state) {
  SBG_COUNTER_ADD("check.mis.runs", 1);
  const vid_t n = g.num_vertices();
  MisReport rep;
  if (state.size() != n) {
    rep.result = CheckResult::fail("state array size != num_vertices");
    return rep;
  }

  // Legal, decided states only. Guards against memory corruption writing
  // arbitrary bytes into the enum array (the fuzz harness runs under ASan,
  // but a stray in-bounds write is invisible to it).
  const std::size_t bad_state = parallel_first(n, [&](std::size_t v) {
    const auto raw = static_cast<std::uint8_t>(state[v]);
    return raw != static_cast<std::uint8_t>(MisState::kIn) &&
           raw != static_cast<std::uint8_t>(MisState::kOut);
  });
  if (bad_state < n) {
    const vid_t v = static_cast<vid_t>(bad_state);
    rep.result = state[v] == MisState::kUndecided
                     ? CheckResult::fail("undecided vertex", v)
                     : CheckResult::fail("invalid state value", v);
    return rep;
  }

  // Independence: no two adjacent kIn vertices.
  const std::size_t dependent = parallel_first(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    if (state[v] != MisState::kIn) return false;
    for (const vid_t w : g.neighbors(v)) {
      if (state[w] == MisState::kIn) return true;
    }
    return false;
  });
  if (dependent < n) {
    const vid_t v = static_cast<vid_t>(dependent);
    vid_t partner = kNoVertex;
    for (const vid_t w : g.neighbors(v)) {
      if (state[w] == MisState::kIn) {
        partner = w;
        break;
      }
    }
    rep.result =
        CheckResult::fail("two adjacent vertices in the set", v, partner);
    return rep;
  }

  // Maximality / state consistency: every kOut vertex has a kIn neighbor.
  const std::size_t orphan = parallel_first(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    if (state[v] != MisState::kOut) return false;
    for (const vid_t w : g.neighbors(v)) {
      if (state[w] == MisState::kIn) return false;
    }
    return true;
  });
  if (orphan < n) {
    rep.result = CheckResult::fail("excluded vertex has no neighbor in the set",
                                   static_cast<vid_t>(orphan));
    return rep;
  }

  rep.size = parallel_count(
      n, [&](std::size_t v) { return state[v] == MisState::kIn; });
  return rep;
}

}  // namespace sbg::check
