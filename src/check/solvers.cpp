#include "check/solvers.hpp"

#include "gpusim/gpu_algorithms.hpp"
#include "ooc/ooc.hpp"

namespace sbg::check {

namespace {

/// Run the out-of-core executor as a registry variant: budget comes from
/// SBG_MEM_BUDGET (0 = in-core piece store), so the same differential and
/// oracle suites exercise the spill path when the env var is set.
MatchResult mm_ooc(const CsrGraph& g, ooc::PieceFamily family,
                   std::uint64_t seed) {
  ooc::PlanOptions po;
  po.family = family;
  po.engine = ooc::Engine::kGM;
  po.seed = seed;
  po.mem_budget = ooc::mem_budget_from_env();
  const ooc::CsrSource src = ooc::CsrSource::from_graph(g);
  const ooc::Plan plan = ooc::plan_ooc(src, po);
  ooc::OocResult r = ooc::run_ooc(src, plan);
  if (r.status != ooc::RunStatus::kOk) {
    throw InputError("ooc run failed: " + r.error);
  }
  MatchResult mr;
  mr.mate = std::move(r.mate);
  mr.cardinality = r.cardinality;
  mr.rounds = r.rounds;
  mr.total_seconds = r.total_seconds;
  mr.decompose_seconds = r.extract_seconds;
  mr.solve_seconds = r.solve_seconds;
  return mr;
}

}  // namespace

const std::vector<MatchingVariant>& matching_variants() {
  static const std::vector<MatchingVariant> kVariants = {
      {"gm", [](const CsrGraph& g, std::uint64_t) { return mm_gm(g); }},
      {"lmax-index",
       [](const CsrGraph& g, std::uint64_t s) {
         return mm_lmax(g, s, LmaxWeights::kIndex);
       }},
      {"lmax-random",
       [](const CsrGraph& g, std::uint64_t s) {
         return mm_lmax(g, s, LmaxWeights::kRandom);
       }},
      {"ii", [](const CsrGraph& g, std::uint64_t s) { return mm_ii(g, s); }},
      {"greedy-seq",
       [](const CsrGraph& g, std::uint64_t) { return mm_greedy_seq(g); }},
      {"bridge-gm",
       [](const CsrGraph& g, std::uint64_t s) {
         return mm_bridge(g, MatchEngine::kGM, s, BridgeAlgo::kNaiveWalk);
       }},
      {"bridge-gm-shortcut",
       [](const CsrGraph& g, std::uint64_t s) {
         return mm_bridge(g, MatchEngine::kGM, s, BridgeAlgo::kShortcutWalk);
       }},
      {"bridge-lmax",
       [](const CsrGraph& g, std::uint64_t s) {
         return mm_bridge(g, MatchEngine::kLMAX, s);
       }},
      {"rand-gm",
       [](const CsrGraph& g, std::uint64_t s) {
         return mm_rand(g, 0, MatchEngine::kGM, s);
       }},
      {"rand-lmax",
       [](const CsrGraph& g, std::uint64_t s) {
         return mm_rand(g, 4, MatchEngine::kLMAX, s);
       }},
      {"degk-gm",
       [](const CsrGraph& g, std::uint64_t s) {
         return mm_degk(g, 2, MatchEngine::kGM, s);
       }},
      {"degk-lmax",
       [](const CsrGraph& g, std::uint64_t s) {
         return mm_degk(g, 2, MatchEngine::kLMAX, s);
       }},
      {"ooc-rand-gm",
       [](const CsrGraph& g, std::uint64_t s) {
         return mm_ooc(g, ooc::PieceFamily::kRand, s);
       }},
      {"ooc-degk-gm",
       [](const CsrGraph& g, std::uint64_t s) {
         return mm_ooc(g, ooc::PieceFamily::kDegk, s);
       }},
      {"gpu/lmax",
       [](const CsrGraph& g, std::uint64_t s) { return gpu::mm_lmax_gpu(g, s); }},
      {"gpu/bridge",
       [](const CsrGraph& g, std::uint64_t s) {
         return gpu::mm_bridge_gpu(g, s);
       }},
      {"gpu/rand",
       [](const CsrGraph& g, std::uint64_t s) {
         return gpu::mm_rand_gpu(g, 0, s);
       }},
      {"gpu/degk",
       [](const CsrGraph& g, std::uint64_t s) {
         return gpu::mm_degk_gpu(g, 2, s);
       }},
  };
  return kVariants;
}

const std::vector<ColoringVariant>& coloring_variants() {
  static const std::vector<ColoringVariant> kVariants = {
      {"vb", [](const CsrGraph& g, std::uint64_t) { return color_vb(g); }},
      {"eb", [](const CsrGraph& g, std::uint64_t) { return color_eb(g); }},
      {"jp-random",
       [](const CsrGraph& g, std::uint64_t s) {
         return color_jp(g, JpOrder::kRandom, s);
       }},
      {"jp-ldf",
       [](const CsrGraph& g, std::uint64_t s) {
         return color_jp(g, JpOrder::kLargestDegreeFirst, s);
       }},
      {"jp-sdf",
       [](const CsrGraph& g, std::uint64_t s) {
         return color_jp(g, JpOrder::kSmallestDegreeFirst, s);
       }},
      {"spec",
       [](const CsrGraph& g, std::uint64_t) { return color_speculative(g); }},
      {"bridge-vb",
       [](const CsrGraph& g, std::uint64_t) {
         return color_bridge(g, ColorEngine::kVB);
       }},
      {"bridge-eb",
       [](const CsrGraph& g, std::uint64_t) {
         return color_bridge(g, ColorEngine::kEB);
       }},
      {"rand-vb",
       [](const CsrGraph& g, std::uint64_t s) {
         return color_rand(g, 2, ColorEngine::kVB, s);
       }},
      {"rand-eb",
       [](const CsrGraph& g, std::uint64_t s) {
         return color_rand(g, 4, ColorEngine::kEB, s);
       }},
      {"degk-vb",
       [](const CsrGraph& g, std::uint64_t) {
         return color_degk(g, 2, ColorEngine::kVB);
       }},
      {"degk-eb",
       [](const CsrGraph& g, std::uint64_t) {
         return color_degk(g, 2, ColorEngine::kEB);
       }},
      {"gpu/eb",
       [](const CsrGraph& g, std::uint64_t) { return gpu::color_eb_gpu(g); }},
      {"gpu/bridge",
       [](const CsrGraph& g, std::uint64_t) {
         return gpu::color_bridge_gpu(g);
       }},
      {"gpu/rand",
       [](const CsrGraph& g, std::uint64_t s) {
         return gpu::color_rand_gpu(g, 2, s);
       }},
      {"gpu/degk",
       [](const CsrGraph& g, std::uint64_t) {
         return gpu::color_degk_gpu(g, 2);
       }},
  };
  return kVariants;
}

const std::vector<MisVariant>& mis_variants() {
  static const std::vector<MisVariant> kVariants = {
      {"luby", [](const CsrGraph& g, std::uint64_t s) { return mis_luby(g, s); }},
      {"greedy",
       [](const CsrGraph& g, std::uint64_t s) { return mis_greedy(g, s); }},
      {"greedy-seq",
       [](const CsrGraph& g, std::uint64_t) { return mis_greedy_seq(g); }},
      {"bridge",
       [](const CsrGraph& g, std::uint64_t s) { return mis_bridge(g, s); }},
      {"rand",
       [](const CsrGraph& g, std::uint64_t s) { return mis_rand(g, 0, s); }},
      {"degk2",
       [](const CsrGraph& g, std::uint64_t s) { return mis_degk(g, 2, s); }},
      {"degk3",
       [](const CsrGraph& g, std::uint64_t s) { return mis_degk(g, 3, s); }},
      {"gpu/luby",
       [](const CsrGraph& g, std::uint64_t s) { return gpu::mis_luby_gpu(g, s); }},
      {"gpu/bridge",
       [](const CsrGraph& g, std::uint64_t s) {
         return gpu::mis_bridge_gpu(g, s);
       }},
      {"gpu/rand",
       [](const CsrGraph& g, std::uint64_t s) {
         return gpu::mis_rand_gpu(g, 0, s);
       }},
      {"gpu/degk",
       [](const CsrGraph& g, std::uint64_t s) {
         return gpu::mis_degk_gpu(g, 2, s);
       }},
  };
  return kVariants;
}

}  // namespace sbg::check
