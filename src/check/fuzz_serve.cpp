// The "serve" fuzz family: concurrent clients against a live daemon.
//
// One iteration boots an in-process serve::Server on an ephemeral loopback
// port, registers a fuzzed graph, and fires 2-4 client threads at it. Each
// client interleaves well-formed job requests with the adversarial traffic
// the HTTP layer must shrug off: malformed JSON, raw garbage bytes,
// oversized bodies, already-expired deadlines, unknown graphs/variants.
// Every well-formed answer is differentially checked against a direct
// sched::run_job on the same spec (hash equality for schedule-deterministic
// variants). Some iterations drain the server mid-request — the in-flight
// response must still arrive complete, and post-drain connects must be
// refused. Under TSan this family is the data-race gate for the whole
// serve path (CI: serve-tsan).
#include "check/fuzz.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "parallel/rng.hpp"
#include "sched/sched.hpp"
#include "serve/client.hpp"
#include "serve/minijson.hpp"
#include "serve/server.hpp"

namespace sbg::check {

namespace {

struct DoneJob {
  sched::JobSpec spec;
  std::string served_hash;  ///< decimal string, as the response carries it
  std::uint64_t served_value = 0;
};

const char* pick_variant(sched::Problem p, Rng& rng) {
  static const char* kMm[] = {"gm", "rand-gm", "degk-gm", "bridge-gm"};
  static const char* kColor[] = {"vb", "jp-random", "rand-vb", "degk-vb"};
  static const char* kMis[] = {"luby", "rand", "degk2", "bridge"};
  switch (p) {
    case sched::Problem::kMM: return kMm[rng.below(4)];
    case sched::Problem::kColor: return kColor[rng.below(4)];
    case sched::Problem::kMis: return kMis[rng.below(4)];
  }
  return "gm";
}

std::string job_body(const std::string& graph, sched::Problem p,
                     const std::string& variant, std::uint64_t seed) {
  return std::string("{\"graph\":\"") + graph + "\",\"problem\":\"" +
         sched::to_string(p) + "\",\"variant\":\"" + variant +
         "\",\"seed\":" + std::to_string(seed) + "}";
}

}  // namespace

std::vector<std::string> fuzz_check_serve(std::uint64_t seed, vid_t max_n,
                                          std::string* shape,
                                          int* solver_runs) {
  SBG_COUNTER_ADD("fuzz.serve_iterations", 1);
  std::vector<std::string> fails;
  Rng rng(mix64(seed ^ 0x5e47e));

  static const char* kGraphFamilies[] = {"basic", "rgg", "rmat", "synth"};
  const std::string family = kGraphFamilies[rng.below(4)];
  std::string graph_shape;
  auto graph = std::make_shared<const CsrGraph>(
      fuzz_graph(family, rng.next(), max_n, &graph_shape));

  serve::ServerOptions opt;
  opt.workers = 2 + int(rng.below(3));
  opt.queue_cap = 32;  // ample: a spontaneous 429 would fail valid requests
  opt.limits.max_body_bytes = 2048;  // small enough to trip with one string
  opt.telemetry_flush_s = 0;         // no disk traffic from the fuzzer
  serve::Server server(opt);
  std::string err;
  if (!server.start(&err)) {
    fails.push_back("serve/start: " + err);
    return fails;
  }
  server.registry().put("fg", graph, "fuzz:" + graph_shape);

  const bool drain_mid_request = rng.below(3) == 0;
  const int nclients = 2 + int(rng.below(3));
  // Seeds ride the wire as JSON numbers (doubles), exact only to 2^53 —
  // a full 64-bit seed would silently lose low bits server-side and break
  // the differential. 32 bits of entropy is plenty for the solvers.
  const std::uint64_t job_seed = rng.next() & 0xffffffffull;
  if (shape) {
    *shape = graph_shape + " clients=" + std::to_string(nclients) +
             " workers=" + std::to_string(opt.workers) +
             (drain_mid_request ? " drain" : "");
  }

  std::mutex mu;  // guards fails + done from the client threads
  std::vector<DoneJob> done;
  const auto fail = [&](const std::string& msg) {
    std::lock_guard<std::mutex> lock(mu);
    fails.push_back("serve/" + msg);
  };
  // In drain iterations the regular clients race the shutdown, so a refused
  // connect is expected there — only answers that DID arrive are checked.
  const auto fail_transport = [&](const std::string& msg) {
    if (!drain_mid_request) fail(msg);
  };

  // Per-client request scripts are drawn up-front from the iteration Rng so
  // the traffic mix is a pure function of the seed; only the interleaving
  // varies across runs.
  struct Step {
    int kind;
    sched::Problem p;
    std::string variant;
    std::uint64_t x = 0;  ///< per-step entropy, drawn up-front (threads
                          ///< must not share the iteration Rng)
  };
  std::vector<std::vector<Step>> scripts(static_cast<std::size_t>(nclients));
  for (auto& script : scripts) {
    const int nreq = 2 + int(rng.below(3));
    for (int r = 0; r < nreq; ++r) {
      Step s;
      s.kind = int(rng.below(10));
      s.p = static_cast<sched::Problem>(rng.below(3));
      s.variant = pick_variant(s.p, rng);
      s.x = rng.next();
      script.push_back(std::move(s));
    }
  }

  std::vector<std::thread> clients;
  clients.reserve(std::size_t(nclients));
  for (int c = 0; c < nclients; ++c) {
    clients.emplace_back([&, c] {
      for (const Step& step : scripts[std::size_t(c)]) {
        serve::ClientResponse res;
        std::string cerr;
        switch (step.kind) {
          case 0:    // malformed JSON -> 400
          case 1: {
            if (!serve::http_request(server.port(), "POST", "/v1/jobs",
                                     "{\"graph\": nope", &res, &cerr)) {
              fail_transport("malformed: transport: " + cerr);
            } else if (res.status != 400) {
              fail("malformed: got " + std::to_string(res.status));
            }
            break;
          }
          case 2: {  // oversized body -> 413
            if (!serve::http_request(server.port(), "POST", "/v1/jobs",
                                     std::string(4096, 'a'), &res, &cerr)) {
              fail_transport("oversized: transport: " + cerr);
            } else if (res.status != 413) {
              fail("oversized: got " + std::to_string(res.status));
            }
            break;
          }
          case 3: {  // expired deadline -> 504 cancelled
            const std::string body =
                "{\"graph\":\"fg\",\"problem\":\"" +
                std::string(sched::to_string(step.p)) +
                "\",\"deadline_ms\":0.000001}";
            if (!serve::http_request(server.port(), "POST", "/v1/jobs", body,
                                     &res, &cerr)) {
              fail_transport("deadline: transport: " + cerr);
            } else if (res.status != 504) {
              fail("deadline: got " + std::to_string(res.status) + ": " +
                   res.body);
            }
            break;
          }
          case 4: {  // unknown graph -> 404; unknown variant -> 422
            const bool bad_variant = step.variant.size() % 2 == 0;
            const std::string body =
                bad_variant
                    ? "{\"graph\":\"fg\",\"variant\":\"no-such-variant\"}"
                    : "{\"graph\":\"no-such-graph.mtx\"}";
            const int want = bad_variant ? 422 : 404;
            if (!serve::http_request(server.port(), "POST", "/v1/jobs", body,
                                     &res, &cerr)) {
              fail_transport("unknown: transport: " + cerr);
            } else if (res.status != want) {
              fail("unknown: want " + std::to_string(want) + " got " +
                   std::to_string(res.status));
            }
            break;
          }
          case 5: {  // raw garbage must get an error answer, never a hang
            std::string raw;
            serve::http_raw(server.port(),
                            "\x01\x02garbage\r\nnot-http\r\n\r\n", &raw,
                            &cerr);
            // Any outcome but a crash/hang is fine; a response, if one
            // came, must be a 4xx.
            if (!raw.empty() && raw.find("HTTP/1.1 4") != 0) {
              fail("raw: unexpected response: " + raw.substr(0, 40));
            }
            break;
          }
          case 6: {  // truncated / malformed status lines fail structurally
            serve::ClientResponse pr;
            std::string perr;
            static const char* kBad[] = {
                "HTTP/1.1 20\r\nX: 2000\r\n\r\n",  // truncated code, but a
                                                   // later "2000" in headers
                "HTTP/1.1 20",                     // no line terminator
                "",                                // empty
                "HTTP/1.1\r\n\r\n",                // no space on first line
                "HTTP/1.1 2xx OK\r\n\r\n",         // non-digit code
                "junk\r\nHTTP/1.1 200 OK\r\n\r\n"  // status not first line
            };
            for (const char* bad : kBad) {
              perr.clear();
              if (serve::parse_http_response(bad, &pr, &perr)) {
                fail(std::string("parse: accepted malformed response: ") +
                     (bad[0] ? bad : "<empty>"));
              } else if (perr.empty()) {
                fail("parse: rejected a response without an error message");
              }
            }
            if (!serve::parse_http_response(
                    "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok", &pr,
                    &perr) ||
                pr.status != 200 || pr.body != "ok") {
              fail("parse: rejected well-formed response: " + perr);
            }
            break;
          }
          case 7: {  // streaming update batch -> 200, oracle-clean repair
            Rng local(mix64(step.x ^ 0xdab));
            std::string body = "{\"verify\":true,\"insert\":[";
            const int ne = 1 + int(local.below(4));
            for (int i = 0; i < ne; ++i) {
              if (i) body += ",";
              body += "[" + std::to_string(local.below(64)) + "," +
                      std::to_string(local.below(64)) + "]";
            }
            body += "],\"delete\":[[" + std::to_string(local.below(64)) +
                    "," + std::to_string(local.below(64)) + "]]}";
            if (!serve::http_request(server.port(), "POST",
                                     "/v1/graphs/fg/updates", body, &res,
                                     &cerr)) {
              fail_transport("updates: transport: " + cerr);
            } else if (res.status != 200) {
              fail("updates: got " + std::to_string(res.status) + ": " +
                   res.body);
            }
            break;
          }
          default: {  // well-formed job -> 200, recorded for differential
            sched::JobSpec spec;
            spec.name = "fuzz";
            spec.graph_name = "fg";
            spec.graph = graph;
            spec.problem = step.p;
            spec.variant = step.variant;
            spec.seed = job_seed;
            if (!serve::http_request(server.port(), "POST", "/v1/jobs",
                                     job_body("fg", step.p, step.variant,
                                              job_seed),
                                     &res, &cerr)) {
              fail_transport("job: transport: " + cerr);
              break;
            }
            if (res.status != 200) {
              fail("job " + spec.variant + ": got " +
                   std::to_string(res.status) + ": " + res.body);
              break;
            }
            const auto doc = serve::parse_json(res.body);
            if (!doc || !doc->is_object()) {
              fail("job " + spec.variant + ": unparseable body");
              break;
            }
            DoneJob dj;
            dj.spec = std::move(spec);
            dj.served_hash = doc->get_string("result_hash", "");
            dj.served_value = std::uint64_t(doc->get_number("value", 0));
            std::lock_guard<std::mutex> lock(mu);
            done.push_back(std::move(dj));
            break;
          }
        }
      }
    });
  }

  if (drain_mid_request) {
    // One more client parked on a slow job, then drain under it: the
    // response must arrive complete anyway, and fresh connects must fail.
    std::thread slow([&] {
      serve::ClientResponse res;
      std::string cerr;
      if (!serve::http_request(server.port(), "POST", "/v1/jobs",
                               "{\"graph\":\"fg\",\"problem\":\"mm\","
                               "\"sleep_ms\":150}",
                               &res, &cerr)) {
        fail("drain: in-flight transport: " + cerr);
      } else if (res.status != 200) {
        fail("drain: in-flight got " + std::to_string(res.status));
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    const int port = server.port();
    server.shutdown();  // same path the SIGTERM handler triggers
    slow.join();
    for (auto& t : clients) t.join();
    serve::ClientResponse res;
    std::string cerr;
    if (serve::http_request(port, "GET", "/healthz", "", &res, &cerr, 2.0)) {
      fail("drain: connect after drain succeeded (" +
           std::to_string(res.status) + ")");
    }
  } else {
    for (auto& t : clients) t.join();
    server.shutdown();
  }

  // Differential: every served job must equal a direct run_job on the same
  // spec. Hash/value equality is only a contract for schedule-deterministic
  // variants; the rest were already oracle-gated inside the server.
  for (const DoneJob& dj : done) {
    if (solver_runs) ++*solver_runs;
    if (!sched::schedule_deterministic(dj.spec.problem, dj.spec.variant)) {
      continue;
    }
    const sched::JobResult ref = sched::run_job(dj.spec);
    if (ref.status != sched::JobStatus::kOk) {
      fails.push_back("serve/diff " + dj.spec.variant +
                      ": direct replay failed: " + ref.error);
    } else if (dj.served_hash != std::to_string(ref.result_hash) ||
               dj.served_value != ref.value) {
      fails.push_back("serve/diff " + dj.spec.variant + ": served hash " +
                      dj.served_hash + " value " +
                      std::to_string(dj.served_value) + " != direct " +
                      std::to_string(ref.result_hash) + " value " +
                      std::to_string(ref.value));
    }
  }
  if (solver_runs) *solver_runs += int(done.size());

  SBG_COUNTER_ADD("fuzz.failures", fails.size());
  return fails;
}

}  // namespace sbg::check
