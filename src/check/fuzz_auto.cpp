// The "auto" fuzz family: differential fuzzing for adaptive selection.
//
// One iteration draws a random graph, solves each problem through the
// sched "auto" path (variant resolved by the sbg::tune selector, oracle
// gated like every sched job), and then re-runs the variant the selector
// resolved to explicitly — for the schedule-deterministic solvers the two
// solution arrays must be byte-identical (hashes prove it), and the
// resolved variant must always be one of the Table-I candidates for the
// problem. On top of the end-to-end path the iteration fuzzes the
// selector in isolation with random fingerprints (every choice must be
// valid: registered variant, k >= 2, partitions >= 1, threads >= 1) and a
// seeded local telemetry store where a non-table candidate is 3x faster
// (lock-in must pick it), and asserts injected failures never poison the
// telemetry history.
//
// Auto resolution consults the process-global telemetry store, which
// accumulates across iterations; every check here is invariant to WHICH
// candidate the selector picks, so replaying a single seed standalone
// reproduces any failure even though the store state differs. Each
// iteration uses a unique graph name, so its history rows are its own.
#include "check/fuzz.hpp"

#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "parallel/rng.hpp"
#include "parallel/thread_env.hpp"
#include "sched/sched.hpp"
#include "tune/tune.hpp"

namespace sbg::check {

namespace {

std::string fmt_hash_auto(std::uint64_t h) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  return hex;
}

bool is_candidate(sched::Problem p, const std::string& variant) {
  for (const std::string& v : tune::Selector::candidates(p)) {
    if (v == variant) return true;
  }
  return false;
}

/// Validity oracle for a selector decision (the satellite property test,
/// run here against random fingerprints as well as real graphs).
void check_choice_valid(const tune::Choice& c, sched::Problem p,
                        const std::string& ctx,
                        std::vector<std::string>& fails) {
  if (!is_candidate(p, c.variant)) {
    fails.push_back(ctx + ": variant '" + c.variant +
                    "' not a Table-I candidate");
  }
  if (c.k < 2) fails.push_back(ctx + ": k < 2");
  if (c.partitions < 1) fails.push_back(ctx + ": partitions < 1");
  if (c.threads < 1 || c.threads > max_threads()) {
    fails.push_back(ctx + ": threads outside [1, max_threads]");
  }
  if (c.reason.empty()) fails.push_back(ctx + ": empty reason");
}

tune::Fingerprint random_fingerprint(Rng& rng) {
  tune::Fingerprint fp;
  fp.num_vertices = rng.below(2'000'000);
  fp.avg_degree = rng.uniform() * 80.0;
  fp.num_arcs = static_cast<std::uint64_t>(
      fp.avg_degree * static_cast<double>(fp.num_vertices));
  fp.pct_deg2 = rng.uniform() * 100.0;
  fp.pct_bridges = rng.uniform() * 100.0;
  return fp;
}

}  // namespace

std::vector<std::string> fuzz_check_auto(std::uint64_t seed, vid_t max_n,
                                         std::string* shape,
                                         int* solver_runs) {
  SBG_COUNTER_ADD("fuzz.auto_iterations", 1);
  std::vector<std::string> fails;
  Rng rng(mix64(seed ^ 0xa0707));

  static const char* kGraphFamilies[] = {"basic", "rgg", "rmat", "synth"};
  const std::string family = kGraphFamilies[rng.below(4)];
  std::string graph_shape;
  auto graph = std::make_shared<const CsrGraph>(
      fuzz_graph(family, rng.next(), max_n, &graph_shape));
  // Unique per iteration: this iteration's telemetry rows belong to it
  // alone, whatever ran before in the process.
  const std::string graph_name = "fuzz-auto-" + std::to_string(seed);
  if (shape) *shape = graph_shape;

  const std::uint64_t job_seed = rng.next();
  static const sched::Problem kProblems[] = {
      sched::Problem::kMM, sched::Problem::kColor, sched::Problem::kMis};
  for (const sched::Problem problem : kProblems) {
    const std::string ctx =
        std::string("auto/") + to_string(problem) + "/" + graph_shape;

    // Some iterations pre-seed the global store for this (graph, problem)
    // with random plausible timings so resolution exercises the lock-in
    // and telemetry-confirms paths, not just the cold-start table.
    if (rng.below(3) == 0) {
      const std::string key = tune::graph_key(graph_name, *graph);
      for (const std::string& v : tune::Selector::candidates(problem)) {
        for (int r = 0; r < 2; ++r) {
          tune::record_run(key, problem, v, 1e-4 + rng.uniform() * 1e-2,
                           static_cast<double>(1 + rng.below(50)));
        }
      }
    }

    sched::JobSpec spec;
    spec.graph = graph;
    spec.graph_name = graph_name;
    spec.problem = problem;
    spec.variant = sched::kAutoVariant;
    spec.seed = job_seed;
    spec.name = ctx;

    const sched::JobResult res = sched::run_job(spec);
    if (solver_runs) ++*solver_runs;
    if (res.status != sched::JobStatus::kOk) {
      fails.push_back(ctx + ": " + std::string(to_string(res.status)) + ": " +
                      res.error);
      continue;
    }
    if (!is_candidate(problem, res.resolved_variant)) {
      fails.push_back(ctx + ": resolved to '" + res.resolved_variant +
                      "', not a Table-I candidate");
      continue;
    }

    // Differential half: the same job with the resolved variant named
    // explicitly. Auto must be a pure dispatch — for the deterministic
    // solvers the solution arrays (via their hashes), values, and round
    // counts must be identical; the speculative colorers only have to
    // come back oracle-clean.
    sched::JobSpec explicit_spec = spec;
    explicit_spec.variant = res.resolved_variant;
    const sched::JobResult ref = sched::run_job(explicit_spec);
    if (solver_runs) ++*solver_runs;
    if (ref.status != sched::JobStatus::kOk) {
      fails.push_back(ctx + ": explicit " + res.resolved_variant +
                      " replay failed: " + ref.error);
    } else if (sched::schedule_deterministic(problem, res.resolved_variant) &&
               (ref.result_hash != res.result_hash ||
                ref.value != res.value || ref.rounds != res.rounds)) {
      fails.push_back(ctx + ": auto(" + res.resolved_variant + ") result " +
                      fmt_hash_auto(res.result_hash) + " (value " +
                      std::to_string(res.value) + ") != explicit " +
                      fmt_hash_auto(ref.result_hash) + " (value " +
                      std::to_string(ref.value) + ")");
    }
  }

  // An injected failure through the auto path: prepare still resolves (the
  // result names a real candidate), the failure is isolated, and nothing
  // is recorded into the history for the failed run's key.
  if (rng.below(4) == 0) {
    sched::JobSpec spec;
    spec.graph = graph;
    spec.graph_name = graph_name + "-injected";
    spec.problem = sched::Problem::kMM;
    spec.variant = sched::kAutoVariant;
    spec.seed = job_seed;
    spec.name = "auto/injected";
    spec.inject_failure = true;
    const sched::JobResult res = sched::run_job(spec);
    if (res.status != sched::JobStatus::kFailed) {
      fails.push_back("auto/injected: reported as " +
                      std::string(to_string(res.status)));
    }
    if (!is_candidate(sched::Problem::kMM, res.resolved_variant)) {
      fails.push_back("auto/injected: resolved_variant '" +
                      res.resolved_variant + "' not a candidate");
    }
    const auto st = tune::global_store().stats(
        tune::graph_key(spec.graph_name, *graph), spec.problem,
        res.resolved_variant);
    if (st.has_value()) {
      fails.push_back("auto/injected: failed run was recorded into the "
                      "telemetry history");
    }
  }

  // Selector-in-isolation half (deterministic, local store only).
  for (const sched::Problem problem : kProblems) {
    // Property: any fingerprint, however implausible, yields a valid
    // choice — from the static table and from a choose() with history.
    const tune::Fingerprint fp = random_fingerprint(rng);
    check_choice_valid(tune::Selector::table_choice(fp, problem), problem,
                       std::string("table_choice/") + to_string(problem),
                       fails);

    tune::TelemetryStore local;
    const std::string key = "fuzz-fp";
    const tune::Choice table = tune::Selector::table_choice(fp, problem);
    // Seed every candidate past min_runs, with one non-table candidate 3x
    // faster than the table pick: lock-in must choose the fast one.
    const double slow = 1e-3 + rng.uniform() * 1e-2;
    std::string fast_variant;
    for (const std::string& v : tune::Selector::candidates(problem)) {
      double secs = slow;
      if (v != table.variant && fast_variant.empty()) {
        fast_variant = v;
        secs = slow / 3.0;
      }
      for (int r = 0; r < 3; ++r) {
        local.record(key, problem, v, secs, 5.0);
      }
    }
    const tune::Choice refined =
        tune::Selector(&local).choose(fp, problem, key);
    check_choice_valid(refined, problem,
                       std::string("refined/") + to_string(problem), fails);
    if (refined.variant != fast_variant || !refined.from_telemetry) {
      fails.push_back(std::string("refined/") + to_string(problem) +
                      ": selector kept '" + refined.variant +
                      "' over 3x-faster '" + fast_variant + "'");
    }
  }

  SBG_COUNTER_ADD("fuzz.failures", fails.size());
  return fails;
}

}  // namespace sbg::check
