// The "batch" fuzz family: concurrency fuzzing for the sched engine.
//
// One iteration draws a small graph, builds a 2-4-worker batch over a
// seed-chosen slice of the solver zoo, runs it through sched::run_batch
// (every job already oracle-gated there), and then replays every job
// sequentially in this thread — for the schedule-deterministic solvers
// the counter-based RNG discipline promises the concurrent and sequential
// solution arrays are byte-identical, and the per-job result hashes prove
// it (the speculative colorers are only required to replay oracle-clean).
// Some iterations add an injected
// failure or an already-expired deadline so failure isolation and
// cooperative cancellation run under the sanitizers too. Under TSan this
// family is the data-race gate for the whole batch path (CI: batch-tsan).
#include "check/fuzz.hpp"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "parallel/rng.hpp"
#include "sched/sched.hpp"

namespace sbg::check {

namespace {

std::string fmt_hash(std::uint64_t h) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  return hex;
}

}  // namespace

std::vector<std::string> fuzz_check_batch(std::uint64_t seed, vid_t max_n,
                                          std::string* shape,
                                          int* solver_runs) {
  SBG_COUNTER_ADD("fuzz.batch_iterations", 1);
  std::vector<std::string> fails;
  Rng rng(mix64(seed ^ 0xba7c4));

  // Graph family rotates through the generator families so the batch path
  // sees trees, grids, cliques, and power-law shapes, not just ER.
  static const char* kGraphFamilies[] = {"basic", "rgg", "rmat", "synth"};
  const std::string family = kGraphFamilies[rng.below(4)];
  std::string graph_shape;
  auto graph = std::make_shared<const CsrGraph>(
      fuzz_graph(family, rng.next(), max_n, &graph_shape));

  // A seed-chosen slice of the Table-I style matrix: 4-8 jobs over the
  // three problems, run by 2-4 workers with 1-2 threads each.
  static const char* kMm[] = {"gm", "lmax-random", "rand-gm", "degk-gm"};
  static const char* kColor[] = {"vb", "jp-random", "rand-vb", "spec"};
  static const char* kMis[] = {"luby", "rand", "degk2", "bridge"};
  const std::uint64_t job_seed = rng.next();
  std::vector<sched::JobSpec> specs;
  const int njobs = 4 + static_cast<int>(rng.below(5));
  for (int j = 0; j < njobs; ++j) {
    sched::JobSpec s;
    s.graph = graph;
    s.graph_name = graph_shape;
    s.seed = job_seed;
    switch (rng.below(3)) {
      case 0:
        s.problem = sched::Problem::kMM;
        s.variant = kMm[rng.below(4)];
        break;
      case 1:
        s.problem = sched::Problem::kColor;
        s.variant = kColor[rng.below(4)];
        break;
      default:
        s.problem = sched::Problem::kMis;
        s.variant = kMis[rng.below(4)];
        break;
    }
    s.name = std::string(to_string(s.problem)) + "/" + s.variant + "#" +
             std::to_string(j);
    specs.push_back(std::move(s));
  }
  // One iteration in four injects a failing job; isolation means its
  // siblings must still succeed and the batch must still return.
  const bool injected = rng.below(4) == 0;
  if (injected) {
    sched::JobSpec s;
    s.graph = graph;
    s.graph_name = graph_shape;
    s.problem = sched::Problem::kMM;
    s.variant = "gm";
    s.name = "injected-failure";
    s.inject_failure = true;
    specs.push_back(std::move(s));
  }

  sched::BatchOptions opt;
  opt.jobs = 2 + static_cast<int>(rng.below(3));
  opt.per_job_threads = 1 + static_cast<int>(rng.below(2));
  if (shape) {
    *shape = graph_shape + " jobs=" + std::to_string(specs.size()) +
             " workers=" + std::to_string(opt.jobs) + "x" +
             std::to_string(opt.per_job_threads);
  }

  const sched::BatchReport report = sched::run_batch(specs, opt);
  if (solver_runs) *solver_runs += static_cast<int>(specs.size());

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const sched::JobSpec& spec = specs[i];
    const sched::JobResult& res = report.results[i];
    if (spec.inject_failure) {
      if (res.status != sched::JobStatus::kFailed) {
        fails.push_back("batch/" + spec.name +
                        ": injected failure reported as " +
                        std::string(to_string(res.status)));
      }
      continue;
    }
    if (res.status != sched::JobStatus::kOk) {
      fails.push_back("batch/" + spec.name + ": " +
                      std::string(to_string(res.status)) + ": " + res.error);
      continue;
    }
    // Sequential replay in this thread: same spec, same seed — for the
    // schedule-deterministic solvers the solution array (via its hash)
    // must match the concurrent run's; the speculative colorers race by
    // design, so their replay only has to be oracle-clean.
    const sched::JobResult ref = sched::run_job(spec);
    if (solver_runs) ++*solver_runs;
    if (ref.status != sched::JobStatus::kOk) {
      fails.push_back("batch/" + spec.name +
                      ": sequential replay failed: " + ref.error);
    } else if (sched::schedule_deterministic(spec.problem, spec.variant) &&
               (ref.result_hash != res.result_hash ||
                ref.value != res.value || ref.rounds != res.rounds)) {
      fails.push_back("batch/" + spec.name + ": concurrent result " +
                      fmt_hash(res.result_hash) + " (value " +
                      std::to_string(res.value) +
                      ") != sequential replay " + fmt_hash(ref.result_hash) +
                      " (value " + std::to_string(ref.value) + ")");
    }
  }

  // A pre-expired deadline must cancel cooperatively, not fail or crash.
  // Round loops poll before round 1, so even instant jobs observe it.
  if (!specs.empty() && rng.below(2) == 0) {
    sched::JobSpec s = specs[0];
    s.inject_failure = false;
    const sched::JobResult res =
        sched::run_job(s, /*deadline_ms=*/1e-6, /*verify=*/false);
    if (solver_runs) ++*solver_runs;
    if (res.status == sched::JobStatus::kFailed) {
      fails.push_back("batch/deadline: expired deadline reported failure: " +
                      res.error);
    }
  }

  SBG_COUNTER_ADD("fuzz.failures", fails.size());
  return fails;
}

}  // namespace sbg::check
