// dyn::Session — one graph's live dynamic state: a DynGraph plus the
// maintained MM / coloring / MIS solutions, repaired incrementally after
// every update batch.
//
// This is the unit sbg_serve registers per hot graph (POST
// /v1/graphs/<name>/updates routes here) and the dyn fuzz family drives
// directly. All mutation goes through update(), which serializes batches
// under an internal mutex — concurrent submitters see some total batch
// order, and each response describes exactly one batch's effect.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dyn/dyn_graph.hpp"
#include "dyn/repair.hpp"

namespace sbg::dyn {

/// One batch's effect: what changed structurally, what each repair kernel
/// did, and the post-repair solution summaries (hashes are of the raw
/// solution-array bytes, comparable across runs like sched result hashes).
struct UpdateOutcome {
  vid_t inserted = 0;
  vid_t removed = 0;
  vid_t new_vertices = 0;
  vid_t num_vertices = 0;
  eid_t num_edges = 0;
  RepairStats mm, color, mis;
  std::uint64_t mm_cardinality = 0;
  std::uint32_t palette = 0;      ///< distinct-color span after repair
  std::uint64_t mis_size = 0;
  std::uint64_t mm_hash = 0;
  std::uint64_t color_hash = 0;
  std::uint64_t mis_hash = 0;
  /// Content hash of the materialized CSR (offsets ^ adjacency); only
  /// computed when verify ran — the differential anchor the fuzz family
  /// compares against a from-scratch build of the ground-truth edges.
  std::uint64_t graph_hash = 0;
  bool verified = false;
  std::string oracle_error;  ///< empty when valid / not verified
  double seconds = 0.0;      ///< apply + repairs (+ verify when requested)
};

struct SessionOptions {
  std::uint64_t seed = 42;
  bool maintain_mm = true;
  bool maintain_color = true;
  bool maintain_mis = true;
  /// Forwarded to DynGraph (<= 0 reads SBG_DYN_COMPACT).
  double compact_fraction = 0.0;
};

class Session {
 public:
  /// Solves the initial MM / coloring / MIS on `base` (the maintained
  /// subset only).
  explicit Session(CsrGraph base, SessionOptions opt = {});

  /// Shared-ownership overload for registry-resident graphs (no copy).
  explicit Session(std::shared_ptr<const CsrGraph> base,
                   SessionOptions opt = {});

  /// Apply one batch and repair every maintained solution. With `verify`,
  /// materializes the post-batch graph and oracle-checks each repaired
  /// solution against it (first failure lands in oracle_error). Throws
  /// JobCancelled out of the repair round loops when a sched cancel token
  /// is armed — callers wrap in run_update_job for deadline handling. A
  /// cancellation can strand a solution mid-repair; the session marks
  /// itself dirty and the next update() re-solves all maintained problems
  /// from scratch on the materialized graph before applying its batch, so
  /// a timed-out batch never poisons later ones.
  UpdateOutcome update(const UpdateBatch& batch, bool verify = false);

  // Snapshot accessors (copy under the session lock).
  std::vector<vid_t> mate() const;
  std::vector<std::uint32_t> color() const;
  std::vector<MisState> mis_state() const;
  CsrGraph materialized() const;
  vid_t num_vertices() const;
  eid_t num_edges() const;
  std::uint64_t batches_applied() const;
  std::uint64_t heap_bytes() const;

 private:
  /// From-scratch re-solve of every maintained solution on the current
  /// materialized graph (initial state and post-cancellation recovery).
  void resolve_fresh(const CsrGraph& g);

  mutable std::mutex mu_;
  SessionOptions opt_;
  DynGraph graph_;
  std::vector<vid_t> mate_;
  std::vector<std::uint32_t> color_;
  std::vector<MisState> state_;
  std::uint64_t batches_ = 0;
  bool dirty_ = false;  ///< a repair was interrupted; re-solve before next batch
};

/// Solution-array content hash (ingest::hash_bytes over the raw elements).
/// vid_t and color arrays share the first overload (both uint32).
std::uint64_t hash_solution(const std::vector<std::uint32_t>& arr);
std::uint64_t hash_solution(const std::vector<MisState>& state);
/// CSR content hash: offsets bytes hashed, chained into adjacency bytes.
std::uint64_t hash_graph(const CsrGraph& g);

}  // namespace sbg::dyn
