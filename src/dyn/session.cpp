#include "dyn/session.hpp"

#include <memory>
#include <utility>

#include "check/check.hpp"
#include "ingest/cache.hpp"
#include "obs/obs.hpp"
#include "parallel/timer.hpp"

namespace sbg::dyn {

std::uint64_t hash_solution(const std::vector<std::uint32_t>& arr) {
  return ingest::hash_bytes(arr.data(), arr.size() * sizeof(std::uint32_t));
}

std::uint64_t hash_solution(const std::vector<MisState>& state) {
  return ingest::hash_bytes(state.data(), state.size() * sizeof(MisState));
}

std::uint64_t hash_graph(const CsrGraph& g) {
  const auto off = g.offsets();
  const auto adj = g.adjacency();
  const std::uint64_t h =
      ingest::hash_bytes(off.data(), off.size_bytes());
  return ingest::hash_bytes(adj.data(), adj.size_bytes(), h);
}

Session::Session(CsrGraph base, SessionOptions opt)
    : Session(std::make_shared<const CsrGraph>(std::move(base)), opt) {}

Session::Session(std::shared_ptr<const CsrGraph> base, SessionOptions opt)
    : opt_(opt), graph_(std::move(base), opt.compact_fraction) {
  resolve_fresh(graph_.base());
}

void Session::resolve_fresh(const CsrGraph& g) {
  if (opt_.maintain_mm) {
    mate_.assign(g.num_vertices(), kNoVertex);
    gm_extend(g, mate_);
  }
  if (opt_.maintain_color) {
    color_ = color_vb(g).color;
  }
  if (opt_.maintain_mis) {
    state_.assign(g.num_vertices(), MisState::kUndecided);
    greedy_extend(g, state_, opt_.seed + batches_);
  }
  dirty_ = false;
}

UpdateOutcome Session::update(const UpdateBatch& batch, bool verify) {
  std::lock_guard<std::mutex> lock(mu_);
  SBG_SPAN("dyn.update");
  Timer timer;
  UpdateOutcome out;
  SBG_HIST_RECORD("dyn.batch_size", batch.insert.size() + batch.remove.size());

  // A previous batch was cancelled mid-repair: rebuild every maintained
  // solution from scratch before touching this batch, so repairs always
  // start from an oracle-valid state. (May throw JobCancelled again under
  // an already-expired deadline, leaving dirty_ set — that is correct.)
  if (dirty_) {
    SBG_COUNTER_ADD("dyn.recoveries", 1);
    resolve_fresh(graph_.materialize());
  }

  const EdgeDelta delta = graph_.apply(batch);
  out.inserted = static_cast<vid_t>(delta.inserted.size());
  out.removed = static_cast<vid_t>(delta.removed.size());
  out.new_vertices = delta.new_vertices;
  out.num_vertices = graph_.num_vertices();
  out.num_edges = graph_.num_edges();

  try {
    if (opt_.maintain_mm) {
      out.mm = repair_matching(graph_, delta, mate_);
      out.mm_cardinality = matching_cardinality(mate_);
      out.mm_hash = hash_solution(mate_);
    }
    if (opt_.maintain_color) {
      out.color = repair_coloring(graph_, delta, color_);
      out.palette = count_colors(color_);
      out.color_hash = hash_solution(color_);
    }
    if (opt_.maintain_mis) {
      out.mis = repair_mis(graph_, delta, state_, opt_.seed + batches_);
      out.mis_size = mis_size(state_);
      out.mis_hash = hash_solution(state_);
    }
  } catch (...) {
    dirty_ = true;
    ++batches_;  // the batch's structural effect IS applied
    throw;
  }
  ++batches_;

  if (verify) {
    const CsrGraph g = graph_.materialize();
    out.graph_hash = hash_graph(g);
    out.verified = true;
    if (opt_.maintain_mm && out.oracle_error.empty()) {
      const check::MatchingReport rep = check::check_matching(g, mate_);
      if (!rep.result) out.oracle_error = "mm: " + rep.result.message();
    }
    if (opt_.maintain_color && out.oracle_error.empty()) {
      const check::ColoringReport rep = check::check_coloring(g, color_);
      if (!rep.result) out.oracle_error = "color: " + rep.result.message();
    }
    if (opt_.maintain_mis && out.oracle_error.empty()) {
      const check::MisReport rep = check::check_mis(g, state_);
      if (!rep.result) out.oracle_error = "mis: " + rep.result.message();
    }
  }
  out.seconds = timer.seconds();
  return out;
}

std::vector<vid_t> Session::mate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mate_;
}

std::vector<std::uint32_t> Session::color() const {
  std::lock_guard<std::mutex> lock(mu_);
  return color_;
}

std::vector<MisState> Session::mis_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CsrGraph Session::materialized() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_.materialize();
}

vid_t Session::num_vertices() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_.num_vertices();
}

eid_t Session::num_edges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_.num_edges();
}

std::uint64_t Session::batches_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

std::uint64_t Session::heap_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_.heap_bytes();
}

}  // namespace sbg::dyn
