// Incremental repair of MM / coloring / MIS solutions after a DynGraph
// update batch.
//
// Each kernel takes a solution that was valid for the pre-batch graph and
// the EdgeDelta apply() returned, computes the *frontier* — the vertices
// whose validity the batch could have disturbed — and re-solves only that
// neighborhood, touching work proportional to the frontier and its
// degrees, never to n or m (beyond one O(n) sentinel resize when the batch
// grew the vertex space and reusable n-sized scratch arrays).
//
// Why each frontier is sufficient (the oracle-checked claims):
//  * MM: a maximal matching stays valid everywhere except (i) pairs split
//    by a deleted matched edge, (ii) endpoints of inserted edges that are
//    unmatched, (iii) new vertices. Any edge left with two unmatched
//    endpoints must touch one of those freed/new vertices (pre-batch
//    maximality covers the rest), so GM-style proposal rounds over the
//    frontier plus its unmatched neighbors restore maximality without ever
//    unmatching a surviving pair.
//  * Coloring: deletions never create conflicts; each inserted
//    monochromatic edge uncolors one endpoint (the one the core ordering
//    says is cheaper to recolor), and speculative first-fit over the
//    uncolored set restores properness.
//  * MIS: an inserted kIn–kIn edge demotes one endpoint to kOut; a
//    demotion or a deleted edge can orphan kOut vertices whose only kIn
//    neighbor went away — those reopen as undecided and a fixed-priority
//    greedy over the undecided set re-closes them.
//
// Conflict resolution is prioritized by (core_hint, id): the vertex deeper
// in the core ordering keeps its assignment, the shallower one —
// statistically cheaper to fix, fewer constrained neighbors — yields.
#pragma once

#include <cstdint>
#include <vector>

#include "coloring/coloring.hpp"
#include "dyn/dyn_graph.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"

namespace sbg::dyn {

struct RepairStats {
  vid_t frontier = 0;   ///< vertices whose state the batch disturbed
  vid_t repaired = 0;   ///< vertices whose assignment the repair changed
  vid_t rounds = 0;     ///< repair rounds executed
  double seconds = 0.0;
};

/// Repair `mate` (valid + maximal for the pre-batch graph) into a valid
/// maximal matching of g's current state. Resizes mate for new vertices.
RepairStats repair_matching(const DynGraph& g, const EdgeDelta& delta,
                            std::vector<vid_t>& mate);

/// Repair `color` (proper for the pre-batch graph) into a proper coloring
/// of g's current state. Resizes color for new vertices.
RepairStats repair_coloring(const DynGraph& g, const EdgeDelta& delta,
                            std::vector<std::uint32_t>& color);

/// Repair `state` (valid MIS for the pre-batch graph) into a valid MIS of
/// g's current state. Resizes state for new vertices. `seed` feeds the
/// fixed greedy priorities of the re-close rounds.
RepairStats repair_mis(const DynGraph& g, const EdgeDelta& delta,
                       std::vector<MisState>& state, std::uint64_t seed);

}  // namespace sbg::dyn
