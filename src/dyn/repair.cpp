#include "dyn/repair.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "parallel/cancel.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

namespace sbg::dyn {

namespace {

void sort_dedup(std::vector<vid_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// Conflict priority: the vertex deeper in the core ordering outranks the
/// shallower one (it is the more constrained, more expensive one to redo);
/// ties break toward the lower id. Strict total order.
bool outranks(const DynGraph& g, vid_t a, vid_t b) {
  const vid_t ca = g.core_hint(a), cb = g.core_hint(b);
  if (ca != cb) return ca > cb;
  return a < b;
}

void record(const char* problem, const RepairStats& st) {
  SBG_COUNTER_ADD("dyn.repairs", 1);
  SBG_HIST_RECORD("dyn.repair.frontier", st.frontier);
  SBG_HIST_RECORD("dyn.repair.repaired", st.repaired);
  SBG_COUNTER_ADD(problem, st.repaired);
}

}  // namespace

RepairStats repair_matching(const DynGraph& g, const EdgeDelta& delta,
                            std::vector<vid_t>& mate) {
  SBG_SPAN("dyn.repair.mm");
  Timer timer;
  RepairStats st;
  const vid_t n = g.num_vertices();
  mate.resize(n, kNoVertex);

  // Freed vertices: pairs split by a deleted matched edge.
  std::vector<vid_t> seeds;
  for (const Edge& e : delta.removed) {
    if (mate[e.u] == e.v) {
      mate[e.u] = kNoVertex;
      mate[e.v] = kNoVertex;
      st.repaired += 2;
      seeds.push_back(e.u);
      seeds.push_back(e.v);
    }
  }
  // Unmatched endpoints of inserted edges (new vertices are always such an
  // endpoint, so they are covered here too).
  for (const Edge& e : delta.inserted) {
    if (mate[e.u] == kNoVertex) seeds.push_back(e.u);
    if (mate[e.v] == kNoVertex) seeds.push_back(e.v);
  }
  sort_dedup(seeds);
  st.frontier = static_cast<vid_t>(seeds.size());
  if (seeds.empty()) {
    st.seconds = timer.seconds();
    record("dyn.repair.mm.repaired", st);
    return st;
  }

  // Active set = seeds + their unmatched neighbors. Sufficient: any edge
  // with two unmatched endpoints has a seed endpoint (pre-batch maximality
  // covers edges between survivors), and its other endpoint is therefore
  // an unmatched neighbor of a seed.
  std::vector<std::uint8_t> active(n, 0);
  std::vector<vid_t> work;
  for (const vid_t v : seeds) {
    if (mate[v] == kNoVertex && !active[v]) {
      active[v] = 1;
      work.push_back(v);
    }
  }
  const std::size_t num_seeds = work.size();
  for (std::size_t i = 0; i < num_seeds; ++i) {
    g.for_neighbors(work[i], [&](vid_t w) {
      if (mate[w] == kNoVertex && !active[w]) {
        active[w] = 1;
        work.push_back(w);
      }
    });
  }
  std::sort(work.begin(), work.end());

  // GM proposal rounds confined to the active set: each live vertex
  // proposes to its smallest unmatched active neighbor; mutual proposals
  // match. The smallest live vertex always lands a mutual pair, so every
  // round makes progress.
  std::vector<vid_t> proposal(n, kNoVertex);
  std::vector<std::uint8_t> drop(work.size(), 0);
  while (!work.empty()) {
    poll_cancellation();
    ++st.rounds;
    drop.assign(work.size(), 0);
    parallel_for(work.size(), [&](std::size_t i) {
      const vid_t v = work[i];
      if (mate[v] != kNoVertex) {
        drop[i] = 1;
        return;
      }
      vid_t target = kNoVertex;
      g.for_neighbors(v, [&](vid_t w) {
        if (target == kNoVertex && active[w] && mate[w] == kNoVertex) {
          target = w;
        }
      });
      proposal[v] = target;
      if (target == kNoVertex) drop[i] = 1;  // permanently unmatchable
    });
    parallel_for(work.size(), [&](std::size_t i) {
      const vid_t v = work[i];
      if (drop[i]) return;
      const vid_t u = proposal[v];
      if (u != kNoVertex && v < u && proposal[u] == v) {
        mate[v] = u;
        mate[u] = v;
      }
    });
    std::size_t kept = 0;
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!drop[i] && mate[work[i]] == kNoVertex) work[kept++] = work[i];
      if (!drop[i] && mate[work[i]] != kNoVertex) st.repaired += 1;
    }
    work.resize(kept);
    drop.resize(kept);
  }
  st.seconds = timer.seconds();
  record("dyn.repair.mm.repaired", st);
  return st;
}

RepairStats repair_coloring(const DynGraph& g, const EdgeDelta& delta,
                            std::vector<std::uint32_t>& color) {
  SBG_SPAN("dyn.repair.color");
  Timer timer;
  RepairStats st;
  const vid_t n = g.num_vertices();
  color.resize(n, kNoColor);

  // Deletions never break properness. Each inserted monochromatic edge
  // uncolors the endpoint the core ordering says should yield.
  std::vector<vid_t> work;
  for (const Edge& e : delta.inserted) {
    if (color[e.u] != kNoColor && color[e.u] == color[e.v]) {
      const vid_t loser = outranks(g, e.u, e.v) ? e.v : e.u;
      color[loser] = kNoColor;
      work.push_back(loser);
    }
  }
  // Uncolored inserted-edge endpoints (new vertices, mostly) need a color.
  for (const Edge& e : delta.inserted) {
    if (color[e.u] == kNoColor) work.push_back(e.u);
    if (color[e.v] == kNoColor) work.push_back(e.v);
  }
  // A batch inserting (u, v) with v far past the old n grows the vertex
  // space by more than its endpoints: ids between old n and v exist now
  // but sit on no inserted edge. They arrive uncolored too — seed every
  // grown id, not just the endpoints.
  for (vid_t v = n - delta.new_vertices; v < n; ++v) {
    if (color[v] == kNoColor) work.push_back(v);
  }
  sort_dedup(work);
  st.frontier = static_cast<vid_t>(work.size());

  // Speculative first-fit over the uncolored set. Colored neighbors are
  // fixed; only same-round work–work conflicts can arise, resolved by the
  // core-order priority — the top-ranked work vertex always sticks, so
  // every round makes progress.
  std::vector<std::uint32_t> pick(work.size());
  std::vector<std::uint8_t> keep(work.size());
  std::vector<std::uint32_t> used;
  while (!work.empty()) {
    poll_cancellation();
    ++st.rounds;
#pragma omp parallel private(used)
    {
#pragma omp for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(work.size());
           ++i) {
        const vid_t v = work[static_cast<std::size_t>(i)];
        used.clear();
        g.for_neighbors(v, [&](vid_t w) {
          if (color[w] != kNoColor) used.push_back(color[w]);
        });
        std::sort(used.begin(), used.end());
        std::uint32_t c = 0;
        for (const std::uint32_t uc : used) {
          if (uc > c) break;
          if (uc == c) ++c;
        }
        pick[static_cast<std::size_t>(i)] = c;
      }
    }
    parallel_for(work.size(), [&](std::size_t i) { color[work[i]] = pick[i]; });
    parallel_for(work.size(), [&](std::size_t i) {
      const vid_t v = work[i];
      bool ok = true;
      g.for_neighbors(v, [&](vid_t w) {
        if (color[w] == color[v] && outranks(g, w, v)) ok = false;
      });
      keep[i] = ok ? 1 : 0;
    });
    std::size_t kept = 0;
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (keep[i]) {
        st.repaired += 1;
      } else {
        color[work[i]] = kNoColor;
        work[kept] = work[i];
        pick[kept] = pick[i];
        ++kept;
      }
    }
    work.resize(kept);
    pick.resize(kept);
    keep.resize(kept);
  }
  st.seconds = timer.seconds();
  record("dyn.repair.color.repaired", st);
  return st;
}

RepairStats repair_mis(const DynGraph& g, const EdgeDelta& delta,
                       std::vector<MisState>& state, std::uint64_t seed) {
  SBG_SPAN("dyn.repair.mis");
  Timer timer;
  RepairStats st;
  const vid_t n = g.num_vertices();
  const vid_t old_n = static_cast<vid_t>(state.size());
  state.resize(n, MisState::kUndecided);

  // Inserted kIn–kIn edges: the shallower-core endpoint demotes to kOut
  // (valid — its winner neighbor stays kIn). Serial: later conflicts must
  // see earlier demotions.
  std::vector<vid_t> demoted;
  for (const Edge& e : delta.inserted) {
    if (state[e.u] == MisState::kIn && state[e.v] == MisState::kIn) {
      const vid_t loser = outranks(g, e.u, e.v) ? e.v : e.u;
      state[loser] = MisState::kOut;
      demoted.push_back(loser);
      st.repaired += 1;
    }
  }

  // kOut vertices that may have lost their last kIn witness: neighbors of
  // demoted vertices, and endpoints of deleted edges.
  std::vector<vid_t> candidates;
  for (const vid_t d : demoted) {
    g.for_neighbors(d, [&](vid_t w) {
      if (state[w] == MisState::kOut) candidates.push_back(w);
    });
  }
  for (const Edge& e : delta.removed) {
    if (e.u < old_n && state[e.u] == MisState::kOut) candidates.push_back(e.u);
    if (e.v < old_n && state[e.v] == MisState::kOut) candidates.push_back(e.v);
  }
  sort_dedup(candidates);
  // Read-only orphan scan, then the writes — no concurrent read/write.
  std::vector<std::uint8_t> orphan(candidates.size(), 0);
  parallel_for(candidates.size(), [&](std::size_t i) {
    bool has_in = false;
    g.for_neighbors(candidates[i], [&](vid_t w) {
      if (state[w] == MisState::kIn) has_in = true;
    });
    orphan[i] = has_in ? 0 : 1;
  });
  std::vector<vid_t> work;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (orphan[i]) {
      state[candidates[i]] = MisState::kUndecided;
      work.push_back(candidates[i]);
    }
  }
  // New vertices reopen as undecided (isolated ones will simply join).
  for (vid_t v = old_n; v < n; ++v) work.push_back(v);
  sort_dedup(work);
  st.frontier = static_cast<vid_t>(work.size() + demoted.size());

  // Fixed-priority greedy close over the undecided set: a vertex joins
  // when it has no kIn neighbor and beats every undecided neighbor's
  // priority; a vertex with a kIn neighbor goes kOut. Strict total order
  // on priorities — the global minimum joins each round.
  const auto pri = [&](vid_t v) { return mix64(seed ^ (0xD11Full + v)); };
  std::vector<MisState> decide(work.size());
  while (!work.empty()) {
    poll_cancellation();
    ++st.rounds;
    parallel_for(work.size(), [&](std::size_t i) {
      const vid_t v = work[i];
      const std::uint64_t pv = pri(v);
      bool has_in = false, beaten = false;
      g.for_neighbors(v, [&](vid_t w) {
        if (state[w] == MisState::kIn) {
          has_in = true;
        } else if (state[w] == MisState::kUndecided) {
          const std::uint64_t pw = pri(w);
          if (pw < pv || (pw == pv && w < v)) beaten = true;
        }
      });
      decide[i] = has_in ? MisState::kOut
                         : beaten ? MisState::kUndecided
                                  : MisState::kIn;
    });
    parallel_for(work.size(), [&](std::size_t i) { state[work[i]] = decide[i]; });
    std::size_t kept = 0;
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (decide[i] == MisState::kUndecided) {
        work[kept++] = work[i];
      } else {
        st.repaired += 1;
      }
    }
    work.resize(kept);
    decide.resize(kept);
  }
  st.seconds = timer.seconds();
  record("dyn.repair.mis.repaired", st);
  return st;
}

}  // namespace sbg::dyn
