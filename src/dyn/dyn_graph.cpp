#include "dyn/dyn_graph.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "core/env.hpp"
#include "graph/builder.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/prefix_sum.hpp"

namespace sbg::dyn {

namespace {

/// Binary-search membership in a sorted vector.
bool contains(const std::vector<vid_t>& sorted, vid_t w) {
  return std::binary_search(sorted.begin(), sorted.end(), w);
}

void sorted_insert(std::vector<vid_t>& sorted, vid_t w) {
  sorted.insert(std::lower_bound(sorted.begin(), sorted.end(), w), w);
}

void sorted_erase(std::vector<vid_t>& sorted, vid_t w) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), w);
  if (it != sorted.end() && *it == w) sorted.erase(it);
}

/// Canonicalize (u < v), drop self-loops, sort, dedup — the batch-local
/// analogue of normalize_edge_list.
std::vector<Edge> canonicalize(const std::vector<Edge>& raw) {
  std::vector<Edge> out;
  out.reserve(raw.size());
  for (Edge e : raw) {
    if (e.u == e.v) continue;
    if (e.u > e.v) std::swap(e.u, e.v);
    out.push_back(e);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

DynGraph::DynGraph(std::shared_ptr<const CsrGraph> base,
                   double compact_fraction)
    : base_(std::move(base)) {
  n_ = base_->num_vertices();
  num_edges_ = base_->num_edges();
  compact_fraction_ = compact_fraction > 0
                          ? compact_fraction
                          : env::get_double("SBG_DYN_COMPACT", 0.25);
  added_.resize(n_);
  removed_.resize(n_);
  refresh_cores();
}

bool DynGraph::has_edge(vid_t u, vid_t v) const {
  if (u >= n_ || v >= n_ || u == v) return false;
  if (contains(added_[u], v)) return true;
  if (u >= base_->num_vertices() || v >= base_->num_vertices()) return false;
  return base_->has_edge(u, v) && !contains(removed_[u], v);
}

EdgeDelta DynGraph::apply(const UpdateBatch& batch) {
  SBG_SPAN("dyn.apply");
  EdgeDelta delta;
  std::vector<Edge> ins = canonicalize(batch.insert);
  const std::vector<Edge> rem = canonicalize(batch.remove);

  // Inserts apply before removes, so an edge named in both nets out to
  // absent — i.e. the insert is moot; drop it up front.
  if (!rem.empty()) {
    std::erase_if(ins, [&](const Edge& e) {
      return std::binary_search(rem.begin(), rem.end(), e);
    });
  }

  // Grow the vertex space to cover every inserted endpoint.
  vid_t max_v = n_;
  for (const Edge& e : ins) max_v = std::max(max_v, static_cast<vid_t>(e.v + 1));
  if (max_v > n_) {
    delta.new_vertices = max_v - n_;
    n_ = max_v;
    added_.resize(n_);
    removed_.resize(n_);
  }

  // Decide every toggle against the pre-batch state (the lists are deduped,
  // so decisions are independent), then mutate the per-vertex delta sets in
  // parallel, each vertex owned by exactly one task.
  enum : std::uint8_t { kAddIns, kAddErs, kRemIns, kRemErs };
  struct Mut {
    vid_t v, w;
    std::uint8_t kind;
    bool operator<(const Mut& o) const {
      return std::tie(v, w, kind) < std::tie(o.v, o.w, o.kind);
    }
  };
  std::vector<Mut> muts;
  muts.reserve(2 * (ins.size() + rem.size()));
  const auto toggle = [&](vid_t u, vid_t v, std::uint8_t kind) {
    muts.push_back({u, v, kind});
    muts.push_back({v, u, kind});
  };

  for (const Edge& e : ins) {
    if (has_edge(e.u, e.v)) continue;  // already present: no-op
    delta.inserted.push_back(e);
    const bool base_edge = e.u < base_->num_vertices() &&
                           e.v < base_->num_vertices() &&
                           base_->has_edge(e.u, e.v);
    // A tombstoned base edge resurrects by clearing its tombstone, so the
    // deltas never hold an edge in both sets.
    toggle(e.u, e.v, base_edge ? kRemErs : kAddIns);
  }
  for (const Edge& e : rem) {
    if (!has_edge(e.u, e.v)) continue;  // absent: no-op
    // has_edge reads the pre-batch deltas — inserts above have only been
    // recorded as muts, not applied yet, and edges in both lists were
    // already dropped from `ins`, so pre-batch presence is the right test.
    delta.removed.push_back(e);
    const bool base_edge = e.u < base_->num_vertices() &&
                           e.v < base_->num_vertices() &&
                           base_->has_edge(e.u, e.v) &&
                           !contains(removed_[e.u], e.v);
    toggle(e.u, e.v, base_edge ? kRemIns : kAddErs);
  }

  std::sort(muts.begin(), muts.end());
  // Group by owning vertex; each group mutates only added_[v]/removed_[v].
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < muts.size(); ++i) {
    if (i == 0 || muts[i].v != muts[i - 1].v) starts.push_back(i);
  }
  starts.push_back(muts.size());
  parallel_for_dynamic(starts.empty() ? 0 : starts.size() - 1,
                       [&](std::size_t gi) {
    for (std::size_t i = starts[gi]; i < starts[gi + 1]; ++i) {
      const Mut& m = muts[i];
      switch (m.kind) {
        case kAddIns: sorted_insert(added_[m.v], m.w); break;
        case kAddErs: sorted_erase(added_[m.v], m.w); break;
        case kRemIns: sorted_insert(removed_[m.v], m.w); break;
        case kRemErs: sorted_erase(removed_[m.v], m.w); break;
      }
    }
  });

  num_edges_ += delta.inserted.size();
  num_edges_ -= delta.removed.size();
  // Every mut adds or drops exactly one delta entry: inserts grow a set,
  // erases (resurrects, un-inserts) shrink one.
  for (const Mut& m : muts) {
    if (m.kind == kAddIns || m.kind == kRemIns) {
      ++delta_arcs_;
    } else {
      --delta_arcs_;
    }
  }

  SBG_COUNTER_ADD("dyn.batches", 1);
  SBG_COUNTER_ADD("dyn.edges_inserted", delta.inserted.size());
  SBG_COUNTER_ADD("dyn.edges_removed", delta.removed.size());
  SBG_GAUGE_SET("dyn.delta_arcs", static_cast<double>(delta_arcs_));

  const eid_t base_arcs = base_->num_arcs();
  if (delta_arcs_ > 0 &&
      static_cast<double>(delta_arcs_) >
          compact_fraction_ * static_cast<double>(base_arcs < 64 ? 64
                                                                 : base_arcs)) {
    compact();
  }
  return delta;
}

CsrGraph DynGraph::materialize() const {
  SBG_SPAN("dyn.materialize");
  // Emission is v-ascending then neighbor-ascending with u < v, so the
  // edge list is already normalized — build_csr directly.
  EdgeList el;
  el.num_vertices = n_;
  el.edges.reserve(static_cast<std::size_t>(num_edges_));
  for (vid_t v = 0; v < n_; ++v) {
    for_neighbors(v, [&](vid_t w) {
      if (v < w) el.edges.push_back({v, w});
    });
  }
  return build_csr(el);
}

void DynGraph::compact() {
  if (delta_arcs_ == 0 && base_->num_vertices() == n_) return;
  SBG_SPAN("dyn.compact");
  base_ = std::make_shared<const CsrGraph>(materialize());
  added_.assign(n_, {});
  removed_.assign(n_, {});
  delta_arcs_ = 0;
  ++compactions_;
  SBG_COUNTER_ADD("dyn.compactions", 1);
  refresh_cores();
}

std::uint64_t DynGraph::heap_bytes() const {
  std::uint64_t bytes = base_->heap_bytes();
  for (vid_t v = 0; v < n_; ++v) {
    bytes += (added_[v].capacity() + removed_[v].capacity()) * sizeof(vid_t);
  }
  bytes += (added_.capacity() + removed_.capacity()) *
           sizeof(std::vector<vid_t>);
  bytes += core_.capacity() * sizeof(vid_t);
  return bytes;
}

void DynGraph::refresh_cores() {
  // Pieces are not needed — only the core numbers feed repair priorities.
  core_ = decompose_kcore(*base_, 2, 0).core;
}

}  // namespace sbg::dyn
