// sbg::dyn — dynamic graphs: batched edge updates over an immutable base.
//
// Everything else in this library operates on the immutable CsrGraph. A
// DynGraph keeps that property for the bulk of the graph: it overlays two
// small per-vertex delta sets — `added` (edges not in the base) and
// `removed` (base edges tombstoned out) — on a shared base CSR. Update
// batches toggle edges in the deltas; neighbor iteration merges the sorted
// base adjacency (minus tombstones) with the sorted additions, so consumers
// see one sorted, duplicate-free neighborhood without rebuilding anything.
//
// When the deltas grow past a fraction of the base (SBG_DYN_COMPACT,
// default 0.25) the graph *compacts*: the merged view is materialized into
// a fresh CSR, the deltas reset to empty, and the advisory core numbers
// (used by src/dyn/repair.* to decide which endpoint of a conflict yields)
// are re-peeled. Between compactions every operation is proportional to
// delta size and touched degrees, never to m.
//
// apply() returns the EdgeDelta of toggles that actually happened —
// inserting an edge that already exists or deleting one that does not is a
// no-op and is NOT reported — which is exactly the set the incremental
// repair kernels need to compute their frontier.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/kcore.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace sbg::dyn {

/// One streaming update batch, as submitted: any orientation, duplicates
/// and self-loops tolerated (canonicalized away by apply). Inserts are
/// applied before removes, so an edge named in both ends up absent.
struct UpdateBatch {
  std::vector<Edge> insert;
  std::vector<Edge> remove;
};

/// What an apply() actually changed: canonical (u < v), sorted, duplicate-
/// free lists of edges toggled on / off, plus how many vertex slots the
/// batch grew the graph by (inserts may name vertices past the current n).
struct EdgeDelta {
  std::vector<Edge> inserted;
  std::vector<Edge> removed;
  vid_t new_vertices = 0;

  bool empty() const { return inserted.empty() && removed.empty(); }
};

class DynGraph {
 public:
  DynGraph() = default;

  /// Wrap a base CSR. `compact_fraction` <= 0 reads SBG_DYN_COMPACT (a
  /// strict env::get_double knob; default 0.25): compaction triggers when
  /// delta arcs exceed that fraction of base arcs (and always covers the
  /// has-new-vertices case at the next threshold crossing).
  explicit DynGraph(CsrGraph base, double compact_fraction = 0.0)
      : DynGraph(std::make_shared<const CsrGraph>(std::move(base)),
                 compact_fraction) {}

  /// Shared-ownership overload: wraps a registry-resident CSR without
  /// copying it (the base is immutable; compaction swaps the pointer).
  explicit DynGraph(std::shared_ptr<const CsrGraph> base,
                    double compact_fraction = 0.0);

  vid_t num_vertices() const { return n_; }
  eid_t num_edges() const { return num_edges_; }

  vid_t degree(vid_t v) const {
    const vid_t base_deg = v < base_->num_vertices() ? base_->degree(v) : 0;
    return static_cast<vid_t>(base_deg + added_[v].size() -
                              removed_[v].size());
  }

  bool has_edge(vid_t u, vid_t v) const;

  /// f(w) for every live neighbor w of v, ascending, duplicate-free: the
  /// sorted base adjacency minus tombstones, merged with the sorted
  /// additions.
  template <typename F>
  void for_neighbors(vid_t v, F&& f) const {
    const auto& add = added_[v];
    const auto& rem = removed_[v];
    std::size_t ai = 0, ri = 0;
    if (v < base_->num_vertices()) {
      for (const vid_t w : base_->neighbors(v)) {
        while (ri < rem.size() && rem[ri] < w) ++ri;
        if (ri < rem.size() && rem[ri] == w) continue;
        while (ai < add.size() && add[ai] < w) f(add[ai++]);
        f(w);
      }
    }
    while (ai < add.size()) f(add[ai++]);
  }

  /// Apply one batch (inserts, then removes) and return what changed.
  /// Parallel over the batch's touched vertices. May auto-compact after
  /// the toggles; the returned delta always refers to pre/post edge
  /// presence, which compaction does not alter.
  EdgeDelta apply(const UpdateBatch& batch);

  /// The merged view as a fresh immutable CSR (same vertex-id space).
  CsrGraph materialize() const;

  /// Fold the deltas into a new base CSR and re-peel the advisory core
  /// numbers. Idempotent when the deltas are empty.
  void compact();

  const CsrGraph& base() const { return *base_; }
  std::shared_ptr<const CsrGraph> base_ptr() const { return base_; }

  /// Directed arcs currently held in the delta sets (2 per toggled edge).
  eid_t delta_arcs() const { return delta_arcs_; }
  /// Compactions performed so far (auto + explicit).
  std::uint64_t compactions() const { return compactions_; }

  /// Advisory core number of v, peeled from the base at construction and
  /// at every compaction — NOT updated per batch. Repair uses it as a
  /// stable conflict-resolution priority; staleness costs only repair
  /// quality, never correctness. Vertices added since the last compaction
  /// report core 0.
  vid_t core_hint(vid_t v) const {
    return v < core_.size() ? core_[v] : 0;
  }

  /// Heap bytes of base + deltas (the number memory budgets account).
  std::uint64_t heap_bytes() const;

 private:
  void refresh_cores();

  std::shared_ptr<const CsrGraph> base_ =
      std::make_shared<const CsrGraph>();
  vid_t n_ = 0;
  eid_t num_edges_ = 0;
  eid_t delta_arcs_ = 0;
  double compact_fraction_ = 0.25;
  std::uint64_t compactions_ = 0;
  /// Per-vertex sorted delta adjacency. added_[v] is disjoint from the
  /// base adjacency of v; removed_[v] is a subset of it.
  std::vector<std::vector<vid_t>> added_;
  std::vector<std::vector<vid_t>> removed_;
  std::vector<vid_t> core_;
};

}  // namespace sbg::dyn
