// Subgraph materialization.
//
// Decompositions (Section II of the paper) produce subgraphs of G. We keep
// every subgraph in the ORIGINAL vertex-id space: a sub-CSR has the same n
// but only the surviving arcs. Solutions computed on pieces (mate arrays,
// color arrays, MIS flags) then compose by direct per-vertex union, with no
// renumbering maps to maintain.
//
// Two extraction paths:
//  * filter_edges / filter_edges_by_arc_flag — one predicate, one sub-CSR.
//  * split_edges — the fused k-way kernel: classify every arc ONCE
//    (memoized in a scratch arena), then materialize all k output sub-CSRs
//    from that single classification. A decomposition that used to sweep
//    the arc array once per piece (RAND: intra + cross; DEGk: up to four
//    pieces) now runs classify + count + scatter regardless of k — and
//    only classify and scatter touch the adjacency; the counting sweep
//    reads the one-byte-per-arc memo. Each output is byte-identical to
//    what filter_edges would have produced for the matching per-class
//    predicate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/scratch.hpp"

namespace sbg {

/// Upper bound on split_edges output classes (class ids are memoized in one
/// byte; 0xff is the drop sentinel).
inline constexpr unsigned kMaxSplitClasses = 32;

/// Materialize the subgraph of `g` keeping arc (u, v) iff keep(u, v).
/// `keep` must be symmetric — keep(u, v) == keep(v, u) — or the result
/// violates CSR symmetry. Runs in O(n + m) parallel work.
template <typename KeepFn>
CsrGraph filter_edges(const CsrGraph& g, KeepFn&& keep) {
  const vid_t n = g.num_vertices();
  SBG_COUNTER_ADD("decomp.arcs_scanned", 2 * g.num_arcs());
  SBG_COUNTER_ADD("decomp.subgraphs_built", 1);
  EidBuffer offsets(static_cast<std::size_t>(n) + 1);

  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t cnt = 0;
    for (const vid_t v : g.neighbors(u)) {
      if (keep(u, v)) ++cnt;
    }
    offsets[i] = cnt;
  });
  offsets[n] = 0;
  exclusive_prefix_sum(std::span(offsets));

  VidBuffer adj(offsets.back());
  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t out = offsets[i];
    for (const vid_t v : g.neighbors(u)) {
      if (keep(u, v)) adj[out++] = v;
    }
  });
  return CsrGraph(std::move(offsets), std::move(adj));
}

namespace detail {

/// Two-way fast path. Every decomposition on the Figure 2 hot path (RAND
/// intra/cross, BRIDGE components/bridges, DEGk's fused default) is a
/// binary split, and the generic engine's `cnt[c]++` / `out[c]++` with a
/// data-dependent index forces those cursors into memory — a
/// store-to-load-forwarding chain per arc that makes the fused kernel no
/// faster than two filters on degree-skewed graphs. Scalar per-class
/// cursors stay in registers.
template <typename ClassAt>
std::vector<CsrGraph> split_core2(const CsrGraph& g, ClassAt&& class_at,
                                  std::span<const std::uint8_t> memo) {
  const vid_t n = g.num_vertices();
  EidBuffer off0(static_cast<std::size_t>(n) + 1);
  EidBuffer off1(static_cast<std::size_t>(n) + 1);
  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t c0 = 0, c1 = 0;
    for (eid_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      const std::uint8_t c = class_at(u, a);
      c0 += c == 0;
      c1 += c == 1;
    }
    off0[i] = c0;
    off1[i] = c1;
  });
  off0[n] = 0;
  off1[n] = 0;
  exclusive_prefix_sum(std::span(off0));
  exclusive_prefix_sum(std::span(off1));

  VidBuffer adj0(off0[n]), adj1(off1[n]);
  const vid_t* gadj = g.adjacency().data();
  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    const eid_t begin = g.arc_begin(u), end = g.arc_end(u);
    const eid_t n0 = off0[i + 1] - off0[i];
    const eid_t n1 = off1[i + 1] - off1[i];
    // Single-class vertices (all of DEGk's interior-of-a-side vertices,
    // RAND's all-intra / all-cross vertices) bulk-copy their neighbor
    // range instead of branching per arc.
    if (n0 == end - begin) {
      std::copy(gadj + begin, gadj + end, adj0.data() + off0[i]);
      return;
    }
    if (n1 == end - begin) {
      std::copy(gadj + begin, gadj + end, adj1.data() + off1[i]);
      return;
    }
    eid_t o0 = off0[i], o1 = off1[i];
    for (eid_t a = begin; a < end; ++a) {
      const std::uint8_t c = memo[a];
      if (c == 0) {
        adj0[o0++] = gadj[a];
      } else if (c == 1) {
        adj1[o1++] = gadj[a];
      }
    }
  });
  std::vector<CsrGraph> parts;
  parts.reserve(2);
  parts.emplace_back(std::move(off0), std::move(adj0));
  parts.emplace_back(std::move(off1), std::move(adj1));
  return parts;
}

/// Shared two-sweep engine behind split_edges / split_edges_by_arc_class.
/// Sweep 1 calls `class_at(u, a)` per arc (the fused path classifies AND
/// memoizes there; the precomputed path just reads) and counts per vertex
/// per class; the k per-class count arrays then become CSR offsets via
/// parallel prefix sums; sweep 2 scatters every arc into its class's
/// adjacency, preserving per-vertex arc order — which is exactly what makes
/// each output byte-identical to a filter_edges call for that class.
template <typename ClassAt>
std::vector<CsrGraph> split_core(const CsrGraph& g, ClassAt&& class_at,
                                 std::span<const std::uint8_t> memo,
                                 unsigned k) {
  SBG_CHECK(k >= 1 && k <= kMaxSplitClasses,
            "split_edges class count out of range");
  const vid_t n = g.num_vertices();
  SBG_COUNTER_ADD("decomp.arcs_scanned", 2 * g.num_arcs());
  SBG_COUNTER_ADD("decomp.subgraphs_built", k);
  if (k == 2) return split_core2(g, class_at, memo);

  std::vector<EidBuffer> offsets(k);
  for (auto& o : offsets) o.resize(static_cast<std::size_t>(n) + 1);
  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t cnt[kMaxSplitClasses];  // only the first k slots are live
    for (unsigned c = 0; c < k; ++c) cnt[c] = 0;
    for (eid_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      const std::uint8_t c = class_at(u, a);
      if (c < k) ++cnt[c];
    }
    for (unsigned c = 0; c < k; ++c) offsets[c][i] = cnt[c];
  });
  for (unsigned c = 0; c < k; ++c) {
    offsets[c][n] = 0;
    exclusive_prefix_sum(std::span(offsets[c]));
  }

  std::vector<VidBuffer> adj(k);
  for (unsigned c = 0; c < k; ++c) adj[c].resize(offsets[c][n]);
  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t out[kMaxSplitClasses];
    for (unsigned c = 0; c < k; ++c) out[c] = offsets[c][i];
    for (eid_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      const std::uint8_t c = memo[a];
      if (c < k) adj[c][out[c]++] = g.arc_head(a);
    }
  });

  std::vector<CsrGraph> parts;
  parts.reserve(k);
  for (unsigned c = 0; c < k; ++c) {
    parts.emplace_back(std::move(offsets[c]), std::move(adj[c]));
  }
  return parts;
}

}  // namespace detail

/// Split `g` into k sub-CSRs from a per-arc class array: output c holds
/// exactly the arcs with arc_class[a] == c; arcs classed 0xff (or any value
/// >= k) appear in no output. The class array must be orientation-consistent
/// (class of u->v equals class of v->u). One counting sweep and one scatter
/// sweep total, independent of k; each output is byte-identical to
/// filter_edges with the matching per-class predicate.
std::vector<CsrGraph> split_edges_by_arc_class(
    const CsrGraph& g, std::span<const std::uint8_t> arc_class, unsigned k);

/// Fused k-way split: evaluate `arc_class(u, v)` exactly once per arc —
/// classification is folded into the counting sweep and memoized through
/// the thread's scratch arena for the scatter sweep, so the whole
/// decomposition costs two arc sweeps regardless of k. `arc_class` must be
/// symmetric and return the output class in [0, k); returning any value
/// >= k drops the arc from every output.
template <typename ClassFn>
std::vector<CsrGraph> split_edges(const CsrGraph& g, ClassFn&& arc_class,
                                  unsigned k) {
  Scratch& scratch = Scratch::local();
  Scratch::Region region(scratch);
  std::span<std::uint8_t> memo = scratch.take<std::uint8_t>(g.num_arcs());
  // Classify in a dedicated pass rather than fused into the counting sweep:
  // this loop is a dependency-free streaming store, and it keeps the byte
  // stores out of the counting loop — a char store may alias anything, so
  // fusing it forces the compiler to re-load the classifier's arrays every
  // arc and blocks vectorizing the counts.
  std::uint8_t* __restrict mp = memo.data();
  parallel_for(g.num_vertices(), [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    for (eid_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      const unsigned c = arc_class(u, g.arc_head(a));
      mp[a] = c < k ? static_cast<std::uint8_t>(c) : std::uint8_t{0xff};
    }
  });
  return detail::split_core(
      g, [&](vid_t, eid_t a) { return memo[a]; }, memo, k);
}

/// Union of two edge-disjoint sub-CSRs over the same vertex-id space (e.g.
/// DEGk's G_L and G_C into G_L ∪ G_C). Per-vertex sorted merge, so the
/// result is byte-identical to filtering the union predicate directly.
CsrGraph merge_edge_disjoint(const CsrGraph& a, const CsrGraph& b);

/// Keep arcs whose per-arc flag is set. `arc_keep` is indexed by CSR arc id
/// and must be orientation-consistent (flag of u->v equals flag of v->u).
CsrGraph filter_edges_by_arc_flag(const CsrGraph& g,
                                  const std::vector<std::uint8_t>& arc_keep);

/// Induced subgraph G[S]: keep arcs with BOTH endpoints in S
/// (in_set is an n-sized 0/1 mask).
CsrGraph induced_subgraph(const CsrGraph& g,
                          const std::vector<std::uint8_t>& in_set);

}  // namespace sbg
