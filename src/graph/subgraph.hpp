// Subgraph materialization.
//
// Decompositions (Section II of the paper) produce subgraphs of G. We keep
// every subgraph in the ORIGINAL vertex-id space: a sub-CSR has the same n
// but only the surviving arcs. Solutions computed on pieces (mate arrays,
// color arrays, MIS flags) then compose by direct per-vertex union, with no
// renumbering maps to maintain.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/parallel_for.hpp"

namespace sbg {

/// Materialize the subgraph of `g` keeping arc (u, v) iff keep(u, v).
/// `keep` must be symmetric — keep(u, v) == keep(v, u) — or the result
/// violates CSR symmetry. Runs in O(n + m) parallel work.
template <typename KeepFn>
CsrGraph filter_edges(const CsrGraph& g, KeepFn&& keep) {
  const vid_t n = g.num_vertices();
  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1, 0);

  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t cnt = 0;
    for (const vid_t v : g.neighbors(u)) {
      if (keep(u, v)) ++cnt;
    }
    offsets[i + 1] = cnt;
  });
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<vid_t> adj(offsets.back());
  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t out = offsets[i];
    for (const vid_t v : g.neighbors(u)) {
      if (keep(u, v)) adj[out++] = v;
    }
  });
  return CsrGraph(std::move(offsets), std::move(adj));
}

/// Keep arcs whose per-arc flag is set. `arc_keep` is indexed by CSR arc id
/// and must be orientation-consistent (flag of u->v equals flag of v->u).
CsrGraph filter_edges_by_arc_flag(const CsrGraph& g,
                                  const std::vector<std::uint8_t>& arc_keep);

/// Induced subgraph G[S]: keep arcs with BOTH endpoints in S
/// (in_set is an n-sized 0/1 mask).
CsrGraph induced_subgraph(const CsrGraph& g,
                          const std::vector<std::uint8_t>& in_set);

}  // namespace sbg
