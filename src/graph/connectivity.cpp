#include "graph/connectivity.hpp"

#include <numeric>

#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"

namespace sbg {

Components connected_components(const CsrGraph& g) {
  const vid_t n = g.num_vertices();
  Components out;
  out.label.resize(n);
  std::iota(out.label.begin(), out.label.end(), vid_t{0});
  if (n == 0) return out;

  std::vector<vid_t>& label = out.label;
  bool changed = true;
  while (changed) {
    changed = false;
    int any = 0;
    // Push the smaller label across every arc, then pointer-jump labels to
    // their representative's label (shortcutting), Shiloach-Vishkin style.
#pragma omp parallel for schedule(static) reduction(| : any)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      const vid_t u = static_cast<vid_t>(i);
      const vid_t lu = atomic_read(&label[u]);
      for (const vid_t v : g.neighbors(u)) {
        if (fetch_min(&label[v], lu)) any |= 1;
      }
    }
    parallel_for(n, [&](std::size_t i) {
      vid_t l = label[i];
      while (label[l] != l) l = label[l];  // shortcut to representative
      label[i] = l;
    });
    changed = any != 0;
  }

  out.count = static_cast<vid_t>(
      parallel_count(n, [&](std::size_t i) {
        return label[i] == static_cast<vid_t>(i);
      }));
  return out;
}

bool is_connected(const CsrGraph& g) {
  return g.num_vertices() == 0 || connected_components(g).count == 1;
}

}  // namespace sbg
