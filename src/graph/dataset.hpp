// The experiment dataset suite.
//
// The paper evaluates on 12 University of Florida graphs (Table II). Those
// files are not redistributable here, so this module provides one synthetic
// generator per graph, calibrated to the paper's structural fingerprint
// (|V|, |E| as arc count, %DEG2, %BRIDGES, avg degree) at a configurable
// scale. `bench_table2_datasets` prints paper-vs-achieved fingerprints.
//
// Real UF files can be substituted by pointing SBG_DATASET_DIR at a
// directory of <name>.{sbgc,mtx,el,txt} files; make_dataset() prefers those
// when present (first matching extension wins, cache entries first). Text
// files load through the sbg::ingest parallel parser and its transparent
// binary cache — see EXPERIMENTS.md "Preparing the Table II datasets".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace sbg {

/// Paper-reported fingerprint of one Table II row.
struct DatasetPaperRow {
  std::string name;
  std::string graph_class;
  std::uint64_t num_vertices;  ///< paper |V|
  std::uint64_t num_arcs;      ///< paper |E| column (directed arc count)
  double pct_deg2;             ///< % vertices with degree <= 2
  double pct_bridges;          ///< % edges that are bridges
  double avg_degree;           ///< arcs / vertices
};

/// All 12 Table II rows, in the paper's order.
const std::vector<DatasetPaperRow>& dataset_table();

/// Paper row for `name`; throws InputError on unknown names.
const DatasetPaperRow& dataset_row(const std::string& name);

/// Names in Table II order.
std::vector<std::string> dataset_names();

/// Build the synthetic stand-in for Table II graph `name`, with vertex
/// count ~= paper |V| * scale. Deterministic in (name, scale, seed).
/// If SBG_DATASET_DIR is set and <dir>/<name>.{sbgc,mtx,el,txt} exists,
/// loads that file instead (scale then ignored).
CsrGraph make_dataset(const std::string& name, double scale = 1.0 / 32.0,
                      std::uint64_t seed = 42);

/// Default scale for benches; overridable via SBG_SCALE env var.
double bench_scale();

}  // namespace sbg
