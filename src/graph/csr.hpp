// Immutable undirected graph in Compressed Sparse Row form.
//
// Every undirected edge {u, v} is stored twice (u->v and v->u); adjacency
// lists are sorted ascending. All algorithms in this library operate on
// this one structure — decompositions materialize sub-CSRs over the *same*
// vertex id space so partial solutions compose by plain array union.
#pragma once

#include <span>
#include <vector>

#include "common.hpp"
#include "parallel/uninit.hpp"

namespace sbg {

/// Backing buffers for CSR arrays. Sizing one leaves its elements
/// uninitialized (no value-init memset) — producers fill every slot in a
/// counting or scatter sweep anyway; seed explicit zeros where needed.
using EidBuffer = std::vector<eid_t, DefaultInitAllocator<eid_t>>;
using VidBuffer = std::vector<vid_t, DefaultInitAllocator<vid_t>>;

class CsrGraph {
 public:
  CsrGraph() : offsets_(1, 0) {}

  /// Takes ownership of prebuilt arrays. offsets.size() == n+1,
  /// adj.size() == offsets.back(). Validated with SBG_CHECK.
  CsrGraph(EidBuffer offsets, VidBuffer adj);

  vid_t num_vertices() const { return static_cast<vid_t>(offsets_.size() - 1); }

  /// Number of undirected edges.
  eid_t num_edges() const { return adj_.size() / 2; }

  /// Number of directed arcs stored (2x undirected edges).
  eid_t num_arcs() const { return adj_.size(); }

  vid_t degree(vid_t v) const {
    return static_cast<vid_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const vid_t> neighbors(vid_t v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// CSR position of the first arc out of v; arc ids are positions in the
  /// adjacency array, so arc (v, i-th neighbor) has id arc_begin(v) + i.
  eid_t arc_begin(vid_t v) const { return offsets_[v]; }
  eid_t arc_end(vid_t v) const { return offsets_[v + 1]; }

  /// Head vertex of arc id `a`.
  vid_t arc_head(eid_t a) const { return adj_[a]; }

  /// True iff {u, v} is an edge (binary search; adjacency sorted).
  bool has_edge(vid_t u, vid_t v) const;

  /// Average degree 2m/n (0 for the empty graph).
  double average_degree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_arcs()) /
                     static_cast<double>(num_vertices());
  }

  std::span<const eid_t> offsets() const { return offsets_; }
  std::span<const vid_t> adjacency() const { return adj_; }

  /// Heap bytes reserved by every backing array — capacities, not sizes,
  /// so allocator slack from oversized builds is charged too. This is the
  /// number memory budgets (serve registry cap, SBG_MEM_BUDGET) account.
  std::uint64_t heap_bytes() const {
    return static_cast<std::uint64_t>(offsets_.capacity()) * sizeof(eid_t) +
           static_cast<std::uint64_t>(adj_.capacity()) * sizeof(vid_t);
  }

  /// Structural invariants: monotone offsets, in-range sorted neighbor ids,
  /// no self-loops, symmetric arcs. Throws std::logic_error on violation.
  /// O(m log d) — intended for tests and debug assertions, not hot paths.
  void validate() const;

 private:
  EidBuffer offsets_;
  VidBuffer adj_;
};

}  // namespace sbg
