#include "graph/io.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "graph/builder.hpp"
#include "ingest/cache.hpp"
#include "ingest/ingest.hpp"
#include "ingest/text_parse.hpp"

namespace sbg {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string extension(const std::string& path) {
  const auto dot = path.find_last_of('.');
  return dot == std::string::npos ? "" : lower(path.substr(dot + 1));
}

/// Strict nonnegative integer parse of one extracted token (shared with the
/// parallel parser, so both readers accept exactly the same numbers).
std::optional<std::uint64_t> token_uint(const std::string& t) {
  return ingest::parse_uint_token(t.data(), t.data() + t.size());
}

[[noreturn]] void fail_line(const char* what, std::size_t lineno,
                            const std::string& detail) {
  throw InputError(std::string(what) + " (line " + std::to_string(lineno) +
                   "): " + detail);
}

}  // namespace

EdgeList read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t lineno = 1;
  if (!std::getline(in, line)) {
    throw InputError("empty MatrixMarket input (line 1)");
  }
  if (line.rfind("%%MatrixMarket", 0) != 0) {
    throw InputError("missing %%MatrixMarket banner (line 1)");
  }
  if (lower(line).find("coordinate") == std::string::npos) {
    throw InputError("only coordinate MatrixMarket supported (line 1)");
  }

  std::uint64_t rows = 0, cols = 0, nnz = 0;
  bool have_size = false;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string t1, t2, t3;
    ls >> t1;
    if (t1.empty() || t1[0] == '%') continue;  // blank / comment
    ls >> t2 >> t3;
    const auto r = token_uint(t1), c = token_uint(t2), n = token_uint(t3);
    if (!r || !c || !n) {
      throw InputError("malformed MatrixMarket size line (line " +
                       std::to_string(lineno) + ")");
    }
    if (std::max(*r, *c) > kNoVertex) {
      throw InputError("MatrixMarket dimensions too large for vid_t (line " +
                       std::to_string(lineno) + ")");
    }
    rows = *r;
    cols = *c;
    nnz = *n;
    have_size = true;
    break;
  }
  if (!have_size) {
    throw InputError("missing MatrixMarket size line (line " +
                     std::to_string(lineno + 1) + ")");
  }

  EdgeList el;
  el.num_vertices = static_cast<vid_t>(std::max(rows, cols));
  el.edges.reserve(nnz);
  std::uint64_t entries = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string t1, t2;
    ls >> t1;
    if (t1.empty() || t1[0] == '%') continue;
    ls >> t2;  // values after the two indices are ignored
    if (t2.empty()) {
      fail_line("malformed MatrixMarket entry", lineno,
                "expected 'row col [values…]', got 1 field");
    }
    const auto r = token_uint(t1), c = token_uint(t2);
    if (!r) fail_line("malformed MatrixMarket entry", lineno, "bad index '" + t1 + "'");
    if (!c) fail_line("malformed MatrixMarket entry", lineno, "bad index '" + t2 + "'");
    if (*r == 0 || *c == 0 || *r > rows || *c > cols) {
      fail_line("malformed MatrixMarket entry", lineno, "index out of range");
    }
    if (entries == nnz) {
      throw InputError("more MatrixMarket entries than the header nnz (line " +
                       std::to_string(lineno) + "): got > " +
                       std::to_string(nnz));
    }
    el.add(static_cast<vid_t>(*r - 1), static_cast<vid_t>(*c - 1));
    ++entries;
  }
  if (entries < nnz) {
    throw InputError("truncated MatrixMarket entries (line " +
                     std::to_string(lineno + 1) + "): got " +
                     std::to_string(entries) + " of " + std::to_string(nnz));
  }
  return el;
}

EdgeList read_edge_list(std::istream& in) {
  EdgeList el;
  std::string line;
  std::uint64_t max_id = 0;
  bool any = false;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string t1, t2, t3, t4;
    ls >> t1;
    if (t1.empty()) continue;                    // blank
    if (t1[0] == '#' || t1[0] == '%') continue;  // comment
    ls >> t2 >> t3 >> t4;
    if (t2.empty()) {
      fail_line("malformed edge list", lineno,
                "expected 'u v' or 'u v w', got 1 field");
    }
    if (!t4.empty()) {
      fail_line("malformed edge list", lineno,
                "expected 'u v' or 'u v w', got 4 or more fields");
    }
    const auto u = token_uint(t1), v = token_uint(t2);
    if (!u) fail_line("malformed edge list", lineno, "bad vertex id '" + t1 + "'");
    if (!v) fail_line("malformed edge list", lineno, "bad vertex id '" + t2 + "'");
    if (*u >= kNoVertex || *v >= kNoVertex) {
      fail_line("malformed edge list", lineno, "vertex id too large for vid_t");
    }
    el.add(static_cast<vid_t>(*u), static_cast<vid_t>(*v));
    max_id = std::max({max_id, *u, *v});
    any = true;
  }
  el.num_vertices = any ? static_cast<vid_t>(max_id) + 1 : 0;
  return el;
}

void write_edge_list(std::ostream& out, const EdgeList& el) {
  out << "# sbg edge list: " << el.num_vertices << " vertices, "
      << el.edges.size() << " edges\n";
  for (const Edge& e : el.edges) out << e.u << ' ' << e.v << '\n';
}

void write_matrix_market(std::ostream& out, const EdgeList& el) {
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  out << "% written by sbg\n";
  out << el.num_vertices << ' ' << el.num_vertices << ' ' << el.edges.size()
      << '\n';
  // Symmetric convention stores the lower triangle: row >= col, 1-based.
  for (const Edge& e : el.edges) {
    const vid_t r = std::max(e.u, e.v), c = std::min(e.u, e.v);
    out << (r + 1) << ' ' << (c + 1) << '\n';
  }
}

namespace {
constexpr std::array<char, 8> kMagic = {'S', 'B', 'G', 'C', 'S', 'R', '0', '1'};
}

void write_binary(std::ostream& out, const CsrGraph& g) {
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t arcs = g.num_arcs();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&arcs), sizeof(arcs));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(eid_t)));
  out.write(reinterpret_cast<const char*>(g.adjacency().data()),
            static_cast<std::streamsize>(arcs * sizeof(vid_t)));
}

CsrGraph read_binary(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw InputError("not an sbg binary graph");
  std::uint64_t n = 0, arcs = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&arcs), sizeof(arcs));
  if (!in) throw InputError("truncated sbg binary header");
  EidBuffer offsets(n + 1);
  VidBuffer adj(arcs);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(eid_t)));
  in.read(reinterpret_cast<char*>(adj.data()),
          static_cast<std::streamsize>(arcs * sizeof(vid_t)));
  if (!in) throw InputError("truncated sbg binary body");
  return CsrGraph(std::move(offsets), std::move(adj));
}

CsrGraph load_graph(const std::string& path) {
  ingest::Options opt;
  opt.use_cache = ingest::cache_enabled_default();
  return ingest::load(path, opt);
}

void save_graph(const std::string& path, const CsrGraph& g) {
  const std::string ext = extension(path);
  if (ext == "sbgc") {
    // A standalone cache entry: zeroed source key, exempt from staleness.
    ingest::write_cache_file(path, ingest::CacheKey{}, g);
    return;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw InputError("cannot create " + path);
  if (ext == "sbg") {
    write_binary(out, g);
    return;
  }
  if (ext == "el" || ext == "mtx") {
    EdgeList el;
    el.num_vertices = g.num_vertices();
    for (vid_t u = 0; u < g.num_vertices(); ++u) {
      for (const vid_t v : g.neighbors(u)) {
        if (u < v) el.add(u, v);
      }
    }
    if (ext == "el") {
      write_edge_list(out, el);
    } else {
      write_matrix_market(out, el);
    }
    return;
  }
  throw InputError("unknown save extension ." + ext);
}

}  // namespace sbg
