#include "graph/io.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstring>
#include <limits>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "graph/builder.hpp"

namespace sbg {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string extension(const std::string& path) {
  const auto dot = path.find_last_of('.');
  return dot == std::string::npos ? "" : lower(path.substr(dot + 1));
}

}  // namespace

EdgeList read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw InputError("empty MatrixMarket stream");
  if (line.rfind("%%MatrixMarket", 0) != 0) {
    throw InputError("missing %%MatrixMarket banner");
  }
  const std::string banner = lower(line);
  if (banner.find("coordinate") == std::string::npos) {
    throw InputError("only coordinate MatrixMarket supported");
  }
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream head(line);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  if (!(head >> rows >> cols >> nnz)) {
    throw InputError("malformed MatrixMarket size line");
  }
  EdgeList el;
  el.num_vertices = static_cast<vid_t>(std::max(rows, cols));
  el.edges.reserve(nnz);
  for (std::uint64_t i = 0; i < nnz; ++i) {
    std::uint64_t r = 0, c = 0;
    if (!(in >> r >> c)) throw InputError("truncated MatrixMarket entries");
    in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    if (r == 0 || c == 0 || r > rows || c > cols) {
      throw InputError("MatrixMarket index out of range");
    }
    el.add(static_cast<vid_t>(r - 1), static_cast<vid_t>(c - 1));
  }
  return el;
}

EdgeList read_edge_list(std::istream& in) {
  EdgeList el;
  std::string line;
  vid_t max_id = 0;
  bool any = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) throw InputError("malformed edge list line: " + line);
    if (u > kNoVertex - 1 || v > kNoVertex - 1) {
      throw InputError("vertex id too large for vid_t");
    }
    el.add(static_cast<vid_t>(u), static_cast<vid_t>(v));
    max_id = std::max({max_id, static_cast<vid_t>(u), static_cast<vid_t>(v)});
    any = true;
  }
  el.num_vertices = any ? max_id + 1 : 0;
  return el;
}

void write_edge_list(std::ostream& out, const EdgeList& el) {
  out << "# sbg edge list: " << el.num_vertices << " vertices, "
      << el.edges.size() << " edges\n";
  for (const Edge& e : el.edges) out << e.u << ' ' << e.v << '\n';
}

namespace {
constexpr std::array<char, 8> kMagic = {'S', 'B', 'G', 'C', 'S', 'R', '0', '1'};
}

void write_binary(std::ostream& out, const CsrGraph& g) {
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t arcs = g.num_arcs();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&arcs), sizeof(arcs));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(eid_t)));
  out.write(reinterpret_cast<const char*>(g.adjacency().data()),
            static_cast<std::streamsize>(arcs * sizeof(vid_t)));
}

CsrGraph read_binary(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw InputError("not an sbg binary graph");
  std::uint64_t n = 0, arcs = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&arcs), sizeof(arcs));
  if (!in) throw InputError("truncated sbg binary header");
  std::vector<eid_t> offsets(n + 1);
  std::vector<vid_t> adj(arcs);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(eid_t)));
  in.read(reinterpret_cast<char*>(adj.data()),
          static_cast<std::streamsize>(arcs * sizeof(vid_t)));
  if (!in) throw InputError("truncated sbg binary body");
  return CsrGraph(std::move(offsets), std::move(adj));
}

CsrGraph load_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InputError("cannot open " + path);
  const std::string ext = extension(path);
  if (ext == "mtx") return build_graph(read_matrix_market(in));
  if (ext == "el" || ext == "txt") return build_graph(read_edge_list(in));
  if (ext == "sbg") return read_binary(in);
  throw InputError("unknown graph extension ." + ext + " for " + path);
}

void save_graph(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw InputError("cannot create " + path);
  const std::string ext = extension(path);
  if (ext == "sbg") {
    write_binary(out, g);
    return;
  }
  if (ext == "el") {
    EdgeList el;
    el.num_vertices = g.num_vertices();
    for (vid_t u = 0; u < g.num_vertices(); ++u) {
      for (const vid_t v : g.neighbors(u)) {
        if (u < v) el.add(u, v);
      }
    }
    write_edge_list(out, el);
    return;
  }
  throw InputError("unknown save extension ." + ext);
}

}  // namespace sbg
