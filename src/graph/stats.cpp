#include "graph/stats.hpp"

#include <algorithm>

#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"

namespace sbg {

GraphStats graph_stats(const CsrGraph& g, vid_t k) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.avg_degree = g.average_degree();
  if (s.num_vertices == 0) return s;

  // One fused pass over the degree array: every quantity is a reduction of
  // the same loaded degree, so splitting them into separate parallel loops
  // (as this used to) just re-streams the offsets array four times.
  vid_t mind = kNoVertex;
  vid_t maxd = 0;
  std::int64_t le2 = 0, lek = 0, iso = 0;
#pragma omp parallel for schedule(static) \
    reduction(min : mind) reduction(max : maxd) reduction(+ : le2, lek, iso)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(s.num_vertices);
       ++v) {
    const vid_t d = g.degree(static_cast<vid_t>(v));
    mind = std::min(mind, d);
    maxd = std::max(maxd, d);
    le2 += d <= 2 ? 1 : 0;
    lek += d <= k ? 1 : 0;
    iso += d == 0 ? 1 : 0;
  }
  s.min_degree = mind;
  s.max_degree = maxd;
  s.num_isolated = static_cast<vid_t>(iso);
  const double n = static_cast<double>(s.num_vertices);
  s.pct_deg2 = 100.0 * static_cast<double>(le2) / n;
  s.pct_degk = 100.0 * static_cast<double>(lek) / n;
  return s;
}

std::vector<vid_t> degree_histogram(const CsrGraph& g, vid_t cap) {
  std::vector<vid_t> hist(static_cast<std::size_t>(cap) + 1, 0);
  parallel_for(g.num_vertices(), [&](std::size_t v) {
    const vid_t d = std::min(g.degree(static_cast<vid_t>(v)), cap);
    fetch_add(&hist[d], vid_t{1});
  });
  return hist;
}

double pct_degree_at_most(const CsrGraph& g, vid_t k) {
  const vid_t n = g.num_vertices();
  if (n == 0) return 0.0;
  const std::size_t cnt = parallel_count(n, [&](std::size_t v) {
    return g.degree(static_cast<vid_t>(v)) <= k;
  });
  return 100.0 * static_cast<double>(cnt) / static_cast<double>(n);
}

}  // namespace sbg
