#include "graph/stats.hpp"

#include <algorithm>

#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"

namespace sbg {

GraphStats graph_stats(const CsrGraph& g, vid_t k) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.avg_degree = g.average_degree();
  if (s.num_vertices == 0) return s;

  s.max_degree = parallel_max<vid_t>(
      s.num_vertices, [&](std::size_t v) { return g.degree(static_cast<vid_t>(v)); },
      vid_t{0});
  vid_t mind = kNoVertex;
#pragma omp parallel for schedule(static) reduction(min : mind)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(s.num_vertices); ++v) {
    mind = std::min(mind, g.degree(static_cast<vid_t>(v)));
  }
  s.min_degree = mind;
  s.pct_deg2 = pct_degree_at_most(g, 2);
  s.pct_degk = (k == 2) ? s.pct_deg2 : pct_degree_at_most(g, k);
  return s;
}

std::vector<vid_t> degree_histogram(const CsrGraph& g, vid_t cap) {
  std::vector<vid_t> hist(static_cast<std::size_t>(cap) + 1, 0);
  parallel_for(g.num_vertices(), [&](std::size_t v) {
    const vid_t d = std::min(g.degree(static_cast<vid_t>(v)), cap);
    fetch_add(&hist[d], vid_t{1});
  });
  return hist;
}

double pct_degree_at_most(const CsrGraph& g, vid_t k) {
  const vid_t n = g.num_vertices();
  if (n == 0) return 0.0;
  const std::size_t cnt = parallel_count(n, [&](std::size_t v) {
    return g.degree(static_cast<vid_t>(v)) <= k;
  });
  return 100.0 * static_cast<double>(cnt) / static_cast<double>(n);
}

}  // namespace sbg
