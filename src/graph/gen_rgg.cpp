#include <algorithm>
#include <cmath>
#include <numbers>

#include "graph/generators.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/rng.hpp"

namespace sbg {

namespace {
struct Point {
  float x, y;
};
}  // namespace

EdgeList gen_rgg(vid_t n, double target_avg_degree, std::uint64_t seed) {
  EdgeList el;
  el.num_vertices = n;
  if (n < 2) return el;
  // Expected degree of a point away from the border is n * pi * r^2.
  const double r =
      std::sqrt(target_avg_degree / (std::numbers::pi * static_cast<double>(n)));

  // Bucket the unit square into cells of side >= r so all neighbors of a
  // point lie in its 3x3 cell neighborhood.
  const vid_t grid = std::max<vid_t>(
      1, static_cast<vid_t>(std::floor(1.0 / r)));
  const double cell = 1.0 / grid;

  // Sample points, then assign vertex ids in cell-major order (the UF rgg
  // instances are spatially sorted; id-locality matters to the algorithms).
  std::vector<Point> pts(n);
  const RandomStream rs(seed, /*stream=*/0x4667);
  parallel_for(n, [&](std::size_t i) {
    pts[i] = {static_cast<float>(rs.uniform(2 * i)),
              static_cast<float>(rs.uniform(2 * i + 1))};
  });
  const auto cell_of = [&](const Point& p) -> std::uint64_t {
    auto cx = std::min<std::uint64_t>(grid - 1,
                                      static_cast<std::uint64_t>(p.x / cell));
    auto cy = std::min<std::uint64_t>(grid - 1,
                                      static_cast<std::uint64_t>(p.y / cell));
    return cy * grid + cx;
  };
  std::sort(pts.begin(), pts.end(), [&](const Point& a, const Point& b) {
    const auto ca = cell_of(a), cb = cell_of(b);
    if (ca != cb) return ca < cb;
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });

  // Cell index: start offset of each cell in the sorted point array
  // (atomic counts at slot [c], then a parallel exclusive scan).
  const std::size_t num_cells = static_cast<std::size_t>(grid) * grid;
  std::vector<vid_t> cell_start(num_cells + 1, 0);
  parallel_for(n, [&](std::size_t i) {
    fetch_add(&cell_start[cell_of(pts[i])], vid_t{1});
  });
  exclusive_prefix_sum(std::span(cell_start));

  const float r2 = static_cast<float>(r * r);
  std::vector<std::vector<Edge>> per_thread_edges;
#pragma omp parallel
  {
#pragma omp single
    per_thread_edges.resize(
        static_cast<std::size_t>(omp_get_num_threads()));
    auto& local = per_thread_edges[static_cast<std::size_t>(
        omp_get_thread_num())];
#pragma omp for schedule(dynamic, 1024)
    for (std::int64_t ii = 0; ii < static_cast<std::int64_t>(n); ++ii) {
      const vid_t i = static_cast<vid_t>(ii);
      const Point p = pts[i];
      const std::int64_t cx = static_cast<std::int64_t>(p.x / cell);
      const std::int64_t cy = static_cast<std::int64_t>(p.y / cell);
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dx = -1; dx <= 1; ++dx) {
          const std::int64_t nx = std::clamp<std::int64_t>(cx + dx, 0, grid - 1);
          const std::int64_t ny = std::clamp<std::int64_t>(cy + dy, 0, grid - 1);
          if (nx != cx + dx || ny != cy + dy) continue;  // off-board
          const std::size_t c = static_cast<std::size_t>(ny) * grid +
                                static_cast<std::size_t>(nx);
          for (vid_t j = cell_start[c]; j < cell_start[c + 1]; ++j) {
            if (j <= i) continue;  // emit each pair once
            const float ddx = pts[j].x - p.x;
            const float ddy = pts[j].y - p.y;
            if (ddx * ddx + ddy * ddy <= r2) local.push_back({i, j});
          }
        }
      }
    }
  }
  for (auto& v : per_thread_edges) {
    el.edges.insert(el.edges.end(), v.begin(), v.end());
  }
  return el;
}

}  // namespace sbg
