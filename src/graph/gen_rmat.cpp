#include <bit>
#include <cmath>

#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"

namespace sbg {

EdgeList gen_rmat(vid_t n, eid_t num_edges, std::uint64_t seed, double a,
                  double b, double c) {
  SBG_CHECK(a + b + c < 1.0 + 1e-9, "RMAT probabilities must sum below 1");
  EdgeList el;
  el.num_vertices = n;
  if (n < 2) return el;
  const unsigned levels = static_cast<unsigned>(std::bit_width(
      static_cast<std::uint64_t>(n) - 1));  // ceil(log2 n)
  el.edges.resize(num_edges);
  const RandomStream rs(seed, /*stream=*/0x72a7);

  parallel_for(num_edges, [&](std::size_t i) {
    // Quadrant descent with per-level noise on (a, b, c) — the standard
    // "smoothing" that prevents exact-degree lattice artifacts.
    std::uint64_t u = 0, v = 0;
    for (unsigned lvl = 0; lvl < levels; ++lvl) {
      const double r = rs.uniform(i * levels + lvl);
      const double noise =
          0.9 + 0.2 * rs.uniform((i * levels + lvl) ^ 0x5bd1e995u);
      const double aa = a * noise;
      const double bb = b * noise;
      const double cc = c * noise;
      u <<= 1;
      v <<= 1;
      if (r < aa) {
        // top-left: no bits set
      } else if (r < aa + bb) {
        v |= 1;
      } else if (r < aa + bb + cc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    el.edges[i] = {static_cast<vid_t>(u % n), static_cast<vid_t>(v % n)};
  });
  return el;
}

}  // namespace sbg
