#include "graph/dataset.hpp"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <functional>

#include "parallel/rng.hpp"

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace sbg {

const std::vector<DatasetPaperRow>& dataset_table() {
  static const std::vector<DatasetPaperRow> rows = {
      {"c-73", "Numerical simulations", 169'422, 1'109'852, 48.7, 14.9, 6.6},
      {"lp1", "Numerical simulations", 534'388, 1'109'032, 93.8, 92.7, 2.1},
      {"Cit-Patents", "Collaboration", 3'774'768, 33'045'146, 28.06, 4.1, 8.8},
      {"coAuthorsCiteseer", "Collaboration", 227'320, 1'628'268, 28.97, 3.7, 7.2},
      {"germany-osm", "Road", 11'548'845, 24'738'362, 82.27, 19.9, 2.1},
      {"road-central", "Road", 14'081'816, 33'866'826, 50.91, 25.0, 2.4},
      {"kron-g500-logn20", "Synthetic", 1'048'576, 89'238'804, 42.1, 0.3, 85.1},
      {"kron-g500-logn21", "Synthetic", 2'097'152, 182'081'864, 44.59, 0.3, 86.8},
      {"rgg-n-2-23-s0", "Random geometric", 8'388'608, 127'002'794, 0.0, 0.0, 15.1},
      {"rgg-n-2-24-s0", "Random geometric", 16'777'216, 265'114'402, 0.0, 0.0, 15.8},
      {"web-Google", "Web", 916'428, 10'296'998, 30.67, 4.0, 11.2},
      {"webbase-1M", "Web", 1'000'005, 4'216'602, 87.35, 38.3, 4.2},
  };
  return rows;
}

const DatasetPaperRow& dataset_row(const std::string& name) {
  for (const auto& row : dataset_table()) {
    if (row.name == name) return row;
  }
  throw InputError("unknown dataset: " + name);
}

std::vector<std::string> dataset_names() {
  std::vector<std::string> names;
  for (const auto& row : dataset_table()) names.push_back(row.name);
  return names;
}

double bench_scale() {
  if (const char* env = std::getenv("SBG_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 1.0 / 32.0;
}

CsrGraph make_dataset(const std::string& name, double scale,
                      std::uint64_t seed) {
  const DatasetPaperRow& row = dataset_row(name);  // validates the name

  if (const char* dir = std::getenv("SBG_DATASET_DIR")) {
    // Real files are loaded through sbg::ingest (load_graph): mmap +
    // chunk-parallel parse on first touch, transparent .sbgc cache after —
    // so bench sweeps over Table II pay the text parse once, not per run.
    for (const char* ext : {".sbgc", ".mtx", ".el", ".txt"}) {
      const auto path = std::filesystem::path(dir) / (name + ext);
      if (std::filesystem::exists(path)) return load_graph(path.string());
    }
  }

  const vid_t n = std::max<vid_t>(
      64, static_cast<vid_t>(static_cast<double>(row.num_vertices) * scale));
  const std::uint64_t s = seed ^ mix64(std::hash<std::string>{}(name));

  EdgeList el;
  if (name == "c-73") {
    el = gen_numerical(n, /*core_fraction=*/0.52, /*core_band_mean=*/5.6, s);
  } else if (name == "lp1") {
    el = gen_broom(n, s);
  } else if (name == "Cit-Patents") {
    // Citation graph: power-law core with a chronological backbone,
    // moderate density, modest pendant tail. (arcs parameter set slightly
    // below the Table II value: RMAT oversampling overshoots at this
    // density; bench_table2_datasets verifies the landed fingerprint.)
    el = gen_web(n, /*core_fraction=*/0.72, /*arcs_per_vertex=*/8.2,
                 /*chain_mean=*/1.3, s, /*core_backbone=*/2);
  } else if (name == "coAuthorsCiteseer") {
    el = gen_collab(n, /*avg_degree=*/7.2, /*max_community=*/40, s);
  } else if (name == "germany-osm") {
    el = gen_road(n, /*mean_subdiv=*/2.4, /*spur_fraction=*/0.45, s);
  } else if (name == "road-central") {
    el = gen_road(n, /*mean_subdiv=*/0.30, /*spur_fraction=*/0.26, s,
                  /*spur_trees=*/true);
  } else if (name == "kron-g500-logn20" || name == "kron-g500-logn21") {
    // Kronecker: arcs/V ~ 85, but ~42% of the full-scale kron_g500 vertex
    // set sits at degree <= 2 (the power law's cold tail). At bench scales
    // the RMAT tail thins out, so the cold mass is made explicit: a dense
    // RMAT core over 58% of the ids plus a 42% fringe attached with two
    // edges each (degree 2 but, deliberately, not bridges — Table II says
    // kron has ~0.3% bridges).
    const vid_t core = static_cast<vid_t>(0.58 * static_cast<double>(n));
    const eid_t target = static_cast<eid_t>(row.avg_degree / 2.0 *
                                            static_cast<double>(n)) -
                         2ull * (n - core);
    el = gen_rmat(core, target + (target * 35) / 100, s);
    el.num_vertices = n;
    Rng fringe_rng(s ^ 0xfeedu);
    for (vid_t v = core; v < n; ++v) {
      const vid_t a = static_cast<vid_t>(fringe_rng.below(core));
      const vid_t b = static_cast<vid_t>(fringe_rng.below(core));
      el.add(v, a);
      if (b != a) el.add(v, b);
    }
  } else if (name == "rgg-n-2-23-s0") {
    el = gen_rgg(n, /*target_avg_degree=*/15.1, s);
  } else if (name == "rgg-n-2-24-s0") {
    el = gen_rgg(n, /*target_avg_degree=*/15.8, s);
  } else if (name == "web-Google") {
    el = gen_web(n, /*core_fraction=*/0.70, /*arcs_per_vertex=*/9.8,
                 /*chain_mean=*/1.4, s, /*core_backbone=*/2);
  } else if (name == "webbase-1M") {
    el = gen_web(n, /*core_fraction=*/0.16, /*arcs_per_vertex=*/3.8,
                 /*chain_mean=*/2.6, s);
  } else {
    throw InputError("no generator wired for dataset " + name);
  }
  return build_graph(std::move(el), /*connect=*/true);
}

}  // namespace sbg
