#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"

namespace sbg {

EdgeList gen_path(vid_t n) {
  EdgeList el;
  el.num_vertices = n;
  for (vid_t i = 0; i + 1 < n; ++i) el.add(i, i + 1);
  return el;
}

EdgeList gen_cycle(vid_t n) {
  EdgeList el = gen_path(n);
  if (n >= 3) el.add(n - 1, 0);
  return el;
}

EdgeList gen_complete(vid_t n) {
  EdgeList el;
  el.num_vertices = n;
  for (vid_t i = 0; i < n; ++i) {
    for (vid_t j = i + 1; j < n; ++j) el.add(i, j);
  }
  return el;
}

EdgeList gen_star(vid_t n) {
  EdgeList el;
  el.num_vertices = n;
  for (vid_t i = 1; i < n; ++i) el.add(0, i);
  return el;
}

EdgeList gen_grid(vid_t rows, vid_t cols) {
  EdgeList el;
  el.num_vertices = rows * cols;
  const auto id = [cols](vid_t r, vid_t c) { return r * cols + c; };
  for (vid_t r = 0; r < rows; ++r) {
    for (vid_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) el.add(id(r, c), id(r, c + 1));
      if (r + 1 < rows) el.add(id(r, c), id(r + 1, c));
    }
  }
  return el;
}

EdgeList gen_random_tree(vid_t n, std::uint64_t seed) {
  EdgeList el;
  el.num_vertices = n;
  Rng rng(seed);
  for (vid_t i = 1; i < n; ++i) {
    el.add(static_cast<vid_t>(rng.below(i)), i);
  }
  return el;
}

EdgeList gen_erdos_renyi(vid_t n, eid_t num_edges, std::uint64_t seed) {
  EdgeList el;
  el.num_vertices = n;
  if (n < 2) return el;
  el.edges.resize(num_edges);
  const RandomStream rs(seed, /*stream=*/0x47e5);
  // Counter-based stream: edge i is a pure function of (seed, i), so the
  // fill parallelizes deterministically.
  parallel_for(num_edges, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(rs.below(2 * i, n));
    vid_t v = static_cast<vid_t>(rs.below(2 * i + 1, n - 1));
    if (v >= u) ++v;  // uniform over pairs u != v
    el.edges[i] = {u, v};
  });
  return el;
}

}  // namespace sbg
