// Structural fingerprints of a graph — the columns of the paper's Table II.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace sbg {

struct GraphStats {
  vid_t num_vertices = 0;
  eid_t num_edges = 0;
  double avg_degree = 0.0;
  vid_t min_degree = 0;
  vid_t max_degree = 0;
  /// Percentage of vertices with degree <= 2 ("% DEG2" in Table II).
  double pct_deg2 = 0.0;
  /// Percentage of vertices with degree <= k for the requested k.
  double pct_degk = 0.0;
  /// Vertices with degree 0 (free wins for every solver; the tune
  /// fingerprint uses their share to sanity-check generator output).
  vid_t num_isolated = 0;
};

/// Degree-structure statistics; `k` selects the pct_degk threshold.
GraphStats graph_stats(const CsrGraph& g, vid_t k = 2);

/// Histogram of degrees: result[d] = #vertices of degree d,
/// for d in [0, cap]; degrees above cap are accumulated into result[cap].
std::vector<vid_t> degree_histogram(const CsrGraph& g, vid_t cap = 64);

/// Fraction (in percent) of vertices with degree <= k.
double pct_degree_at_most(const CsrGraph& g, vid_t k);

}  // namespace sbg
