// Parallel connected components (label propagation with pointer hooking).
// Used to enumerate the 2-edge-connected pieces after bridge removal and to
// verify generator output.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace sbg {

struct Components {
  /// Per-vertex component label; labels are the minimum vertex id in the
  /// component, so they are canonical and comparable across runs.
  std::vector<vid_t> label;
  /// Number of distinct components.
  vid_t count = 0;
};

/// Min-label propagation until fixpoint. O((n + m) * diameter-of-labels)
/// worst case; fast in practice with the hooking shortcut.
Components connected_components(const CsrGraph& g);

/// True iff g has exactly one connected component (or is empty).
bool is_connected(const CsrGraph& g);

}  // namespace sbg
