#include "graph/csr.hpp"

#include <algorithm>

#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"

namespace sbg {

CsrGraph::CsrGraph(EidBuffer offsets, VidBuffer adj)
    : offsets_(std::move(offsets)), adj_(std::move(adj)) {
  SBG_CHECK(!offsets_.empty(), "CSR offsets must have n+1 entries");
  SBG_CHECK(offsets_.front() == 0, "CSR offsets must start at 0");
  SBG_CHECK(offsets_.back() == adj_.size(),
            "CSR offsets must end at the adjacency size");
}

bool CsrGraph::has_edge(vid_t u, vid_t v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void CsrGraph::validate() const {
  const vid_t n = num_vertices();
  const bool ok = !parallel_any(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    if (offsets_[v] > offsets_[v + 1]) return true;  // non-monotone
    const auto nbrs = neighbors(v);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const vid_t w = nbrs[j];
      if (w >= n) return true;                      // out of range
      if (w == v) return true;                      // self loop
      if (j > 0 && nbrs[j - 1] >= w) return true;   // unsorted or duplicate
      if (!has_edge(w, v)) return true;             // asymmetric
    }
    return false;
  });
  SBG_CHECK(ok, "CSR invariant violation (range/sort/self-loop/symmetry)");
}

}  // namespace sbg
