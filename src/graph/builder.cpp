#include "graph/builder.hpp"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/sort.hpp"

namespace sbg {

void normalize_edge_list(EdgeList& el) {
  auto& edges = el.edges;
  for (auto& e : edges) {
    SBG_CHECK(e.u < el.num_vertices && e.v < el.num_vertices,
              "edge endpoint out of range");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
  parallel_sort(edges);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

namespace {

/// Sequential union-find with path halving; construction-time only.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), vid_t{0});
  }

  vid_t find(vid_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool unite(vid_t a, vid_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<vid_t> parent_;
};

}  // namespace

std::size_t make_connected(EdgeList& el) {
  if (el.num_vertices == 0) return 0;
  UnionFind uf(el.num_vertices);
  for (const Edge& e : el.edges) uf.unite(e.u, e.v);

  std::vector<vid_t> reps;
  for (vid_t v = 0; v < el.num_vertices; ++v) {
    if (uf.find(v) == v) reps.push_back(v);
  }
  const std::size_t added = reps.size() - 1;
  for (std::size_t i = 1; i < reps.size(); ++i) {
    Edge e{reps[i - 1], reps[i]};
    if (e.u > e.v) std::swap(e.u, e.v);
    el.edges.push_back(e);
  }
  if (added > 0) {
    std::sort(el.edges.begin(), el.edges.end());
    el.edges.erase(std::unique(el.edges.begin(), el.edges.end()),
                   el.edges.end());
  }
  return added;
}

CsrGraph build_csr(const EdgeList& el) {
  const vid_t n = el.num_vertices;
  const std::size_t m = el.edges.size();

  EidBuffer offsets(static_cast<std::size_t>(n) + 1);
  // Atomic counting needs explicit zero seeds (EidBuffer sizing leaves the
  // slots uninitialized); fill in parallel for NUMA-friendly first touch.
  parallel_for(offsets.size(), [&](std::size_t i) { offsets[i] = 0; });
  // Count arcs per vertex (at slot [v], the exclusive-scan input layout).
  // Edges touch arbitrary vertices, so count with atomics over the edge
  // list.
  parallel_for(m, [&](std::size_t i) {
    const Edge& e = el.edges[i];
    fetch_add(&offsets[e.u], eid_t{1});
    fetch_add(&offsets[e.v], eid_t{1});
  });
  exclusive_prefix_sum(std::span(offsets));

  VidBuffer adj(offsets.back());
  std::vector<eid_t> cursor(offsets.begin(), offsets.end() - 1);
  parallel_for(m, [&](std::size_t i) {
    const Edge& e = el.edges[i];
    adj[fetch_add(&cursor[e.u], eid_t{1})] = e.v;
    adj[fetch_add(&cursor[e.v], eid_t{1})] = e.u;
  });

  parallel_for_dynamic(n, [&](std::size_t v) {
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adj.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  });

  return CsrGraph(std::move(offsets), std::move(adj));
}

CsrGraph build_graph(EdgeList el, bool connect) {
  normalize_edge_list(el);
  if (connect) make_connected(el);
  return build_csr(el);
}

}  // namespace sbg
