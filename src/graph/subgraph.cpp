#include "graph/subgraph.hpp"

#include <algorithm>

namespace sbg {

std::vector<CsrGraph> split_edges_by_arc_class(
    const CsrGraph& g, std::span<const std::uint8_t> arc_class, unsigned k) {
  SBG_CHECK(arc_class.size() == g.num_arcs(), "arc class array size mismatch");
  return detail::split_core(
      g, [&](vid_t, eid_t a) { return arc_class[a]; }, arc_class, k);
}

CsrGraph merge_edge_disjoint(const CsrGraph& a, const CsrGraph& b) {
  SBG_CHECK(a.num_vertices() == b.num_vertices(),
            "merge over mismatched vertex spaces");
  const vid_t n = a.num_vertices();
  SBG_COUNTER_ADD("decomp.arcs_scanned", a.num_arcs() + b.num_arcs());
  SBG_COUNTER_ADD("decomp.subgraphs_built", 1);
  EidBuffer offsets(static_cast<std::size_t>(n) + 1);
  parallel_for(static_cast<std::size_t>(n) + 1, [&](std::size_t i) {
    offsets[i] = a.offsets()[i] + b.offsets()[i];
  });
  VidBuffer adj(offsets.back());
  parallel_for(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    std::merge(na.begin(), na.end(), nb.begin(), nb.end(),
               adj.begin() + static_cast<std::ptrdiff_t>(offsets[i]));
  });
  return CsrGraph(std::move(offsets), std::move(adj));
}

CsrGraph filter_edges_by_arc_flag(const CsrGraph& g,
                                  const std::vector<std::uint8_t>& arc_keep) {
  SBG_CHECK(arc_keep.size() == g.num_arcs(), "arc flag array size mismatch");
  const vid_t n = g.num_vertices();
  SBG_COUNTER_ADD("decomp.arcs_scanned", 2 * g.num_arcs());
  SBG_COUNTER_ADD("decomp.subgraphs_built", 1);
  EidBuffer offsets(static_cast<std::size_t>(n) + 1);

  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t cnt = 0;
    for (eid_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      if (arc_keep[a]) ++cnt;
    }
    offsets[i] = cnt;
  });
  offsets[n] = 0;
  exclusive_prefix_sum(std::span(offsets));

  VidBuffer adj(offsets.back());
  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t out = offsets[i];
    for (eid_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      if (arc_keep[a]) adj[out++] = g.arc_head(a);
    }
  });
  return CsrGraph(std::move(offsets), std::move(adj));
}

CsrGraph induced_subgraph(const CsrGraph& g,
                          const std::vector<std::uint8_t>& in_set) {
  SBG_CHECK(in_set.size() == g.num_vertices(), "vertex mask size mismatch");
  return filter_edges(
      g, [&](vid_t u, vid_t v) { return in_set[u] && in_set[v]; });
}

}  // namespace sbg
