#include "graph/subgraph.hpp"

namespace sbg {

CsrGraph filter_edges_by_arc_flag(const CsrGraph& g,
                                  const std::vector<std::uint8_t>& arc_keep) {
  SBG_CHECK(arc_keep.size() == g.num_arcs(), "arc flag array size mismatch");
  const vid_t n = g.num_vertices();
  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1, 0);

  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t cnt = 0;
    for (eid_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      if (arc_keep[a]) ++cnt;
    }
    offsets[i + 1] = cnt;
  });
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<vid_t> adj(offsets.back());
  parallel_for(n, [&](std::size_t i) {
    const vid_t u = static_cast<vid_t>(i);
    eid_t out = offsets[i];
    for (eid_t a = g.arc_begin(u); a < g.arc_end(u); ++a) {
      if (arc_keep[a]) adj[out++] = g.arc_head(a);
    }
  });
  return CsrGraph(std::move(offsets), std::move(adj));
}

CsrGraph induced_subgraph(const CsrGraph& g,
                          const std::vector<std::uint8_t>& in_set) {
  SBG_CHECK(in_set.size() == g.num_vertices(), "vertex mask size mismatch");
  return filter_edges(
      g, [&](vid_t u, vid_t v) { return in_set[u] && in_set[v]; });
}

}  // namespace sbg
