// Graph generators.
//
// Two tiers:
//  * basic shapes (paths, cycles, grids, cliques, stars, random trees,
//    Erdős–Rényi) — building blocks and test fixtures;
//  * graph-class generators calibrated to the structural fingerprints of
//    the paper's Table II datasets (see dataset.hpp for the mapping).
//
// All generators are deterministic in (parameters, seed).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace sbg {

// ---------------------------------------------------------------- basics --
EdgeList gen_path(vid_t n);
EdgeList gen_cycle(vid_t n);
EdgeList gen_complete(vid_t n);
EdgeList gen_star(vid_t n);  ///< vertex 0 is the hub; n-1 leaves.
EdgeList gen_grid(vid_t rows, vid_t cols);
/// Uniform random recursive tree: vertex i attaches to a uniform j < i.
EdgeList gen_random_tree(vid_t n, std::uint64_t seed);
/// G(n, m)-style Erdős–Rényi: `num_edges` uniform pairs (dups dropped later).
EdgeList gen_erdos_renyi(vid_t n, eid_t num_edges, std::uint64_t seed);

// ----------------------------------------------------------- graph classes --
/// RMAT / Kronecker-like power-law generator (kron_g500-style for the
/// default a=0.57, b=c=0.19). `num_edges` undirected samples before dedup.
EdgeList gen_rmat(vid_t n, eid_t num_edges, std::uint64_t seed,
                  double a = 0.57, double b = 0.19, double c = 0.19);

/// Random geometric graph on the unit square; radius chosen for
/// `target_avg_degree`. Ids assigned in spatial (cell-major) order, matching
/// the UF rgg instances — this ordering is what drives GM's long proposal
/// chains on these graphs.
EdgeList gen_rgg(vid_t n, double target_avg_degree, std::uint64_t seed);

/// Road-network-like: 2D grid with random edge deletions, geometric edge
/// subdivision (degree-2 chain vertices) of mean length `mean_subdiv`, and
/// pendant spurs on a `spur_fraction` of junctions (dead ends -> bridges).
/// Spurs are chains by default (OSM-style: all spur vertices degree <= 2);
/// with `spur_trees` they are small random trees (road-central-style:
/// bridge-heavy suburbs with branching, so many bridge endpoints keep
/// degree > 2). Total vertex budget ~= n.
EdgeList gen_road(vid_t n, double mean_subdiv, double spur_fraction,
                  std::uint64_t seed, bool spur_trees = false);

/// LP-constraint-like (lp1): almost a forest — hub vertices with many short
/// pendant paths, hub tree backbone, and a small fraction of extra
/// cycle-forming edges. ~93% of vertices end up with degree <= 2 and ~93%
/// of edges are bridges.
EdgeList gen_broom(vid_t n, std::uint64_t seed);

/// Numerical-simulation-like (c-73): banded core (random per-vertex
/// bandwidth) over `core_fraction` of vertices plus pendant-path periphery.
EdgeList gen_numerical(vid_t n, double core_fraction, double core_band_mean,
                       std::uint64_t seed);

/// Collaboration-network-like: overlapping clique communities
/// (paper sizes drawn Zipf-ish in [3, max_community]).
EdgeList gen_collab(vid_t n, double avg_degree, vid_t max_community,
                    std::uint64_t seed);

/// Web-crawl-like: RMAT core over `core_fraction` of vertices plus pendant
/// chains of mean length `chain_mean` hanging off it. `total_arcs_per_vertex`
/// targets the Table II avg-degree column. `core_backbone` adds 0, 1, or 2
/// consecutive-id rings over the core (citation-graph style: every paper
/// cites chronological neighbors); each ring raises the core's minimum
/// degree by 2, steering %DEG2 toward the chain fraction — the
/// Cit-Patents / web-Google fingerprints.
EdgeList gen_web(vid_t n, double core_fraction, double total_arcs_per_vertex,
                 double chain_mean, std::uint64_t seed,
                 int core_backbone = 0);

}  // namespace sbg
