// Edge-list -> CSR construction with the paper's preprocessing:
// "Directed edges are converted to undirected edges and self-loops in the
//  graphs are ignored. For graphs that are not connected, we add additional
//  edges to make the graph connected." (Section II-D1)
#pragma once

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace sbg {

/// Canonicalize (u<v), drop self-loops, sort, drop duplicate edges.
/// Leaves `el` normalized in place.
void normalize_edge_list(EdgeList& el);

/// Append the fewest edges (component_count - 1) that make the graph
/// connected: chains together one representative per connected component.
/// `el` must already be normalized; stays normalized afterwards.
/// Returns the number of edges added.
std::size_t make_connected(EdgeList& el);

/// Build a CSR from a normalized edge list (each edge becomes two arcs,
/// adjacency sorted). Parallel counting-sort construction.
CsrGraph build_csr(const EdgeList& el);

/// One-shot convenience: normalize, optionally connect, build.
CsrGraph build_graph(EdgeList el, bool connect = true);

}  // namespace sbg
