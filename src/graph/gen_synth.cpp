// Generators for the paper's real-world graph classes (Table II): road
// networks, LP-constraint graphs, numerical-simulation meshes, collaboration
// networks, and web crawls. Each is calibrated to the class's structural
// fingerprint — average degree, %degree<=2, %bridges — because those three
// properties drive the per-graph wins and losses in Figures 3-5.
#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/generators.hpp"
#include "parallel/rng.hpp"

namespace sbg {

namespace {

/// Geometric with the given mean (>= 0): number of extra items.
std::uint64_t geometric(Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  const double p = 1.0 / (1.0 + mean);
  const double u = rng.uniform();
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

}  // namespace

EdgeList gen_road(vid_t n, double mean_subdiv, double spur_fraction,
                  std::uint64_t seed, bool spur_trees) {
  EdgeList el;
  el.num_vertices = n;
  if (n < 8) return gen_path(n);
  Rng rng(seed);

  // Vertex budget: grid junctions + subdivision vertices + spur vertices.
  constexpr double kDeleteProb = 0.12;
  const double mean_spur = spur_trees ? 3.0 : 1.0 + mean_subdiv;
  const double edges_per_junction = 2.0 * (1.0 - kDeleteProb);
  const double cost = 1.0 + edges_per_junction * mean_subdiv +
                      mean_spur * spur_fraction;
  const vid_t n_grid =
      std::max<vid_t>(4, static_cast<vid_t>(static_cast<double>(n) / cost));
  const vid_t rows = std::max<vid_t>(
      2, static_cast<vid_t>(std::sqrt(static_cast<double>(n_grid))));
  const vid_t cols = std::max<vid_t>(2, n_grid / rows);
  const vid_t junctions = rows * cols;
  vid_t next = junctions;  // allocator for chain/spur vertices

  const auto id = [cols](vid_t r, vid_t c) { return r * cols + c; };
  // Emit edge (u, v) subdivided into a path with `s` interior vertices.
  const auto add_subdivided = [&](vid_t u, vid_t v, std::uint64_t s) {
    vid_t prev = u;
    for (std::uint64_t i = 0; i < s && next < n; ++i) {
      el.add(prev, next);
      prev = next++;
    }
    el.add(prev, v);
  };

  for (vid_t r = 0; r < rows; ++r) {
    for (vid_t c = 0; c < cols; ++c) {
      const vid_t u = id(r, c);
      if (c + 1 < cols && rng.uniform() >= kDeleteProb) {
        add_subdivided(u, id(r, c + 1), geometric(rng, mean_subdiv));
      }
      if (r + 1 < rows && rng.uniform() >= kDeleteProb) {
        add_subdivided(u, id(r + 1, c), geometric(rng, mean_subdiv));
      }
      // Dead-end spur (bridge-heavy structure of real road maps): a chain
      // of subdivided segments, or a small branching suburb tree.
      if (rng.uniform() < spur_fraction) {
        const std::uint64_t size =
            1 + geometric(rng, std::max(0.0, mean_spur - 1.0));
        if (spur_trees) {
          const vid_t first = next;
          for (std::uint64_t i = 0; i < size && next < n; ++i) {
            const vid_t parent =
                i == 0 ? u
                       : first + static_cast<vid_t>(rng.below(next - first));
            el.add(parent, next);
            ++next;
          }
        } else {
          vid_t prev = u;
          for (std::uint64_t i = 0; i < size && next < n; ++i) {
            el.add(prev, next);
            prev = next++;
          }
        }
      }
    }
  }
  el.num_vertices = std::max(el.num_vertices, next);
  return el;
}

EdgeList gen_broom(vid_t n, std::uint64_t seed) {
  EdgeList el;
  el.num_vertices = n;
  if (n < 8) return gen_star(n);
  Rng rng(seed);

  // ~5% of vertices are constraint hubs (degree >= 3), matching lp1's
  // 93.8% DEG2 column; the rest live on pendant paths.
  const vid_t hubs = std::max<vid_t>(2, n / 20);
  // Hub backbone: random recursive tree.
  for (vid_t i = 1; i < hubs; ++i) {
    el.add(static_cast<vid_t>(rng.below(i)), i);
  }
  // Pendant paths hanging off uniform hubs. A small fraction close back
  // onto a second hub, forming the ~7% of edges that are NOT bridges in
  // lp1 (Table II: 92.7% bridges).
  vid_t next = hubs;
  while (next < n) {
    const vid_t hub = static_cast<vid_t>(rng.below(hubs));
    const std::uint64_t len = 1 + geometric(rng, 0.6);
    vid_t prev = hub;
    for (std::uint64_t i = 0; i < len && next < n; ++i) {
      el.add(prev, next);
      prev = next++;
    }
    if (rng.uniform() < 0.025) {
      const vid_t other = static_cast<vid_t>(rng.below(hubs));
      if (other != hub) el.add(prev, other);  // close the path into a cycle
    }
  }
  return el;
}

EdgeList gen_numerical(vid_t n, double core_fraction, double core_band_mean,
                       std::uint64_t seed) {
  EdgeList el;
  el.num_vertices = n;
  if (n < 8) return gen_path(n);
  Rng rng(seed);

  const vid_t nc = std::max<vid_t>(
      4, static_cast<vid_t>(core_fraction * static_cast<double>(n)));
  // Banded core: vertex i links forward to i+1 .. i+w_i (mesh-like band).
  for (vid_t i = 0; i < nc; ++i) {
    const std::uint64_t w = 1 + geometric(rng, core_band_mean - 1.0);
    for (std::uint64_t d = 1; d <= w && i + d < nc; ++d) {
      el.add(i, i + static_cast<vid_t>(d));
    }
  }
  // Pendant-path periphery (boundary/slack structure).
  vid_t next = nc;
  while (next < n) {
    const vid_t anchor = static_cast<vid_t>(rng.below(nc));
    const std::uint64_t len = 1 + geometric(rng, 0.4);
    vid_t prev = anchor;
    for (std::uint64_t i = 0; i < len && next < n; ++i) {
      el.add(prev, next);
      prev = next++;
    }
  }
  return el;
}

EdgeList gen_collab(vid_t n, double avg_degree, vid_t max_community,
                    std::uint64_t seed) {
  EdgeList el;
  el.num_vertices = n;
  if (n < 8) return gen_complete(n);
  Rng rng(seed);

  const eid_t edge_budget =
      static_cast<eid_t>(avg_degree * static_cast<double>(n) / 2.0);
  eid_t emitted = 0;

  const auto add_clique = [&](const std::vector<vid_t>& members) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (members[i] != members[j]) {
          el.add(members[i], members[j]);
          ++emitted;
        }
      }
    }
  };

  // Home communities: consecutive-id blocks covering every vertex (every
  // author has at least one paper), so almost no vertex dangles as a
  // bridge endpoint — the coAuthors fingerprint has only ~4% bridges.
  std::vector<vid_t> members;
  for (vid_t base = 0; base < n;) {
    // Mostly small groups (size-3 homes leave untouched members at degree
    // 2 — the ~29% DEG2 mass), with an occasional two-author paper whose
    // edge is the rare coAuthors bridge.
    const std::uint64_t raw =
        rng.uniform() < 0.18 ? 2 : 3 + geometric(rng, 0.9);
    const vid_t size = static_cast<vid_t>(std::min<std::uint64_t>(
        std::min<std::uint64_t>(max_community, n - base), raw));
    members.clear();
    for (vid_t i = 0; i < size; ++i) members.push_back(base + i);
    add_clique(members);
    base += size;
  }

  // Overlapping collaborations: random groups drawn from id windows
  // (authors indexed by venue), until the degree budget is met.
  const vid_t window = std::max<vid_t>(64, n / 64);
  while (emitted < edge_budget) {
    // Larger overlap groups: a clique spends its edge budget on few member
    // slots, leaving most size-3 homes untouched at degree 2.
    const vid_t size = static_cast<vid_t>(std::min<std::uint64_t>(
        max_community, 3 + geometric(rng, 4.0)));
    const vid_t base = static_cast<vid_t>(rng.below(n));
    members.clear();
    for (vid_t i = 0; i < size; ++i) {
      members.push_back(static_cast<vid_t>((base + rng.below(window)) % n));
    }
    add_clique(members);
  }
  return el;
}

EdgeList gen_web(vid_t n, double core_fraction, double total_arcs_per_vertex,
                 double chain_mean, std::uint64_t seed, int core_backbone) {
  EdgeList el;
  el.num_vertices = n;
  if (n < 8) return gen_star(n);
  Rng rng(seed);

  const vid_t nc = std::max<vid_t>(
      4, static_cast<vid_t>(core_fraction * static_cast<double>(n)));
  const eid_t total_edges =
      static_cast<eid_t>(total_arcs_per_vertex * static_cast<double>(n) / 2.0);
  const eid_t chain_edges = n - nc;
  const eid_t backbone_edges =
      static_cast<eid_t>(core_backbone) * (nc - 1);
  const eid_t spent = chain_edges + backbone_edges;
  const eid_t core_edges = total_edges > spent ? total_edges - spent : eid_t{1};
  // Oversample 30%: RMAT's multi-edges collapse in normalization.
  EdgeList core = gen_rmat(nc, core_edges + (core_edges * 3) / 10, seed ^ 0x8badf00d,
                           0.52, 0.21, 0.21);
  el.edges = std::move(core.edges);
  // Backbone rings follow a stride permutation of the core rather than
  // consecutive ids: the degree fingerprint is identical, but a sorted-id
  // path would be the adversarial worst case for lowest-id-proposal
  // algorithms (GM) and real citation ids are not sorted along paths.
  for (int ring = 1; ring <= core_backbone; ++ring) {
    vid_t stride = static_cast<vid_t>(
        (0x9e3779b9ull * static_cast<std::uint64_t>(ring + 1)) % nc);
    while (std::gcd(stride, nc) != 1) ++stride;
    vid_t cur = 0;
    for (vid_t i = 0; i + 1 < nc; ++i) {
      const vid_t nxt = static_cast<vid_t>(
          (static_cast<std::uint64_t>(cur) + stride) % nc);
      el.add(cur, nxt);
      cur = nxt;
    }
  }

  // Pendant chains (link-farm / leaf-page structure).
  vid_t next = nc;
  while (next < n) {
    const vid_t anchor = static_cast<vid_t>(rng.below(nc));
    const std::uint64_t len = 1 + geometric(rng, chain_mean - 1.0);
    vid_t prev = anchor;
    for (std::uint64_t i = 0; i < len && next < n; ++i) {
      el.add(prev, next);
      prev = next++;
    }
  }
  return el;
}

}  // namespace sbg
