// Edge-list representation used at graph-construction time.
#pragma once

#include <cstddef>
#include <vector>

#include "common.hpp"

namespace sbg {

/// One undirected edge. Builders canonicalize to u < v.
struct Edge {
  vid_t u = 0;
  vid_t v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A mutable undirected graph under construction: a vertex count plus a bag
/// of edges (possibly with duplicates, self-loops, or both orientations).
struct EdgeList {
  vid_t num_vertices = 0;
  std::vector<Edge> edges;

  void add(vid_t u, vid_t v) { edges.push_back({u, v}); }
  std::size_t size() const { return edges.size(); }
};

}  // namespace sbg
