// Graph file IO.
//
// The paper's datasets come from the University of Florida sparse matrix
// collection (MatrixMarket format). We support:
//   * MatrixMarket  (.mtx)  — coordinate pattern/real, general or symmetric
//   * edge list     (.el/.txt) — "u v" or "u v w" per line ('w' ignored),
//                    '#'/'%' comments, 0-based ids (SNAP / DIMACS style)
//   * sbg binary    (.sbg)  — legacy eager CSR dump
//   * CSR cache     (.sbgc) — versioned, checksummed binary cache entries
//                    (src/ingest/cache.hpp; DESIGN.md "On-disk formats")
// so users can drop in the real UF graphs when they have them, while the
// bundled benches default to the calibrated synthetic suite (dataset.hpp).
//
// The std::istream readers here are the line-at-a-time SEQUENTIAL
// reference implementations; load_graph() routes through sbg::ingest,
// which parses the same dialects chunk-parallel from an mmap and caches
// the built CSR. The two are held byte-identical by tests/test_ingest.cpp
// and the sbg_fuzz "ingest" family. Every InputError thrown by the readers
// carries the 1-based line number of the offending line.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace sbg {

/// Parse MatrixMarket coordinate data from a stream (1-based ids; values,
/// if present, are ignored; symmetric and general headers both accepted).
EdgeList read_matrix_market(std::istream& in);

/// Parse "u v" / "u v w" text lines (0-based ids, '#'- or '%'-prefixed
/// comment lines, weights ignored).
EdgeList read_edge_list(std::istream& in);

/// Serialize a normalized edge list as 0-based "u v" lines.
void write_edge_list(std::ostream& out, const EdgeList& el);

/// Serialize a normalized edge list as a MatrixMarket coordinate pattern
/// symmetric matrix (1-based, lower-triangle entries).
void write_matrix_market(std::ostream& out, const EdgeList& el);

/// Legacy eager binary CSR dump / load (little-endian, magic-tagged).
void write_binary(std::ostream& out, const CsrGraph& g);
CsrGraph read_binary(std::istream& in);

/// Load a graph by file extension (.mtx / .el / .txt / .sbg / .sbgc);
/// applies the paper's preprocessing (normalize + connect) to the text
/// formats. Text loads go through the sbg::ingest parallel parser and its
/// transparent binary cache (disable process-wide with SBG_CACHE=0,
/// redirect with SBG_CACHE_DIR).
CsrGraph load_graph(const std::string& path);

/// Save as binary (.sbg), cache entry (.sbgc), edge list (.el), or
/// MatrixMarket (.mtx) by extension.
void save_graph(const std::string& path, const CsrGraph& g);

}  // namespace sbg
