// Graph file IO.
//
// The paper's datasets come from the University of Florida sparse matrix
// collection (MatrixMarket format). We support:
//   * MatrixMarket  (.mtx)  — coordinate pattern/real, general or symmetric
//   * edge list     (.el)   — "u v" per line, '#' comments, 0-based ids
//   * sbg binary    (.sbg)  — our own mmap-friendly CSR dump
// so users can drop in the real UF graphs when they have them, while the
// bundled benches default to the calibrated synthetic suite (dataset.hpp).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace sbg {

/// Parse MatrixMarket coordinate data from a stream (1-based ids; values,
/// if present, are ignored; symmetric and general headers both accepted).
EdgeList read_matrix_market(std::istream& in);

/// Parse "u v" text lines (0-based ids, '#'-prefixed comment lines).
EdgeList read_edge_list(std::istream& in);

/// Serialize a normalized edge list as 0-based "u v" lines.
void write_edge_list(std::ostream& out, const EdgeList& el);

/// Binary CSR dump / load (little-endian, versioned header).
void write_binary(std::ostream& out, const CsrGraph& g);
CsrGraph read_binary(std::istream& in);

/// Load a graph by file extension (.mtx / .el / .sbg); applies the paper's
/// preprocessing (normalize + connect) to the text formats.
CsrGraph load_graph(const std::string& path);

/// Save as binary (.sbg) or edge list (.el) by extension.
void save_graph(const std::string& path, const CsrGraph& g);

}  // namespace sbg
