#include "ingest/text_parse.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>
#include <limits>
#include <vector>

#include "common.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_env.hpp"

namespace sbg::ingest {

namespace {

const char* skip_blanks(const char* p, const char* e) {
  while (p < e && is_blank(*p)) ++p;
  return p;
}

const char* token_end(const char* p, const char* e) {
  while (p < e && !is_blank(*p)) ++p;
  return p;
}

std::string quote(const char* b, const char* e) {
  constexpr std::size_t kMax = 32;
  const std::size_t n = static_cast<std::size_t>(e - b);
  std::string out;
  out.reserve(std::min(n, kMax) + 4);
  out += '\'';
  out.append(b, std::min(n, kMax));
  if (n > kMax) out += "...";
  out += '\'';
  return out;
}

/// 1-based line number of the byte at `offset` (error paths only: O(offset)).
std::size_t line_number_at(const char* data, std::size_t offset) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < offset; ++i) {
    if (data[i] == '\n') ++line;
  }
  return line;
}

/// First malformed line seen by one chunk, by byte offset; offsets order
/// identically across thread counts, so the reported error is
/// deterministic.
struct ChunkError {
  std::size_t offset = std::numeric_limits<std::size_t>::max();
  std::string message;
};

/// Calls fn(line_begin, line_end) for every line OWNED by the byte range
/// [lo, hi): the lines whose first byte lies inside it. A range starting
/// mid-line skips forward past the next '\n' (that line's owner is the
/// range holding its first byte); the final owned line is parsed to
/// completion even when it extends past hi. fn returns false to stop (on
/// error).
template <typename Fn>
void for_each_owned_line(const char* data, std::size_t size, std::size_t lo,
                         std::size_t hi, Fn&& fn) {
  std::size_t start = lo;
  if (lo > 0 && data[lo - 1] != '\n') {
    const void* nl = std::memchr(data + lo, '\n', size - lo);
    if (nl == nullptr) return;  // the straddling line runs to EOF
    start = static_cast<std::size_t>(static_cast<const char*>(nl) - data) + 1;
  }
  while (start < hi) {
    const void* nl = std::memchr(data + start, '\n', size - start);
    const std::size_t end =
        nl == nullptr
            ? size
            : static_cast<std::size_t>(static_cast<const char*>(nl) - data);
    if (!fn(start, end)) return;
    start = end + 1;
  }
}

int resolve_threads(int threads) {
  return threads > 0 ? threads : std::max(1, num_threads());
}

struct Shard {
  std::vector<Edge> edges;
  std::uint64_t max_id = 0;
  bool any = false;
  ChunkError err;
};

[[noreturn]] void throw_at(const char* data, std::size_t offset,
                           const char* what, const std::string& detail) {
  throw InputError(std::string(what) + " (line " +
                   std::to_string(line_number_at(data, offset)) + "): " +
                   detail);
}

/// Concatenate shards in range order. Order does not matter for the final
/// CSR (the builder sorts), but keeping file order keeps the merge
/// deterministic and trivially correct.
EdgeList merge_shards(std::vector<Shard>& shards) {
  SBG_SPAN("ingest.merge");
  std::size_t total = 0;
  for (const Shard& s : shards) total += s.edges.size();
  EdgeList el;
  el.edges.reserve(total);
  std::uint64_t max_id = 0;
  bool any = false;
  for (Shard& s : shards) {
    el.edges.insert(el.edges.end(), s.edges.begin(), s.edges.end());
    max_id = std::max(max_id, s.max_id);
    any = any || s.any;
    s.edges.clear();
    s.edges.shrink_to_fit();
  }
  el.num_vertices = any ? static_cast<vid_t>(max_id) + 1 : 0;
  return el;
}

}  // namespace

std::optional<std::uint64_t> parse_uint_token(const char* b, const char* e) {
  if (b == e) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(b, e, value);
  if (ec != std::errc() || ptr != e) return std::nullopt;
  return value;
}

LineKind parse_edge_line(const char* b, const char* e, std::uint64_t* u,
                         std::uint64_t* v, std::string* error) {
  const char* p1 = skip_blanks(b, e);
  if (p1 == e) return LineKind::kBlank;
  if (*p1 == '#' || *p1 == '%') return LineKind::kComment;
  const char* t1 = token_end(p1, e);
  const char* p2 = skip_blanks(t1, e);
  const char* t2 = token_end(p2, e);
  const char* p3 = skip_blanks(t2, e);
  const char* t3 = token_end(p3, e);  // optional weight, ignored
  const char* p4 = skip_blanks(t3, e);
  if (p2 == e) {
    *error = "expected 'u v' or 'u v w', got 1 field";
    return LineKind::kError;
  }
  if (p4 != e) {
    *error = "expected 'u v' or 'u v w', got 4 or more fields";
    return LineKind::kError;
  }
  const auto ui = parse_uint_token(p1, t1);
  if (!ui) {
    *error = "bad vertex id " + quote(p1, t1);
    return LineKind::kError;
  }
  const auto vi = parse_uint_token(p2, t2);
  if (!vi) {
    *error = "bad vertex id " + quote(p2, t2);
    return LineKind::kError;
  }
  if (*ui >= kNoVertex || *vi >= kNoVertex) {
    *error = "vertex id too large for vid_t";
    return LineKind::kError;
  }
  *u = *ui;
  *v = *vi;
  return LineKind::kData;
}

LineKind parse_mm_entry_line(const char* b, const char* e, std::uint64_t* r,
                             std::uint64_t* c, std::string* error) {
  const char* p1 = skip_blanks(b, e);
  if (p1 == e) return LineKind::kBlank;
  if (*p1 == '%') return LineKind::kComment;
  const char* t1 = token_end(p1, e);
  const char* p2 = skip_blanks(t1, e);
  const char* t2 = token_end(p2, e);
  if (p2 == e) {
    *error = "expected 'row col [values…]', got 1 field";
    return LineKind::kError;
  }
  // Anything after the two indices is value data (pattern/real/complex) and
  // is ignored, matching the sequential reader.
  const auto ri = parse_uint_token(p1, t1);
  if (!ri) {
    *error = "bad index " + quote(p1, t1);
    return LineKind::kError;
  }
  const auto ci = parse_uint_token(p2, t2);
  if (!ci) {
    *error = "bad index " + quote(p2, t2);
    return LineKind::kError;
  }
  *r = *ri;
  *c = *ci;
  return LineKind::kData;
}

MmHeader parse_mm_header(const char* data, std::size_t size) {
  if (size == 0) throw InputError("empty MatrixMarket input (line 1)");
  const void* nl0 = std::memchr(data, '\n', size);
  const std::size_t banner_end =
      nl0 == nullptr
          ? size
          : static_cast<std::size_t>(static_cast<const char*>(nl0) - data);
  std::string banner(data, banner_end);
  if (banner.rfind("%%MatrixMarket", 0) != 0) {
    throw InputError("missing %%MatrixMarket banner (line 1)");
  }
  for (char& ch : banner) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  if (banner.find("coordinate") == std::string::npos) {
    throw InputError("only coordinate MatrixMarket supported (line 1)");
  }

  MmHeader h;
  std::size_t start = banner_end == size ? size : banner_end + 1;
  std::size_t lineno = 1;
  while (start < size) {
    ++lineno;
    const void* nl = std::memchr(data + start, '\n', size - start);
    const std::size_t end =
        nl == nullptr
            ? size
            : static_cast<std::size_t>(static_cast<const char*>(nl) - data);
    const char* p1 = skip_blanks(data + start, data + end);
    if (p1 != data + end && *p1 != '%') {
      // Size line: rows cols nnz (anything after the third field ignored).
      const char* t1 = token_end(p1, data + end);
      const char* p2 = skip_blanks(t1, data + end);
      const char* t2 = token_end(p2, data + end);
      const char* p3 = skip_blanks(t2, data + end);
      const char* t3 = token_end(p3, data + end);
      const auto rows = parse_uint_token(p1, t1);
      const auto cols = parse_uint_token(p2, t2);
      const auto nnz = parse_uint_token(p3, t3);
      if (!rows || !cols || !nnz) {
        throw InputError("malformed MatrixMarket size line (line " +
                         std::to_string(lineno) + ")");
      }
      if (std::max(*rows, *cols) > kNoVertex) {
        throw InputError("MatrixMarket dimensions too large for vid_t (line " +
                         std::to_string(lineno) + ")");
      }
      h.rows = *rows;
      h.cols = *cols;
      h.nnz = *nnz;
      h.body_offset = end == size ? size : end + 1;
      h.body_line = lineno + 1;
      return h;
    }
    start = end == size ? size : end + 1;
  }
  throw InputError("missing MatrixMarket size line (line " +
                   std::to_string(lineno + 1) + ")");
}

EdgeList parse_edge_list(const char* data, std::size_t size, int threads) {
  const int T = resolve_threads(threads);
  std::vector<Shard> shards(static_cast<std::size_t>(T));
  {
    SBG_SPAN("ingest.parse");
#pragma omp parallel for num_threads(T) schedule(static, 1)
    for (int t = 0; t < T; ++t) {
      Shard& sh = shards[static_cast<std::size_t>(t)];
      const std::size_t lo = size * static_cast<std::size_t>(t) /
                             static_cast<std::size_t>(T);
      const std::size_t hi = size * (static_cast<std::size_t>(t) + 1) /
                             static_cast<std::size_t>(T);
      sh.edges.reserve((hi - lo) / 12 + 4);
      for_each_owned_line(
          data, size, lo, hi, [&](std::size_t b, std::size_t e) {
            std::uint64_t u = 0, v = 0;
            std::string err;
            switch (parse_edge_line(data + b, data + e, &u, &v, &err)) {
              case LineKind::kData:
                sh.edges.push_back(
                    {static_cast<vid_t>(u), static_cast<vid_t>(v)});
                sh.max_id = std::max({sh.max_id, u, v});
                sh.any = true;
                return true;
              case LineKind::kError:
                sh.err.offset = b;
                sh.err.message = std::move(err);
                return false;
              default:
                return true;
            }
          });
    }
  }
  const Shard* bad = nullptr;
  for (const Shard& sh : shards) {
    if (sh.err.offset != std::numeric_limits<std::size_t>::max() &&
        (bad == nullptr || sh.err.offset < bad->err.offset)) {
      bad = &sh;
    }
  }
  if (bad != nullptr) {
    throw_at(data, bad->err.offset, "malformed edge list", bad->err.message);
  }
  SBG_COUNTER_ADD("ingest.bytes_parsed", size);
  return merge_shards(shards);
}

EdgeList parse_matrix_market(const char* data, std::size_t size, int threads) {
  const MmHeader h = parse_mm_header(data, size);
  const int T = resolve_threads(threads);
  std::vector<Shard> shards(static_cast<std::size_t>(T));
  const std::size_t body = size - h.body_offset;
  {
    SBG_SPAN("ingest.parse");
#pragma omp parallel for num_threads(T) schedule(static, 1)
    for (int t = 0; t < T; ++t) {
      Shard& sh = shards[static_cast<std::size_t>(t)];
      const std::size_t lo = h.body_offset + body * static_cast<std::size_t>(t) /
                                                 static_cast<std::size_t>(T);
      const std::size_t hi =
          h.body_offset +
          body * (static_cast<std::size_t>(t) + 1) / static_cast<std::size_t>(T);
      sh.edges.reserve((hi - lo) / 12 + 4);
      for_each_owned_line(
          data, size, lo, hi, [&](std::size_t b, std::size_t e) {
            std::uint64_t r = 0, c = 0;
            std::string err;
            switch (parse_mm_entry_line(data + b, data + e, &r, &c, &err)) {
              case LineKind::kData:
                if (r == 0 || c == 0 || r > h.rows || c > h.cols) {
                  sh.err.offset = b;
                  sh.err.message = "index out of range";
                  return false;
                }
                sh.edges.push_back({static_cast<vid_t>(r - 1),
                                    static_cast<vid_t>(c - 1)});
                sh.any = true;
                return true;
              case LineKind::kError:
                sh.err.offset = b;
                sh.err.message = std::move(err);
                return false;
              default:
                return true;
            }
          });
    }
  }
  const Shard* bad = nullptr;
  std::size_t entries = 0;
  for (const Shard& sh : shards) {
    entries += sh.edges.size();
    if (sh.err.offset != std::numeric_limits<std::size_t>::max() &&
        (bad == nullptr || sh.err.offset < bad->err.offset)) {
      bad = &sh;
    }
  }
  if (bad != nullptr) {
    throw_at(data, bad->err.offset, "malformed MatrixMarket entry",
             bad->err.message);
  }
  if (entries != h.nnz) {
    throw InputError(
        (entries < h.nnz ? std::string("truncated MatrixMarket entries")
                         : std::string("more MatrixMarket entries than the "
                                       "header nnz")) +
        " (line " + std::to_string(line_number_at(data, size)) + "): got " +
        std::to_string(entries) + " of " + std::to_string(h.nnz));
  }
  SBG_COUNTER_ADD("ingest.bytes_parsed", size);
  EdgeList el = merge_shards(shards);
  el.num_vertices = static_cast<vid_t>(std::max(h.rows, h.cols));
  return el;
}

}  // namespace sbg::ingest
