// Chunk-parallel text parsing for graph input files.
//
// The legacy readers in graph/io.hpp walk a std::istream one
// getline/istringstream at a time on a single thread; at Table II scale
// (hundreds of millions of edges) that load dwarfs the decomposition+solve
// the paper measures. This module parses the same dialects from a mapped
// byte range with per-thread chunks instead:
//
//   * the file is split into T byte ranges [lo, hi) of near-equal size;
//   * a line is owned by the thread whose range contains its FIRST byte —
//     a thread whose range starts mid-line skips forward past the next
//     '\n', and a thread parses its last line to completion even when it
//     extends past hi (see DESIGN.md "On-disk formats");
//   * each thread parses its lines into a local edge shard; shards are
//     concatenated in range order and handed to the existing parallel
//     sort/unique CSR build (graph/builder.hpp).
//
// The result is equivalent to the sequential readers for every thread
// count (enforced by tests/test_ingest.cpp and the sbg_fuzz "ingest"
// family): the same edge multiset in a possibly different order, which the
// normalizing builder maps to a byte-identical CSR.
//
// Line dialect (shared with graph/io.cpp via the helpers below):
//   * a line is the byte range up to the next '\n'; '\r' is field
//     whitespace, so CRLF files and files without a trailing newline parse
//     identically;
//   * blank lines are skipped; edge lists treat '#'- and '%'-initial lines
//     as comments, MatrixMarket bodies '%'-initial lines only;
//   * an edge-list data line is `u v` or `u v w` (w — a weight or
//     timestamp — is ignored); four or more fields are an error;
//   * a MatrixMarket entry is `r c` optionally followed by value fields
//     (real/complex), which are ignored.
// All errors carry the 1-based line number of the offending line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "graph/edge_list.hpp"

namespace sbg::ingest {

/// Field whitespace inside one line: everything std::istream's classic
/// locale skips except '\n' (which delimits lines). Including '\r' here is
/// what makes CRLF input transparent.
inline bool is_blank(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

/// Strict nonnegative integer parse of one token ([b, e) with no blanks):
/// digits only, no sign, no trailing junk. nullopt on any violation or
/// overflow.
std::optional<std::uint64_t> parse_uint_token(const char* b, const char* e);

/// How one text line was classified by the line parsers below.
enum class LineKind { kBlank, kComment, kData, kError };

/// Parse one edge-list line (bytes [b, e), no '\n' inside). On kData fills
/// *u and *v (validated against vid_t range); on kError fills *error with a
/// message WITHOUT a line number (callers know the line and append it).
LineKind parse_edge_line(const char* b, const char* e, std::uint64_t* u,
                         std::uint64_t* v, std::string* error);

/// Parse one MatrixMarket body line. On kData fills the 1-based *r, *c
/// (range checks against the header happen in the caller).
LineKind parse_mm_entry_line(const char* b, const char* e, std::uint64_t* r,
                             std::uint64_t* c, std::string* error);

/// MatrixMarket banner + size line, parsed sequentially before the entry
/// region is chunked.
struct MmHeader {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;
  std::size_t body_offset = 0;  ///< byte offset of the first entry line
  std::size_t body_line = 0;    ///< 1-based line number at body_offset
};

/// Parse the header of a MatrixMarket buffer. Throws InputError (with line
/// numbers) on a missing banner, non-coordinate layout, or malformed size
/// line.
MmHeader parse_mm_header(const char* data, std::size_t size);

/// Chunk-parallel edge-list parse of a whole buffer with `threads` workers
/// (0 = current OpenMP thread count). Throws InputError carrying the
/// 1-based line number of the earliest malformed line.
EdgeList parse_edge_list(const char* data, std::size_t size, int threads = 0);

/// Chunk-parallel MatrixMarket coordinate parse. Entry count must match
/// the header's nnz exactly.
EdgeList parse_matrix_market(const char* data, std::size_t size,
                             int threads = 0);

}  // namespace sbg::ingest
