#include "ingest/mmap_file.hpp"

#include <fstream>

#include "common.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SBG_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SBG_HAVE_MMAP 0
#endif

namespace sbg::ingest {

namespace {

void read_fallback(const std::string& path, std::vector<char>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InputError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(0, std::ios::beg);
  if (end > 0) {
    out.resize(static_cast<std::size_t>(end));
    in.read(out.data(), end);
    if (!in) throw InputError("cannot read " + path);
  }
}

}  // namespace

MappedFile::MappedFile(const std::string& path) : path_(path) {
#if SBG_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw InputError("cannot open " + path);
  struct stat st {};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
    if (p != MAP_FAILED) {
      data_ = static_cast<const char*>(p);
      size_ = static_cast<std::size_t>(st.st_size);
      mapped_ = true;
      // Sequential scan ahead: the parser touches every page exactly once.
      ::madvise(p, size_, MADV_SEQUENTIAL);
    }
  } else if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
    // Regular empty file: a valid zero-length view needs no mapping.
    ::close(fd);
    return;
  }
  ::close(fd);
  if (mapped_) return;
#endif
  read_fallback(path_, fallback_);
  data_ = fallback_.data();
  size_ = fallback_.size();
}

MappedFile::~MappedFile() {
#if SBG_HAVE_MMAP
  if (mapped_) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

}  // namespace sbg::ingest
