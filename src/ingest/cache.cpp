#include "ingest/cache.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "common.hpp"
#include "ingest/mmap_file.hpp"
#include "parallel/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace sbg::ingest {

namespace {

namespace fs = std::filesystem;

unsigned long process_id() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<unsigned long>(::getpid());
#else
  return 0;
#endif
}


/// Best-effort sweep of `<cache name>.tmp.*` orphans left next to
/// `cache_path` by writers that died mid-write. Only entries older than an
/// hour are touched, so live writers (including ourselves an instant ago)
/// are never raced; every error is swallowed — cleanup must not fail a
/// successful cache write.
void remove_orphaned_temps(const std::string& cache_path) {
  std::error_code ec;
  const fs::path target(cache_path);
  fs::path dir = target.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = target.filename().string() + ".tmp.";
  const auto cutoff =
      std::chrono::file_clock::now() - std::chrono::hours(1);
  fs::directory_iterator it(dir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    const auto mtime = fs::last_write_time(entry.path(), ec);
    if (ec || mtime > cutoff) continue;
    fs::remove(entry.path(), ec);
  }
}

constexpr std::array<char, 8> kMagic = {'S', 'B', 'G', 'C', 'A', 'C', 'H', 'E'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::size_t kHeaderBytes = 64;

struct Header {
  std::array<char, 8> magic = kMagic;
  std::uint32_t version = kCacheFormatVersion;
  std::uint32_t endian = kEndianTag;
  std::uint64_t source_size = 0;
  std::uint64_t source_mtime = 0;
  std::uint64_t options_hash = 0;
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(Header) == kHeaderBytes, "sbgc header layout drifted");

/// Checksum seed folds in every header field, so header tampering (e.g.
/// shifting bytes between the offsets and adjacency blobs by editing n and
/// arcs in concert) fails verification even when the payload bytes are
/// untouched.
std::uint64_t checksum_seed(const Header& h) {
  std::uint64_t s = mix64(h.version);
  s = mix64(s ^ h.source_size);
  s = mix64(s ^ h.source_mtime);
  s = mix64(s ^ h.options_hash);
  s = mix64(s ^ h.n);
  return mix64(s ^ h.arcs);
}

std::uint64_t payload_checksum(const Header& h, const CsrGraph& g) {
  std::uint64_t c = hash_bytes(g.offsets().data(),
                               g.offsets().size() * sizeof(eid_t),
                               checksum_seed(h));
  return hash_bytes(g.adjacency().data(),
                    g.adjacency().size() * sizeof(vid_t), c);
}

/// Shared validation for the copying and mapping readers: header sanity,
/// optional staleness against `expect`, exact length, payload checksum.
/// Fills *h on any non-corrupt header so callers can size their views.
CacheStatus validate_entry(const MappedFile& file, const CacheKey* expect,
                           Header* h) {
  const char* bytes = file.data();
  const std::uint64_t actual = file.size();
  if (actual < kHeaderBytes) return CacheStatus::kCorrupt;

  std::memcpy(h, bytes, sizeof(*h));
  if (h->magic != kMagic) return CacheStatus::kCorrupt;
  if (h->version != kCacheFormatVersion || h->endian != kEndianTag) {
    return CacheStatus::kStale;
  }
  if (expect != nullptr &&
      (h->source_size != expect->source_size ||
       h->source_mtime != expect->source_mtime ||
       h->options_hash != expect->options_hash)) {
    return CacheStatus::kStale;
  }
  if (h->n > kNoVertex) return CacheStatus::kCorrupt;

  // The layout fully determines the file length; verify it BEFORE sizing
  // any allocation, so a corrupted n/arcs cannot trigger a huge alloc.
  const std::uint64_t want = kHeaderBytes + (h->n + 1) * sizeof(eid_t) +
                             h->arcs * sizeof(vid_t);
  if (actual != want) return CacheStatus::kCorrupt;

  const char* off_bytes = bytes + kHeaderBytes;
  const std::size_t off_len =
      (static_cast<std::size_t>(h->n) + 1) * sizeof(eid_t);
  const char* adj_bytes = off_bytes + off_len;
  const std::size_t adj_len =
      static_cast<std::size_t>(h->arcs) * sizeof(vid_t);

  std::uint64_t c = hash_bytes(off_bytes, off_len, checksum_seed(*h));
  c = hash_bytes(adj_bytes, adj_len, c);
  if (c != h->checksum) return CacheStatus::kCorrupt;
  return CacheStatus::kHit;
}

}  // namespace

/// The pid separates processes; the mixed counter/clock suffix separates
/// concurrent writers INSIDE one process (two batch jobs caching the same
/// graph), which a pid-only suffix cannot — they would open the same temp
/// file and interleave their payloads before one renames the torn result
/// into place.
std::string unique_temp_path(const std::string& target) {
  static std::atomic<std::uint64_t> counter{0};
  const auto now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  const std::uint64_t tag =
      mix64(mix64(counter.fetch_add(1, std::memory_order_relaxed) ^
                  static_cast<std::uint64_t>(now)) ^
            process_id());
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(tag));
  return target + ".tmp." + std::to_string(process_id()) + "." + hex;
}

const char* to_string(CacheStatus s) {
  switch (s) {
    case CacheStatus::kHit: return "hit";
    case CacheStatus::kMissing: return "missing";
    case CacheStatus::kStale: return "stale";
    case CacheStatus::kCorrupt: return "corrupt";
  }
  return "?";
}

std::uint64_t hash_bytes(const void* data, std::size_t size,
                         std::uint64_t seed) {
  constexpr std::uint64_t kMul1 = 0x9e3779b97f4a7c15ull;
  constexpr std::uint64_t kMul2 = 0xff51afd7ed558ccdull;
  const auto rotl = [](std::uint64_t x, int r) {
    return (x << r) | (x >> (64 - r));
  };
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t n = size;
  // Four independent accumulators, 32 bytes per step: the per-lane
  // multiplies pipeline, so verifying a warm cache entry runs near memory
  // bandwidth instead of serialising on mix64 latency.
  std::uint64_t h0 = mix64(seed ^ (kMul1 + size));
  std::uint64_t h1 = mix64(h0 ^ kMul2);
  std::uint64_t h2 = mix64(h1 ^ kMul1);
  std::uint64_t h3 = mix64(h2 ^ kMul2);
  while (n >= 32) {
    std::uint64_t lane[4];
    std::memcpy(lane, p, 32);
    h0 = rotl(h0 ^ (lane[0] * kMul2), 27) * kMul1;
    h1 = rotl(h1 ^ (lane[1] * kMul2), 27) * kMul1;
    h2 = rotl(h2 ^ (lane[2] * kMul2), 27) * kMul1;
    h3 = rotl(h3 ^ (lane[3] * kMul2), 27) * kMul1;
    p += 32;
    n -= 32;
  }
  std::uint64_t h = mix64(mix64(mix64(mix64(h0) ^ h1) ^ h2) ^ h3);
  while (n >= 8) {
    std::uint64_t lane;
    std::memcpy(&lane, p, 8);
    h = mix64(h ^ (lane * kMul2));
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = mix64(h ^ mix64(tail) ^ n);
  }
  return mix64(h);
}

std::string cache_path_for(const std::string& source,
                           std::uint64_t options_hash) {
  const char* dir = std::getenv("SBG_CACHE_DIR");
  if (dir == nullptr || *dir == '\0') return source + ".sbgc";
  std::error_code ec;
  fs::path abs = fs::absolute(source, ec);
  if (ec) abs = source;
  const std::string key = abs.string();
  const std::uint64_t id = hash_bytes(key.data(), key.size(), options_hash);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(id));
  return (fs::path(dir) / (fs::path(source).filename().string() + "." + hex +
                           ".sbgc"))
      .string();
}

CacheKey make_cache_key(const std::string& source,
                        std::uint64_t options_hash) {
  std::error_code ec;
  const std::uint64_t size = fs::file_size(source, ec);
  if (ec) throw InputError("cannot open " + source);
  const auto mtime = fs::last_write_time(source, ec);
  if (ec) throw InputError("cannot stat " + source);
  CacheKey key;
  key.source_size = size;
  key.source_mtime =
      static_cast<std::uint64_t>(mtime.time_since_epoch().count());
  key.options_hash = options_hash;
  return key;
}

CacheStatus read_cache_file(const std::string& cache_path,
                            const CacheKey* expect, CsrGraph* out) {
  // Map rather than stream: validation then runs straight over the page
  // cache, and nothing is copied until the checksum has passed.
  std::optional<MappedFile> file;
  try {
    file.emplace(cache_path);
  } catch (const InputError&) {
    return CacheStatus::kMissing;
  }
  Header h;
  const CacheStatus status = validate_entry(*file, expect, &h);
  if (status != CacheStatus::kHit) return status;

  const char* off_bytes = file->data() + kHeaderBytes;
  const std::size_t off_len =
      (static_cast<std::size_t>(h.n) + 1) * sizeof(eid_t);
  const char* adj_bytes = off_bytes + off_len;
  const std::size_t adj_len = static_cast<std::size_t>(h.arcs) * sizeof(vid_t);

  EidBuffer offsets(static_cast<std::size_t>(h.n) + 1);
  VidBuffer adj(static_cast<std::size_t>(h.arcs));
  std::memcpy(offsets.data(), off_bytes, off_len);
  std::memcpy(adj.data(), adj_bytes, adj_len);

  try {
    *out = CsrGraph(std::move(offsets), std::move(adj));
  } catch (const std::logic_error&) {
    // Bit flips that survive the checksum odds-wise shouldn't reach here,
    // but a malformed offsets array must degrade, not abort the load.
    return CacheStatus::kCorrupt;
  }
  return CacheStatus::kHit;
}

void write_cache_file(const std::string& cache_path, const CacheKey& key,
                      const CsrGraph& g) {
  Header h;
  h.source_size = key.source_size;
  h.source_mtime = key.source_mtime;
  h.options_hash = key.options_hash;
  h.n = g.num_vertices();
  h.arcs = g.num_arcs();
  h.checksum = payload_checksum(h, g);

  // SBG_CACHE_DIR need not exist yet; a failure here surfaces below as
  // "cannot create" on the temp file.
  {
    std::error_code ec;
    const fs::path parent = fs::path(cache_path).parent_path();
    if (!parent.empty()) fs::create_directories(parent, ec);
  }

  // Temp-file + rename: a concurrent reader sees either the old entry, no
  // entry, or the complete new entry — never a torn write. The unique
  // per-write temp name keeps concurrent writers (threads as well as
  // processes) off each other's temp files; last rename wins, and every
  // rename installs a complete entry.
  const std::string tmp = unique_temp_path(cache_path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw InputError("cannot create " + tmp);
    out.write(reinterpret_cast<const char*>(&h), sizeof(h));
    out.write(reinterpret_cast<const char*>(g.offsets().data()),
              static_cast<std::streamsize>(g.offsets().size() * sizeof(eid_t)));
    out.write(reinterpret_cast<const char*>(g.adjacency().data()),
              static_cast<std::streamsize>(g.adjacency().size() *
                                           sizeof(vid_t)));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      throw InputError("cannot write " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, cache_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw InputError("cannot move cache entry into place at " + cache_path);
  }
  remove_orphaned_temps(cache_path);
}

const std::string& MappedCsr::path() const {
  static const std::string kEmpty;
  return file_ ? file_->path() : kEmpty;
}

void MappedCsr::drop_pages() const {
#if defined(__unix__) || defined(__APPLE__)
  if (file_ == nullptr || !file_->mapped() || file_->size() == 0) return;
  // The mapping base is page-aligned (mmap contract), so advising the whole
  // file is legal; DONTNEED on a read-only file mapping just drops clean
  // pages — the next fault re-reads from disk.
  (void)::posix_madvise(const_cast<char*>(file_->data()), file_->size(),
                        POSIX_MADV_DONTNEED);
#endif
}

CacheStatus map_cache_file(const std::string& cache_path, MappedCsr* out) {
  std::shared_ptr<MappedFile> file;
  try {
    file = std::make_shared<MappedFile>(cache_path);
  } catch (const InputError&) {
    return CacheStatus::kMissing;
  }
  Header h;
  const CacheStatus status = validate_entry(*file, nullptr, &h);
  if (status != CacheStatus::kHit) return status;

  const char* off_bytes = file->data() + kHeaderBytes;
  const char* adj_bytes =
      off_bytes + (static_cast<std::size_t>(h.n) + 1) * sizeof(eid_t);
  // The payload starts 64 bytes into a page-aligned (mmap) or new-aligned
  // (slurp fallback) base, so both typed views are safely aligned.
  SBG_CHECK(reinterpret_cast<std::uintptr_t>(off_bytes) % alignof(eid_t) == 0,
            "unaligned sbgc mapping");
  out->file_ = std::move(file);
  out->offsets_ = {reinterpret_cast<const eid_t*>(off_bytes),
                   static_cast<std::size_t>(h.n) + 1};
  out->adj_ = {reinterpret_cast<const vid_t*>(adj_bytes),
               static_cast<std::size_t>(h.arcs)};
  return CacheStatus::kHit;
}

}  // namespace sbg::ingest
