#include "ingest/ingest.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "ingest/cache.hpp"
#include "ingest/mmap_file.hpp"
#include "ingest/text_parse.hpp"
#include "obs/obs.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

namespace sbg::ingest {

namespace {

std::string lower_ext(const std::string& path) {
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos) return "";
  std::string ext = path.substr(dot + 1);
  for (char& c : ext) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return ext;
}

bool is_text_ext(const std::string& ext) {
  return ext == "mtx" || ext == "el" || ext == "txt";
}

void count_cache_probe(CacheStatus status) {
  switch (status) {
    case CacheStatus::kHit:
      SBG_COUNTER_ADD("ingest.cache.hit", 1);
      break;
    case CacheStatus::kMissing:
      SBG_COUNTER_ADD("ingest.cache.miss", 1);
      break;
    case CacheStatus::kStale:
      SBG_COUNTER_ADD("ingest.cache.stale", 1);
      SBG_COUNTER_ADD("ingest.cache.invalid", 1);
      break;
    case CacheStatus::kCorrupt:
      SBG_COUNTER_ADD("ingest.cache.corrupt", 1);
      SBG_COUNTER_ADD("ingest.cache.invalid", 1);
      break;
  }
}

/// Parse the mapped text file into an EdgeList (format by extension).
EdgeList parse_mapped(const MappedFile& file, const std::string& ext,
                      const Options& opt) {
  if (ext == "mtx") return parse_matrix_market(file.data(), file.size(), opt.threads);
  return parse_edge_list(file.data(), file.size(), opt.threads);
}

CsrGraph parse_and_build(const std::string& path, const std::string& ext,
                         const Options& opt, LoadReport* report) {
  Timer t;
  MappedFile file(path);
  EdgeList el = parse_mapped(file, ext, opt);
  const double parse_s = t.seconds();
  const std::uint64_t bytes = file.size();
  t.reset();
  CsrGraph g = [&] {
    SBG_SPAN("ingest.build");
    return build_graph(std::move(el), opt.connect);
  }();
  SBG_GAUGE_SET("ingest.parse_seconds", parse_s);
  SBG_GAUGE_SET("ingest.build_seconds", t.seconds());
  if (report != nullptr) {
    report->bytes_parsed = bytes;
    report->parse_seconds = parse_s;
    report->build_seconds = t.seconds();
  }
  return g;
}

void write_cache_entry(const std::string& cache_path, const CacheKey& key,
                       const CsrGraph& g, LoadReport* report) {
  Timer t;
  {
    SBG_SPAN("ingest.cache_write");
    write_cache_file(cache_path, key, g);
  }
  SBG_COUNTER_ADD("ingest.cache.write", 1);
  SBG_GAUGE_SET("ingest.cache_write_seconds", t.seconds());
  if (report != nullptr) report->cache_write_seconds = t.seconds();
}

}  // namespace

bool cache_enabled_default() {
  const char* env = std::getenv("SBG_CACHE");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "OFF") == 0 || std::strcmp(env, "false") == 0);
}

std::uint64_t options_hash(const Options& opt) {
  return mix64(0x5b67c5d1u ^ (opt.connect ? 1u : 0u));
}

CsrGraph parse_text_file(const std::string& path, const Options& opt,
                         LoadReport* report) {
  const std::string ext = lower_ext(path);
  if (!is_text_ext(ext)) {
    throw InputError("not a text graph format: " + path);
  }
  if (report != nullptr) report->format = ext;
  return parse_and_build(path, ext, opt, report);
}

CsrGraph load(const std::string& path, const Options& opt,
              LoadReport* report) {
  SBG_SPAN("ingest.load");
  const std::string ext = lower_ext(path);
  if (report != nullptr) report->format = ext;

  if (ext == "sbg") {
    // Legacy eager binary: no cache semantics.
    std::ifstream in(path, std::ios::binary);
    if (!in) throw InputError("cannot open " + path);
    return read_binary(in);
  }
  if (ext == "sbgc") {
    Timer t;
    CsrGraph g;
    CacheStatus status;
    {
      SBG_SPAN("ingest.cache_read");
      status = read_cache_file(path, /*expect=*/nullptr, &g);
    }
    if (status != CacheStatus::kHit) {
      throw InputError("cannot load cache file " + path + ": " +
                       to_string(status));
    }
    SBG_GAUGE_SET("ingest.cache_read_seconds", t.seconds());
    if (report != nullptr) {
      report->cache_hit = true;
      report->cache_path = path;
      report->cache_read_seconds = t.seconds();
    }
    return g;
  }
  if (!is_text_ext(ext)) {
    throw InputError("unknown graph extension ." + ext + " for " + path);
  }

  if (!opt.use_cache) return parse_and_build(path, ext, opt, report);

  const std::uint64_t ohash = options_hash(opt);
  const CacheKey key = make_cache_key(path, ohash);  // also: source exists?
  const std::string cache_path = cache_path_for(path, ohash);
  if (report != nullptr) report->cache_path = cache_path;

  Timer t;
  CsrGraph cached;
  CacheStatus status;
  {
    SBG_SPAN("ingest.cache_read");
    status = read_cache_file(cache_path, &key, &cached);
  }
  count_cache_probe(status);
  if (status == CacheStatus::kHit) {
    SBG_GAUGE_SET("ingest.cache_read_seconds", t.seconds());
    if (report != nullptr) {
      report->cache_hit = true;
      report->cache_read_seconds = t.seconds();
    }
    return cached;
  }

  CsrGraph g = parse_and_build(path, ext, opt, report);
  try {
    write_cache_entry(cache_path, key, g, report);
  } catch (const InputError&) {
    // A read-only cache dir must not fail the load; next run reparses.
    SBG_COUNTER_ADD("ingest.cache.write_failed", 1);
  }
  return g;
}

std::shared_ptr<const CsrGraph> load_shared(const std::string& path,
                                            const Options& opt,
                                            LoadReport* report) {
  return std::make_shared<const CsrGraph>(load(path, opt, report));
}

std::uint64_t resident_bytes(const CsrGraph& g) {
  // Delegate to the graph's own capacity accounting: sizing by element
  // counts under-reported residency whenever a backing buffer carried
  // allocator slack, so SBG_SERVE_MEM_CAP admitted more bytes than were
  // actually resident.
  return g.heap_bytes();
}

std::string warm_cache(const std::string& path, const Options& opt,
                       LoadReport* report) {
  const std::string ext = lower_ext(path);
  if (!is_text_ext(ext)) {
    throw InputError("cache warming needs a text graph (.mtx/.el/.txt), got " +
                     path);
  }
  const std::uint64_t ohash = options_hash(opt);
  const CacheKey key = make_cache_key(path, ohash);
  const std::string cache_path = cache_path_for(path, ohash);
  if (report != nullptr) {
    report->format = ext;
    report->cache_path = cache_path;
  }

  CsrGraph cached;
  CacheStatus status;
  {
    SBG_SPAN("ingest.cache_read");
    status = read_cache_file(cache_path, &key, &cached);
  }
  count_cache_probe(status);
  if (status == CacheStatus::kHit) {
    if (report != nullptr) report->cache_hit = true;
    return cache_path;
  }
  const CsrGraph g = parse_and_build(path, ext, opt, report);
  write_cache_entry(cache_path, key, g, report);
  return cache_path;
}

}  // namespace sbg::ingest
