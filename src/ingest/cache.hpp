// Versioned binary CSR cache (.sbgc): repeat loads of a text graph skip
// parsing entirely.
//
// File layout (all fields little-endian; full spec in DESIGN.md
// "On-disk formats"):
//
//   offset  size  field
//   0       8     magic "SBGCACHE"
//   8       4     format version (kCacheFormatVersion)
//   12      4     endianness tag 0x01020304, written natively
//   16      8     source file size in bytes
//   24      8     source mtime (filesystem clock ticks)
//   32      8     ingest-options hash
//   40      8     n   (vertex count)
//   48      8     arcs (directed arc count = 2x undirected edges)
//   56      8     checksum (xxhash-style, seeded with every header field,
//                 over the offsets+adjacency payload)
//   64      (n+1)*8   CSR offsets
//   …       arcs*4    CSR adjacency
//
// A cache entry is valid only when magic/version/endianness match, the
// recorded source size+mtime+options equal the live source's, the file
// length equals the layout's implied length, and the checksum verifies.
// Anything else degrades to a text parse (never an error), with an obs
// counter recording why.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "graph/csr.hpp"

namespace sbg::ingest {

class MappedFile;

/// Bumped on any layout change; old entries then read as kStale and get
/// rewritten.
inline constexpr std::uint32_t kCacheFormatVersion = 1;

/// Identity of the text source a cache entry was built from. A zeroed key
/// (source_size == mtime == options_hash == 0) marks a standalone .sbgc
/// written by save_graph, exempt from staleness checks.
struct CacheKey {
  std::uint64_t source_size = 0;
  std::uint64_t source_mtime = 0;  ///< fs::last_write_time ticks
  std::uint64_t options_hash = 0;
};

enum class CacheStatus {
  kHit,      ///< loaded; *out holds the graph
  kMissing,  ///< no cache file
  kStale,    ///< wrong version/endianness, or source/options changed
  kCorrupt,  ///< truncated, misshapen, or checksum mismatch
};

const char* to_string(CacheStatus s);

/// xxhash-style 64-bit content hash (four independent 8-byte lanes per
/// step, mix64 finalizer): fast, non-cryptographic, stable across runs and
/// platforms of one endianness.
std::uint64_t hash_bytes(const void* data, std::size_t size,
                         std::uint64_t seed = 0);

/// Where the cache entry for `source` lives: under $SBG_CACHE_DIR as
/// <basename>.<key-hash>.sbgc when the env var is set, else the sibling
/// file <source>.sbgc.
std::string cache_path_for(const std::string& source,
                           std::uint64_t options_hash);

/// Stat `source` into a CacheKey (size + mtime). Throws InputError when the
/// source does not exist.
CacheKey make_cache_key(const std::string& source, std::uint64_t options_hash);

/// Validate + load `cache_path`. With `expect` non-null the stored source
/// size/mtime/options must match it; null skips staleness (direct .sbgc
/// loads). On kHit moves the graph into *out; any other status leaves *out
/// untouched and never throws.
CacheStatus read_cache_file(const std::string& cache_path,
                            const CacheKey* expect, CsrGraph* out);

/// Write a cache entry atomically (temp file + rename), so concurrent
/// readers never observe a partial entry. Throws InputError on IO failure.
void write_cache_file(const std::string& cache_path, const CacheKey& key,
                      const CsrGraph& g);

/// Unique sibling temp name for an atomic temp+rename write of `target`
/// (same scheme the cache writer uses: `<target>.tmp.<pid>.<hex>`, with a
/// per-process counter/clock tag separating concurrent in-process writers).
/// Exposed so other on-disk artifacts (the ooc spill store) install
/// themselves with the identical all-or-nothing discipline.
std::string unique_temp_path(const std::string& target);

/// A validated v1 cache entry whose CSR arrays are *file-backed*: the
/// offsets/adjacency spans point straight into the mapping, so consulting a
/// graph costs page-cache residency (reclaimable under pressure) instead of
/// heap — which is what lets the ooc executor stream over sources larger
/// than its heap budget. Header and checksum are verified once at map time;
/// the spans stay valid for the object's lifetime. Copyable (shares the
/// mapping).
class MappedCsr {
 public:
  MappedCsr() = default;

  std::span<const eid_t> offsets() const { return offsets_; }
  std::span<const vid_t> adjacency() const { return adj_; }
  vid_t num_vertices() const {
    return static_cast<vid_t>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  eid_t num_arcs() const { return adj_.size(); }
  const std::string& path() const;
  bool valid() const { return file_ != nullptr; }

  /// Best-effort advice that the payload pages are no longer needed, so a
  /// between-pieces executor can hand clean page-cache pages back to the
  /// kernel. No-op on the slurp fallback or where madvise is unavailable.
  void drop_pages() const;

 private:
  friend CacheStatus map_cache_file(const std::string& cache_path,
                                    MappedCsr* out);
  std::shared_ptr<MappedFile> file_;
  std::span<const eid_t> offsets_;
  std::span<const vid_t> adj_;
};

/// Validate `cache_path` exactly like read_cache_file (header, length,
/// checksum) but return a file-backed view instead of copying the payload
/// onto the heap. Staleness is skipped (standalone .sbgc semantics — the
/// caller chose the file). On kHit fills *out; other statuses leave *out
/// untouched and never throw.
CacheStatus map_cache_file(const std::string& cache_path, MappedCsr* out);

}  // namespace sbg::ingest
