// Read-only memory-mapped file access for the ingestion pipeline.
//
// Text parsing wants the whole file as one contiguous byte range so worker
// threads can be handed disjoint [lo, hi) slices with zero copying. On
// POSIX hosts we mmap(2) the file; where mmap is unavailable (or fails,
// e.g. on pseudo-files that report no size) we fall back to slurping the
// bytes into an owned buffer — callers see the same data()/size() view
// either way.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sbg::ingest {

/// An immutable byte view of one file, valid for the object's lifetime.
class MappedFile {
 public:
  /// Maps (or reads) `path`. Throws InputError when the file cannot be
  /// opened or read. Empty files map to a valid zero-length view.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// True when the view is backed by mmap (false: owned fallback buffer).
  bool mapped() const { return mapped_; }

 private:
  std::string path_;
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<char> fallback_;  ///< owns the bytes when !mapped_
};

}  // namespace sbg::ingest
