// sbg::ingest — scalable graph ingestion: mmap-backed chunk-parallel text
// parsing fronted by a versioned binary CSR cache.
//
// The paper keeps decomposition "light-weight" relative to the solve; at
// Table II scale a getline-per-edge loader inverts that by dwarfing both.
// This pipeline makes input cost near-linear per thread in its slice of
// the file (text_parse.hpp) and amortizes it to a single binary read on
// repeat loads (cache.hpp):
//
//   load(path)
//     ├─ cache probe ($SBG_CACHE_DIR/<name>.<key>.sbgc or <path>.sbgc)
//     │    hit   → binary CSR read, checksum-verified        [fast path]
//     │    stale/corrupt/missing → fall through, counter bumped
//     ├─ mmap + chunk-parallel parse → EdgeList shards → merge
//     ├─ normalize (+ connect) + parallel CSR build (graph/builder.hpp)
//     └─ cache write (atomic temp+rename; best-effort)
//
// Observability: counters ingest.bytes_parsed, ingest.cache.{hit,miss,
// stale,corrupt,invalid,write}; spans ingest.load > ingest.{cache_read,
// parse,merge,build,cache_write}; gauges ingest.{parse,build,cache_read,
// cache_write}_seconds — all in the standard JSON run report.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace sbg::ingest {

struct Options {
  /// Probe/refresh the binary cache around text parses. Callers usually
  /// leave this to cache_enabled_default().
  bool use_cache = true;
  /// Apply the paper's make-connected preprocessing to text formats (part
  /// of the cache key: a cache built with one setting never serves the
  /// other).
  bool connect = true;
  /// Parser worker count; 0 = current OpenMP thread count.
  int threads = 0;
};

/// What one load did, for tools/benches that report ingestion cost.
struct LoadReport {
  bool cache_hit = false;
  std::string cache_path;         ///< empty when the cache was not in play
  std::string format;             ///< "mtx", "el", "sbg", or "sbgc"
  std::uint64_t bytes_parsed = 0; ///< text bytes fed to the parser (0 on hit)
  double parse_seconds = 0;       ///< mmap + chunk parse + shard merge
  double build_seconds = 0;       ///< normalize/connect + CSR build
  double cache_read_seconds = 0;
  double cache_write_seconds = 0;
};

/// True unless SBG_CACHE is set to 0/off/false — the process-wide default
/// for transparent caching in load().
bool cache_enabled_default();

/// Hash of the Options fields that change parse OUTPUT (connect; thread
/// count deliberately excluded — results are thread-count invariant).
std::uint64_t options_hash(const Options& opt);

/// Load a graph by extension:
///   .mtx / .el / .txt — chunk-parallel text parse through the cache;
///   .sbgc             — a cache entry loaded directly (no staleness check);
///   .sbg              — the legacy eager binary dump (graph/io.hpp).
/// Throws InputError on unreadable/malformed input; cache problems are
/// never errors, they degrade to the text path.
CsrGraph load(const std::string& path, const Options& opt = {},
              LoadReport* report = nullptr);

/// load() wrapped in a shared_ptr — the form long-lived holders (the serve
/// GraphRegistry) want, so concurrent jobs can share one resident CSR and
/// eviction is a refcount drop, never a dangling span.
std::shared_ptr<const CsrGraph> load_shared(const std::string& path,
                                            const Options& opt = {},
                                            LoadReport* report = nullptr);

/// Heap footprint of a resident CSR — the bytes a registry charges against
/// SBG_SERVE_MEM_CAP / SBG_MEM_BUDGET. Counts every backing array at its
/// reserved capacity (see CsrGraph::heap_bytes), not element counts.
std::uint64_t resident_bytes(const CsrGraph& g);

/// The text pipeline alone: mmap + parallel parse + build, no cache probe
/// or write. (Benches use this to time parsing against the cache path.)
CsrGraph parse_text_file(const std::string& path, const Options& opt = {},
                         LoadReport* report = nullptr);

/// Ensure a fresh cache entry exists for text file `path` (parse + write if
/// missing/stale/corrupt); returns the cache path.
std::string warm_cache(const std::string& path, const Options& opt = {},
                       LoadReport* report = nullptr);

}  // namespace sbg::ingest
