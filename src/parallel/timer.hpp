// Wall-clock timing. Decomposition-based algorithms report both total time
// and a per-phase breakdown (decompose / solve pieces / stitch), so the
// bench harnesses can reproduce the paper's Figure 2 separately from
// Figures 3-5.
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace sbg {

/// Monotonic stopwatch, millisecond resolution reporting.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Named phase accumulator:
///   PhaseTimer pt; pt.start("decompose"); ...; pt.stop();
class PhaseTimer {
 public:
  void start(std::string name) {
    current_ = std::move(name);
    t_.reset();
  }

  void stop() {
    phases_.emplace_back(std::move(current_), t_.seconds());
    current_.clear();
  }

  /// (phase name, seconds) in start order.
  const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

  double total_seconds() const {
    double s = 0;
    for (const auto& [_, t] : phases_) s += t;
    return s;
  }

  double seconds_of(const std::string& name) const {
    double s = 0;
    for (const auto& [n, t] : phases_) {
      if (n == name) s += t;
    }
    return s;
  }

 private:
  Timer t_;
  std::string current_;
  std::vector<std::pair<std::string, double>> phases_;
};

}  // namespace sbg
