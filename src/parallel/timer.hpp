// Wall-clock timing. Decomposition-based algorithms report both total time
// and a per-phase breakdown (decompose / solve pieces / stitch), so the
// bench harnesses can reproduce the paper's Figure 2 separately from
// Figures 3-5.
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace sbg {

/// Monotonic stopwatch, millisecond resolution reporting.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Named phase accumulator:
///   PhaseTimer pt; pt.start("decompose"); ...; pt.stop();
/// Misuse is self-healing rather than silently corrupting the record:
/// start() while a phase is running closes that phase first, and stop()
/// with no phase in flight is a no-op (previously it recorded a bogus
/// empty-named phase). Prefer ScopedPhase below for exception safety.
class PhaseTimer {
 public:
  void start(std::string name) {
    if (running_) stop();  // auto-close the in-flight phase
    current_ = std::move(name);
    running_ = true;
    t_.reset();
  }

  void stop() {
    if (!running_) return;  // nothing in flight
    phases_.emplace_back(std::move(current_), t_.seconds());
    current_.clear();
    running_ = false;
  }

  bool running() const { return running_; }

  /// (phase name, seconds) in start order.
  const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

  double total_seconds() const {
    double s = 0;
    for (const auto& [_, t] : phases_) s += t;
    return s;
  }

  double seconds_of(const std::string& name) const {
    double s = 0;
    for (const auto& [n, t] : phases_) {
      if (n == name) s += t;
    }
    return s;
  }

 private:
  Timer t_;
  std::string current_;
  bool running_ = false;
  std::vector<std::pair<std::string, double>> phases_;
};

/// RAII phase: starts on construction, records on destruction even when the
/// scope unwinds via an exception. The composites time their solve/stitch
/// phases with this.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& pt, std::string name) : pt_(pt) {
    pt_.start(std::move(name));
  }
  ~ScopedPhase() { pt_.stop(); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& pt_;
};

}  // namespace sbg
