#include "parallel/thread_env.hpp"

#include <omp.h>

#include <cstdlib>
#include <string>

#include "core/env.hpp"

namespace sbg {

int num_threads() { return omp_get_max_threads(); }

int max_threads() { return omp_get_num_procs(); }

void set_num_threads(int n) { omp_set_num_threads(n < 1 ? 1 : n); }

int apply_thread_env() {
  // Soft knob: "SBG_THREADS=abc" used to silently atoi() to 0 and be
  // ignored — now garbage warns once and the current team size stands.
  const long n = env::long_or_warn("SBG_THREADS", 0, 1, 1 << 16);
  if (n >= 1) set_num_threads(int(n));
  return num_threads();
}

ScopedThreads::ScopedThreads(int n) : saved_(omp_get_max_threads()) {
  set_num_threads(n);
}

ScopedThreads::~ScopedThreads() { omp_set_num_threads(saved_); }

}  // namespace sbg
