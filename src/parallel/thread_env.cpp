#include "parallel/thread_env.hpp"

#include <omp.h>

#include <cstdlib>
#include <string>

namespace sbg {

int num_threads() { return omp_get_max_threads(); }

int max_threads() { return omp_get_num_procs(); }

void set_num_threads(int n) { omp_set_num_threads(n < 1 ? 1 : n); }

int apply_thread_env() {
  if (const char* env = std::getenv("SBG_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) set_num_threads(n);
  }
  return num_threads();
}

ScopedThreads::ScopedThreads(int n) : saved_(omp_get_max_threads()) {
  set_num_threads(n);
}

ScopedThreads::~ScopedThreads() { omp_set_num_threads(saved_); }

}  // namespace sbg
