// Fixed-size concurrent bitset. Safe for concurrent set/reset of distinct or
// identical bits; used for frontier membership, edge marks (bridge finding),
// and forbidden-color scratch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbg {

class ConcurrentBitset {
 public:
  ConcurrentBitset() = default;
  explicit ConcurrentBitset(std::size_t n_bits);

  /// Number of addressable bits.
  std::size_t size() const { return n_bits_; }

  /// Set bit i; returns true iff the bit was previously clear
  /// (i.e. this caller won the race).
  bool set(std::size_t i) {
    const std::uint64_t mask = 1ull << (i & 63u);
    const std::uint64_t prev =
        words_[i >> 6u].fetch_or(mask, std::memory_order_acq_rel);
    return (prev & mask) == 0;
  }

  /// Clear bit i; returns true iff the bit was previously set.
  bool reset(std::size_t i) {
    const std::uint64_t mask = 1ull << (i & 63u);
    const std::uint64_t prev =
        words_[i >> 6u].fetch_and(~mask, std::memory_order_acq_rel);
    return (prev & mask) != 0;
  }

  bool test(std::size_t i) const {
    return (words_[i >> 6u].load(std::memory_order_acquire) >>
            (i & 63u)) & 1u;
  }

  /// Clear every bit (not thread-safe against concurrent set/reset).
  void clear();

  /// Popcount over all bits (parallel).
  std::size_t count() const;

 private:
  std::size_t n_bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace sbg
