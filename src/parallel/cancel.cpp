#include "parallel/cancel.hpp"

#include "obs/obs.hpp"

namespace sbg {

namespace {
thread_local CancelToken* t_token = nullptr;
}  // namespace

ScopedCancel::ScopedCancel(CancelToken* token) : saved_(t_token) {
  t_token = token;
}

ScopedCancel::~ScopedCancel() { t_token = saved_; }

void poll_cancellation() {
  CancelToken* tok = t_token;
  if (tok == nullptr) return;
  if (tok->cancel_requested()) {
    SBG_COUNTER_ADD("cancel.observed", 1);
    SBG_TRACE_INSTANT("cancel.observed");
    throw JobCancelled("job cancelled");
  }
  if (tok->deadline_passed()) {
    SBG_COUNTER_ADD("cancel.deadline", 1);
    SBG_TRACE_INSTANT("cancel.deadline");
    throw JobCancelled("job deadline exceeded");
  }
}

}  // namespace sbg
