// Deterministic counter-based random numbers.
//
// Parallel randomized algorithms (RAND decomposition, Luby priorities, LMAX
// edge weights, GM tie-breaking) must be reproducible regardless of thread
// count or schedule. We therefore avoid shared-state generators entirely:
// every random value is a pure function hash(seed, stream, index), so the
// i-th value of a stream is the same no matter which thread computes it.
#pragma once

#include <cstdint>

namespace sbg {

/// splitmix64 finalizer — a strong 64-bit mix, the standard seeding hash.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// A stateless random stream: value at `index` is hash(seed, stream, index).
class RandomStream {
 public:
  RandomStream(std::uint64_t seed, std::uint64_t stream)
      : base_(mix64(seed ^ mix64(stream))) {}

  /// 64 uniform bits for position `index`.
  std::uint64_t bits(std::uint64_t index) const {
    return mix64(base_ ^ (index * 0xd1b54a32d192ed03ull));
  }

  /// Uniform integer in [0, bound) for position `index`. bound must be > 0.
  std::uint64_t below(std::uint64_t index, std::uint64_t bound) const {
    // 128-bit multiply-shift (Lemire); bias is negligible for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(bits(index)) * bound) >> 64);
  }

  /// Uniform double in [0, 1) for position `index`.
  double uniform(std::uint64_t index) const {
    return static_cast<double>(bits(index) >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t base_;
};

/// Sequential convenience generator (graph generators, tests): xoshiro-like
/// splitmix64 sequence. Not for use inside parallel loops.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(mix64(seed)) {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    return mix64(state_);
  }

  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

}  // namespace sbg
