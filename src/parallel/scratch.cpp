#include "parallel/scratch.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "obs/obs.hpp"

namespace sbg {

namespace {

constexpr std::size_t kAlign = 64;
constexpr std::size_t kMinBlock = std::size_t{1} << 16;  // 64 KiB floor

constexpr std::size_t round_up(std::size_t bytes) {
  return (bytes + kAlign - 1) & ~(kAlign - 1);
}

}  // namespace

Scratch& Scratch::local() {
  thread_local Scratch s;
  return s;
}

std::size_t Scratch::default_cap() {
  constexpr std::size_t kDefault = std::size_t{256} << 20;  // 256 MiB
  const char* env = std::getenv("SBG_SCRATCH_CAP");
  if (env == nullptr || *env == '\0') return kDefault;
  const long long v = std::atoll(env);
  return v <= 0 ? kDefault : static_cast<std::size_t>(v);
}

std::size_t Scratch::capacity_bytes() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

void Scratch::set_capacity_cap(std::size_t bytes) { cap_ = bytes; }

void Scratch::reset() {
  blocks_.clear();
  blocks_.shrink_to_fit();
  cur_ = 0;
  SBG_GAUGE_SET("scratch.capacity_bytes", 0.0);
}

void Scratch::trim_to_cap() {
  // Blocks grow geometrically, so the back block dominates capacity;
  // releasing largest-first frees the high-water footprint in few steps.
  std::size_t total = capacity_bytes();
  bool trimmed = false;
  while (total > cap_ && !blocks_.empty()) {
    total -= blocks_.back().capacity;
    SBG_COUNTER_ADD("scratch.blocks_released", 1);
    blocks_.pop_back();
    trimmed = true;
  }
  if (trimmed) {
    cur_ = 0;
    SBG_GAUGE_SET("scratch.capacity_bytes", static_cast<double>(total));
  }
}

void* Scratch::take_bytes(std::size_t bytes) {
  const std::size_t need = round_up(bytes == 0 ? 1 : bytes);
  // Serve from the first block at/after the cursor with room. Blocks are
  // retained across Regions, so hits here are reuse — the metric the run
  // reports surface as scratch.bytes_reused.
  while (cur_ < blocks_.size()) {
    Block& b = blocks_[cur_];
    if (b.capacity - b.used >= need) {
      void* p = b.base + b.used;
      b.used += need;
      SBG_COUNTER_ADD("scratch.bytes_reused", need);
      return p;
    }
    ++cur_;  // too small for this take; rewind reclaims the leftover
  }
  const std::size_t last_cap = blocks_.empty() ? 0 : blocks_.back().capacity;
  const std::size_t cap = std::max({need, 2 * last_cap, kMinBlock});
  Block b;
  b.raw = std::make_unique<std::byte[]>(cap + kAlign);
  const auto addr = reinterpret_cast<std::uintptr_t>(b.raw.get());
  b.base = b.raw.get() + (round_up(addr) - addr);
  b.capacity = cap;
  b.used = need;
  blocks_.push_back(std::move(b));
  cur_ = blocks_.size() - 1;
  SBG_GAUGE_SET("scratch.capacity_bytes",
                static_cast<double>(capacity_bytes()));
  return blocks_.back().base;
}

std::pair<std::size_t, std::size_t> Scratch::mark() const {
  // take_bytes always leaves cur_ on a valid block, so this is in range
  // whenever any block exists.
  if (blocks_.empty()) return {0, 0};
  return {cur_, blocks_[cur_].used};
}

void Scratch::rewind(std::pair<std::size_t, std::size_t> m) {
  if (blocks_.empty()) return;
  const std::size_t block = std::min(m.first, blocks_.size() - 1);
  blocks_[block].used = m.second;
  for (std::size_t i = block + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
  cur_ = block;
  // Rewound to empty (no outer Region holds bytes): the only safe moment
  // to release backing blocks, since no live span can point into them.
  if (block == 0 && m.second == 0) trim_to_cap();
}

}  // namespace sbg
