// Lock-free helpers over plain arrays. Symmetry-breaking algorithms
// communicate through CAS on shared per-vertex arrays; these wrappers keep
// the memory-order reasoning in one audited place.
#pragma once

#include <atomic>
#include <type_traits>

namespace sbg {

/// Atomically set *addr = min(*addr, value). Returns true if this call
/// lowered the stored value.
template <typename T>
bool fetch_min(T* addr, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto* a = reinterpret_cast<std::atomic<T>*>(addr);
  T cur = a->load(std::memory_order_relaxed);
  while (value < cur) {
    if (a->compare_exchange_weak(cur, value, std::memory_order_acq_rel,
                                 std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomically set *addr = max(*addr, value). Returns true if it raised it.
template <typename T>
bool fetch_max(T* addr, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto* a = reinterpret_cast<std::atomic<T>*>(addr);
  T cur = a->load(std::memory_order_relaxed);
  while (value > cur) {
    if (a->compare_exchange_weak(cur, value, std::memory_order_acq_rel,
                                 std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Single-shot claim: CAS *addr from `expected_empty` to `value`.
/// Returns true iff this call installed `value`.
template <typename T>
bool claim(T* addr, T expected_empty, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto* a = reinterpret_cast<std::atomic<T>*>(addr);
  T expected = expected_empty;
  return a->compare_exchange_strong(expected, value, std::memory_order_acq_rel,
                                    std::memory_order_relaxed);
}

/// Relaxed atomic load of a plain array slot.
template <typename T>
T atomic_read(const T* addr) {
  return reinterpret_cast<const std::atomic<T>*>(addr)->load(
      std::memory_order_acquire);
}

/// Release atomic store to a plain array slot.
template <typename T>
void atomic_write(T* addr, T value) {
  reinterpret_cast<std::atomic<T>*>(addr)->store(value,
                                                 std::memory_order_release);
}

/// Atomic post-increment; returns the previous value.
template <typename T>
T fetch_add(T* addr, T delta) {
  return reinterpret_cast<std::atomic<T>*>(addr)->fetch_add(
      delta, std::memory_order_relaxed);
}

}  // namespace sbg
