// Thin OpenMP loop wrappers so algorithm code reads declaratively and the
// chunking policy lives in one place.
#pragma once

#include <cstddef>
#include <cstdint>

#include <omp.h>

namespace sbg {

/// Grain below which a loop runs sequentially; spawning a parallel region
/// for a handful of iterations costs more than it saves.
inline constexpr std::size_t kSequentialGrain = 2048;

/// parallel_for(n, f): f(i) for all i in [0, n), statically chunked.
/// F must be safe to run concurrently for distinct i.
template <typename F>
void parallel_for(std::size_t n, F&& f) {
  if (n < kSequentialGrain) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    f(static_cast<std::size_t>(i));
  }
}

/// Like parallel_for but with dynamic scheduling for skewed per-iteration
/// cost (e.g. per-vertex work proportional to degree on power-law graphs).
template <typename F>
void parallel_for_dynamic(std::size_t n, F&& f) {
  if (n < kSequentialGrain) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, 256)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    f(static_cast<std::size_t>(i));
  }
}

/// parallel_blocks(n, f): splits [0, n) into one contiguous block per thread
/// and calls f(begin, end, thread_id). For algorithms that keep per-thread
/// scratch (local buffers, RNG streams, counters).
template <typename F>
void parallel_blocks(std::size_t n, F&& f) {
#pragma omp parallel
  {
    const std::size_t t = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t nt = static_cast<std::size_t>(omp_get_num_threads());
    const std::size_t lo = n * t / nt;
    const std::size_t hi = n * (t + 1) / nt;
    f(lo, hi, t);
  }
}

}  // namespace sbg
