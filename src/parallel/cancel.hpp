// Cooperative per-job cancellation and deadlines for the round loops.
//
// The batch engine (src/sched/) runs many solver jobs concurrently and
// needs to stop a job that blows its deadline without tearing down the
// process or interrupting its siblings. Solvers cooperate: each iterative
// round loop calls poll_cancellation() once per round, from the serial
// inter-phase section (never inside an OpenMP parallel region — throwing
// across a region boundary would terminate). When no token is installed
// the poll is a thread-local load and a branch, so standalone solver calls
// pay nothing measurable.
//
// Tokens are installed per worker thread with ScopedCancel; a token may be
// observed from other threads (request_cancel is an atomic store), so one
// controller can cancel many workers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace sbg {

/// Thrown by poll_cancellation() when the installed token has been
/// cancelled or its deadline has passed. Derives from std::runtime_error so
/// generic catch sites treat it as a job failure, but the batch engine can
/// distinguish it and record kCancelled instead of kFailed.
class JobCancelled : public std::runtime_error {
 public:
  explicit JobCancelled(const char* reason) : std::runtime_error(reason) {}
};

/// One job's cancellation state: an explicit flag plus an optional
/// monotonic-clock deadline. Shared between the worker running the job
/// (polling) and any controller (cancelling) — all accesses are atomic.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arm a deadline `ms` milliseconds from now (<= 0 disarms).
  void set_deadline_ms(double ms) {
    if (ms <= 0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() +
        static_cast<std::int64_t>(ms * 1e6);
    deadline_ns_.store(ns, std::memory_order_relaxed);
  }

  /// Request cancellation; the job observes it at its next poll.
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool deadline_passed() const {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == 0) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
           d;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // 0 = no deadline
};

/// Install `token` as the calling thread's active cancellation token for
/// the lifetime of the guard (nullptr is allowed and means "none"). The
/// previous token is restored on destruction, so scopes nest.
class ScopedCancel {
 public:
  explicit ScopedCancel(CancelToken* token);
  ~ScopedCancel();
  ScopedCancel(const ScopedCancel&) = delete;
  ScopedCancel& operator=(const ScopedCancel&) = delete;

 private:
  CancelToken* saved_;
};

/// Throw JobCancelled if the calling thread's token (if any) is cancelled
/// or past its deadline. Must be called from serial solver code only.
void poll_cancellation();

}  // namespace sbg
