// Default-initializing allocator.
//
// CSR producers size their output arrays exactly (counts -> prefix sums)
// and then overwrite every slot in a scatter sweep, so the value-init
// memset std::vector inserts on resize is a full extra pass over the
// output — a measurable fraction of wall time once the working set leaves
// cache. std::vector<T, DefaultInitAllocator<T>> leaves trivial elements
// uninitialized on sizing; callers that DO rely on zeros (atomic counting,
// scan seeds) must fill explicitly.
#pragma once

#include <memory>
#include <utility>

namespace sbg {

template <typename T, typename Base = std::allocator<T>>
class DefaultInitAllocator : public Base {
 public:
  using value_type = T;

  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<
        U, typename std::allocator_traits<Base>::template rebind_alloc<U>>;
  };

  using Base::Base;

  /// Value-less construct becomes default-init: a no-op for trivial T.
  template <typename U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;
  }

  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    std::allocator_traits<Base>::construct(static_cast<Base&>(*this), p,
                                           std::forward<Args>(args)...);
  }
};

}  // namespace sbg
