// Parallel compaction (Ligra-style "pack"): build the dense list of
// surviving indices or values from a predicate, in the same order a serial
// scan would produce. Every iterative solver rebuilds its frontier /
// worklist / live list once per round; these primitives make that rebuild
// parallel while keeping it byte-identical to the serial loop at any
// thread count (stable order, no atomics in the write path).
//
// Shape: per-thread block counting, a (tiny) serial scan over the block
// sums, then per-thread writes into disjoint output ranges — the same
// two-pass discipline as exclusive_prefix_sum. The predicate is evaluated
// twice per index (count + write) and must be safe to call concurrently.
//
// Safe under concurrent and nested callers: `block_sums` is sized inside
// the parallel region from the team OpenMP actually delivered (which under
// nesting, thread limits, or dynamic teams need not equal
// omp_get_max_threads()), so results are byte-identical to the serial scan
// from any calling context — a batch worker thread, an already-active
// parallel region, or the orchestrating main thread.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include <omp.h>

#include "common.hpp"
#include "parallel/parallel_for.hpp"

namespace sbg {

/// Write every i in [0, n) with pred(i) into `out`, ascending; returns the
/// number written. `out.size()` must be >= n (it is a reusable n-capacity
/// buffer, not a tight allocation).
template <typename Pred>
std::size_t pack_index(std::size_t n, Pred&& pred, std::span<vid_t> out) {
  SBG_CHECK(out.size() >= n, "pack_index output buffer smaller than domain");
  if (n < kSequentialGrain) {
    std::size_t cnt = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) out[cnt++] = static_cast<vid_t>(i);
    }
    return cnt;
  }
  std::size_t total = 0;
  std::vector<std::size_t> block_sums;
#pragma omp parallel
  {
    const std::size_t t = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t nt = static_cast<std::size_t>(omp_get_num_threads());
    // Size from the actual team, not omp_get_max_threads(): under nested
    // parallelism or thread limits the delivered team can differ. The
    // single's implicit barrier publishes the sized vector to every lane.
#pragma omp single
    block_sums.assign(nt + 1, 0);
    const std::size_t lo = n * t / nt;
    const std::size_t hi = n * (t + 1) / nt;
    std::size_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if (pred(i)) ++local;
    }
    block_sums[t + 1] = local;
#pragma omp barrier
#pragma omp single
    {
      for (std::size_t i = 1; i <= nt; ++i) block_sums[i] += block_sums[i - 1];
      total = block_sums[nt];
    }
    std::size_t w = block_sums[t];
    for (std::size_t i = lo; i < hi; ++i) {
      if (pred(i)) out[w++] = static_cast<vid_t>(i);
    }
  }
  return total;
}

/// Allocating convenience: the surviving indices as a tight vector.
template <typename Pred>
std::vector<vid_t> pack_index(std::size_t n, Pred&& pred) {
  std::vector<vid_t> out(n);
  out.resize(pack_index(n, pred, std::span(out)));
  return out;
}

/// Compact the values of `in` that satisfy pred(value) into `out`,
/// preserving order; returns the number written. `out.size()` must be
/// >= in.size(), and `out` must not alias `in`.
template <typename InSpan, typename Pred, typename T>
std::size_t pack(const InSpan& in, Pred&& pred, std::span<T> out) {
  const std::size_t n = in.size();
  SBG_CHECK(out.size() >= n, "pack output buffer smaller than input");
  if (n < kSequentialGrain) {
    std::size_t cnt = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(in[i])) out[cnt++] = in[i];
    }
    return cnt;
  }
  std::size_t total = 0;
  std::vector<std::size_t> block_sums;
#pragma omp parallel
  {
    const std::size_t t = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t nt = static_cast<std::size_t>(omp_get_num_threads());
    // Same nesting-safe sizing discipline as pack_index above.
#pragma omp single
    block_sums.assign(nt + 1, 0);
    const std::size_t lo = n * t / nt;
    const std::size_t hi = n * (t + 1) / nt;
    std::size_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if (pred(in[i])) ++local;
    }
    block_sums[t + 1] = local;
#pragma omp barrier
#pragma omp single
    {
      for (std::size_t i = 1; i <= nt; ++i) block_sums[i] += block_sums[i - 1];
      total = block_sums[nt];
    }
    std::size_t w = block_sums[t];
    for (std::size_t i = lo; i < hi; ++i) {
      if (pred(in[i])) out[w++] = in[i];
    }
  }
  return total;
}

}  // namespace sbg
